// Circuit example: the sparse circuit simulation (paper §5.4) at laptop
// scale, demonstrating region reductions under control replication.
//
// The distribute-charge phase sum-reduces wire currents into private,
// shared, and ghost circuit nodes; the compiler turns those into reduction
// copies that fold each piece's temporary reduction instance into the
// owning instances in deterministic order (§4.3). The example runs the
// same graph implicitly, control-replicated, and sequentially, checks all
// three agree bitwise, and compares the per-iteration virtual times.
//
// Run with: go run ./examples/circuit
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/circuit"
	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/rt"
	"repro/internal/spmd"
)

func main() {
	const pieces = 4
	cfg := circuit.Small(pieces)
	cfg.Iters = 6

	ref := circuit.Build(cfg)
	seq := ir.ExecSequential(ref.Prog)

	// How much of the graph is communication?
	var ghost, shared int64
	for i := int64(0); i < pieces; i++ {
		ghost += ref.GhostN.Sub1(i).Volume()
		shared += ref.ShrN.Sub1(i).Volume()
	}
	fmt.Printf("graph: %d nodes, %d wires across %d pieces; %d shared + %d ghost node references\n",
		ref.Nodes.Volume(), ref.Wires.Volume(), pieces, shared, ghost)

	// Control-replicated execution.
	app := circuit.Build(cfg)
	plan, err := cr.Compile(app.Prog, app.Loop, cr.Options{NumShards: pieces})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled loop body (note the reduction copies for distribute_charge):")
	for i, op := range plan.Body {
		switch {
		case op.Launch != nil:
			fmt.Printf("  %d: launch %s\n", i, op.Launch.Label)
		case op.Copy != nil:
			fmt.Printf("  %d: %v\n", i, op.Copy)
		}
	}

	simCR := realm.MustNewSim(realm.DefaultConfig(pieces))
	resCR, err := spmd.New(simCR, app.Prog, ir.ExecReal, map[*ir.Loop]*cr.Compiled{app.Loop: plan}).Run()
	if err != nil {
		log.Fatal(err)
	}

	// Implicit execution of the same graph.
	app2 := circuit.Build(cfg)
	simImp := realm.MustNewSim(realm.DefaultConfig(pieces))
	resImp, err := rt.New(simImp, app2.Prog, rt.Real).Run()
	if err != nil {
		log.Fatal(err)
	}

	if !resCR.Stores[app.Nodes].EqualOn(seq.Stores[ref.Nodes], ref.Voltage, ref.Nodes.IndexSpace()) {
		log.Fatal("CR voltages diverged from sequential semantics")
	}
	if !resImp.Stores[app2.Nodes].EqualOn(seq.Stores[ref.Nodes], ref.Voltage, ref.Nodes.IndexSpace()) {
		log.Fatal("implicit voltages diverged from sequential semantics")
	}
	v0 := seq.Stores[ref.Nodes].Get(ref.Voltage, geometry.Pt1(0))
	fmt.Printf("\nall executions agree bitwise ✓  (voltage[0] = %.6f after %d steps)\n", v0, cfg.Iters)
	fmt.Printf("virtual time: CR %v vs implicit %v (%d vs %d messages)\n",
		resCR.Elapsed, resImp.Elapsed, resCR.Stats.Messages, resImp.Stats.Messages)
}
