// PENNANT example: Lagrangian hydrodynamics with dynamic time stepping
// (paper §5.3) at laptop scale.
//
// Each cycle min-reduces a new dt across all zones through a dynamic
// collective whose result is a future-valued scalar (§4.4): shards
// contribute their zones' candidates without blocking, and the next
// cycle's point-advance tasks pick the value up as a scalar argument. The
// example runs a few cycles under control replication, prints the dt
// trajectory, and verifies bitwise agreement with sequential execution —
// including the scalar dt itself.
//
// Run with: go run ./examples/pennant
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/pennant"
	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/spmd"
)

func main() {
	const pieces = 4
	cfg := pennant.Config{Pieces: pieces, ZW: 6, ZH: 8, Iters: 5}

	ref := pennant.Build(cfg)
	seq := ir.ExecSequential(ref.Prog)

	app := pennant.Build(cfg)
	plan, err := cr.Compile(app.Prog, app.Loop, cr.Options{NumShards: pieces})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d zones, %d points, %d pieces\n", app.Zones.Volume(), app.Points.Volume(), pieces)
	fmt.Println("compiled cycle:")
	for i, op := range plan.Body {
		switch {
		case op.Launch != nil:
			extra := ""
			if op.Launch.Reduce != nil {
				extra = fmt.Sprintf("  (min-reduce into scalar %q via dynamic collective)", op.Launch.Reduce.Into)
			}
			fmt.Printf("  %d: launch %s%s\n", i, op.Launch.Label, extra)
		case op.Copy != nil:
			fmt.Printf("  %d: %v\n", i, op.Copy)
		}
	}

	sim := realm.MustNewSim(realm.DefaultConfig(pieces))
	res, err := spmd.New(sim, app.Prog, ir.ExecReal, map[*ir.Loop]*cr.Compiled{app.Loop: plan}).Run()
	if err != nil {
		log.Fatal(err)
	}

	if res.Env["dt"] != seq.Env["dt"] {
		log.Fatalf("dt diverged: CR %v vs sequential %v", res.Env["dt"], seq.Env["dt"])
	}
	if !res.Stores[app.Points].EqualOn(seq.Stores[ref.Points], ref.PX, ref.Points.IndexSpace()) ||
		!res.Stores[app.Points].EqualOn(seq.Stores[ref.Points], ref.VY, ref.Points.IndexSpace()) {
		log.Fatal("point state diverged from sequential semantics")
	}
	if !res.Stores[app.Zones].EqualOn(seq.Stores[ref.Zones], ref.Rho, ref.Zones.IndexSpace()) {
		log.Fatal("zone state diverged from sequential semantics")
	}

	// Inspect the four-way shared piece-corner point.
	p := geometry.Pt2(cfg.ZW, cfg.ZH)
	fmt.Printf("\nafter %d cycles: dt = %.6g, corner point %v at (%.4f, %.4f) — bitwise identical to sequential ✓\n",
		cfg.Iters, res.Env["dt"], p,
		res.Stores[app.Points].Get(app.PX, p), res.Stores[app.Points].Get(app.PY, p))
	fmt.Printf("virtual elapsed %v, %d messages (halo positions + corner-force reductions + dt collectives)\n",
		res.Elapsed, res.Stats.Messages)
}
