// DSL example: a 1-D heat-diffusion program written in the textual
// Regent-subset frontend, compiled to ir, control-replicated, and verified
// against sequential execution — the full pipeline of the paper, from
// source text with declared partitions and privileges to SPMD shards, with
// no hand-built IR anywhere.
//
// Run with: go run ./examples/dsl
package main

import (
	"fmt"
	"log"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/realm"
	"repro/internal/spmd"
)

const source = `
program heat

# A ring of 64 cells: new temperature is the neighbor average, with a
# constant source term; total energy is sum-reduced every step.
region T[0..63]    fields { cur }
region TNEW[0..63] fields { next }

partition PT   = block(T, 8)
partition PNEW = block(TNEW, 8)
partition HALO = image(T, PT, ring(-1, 1))     # periodic footprint: own cells +-1

task diffuse(out: region writes(next), in: region reads(cur)) {
  for p in out {
    out.next[p] = 0.25 * in.cur[p - 1 mod 64]
                + 0.5  * in.cur[p]
                + 0.25 * in.cur[p + 1 mod 64]
  }
}

task commit(t: region writes(cur), n: region reads(next), source: scalar) {
  for p in t { t.cur[p] = n.next[p] + source }
}

task energy(t: region reads(cur)) {
  for p in t { result += t.cur[p] }
}

fill T.cur     = idx
fill TNEW.next = 0
var heating = 0.01

for step = 0, 6 {
  launch diffuse(PNEW[i], HALO[i])
  launch commit(PT[i], PNEW[i]; heating)
  reduce + total = launch energy(PT[i])
}
`

func main() {
	const nodes = 4

	prog, err := lang.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled source program:")
	fmt.Print(ir.Dump(prog))

	// Sequential reference.
	seqProg, _ := lang.Compile(source)
	seq := ir.ExecSequential(seqProg)

	// Control replication.
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontrol-replicated main loop:")
	for _, plan := range plans {
		for i, op := range plan.Body {
			switch {
			case op.Launch != nil:
				fmt.Printf("  %d: launch %s\n", i, op.Launch.Label)
			case op.Copy != nil:
				fmt.Printf("  %d: %v\n", i, op.Copy)
			}
		}
	}

	sim := realm.MustNewSim(realm.DefaultConfig(nodes))
	res, err := spmd.New(sim, prog, ir.ExecReal, plans).Run()
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential run, region by region, plus the scalar.
	for _, r := range prog.Tree.Regions() {
		if r.Parent() != nil {
			continue
		}
		for _, rs := range seqProg.Tree.Regions() {
			if rs.Parent() != nil || rs.Name() != r.Name() {
				continue
			}
			for _, f := range prog.FieldSpaces[r].Fields() {
				r.IndexSpace().Each(func(p geometry.Point) bool {
					if res.Stores[r].Get(f, p) != seq.Stores[rs].Get(f, p) {
						log.Fatalf("CR diverged at %s field %d point %v", r.Name(), f, p)
					}
					return true
				})
			}
		}
	}
	if res.Env["total"] != seq.Env["total"] {
		log.Fatalf("energy diverged: %v vs %v", res.Env["total"], seq.Env["total"])
	}
	fmt.Printf("\ntotal energy after 6 steps: %.4f — CR bitwise identical to sequential ✓\n", res.Env["total"])
	fmt.Printf("virtual elapsed %v, %d messages\n", res.Elapsed, res.Stats.Messages)
}
