// Quickstart: the paper's running example (Figure 2) end to end.
//
// It builds the implicitly parallel two-phase program over regions A and B
// — a loop alternating TF(PB[i], PA[i]) and TG(PA[j], QB[j]) where QB is an
// aliased image partition of B — then:
//
//  1. runs it sequentially (the semantics reference);
//  2. runs it on the implicit Legion-like runtime (dynamic dependence
//     analysis on a central control thread);
//  3. control-replicates the loop and runs the SPMD shards on a simulated
//     4-node machine;
//
// and shows that all three produce identical region contents, while the
// compiled plan contains exactly the copy the paper derives (Figure 4b):
// PB -> QB after the first launch, and nothing for the disjoint PA.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
	"repro/internal/rt"
	"repro/internal/spmd"
)

func buildProgram(n, nt int64, trip int) (*ir.Program, *ir.Loop, *region.Region, *region.Region, region.FieldID) {
	p := ir.NewProgram("figure2")
	fs := region.NewFieldSpace("val")
	val := fs.Field("val")

	// Regions A and B over the same index space (Figure 2, lines 16-19).
	a := p.Tree.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	b := p.Tree.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[a] = fs
	p.FieldSpaces[b] = fs

	// Partitions: disjoint blocks PA and PB, and the aliased image QB
	// through h(j) = j+3 mod n (lines 20-22).
	pa := a.Block("PA", nt)
	pb := b.Block("PB", nt)
	shift := int64(3)
	qb := region.Image(b, pb, "QB", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((pt.X() + shift) % n)}
	})

	// Tasks TF and TG with their privileges (lines 1-13).
	tf := &ir.TaskDecl{
		Name: "TF",
		Params: []ir.Param{
			{Name: "B", Priv: ir.PrivReadWrite, Fields: []region.FieldID{val}},
			{Name: "A", Priv: ir.PrivRead, Fields: []region.FieldID{val}},
		},
		Kernel: func(tc *ir.TaskCtx) {
			bArg, aArg := &tc.Args[0], &tc.Args[1]
			bArg.Each(func(pt geometry.Point) bool {
				bArg.Set(val, pt, aArg.Get(val, pt)+1) // B[i] = F(A[i])
				return true
			})
		},
		CostPerElem: 100,
	}
	tg := &ir.TaskDecl{
		Name: "TG",
		Params: []ir.Param{
			{Name: "A", Priv: ir.PrivReadWrite, Fields: []region.FieldID{val}},
			{Name: "B", Priv: ir.PrivRead, Fields: []region.FieldID{val}},
		},
		Kernel: func(tc *ir.TaskCtx) {
			aArg, bArg := &tc.Args[0], &tc.Args[1]
			aArg.Each(func(pt geometry.Point) bool {
				h := geometry.Pt1((pt.X() + shift) % n)
				aArg.Set(val, pt, 2*bArg.Get(val, h)) // A[j] = G(B[h(j)])
				return true
			})
		},
		CostPerElem: 100,
	}

	// The main simulation loop (lines 23-30).
	loop := &ir.Loop{Var: "t", Trip: trip, Body: []ir.Stmt{
		&ir.Launch{Task: tf, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pb}, {Part: pa}}},
		&ir.Launch{Task: tg, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pa}, {Part: qb}}},
	}}
	p.Add(
		&ir.FillFunc{Target: a, Field: val, Fn: func(pt geometry.Point) float64 { return float64(pt.X()) }},
		&ir.Fill{Target: b, Field: val, Value: 0},
		loop,
	)
	return p, loop, a, b, val
}

func main() {
	const (
		n     = 64
		nt    = 8
		trip  = 4
		nodes = 4
	)

	// 1. Sequential reference.
	progSeq, _, aSeq, bSeq, val := buildProgram(n, nt, trip)
	seq := ir.ExecSequential(progSeq)
	fmt.Printf("sequential:  A[0..5] =")
	for i := int64(0); i < 6; i++ {
		fmt.Printf(" %g", seq.Stores[aSeq].Get(val, geometry.Pt1(i)))
	}
	fmt.Println()

	// 2. Implicit parallel execution: a single control thread performs
	// dynamic dependence analysis and launches tasks across the nodes.
	progImp, _, aImp, _, _ := buildProgram(n, nt, trip)
	simImp := realm.MustNewSim(realm.DefaultConfig(nodes))
	resImp, err := rt.New(simImp, progImp, rt.Real).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implicit:    elapsed %v virtual, %d tasks, %d messages\n",
		resImp.Elapsed, resImp.Stats.TasksRun, resImp.Stats.Messages)

	// 3. Control replication: compile the loop and run SPMD shards.
	progCR, loopCR, aCR, bCR, _ := buildProgram(n, nt, trip)
	plan, err := cr.Compile(progCR, loopCR, cr.Options{NumShards: nodes, Sync: cr.PointToPoint})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontrol-replicated loop body (compare Figure 4b):")
	for i, op := range plan.Body {
		switch {
		case op.Launch != nil:
			fmt.Printf("  %d: launch %s over %d points\n", i, op.Launch.Task.Name, len(op.Launch.Domain))
		case op.Copy != nil:
			fmt.Printf("  %d: %v\n", i, op.Copy)
		}
	}
	fmt.Printf("shards: %d, each owning %d launch points\n\n", plan.Opts.NumShards, len(plan.Owned[0]))

	simCR := realm.MustNewSim(realm.DefaultConfig(nodes))
	resCR, err := spmd.New(simCR, progCR, ir.ExecReal, map[*ir.Loop]*cr.Compiled{loopCR: plan}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spmd (CR):   elapsed %v virtual, %d tasks, %d messages\n",
		resCR.Elapsed, resCR.Stats.TasksRun, resCR.Stats.Messages)

	// All three executions must agree exactly.
	if !resImp.Stores[aImp].EqualOn(seq.Stores[aSeq], val, aSeq.IndexSpace()) {
		log.Fatal("implicit execution diverged from sequential semantics")
	}
	if !resCR.Stores[aCR].EqualOn(seq.Stores[aSeq], val, aSeq.IndexSpace()) ||
		!resCR.Stores[bCR].EqualOn(seq.Stores[bSeq], val, bSeq.IndexSpace()) {
		log.Fatal("control-replicated execution diverged from sequential semantics")
	}
	fmt.Println("\nall three executions produced bitwise-identical region contents ✓")
}
