// Stencil example: the PRK 2-D star stencil (paper §5.1) at laptop scale.
//
// It builds the hierarchically partitioned stencil program (private /
// shared / ghost bands, §4.5), shows the compiled communication plan (only
// the boundary bands are exchanged — the private interior provably needs
// no copies), runs it under control replication on a simulated 4-node
// machine with real data, verifies the result against the sequential
// semantics, and finishes with a miniature weak-scaling comparison of all
// four Figure 6 systems.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/spmd"
)

func main() {
	const nodes = 4
	cfg := stencil.Config{Nodes: nodes, TileW: 32, TileH: 32, Radius: 2, Iters: 5}

	// Sequential reference.
	ref := stencil.Build(cfg)
	seq := ir.ExecSequential(ref.Prog)

	// Compile and inspect the communication plan.
	app := stencil.Build(cfg)
	plan, err := cr.Compile(app.Prog, app.Loop, cr.Options{NumShards: nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d over %dx%d tiles, radius %d\n", app.Gx*cfg.TileW, app.Gy*cfg.TileH, app.Gx, app.Gy, cfg.Radius)
	fmt.Println("compiled loop body:")
	var haloVolume int64
	for i, op := range plan.Body {
		switch {
		case op.Launch != nil:
			fmt.Printf("  %d: launch %s\n", i, op.Launch.Label)
		case op.Copy != nil:
			fmt.Printf("  %d: %v\n", i, op.Copy)
			for _, pr := range op.Copy.Pairs {
				haloVolume += pr.Overlap.Volume()
			}
		}
	}
	total := app.In.Volume()
	fmt.Printf("halo exchange: %d of %d grid points per iteration (%.2f%%) — the private interior moves nothing\n\n",
		haloVolume, total, 100*float64(haloVolume)/float64(total))

	// Execute for real on the simulated machine.
	sim := realm.MustNewSim(realm.DefaultConfig(nodes))
	res, err := spmd.New(sim, app.Prog, ir.ExecReal, map[*ir.Loop]*cr.Compiled{app.Loop: plan}).Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Stores[app.Out].EqualOn(seq.Stores[ref.Out], ref.XOut, ref.Out.IndexSpace()) {
		log.Fatal("CR result diverged from sequential semantics")
	}
	center := geometry.Pt2(app.Gx*cfg.TileW/2, app.Gy*cfg.TileH/2)
	fmt.Printf("verified against sequential execution ✓  (out[%v] = %.4f after %d iterations)\n\n",
		center, res.Stores[app.Out].Get(app.XOut, center), cfg.Iters)

	// Miniature Figure 6: weak scaling at paper problem sizes (modeled
	// kernels, real control plane).
	fmt.Println("weak scaling, throughput per node (10^6 points/s), paper-size tiles:")
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "nodes", "regent-cr", "regent-nocr", "mpi", "mpi-openmp")
	for _, n := range []int{1, 4, 16} {
		fmt.Printf("%-8d", n)
		for _, sys := range stencil.Systems {
			per, err := stencil.Measure(sys, n, 8, bench.MeasureOpts{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.1f", 40000.0*40000/per.Seconds()/1e6)
		}
		fmt.Println()
	}
}
