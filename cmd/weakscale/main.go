// Command weakscale regenerates the paper's weak-scaling figures (6-9):
// for one application or all of them, it sweeps node counts, runs every
// system variant on the simulated machine, and prints throughput-per-node
// series (optionally as CSV).
//
// Usage:
//
//	weakscale [-app stencil|miniaero|pennant|circuit|all] [-nodes 1,2,...]
//	          [-iters N] [-j workers] [-csv] [-v]
//	          [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	appName := flag.String("app", "all", "application to run (stencil, miniaero, pennant, circuit, all)")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (default: the paper's 1..1024 sweep)")
	iters := flag.Int("iters", 0, "iterations per measurement (0 = app default)")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "measurement cells to run in parallel (output is identical at any width)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	verbose := flag.Bool("v", false, "print per-measurement progress")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
			}
		}()
	}

	nodes := harness.DefaultNodes
	if *nodesFlag != "" {
		nodes = nil
		for _, part := range strings.Split(*nodesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "weakscale: bad node count %q\n", part)
				os.Exit(1)
			}
			nodes = append(nodes, n)
		}
	}

	var apps []harness.App
	if *appName == "all" {
		apps = harness.Apps()
	} else {
		app, err := harness.AppByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		apps = []harness.App{app}
	}

	var progress func(string)
	if *verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	for _, app := range apps {
		if *iters > 0 {
			app.Iters = *iters
		}
		series, err := harness.RunFigureParallel(app, nodes, *workers, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("app,system,nodes,per_iter_s,throughput_per_node_%s\n", strings.ReplaceAll(app.Unit, " ", "_"))
			for _, s := range series {
				for _, p := range s.Points {
					fmt.Printf("%s,%s,%d,%g,%g\n", app.Name, s.System, p.Nodes, p.PerIter.Seconds(), p.Throughput)
				}
			}
		} else {
			fmt.Print(harness.FormatFigure(app, series))
			fmt.Println()
		}
	}
}
