// Command weakscale regenerates the paper's weak-scaling figures (6-9):
// for one application or all of them, it sweeps node counts, runs every
// system variant on the simulated machine, and prints throughput-per-node
// series (optionally as CSV).
//
// Usage:
//
//	weakscale [-app stencil|miniaero|pennant|circuit|all] [-nodes 1,2,...]
//	          [-iters N] [-j workers] [-csv] [-v] [-faults seed:rate]
//	          [-backend des|native] [-procs N] [-sched on|off]
//	          [-timepolicy modeled|measured] [-fit-in file] [-fit-out file]
//	          [-trace on|off] [-trace-share on|off] [-prune on|off]
//	          [-agg on|off] [-benchjson file] [-verify] [-verify-json file]
//	          [-cpuprofile file] [-memprofile file]
//
// -backend selects the realm backend. The default, des, measures on the
// deterministic discrete-event simulator and reports virtual time. native
// runs the Regent systems' real kernels on real goroutines over shared
// memory and reports wall-clock time; the MPI baselines are DES cost
// models and are dropped from native sweeps. Native sweeps want small
// node counts (each simulated node is a set of goroutines competing for
// the host's cores).
//
// -procs sets the native worker pool's per-node size (0, the default, is
// an equal share of GOMAXPROCS across the simulated nodes). -sched=off
// disables the pool entirely, falling back to goroutine-per-launch
// dispatch — the scheduler's A/B baseline; series are identical either
// way (only host wall-clock differs), which the CI multicore job pins.
// After a native sweep the scheduler counters (dispatches, steals,
// inline completions) are printed to stderr.
//
// -timepolicy selects the DES's time-charging policy: modeled (default)
// charges the Cray-XC-style cost model; measured charges a policy fitted
// from real native runs, imported with -fit-in (a JSON file written by
// -fit-out). -fit-out, valid with -backend native, records the wall-clock
// duration of every executed kernel and copy during the sweep and writes
// the fitted coefficients to the named file — the calibration loop is:
//
//	weakscale -backend native -nodes 2,4 -fit-out fit.json
//	weakscale -timepolicy measured -fit-in fit.json
//
// -verify runs the schedule certifier (internal/verify) over every
// compiled schedule at each swept node count before running it: the race
// pass, the liveness (deadlock-freedom) pass, the specialization-table
// pass, under -prune on the pruning pass, and under -agg on the
// aggregation pass (verify.CheckAgg). The sweep aborts with
// exit status 2 on any finding. -verify-json additionally writes every
// pass's verify.Report (the shared certification schema) as one JSON
// document to the named file ("-" = stdout), and implies -verify.
//
// -prune=on attaches the certified redundant-sync pruning pass to every
// Regent-CR cell: sync edges proven transitively redundant (and dead
// initialization populations) are skipped by the executor. Default off.
// Throughput series and stores are identical either way on the DES; the
// prune counters (edges and init copies removed) are printed to stderr
// after each app and recorded in the -benchjson snapshot.
//
// -agg=on runs every Regent-CR cell with coalesced exchange plans: each
// exchange phase's copy pairs are merged into one message per (producing
// shard, destination shard) aggregation group, licensed per cell by the
// verify.CheckAgg certification pass — the coalescing analogue of the
// prune license. Default off. Throughput series, stores, and bytes sent
// are identical either way on the DES; only message counts drop. The
// coalescing counters (static groups, runtime messages saved) are printed
// to stderr after each app and recorded in the -benchjson snapshot.
// -agg does not compose with -prune: each pass certifies its own
// rewritten schedule, so the combination is rejected up front.
//
// -trace=off disables runtime trace capture/replay (the PR 3 ablation).
// The printed series are identical either way — tracing only changes host
// wall-clock — so the flag exists to demonstrate exactly that. With
// tracing on, both runtimes' trace counters are printed after each app
// (to stderr, so CSV output stays clean).
//
// -trace-share=off keeps tracing but disables cross-shard sharing: every
// SPMD shard captures its own plan (the O(shards) PR 3 behavior) instead
// of specializing one shared capture. Series are identical either way; the
// capture counters show the O(shards)-vs-O(1) difference.
//
// -benchjson writes the sweep results to a JSON snapshot file (one object
// with the sweep parameters and a flat result row per measurement cell);
// see BENCH_PR3.json at the repo root for an example.
//
// -faults injects deterministic node crashes into every measurement cell:
// seed is the base fault seed (each cell derives its own), rate is the
// expected crashes per second (of virtual time on des; of modeled
// execution on native, where each launch rolls per quantum of its modeled
// duration). Regent-CR cells recover via checkpoint/restart on both
// backends; systems without recovery (the MPI baselines, the implicit
// runtime) record an error for cells where a crash lands, and the sweep
// continues.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cr"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/spmd"
	"repro/internal/verify"
)

// verifyApp runs the schedule certifier over the app's compiled schedules
// at every swept node count, under both sync lowerings: the race pass, the
// liveness pass, the spec pass, and — when prune is set — the certified
// pruning pass. Every pass emits the shared verify.Report schema; findings
// are printed to stderr prefixed with their pass name, and each (node
// count, sync) suite is appended to out when non-nil. It returns the
// number of findings printed.
func verifyApp(app harness.App, nodes []int, prune, agg bool, out *verify.Suite) int {
	bad := 0
	for _, n := range nodes {
		prog, _ := app.BuildProgram(n)
		for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
			fail := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "weakscale: %s @ %d nodes (%v): ", app.Name, n, sync)
				fmt.Fprintf(os.Stderr, format+"\n", args...)
				bad++
			}
			plans, err := spmd.CompileAll(prog, cr.Options{NumShards: n, Sync: sync, Agg: agg})
			if err != nil {
				fail("compile: %v", err)
				continue
			}
			suite := &verify.Suite{}
			rep, err := verify.VerifyAll(prog, plans)
			if err != nil {
				fail("verify: %v", err)
				continue
			}
			suite.Add(rep)
			ordered := plansInOrder(prog, plans)
			live := &verify.Report{Pass: "liveness", Findings: []verify.Finding{}}
			for _, plan := range ordered {
				a, err := verify.Analyze(plan)
				if err != nil {
					fail("liveness: %v", err)
					continue
				}
				live.Findings = append(live.Findings, a.CheckLiveness().Findings...)
			}
			suite.Add(live)
			spec := &verify.Report{Pass: "spec", Findings: []verify.Finding{}}
			if err := verify.CheckSpecAll(prog, plans); err != nil {
				spec.Findings = append(spec.Findings, verify.Finding{Kind: "spec", Detail: err.Error()})
			}
			suite.Add(spec)
			if prune {
				for _, plan := range ordered {
					_, prep, err := verify.PlanPrune(plan)
					if err != nil {
						fail("prune: %v", err)
						continue
					}
					suite.Add(prep)
				}
			}
			if agg {
				arep, err := verify.CheckAggAll(prog, plans)
				if err != nil {
					fail("agg: %v", err)
				} else {
					suite.Add(arep)
				}
			}
			for _, r := range suite.Reports {
				for _, f := range r.Findings {
					fail("FAIL [%s] %s", r.Pass, f)
				}
			}
			if out != nil {
				out.Reports = append(out.Reports, suite.Reports...)
			}
		}
	}
	return bad
}

// plansInOrder returns the compiled plans in program order (the plan map's
// iteration order is not deterministic).
func plansInOrder(prog *ir.Program, plans map[*ir.Loop]*cr.Compiled) []*cr.Compiled {
	var out []*cr.Compiled
	for _, s := range prog.Stmts {
		if loop, ok := s.(*ir.Loop); ok {
			if plan, ok := plans[loop]; ok {
				out = append(out, plan)
			}
		}
	}
	return out
}

// benchRow is one measurement cell in the -benchjson snapshot.
type benchRow struct {
	App        string  `json:"app"`
	System     string  `json:"system"`
	Nodes      int     `json:"nodes"`
	Iters      int     `json:"iters"`
	PerIterSec float64 `json:"per_iter_s"`
	Throughput float64 `json:"throughput_per_node"`
	Unit       string  `json:"unit"`
	WallSec    float64 `json:"wall_s"`
	Error      string  `json:"error,omitempty"`
}

// benchSnapshot is the top-level -benchjson document. The host block
// contextualizes wall-clock columns: native per-iteration times are real
// seconds on this many cores, not virtual machine time.
type benchSnapshot struct {
	Nodes      []int  `json:"nodes"`
	Backend    string `json:"backend"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Trace      string `json:"trace"`
	TraceShare string `json:"trace_share"`
	Faults     string `json:"faults,omitempty"`
	Procs      int    `json:"procs,omitempty"`
	Sched      string `json:"sched,omitempty"`
	TimePolicy string `json:"timepolicy,omitempty"`
	// Prune and PruneCounters are present only under -prune, so default-off
	// snapshots stay byte-identical to pre-prune ones. Agg and AggCounters
	// are likewise present only under -agg.
	Prune         string           `json:"prune,omitempty"`
	PruneCounters map[string]int64 `json:"prune_counters,omitempty"`
	Agg           string           `json:"agg,omitempty"`
	AggCounters   map[string]int64 `json:"agg_counters,omitempty"`
	Results       []benchRow       `json:"results"`
}

// onOff parses the shared on|off flag vocabulary (-trace, -trace-share,
// -prune, -sched, -agg), exiting with a usage error on anything else.
func onOff(name, val string) bool {
	switch val {
	case "on":
		return true
	case "off":
		return false
	}
	fmt.Fprintf(os.Stderr, "weakscale: bad -%s %q (want on or off)\n", name, val)
	os.Exit(1)
	panic("unreachable")
}

// parseFaults parses the -faults argument, "seed:rate".
func parseFaults(arg string) (*realm.FaultPlan, error) {
	seedStr, rateStr, ok := strings.Cut(arg, ":")
	if !ok {
		return nil, fmt.Errorf("bad -faults %q (want seed:rate, e.g. 42:0.5)", arg)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 0, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -faults seed %q: %v", seedStr, err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
	if err != nil || rate < 0 {
		return nil, fmt.Errorf("bad -faults rate %q (want crashes per simulated second >= 0)", rateStr)
	}
	return &realm.FaultPlan{Seed: seed, CrashRate: rate}, nil
}

// csvQuote renders an error message as a CSV field.
func csvQuote(s string) string {
	if s == "" {
		return ""
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func main() {
	appName := flag.String("app", "all", "application to run (stencil, miniaero, pennant, circuit, all)")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (default: the paper's 1..1024 sweep)")
	iters := flag.Int("iters", 0, "iterations per measurement (0 = app default)")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "measurement cells to run in parallel (output is identical at any width)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	verbose := flag.Bool("v", false, "print per-measurement progress")
	faults := flag.String("faults", "", "inject faults: seed:rate (crash rate in crashes per simulated second)")
	backend := flag.String("backend", bench.BackendDES, "realm backend: des (deterministic simulator, virtual time) or native (real goroutines, wall-clock)")
	procs := flag.Int("procs", 0, "native worker pool size per node (0 = an equal share of GOMAXPROCS)")
	sched := flag.String("sched", "on", "native worker pool: on, or off for goroutine-per-launch dispatch (A/B baseline)")
	timepolicy := flag.String("timepolicy", "modeled", "DES time-charging policy: modeled (Cray-XC cost model) or measured (fitted, needs -fit-in)")
	fitIn := flag.String("fit-in", "", "JSON file of fitted time coefficients to import (with -timepolicy measured)")
	fitOut := flag.String("fit-out", "", "fit a time policy from this native sweep and write its coefficients to this JSON file")
	trace := flag.String("trace", "on", "runtime trace capture/replay: on or off (ablation; results are identical)")
	traceShare := flag.String("trace-share", "on", "cross-shard trace sharing: on or off (ablation; results are identical)")
	benchjson := flag.String("benchjson", "", "write the sweep results as a JSON snapshot to this file")
	prune := flag.String("prune", "off", "certified redundant-sync pruning: off (default) or on (ablation; results are identical, sync edges and messages drop)")
	agg := flag.String("agg", "off", "coalesced exchange plans: off (default) or on (ablation; results are identical, one message per destination shard per exchange phase). Does not compose with -prune")
	doVerify := flag.Bool("verify", false, "run the schedule certifier over every compiled schedule before sweeping (exit 2 on findings)")
	verifyJSON := flag.String("verify-json", "", "write the certification suites as JSON to this file (\"-\" = stdout); implies -verify")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
			}
		}()
	}

	nodes := harness.DefaultNodes
	if *nodesFlag != "" {
		nodes = nil
		for _, part := range strings.Split(*nodesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "weakscale: bad node count %q\n", part)
				os.Exit(1)
			}
			nodes = append(nodes, n)
		}
	}

	if *backend != bench.BackendDES && *backend != bench.BackendNative {
		fmt.Fprintf(os.Stderr, "weakscale: bad -backend %q (want des or native)\n", *backend)
		os.Exit(1)
	}
	native := *backend == bench.BackendNative

	noSched := !onOff("sched", *sched)
	if *procs < 0 {
		fmt.Fprintf(os.Stderr, "weakscale: bad -procs %d (want >= 0)\n", *procs)
		os.Exit(1)
	}
	if (*procs > 0 || noSched) && !native {
		fmt.Fprintln(os.Stderr, "weakscale: -procs and -sched configure the native worker pool; use -backend native")
		os.Exit(1)
	}

	var fit *realm.MeasuredTime
	if *fitOut != "" {
		if !native {
			fmt.Fprintln(os.Stderr, "weakscale: -fit-out records real kernel durations; use -backend native")
			os.Exit(1)
		}
		fit = realm.NewMeasuredTime(realm.ModeledTime{Cfg: realm.DefaultConfig(1)})
	}
	var policy realm.TimePolicy
	switch *timepolicy {
	case "modeled":
		if *fitIn != "" {
			fmt.Fprintln(os.Stderr, "weakscale: -fit-in needs -timepolicy measured")
			os.Exit(1)
		}
	case "measured":
		if native {
			fmt.Fprintln(os.Stderr, "weakscale: -timepolicy measured re-models on the DES; native time is wall-clock")
			os.Exit(1)
		}
		if *fitIn == "" {
			fmt.Fprintln(os.Stderr, "weakscale: -timepolicy measured needs -fit-in (a file written by -fit-out)")
			os.Exit(1)
		}
		data, err := os.ReadFile(*fitIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		p, err := realm.ImportMeasuredTime(data, realm.ModeledTime{Cfg: realm.DefaultConfig(1)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		policy = p
	default:
		fmt.Fprintf(os.Stderr, "weakscale: bad -timepolicy %q (want modeled or measured)\n", *timepolicy)
		os.Exit(1)
	}

	var fp *realm.FaultPlan
	if *faults != "" {
		var err error
		if fp, err = parseFaults(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
	}

	noTrace := !onOff("trace", *trace)
	noShare := !onOff("trace-share", *traceShare)
	doPrune := onOff("prune", *prune)
	doAgg := onOff("agg", *agg)
	if doAgg && doPrune {
		// Rejected up front, before any compile or sweep work: each pass
		// certifies its own rewritten schedule (verify.CheckAgg vs
		// verify.PlanPrune), and neither models the other's rewrite.
		fmt.Fprintln(os.Stderr, "weakscale: -agg does not compose with -prune; certify one rewrite at a time")
		os.Exit(1)
	}

	var apps []harness.App
	if *appName == "all" {
		apps = harness.Apps()
	} else {
		app, err := harness.AppByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		apps = []harness.App{app}
	}

	var progress func(string)
	if *verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if *doVerify || *verifyJSON != "" {
		bad := 0
		var suites *verify.Suite
		if *verifyJSON != "" {
			suites = &verify.Suite{}
		}
		for _, app := range apps {
			bad += verifyApp(app, nodes, doPrune, doAgg, suites)
		}
		if suites != nil {
			buf, err := json.MarshalIndent(suites, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
				os.Exit(1)
			}
			buf = append(buf, '\n')
			if *verifyJSON == "-" {
				os.Stdout.Write(buf)
			} else if err := os.WriteFile(*verifyJSON, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "weakscale:", err)
				os.Exit(1)
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "weakscale: static certification failed (%d findings); not sweeping\n", bad)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "weakscale: static certification passed for every app, node count, and sync lowering")
	}

	snap := benchSnapshot{
		Nodes: nodes, Backend: *backend,
		HostCPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Trace: *trace, TraceShare: *traceShare, Faults: *faults,
	}
	if native {
		snap.Procs, snap.Sched = *procs, *sched
	} else {
		snap.TimePolicy = *timepolicy
	}
	if doPrune {
		snap.Prune = *prune
	}
	if doAgg {
		snap.Agg = *agg
	}
	for _, app := range apps {
		if *iters > 0 {
			app.Iters = *iters
		}
		app.Faults = fp
		app.Backend = *backend
		app.NoTrace = noTrace
		app.NoShare = noShare
		app.Procs = *procs
		app.NoSched = noSched
		app.Policy = policy
		if fit != nil {
			app.Fit = fit
		}
		var agg *bench.TraceAgg
		if !noTrace {
			agg = &bench.TraceAgg{}
			app.Trace = agg
		}
		var sagg *bench.SchedAgg
		if native {
			sagg = &bench.SchedAgg{}
			app.Sched = sagg
		}
		var pagg *bench.PruneAgg
		if doPrune {
			app.Prune = true
			pagg = &bench.PruneAgg{}
			app.PruneStats = pagg
		}
		var cagg *bench.AggCounters
		if doAgg {
			app.Agg = true
			cagg = &bench.AggCounters{}
			app.AggStats = cagg
		}
		series, err := harness.RunFigureParallel(app, nodes, *workers, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if agg != nil {
			rtStats, spmdStats := agg.Snapshot()
			fmt.Fprintf(os.Stderr, "weakscale: %s rt trace: %+v\n", app.Name, rtStats)
			fmt.Fprintf(os.Stderr, "weakscale: %s spmd trace: %+v\n", app.Name, spmdStats)
		}
		if sagg != nil {
			ss := sagg.Snapshot()
			fmt.Fprintf(os.Stderr, "weakscale: %s sched: workers=%d dispatches=%d steals=%d (local %d, remote %d) inline=%d\n",
				app.Name, ss.Workers, ss.Dispatches, ss.Steals, ss.LocalSteals, ss.RemoteSteals, ss.InlineCompletions)
		}
		if pagg != nil {
			pc := pagg.Snapshot()
			fmt.Fprintf(os.Stderr, "weakscale: %s prune: edges=%d (war %d, done %d, chain %d) init_copies=%d sync_edges %d->%d\n",
				app.Name, pc["pruned_edges"], pc["pruned_war"], pc["pruned_done"], pc["pruned_chain"],
				pc["pruned_init_copies"], pc["sync_edges_before"], pc["sync_edges_after"])
			if snap.PruneCounters == nil {
				snap.PruneCounters = make(map[string]int64)
			}
			for k, v := range pc {
				snap.PruneCounters[k] += v
			}
		}
		if cagg != nil {
			ac := cagg.Snapshot()
			fmt.Fprintf(os.Stderr, "weakscale: %s agg: phases=%d groups=%d (multi-member %d, merged pairs %d) runtime groups=%d saved_messages=%d messages=%d\n",
				app.Name, ac["phases"], ac["agg_groups"], ac["multi_member_groups"], ac["merged_pairs"],
				ac["runtime_agg_groups"], ac["runtime_saved_messages"], ac["runtime_messages"])
			if snap.AggCounters == nil {
				snap.AggCounters = make(map[string]int64)
			}
			for k, v := range ac {
				snap.AggCounters[k] += v
			}
		}
		for _, s := range series {
			for _, p := range s.Points {
				snap.Results = append(snap.Results, benchRow{
					App: app.Name, System: s.System, Nodes: p.Nodes,
					Iters: app.Iters, PerIterSec: p.PerIter.Seconds(),
					Throughput: p.Throughput, Unit: app.Unit,
					WallSec: p.Wall.Seconds(), Error: p.Err,
				})
			}
		}
		if *csv {
			// wall_s (host wall-clock, never identical between runs) is the
			// last column so schedule-equivalence diffs can strip it.
			fmt.Printf("app,system,nodes,per_iter_s,throughput_per_node_%s,error,wall_s\n", strings.ReplaceAll(app.Unit, " ", "_"))
			for _, s := range series {
				for _, p := range s.Points {
					fmt.Printf("%s,%s,%d,%g,%g,%s,%g\n", app.Name, s.System, p.Nodes, p.PerIter.Seconds(), p.Throughput, csvQuote(p.Err), p.Wall.Seconds())
				}
			}
		} else {
			fmt.Print(harness.FormatFigure(app, series))
			fmt.Println()
		}
	}

	if fit != nil {
		launches, copies := fit.Samples()
		buf, err := fit.ExportJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*fitOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "weakscale: wrote fitted time policy (%d launch / %d copy samples) to %s\n",
			launches, copies, *fitOut)
	}

	if *benchjson != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchjson, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weakscale:", err)
			os.Exit(1)
		}
	}
}
