// Command crlang compiles a program written in the textual Regent-subset
// frontend (see internal/lang) and executes it — sequentially, on the
// implicit runtime, or control-replicated — printing the compiled plan and
// the final scalar environment.
//
// Usage:
//
//	crlang [-engine seq|implicit|cr] [-nodes N] [-dump] file.cr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/realm"
	"repro/internal/rt"
	"repro/internal/spmd"
)

func main() {
	engine := flag.String("engine", "cr", "execution engine: seq, implicit, or cr")
	nodes := flag.Int("nodes", 4, "simulated node count (implicit, cr)")
	dump := flag.Bool("dump", false, "print the compiled ir program")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crlang [-engine seq|implicit|cr] [-nodes N] [-dump] file.cr")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crlang:", err)
		os.Exit(1)
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crlang:", err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(ir.Dump(prog))
		fmt.Println()
	}

	var env ir.MapEnv
	switch *engine {
	case "seq":
		res := ir.ExecSequential(prog)
		env = res.Env
		fmt.Println("sequential execution complete")
	case "implicit":
		sim, err := realm.NewSim(realm.DefaultConfig(*nodes))
		if err != nil {
			fmt.Fprintln(os.Stderr, "crlang:", err)
			os.Exit(1)
		}
		res, err := rt.New(sim, prog, rt.Real).Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crlang:", err)
			os.Exit(1)
		}
		env = res.Env
		fmt.Printf("implicit execution complete: %v virtual, %d tasks, %d messages\n",
			res.Elapsed, res.Stats.TasksRun, res.Stats.Messages)
	case "cr":
		plans, err := spmd.CompileAll(prog, cr.Options{NumShards: *nodes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crlang:", err)
			os.Exit(1)
		}
		for _, plan := range plans {
			fmt.Printf("replicated loop %q: %d shards, body:\n", plan.Loop.Var, plan.Opts.NumShards)
			for i, op := range plan.Body {
				switch {
				case op.Launch != nil:
					fmt.Printf("  %d: launch %s\n", i, op.Launch.Label)
				case op.Copy != nil:
					fmt.Printf("  %d: %v\n", i, op.Copy)
				}
			}
		}
		sim, err := realm.NewSim(realm.DefaultConfig(*nodes))
		if err != nil {
			fmt.Fprintln(os.Stderr, "crlang:", err)
			os.Exit(1)
		}
		res, err := spmd.New(sim, prog, ir.ExecReal, plans).Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crlang:", err)
			os.Exit(1)
		}
		env = res.Env
		fmt.Printf("control-replicated execution complete: %v virtual, %d tasks, %d messages\n",
			res.Elapsed, res.Stats.TasksRun, res.Stats.Messages)
	default:
		fmt.Fprintf(os.Stderr, "crlang: unknown engine %q\n", *engine)
		os.Exit(1)
	}

	if len(env) > 0 {
		var names []string
		for k := range env {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Println("final scalars:")
		for _, k := range names {
			fmt.Printf("  %s = %g\n", k, env[k])
		}
	}
}
