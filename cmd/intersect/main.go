// Command intersect regenerates Table 1 of the paper: the wall-clock
// running times of the dynamic region-intersection phases (shallow, using
// interval trees / BVHs over subregion bounds; complete, computing exact
// overlaps) for each application's communication partitions.
//
// Usage:
//
//	intersect [-nodes 64,1024] [-j workers] [-csv] [-benchjson file]
//	          [-backend des|native]
//
// -backend is accepted for CLI symmetry with weakscale and recorded in the
// -benchjson snapshot. Table 1 measures the compiler's intersection phases,
// which run on the host before any backend executes, so the rows are the
// same either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/harness"
)

// benchSnapshot is the top-level -benchjson document.
type benchSnapshot struct {
	Backend string     `json:"backend"`
	Rows    []benchRow `json:"rows"`
}

// benchRow is one Table 1 row in the -benchjson snapshot.
type benchRow struct {
	App        string  `json:"app"`
	Nodes      int     `json:"nodes"`
	ShallowMs  float64 `json:"shallow_ms"`
	CompleteMs float64 `json:"complete_ms"`
	Candidates int     `json:"candidates"`
	FinalPairs int     `json:"pairs"`
}

func main() {
	nodesFlag := flag.String("nodes", "64,1024", "comma-separated node counts")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "measurement cells to run in parallel (output rows are identical at any width)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	benchjson := flag.String("benchjson", "", "write the Table 1 rows as a JSON snapshot to this file")
	backend := flag.String("backend", bench.BackendDES, "realm backend (recorded in the snapshot; the intersection phases run in the compiler and are backend-independent)")
	flag.Parse()

	if *backend != bench.BackendDES && *backend != bench.BackendNative {
		fmt.Fprintf(os.Stderr, "intersect: bad -backend %q (want des or native)\n", *backend)
		os.Exit(1)
	}

	var nodes []int
	for _, part := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "intersect: bad node count %q\n", part)
			os.Exit(1)
		}
		nodes = append(nodes, n)
	}

	rows, err := harness.Table1Parallel(nodes, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intersect:", err)
		os.Exit(1)
	}
	if *benchjson != "" {
		out := benchSnapshot{Backend: *backend}
		for _, r := range rows {
			out.Rows = append(out.Rows, benchRow{
				App: r.App, Nodes: r.Nodes, ShallowMs: r.ShallowMs,
				CompleteMs: r.CompleteMs, Candidates: r.Candidates, FinalPairs: r.FinalPairs,
			})
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "intersect:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchjson, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "intersect:", err)
			os.Exit(1)
		}
	}
	if *csv {
		fmt.Println("app,nodes,shallow_ms,complete_ms,candidates,pairs")
		for _, r := range rows {
			fmt.Printf("%s,%d,%.3f,%.3f,%d,%d\n", r.App, r.Nodes, r.ShallowMs, r.CompleteMs, r.Candidates, r.FinalPairs)
		}
		return
	}
	fmt.Print(harness.FormatTable1(rows))
}
