// Command trace runs one of the evaluation applications under control
// replication (or the implicit runtime) on the simulated machine with the
// timeline tracer attached, and writes the execution timeline in Chrome
// Trace Event Format — open it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing to see per-processor task occupancy and the halo
// messages between nodes.
//
// Usage:
//
//	trace [-app stencil|miniaero|pennant|circuit] [-nodes N] [-cr=true]
//	      [-iters N] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cr"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/rt"
	"repro/internal/spmd"
)

func main() {
	appName := flag.String("app", "pennant", "application to trace")
	nodes := flag.Int("nodes", 4, "node count")
	iters := flag.Int("iters", 4, "loop iterations")
	useCR := flag.Bool("cr", true, "trace control-replicated execution (false: implicit runtime)")
	out := flag.String("o", "trace.json", "output file")
	flag.Parse()

	app, err := harness.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	prog, loop := app.BuildProgram(*nodes)
	loop.Trip = *iters

	sim, err := realm.NewSim(realm.DefaultConfig(*nodes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	tr := realm.NewTracer()
	sim.SetTracer(tr)

	if *useCR {
		plan, err := cr.Compile(prog, loop, cr.Options{NumShards: *nodes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if _, err := spmd.New(sim, prog, ir.ExecModeled, map[*ir.Loop]*cr.Compiled{loop: plan}).Run(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	} else {
		if _, err := rt.New(sim, prog, rt.Modeled).Run(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d task spans, %d messages across %d nodes (%s, %s)\n",
		*out, tr.Spans(), tr.Messages(), *nodes, app.Name,
		map[bool]string{true: "control-replicated", false: "implicit"}[*useCR])
}
