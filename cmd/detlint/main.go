// Command detlint runs the determinism analyzers (internal/lint) over Go
// packages. It speaks two protocols:
//
//	detlint [-json] [packages...]     standalone; defaults to the
//	                                  simulator core (realm, rt, spmd)
//	go vet -vettool=$(which detlint)  unit-at-a-time under the go command
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// defaultPackages is the determinism boundary: the DES and the two
// executors must replay bit-identically. The native backend rides along
// for the analyzers its Allowlist entry leaves active (maprange).
var defaultPackages = []string{
	"repro/internal/realm",
	"repro/internal/realm/native",
	"repro/internal/rt",
	"repro/internal/spmd",
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes the tool before handing it compilation units.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("detlint version v1.0.0\n")
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := lint.VetUnit(os.Stderr, args)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
		return code
	}

	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = defaultPackages
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var diags []lint.Diagnostic
	for _, p := range pkgs {
		diags = append(diags, lint.Run(p.Fset, p.Files, p.Types, p.Info, lint.All())...)
	}
	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	fmt.Fprintf(os.Stderr, "detlint: %d package(s) clean\n", len(pkgs))
	return 0
}
