// Command crc is the control replication compiler driver: it builds one of
// the evaluation applications' implicitly parallel programs, runs the
// control replication pass on its main loop, and dumps the result of each
// phase — the transformed loop body with the inserted copies, the
// placement report, the communication pairs, the shard ownership, and the
// intersection timings.
//
// Usage:
//
//	crc [-app stencil|miniaero|pennant|circuit] [-nodes N] [-shards N]
//	    [-sync p2p|barrier] [-pairs] [-prune] [-agg] [-verify]
//	    [-verify-json file]
//
// -verify runs the schedule certifier (internal/verify) over the compiled
// loop: the race pass (every conflicting access pair must be ordered by
// the inserted copies and sync), the liveness pass (the wait-for graph
// must be free of cycles, never-triggered events, and barrier phase
// mismatches), and the spec pass (the specialization tables must match
// recomputation). -verify-json writes the full certification suite — one
// verify.Report per pass, each with its pass name, findings, stats, and
// counters — as JSON to the given file, or to stdout with "-", and
// implies -verify.
//
// -prune runs the certified redundant-sync pruning pass and reports which
// sync edges and init copies it removes; with -verify the prune report
// joins the suite (the pruned schedule is itself re-certified).
//
// -agg compiles with coalesced exchange plans — each exchange phase's copy
// pairs merged into one message per (producing shard, destination shard)
// group — runs the verify.CheckAgg certification over the aggregated
// schedule (table recomputation, liveness, races), and reports the phases
// and multi-member groups. With -verify the agg report joins the suite.
// -agg does not compose with -prune: each pass certifies its own rewrite.
//
// Exit status: 0 on success, 1 on usage or compile errors, 2 when any
// certification pass reports findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cr"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/region"
	"repro/internal/verify"
)

func main() {
	appName := flag.String("app", "stencil", "application to compile")
	nodes := flag.Int("nodes", 4, "node count to build the app for")
	shards := flag.Int("shards", 0, "shard count (default: nodes)")
	syncMode := flag.String("sync", "p2p", "synchronization lowering: p2p or barrier")
	showPairs := flag.Bool("pairs", false, "list every communication pair")
	dump := flag.Bool("dump", false, "print the source program before compiling")
	doVerify := flag.Bool("verify", false, "run the schedule certifier: races, liveness, spec (exit 2 on findings)")
	verifyJSON := flag.String("verify-json", "", "write the certification suite as JSON to this file (\"-\" = stdout); implies -verify")
	doPrune := flag.Bool("prune", false, "run the certified redundant-sync pruning pass and report what it removes")
	doAgg := flag.Bool("agg", false, "compile with coalesced exchange plans (one message per destination shard per exchange phase) and report the aggregation groups; does not compose with -prune")
	flag.Parse()

	// With the JSON suite going to stdout, the human-readable report moves
	// to stderr so stdout stays machine-parseable (crc ... -verify-json - |
	// jq). fmt.Print* resolves os.Stdout at each call, so the swap covers
	// every report line; jsonOut keeps the real stream for the suite.
	jsonOut := os.Stdout
	if *verifyJSON == "-" {
		os.Stdout = os.Stderr
	}

	app, err := harness.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crc:", err)
		os.Exit(1)
	}
	if *shards == 0 {
		*shards = *nodes
	}
	sync := cr.PointToPoint
	if *syncMode == "barrier" {
		sync = cr.BarrierSync
	} else if *syncMode != "p2p" {
		fmt.Fprintf(os.Stderr, "crc: unknown sync mode %q\n", *syncMode)
		os.Exit(1)
	}

	if *doAgg && *doPrune {
		fmt.Fprintln(os.Stderr, "crc: -agg does not compose with -prune; certify one rewrite at a time")
		os.Exit(1)
	}

	prog, loop := app.BuildProgram(*nodes)
	if *dump {
		fmt.Print(ir.Dump(prog))
		fmt.Println()
	}
	plan, err := cr.Compile(prog, loop, cr.Options{NumShards: *shards, Sync: sync, Agg: *doAgg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crc:", err)
		os.Exit(1)
	}

	fmt.Printf("control replication: %s @ %d nodes, %d shards, %s sync\n\n",
		app.Name, *nodes, plan.Opts.NumShards, plan.Opts.Sync)

	fmt.Printf("launch domain: %d points, block-partitioned over %d shards (%d..%d colors each)\n",
		len(plan.Domain), plan.Opts.NumShards,
		len(plan.Owned[len(plan.Owned)-1]), len(plan.Owned[0]))

	fmt.Println("\npartitions used in the replicated loop:")
	for _, p := range plan.UsedParts {
		kind := "aliased"
		if p.Disjoint() {
			kind = "disjoint"
		}
		fmt.Printf("  %-24s %-9s fields=%v\n", p.Name(), kind, plan.PartFields[p])
	}

	fmt.Println("\ntransformed loop body:")
	for i, op := range plan.Body {
		switch {
		case op.Launch != nil:
			label := op.Launch.Label
			if label == "" {
				label = op.Launch.Task.Name
			}
			fmt.Printf("  %2d  launch %s\n", i, label)
		case op.Set != nil:
			fmt.Printf("  %2d  scalar %s = ...\n", i, op.Set.Name)
		case op.Copy != nil:
			fmt.Printf("  %2d  %v\n", i, op.Copy)
			if *showPairs {
				for _, pr := range op.Copy.Pairs {
					fmt.Printf("        %v -> %v  overlap %d elements (shard %d -> %d)\n",
						pr.Src, pr.Dst, pr.Overlap.Volume(), plan.ShardOf[pr.Src], plan.ShardOf[pr.Dst])
				}
			}
		}
	}
	if len(plan.InitCopies) > 0 {
		fmt.Println("\nhoisted loop-invariant copies (run once before the loop):")
		for _, cp := range plan.InitCopies {
			fmt.Printf("  %v\n", cp)
		}
	}

	fmt.Println("\nfinalization sources (disjoint written partitions):")
	for _, p := range plan.WrittenDisjoint {
		fmt.Printf("  %s\n", p.Name())
	}

	fmt.Printf("\nplacement report: inserted=%d redundant-removed=%d dead-removed=%d hoisted=%d final=%d\n",
		plan.Report.CopiesInserted, plan.Report.RedundantRemoved,
		plan.Report.DeadRemoved, plan.Report.Hoisted, plan.Report.FinalCopies)

	var vol int64
	count := 0
	reduceCount := 0
	for _, op := range plan.Body {
		if op.Copy == nil {
			continue
		}
		count += len(op.Copy.Pairs)
		if op.Copy.Reduce != region.ReduceNone {
			reduceCount += len(op.Copy.Pairs)
		}
		for _, pr := range op.Copy.Pairs {
			vol += pr.Overlap.Volume()
		}
	}
	fmt.Printf("communication: %d pairs per iteration (%d reduction applies), %d elements moved\n",
		count, reduceCount, vol)
	fmt.Printf("intersections: shallow %v (%d candidates), complete %v (%d non-empty pairs)\n",
		plan.Timings.Shallow, plan.Timings.Candidates, plan.Timings.Complete, plan.Timings.Pairs)

	var aggRep *verify.Report
	if *doAgg {
		rep, err := verify.CheckAgg(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crc: agg:", err)
			os.Exit(1)
		}
		aggRep = rep
		c := rep.Counters
		fmt.Printf("\ncoalesced exchange plans: %d phases, %d groups (%d multi-member), %d pairs merged away per iteration\n",
			c["phases"], c["agg_groups"], c["multi_member_groups"], c["merged_pairs"])
		for pi, ph := range plan.Spec.Phases {
			fmt.Printf("  phase %d: ops [%d,%d)\n", pi, ph.Start, ph.End)
			for s, gl := range ph.ByShard {
				for _, g := range gl {
					if len(g.Members) < 2 {
						continue
					}
					fmt.Printf("    shard %d -> %d: %d pairs in one message\n", s, g.DstShard, len(g.Members))
				}
			}
		}
	}

	var pruneRep *verify.Report
	if *doPrune {
		info, rep, err := verify.PlanPrune(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crc: prune:", err)
			os.Exit(1)
		}
		pruneRep = rep
		if info != nil {
			plan.Prune = info
			c := rep.Counters
			fmt.Printf("\ncertified pruning: %d sync edges removed (%d war, %d done, %d chain), %d dead init copies; sync edges %d -> %d\n",
				c["pruned_edges"], c["pruned_war"], c["pruned_done"], c["pruned_chain"],
				c["pruned_init_copies"], c["sync_edges_before"], c["sync_edges_after"])
		}
	}

	if *doVerify || *verifyJSON != "" {
		a, err := verify.Analyze(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crc: verify:", err)
			os.Exit(1)
		}
		suite := &verify.Suite{}
		suite.Add(a.Check())
		suite.Add(a.CheckLiveness())
		specRep := &verify.Report{Pass: "spec", Findings: []verify.Finding{}}
		if err := verify.CheckSpec(plan); err != nil {
			specRep.Findings = append(specRep.Findings, verify.Finding{Kind: "spec", Detail: err.Error()})
		}
		suite.Add(specRep)
		suite.Add(pruneRep)
		suite.Add(aggRep)
		if *verifyJSON != "" {
			buf, err := json.MarshalIndent(suite, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crc: verify:", err)
				os.Exit(1)
			}
			buf = append(buf, '\n')
			if *verifyJSON == "-" {
				jsonOut.Write(buf)
			} else if err := os.WriteFile(*verifyJSON, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "crc: verify:", err)
				os.Exit(1)
			}
		}
		s := suite.Reports[0].Stats
		fmt.Printf("\nstatic certification: %d conflicts (%d cross-shard) over %d instances, %d-node happens-before graph\n",
			s.Conflicts, s.CrossShard, s.Instances, s.Nodes)
		if suite.OK() {
			fmt.Println("certified: races, liveness, and spec passes all clean")
		} else {
			for _, rep := range suite.Reports {
				for _, f := range rep.Findings {
					fmt.Printf("  FAIL [%s] %s\n", rep.Pass, f)
				}
			}
			fmt.Printf("certification FAILED: %d findings\n", suite.NumFindings())
			os.Exit(2)
		}
	}
}
