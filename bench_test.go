// Package repro_test holds the top-level benchmark harness: one benchmark
// per figure and table of the paper's evaluation section. Each benchmark
// regenerates its figure's data series (throughput per node across the
// weak-scaling node sweep, for every system variant) on the simulated
// machine and prints the same rows the paper plots. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use a condensed node sweep to stay fast; cmd/weakscale
// runs the full 1..1024 sweep.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/harness"
)

// benchNodes is the condensed weak-scaling sweep used by the benchmarks.
var benchNodes = []int{1, 4, 16, 64, 256, 1024}

func runFigure(b *testing.B, name string, noTrace bool) {
	runFigureOpts(b, name, noTrace, false, false, false)
}

func runFigureShare(b *testing.B, name string, noTrace, noShare bool) {
	runFigureOpts(b, name, noTrace, noShare, false, false)
}

func runFigureOpts(b *testing.B, name string, noTrace, noShare, prune, agg bool) {
	app, err := harness.AppByName(name)
	if err != nil {
		b.Fatal(err)
	}
	app.NoTrace = noTrace
	app.NoShare = noShare
	app.Prune = prune
	app.Agg = agg
	for i := 0; i < b.N; i++ {
		series, err := harness.RunFigure(app, benchNodes, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			fmt.Print(harness.FormatFigure(app, series))
			last := len(series[0].Points) - 1
			for _, s := range series {
				eff := s.Points[last].Throughput / s.Points[0].Throughput
				b.ReportMetric(100*eff, "eff@"+fmt.Sprint(benchNodes[last])+"-"+s.System+"-%")
			}
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: Stencil weak scaling (Regent with
// and without control replication vs the PRK MPI and MPI+OpenMP codes).
func BenchmarkFigure6Stencil(b *testing.B) { runFigure(b, "stencil", false) }

// BenchmarkFigure6StencilAgg is the coalesced-exchange ablation of
// Figure 6: the same sweep with aggregation attached to every CR cell
// (the -agg flag), each cell licensed by verify.CheckAgg. At the paper's
// one-piece-per-shard scale every aggregation group is a singleton, so
// the printed figure must be byte-identical to BenchmarkFigure6Stencil —
// coalescing merges messages, never a modeled result at this scale.
func BenchmarkFigure6StencilAgg(b *testing.B) { runFigureOpts(b, "stencil", false, false, false, true) }

// BenchmarkFigure6StencilNoTrace is the trace ablation of Figure 6: the
// same sweep with runtime trace capture/replay disabled. The printed
// figure must be byte-identical to BenchmarkFigure6Stencil (tracing never
// changes the simulated schedule); only host wall-clock differs.
func BenchmarkFigure6StencilNoTrace(b *testing.B) { runFigure(b, "stencil", true) }

// BenchmarkFigure6StencilNoShare is the trace-sharing ablation of Figure 6:
// tracing stays on but every shard captures its own plan (the O(shards)
// behavior) instead of specializing one shared capture. The printed figure
// must be byte-identical to BenchmarkFigure6Stencil; only host wall-clock
// capture work differs.
func BenchmarkFigure6StencilNoShare(b *testing.B) { runFigureShare(b, "stencil", false, true) }

// BenchmarkFigure7 regenerates Figure 7: MiniAero weak scaling (Regent vs
// MPI+Kokkos in rank-per-core and rank-per-node configurations).
func BenchmarkFigure7MiniAero(b *testing.B) { runFigure(b, "miniaero", false) }

// BenchmarkFigure8 regenerates Figure 8: PENNANT weak scaling (Regent vs
// MPI and MPI+OpenMP, with the per-cycle dt allreduce).
func BenchmarkFigure8PENNANT(b *testing.B) { runFigure(b, "pennant", false) }

// BenchmarkFigure8PENNANTPrune is the certified-pruning ablation of
// Figure 8: the same sweep with the redundant-sync prune pass attached to
// every CR cell (the -prune flag). The printed figure must be
// byte-identical to BenchmarkFigure8PENNANT — pruning removes sync edges
// and dead initialization copies, never a modeled result.
func BenchmarkFigure8PENNANTPrune(b *testing.B) { runFigureOpts(b, "pennant", false, false, true, false) }

// BenchmarkFigure9 regenerates Figure 9: Circuit weak scaling (Regent with
// vs without control replication).
func BenchmarkFigure9Circuit(b *testing.B) { runFigure(b, "circuit", false) }

// BenchmarkTable1 regenerates Table 1: wall-clock running times of the
// shallow and complete region-intersection phases for each application at
// 64 and 1024 nodes.
func BenchmarkTable1Intersections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1([]int{64, 1024})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			fmt.Print(harness.FormatTable1(rows))
			for _, r := range rows {
				if r.Nodes == 1024 {
					b.ReportMetric(r.ShallowMs, r.App+"-shallow-ms")
					b.ReportMetric(r.CompleteMs, r.App+"-complete-ms")
				}
			}
		}
	}
}

// BenchmarkFigure6StencilNative runs the Figure 6 stencil under control
// replication on the native backend: real kernels on real goroutines over
// shared memory, timed by the wall clock. The reported per-iteration time
// is what the DES's virtual clock models; scaling GOMAXPROCS from 1 to the
// node's core count shows the real speedup the SPMD schedule exposes
// (BENCH_PR6.json records the measured ratio).
func BenchmarkFigure6StencilNative(b *testing.B) {
	benchStencilNative(b, false)
}

// BenchmarkFigure6StencilNativeNoSched is the scheduler A/B baseline: the
// same native run with the worker pool disabled, every kernel and copy
// body on its own freshly spawned goroutine (the pre-scheduler dispatch).
// Comparing against BenchmarkFigure6StencilNative isolates what the
// per-(node,proc) deque pool buys.
func BenchmarkFigure6StencilNativeNoSched(b *testing.B) {
	benchStencilNative(b, true)
}

func benchStencilNative(b *testing.B, noSched bool) {
	const nodes = 8
	app, err := harness.AppByName("stencil")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		per, err := app.Measure("regent-cr", nodes, 0, bench.MeasureOpts{Backend: bench.BackendNative, NoSched: noSched})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(per.Seconds()*1e3, "ms/iter")
		}
	}
}
