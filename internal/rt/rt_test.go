package rt

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
)

func testConfig(nodes int) realm.Config {
	cfg := realm.DefaultConfig(nodes)
	cfg.CoresPerNode = 4
	return cfg
}

// runBoth executes a program sequentially and on the implicit runtime and
// returns both results.
func runBoth(t *testing.T, prog *ir.Program, nodes int) (*ir.SeqResult, *Result) {
	t.Helper()
	seq := ir.ExecSequential(prog)
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, prog, Real)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return seq, res
}

func assertStoresEqual(t *testing.T, seq *ir.SeqResult, res *Result, r *region.Region, f region.FieldID) {
	t.Helper()
	want, got := seq.Stores[r], res.Stores[r]
	if !got.EqualOn(want, f, r.IndexSpace()) {
		bad := 0
		r.IndexSpace().Each(func(p geometry.Point) bool {
			if got.Get(f, p) != want.Get(f, p) {
				if bad < 5 {
					t.Errorf("%s[%v] field %d = %v, want %v", r.Name(), p, f, got.Get(f, p), want.Get(f, p))
				}
				bad++
			}
			return true
		})
		t.Fatalf("store mismatch on %s (%d points differ)", r.Name(), bad)
	}
}

func TestImplicitMatchesSequentialFigure2(t *testing.T) {
	for _, tc := range []struct {
		n, nt int64
		trip  int
		nodes int
	}{
		{24, 4, 1, 1},
		{24, 4, 3, 2},
		{48, 8, 4, 4},
		{30, 5, 2, 3}, // colors not divisible by nodes
	} {
		f := progtest.NewFigure2(tc.n, tc.nt, tc.trip)
		seq, res := runBoth(t, f.Prog, tc.nodes)
		assertStoresEqual(t, seq, res, f.A, f.Val)
		assertStoresEqual(t, seq, res, f.B, f.Val)
	}
}

func TestImplicitScalarReduceFuture(t *testing.T) {
	f := progtest.NewScalarSum(40, 8)
	seq, res := runBoth(t, f.Prog, 4)
	if res.Env["total"] != seq.Env["total"] {
		t.Errorf("total = %v, want %v", res.Env["total"], seq.Env["total"])
	}
	if res.Env["doubled"] != seq.Env["doubled"] || res.Env["doubled"] != 2*res.Env["total"] {
		t.Errorf("doubled = %v", res.Env["doubled"])
	}
}

func TestImplicitRegionReductionMatchesSequential(t *testing.T) {
	f := progtest.NewRegionReduce(32, 4, 3)
	seq, res := runBoth(t, f.Prog, 4)
	assertStoresEqual(t, seq, res, f.R, f.Acc)
	assertStoresEqual(t, seq, res, f.R, f.Prog.FieldSpaces[f.R].Field("out"))
}

func TestImplicitDeterministic(t *testing.T) {
	run := func() (realm.Time, realm.Stats) {
		f := progtest.NewFigure2(48, 8, 3)
		sim := realm.MustNewSim(testConfig(4))
		eng := New(sim, f.Prog, Real)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.Stats
	}
	e1, s1 := run()
	for i := 0; i < 3; i++ {
		e2, s2 := run()
		if e1 != e2 || s1 != s2 {
			t.Fatalf("non-deterministic run: %v/%+v vs %v/%+v", e1, s1, e2, s2)
		}
	}
}

func TestModeledModeRunsWithoutStores(t *testing.T) {
	f := progtest.NewFigure2(1000, 8, 5)
	sim := realm.MustNewSim(testConfig(4))
	eng := New(sim, f.Prog, Modeled)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stores) != 0 {
		t.Error("modeled mode should not allocate stores")
	}
	if res.Elapsed <= 0 {
		t.Error("modeled run should advance virtual time")
	}
	times := res.IterTimes[f.Loop]
	if len(times) != 5 {
		t.Fatalf("iteration times = %v", times)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Errorf("iteration completions not increasing: %v", times)
		}
	}
}

func TestModeledMatchesRealTiming(t *testing.T) {
	// The virtual-time behaviour must not depend on whether kernels run.
	f1 := progtest.NewFigure2(64, 8, 3)
	sim1 := realm.MustNewSim(testConfig(4))
	r1, err := New(sim1, f1.Prog, Real).Run()
	if err != nil {
		t.Fatal(err)
	}
	f2 := progtest.NewFigure2(64, 8, 3)
	sim2 := realm.MustNewSim(testConfig(4))
	r2, err := New(sim2, f2.Prog, Modeled).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed {
		t.Errorf("Real elapsed %v != Modeled elapsed %v", r1.Elapsed, r2.Elapsed)
	}
}

func TestDataMovementOnlyAcrossNodes(t *testing.T) {
	f1 := progtest.NewFigure2(48, 8, 2)
	sim1 := realm.MustNewSim(testConfig(1))
	if _, err := New(sim1, f1.Prog, Real).Run(); err != nil {
		t.Fatal(err)
	}
	if sim1.Stats().Messages != 0 {
		t.Errorf("single node run sent %d messages", sim1.Stats().Messages)
	}

	f2 := progtest.NewFigure2(48, 8, 2)
	sim2 := realm.MustNewSim(testConfig(4))
	if _, err := New(sim2, f2.Prog, Real).Run(); err != nil {
		t.Fatal(err)
	}
	st := sim2.Stats()
	if st.Messages == 0 || st.BytesSent == 0 {
		t.Errorf("multi-node run should move data: %+v", st)
	}
}

func TestControlOverheadScalesWithTasks(t *testing.T) {
	// With negligible kernels, per-iteration time is dominated by the
	// control thread's serial launch overhead, which grows linearly with
	// the number of tasks — the scalability failure of Figure 1 (§1).
	perIter := func(nt int64, nodes int) realm.Time {
		f := progtest.NewFigure2(4*nt, nt, 6)
		// Shrink kernels to make control the bottleneck.
		for _, s := range f.Loop.Body {
			s.(*ir.Launch).Task.CostPerElem = 0.1
		}
		sim := realm.MustNewSim(testConfig(nodes))
		eng := New(sim, f.Prog, Modeled)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		times := res.IterTimes[f.Loop]
		return (times[5] - times[1]) / 4
	}
	small := perIter(8, 4)
	large := perIter(64, 4)
	ratio := float64(large) / float64(small)
	if ratio < 5 || ratio > 12 {
		t.Errorf("8x more tasks changed per-iteration control time by %.1fx, want ~8x", ratio)
	}
}

func TestPipelining(t *testing.T) {
	// With the scheduling window, total time must be well below the sum of
	// serialized (control + kernel) per iteration: control of iteration t+1
	// overlaps kernels of iteration t.
	f := progtest.NewFigure2(4096, 4, 8)
	for _, s := range f.Loop.Body {
		s.(*ir.Launch).Task.CostPerElem = 4000 // ~4 ms per task kernel
	}
	sim := realm.MustNewSim(testConfig(4))
	eng := New(sim, f.Prog, Modeled)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	kernelPerIter := realm.Time(2 * 4096 / 4 * 4000 / int64(eng.Over.KernelCores))
	controlPerIter := realm.Time(8) * eng.Over.LaunchBase
	serialized := realm.Time(8) * (kernelPerIter + controlPerIter)
	if res.Elapsed >= serialized {
		t.Errorf("no pipelining: elapsed %v >= fully serialized %v", res.Elapsed, serialized)
	}
}

func TestIntraLaunchConflictRejected(t *testing.T) {
	p := ir.NewProgram("conflict")
	fs := region.NewFieldSpace("x")
	x := fs.Field("x")
	n := int64(16)
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[r] = fs
	pr := r.Block("PR", 4)
	img := region.Image(r, pr, "IMG", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((pt.X() + 1) % n)}
	})
	bad := &ir.TaskDecl{
		Name: "bad",
		Params: []ir.Param{
			{Priv: ir.PrivReadWrite, Fields: []region.FieldID{x}},
			{Priv: ir.PrivRead, Fields: []region.FieldID{x}},
		},
		Kernel: func(tc *ir.TaskCtx) {},
	}
	p.Add(&ir.Launch{Task: bad, Domain: ir.Colors1D(4), Args: []ir.RegionArg{{Part: pr}, {Part: img}}})
	sim := realm.MustNewSim(testConfig(2))
	_, err := New(sim, p, Real).Run()
	if err == nil || !strings.Contains(err.Error(), "conflicting aliased arguments") {
		t.Errorf("expected intra-launch conflict error, got %v", err)
	}
}

func TestUseDominationKeepsHistoryBounded(t *testing.T) {
	// Iterating the figure-2 loop many times must not grow the analysis
	// history: full-partition writers absorb earlier epochs.
	f := progtest.NewFigure2(48, 8, 20)
	sim := realm.MustNewSim(testConfig(2))
	eng := New(sim, f.Prog, Modeled)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for root, uses := range eng.users {
		if len(uses) > 8 {
			t.Errorf("history for %s grew to %d uses", root.Name(), len(uses))
		}
	}
}

func TestMapperDistribution(t *testing.T) {
	m := BlockMapper{}
	counts := make([]int, 4)
	for i := 0; i < 16; i++ {
		n := m.NodeFor(i, 16, 4)
		if n < 0 || n >= 4 {
			t.Fatalf("node %d out of range", n)
		}
		counts[n]++
	}
	for node, c := range counts {
		if c != 4 {
			t.Errorf("node %d got %d tasks, want 4", node, c)
		}
	}
	// Block property: consecutive colors map to non-decreasing nodes.
	last := 0
	for i := 0; i < 16; i++ {
		n := m.NodeFor(i, 16, 4)
		if n < last {
			t.Error("mapping not contiguous")
		}
		last = n
	}
}
