// Package rt is a Legion-like dynamic tasking runtime executing implicitly
// parallel ir programs on the simulated machine: a single control thread
// interprets the program, performing dynamic dependence analysis between
// task launches from privileges and region aliasing (§2.1, §4.1), issuing
// tasks to nodes through a mapper (§4.2), charging the per-task control
// overhead that motivates control replication (§1), and modeling the data
// movement the runtime performs between producers and consumers.
//
// Execution is deferred, as in Legion: the control thread issues launches
// without waiting for completion (up to a bounded scheduling window), so
// worker execution overlaps analysis. In Real mode task kernels actually
// execute and the final region contents must match ir.ExecSequential
// bitwise; in Modeled mode only the control plane runs and kernels are
// represented by their cost model.
package rt

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// sortedKeys returns the map's keys in sorted order so that ranges which
// construct shared state or force scalar futures stay deterministic
// (detlint maprange).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sortedRoots returns region roots ordered by creation ID.
func sortedRoots[V any](m map[*region.Region]V) []*region.Region {
	rs := make([]*region.Region, 0, len(m))
	for r := range m {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID() < rs[j].ID() })
	return rs
}

// Mode selects real kernel execution or cost-model-only execution.
type Mode = ir.ExecMode

// Execution modes.
const (
	Real    = ir.ExecReal
	Modeled = ir.ExecModeled
)

// Overheads are the runtime's control-plane cost parameters. A "task" here
// is node-granular (one task per node per launch, standing for a node's
// worth of the paper's per-core tasks), so per-task costs are calibrated as
// cores x the per-task cost of the real runtime; see DESIGN.md.
type Overheads struct {
	// LaunchBase is the control-thread time to analyze and issue one task.
	LaunchBase realm.Time
	// LaunchPerDep is the added analysis time per dependence edge found.
	LaunchPerDep realm.Time
	// LaunchPerSub is the added analysis time per subregion of the launch's
	// partitions (per task): the dynamic region-tree walks and epoch lists
	// the central runtime maintains grow with the number of subregions, so
	// implicit-mode control cost is superlinear in node count. Zero by
	// default; the benchmark harness calibrates it per application.
	LaunchPerSub realm.Time
	// RemoteStartBytes is the size of the task-start message sent to a
	// remote node.
	RemoteStartBytes int64
	// Window is the scheduling window in loop iterations the control thread
	// may run ahead of completion.
	Window int
	// KernelCores divides task kernel durations, modeling intra-node
	// parallel execution of a node-granular task.
	KernelCores int
	// EltBytes is the storage size of one field of one element.
	EltBytes int64
	// Noise optionally scales task durations per (node, iteration) to model
	// load imbalance and OS noise (nil = none).
	Noise realm.NoiseFn
}

// DefaultOverheads returns overheads calibrated for a machine with the
// given cores per node.
func DefaultOverheads(cores int) Overheads {
	return Overheads{
		LaunchBase:       realm.Microseconds(float64(cores) * 40),
		LaunchPerDep:     realm.Microseconds(2),
		RemoteStartBytes: 256,
		Window:           2,
		KernelCores:      cores,
		EltBytes:         8,
	}
}

// Mapper assigns each task of an index launch to a node (§4.2).
type Mapper interface {
	// NodeFor maps the colorIdx-th of numColors tasks onto one of nodes.
	NodeFor(colorIdx, numColors, nodes int) int
}

// BlockMapper distributes a launch's tasks in contiguous blocks over nodes,
// the typical strategy of Legion's default mapper.
type BlockMapper struct{}

// NodeFor implements Mapper.
func (BlockMapper) NodeFor(colorIdx, numColors, nodes int) int {
	return colorIdx * nodes / numColors
}

// CyclicMapper deals a launch's tasks round-robin across nodes. With block
// partitions it scatters neighboring subregions onto different nodes, which
// multiplies communication — a useful foil for mapping experiments (§4.2:
// the techniques are agnostic to the mapping used).
type CyclicMapper struct{}

// NodeFor implements Mapper.
func (CyclicMapper) NodeFor(colorIdx, numColors, nodes int) int {
	return colorIdx % nodes
}

// Result is the outcome of an engine run.
type Result struct {
	Stores    map[*region.Region]*region.Store
	Env       ir.MapEnv
	IterTimes map[*ir.Loop][]realm.Time // completion virtual time per iteration
	Elapsed   realm.Time
	Stats     realm.Stats
}

// Engine executes one program on one realm backend: the DES (*realm.Sim)
// in the usual configuration, or any other realm.Exec implementation.
type Engine struct {
	Sim  realm.Exec
	Prog *ir.Program
	Mode Mode
	Over Overheads
	Map  Mapper
	// NoTrace disables trace capture & replay of loop bodies (see trace.go);
	// the schedule is identical either way, only the control-plane work of
	// computing it differs.
	NoTrace bool

	stores     map[*region.Region]*region.Store
	users      map[*region.Region][]*use
	env        map[string]*scalarVal
	ctl        realm.Agent
	pairCache  map[pairKey][]pairInfo
	unionCache map[*region.Partition]geometry.IndexSpace
	coverCache map[pairKey]bool
	iterTimes  map[*ir.Loop][]realm.Time
	iterEvents []realm.Event // events of the current loop iteration
	curIter    int           // current innermost-loop iteration (for noise)

	// Per-launch-site caches and scratch buffers for the issueLaunch hot
	// path; see launch.go. The buffers hold no state between launches.
	domIdxCache   map[*ir.Launch]map[geometry.Point]int
	fieldSets     map[*ir.TaskDecl][]map[region.FieldID]bool
	checkedLaunch map[*ir.Launch]bool
	presBuf       []realm.Event
	taskDoneBuf   []realm.Event
	taskNodeBuf   []int

	// Trace capture & replay state (see trace.go): the active loop trace,
	// the recycled-use pool feeding replayed iterations, and counters.
	trace      *traceState
	useFree    []*use
	traceStats TraceStats
}

// TraceStats returns the trace-replay counters accumulated so far.
func (e *Engine) TraceStats() TraceStats { return e.traceStats }

// New creates an engine with default mapper.
func New(sim realm.Exec, prog *ir.Program, mode Mode) *Engine {
	return &Engine{
		Sim:  sim,
		Prog: prog,
		Mode: mode,
		Over: DefaultOverheads(sim.Config().CoresPerNode),
		Map:  BlockMapper{},
	}
}

// Run validates, normalizes projections, interprets the program on a
// control thread bound to node 0, and drives the simulation to completion.
func (e *Engine) Run() (*Result, error) {
	if err := e.Prog.Validate(); err != nil {
		return nil, err
	}
	ir.NormalizeProjections(e.Prog)

	e.stores = make(map[*region.Region]*region.Store)
	if e.Mode == Real {
		for _, root := range sortedRoots(e.Prog.FieldSpaces) {
			e.stores[root] = region.NewStore(root.IndexSpace(), e.Prog.FieldSpaces[root])
		}
	}
	e.users = make(map[*region.Region][]*use)
	e.env = make(map[string]*scalarVal)
	for _, k := range sortedKeys(e.Prog.Scalars) {
		e.env[k] = resolvedScalar(e.Prog.Scalars[k])
	}
	e.pairCache = make(map[pairKey][]pairInfo)
	e.unionCache = make(map[*region.Partition]geometry.IndexSpace)
	e.coverCache = make(map[pairKey]bool)
	e.iterTimes = make(map[*ir.Loop][]realm.Time)
	e.domIdxCache = make(map[*ir.Launch]map[geometry.Point]int)
	e.fieldSets = make(map[*ir.TaskDecl][]map[region.FieldID]bool)
	e.checkedLaunch = make(map[*ir.Launch]bool)

	var runErr error
	ctlDone := false
	e.Sim.SpawnOn("control", 0, 0, func(t realm.Agent) {
		defer func() {
			if r := recover(); r != nil {
				if realm.IsThreadKilled(r) {
					panic(r) // node 0 crashed: let the scheduler retire us
				}
				runErr = fmt.Errorf("rt: %v", r)
			}
		}()
		e.ctl = t
		e.execStmts(e.Prog.Stmts)
		ctlDone = true
	})
	elapsed, err := runSim(e.Sim)
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if !ctlDone {
		return nil, fmt.Errorf("rt: control thread was killed (node 0 crashed) before the program completed")
	}

	res := &Result{
		Stores:    e.stores,
		Env:       ir.MapEnv{},
		IterTimes: e.iterTimes,
		Elapsed:   elapsed,
		Stats:     e.Sim.Stats(),
	}
	for _, k := range sortedKeys(e.env) {
		res.Env[k] = e.env[k].val()
	}
	return res, nil
}

// execStmts interprets statements on the control thread.
func (e *Engine) execStmts(stmts []ir.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Fill:
			if st := e.stores[s.Target.Root()]; st != nil {
				s.Target.IndexSpace().Each(func(p geometry.Point) bool {
					st.Set(s.Field, p, s.Value)
					return true
				})
			}
		case *ir.FillFunc:
			if st := e.stores[s.Target.Root()]; st != nil {
				s.Target.IndexSpace().Each(func(p geometry.Point) bool {
					st.Set(s.Field, p, s.Fn(p))
					return true
				})
			}
		case *ir.SetScalar:
			e.env[s.Name] = resolvedScalar(s.Expr(e.ctlEnv()))
		case *ir.Loop:
			e.execLoop(s)
		case *ir.Launch:
			e.dispatchLaunch(s)
		default:
			panic(fmt.Sprintf("rt: unknown statement %T", s))
		}
	}
}

// execLoop runs a sequential loop with a bounded scheduling window: the
// control thread may issue iteration t while iterations t-1..t-Window are
// still executing, mirroring Legion's deferred execution.
func (e *Engine) execLoop(l *ir.Loop) {
	window := e.Over.Window
	if window < 1 {
		window = 1
	}
	iterDone := make([]realm.Event, l.Trip)
	times := make([]realm.Time, l.Trip)
	savedEvents := e.iterEvents
	ts := e.beginTrace(l)
	for t := 0; t < l.Trip; t++ {
		if t >= window {
			e.ctl.WaitEvent(iterDone[t-window])
		}
		e.env[l.Var] = resolvedScalar(float64(t))
		e.curIter = t
		e.iterEvents = nil
		if ts != nil {
			ts.beginIter(e)
		}
		e.execStmts(l.Body)
		if ts != nil {
			ts.endIter(e)
		}
		done := e.Sim.Merge(e.iterEvents...)
		iterDone[t] = done
		t := t
		e.Sim.OnTrigger(done, func() { times[t] = e.Sim.Now() })
	}
	e.endTrace(ts)
	// Drain the loop before code after it runs.
	for t := maxInt(0, l.Trip-window); t < l.Trip; t++ {
		e.ctl.WaitEvent(iterDone[t])
	}
	e.iterEvents = savedEvents
	e.iterTimes[l] = times
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runSim drives the backend, converting panics from task kernels (which
// the DES executes inside the event loop) into errors so a faulty
// application cannot crash the host process. A deadlock (e.g. an injected
// node crash orphaning the control thread's waits — rt has no recovery
// layer) comes back as a *realm.DeadlockError.
func runSim(x realm.Exec) (elapsed realm.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rt: task execution panicked: %v", r)
		}
	}()
	return x.Drive()
}
