package rt

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// issueLaunch performs an index launch: dynamic dependence analysis, the
// per-task control-thread overhead, task-start messages to remote nodes,
// RAW data movement, deferred task execution, region-reduction instance
// application (§4.3), and launch-level scalar reduction into a future
// (§4.4).
func (e *Engine) issueLaunch(l *ir.Launch) {
	// The intra-launch conflict check depends only on the launch's static
	// declaration, so it runs once per launch site, not once per iteration.
	if !e.checkedLaunch[l] {
		e.checkIntraLaunchConflicts(l)
		e.checkedLaunch[l] = true
	}

	env := e.ctlEnv()
	scalars := make([]float64, len(l.ScalarArgs))
	for i, ex := range l.ScalarArgs {
		scalars[i] = ex(env) // forces future-valued scalars
	}

	numColors := len(l.Domain)
	nodes := e.Sim.Nodes()
	domIdx := e.domainIndex(l)
	fsets := e.fieldSetsFor(l.Task)

	// Analysis: one new use per region argument; task-level dependencies
	// refined from partition-level aliasing. The uses are retained in the
	// epoch lists, so they are real allocations; everything else in this
	// function is per-launch scratch.
	uses := make([]*use, len(l.Args))
	deps := make([][][]dep, len(l.Args))
	for ai, a := range l.Args {
		param := l.Task.Params[ai]
		u := &use{
			part:   a.Part,
			priv:   param.Priv,
			op:     param.Op,
			fields: fsets[ai],
			full:   numColors == len(a.Part.Colors()),
			domIdx: domIdx,
			done:   make([]realm.Event, numColors),
			node:   make([]int, numColors),
		}
		deps[ai] = e.depsForArg(u, l.Domain, domIdx)
		uses[ai] = u
	}

	// taskDone/taskNode are recycled across launches: their values are
	// copied into the retained uses before the next launch runs.
	if cap(e.taskDoneBuf) < numColors {
		e.taskDoneBuf = make([]realm.Event, numColors)
		e.taskNodeBuf = make([]int, numColors)
	}
	taskDone := e.taskDoneBuf[:numColors]
	taskNode := e.taskNodeBuf[:numColors]
	// Real-mode-only state: task contexts (retained by the reduce future's
	// fold closure) and reduction buffers per (arg, color). Modeled mode
	// never touches either, so it skips the allocations.
	var ctxs []*ir.TaskCtx
	var redBufs [][]*region.Store
	if e.Mode == Real {
		ctxs = make([]*ir.TaskCtx, numColors)
		redBufs = make([][]*region.Store, len(l.Args))
		for ai, param := range l.Task.Params {
			if param.Priv == ir.PrivReduce {
				redBufs[ai] = make([]*region.Store, numColors)
			}
		}
	}

	for idx, c := range l.Domain {
		target := e.Map.NodeFor(idx, numColors, nodes)
		taskNode[idx] = target

		// Gather preconditions and cross-node data movement. The scratch
		// slice is safe to recycle because Merge does not retain its inputs.
		pres := e.presBuf[:0]
		nDeps := 0
		for ai := range l.Args {
			for _, d := range deps[ai][idx] {
				nDeps++
				if d.bytes > 0 && d.srcNode != target {
					pres = append(pres, e.Sim.CopyBytes(d.srcNode, target, d.bytes, d.ev, nil))
				} else {
					pres = append(pres, d.ev)
				}
			}
		}

		// The control thread pays the per-task analysis and launch cost —
		// the O(N) serial overhead that caps implicit scaling (§1) — plus
		// the region-tree analysis component that grows with subregion
		// count.
		e.ctl.Elapse(e.Over.LaunchBase +
			realm.Time(nDeps)*e.Over.LaunchPerDep +
			realm.Time(numColors)*e.Over.LaunchPerSub)

		if target != 0 {
			pres = append(pres, e.Sim.CopyBytes(0, target, e.Over.RemoteStartBytes, realm.NoEvent, nil))
		}

		vol := l.Args[l.Task.CostArg].At(c).Volume()
		dur := realm.Time(l.Task.Cost(vol) / float64(e.Over.KernelCores))
		if e.Over.Noise != nil {
			dur = realm.Time(float64(dur) * e.Over.Noise(target, e.curIter))
		}

		var body func()
		if e.Mode == Real {
			ctx := e.buildCtx(l, idx, c, scalars, redBufs)
			ctxs[idx] = ctx
			if l.Task.Kernel != nil {
				body = func() { l.Task.Kernel(ctx) }
			}
		}
		taskDone[idx] = e.Sim.LaunchOn(target, e.Sim.Merge(pres...), dur, body)
		e.presBuf = pres[:0]
	}

	// Apply reduction instances: argument-major, per reduce argument in
	// ascending color order (§4.3), with one chain across the whole launch
	// so applications from different arguments to the same element keep the
	// canonical order (see ir.ExecLaunchSeq).
	prev := realm.NoEvent
	for ai, param := range l.Task.Params {
		u := uses[ai]
		if param.Priv != ir.PrivReduce {
			copy(u.done, taskDone)
			copy(u.node, taskNode)
			continue
		}
		for idx, c := range l.Domain {
			idx, c := idx, c
			sub := l.Args[ai].At(c)
			bytes := sub.Volume() * e.Over.EltBytes * int64(len(param.Fields))
			var body func()
			if e.Mode == Real {
				buf := redBufs[ai][idx]
				global := e.stores[sub.Root()]
				op := param.Op
				fields := param.Fields
				body = func() {
					for _, f := range fields {
						global.ReduceFieldFrom(buf, f, op, sub.IndexSpace())
					}
				}
			}
			pre := e.Sim.Merge(taskDone[idx], prev)
			applied := e.Sim.CopyBytes(taskNode[idx], taskNode[idx], bytes, pre, body)
			u.done[idx] = applied
			u.node[idx] = taskNode[idx]
			prev = applied
		}
	}

	for _, u := range uses {
		e.registerUse(u)
		e.iterEvents = append(e.iterEvents, u.done...)
	}

	// Record the analyzed launch into the active trace candidate, if one is
	// being captured (see trace.go).
	if ts := e.trace; ts != nil && ts.phase == tracePhaseCapture {
		e.captureLaunch(ts, l, uses, deps)
	}

	// Launch-level scalar reduction: bind the destination variable to a
	// future resolved when all task returns are in, folded in color order.
	if l.Reduce != nil {
		all := e.Sim.Merge(taskDone...)
		op := l.Reduce.Op
		e.env[l.Reduce.Into] = &scalarVal{
			ev: all,
			val: func() float64 {
				acc := op.Identity()
				for _, ctx := range ctxs {
					if ctx != nil {
						acc = op.Fold(acc, ctx.Return)
					}
				}
				return acc
			},
		}
		e.iterEvents = append(e.iterEvents, all)
	}
}

// buildCtx constructs the Real-mode execution context for one task
// instance: global stores for read/write arguments, fresh
// identity-initialized buffers for reduce arguments.
func (e *Engine) buildCtx(l *ir.Launch, idx int, c geometry.Point, scalars []float64, redBufs [][]*region.Store) *ir.TaskCtx {
	ctx := &ir.TaskCtx{Color: c, Scalars: scalars}
	for ai, a := range l.Args {
		param := l.Task.Params[ai]
		sub := a.At(c)
		if param.Priv == ir.PrivReduce {
			buf := region.NewStore(sub.IndexSpace(), e.Prog.FieldSpaceOf(sub))
			for _, f := range param.Fields {
				buf.Fill(f, param.Op.Identity())
			}
			redBufs[ai][idx] = buf
			ctx.Args = append(ctx.Args, ir.NewPhysArg(sub, buf, param))
		} else {
			ctx.Args = append(ctx.Args, ir.NewPhysArg(sub, e.stores[sub.Root()], param))
		}
	}
	return ctx
}

// checkIntraLaunchConflicts rejects launches whose own arguments conflict
// with each other on aliased data; the engine's analysis orders launches
// against prior launches, and tasks within one launch must be independent
// (the §2.2 target form: forall loops with no loop-carried dependencies).
// The single allowed exception is two arguments naming the same disjoint
// partition with the identity projection: each task then sees the same
// subregion through both arguments, which is internally sequential.
func (e *Engine) checkIntraLaunchConflicts(l *ir.Launch) {
	for i, a := range l.Args {
		if l.Task.Params[i].Priv == ir.PrivReadWrite && !a.Part.Disjoint() {
			panic(fmt.Sprintf("rt: launch %s writes aliased partition %s; tasks of one launch must be independent (use a reduction)", l.Task.Name, a.Part.Name()))
		}
	}
	fsets := e.fieldSetsFor(l.Task)
	for i := range l.Args {
		for j := i + 1; j < len(l.Args); j++ {
			pi, pj := l.Task.Params[i], l.Task.Params[j]
			if fieldsOverlapCount(fsets[i], fsets[j]) == 0 {
				continue
			}
			if !ir.Conflicts(pi.Priv, pi.Op, pj.Priv, pj.Op) {
				continue
			}
			ai, aj := l.Args[i], l.Args[j]
			if ai.Part == aj.Part && ai.Part.Disjoint() && ai.Identity() && aj.Identity() {
				continue
			}
			if !region.PartitionsMayAlias(ai.Part, aj.Part) {
				continue
			}
			panic(fmt.Sprintf("rt: launch %s has conflicting aliased arguments %d and %d", l.Task.Name, i, j))
		}
	}
}

func fieldSet(fs []region.FieldID) map[region.FieldID]bool {
	m := make(map[region.FieldID]bool, len(fs))
	for _, f := range fs {
		m[f] = true
	}
	return m
}

// domainIndex returns (and caches per launch site) the color -> position
// index of the launch's domain. Launch domains are static IR, so every
// iteration of a loop re-issues the same *ir.Launch with the same domain.
func (e *Engine) domainIndex(l *ir.Launch) map[geometry.Point]int {
	if m, ok := e.domIdxCache[l]; ok {
		return m
	}
	m := make(map[geometry.Point]int, len(l.Domain))
	for i, c := range l.Domain {
		m[c] = i
	}
	e.domIdxCache[l] = m
	return m
}

// fieldSetsFor returns (and caches per task declaration) each parameter's
// field set. The sets are read-only and shared between all uses of the task.
func (e *Engine) fieldSetsFor(t *ir.TaskDecl) []map[region.FieldID]bool {
	if fs, ok := e.fieldSets[t]; ok {
		return fs
	}
	fs := make([]map[region.FieldID]bool, len(t.Params))
	for i, p := range t.Params {
		fs[i] = fieldSet(p.Fields)
	}
	e.fieldSets[t] = fs
	return fs
}
