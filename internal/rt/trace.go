package rt

import (
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// Trace capture & replay (the rt half of the PR 3 tentpole).
//
// Every application in the evaluation is a time-stepping loop that launches
// an identical task graph each iteration, so the dynamic dependence
// analysis recomputes the same edges over and over. The trace layer
// memoizes one iteration's analysis into an immutable schedule and replays
// it on later iterations, injecting the precomputed event graph into the
// DES without re-walking the region tree.
//
// Protocol per marked loop (a loop whose body is flat — no nested loops):
//
//   - capture: every iteration runs the full analysis while recording a
//     candidate trace — the launch sequence with its fingerprints, and
//     every dependence edge translated into an iteration-relative source
//     reference. At the end of each iteration the engine also snapshots a
//     structural signature of the epoch lists (the users state).
//   - promote: when two consecutive iterations agree — same launch
//     fingerprints and the same epoch-list signature at both iteration
//     boundaries — the analysis has reached a fixpoint: the epoch state at
//     the start of the next iteration equals the state the captured
//     iteration ran from, so its dependence structure recurs verbatim. The
//     latest candidate becomes the trace.
//   - replay: each launch validates a cheap fingerprint (launch site,
//     argument partitions — the things a repartition changes) and then
//     replays its recorded edges, resolving iteration-relative references
//     against the uses of the current and previous iteration. Replay keeps
//     registerUse live, so the epoch lists continue to evolve exactly as
//     the full analysis would have evolved them — which is what makes
//     mid-stream invalidation sound: on any fingerprint mismatch the trace
//     is discarded and the full analysis resumes from a correct state,
//     then capture starts over.
//
// Replay issues the identical Sim.Copy / Elapse / LaunchAuto / Merge call
// sequence the full analysis would issue, so all goldens (virtual times,
// BytesSent, event counts) are byte-identical with tracing on.

// TraceStats counts trace activity across an engine run.
type TraceStats struct {
	LoopsTraced      int // traceable loops entered
	CaptureIters     int // iterations spent in capture (full analysis + recording)
	Promotions       int // candidate traces promoted to replay
	ReplayedIters    int // iterations fully replayed from a trace
	ReplayedLaunches int // launches replayed without dependence analysis
	Invalidations    int // fingerprint mismatches that discarded a trace
	Abandoned        int // loops that never stabilized and fell back for good
	// SharedPoints counts index-launch points of promoted traces whose
	// dependence records alias another point's: the iteration-relative AND
	// point-relative encoding makes structurally congruent points (e.g. the
	// interior of a stencil) bitwise identical, so one record serves them
	// all — the rt analogue of the SPMD executor's cross-shard sharing.
	SharedPoints int
}

type tracePhase int8

const (
	tracePhaseCapture tracePhase = iota
	tracePhaseReplay
	tracePhaseOff
)

// maxCaptureIters bounds how long a loop may stay in capture before the
// engine gives up on it (a structurally non-stationary loop never
// stabilizes; see TestTraceNonStationaryFallsBack).
const maxCaptureIters = 8

type srcKind int8

const (
	srcSameIter srcKind = iota // source use created earlier in the same iteration
	srcPrevIter                // source use created in the previous iteration
	srcPinned                  // source outside the two-iteration window; its
	// use survived epoch pruning at the fixpoint, so its completion event is
	// frozen and can be recorded directly
)

// depRec is one captured dependence edge: where the precondition event
// comes from, and the data movement it carries. For same/prev-iteration
// sources, color is RELATIVE to the consuming point (srcColor - dstColor)
// and srcNode is zero — replay resolves both through the use tables — so
// points with congruent dependence structure capture bitwise-identical
// records and share one backing slice (see dedupDeps). Pinned sources keep
// their absolute event and node.
type depRec struct {
	kind    srcKind
	launch  int32       // index of the source launch within the iteration
	arg     int32       // argument index of the source use
	color   int32       // source color minus consuming color (0 for pinned)
	ev      realm.Event // pinned sources only
	srcNode int32       // pinned sources only
	bytes   int64       // >0: RAW edge moving data between nodes
}

// launchRec is the immutable per-launch-site portion of a trace.
type launchRec struct {
	l         *ir.Launch
	parts     []*region.Partition // fingerprint: argument partitions at capture
	numColors int
	targets   []int        // mapper decision per color
	durBase   []realm.Time // kernel duration per color, before noise
	deps      [][]depRec   // per color, argument-major (the analysis' edge order)
	redBytes  [][]int64    // per arg: reduction-instance bytes per color (nil unless PrivReduce)
	fulls     []bool       // per arg: full-domain launch (dominance eligibility)
	sharedPts int          // colors whose deps alias an earlier color's slice
}

// useSig is one entry of the epoch-list structural signature. Uses younger
// than the trace window are compared structurally with an iteration-relative
// age; older survivors are compared by identity (same object implies frozen
// completion events, which is what pinned references rely on).
type useSig struct {
	ptr    *use // set only for age >= 2
	part   *region.Partition
	priv   ir.Privilege
	op     region.ReductionOp
	nField int
	full   bool
	age    int8
}

type evOrigin struct {
	iter   int32
	launch int32
	arg    int32
	color  int32
}

// traceState is the per-loop trace machinery, alive for one execLoop call.
type traceState struct {
	loop     *ir.Loop
	phase    tracePhase
	attempts int
	iterSeq  int32

	// Capture state: the previous and current candidate, the epoch-list
	// signature of the previous iteration, and the event provenance index
	// used to translate dependence edges into iteration-relative refs.
	prevRecs []*launchRec
	curRecs  []*launchRec
	prevSig  map[*region.Region][]useSig
	evIndex  map[realm.Event]evOrigin
	origins  map[*use]int32

	// The promoted trace and the replay cursor.
	trace  []*launchRec
	cursor int

	// Uses of the previous / current iteration, indexed [launch][arg], for
	// resolving iteration-relative refs.
	prevUses [][]*use
	curUses  [][]*use

	// Two-stage retirement ring for pooled uses: a use pruned during replay
	// may still be referenced through the tables for one more iteration, so
	// it is recycled only after a full iteration has passed.
	retireNew []*use
	retireOld []*use
}

// loopTraceable reports whether a loop is a trace candidate: enough trips
// to amortize capture, and a flat body (nested loops would interleave their
// launches into the outer iteration's sequence).
func loopTraceable(l *ir.Loop) bool {
	if l.Trip < 3 {
		return false
	}
	for _, s := range l.Body {
		if _, ok := s.(*ir.Loop); ok {
			return false
		}
	}
	return true
}

// beginTrace arms tracing for a loop, or returns nil when tracing is off,
// another trace is active (nested loops), or the loop does not qualify.
func (e *Engine) beginTrace(l *ir.Loop) *traceState {
	if e.NoTrace || e.trace != nil || !loopTraceable(l) {
		return nil
	}
	ts := &traceState{loop: l, phase: tracePhaseCapture}
	e.trace = ts
	e.traceStats.LoopsTraced++
	return ts
}

// endTrace tears the trace down at loop exit, recycling what is safe.
func (e *Engine) endTrace(ts *traceState) {
	if ts == nil {
		return
	}
	e.useFree = append(e.useFree, ts.retireOld...)
	e.useFree = append(e.useFree, ts.retireNew...)
	e.trace = nil
}

func (ts *traceState) beginIter(e *Engine) {
	switch ts.phase {
	case tracePhaseCapture:
		ts.curRecs = ts.curRecs[:0]
		ts.curUses = ts.curUses[:0]
	case tracePhaseReplay:
		ts.cursor = 0
	}
}

func (ts *traceState) endIter(e *Engine) {
	switch ts.phase {
	case tracePhaseCapture:
		e.traceStats.CaptureIters++
		sig := e.computeSig(ts)
		if ts.fingerprintsStable() && sigEqual(ts.prevSig, sig) {
			ts.trace = append([]*launchRec(nil), ts.curRecs...)
			ts.phase = tracePhaseReplay
			ts.evIndex = nil
			ts.origins = nil
			e.traceStats.Promotions++
			for _, r := range ts.trace {
				e.traceStats.SharedPoints += r.sharedPts
			}
		} else {
			ts.prevRecs, ts.curRecs = ts.curRecs, ts.prevRecs[:0]
			ts.prevSig = sig
			ts.attempts++
			if ts.attempts >= maxCaptureIters {
				ts.phase = tracePhaseOff
				ts.evIndex = nil
				ts.origins = nil
				e.traceStats.Abandoned++
			}
		}
	case tracePhaseReplay:
		if ts.cursor != len(ts.trace) {
			// The iteration issued fewer launches than the trace holds.
			ts.invalidate(e)
		} else {
			e.traceStats.ReplayedIters++
		}
	}
	// Rotate the use tables (current becomes previous) and the retirement
	// ring; both are maintained in every phase so capture can resume with a
	// valid window after an invalidation.
	ts.prevUses, ts.curUses = ts.curUses, ts.prevUses
	e.useFree = append(e.useFree, ts.retireOld...)
	ts.retireOld, ts.retireNew = ts.retireNew, ts.retireOld[:0]
	ts.iterSeq++
}

// fingerprintsStable reports whether the current and previous capture
// iterations issued the same launch sequence against the same partitions.
func (ts *traceState) fingerprintsStable() bool {
	if ts.prevRecs == nil || len(ts.prevRecs) != len(ts.curRecs) || len(ts.curRecs) == 0 {
		return false
	}
	for i, cur := range ts.curRecs {
		prev := ts.prevRecs[i]
		if cur.l != prev.l || len(cur.parts) != len(prev.parts) {
			return false
		}
		for ai := range cur.parts {
			if cur.parts[ai] != prev.parts[ai] {
				return false
			}
		}
	}
	return true
}

// next returns the trace record for the launch about to issue, or nil on
// any fingerprint mismatch: wrong site (control-flow change), exhausted
// trace, or a changed argument partition (repartition).
func (ts *traceState) next(l *ir.Launch) *launchRec {
	if ts.cursor >= len(ts.trace) {
		return nil
	}
	rec := ts.trace[ts.cursor]
	if rec.l != l {
		return nil
	}
	for ai := range l.Args {
		if l.Args[ai].Part != rec.parts[ai] {
			return nil
		}
	}
	return rec
}

// invalidate discards the trace and restarts capture from scratch. Launches
// already replayed this iteration used dependence edges that were valid up
// to the point of divergence, and the epoch lists are live, so the full
// analysis resumes from a correct state.
func (ts *traceState) invalidate(e *Engine) {
	e.traceStats.Invalidations++
	ts.trace = nil
	ts.phase = tracePhaseCapture
	ts.attempts = 0
	ts.prevRecs, ts.curRecs = nil, nil
	ts.prevSig = nil
	ts.evIndex = nil
	ts.origins = nil
	ts.prevUses = ts.prevUses[:0]
	ts.curUses = ts.curUses[:0]
	// The tables no longer reference retired uses, so the ring can drain.
	e.useFree = append(e.useFree, ts.retireOld...)
	e.useFree = append(e.useFree, ts.retireNew...)
	ts.retireOld, ts.retireNew = ts.retireOld[:0], ts.retireNew[:0]
}

// captureLaunch records one fully analyzed launch into the current
// candidate: fingerprint, mapping, durations, and each dependence edge
// translated into an iteration-relative (or pinned) source reference.
func (e *Engine) captureLaunch(ts *traceState, l *ir.Launch, uses []*use, deps [][][]dep) {
	numColors := len(l.Domain)
	launchIdx := int32(len(ts.curRecs))
	rec := &launchRec{
		l:         l,
		parts:     make([]*region.Partition, len(l.Args)),
		numColors: numColors,
		targets:   append([]int(nil), uses[0].node...),
		durBase:   make([]realm.Time, numColors),
		deps:      make([][]depRec, numColors),
		fulls:     make([]bool, len(l.Args)),
	}
	for ai, a := range l.Args {
		rec.parts[ai] = a.Part
		rec.fulls[ai] = uses[ai].full
	}
	for idx, c := range l.Domain {
		vol := l.Args[l.Task.CostArg].At(c).Volume()
		rec.durBase[idx] = realm.Time(l.Task.Cost(vol) / float64(e.Over.KernelCores))
		var drs []depRec
		for ai := range l.Args {
			for _, d := range deps[ai][idx] {
				dr := depRec{bytes: d.bytes}
				if o, ok := ts.evIndex[d.ev]; ok && o.iter == ts.iterSeq {
					dr.kind, dr.launch, dr.arg, dr.color = srcSameIter, o.launch, o.arg, o.color-int32(idx)
				} else if ok && o.iter == ts.iterSeq-1 {
					dr.kind, dr.launch, dr.arg, dr.color = srcPrevIter, o.launch, o.arg, o.color-int32(idx)
				} else {
					dr.kind, dr.ev, dr.srcNode = srcPinned, d.ev, int32(d.srcNode)
				}
				drs = append(drs, dr)
			}
		}
		rec.deps[idx] = drs
	}
	rec.sharedPts = dedupDeps(rec.deps)
	for ai, param := range l.Task.Params {
		if param.Priv != ir.PrivReduce {
			continue
		}
		if rec.redBytes == nil {
			rec.redBytes = make([][]int64, len(l.Args))
		}
		rb := make([]int64, numColors)
		for idx, c := range l.Domain {
			rb[idx] = l.Args[ai].At(c).Volume() * e.Over.EltBytes * int64(len(param.Fields))
		}
		rec.redBytes[ai] = rb
	}
	ts.curRecs = append(ts.curRecs, rec)

	// Index this launch's completion events for later edges, and remember
	// each use's birth iteration for the signature's age classification.
	if ts.evIndex == nil {
		ts.evIndex = make(map[realm.Event]evOrigin)
		ts.origins = make(map[*use]int32)
	}
	tbl := make([]*use, len(uses))
	copy(tbl, uses)
	ts.curUses = append(ts.curUses, tbl)
	for ai, u := range uses {
		ts.origins[u] = ts.iterSeq
		for ci, ev := range u.done {
			if _, exists := ts.evIndex[ev]; !exists {
				ts.evIndex[ev] = evOrigin{iter: ts.iterSeq, launch: launchIdx, arg: int32(ai), color: int32(ci)}
			}
		}
	}
}

// dedupDeps collapses bitwise-identical per-color dependence slices onto
// one backing array and reports how many colors were collapsed. The
// relative encoding of depRec makes translationally congruent points equal,
// so the trace of an N-point stencil stores a handful of distinct boundary
// shapes plus ONE interior record instead of N. Dedup never changes replay
// behavior — the slices are immutable and each point still resolves its own
// absolute colors — it only proves and exploits the congruence.
func dedupDeps(deps [][]depRec) int {
	shared := 0
	byHash := make(map[uint64][]int)
	for idx := range deps {
		h := hashDeps(deps[idx])
		found := false
		for _, prev := range byHash[h] {
			if depsEqual(deps[prev], deps[idx]) {
				deps[idx] = deps[prev]
				shared++
				found = true
				break
			}
		}
		if !found {
			byHash[h] = append(byHash[h], idx)
		}
	}
	return shared
}

// hashDeps is a deterministic FNV-1a fold of a dependence slice, used only
// to bucket candidates for the exact comparison in dedupDeps.
func hashDeps(drs []depRec) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, d := range drs {
		mix(uint64(d.kind))
		mix(uint64(uint32(d.launch)))
		mix(uint64(uint32(d.arg)))
		mix(uint64(uint32(d.color)))
		mix(uint64(d.ev))
		mix(uint64(uint32(d.srcNode)))
		mix(uint64(d.bytes))
	}
	return h
}

func depsEqual(a, b []depRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// computeSig snapshots the structural state of the epoch lists.
func (e *Engine) computeSig(ts *traceState) map[*region.Region][]useSig {
	sig := make(map[*region.Region][]useSig, len(e.users))
	for root, uses := range e.users {
		if len(uses) == 0 {
			continue
		}
		list := make([]useSig, len(uses))
		for i, u := range uses {
			s := useSig{part: u.part, priv: u.priv, op: u.op, nField: len(u.fields), full: u.full}
			if o, ok := ts.origins[u]; ok && ts.iterSeq-o < 2 {
				s.age = int8(ts.iterSeq - o)
			} else {
				s.age = 2
				s.ptr = u
			}
			list[i] = s
		}
		sig[root] = list
	}
	return sig
}

func sigEqual(a, b map[*region.Region][]useSig) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for root, la := range a {
		lb, ok := b[root]
		if !ok || len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	return true
}

// getUse returns a use from the pool (or a fresh one) with done/node sized
// for numColors. Pool hygiene: every field is overwritten by the caller.
func (e *Engine) getUse(numColors int) *use {
	var u *use
	if n := len(e.useFree); n > 0 {
		u = e.useFree[n-1]
		e.useFree[n-1] = nil
		e.useFree = e.useFree[:n-1]
	} else {
		u = &use{}
	}
	if cap(u.done) < numColors {
		u.done = make([]realm.Event, numColors)
		u.node = make([]int, numColors)
	} else {
		u.done = u.done[:numColors]
		u.node = u.node[:numColors]
	}
	return u
}

// dispatchLaunch routes a launch through the active trace, if any.
func (e *Engine) dispatchLaunch(l *ir.Launch) {
	ts := e.trace
	if ts == nil || ts.phase != tracePhaseReplay {
		e.issueLaunch(l)
		return
	}
	rec := ts.next(l)
	if rec == nil {
		ts.invalidate(e)
		e.issueLaunch(l)
		return
	}
	e.replayLaunch(l, rec)
}

// replayLaunch issues one launch from its trace record: identical Sim call
// sequence to issueLaunch, with the dependence analysis replaced by
// resolving precomputed iteration-relative references.
func (e *Engine) replayLaunch(l *ir.Launch, rec *launchRec) {
	ts := e.trace
	numColors := rec.numColors

	var scalars []float64
	if n := len(l.ScalarArgs); n > 0 {
		env := e.ctlEnv()
		scalars = make([]float64, n)
		for i, ex := range l.ScalarArgs {
			scalars[i] = ex(env)
		}
	}

	domIdx := e.domainIndex(l)
	fsets := e.fieldSetsFor(l.Task)

	// Reuse (or grow) this launch slot's table entry; the slot's inner
	// slice survives table rotation, so steady-state replay allocates no
	// per-launch bookkeeping.
	var tbl []*use
	if ts.cursor < len(ts.curUses) {
		tbl = ts.curUses[ts.cursor][:0]
	}
	for ai := range l.Args {
		param := l.Task.Params[ai]
		u := e.getUse(numColors)
		u.part = rec.parts[ai]
		u.priv = param.Priv
		u.op = param.Op
		u.fields = fsets[ai]
		u.full = rec.fulls[ai]
		u.domIdx = domIdx
		tbl = append(tbl, u)
	}
	if ts.cursor < len(ts.curUses) {
		ts.curUses[ts.cursor] = tbl
	} else {
		ts.curUses = append(ts.curUses, tbl)
	}

	if cap(e.taskDoneBuf) < numColors {
		e.taskDoneBuf = make([]realm.Event, numColors)
		e.taskNodeBuf = make([]int, numColors)
	}
	taskDone := e.taskDoneBuf[:numColors]
	taskNode := e.taskNodeBuf[:numColors]
	var ctxs []*ir.TaskCtx
	var redBufs [][]*region.Store
	if e.Mode == Real {
		ctxs = make([]*ir.TaskCtx, numColors)
		redBufs = make([][]*region.Store, len(l.Args))
		for ai, param := range l.Task.Params {
			if param.Priv == ir.PrivReduce {
				redBufs[ai] = make([]*region.Store, numColors)
			}
		}
	}

	for idx, c := range l.Domain {
		target := rec.targets[idx]
		taskNode[idx] = target

		pres := e.presBuf[:0]
		drs := rec.deps[idx]
		for i := range drs {
			d := &drs[i]
			var ev realm.Event
			var srcNode int
			switch d.kind {
			case srcSameIter:
				u := ts.curUses[d.launch][d.arg]
				ci := int32(idx) + d.color
				ev, srcNode = u.done[ci], u.node[ci]
			case srcPrevIter:
				u := ts.prevUses[d.launch][d.arg]
				ci := int32(idx) + d.color
				ev, srcNode = u.done[ci], u.node[ci]
			default:
				ev, srcNode = d.ev, int(d.srcNode)
			}
			if d.bytes > 0 && srcNode != target {
				pres = append(pres, e.Sim.CopyBytes(srcNode, target, d.bytes, ev, nil))
			} else {
				pres = append(pres, ev)
			}
		}

		e.ctl.Elapse(e.Over.LaunchBase +
			realm.Time(len(drs))*e.Over.LaunchPerDep +
			realm.Time(numColors)*e.Over.LaunchPerSub)

		if target != 0 {
			pres = append(pres, e.Sim.CopyBytes(0, target, e.Over.RemoteStartBytes, realm.NoEvent, nil))
		}

		dur := rec.durBase[idx]
		if e.Over.Noise != nil {
			dur = realm.Time(float64(dur) * e.Over.Noise(target, e.curIter))
		}

		var body func()
		if e.Mode == Real {
			ctx := e.buildCtx(l, idx, c, scalars, redBufs)
			ctxs[idx] = ctx
			if l.Task.Kernel != nil {
				body = func() { l.Task.Kernel(ctx) }
			}
		}
		taskDone[idx] = e.Sim.LaunchOn(target, e.Sim.Merge(pres...), dur, body)
		e.presBuf = pres[:0]
	}

	prev := realm.NoEvent
	for ai, param := range l.Task.Params {
		u := tbl[ai]
		if param.Priv != ir.PrivReduce {
			copy(u.done, taskDone)
			copy(u.node, taskNode)
			continue
		}
		for idx, c := range l.Domain {
			idx := idx
			bytes := rec.redBytes[ai][idx]
			var body func()
			if e.Mode == Real {
				sub := l.Args[ai].At(c)
				buf := redBufs[ai][idx]
				global := e.stores[sub.Root()]
				op := param.Op
				fields := param.Fields
				body = func() {
					for _, f := range fields {
						global.ReduceFieldFrom(buf, f, op, sub.IndexSpace())
					}
				}
			}
			pre := e.Sim.Merge(taskDone[idx], prev)
			applied := e.Sim.CopyBytes(taskNode[idx], taskNode[idx], bytes, pre, body)
			u.done[idx] = applied
			u.node[idx] = taskNode[idx]
			prev = applied
		}
	}

	for _, u := range tbl {
		e.registerUse(u)
		e.iterEvents = append(e.iterEvents, u.done...)
	}

	if l.Reduce != nil {
		all := e.Sim.Merge(taskDone...)
		op := l.Reduce.Op
		e.env[l.Reduce.Into] = &scalarVal{
			ev: all,
			val: func() float64 {
				acc := op.Identity()
				for _, ctx := range ctxs {
					if ctx != nil {
						acc = op.Fold(acc, ctx.Return)
					}
				}
				return acc
			},
		}
		e.iterEvents = append(e.iterEvents, all)
	}

	ts.cursor++
	e.traceStats.ReplayedLaunches++
}
