package rt

import (
	"fmt"

	"repro/internal/realm"
)

// scalarVal is a possibly future-valued scalar binding: an event that must
// trigger before the value is available, and a thunk producing the value
// once it has. Concrete values use NoEvent. This models Legion futures:
// a launch's scalar reduction binds its destination variable immediately,
// and readers force the future (§4.4).
type scalarVal struct {
	ev  realm.Event
	val func() float64
}

func resolvedScalar(v float64) *scalarVal {
	return &scalarVal{ev: realm.NoEvent, val: func() float64 { return v }}
}

// ctlEnv adapts the engine's scalar table to ir.Env for the control thread:
// reading an unresolved future blocks the control thread until it resolves,
// which is the pipeline stall dynamic time-stepping introduces.
type ctlEnv struct{ e *Engine }

func (e *Engine) ctlEnv() ctlEnv { return ctlEnv{e} }

// Get implements ir.Env.
func (c ctlEnv) Get(name string) float64 {
	sv, ok := c.e.env[name]
	if !ok {
		panic(fmt.Sprintf("rt: unbound scalar %q", name))
	}
	if !c.e.Sim.Triggered(sv.ev) {
		c.e.ctl.WaitEvent(sv.ev)
	}
	return sv.val()
}
