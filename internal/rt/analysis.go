package rt

import (
	"repro/internal/geometry"
	"repro/internal/intersect"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// use records one region argument of a previously issued launch for
// dependence analysis: which partition it touched, with what privilege and
// fields, and the per-color completion events and executing nodes. These
// are the runtime's epoch lists, kept at launch/partition granularity
// rather than per element — the coarsening that language-level partitions
// make sound (paper §6, comparison with inspector/executor).
type use struct {
	part   *region.Partition
	priv   ir.Privilege
	op     region.ReductionOp
	fields map[region.FieldID]bool
	// full reports whether the launch covered the partition's whole color
	// space; only full writers can dominate (absorb) older uses.
	full bool
	// domIdx maps a color of the issuing launch's domain to its index; it is
	// shared between all uses of that launch (cached per *ir.Launch), and
	// done/node are dense slices indexed by it. Colors absent from domIdx
	// were not covered by the launch. This replaces the two per-use
	// map[Point] allocations the Modeled-mode hot path used to pay on every
	// launch of every iteration.
	domIdx map[geometry.Point]int
	done   []realm.Event
	node   []int
}

type pairKey struct {
	a, b region.PartitionID
}

// pairInfo is a cached color-pair overlap between two partitions.
type pairInfo struct {
	src, dst geometry.Point
	vol      int64
}

// dep is one dependence of a new task on a prior one: the event to wait
// for, plus data-movement parameters when the edge carries data (RAW).
type dep struct {
	ev      realm.Event
	srcNode int
	bytes   int64 // >0 when the edge moves data between nodes
}

// pairsBetween returns (and caches) the exact color-pair overlaps between
// two partitions, the dynamic half of the analysis (§3.3).
func (e *Engine) pairsBetween(src, dst *region.Partition) []pairInfo {
	key := pairKey{src.ID(), dst.ID()}
	if ps, ok := e.pairCache[key]; ok {
		return ps
	}
	pairs := intersect.Pairs(src, dst)
	out := make([]pairInfo, len(pairs))
	for i, p := range pairs {
		out[i] = pairInfo{src: p.Src, dst: p.Dst, vol: p.Overlap.Volume()}
	}
	e.pairCache[key] = out
	return out
}

// unionSpace returns (and caches) the union of a partition's subregions.
// Partition.Union exploits disjointness/completeness so that only aliased
// incomplete partitions pay for a real union — the incremental
// union-per-subregion this used to do was the dominant cost of the whole
// Modeled-mode analysis at large node counts.
func (e *Engine) unionSpace(p *region.Partition) geometry.IndexSpace {
	if is, ok := e.unionCache[p]; ok {
		return is
	}
	is := p.Union()
	e.unionCache[p] = is
	return is
}

func fieldsOverlapCount(a, b map[region.FieldID]bool) int {
	n := 0
	for f := range a {
		if b[f] {
			n++
		}
	}
	return n
}

func fieldsSubset(a, b map[region.FieldID]bool) bool {
	for f := range a {
		if !b[f] {
			return false
		}
	}
	return true
}

// depsForArg computes, for each color of the new launch's domain (indexed
// by position in the domain slice), the dependencies the new use (not yet
// registered) has on prior uses of the same region tree. The static
// partition-level aliasing test prunes pairs of partitions that provably
// cannot interfere; surviving pairs are refined to exact task-level edges
// with the cached dynamic intersections. domIdx is the launch's cached
// domain index (color -> position), which doubles as the domain-membership
// test the old map-keyed implementation rebuilt on every call.
func (e *Engine) depsForArg(newUse *use, domain []geometry.Point, domIdx map[geometry.Point]int) [][]dep {
	root := newUse.part.Parent().Root()
	out := make([][]dep, len(domain))
	for _, u := range e.users[root] {
		nf := fieldsOverlapCount(u.fields, newUse.fields)
		if nf == 0 || !ir.Conflicts(u.priv, u.op, newUse.priv, newUse.op) {
			continue
		}
		if !region.PartitionsMayAlias(u.part, newUse.part) && u.part != newUse.part {
			continue
		}
		raw := u.priv != ir.PrivRead // the prior use produced data the new one consumes
		if u.part == newUse.part && u.part.Disjoint() {
			// Identity pairs: subregions of a disjoint partition interfere
			// only with themselves. Iterate the domain slice to keep
			// dependence order — and thus the simulation — deterministic.
			for di, c := range domain {
				ui, ok := u.domIdx[c]
				if !ok {
					continue
				}
				d := dep{ev: u.done[ui], srcNode: u.node[ui]}
				if raw {
					d.bytes = int64(nf) * e.Over.EltBytes * u.part.Sub(c).Volume()
				}
				out[di] = append(out[di], d)
			}
			continue
		}
		for _, p := range e.pairsBetween(u.part, newUse.part) {
			ui, ok := u.domIdx[p.src]
			if !ok {
				continue
			}
			di, ok := domIdx[p.dst]
			if !ok {
				continue
			}
			d := dep{ev: u.done[ui], srcNode: u.node[ui]}
			if raw {
				d.bytes = int64(nf) * e.Over.EltBytes * p.vol
			}
			out[di] = append(out[di], d)
		}
	}
	return out
}

// coversPartition reports (and caches) whether partition a's union of
// subregions covers partition b's; the containment test over large span
// lists is expensive, and launch loops re-ask the same question every
// iteration.
func (e *Engine) coversPartition(a, b *region.Partition) bool {
	if a == b {
		return true
	}
	key := pairKey{a.ID(), b.ID()}
	if v, ok := e.coverCache[key]; ok {
		return v
	}
	v := e.unionSpace(a).ContainsAll(e.unionSpace(b))
	e.coverCache[key] = v
	return v
}

// registerUse appends the new use and, when it is a full-domain writer,
// prunes older uses it dominates: any prior use whose touched elements and
// fields are covered is transitively ordered behind the writer, so future
// conflicts with it are implied by conflicts with the writer (Legion's
// epoch-list advance).
func (e *Engine) registerUse(u *use) {
	root := u.part.Parent().Root()
	if u.priv == ir.PrivReadWrite && u.full {
		kept := e.users[root][:0]
		for _, old := range e.users[root] {
			if fieldsSubset(old.fields, u.fields) && e.coversPartition(u.part, old.part) {
				// Dominated. During replay the pruned use goes into the
				// retirement ring: at the trace's fixpoint only window-aged
				// uses are ever pruned, and after one more iteration nothing
				// can reference them, so their slices are safe to recycle.
				if ts := e.trace; ts != nil && ts.phase == tracePhaseReplay {
					ts.retireNew = append(ts.retireNew, old)
				}
				continue
			}
			kept = append(kept, old)
		}
		e.users[root] = kept
	}
	e.users[root] = append(e.users[root], u)
}
