package rt

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
)

// reverseMapper maps task i to the node block from the other end.
type reverseMapper struct{}

func (reverseMapper) NodeFor(colorIdx, numColors, nodes int) int {
	return (numColors - 1 - colorIdx) * nodes / numColors
}

func TestCustomMapperPreservesSemantics(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	seq := ir.ExecSequential(f.Prog)

	f2 := progtest.NewFigure2(48, 8, 3)
	sim := realm.MustNewSim(testConfig(4))
	eng := New(sim, f2.Prog, Real)
	eng.Map = reverseMapper{}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stores[f2.A].EqualOn(seq.Stores[f.A], f.Val, f.A.IndexSpace()) {
		t.Fatal("custom mapping changed results (§4.2: techniques are agnostic to the mapping)")
	}
}

func TestNestedLoops(t *testing.T) {
	// A loop of loops: the outer sequential loop contains an inner loop of
	// launches, exercising recursive loop interpretation and windowing.
	p := ir.NewProgram("nested")
	fs := region.NewFieldSpace("x")
	x := fs.Field("x")
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, 15)))
	p.FieldSpaces[r] = fs
	pr := r.Block("PR", 4)
	inc := &ir.TaskDecl{
		Name:   "inc",
		Params: []ir.Param{{Priv: ir.PrivReadWrite, Fields: []region.FieldID{x}}},
		Kernel: func(tc *ir.TaskCtx) {
			a := &tc.Args[0]
			a.Each(func(pt geometry.Point) bool {
				a.Set(x, pt, a.Get(x, pt)+1)
				return true
			})
		},
		CostPerElem: 10,
	}
	p.Add(
		&ir.Fill{Target: r, Field: x, Value: 0},
		&ir.Loop{Var: "outer", Trip: 3, Body: []ir.Stmt{
			&ir.Loop{Var: "inner", Trip: 2, Body: []ir.Stmt{
				&ir.Launch{Task: inc, Domain: ir.Colors1D(4), Args: []ir.RegionArg{{Part: pr}}},
			}},
		}},
	)
	sim := realm.MustNewSim(testConfig(2))
	res, err := New(sim, p, Real).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[r].Get(x, geometry.Pt1(7)); got != 6 {
		t.Errorf("x = %v after 3x2 increments, want 6", got)
	}
}

func TestSetScalarForcesFuture(t *testing.T) {
	// A SetScalar reading a launch-reduced scalar must force the future on
	// the control thread and compute from the resolved value.
	f := progtest.NewScalarSum(40, 8)
	sim := realm.MustNewSim(testConfig(4))
	res, err := New(sim, f.Prog, Real).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Env["doubled"] != 2*res.Env["total"] {
		t.Errorf("doubled = %v, total = %v", res.Env["doubled"], res.Env["total"])
	}
	if res.Env["total"] != 780 { // sum 0..39
		t.Errorf("total = %v, want 780", res.Env["total"])
	}
}

func TestRtNoiseSlowsAndStaysDeterministic(t *testing.T) {
	run := func(noise realm.NoiseFn) realm.Time {
		f := progtest.NewFigure2(48, 8, 5)
		sim := realm.MustNewSim(testConfig(4))
		eng := New(sim, f.Prog, Modeled)
		eng.Over.Noise = noise
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	noisy := realm.SpikeNoise(0.9, 1.0, 3)
	a, b := run(noisy), run(noisy)
	if a != b {
		t.Fatalf("noisy implicit runs diverged: %v vs %v", a, b)
	}
	if a <= run(nil) {
		t.Error("noise should slow the implicit run")
	}
}

func TestCyclicMapperCostsMoreCommunication(t *testing.T) {
	run := func(m Mapper) int64 {
		f := progtest.NewFigure2(96, 8, 3)
		sim := realm.MustNewSim(testConfig(4))
		eng := New(sim, f.Prog, Modeled)
		eng.Map = m
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().BytesSent
	}
	block, cyclic := run(BlockMapper{}), run(CyclicMapper{})
	if cyclic <= block {
		t.Errorf("cyclic mapping (%d bytes) should move more data than block (%d bytes)", cyclic, block)
	}
}
