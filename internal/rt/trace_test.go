package rt

import (
	"runtime"
	"testing"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
)

// runWithTrace runs a freshly built program under the engine and returns
// the result plus the trace counters.
func runWithTrace(t *testing.T, prog *ir.Program, nodes int, mode Mode, noTrace bool) (*Result, TraceStats) {
	t.Helper()
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, prog, mode)
	eng.NoTrace = noTrace
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.TraceStats()
}

// TestTraceReplayMatchesUntraced is the core tentpole guarantee: with
// tracing on, the schedule — virtual times, DES statistics, and Real-mode
// region contents — is bitwise identical to the untraced run, and the trace
// actually engages (promotes and replays) rather than silently falling
// back.
func TestTraceReplayMatchesUntraced(t *testing.T) {
	for _, mode := range []Mode{Real, Modeled} {
		f := progtest.NewFigure2(96, 8, 10)
		ref, offStats := runWithTrace(t, f.Prog, 4, mode, true)
		f2 := progtest.NewFigure2(96, 8, 10)
		got, stats := runWithTrace(t, f2.Prog, 4, mode, false)

		if offStats.LoopsTraced != 0 {
			t.Fatalf("NoTrace engine traced %d loops", offStats.LoopsTraced)
		}
		if stats.Promotions < 1 || stats.ReplayedIters < 6 {
			t.Fatalf("trace did not engage: %+v", stats)
		}
		if stats.Invalidations != 0 || stats.Abandoned != 0 {
			t.Fatalf("stationary loop invalidated or abandoned its trace: %+v", stats)
		}
		if got.Elapsed != ref.Elapsed {
			t.Errorf("mode %v: Elapsed %d with trace, %d without", mode, got.Elapsed, ref.Elapsed)
		}
		if got.Stats != ref.Stats {
			t.Errorf("mode %v: Stats %+v with trace, %+v without", mode, got.Stats, ref.Stats)
		}
		if mode == Real {
			for _, pair := range [][2]*region.Region{{f.A, f2.A}, {f.B, f2.B}} {
				refR, gotR := pair[0], pair[1]
				refSt, gotSt := ref.Stores[refR], got.Stores[gotR]
				refR.IndexSpace().Each(func(p geometry.Point) bool {
					if gotSt.Get(f.Val, p) != refSt.Get(f.Val, p) {
						t.Fatalf("store %s[%v] = %v traced, %v untraced", refR.Name(), p,
							gotSt.Get(f.Val, p), refSt.Get(f.Val, p))
					}
					return true
				})
			}
		}
	}
}

// TestTraceDedupsSharedPoints: a stencil-shaped loop has bitwise-identical
// per-color dependence records (same relative colors, same volumes) across
// interior points, so promotion must alias them to shared slices and count
// the deduplicated points — the cross-point analogue of the SPMD executor's
// cross-shard sharing. Replay correctness under the aliasing is already
// pinned by TestTraceReplayMatchesUntraced; this pins that the dedup
// actually engages.
func TestTraceDedupsSharedPoints(t *testing.T) {
	f := progtest.NewFigure2(96, 8, 10)
	_, stats := runWithTrace(t, f.Prog, 4, Modeled, false)
	if stats.Promotions < 1 {
		t.Fatalf("trace did not promote: %+v", stats)
	}
	if stats.SharedPoints == 0 {
		t.Fatalf("promotion deduplicated no launch points: %+v", stats)
	}
}

// TestTraceReplayDeterministic runs the traced engine twice and requires
// identical virtual outcomes.
func TestTraceReplayDeterministic(t *testing.T) {
	a, _ := runWithTrace(t, progtest.NewFigure2(96, 8, 10).Prog, 4, Modeled, false)
	b, _ := runWithTrace(t, progtest.NewFigure2(96, 8, 10).Prog, 4, Modeled, false)
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("traced run not deterministic: %v/%+v vs %v/%+v", a.Elapsed, a.Stats, b.Elapsed, b.Stats)
	}
}

// repartitionProgram builds a loop that increments a field through a
// disjoint partition, and swaps that partition for a differently-cut one
// (a mid-loop repartition) at iteration swapAt, via a scalar statement's
// side effect on the launch's argument.
func repartitionProgram(n, nt int64, trip, swapAt int) (*ir.Program, *region.Region, region.FieldID) {
	p := ir.NewProgram("repartition")
	fs := region.NewFieldSpace("v")
	v := fs.Field("v")
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[r] = fs

	pa := r.Block("PA", nt)
	// A second partition with the same color count but uneven cuts: the
	// first subregion absorbs half of the second's span.
	subs := make(map[geometry.Point]geometry.IndexSpace, nt)
	step := n / nt
	for i := int64(0); i < nt; i++ {
		lo, hi := i*step, (i+1)*step-1
		switch i {
		case 0:
			hi += step / 2
		case 1:
			lo += step / 2
		}
		subs[geometry.Pt1(i)] = geometry.NewIndexSpace(geometry.R1(lo, hi))
	}
	pb := r.BySubsets("PB", geometry.NewIndexSpace(geometry.R1(0, nt-1)), subs)

	task := &ir.TaskDecl{
		Name:   "inc",
		Params: []ir.Param{{Priv: ir.PrivReadWrite, Fields: []region.FieldID{v}}},
		Kernel: func(tc *ir.TaskCtx) {
			arg := &tc.Args[0]
			arg.Each(func(pt geometry.Point) bool {
				arg.Set(v, pt, arg.Get(v, pt)+1)
				return true
			})
		},
		CostPerElem: 100,
	}
	launch := &ir.Launch{Task: task, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pa}}}
	swapped := false
	p.Add(
		&ir.FillFunc{Target: r, Field: v, Fn: func(pt geometry.Point) float64 { return float64(pt.X()) }},
		&ir.Loop{Var: "t", Trip: trip, Body: []ir.Stmt{
			&ir.SetScalar{Name: "swap", Expr: func(env ir.Env) float64 {
				if !swapped && int(env.Get("t")) == swapAt {
					launch.Args[0].Part = pb
					swapped = true
				}
				return 0
			}},
			launch,
		}},
	)
	return p, r, v
}

// TestTraceRepartitionInvalidatesMidLoop is the repartition half of the
// PR 3 invalidation satellite: swapping a launch's partition mid-loop must
// be caught by the replay fingerprint, fall back to full analysis, produce
// results bitwise identical to the untraced run — and then re-capture and
// re-promote a trace for the new partition.
func TestTraceRepartitionInvalidatesMidLoop(t *testing.T) {
	const trip, swapAt = 14, 6
	prog, r, v := repartitionProgram(64, 8, trip, swapAt)
	ref, _ := runWithTrace(t, prog, 4, Real, true)
	prog2, r2, _ := repartitionProgram(64, 8, trip, swapAt)
	got, stats := runWithTrace(t, prog2, 4, Real, false)

	if stats.Invalidations < 1 {
		t.Fatalf("repartition did not invalidate the trace: %+v", stats)
	}
	if stats.Promotions < 2 {
		t.Fatalf("trace was not re-promoted after the repartition: %+v", stats)
	}
	if got.Elapsed != ref.Elapsed || got.Stats != ref.Stats {
		t.Errorf("traced: %v/%+v, untraced: %v/%+v", got.Elapsed, got.Stats, ref.Elapsed, ref.Stats)
	}
	refSt, gotSt := ref.Stores[r], got.Stores[r2]
	r.IndexSpace().Each(func(p geometry.Point) bool {
		if gotSt.Get(v, p) != refSt.Get(v, p) {
			t.Fatalf("R[%v] = %v traced, %v untraced", p, gotSt.Get(v, p), refSt.Get(v, p))
		}
		// Every element was incremented once per iteration under both
		// partitionings, so the expected value is known in closed form.
		if want := float64(p.X()) + trip; gotSt.Get(v, p) != want {
			t.Fatalf("R[%v] = %v, want %v", p, gotSt.Get(v, p), want)
		}
		return true
	})
}

// TestTraceNonStationaryFallsBack: a loop whose launch covers only part of
// its partition's color space never dominates old epoch entries, so the
// epoch lists grow every iteration and the analysis has no structural
// fixpoint. Capture must give up after its attempt budget and leave the
// (correct) full analysis in charge.
func TestTraceNonStationaryFallsBack(t *testing.T) {
	build := func() *ir.Program {
		n, nt := int64(64), int64(8)
		p := ir.NewProgram("nonstationary")
		fs := region.NewFieldSpace("v")
		v := fs.Field("v")
		r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		p.FieldSpaces[r] = fs
		pa := r.Block("PA", nt)
		task := &ir.TaskDecl{
			Name:        "halfinc",
			Params:      []ir.Param{{Priv: ir.PrivReadWrite, Fields: []region.FieldID{v}}},
			CostPerElem: 100,
		}
		// Domain covers only half the colors: the writer is never "full",
		// so no epoch entry is ever pruned.
		p.Add(&ir.Loop{Var: "t", Trip: 12, Body: []ir.Stmt{
			&ir.Launch{Task: task, Domain: ir.Colors1D(nt / 2), Args: []ir.RegionArg{{Part: pa}}},
		}})
		return p
	}
	ref, _ := runWithTrace(t, build(), 2, Modeled, true)
	got, stats := runWithTrace(t, build(), 2, Modeled, false)
	if stats.Abandoned != 1 || stats.Promotions != 0 {
		t.Fatalf("non-stationary loop should abandon capture: %+v", stats)
	}
	if got.Elapsed != ref.Elapsed || got.Stats != ref.Stats {
		t.Errorf("traced: %v/%+v, untraced: %v/%+v", got.Elapsed, got.Stats, ref.Elapsed, ref.Stats)
	}
}

// TestTraceReplayAllocRegression is the PR 3 allocation guard: replayed
// iterations must do near-zero allocation on the analysis path. Measured as
// the per-iteration malloc delta between a long and a short run, so fixed
// setup costs cancel; the traced engine must allocate well under half of
// what the untraced analysis allocates per steady-state iteration.
func TestTraceReplayAllocRegression(t *testing.T) {
	mallocs := func(noTrace bool, trip int) uint64 {
		f := progtest.NewFigure2(256, 16, trip)
		// One node: the event graph carries no cross-node copies, so the DES
		// floor is minimal and the per-iteration delta is dominated by the
		// dependence-analysis path the trace is meant to eliminate.
		sim := realm.MustNewSim(testConfig(1))
		eng := New(sim, f.Prog, Modeled)
		eng.NoTrace = noTrace
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	perIter := func(noTrace bool) float64 {
		short := mallocs(noTrace, 20)
		long := mallocs(noTrace, 120)
		return float64(long-short) / 100
	}
	untraced := perIter(true)
	traced := perIter(false)
	t.Logf("allocs per steady-state iteration: untraced=%.1f traced=%.1f", untraced, traced)
	if untraced < 50 {
		t.Fatalf("untraced analysis allocates only %.1f objects/iter; fixture no longer exercises the analysis path", untraced)
	}
	if traced > 24 {
		t.Errorf("replayed iterations allocate %.1f objects/iter; want ~zero (<= 24)", traced)
	}
}
