package rt

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
)

// TestKernelPanicSurfacesAsError mirrors the spmd test for the implicit
// runtime: a privilege violation inside a kernel becomes an error.
func TestKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 1)
	tf := f.Loop.Body[0].(*ir.Launch)
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		tc.Args[1].Set(f.Val, tc.Args[1].Region.IndexSpace().Bounds().Lo, 1)
	}
	sim := realm.NewSim(testConfig(2))
	_, err := New(sim, f.Prog, Real).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected kernel panic to surface as error, got %v", err)
	}
}
