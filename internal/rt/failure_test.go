package rt

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
)

// TestKernelPanicSurfacesAsError mirrors the spmd test for the implicit
// runtime: a privilege violation inside a kernel becomes an error.
func TestKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 1)
	tf := f.Loop.Body[0].(*ir.Launch)
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		tc.Args[1].Set(f.Val, tc.Args[1].Region.IndexSpace().Bounds().Lo, 1)
	}
	sim := realm.MustNewSim(testConfig(2))
	_, err := New(sim, f.Prog, Real).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected kernel panic to surface as error, got %v", err)
	}
}

// TestMidLoopKernelPanicSurfacesAsError: a kernel that fails only on a
// later iteration still comes back as an error.
func TestMidLoopKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 4)
	tf := f.Loop.Body[0].(*ir.Launch)
	good := tf.Task.Kernel
	calls := 0
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		calls++
		if calls > 6 { // 4 colors per iteration: fail during iteration 1
			panic("mid-loop kernel bug")
		}
		good(tc)
	}
	sim := realm.MustNewSim(testConfig(2))
	_, err := New(sim, f.Prog, Real).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected mid-loop kernel panic to surface as error, got %v", err)
	}
	if calls <= 6 {
		t.Fatalf("kernel ran %d times; the panic never fired", calls)
	}
}

// TestInjectedCrashSurfacesAsDeadlock: the implicit runtime has no
// recovery, so a node crash that swallows a task's completion leaves the
// control thread blocked — and that must surface as a structured deadlock
// error naming the blocked thread, not a panic or a hang.
func TestInjectedCrashSurfacesAsDeadlock(t *testing.T) {
	run := func(fp *realm.FaultPlan) (realm.Time, error) {
		f := progtest.NewFigure2(48, 8, 4)
		sim := realm.MustNewSim(testConfig(4))
		if fp != nil {
			if err := sim.InjectFaults(*fp); err != nil {
				t.Fatal(err)
			}
		}
		res, err := New(sim, f.Prog, Real).Run()
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	elapsed, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = run(&realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: elapsed / 2}}})
	var derr *realm.DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want *realm.DeadlockError from a mid-run crash, got %v", err)
	}
	if len(derr.Blocked) == 0 || derr.Blocked[0].Name != "control" {
		t.Errorf("deadlock report should name the blocked control thread: %+v", derr.Blocked)
	}
}
