package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock flags wall-clock reads and uses of the global math/rand
// source. Simulated time comes from the DES (realm.Sim); randomness must
// flow through an explicitly seeded *rand.Rand so replays are
// bit-identical.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now/Since/Until and global math/rand state in deterministic code",
	Run:  runWallclock,
}

var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// randGlobals are the package-level math/rand functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are fine.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true, "Int64": true,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := importedPackage(pass, sel.X)
			switch {
			case path == "time" && wallclockFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulated time must come from the DES (realm.Sim)", sel.Sel.Name)
			case (path == "math/rand" || path == "math/rand/v2") && randGlobals[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "rand.%s uses the global random source; use an explicitly seeded *rand.Rand for deterministic replay", sel.Sel.Name)
			}
			return true
		})
	}
}

// importedPackage returns the import path when x names an imported
// package, or "".
func importedPackage(pass *Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// MapRange flags map iterations whose bodies can leak Go's randomized
// iteration order into observable behavior: function calls and channel
// sends execute per element in nondeterministic order, and slices
// collected from a map range must be sorted before use. Order-insensitive
// bodies — pure folds, map-to-map copies, collect-then-sort — pass.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration feeding ordered effects without a sort",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkFuncMapRanges examines the map-range statements directly inside one
// function body (nested function literals get their own visit).
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMap(t) {
			return true
		}
		checkMapRangeBody(pass, rs, body)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, fn *ast.BlockStmt) {
	collected := map[types.Object]ast.Node{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure built during iteration runs later; its own map
			// ranges are checked separately.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration delivers in nondeterministic order; collect and sort the keys first")
		case *ast.CallExpr:
			if obj, arg := appendTarget(pass, n); obj != nil {
				collected[obj] = arg
				return true
			}
			if orderInsensitiveCall(pass, n) {
				return true
			}
			pass.Reportf(n.Pos(), "function call inside map iteration runs in nondeterministic order; collect and sort the keys first")
		}
		return true
	})
	for obj, at := range collected {
		if !sortedInFunc(pass, fn, obj) {
			pass.Reportf(at.Pos(), "slice %q collected from map iteration is never sorted; map order leaks into later iteration", obj.Name())
		}
	}
}

// appendTarget matches `x = append(x, ...)` and returns x's object.
func appendTarget(pass *Pass, call *ast.CallExpr) (types.Object, ast.Node) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, nil
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return pass.TypesInfo.ObjectOf(dst), call
}

// orderInsensitiveCall reports whether the call cannot observe iteration
// order: builtins and type conversions.
func orderInsensitiveCall(pass *Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return true
		}
	}
	return false
}

// sortedInFunc reports whether the enclosing function passes obj to a
// sort.* or slices.* call — the collect-then-sort idiom.
func sortedInFunc(pass *Pass, fn *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if p := importedPackage(pass, sel.X); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Goroutine flags go statements: concurrency in the simulator core must
// run as DES threads (realm.Sim.Spawn) so the scheduler fully orders it.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "flag go statements in deterministic code",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "go statement escapes the deterministic scheduler; use realm.Sim.Spawn")
			}
			return true
		})
	}
}
