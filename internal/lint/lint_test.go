package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the loader.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module lintcheck\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadAndRun(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	dir := writeModule(t, files)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, Run(p.Fset, p.Files, p.Types, p.Info, All())...)
	}
	return diags
}

// expect asserts one diagnostic per want entry, matched by analyzer name
// and message substring, in order.
func expect(t *testing.T, diags []Diagnostic, want ...[2]string) {
	t.Helper()
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if diags[i].Analyzer != w[0] || !strings.Contains(diags[i].Message, w[1]) {
			t.Errorf("diagnostic %d = %s; want [%s] ...%s...", i, diags[i], w[0], w[1])
		}
	}
}

func TestWallclock(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

import (
	"math/rand"
	"time"
)

func bad() (time.Time, time.Duration, int) {
	t0 := time.Now()
	rand.Shuffle(3, func(i, j int) {})
	return t0, time.Since(t0), rand.Intn(7)
}

func good(seed int64) (int, time.Time) {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(7), time.Unix(0, 0)
}
`})
	expect(t, diags,
		[2]string{"wallclock", "time.Now"},
		[2]string{"wallclock", "rand.Shuffle"},
		[2]string{"wallclock", "time.Since"},
		[2]string{"wallclock", "rand.Intn"},
	)
}

func TestMapRange(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

import (
	"fmt"
	"sort"
)

func flagged(m map[string]int, ch chan string) []string {
	var lost []string
	for k := range m {
		fmt.Println(k) // call
		ch <- k        // send
		lost = append(lost, k)
	}
	return lost // never sorted
}

func clean(m map[string]int) (int, map[string]int, []string) {
	total := 0
	out := make(map[string]int, len(m))
	var keys []string
	for k, v := range m {
		total += v
		out[k] = int(int64(v)) // conversions and builtins are fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
	return total, out, keys
}
`})
	expect(t, diags,
		[2]string{"maprange", "function call inside map iteration"},
		[2]string{"maprange", "channel send inside map iteration"},
		[2]string{"maprange", `slice "lost" collected from map iteration is never sorted`},
	)
}

func TestGoroutine(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

func bad(done chan struct{}) {
	go func() { close(done) }()
}
`})
	expect(t, diags, [2]string{"goroutine", "go statement"})
}

func TestCondLoopWait(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

import "sync"

type q struct {
	mu    sync.Mutex
	c     *sync.Cond
	ready bool
	wg    sync.WaitGroup
}

func (s *q) bad() {
	if !s.ready {
		s.c.Wait() // no re-check after wakeup
	}
}

func (s *q) naked() {
	s.c.Wait()
}

func (s *q) good() {
	for !s.ready {
		s.c.Wait()
	}
	s.wg.Wait() // WaitGroup.Wait needs no loop
}

func (s *q) goodNested() {
	for {
		if !s.ready {
			s.c.Wait()
			continue
		}
		return
	}
}
`})
	expect(t, diags,
		[2]string{"condloop", "sync.Cond.Wait outside a for loop"},
		[2]string{"condloop", "sync.Cond.Wait outside a for loop"},
	)
}

func TestCondLoopByValue(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

import "sync"

type box struct{ mu sync.Mutex }

func lockParam(mu sync.Mutex)  { mu.Lock() }
func lockPtr(mu *sync.Mutex)   { mu.Lock() }
func groupParam(wg sync.WaitGroup) { wg.Wait() }

func copies(b *box) sync.Mutex {
	dup := b.mu // field copy
	var wg sync.WaitGroup
	use := func(g sync.WaitGroup) {}
	use(wg) // argument copy
	dup.Lock()
	return b.mu // returned by value
}

func clean(b *box) {
	var mu sync.Mutex // fresh zero value: initialization, not a copy
	p := &b.mu
	mu.Lock()
	p.Lock()
}
`})
	expect(t, diags,
		[2]string{"condloop", "sync.Mutex passed by value"},
		[2]string{"condloop", "sync.WaitGroup passed by value"},
		[2]string{"condloop", "sync.Mutex returned by value"},
		[2]string{"condloop", "sync.Mutex copied by value"},
		[2]string{"condloop", "sync.WaitGroup passed by value"},
		[2]string{"condloop", "sync.WaitGroup copied by value"},
	)
}

func TestIgnoreDirective(t *testing.T) {
	diags := loadAndRun(t, map[string]string{"a.go": `package a

import "time"

func suppressed() (time.Time, time.Time) {
	//detlint:ignore measured for a log line only, never fed back into the schedule
	a := time.Now()
	b := time.Now() //detlint:ignore same-line suppression
	return a, b
}

func bare() time.Time {
	//detlint:ignore
	return time.Now()
}
`})
	expect(t, diags,
		[2]string{"detlint", "requires a reason"},
		[2]string{"wallclock", "time.Now"},
	)
}

// TestVetUnit drives the go vet -vettool entry point directly with a
// hand-built cfg, the same JSON the go command writes.
func TestVetUnit(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": `package a

import "time"

func Bad() time.Time { return time.Now() }
`})
	vetx := filepath.Join(dir, "facts.vetx")
	cfg, err := json.Marshal(map[string]any{
		"ImportPath": "lintcheck",
		"Dir":        dir,
		"GoFiles":    []string{filepath.Join(dir, "a.go"), filepath.Join(dir, "skip_test.go")},
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	code, err := VetUnit(&stderr, []string{cfgPath})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "time.Now reads the wall clock") {
		t.Fatalf("stderr = %q, want a time.Now diagnostic", stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

func TestPackageAllowlist(t *testing.T) {
	// A backend-style package: exempt from wallclock and goroutine, but the
	// maprange contract still applies there, and a sibling package with the
	// identical source stays fully checked.
	src := `package a

import (
	"fmt"
	"time"
)

func engine(done chan struct{}, m map[string]int) time.Time {
	go func() { close(done) }()
	for k := range m {
		fmt.Println(k)
	}
	return time.Now()
}
`
	Allowlist["lintcheck/engine"] = map[string]bool{"wallclock": true, "goroutine": true}
	defer delete(Allowlist, "lintcheck/engine")
	diags := loadAndRun(t, map[string]string{
		"engine/a.go": src,
		"core/a.go":   src,
	})
	expect(t, diags,
		// core/a.go: everything fires.
		[2]string{"goroutine", "go statement"},
		[2]string{"maprange", "map"},
		[2]string{"wallclock", "time.Now"},
		// engine/a.go: only maprange survives the allowlist.
		[2]string{"maprange", "map"},
	)
}
