package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, typechecked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and typechecks the matched
// packages entirely from source: `go list -deps -json` emits every
// dependency before its dependents, so one pass over the stream builds
// the import graph bottom-up with no need for compiled export data. Test
// files are not loaded — the determinism contract covers shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := listDeps(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{fset: fset, pkgs: map[string]*types.Package{"unsafe": types.Unsafe}}
	var targets []*Package
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" {
			continue
		}
		pkg, files, info, err := ld.check(lp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		ld.pkgs[lp.ImportPath] = pkg
		if !lp.DepOnly {
			targets = append(targets, &Package{
				PkgPath: lp.ImportPath,
				Fset:    fset,
				Files:   files,
				Types:   pkg,
				Info:    info,
			})
		}
	}
	return targets, nil
}

// listDeps resolves patterns (default ".") in dir via the go tool and
// returns the matched packages plus their full dependency closure, with
// every package listed after its dependencies.
func listDeps(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.Bytes())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// loader typechecks packages in dependency order and doubles as the
// importer for everything checked so far.
type loader struct {
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %s not loaded (dependency order violated)", path)
}

func (l *loader) check(lp *listPkg) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:         l,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:      true,
		IgnoreFuncBodies: lp.DepOnly,
		// Assembly-backed stdlib functions have no Go bodies; tolerate
		// their (and any other) soft errors in dependencies — only the
		// target packages must analyze, not compile.
		Error: func(error) {},
	}
	pkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil && !lp.DepOnly && !lp.Standard {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}
