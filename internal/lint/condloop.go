package lint

import (
	"go/ast"
	"go/types"
)

// CondLoop flags the two sync misuses that produce lost wakeups and
// silently-split locks rather than data races (so the race detector never
// sees them): a sync.Cond.Wait that is not re-checked in a for loop —
// spurious wakeups and wakeup/recheck races make `if !ready { c.Wait() }`
// a latent hang — and sync.Mutex/sync.RWMutex/sync.WaitGroup values
// passed or copied by value, where the copy guards nothing.
var CondLoop = &Analyzer{
	Name: "condloop",
	Doc:  "flag sync.Cond.Wait outside a re-checked for loop and by-value sync.Mutex/WaitGroup",
	Run:  runCondLoop,
}

// syncValueTypes are the sync types that must never travel by value.
// sync.Cond is included: it embeds a noCopy sentinel for the same reason.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true, "Once": true,
}

func runCondLoop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCondWaits(pass, fn.Body)
				}
				checkSyncParams(pass, fn.Type)
			case *ast.FuncLit:
				checkCondWaits(pass, fn.Body)
				checkSyncParams(pass, fn.Type)
			case *ast.AssignStmt:
				for _, rhs := range fn.Rhs {
					checkSyncCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range fn.Values {
					checkSyncCopy(pass, v)
				}
			case *ast.CallExpr:
				for _, a := range fn.Args {
					checkSyncCopy(pass, a)
				}
			}
			return true
		})
	}
}

// checkCondWaits walks one function body (stopping at nested function
// literals, which get their own visit) and reports every sync.Cond.Wait
// call that is not lexically inside the body of a for loop — the only
// shape under which the condition is re-checked after a wakeup.
func checkCondWaits(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, inFor bool)
	walk = func(n ast.Node, inFor bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt:
			walk(n.Init, inFor)
			walk(n.Cond, inFor)
			walk(n.Post, inFor)
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inFor)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			if isCondWait(pass, n) && !inFor {
				pass.Reportf(n.Pos(), "sync.Cond.Wait outside a for loop never re-checks its condition after a wakeup; use `for !ready() { c.Wait() }`")
			}
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, inFor)
			return false
		})
	}
	walk(body, false)
}

// isCondWait matches c.Wait() where c is a sync.Cond or *sync.Cond.
// (sync.WaitGroup also has Wait, but waiting on a group needs no loop.)
func isCondWait(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	return syncTypeName(pass.TypesInfo.TypeOf(sel.X)) == "Cond"
}

// checkSyncParams reports parameters and results declared as bare sync
// value types: every call site would copy the lock state.
func checkSyncParams(pass *Pass, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if name := bareSyncType(pass.TypesInfo.TypeOf(field.Type)); name != "" {
				pass.Reportf(field.Type.Pos(), "sync.%s %s by value; the copy guards nothing the original guards — use *sync.%s", name, what, name)
			}
		}
	}
	report(ft.Params, "passed")
	report(ft.Results, "returned")
}

// checkSyncCopy reports expressions that read an existing sync value —
// a variable, field, element, or dereference — in a copying position
// (assignment right-hand side, call argument). Composite literals and
// new(...) are initialization, not copies, and pass.
func checkSyncCopy(pass *Pass, e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	if name := bareSyncType(pass.TypesInfo.TypeOf(e)); name != "" {
		pass.Reportf(e.Pos(), "sync.%s copied by value; the copy shares no lock state with the original — use *sync.%s", name, name)
	}
}

// bareSyncType returns the sync type name when t is a non-pointer sync
// value type ("" otherwise).
func bareSyncType(t types.Type) string {
	if t == nil {
		return ""
	}
	if _, ok := t.(*types.Pointer); ok {
		return ""
	}
	return syncTypeName(t)
}

// syncTypeName resolves t (through pointers) to a named type from package
// sync and returns its name when it is one of the guarded types.
func syncTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if !syncValueTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}
