// Package lint is a small, dependency-free determinism linter for the
// simulator core (internal/realm, internal/rt, internal/spmd). Those
// packages promise bit-identical replay: the discrete-event simulation
// must produce the same schedule for the same inputs, which outlaws wall
// clocks, the global math/rand source, raw goroutines, and iteration
// order leaking out of Go maps.
//
// The package mirrors the go/analysis shape (Analyzer, Pass, Reportf)
// without depending on golang.org/x/tools, so cmd/detlint can run both
// standalone and as a `go vet -vettool`. Findings are suppressed with a
//
//	//detlint:ignore <reason>
//
// comment on the offending line or the line above; the reason is
// mandatory, and a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one determinism check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the registered analyzers.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapRange, Goroutine, CondLoop}
}

// A Pass hands one typechecked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// IgnoreDirective is the suppression comment prefix.
const IgnoreDirective = "//detlint:ignore"

// Allowlist maps package import paths to the analyzer names that do not
// apply there. The native realm backend is the execution engine that real
// goroutines and the wall clock are FOR — flagging every `go` statement
// and time.Now in it would bury real findings under boilerplate ignores —
// while the simulator core (realm, rt, spmd) stays fully locked down: the
// allowlist is per-package, never per-pattern, so adding a package here is
// a reviewed, visible decision. Analyzers not named (maprange) still run.
var Allowlist = map[string]map[string]bool{
	"repro/internal/realm/native": {"wallclock": true, "goroutine": true},
}

// Run applies the analyzers to one typechecked package and returns the
// findings that survive the package Allowlist and //detlint:ignore
// suppression, sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	exempt := Allowlist[pkg.Path()]
	for _, a := range analyzers {
		if exempt[a.Name] {
			continue
		}
		a.Run(&Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		})
	}
	diags = suppress(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppress drops diagnostics covered by an ignore directive on the same
// line or the line above, and reports directives missing a reason.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	ignored := map[lineKey]bool{}
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				if strings.TrimSpace(rest) == "" || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					out = append(out, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "detlint",
						Message:  "ignore directive requires a reason: //detlint:ignore <reason>",
					})
					continue
				}
				p := fset.Position(c.Pos())
				ignored[lineKey{p.Filename, p.Line}] = true
			}
		}
	}
	for _, d := range diags {
		if ignored[lineKey{d.Pos.Filename, d.Pos.Line}] || ignored[lineKey{d.Pos.Filename, d.Pos.Line - 1}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
