package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON the go command hands a -vettool per
// compilation unit (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit implements one `go vet -vettool` invocation: args is the
// argument list after the program name, expected to hold a single
// *.cfg path. Diagnostics go to stderr in the standard file:line:col
// format; the exit code is 0 when clean, 2 when findings exist (the
// unitchecker convention the go command understands).
func VetUnit(stderr io.Writer, args []string) (exitCode int, err error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("usage: detlint unit.cfg (go vet -vettool protocol)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %v", args[0], err)
	}
	// detlint carries no facts between packages, but the go command
	// expects the facts file to exist for caching and downstream units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	// go vet merges a package's _test.go files into its unit (and emits
	// external _test packages as their own units). The determinism
	// contract covers shipped code only, so analyze just the non-test
	// sources; dependency closures from `go list -deps` then suffice to
	// typecheck them. An all-test unit has nothing to analyze.
	shipped := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			shipped = append(shipped, f)
		}
	}
	cfg.GoFiles = shipped
	if len(cfg.GoFiles) == 0 {
		return 0, nil
	}
	diags, err := analyzeUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// analyzeUnit typechecks the unit's sources and runs the analyzers. The
// go command supplies compiled export data for every import, but its
// format is toolchain-internal; instead the unit's dependency closure is
// reloaded from source via the same loader the standalone mode uses —
// slower, but self-contained.
func analyzeUnit(cfg *vetConfig) ([]Diagnostic, error) {
	deps, fset, err := loadDeps(cfg)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    importerFunc(func(path string) (*types.Package, error) { return deps.Import(vetImportPath(cfg, path)) }),
		FakeImportC: true,
		Error:       func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return Run(fset, files, pkg, info, All()), nil
}

// vetImportPath resolves a source-level import path through the unit's
// vendor/ImportMap indirection.
func vetImportPath(cfg *vetConfig, path string) string {
	if mapped, ok := cfg.ImportMap[path]; ok {
		return mapped
	}
	return path
}

// loadDeps typechecks the unit's import closure from source, reusing the
// standalone loader by listing the unit's package directory.
func loadDeps(cfg *vetConfig) (*loader, *token.FileSet, error) {
	fset := token.NewFileSet()
	ld := &loader{fset: fset, pkgs: map[string]*types.Package{"unsafe": types.Unsafe}}
	pkgs, err := listDeps(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" || lp.ImportPath == cfg.ImportPath {
			continue
		}
		pkg, _, _, err := ld.checkDep(lp)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck dependency %s: %v", lp.ImportPath, err)
		}
		ld.pkgs[lp.ImportPath] = pkg
	}
	return ld, fset, nil
}

func (l *loader) checkDep(lp *listPkg) (*types.Package, []*ast.File, *types.Info, error) {
	dep := *lp
	dep.DepOnly = true
	return l.check(&dep)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
