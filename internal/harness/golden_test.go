package harness

import (
	"testing"

	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/rt"
	"repro/internal/spmd"
)

// The golden values below pin the simulation's virtual-time results: the
// DES is deterministic, so any drift in these numbers means a behavioral
// change in the event queue, the dependence analysis, or the compiled
// communication plans — not noise. They were captured from the seed
// implementation and must survive performance work unchanged.
//
// One deliberate exception: the seed's BytesSent counters (rt 7808, spmd
// 17376) were inflated by a geometry aliasing bug — IndexSpace.Subtract
// with an empty subtrahend returned a space sharing the receiver's span
// slice, and the following coalesce mutated that shared backing array in
// place, leaving the receiver with a duplicated trailing span whose volume
// was then double-counted in modeled copy sizes. The corrected values are
// pinned here; TestSubtractDoesNotMutateReceiver in internal/geometry
// guards the underlying invariant.

func TestGoldenStencilMeasure(t *testing.T) {
	want := map[string]map[int]realm.Time{
		"regent-cr":   {1: 1146666666, 4: 1146780166},
		"regent-nocr": {1: 1151184666, 4: 1168484191},
		"mpi":         {1: 1146666666, 4: 1146802158},
		"mpi-openmp":  {1: 1147579999, 4: 1147710499},
	}
	for _, sys := range stencil.Systems {
		for _, n := range []int{1, 4} {
			per, err := stencil.Measure(sys, n, 10, bench.MeasureOpts{})
			if err != nil {
				t.Fatalf("measure %s@%d: %v", sys, n, err)
			}
			if w := want[sys][n]; per != w {
				t.Errorf("stencil %s@%d per-iteration time = %d, want %d", sys, n, per, w)
			}
		}
	}
}

func TestGoldenEngineRuns(t *testing.T) {
	app := stencil.Build(stencil.Small(4))
	cores := realm.DefaultConfig(4).CoresPerNode
	tune := bench.DefaultTuning(cores)

	sim := realm.MustNewSim(realm.DefaultConfig(4))
	eng := rt.New(sim, app.Prog, rt.Modeled)
	eng.Over.LaunchBase = tune.ImplicitLaunchBase
	eng.Over.LaunchPerSub = tune.ImplicitLaunchPerSub
	eng.Over.KernelCores = tune.KernelCores
	eng.Over.Window = tune.ImplicitWindow
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := realm.Time(130964599); res.Elapsed != want {
		t.Errorf("rt elapsed = %d, want %d", res.Elapsed, want)
	}
	if want := (realm.Stats{Messages: 34, BytesSent: 7424, LocalCopies: 0, TasksRun: 48, Events: 110}); res.Stats != want {
		t.Errorf("rt stats = %+v, want %+v", res.Stats, want)
	}

	plan, err := cr.Compile(app.Prog, app.Loop, cr.Options{NumShards: 4, Sync: cr.PointToPoint})
	if err != nil {
		t.Fatal(err)
	}
	sim2 := realm.MustNewSim(realm.DefaultConfig(4))
	eng2 := spmd.New(sim2, app.Prog, ir.ExecModeled, map[*ir.Loop]*cr.Compiled{app.Loop: plan})
	eng2.Over.ShardLaunchBase = tune.ShardLaunchBase
	eng2.Over.KernelCores = tune.KernelCores
	eng2.Over.Window = tune.Window
	res2, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := realm.Time(155392); res2.Elapsed != want {
		t.Errorf("spmd elapsed = %d, want %d", res2.Elapsed, want)
	}
	if want := (realm.Stats{Messages: 45, BytesSent: 16800, LocalCopies: 7, TasksRun: 72, Events: 184}); res2.Stats != want {
		t.Errorf("spmd stats = %+v, want %+v", res2.Stats, want)
	}
}
