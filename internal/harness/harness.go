// Package harness regenerates the paper's evaluation section: the four
// weak-scaling figures (6: Stencil, 7: MiniAero, 8: PENNANT, 9: Circuit)
// and Table 1 (dynamic region-intersection times). It is shared by the
// top-level benchmarks and the cmd/weakscale and cmd/intersect tools.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/circuit"
	"repro/internal/apps/miniaero"
	"repro/internal/apps/pennant"
	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/realm"
)

// App describes one application's weak-scaling experiment.
type App struct {
	Name    string
	Figure  int
	Systems []string
	// Measure returns the steady-state per-iteration time for one system at
	// one node count, under the given measurement options.
	Measure func(system string, nodes, iters int, opts bench.MeasureOpts) (realm.Time, error)
	// Faults optionally injects deterministic faults into every cell of the
	// sweep (nil = fault-free). Fault seeds are derived per cell from
	// Faults.Seed, the system index, and the node count, so each cell's
	// trace is independent yet reproducible.
	Faults *realm.FaultPlan
	// Backend selects the realm backend for every cell: "" or
	// bench.BackendDES measures on the deterministic simulator;
	// bench.BackendNative runs real kernels on real goroutines and reports
	// wall-clock per-iteration times. Systems that exist only as DES cost
	// models (the MPI baselines) are dropped from the sweep on native.
	Backend string
	// NoTrace runs every cell with runtime trace capture/replay disabled —
	// the trace ablation. Throughput series are identical with and without
	// (the simulated schedule does not depend on tracing); only host
	// wall-clock differs.
	NoTrace bool
	// NoShare runs every cell with cross-shard trace sharing disabled — the
	// -trace-share ablation: each SPMD shard captures its own plan instead
	// of specializing the shared capture. Series are identical either way.
	NoShare bool
	// Trace optionally accumulates both runtimes' trace counters across the
	// whole sweep (printed by weakscale under -trace on).
	Trace *bench.TraceAgg
	// Procs sets the native worker pool's per-node size for every cell
	// (0 = an equal share of GOMAXPROCS); NoSched disables the pool —
	// goroutine-per-launch dispatch, the scheduler's A/B baseline. Both
	// are ignored on the DES.
	Procs   int
	NoSched bool
	// Sched optionally accumulates the native scheduler's counters across
	// the whole sweep (printed by weakscale under -backend native).
	Sched *bench.SchedAgg
	// Prune runs every CR cell with the certified redundant-sync pruning
	// pass attached (the -prune ablation; default off). Series and stores
	// are identical either way — only sync-edge and message counts drop.
	// PruneStats optionally accumulates the prune counters across the sweep.
	Prune      bool
	PruneStats *bench.PruneAgg
	// Agg runs every CR cell with coalesced exchange plans (the -agg
	// ablation; default off, certified by verify.CheckAgg, incompatible
	// with Prune). Series and stores are identical either way — only
	// message counts drop. AggStats optionally accumulates the coalescing
	// counters across the sweep.
	Agg      bool
	AggStats *bench.AggCounters
	// Fit optionally receives a wall-clock sample for every launch and copy
	// body executed on native (pass a *realm.MeasuredTime to fit a
	// TimePolicy from the sweep); Policy optionally replaces the DES's
	// time-charging policy (e.g. a MeasuredTime imported from such a fit).
	Fit    realm.TimeRecorder
	Policy realm.TimePolicy
	// UnitsPerNode is the per-node work per iteration; Unit/UnitScale name
	// and scale the throughput axis exactly as the paper's figures do.
	UnitsPerNode float64
	Unit         string
	UnitScale    float64
	// Iters is the default iteration count per measurement.
	Iters int
	// BuildProgram builds the app's program and main loop at a node count
	// (used by the Table 1 intersection-timing harness).
	BuildProgram func(nodes int) (*ir.Program, *ir.Loop)
}

// Apps returns the four evaluation applications in figure order.
func Apps() []App {
	return []App{
		{
			Name: "stencil", Figure: 6, Systems: stencil.Systems,
			Measure:      stencil.Measure,
			UnitsPerNode: 40000 * 40000, Unit: "10^6 points/s", UnitScale: 1e6,
			Iters: 10,
			BuildProgram: func(nodes int) (*ir.Program, *ir.Loop) {
				a := stencil.Build(stencil.Default(nodes))
				return a.Prog, a.Loop
			},
		},
		{
			Name: "miniaero", Figure: 7, Systems: miniaero.Systems,
			Measure:      miniaero.Measure,
			UnitsPerNode: miniaero.PaperCellsPerNode, Unit: "10^3 cells/s", UnitScale: 1e3,
			Iters: 10,
			BuildProgram: func(nodes int) (*ir.Program, *ir.Loop) {
				a := miniaero.Build(miniaero.Default(nodes))
				return a.Prog, a.Loop
			},
		},
		{
			Name: "pennant", Figure: 8, Systems: pennant.Systems,
			Measure:      pennant.Measure,
			UnitsPerNode: pennant.PaperZonesPerNode, Unit: "10^6 zones/s", UnitScale: 1e6,
			Iters: 12,
			BuildProgram: func(nodes int) (*ir.Program, *ir.Loop) {
				a := pennant.Build(pennant.Default(nodes))
				return a.Prog, a.Loop
			},
		},
		{
			Name: "circuit", Figure: 9, Systems: circuit.Systems,
			Measure:      circuit.Measure,
			UnitsPerNode: circuit.PaperNodesPerPiece, Unit: "10^3 nodes/s", UnitScale: 1e3,
			Iters: 10,
			BuildProgram: func(nodes int) (*ir.Program, *ir.Loop) {
				a := circuit.Build(circuit.Default(nodes))
				return a.Prog, a.Loop
			},
		},
	}
}

// AppByName finds an application.
func AppByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("harness: unknown app %q (have stencil, miniaero, pennant, circuit)", name)
}

// DefaultNodes is the paper's weak-scaling node sweep.
var DefaultNodes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Point is one measurement. A cell whose measurement failed (the
// simulated run errored — e.g. an injected crash the system under test
// could not recover from) carries the error text in Err and zero values
// elsewhere; the rest of the sweep is unaffected.
type Point struct {
	Nodes      int
	PerIter    realm.Time
	Throughput float64 // units/s per node, divided by UnitScale
	Wall       time.Duration
	Err        string
}

// Series is one system's curve.
type Series struct {
	System string
	Points []Point
}

// runCells runs fn(0..n-1) on a pool of at most `workers` goroutines
// (workers < 1 means one per available CPU). With one worker the calls run
// inline, in order, with no goroutines — the sequential path is the
// parallel path at width 1, not separate code.
func runCells(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := int64(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunFigure sweeps every system of the app across the node counts,
// sequentially. It is RunFigureParallel at width 1.
func RunFigure(app App, nodes []int, progress func(string)) ([]Series, error) {
	return RunFigureParallel(app, nodes, 1, progress)
}

// RunFigureParallel sweeps every (system, node count) cell of the app over
// a worker pool of the given width (workers < 1 means one per CPU). Each
// cell builds its own program and simulator, so cells share no mutable
// state; results are collected by cell index, which makes the returned
// series — and therefore FormatFigure's output — byte-identical to the
// sequential sweep. Only the interleaving of progress lines (serialized by
// a mutex) and the per-point Wall clock depend on the schedule. A failing
// cell does not abort the sweep: its error is recorded in the cell's
// Point.Err and every other cell still runs (under fault injection some
// cells are expected to die — the MPI baselines have no recovery).
func RunFigureParallel(app App, nodes []int, workers int, progress func(string)) ([]Series, error) {
	systems := app.ActiveSystems()
	type cellKey struct{ si, ni int }
	cells := make([]cellKey, 0, len(systems)*len(nodes))
	for si := range systems {
		for ni := range nodes {
			cells = append(cells, cellKey{si, ni})
		}
	}
	points := make([]Point, len(cells))
	var progressMu sync.Mutex
	runCells(len(cells), workers, func(i int) {
		sys, n := systems[cells[i].si], nodes[cells[i].ni]
		t0 := time.Now()
		per, err := app.Measure(sys, n, app.Iters, bench.MeasureOpts{
			Faults:     app.cellFaults(cells[i].si, n),
			NoTrace:    app.NoTrace,
			NoShare:    app.NoShare,
			Trace:      app.Trace,
			Backend:    app.Backend,
			Procs:      app.Procs,
			NoSched:    app.NoSched,
			Sched:      app.Sched,
			Fit:        app.Fit,
			Policy:     app.Policy,
			Prune:      app.Prune,
			PruneStats: app.PruneStats,
			Agg:        app.Agg,
			AggStats:   app.AggStats,
		})
		note := func(line string) {
			if progress != nil {
				progressMu.Lock()
				progress(line)
				progressMu.Unlock()
			}
		}
		if err != nil {
			points[i] = Point{Nodes: n, Wall: time.Since(t0), Err: err.Error()}
			note(fmt.Sprintf("%-10s %-16s nodes=%-5d ERROR: %v", app.Name, sys, n, err))
			return
		}
		p := Point{
			Nodes:      n,
			PerIter:    per,
			Throughput: app.UnitsPerNode / per.Seconds() / app.UnitScale,
			Wall:       time.Since(t0),
		}
		points[i] = p
		note(fmt.Sprintf("%-10s %-16s nodes=%-5d thr/node=%10.1f %s (sim wall %v)",
			app.Name, sys, n, p.Throughput, app.Unit, p.Wall.Round(time.Millisecond)))
	})
	out := make([]Series, len(systems))
	for i, c := range cells {
		if out[c.si].System == "" {
			out[c.si].System = systems[c.si]
			out[c.si].Points = make([]Point, 0, len(nodes))
		}
		out[c.si].Points = append(out[c.si].Points, points[i])
	}
	return out, nil
}

// ActiveSystems returns the systems the sweep actually measures under the
// app's backend: all of them on the DES, only the Regent variants (with
// and without control replication) on native — the MPI baselines are pure
// DES cost models with no kernels to execute.
func (a App) ActiveSystems() []string {
	if a.Backend != bench.BackendNative {
		return a.Systems
	}
	var out []string
	for _, s := range a.Systems {
		if s == "regent-cr" || s == "regent-nocr" {
			out = append(out, s)
		}
	}
	return out
}

// cellFaults derives the fault plan for one sweep cell. Each cell gets
// its own seed, mixed from the sweep seed, the system index, and the node
// count, so cells see independent fault sequences yet every cell stays
// individually reproducible. Nil when the sweep is fault-free.
func (a App) cellFaults(si, nodes int) *realm.FaultPlan {
	if a.Faults == nil {
		return nil
	}
	fp := *a.Faults
	fp.Seed ^= uint64(si+1)*0x9e3779b97f4a7c15 ^ uint64(nodes)*0xbf58476d1ce4e5b9
	return &fp
}

// FormatFigure renders the series as the paper's figure data: throughput
// per node by node count, plus parallel efficiencies at the largest count.
// Failed cells render as "err"; an efficiency whose endpoints include a
// failed cell renders as "n/a".
func FormatFigure(app App, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s weak scaling — throughput per node (%s)\n", app.Figure, app.Name, app.Unit)
	fmt.Fprintf(&b, "%-8s", "nodes")
	for _, s := range series {
		fmt.Fprintf(&b, "%18s", s.System)
	}
	b.WriteString("\n")
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-8d", series[0].Points[i].Nodes)
		for _, s := range series {
			if s.Points[i].Err != "" {
				fmt.Fprintf(&b, "%18s", "err")
			} else {
				fmt.Fprintf(&b, "%18.1f", s.Points[i].Throughput)
			}
		}
		b.WriteString("\n")
	}
	last := len(series[0].Points) - 1
	fmt.Fprintf(&b, "parallel efficiency at %d nodes:", series[0].Points[last].Nodes)
	for _, s := range series {
		if s.Points[0].Err != "" || s.Points[last].Err != "" {
			fmt.Fprintf(&b, "  %s n/a", s.System)
		} else {
			fmt.Fprintf(&b, "  %s %.1f%%", s.System, 100*s.Points[last].Throughput/s.Points[0].Throughput)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Table1Row is one application's intersection timings at one node count
// (paper Table 1): the wall-clock milliseconds of the shallow phase (run
// once, on one node) and of the complete phase (run in parallel across
// nodes, so reported per node).
type Table1Row struct {
	App                    string
	Nodes                  int
	ShallowMs, CompleteMs  float64
	Candidates, FinalPairs int
}

// Table1 measures the dynamic intersection phases for every app at the
// given node counts by compiling each application's main loop and reading
// the compiler's phase timings. It is Table1Parallel at width 1.
func Table1(nodeCounts []int) ([]Table1Row, error) {
	return Table1Parallel(nodeCounts, 1)
}

// Table1Parallel measures the (app, node count) cells over a worker pool of
// the given width (workers < 1 means one per CPU). Rows are collected by
// cell index and stably sorted by app name, so the output is identical to
// the sequential run; the measured phase timings themselves are wall-clock
// and vary run to run either way.
func Table1Parallel(nodeCounts []int, workers int) ([]Table1Row, error) {
	apps := Apps()
	type cellKey struct{ ai, ni int }
	cells := make([]cellKey, 0, len(apps)*len(nodeCounts))
	for ai := range apps {
		for ni := range nodeCounts {
			cells = append(cells, cellKey{ai, ni})
		}
	}
	rows := make([]Table1Row, len(cells))
	errs := make([]error, len(cells))
	runCells(len(cells), workers, func(i int) {
		app, n := apps[cells[i].ai], nodeCounts[cells[i].ni]
		prog, loop := app.BuildProgram(n)
		plan, err := bench.CompileForTimings(prog, loop, n)
		if err != nil {
			errs[i] = fmt.Errorf("%s@%d: %w", app.Name, n, err)
			return
		}
		rows[i] = Table1Row{
			App:        app.Name,
			Nodes:      n,
			ShallowMs:  float64(plan.Timings.Shallow.Microseconds()) / 1000,
			CompleteMs: float64(plan.Timings.Complete.Microseconds()) / 1000 / float64(n),
			Candidates: plan.Timings.Candidates,
			FinalPairs: plan.Timings.Pairs,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	return rows, nil
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Running times for region intersections\n")
	fmt.Fprintf(&b, "%-10s %-7s %12s %13s %12s %10s\n", "App", "Nodes", "Shallow(ms)", "Complete(ms)", "Candidates", "Pairs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-7d %12.1f %13.1f %12d %10d\n", r.App, r.Nodes, r.ShallowMs, r.CompleteMs, r.Candidates, r.FinalPairs)
	}
	return b.String()
}
