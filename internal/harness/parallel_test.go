package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/realm"
)

// stripWall zeroes the wall-clock field, the only part of a measurement
// that legitimately varies between runs.
func stripWall(series []Series) {
	for si := range series {
		for pi := range series[si].Points {
			series[si].Points[pi].Wall = 0
		}
	}
}

// TestRunFigureParallelDeterministic checks the tentpole guarantee of the
// parallel harness: a parallel sweep returns exactly the sequential sweep's
// results — same virtual times, same throughputs, same ordering — so the
// formatted figures are byte-identical at any worker count.
func TestRunFigureParallelDeterministic(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{1, 2, 4}

	seq, err := RunFigure(app, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureParallel(app, nodes, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	stripWall(seq)
	stripWall(par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if a, b := FormatFigure(app, seq), FormatFigure(app, par); a != b {
		t.Fatalf("formatted figures differ:\nseq:\n%s\npar:\n%s", a, b)
	}

	// Progress still fires once per cell, serialized.
	count := 0
	if _, err := RunFigureParallel(app, []int{1, 2}, 4, func(string) { count++ }); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(app.Systems); count != want {
		t.Errorf("progress fired %d times, want %d", count, want)
	}
}

// TestTable1ParallelDeterministic checks the parallel Table 1 sweep returns
// the sequential rows (the intersection phase timings themselves are wall
// clock and vary either way, so they are zeroed before comparison).
func TestTable1ParallelDeterministic(t *testing.T) {
	strip := func(rows []Table1Row) {
		for i := range rows {
			rows[i].ShallowMs, rows[i].CompleteMs = 0, 0
		}
	}
	seq, err := Table1([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1Parallel([]int{4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	strip(seq)
	strip(par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Table 1 differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunFigureParallelError checks per-cell error isolation: a failing
// cell records its error in the cell's Point and the rest of the sweep
// still runs, identically under sequential and parallel schedules.
func TestRunFigureParallelError(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	// Fail exactly the mpi cells; the regent cells must still measure.
	inner := app.Measure
	app.Measure = func(system string, nodes, iters int, opts bench.MeasureOpts) (realm.Time, error) {
		if system == "mpi" || system == "mpi-openmp" {
			return 0, fmt.Errorf("boom %s@%d", system, nodes)
		}
		return inner(system, nodes, iters, opts)
	}
	check := func(series []Series, err error, label string) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: sweep aborted: %v", label, err)
		}
		for _, s := range series {
			for _, p := range s.Points {
				bad := s.System == "mpi" || s.System == "mpi-openmp"
				if bad && p.Err == "" {
					t.Errorf("%s: %s@%d: want recorded error", label, s.System, p.Nodes)
				}
				if !bad && (p.Err != "" || p.PerIter <= 0) {
					t.Errorf("%s: %s@%d: want clean measurement, got err=%q per=%v", label, s.System, p.Nodes, p.Err, p.PerIter)
				}
			}
		}
	}
	seq, seqErr := RunFigure(app, []int{1, 2}, nil)
	par, parErr := RunFigureParallel(app, []int{1, 2}, 4, nil)
	check(seq, seqErr, "seq")
	check(par, parErr, "par")
	stripWall(seq)
	stripWall(par)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sweep with failing cells differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	// The rendered figure marks the failed columns rather than crashing.
	out := FormatFigure(app, seq)
	if !strings.Contains(out, "err") || !strings.Contains(out, "n/a") {
		t.Errorf("FormatFigure should mark failed cells and efficiencies:\n%s", out)
	}
}

// TestFaultSweepDeterministicIsolation is the fault-sweep smoke test: a
// stencil sweep with injected node crashes completes cell-by-cell — the
// CR cells recover via checkpoint/restart and measure cleanly, the
// implicit-runtime cells (no recovery) record their deadlocks as per-cell
// errors — and the whole thing is deterministic across schedules.
func TestFaultSweepDeterministicIsolation(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	app.Iters = 8
	app.Faults = &realm.FaultPlan{Seed: 42, CrashRate: 2000}
	seq, err := RunFigure(app, []int{2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureParallel(app, []int{2, 4}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(seq)
	stripWall(par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fault sweep differs across schedules:\nseq: %+v\npar: %+v", seq, par)
	}
	nocrErrs := 0
	for _, s := range seq {
		for _, p := range s.Points {
			switch s.System {
			case "regent-cr", "mpi", "mpi-openmp":
				// CR recovers from the crashes; the MPI baselines are measured
				// fault-free (no recovery model exists for them).
				if p.Err != "" || p.PerIter <= 0 {
					t.Errorf("%s@%d: want clean measurement, got err=%q per=%v", s.System, p.Nodes, p.Err, p.PerIter)
				}
			case "regent-nocr":
				if p.Err != "" {
					nocrErrs++
					if !strings.Contains(p.Err, "deadlock") {
						t.Errorf("regent-nocr@%d: want a deadlock diagnosis, got %q", p.Nodes, p.Err)
					}
				}
			}
		}
	}
	if nocrErrs == 0 {
		t.Error("expected the implicit runtime to die on at least one faulted cell (seed 42 is pinned)")
	}
}
