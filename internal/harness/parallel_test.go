package harness

import (
	"reflect"
	"testing"
)

// stripWall zeroes the wall-clock field, the only part of a measurement
// that legitimately varies between runs.
func stripWall(series []Series) {
	for si := range series {
		for pi := range series[si].Points {
			series[si].Points[pi].Wall = 0
		}
	}
}

// TestRunFigureParallelDeterministic checks the tentpole guarantee of the
// parallel harness: a parallel sweep returns exactly the sequential sweep's
// results — same virtual times, same throughputs, same ordering — so the
// formatted figures are byte-identical at any worker count.
func TestRunFigureParallelDeterministic(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{1, 2, 4}

	seq, err := RunFigure(app, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureParallel(app, nodes, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	stripWall(seq)
	stripWall(par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if a, b := FormatFigure(app, seq), FormatFigure(app, par); a != b {
		t.Fatalf("formatted figures differ:\nseq:\n%s\npar:\n%s", a, b)
	}

	// Progress still fires once per cell, serialized.
	count := 0
	if _, err := RunFigureParallel(app, []int{1, 2}, 4, func(string) { count++ }); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(app.Systems); count != want {
		t.Errorf("progress fired %d times, want %d", count, want)
	}
}

// TestTable1ParallelDeterministic checks the parallel Table 1 sweep returns
// the sequential rows (the intersection phase timings themselves are wall
// clock and vary either way, so they are zeroed before comparison).
func TestTable1ParallelDeterministic(t *testing.T) {
	strip := func(rows []Table1Row) {
		for i := range rows {
			rows[i].ShallowMs, rows[i].CompleteMs = 0, 0
		}
	}
	seq, err := Table1([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1Parallel([]int{4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	strip(seq)
	strip(par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Table 1 differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunFigureParallelError checks that a failing cell surfaces the same
// first-in-sequential-order error regardless of schedule.
func TestRunFigureParallelError(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	app.Iters = 1 // steadyState requires at least 2 iterations
	seqErr := func() error {
		_, err := RunFigure(app, []int{1, 2}, nil)
		return err
	}()
	parErr := func() error {
		_, err := RunFigureParallel(app, []int{1, 2}, 4, nil)
		return err
	}()
	if seqErr == nil || parErr == nil {
		t.Fatalf("want errors from 1-iteration sweep, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("parallel error %q differs from sequential %q", parErr, seqErr)
	}
}
