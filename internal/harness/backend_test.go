package harness

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/apps/circuit"
	"repro/internal/apps/miniaero"
	"repro/internal/apps/pennant"
	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/realm/native"
	"repro/internal/region"
	"repro/internal/rt"
	"repro/internal/spmd"
)

// backendApps builds each evaluation application at a correctness-testing
// size. Programs are rebuilt per run (region identities are per-instance),
// so the builder is a function, not a value.
var backendApps = []struct {
	name  string
	build func(nodes int) *ir.Program
}{
	{"stencil", func(n int) *ir.Program { return stencil.Build(stencil.Small(n)).Prog }},
	{"miniaero", func(n int) *ir.Program { return miniaero.Build(miniaero.Small(n)).Prog }},
	{"pennant", func(n int) *ir.Program { return pennant.Build(pennant.Small(n)).Prog }},
	{"circuit", func(n int) *ir.Program { return circuit.Build(circuit.Small(n)).Prog }},
}

// runSPMD executes a freshly built program in Real mode on the given
// backend and returns the run result.
func runSPMD(t *testing.T, prog *ir.Program, nodes int, sync cr.SyncMode, noTrace, noShare bool, backend string) *spmd.Result {
	t.Helper()
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	x, err := bench.NewExec(backend, nodes)
	if err != nil {
		t.Fatal(err)
	}
	eng := spmd.New(x, prog, ir.ExecReal, plans)
	eng.NoTrace = noTrace
	eng.NoShare = noShare
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("backend=%s: %v", backend, err)
	}
	return res
}

// sortedStoreRoots returns a result's region roots in creation order, the
// order both program instances allocate them in, so roots pair up across
// independently built copies of the same application.
func sortedStoreRoots(stores map[*region.Region]*region.Store) []*region.Region {
	roots := make([]*region.Region, 0, len(stores))
	for r := range stores {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID() < roots[j].ID() })
	return roots
}

// requireSameResults asserts two runs of the same application produced
// bitwise-identical region contents (every field of every root region) and
// identical final scalar environments.
func requireSameResults(t *testing.T, label string, want, got *spmd.Result) {
	t.Helper()
	wantRoots := sortedStoreRoots(want.Stores)
	gotRoots := sortedStoreRoots(got.Stores)
	if len(wantRoots) != len(gotRoots) {
		t.Fatalf("%s: %d roots vs %d", label, len(wantRoots), len(gotRoots))
	}
	for i, wr := range wantRoots {
		gr := gotRoots[i]
		ws, gs := want.Stores[wr], got.Stores[gr]
		for _, f := range ws.FieldSpace().Fields() {
			if !gs.EqualOn(ws, f, wr.IndexSpace()) {
				t.Errorf("%s: root %s field %s differs", label, wr.Name(), ws.FieldSpace().Name(f))
			}
		}
	}
	if len(want.Env) != len(got.Env) {
		t.Fatalf("%s: env size %d vs %d", label, len(want.Env), len(got.Env))
	}
	for k, wv := range want.Env {
		if gv, ok := got.Env[k]; !ok || gv != wv {
			t.Errorf("%s: scalar %q = %v, want %v", label, k, gv, wv)
		}
	}
}

// TestNativeMatchesDES is the cross-backend equivalence matrix: every
// evaluation application, under both sync lowerings and every tracing
// configuration, must produce Real-mode stores on the native backend that
// are bitwise equal to the DES's. The native schedule is a different
// interleaving entirely (real cores race); equality holds because every
// float-affecting order is fixed by explicit dependences, which is exactly
// what this test pins.
func TestNativeMatchesDES(t *testing.T) {
	const nodes = 4
	syncs := []struct {
		name string
		mode cr.SyncMode
	}{{"p2p", cr.PointToPoint}, {"barrier", cr.BarrierSync}}
	flags := []struct {
		name             string
		noTrace, noShare bool
	}{
		{"trace+share", false, false},
		{"trace+noshare", false, true},
		{"notrace", true, false},
		{"notrace+noshare", true, true},
	}
	for _, app := range backendApps {
		// One DES reference per (app, sync): tracing never changes results
		// (pinned separately below), so the reference uses the defaults.
		for _, sy := range syncs {
			ref := runSPMD(t, app.build(nodes), nodes, sy.mode, false, false, bench.BackendDES)
			for _, fl := range flags {
				label := fmt.Sprintf("%s/%s/%s", app.name, sy.name, fl.name)
				t.Run(label, func(t *testing.T) {
					res := runSPMD(t, app.build(nodes), nodes, sy.mode, fl.noTrace, fl.noShare, bench.BackendNative)
					requireSameResults(t, label, ref, res)
					if wall := res.Stats.WallNanos; wall <= 0 {
						t.Errorf("%s: native Stats.WallNanos = %d, want > 0", label, wall)
					}
				})
			}
		}
	}
}

// TestNativeImplicitMatchesDES runs the implicit (non-CR) runtime on both
// backends: the rt engine's Real-mode results must also be backend
// independent.
func TestNativeImplicitMatchesDES(t *testing.T) {
	const nodes = 4
	run := func(backend string) *rt.Result {
		prog := stencil.Build(stencil.Small(nodes)).Prog
		x, err := bench.NewExec(backend, nodes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.New(x, prog, rt.Real).Run()
		if err != nil {
			t.Fatalf("backend=%s: %v", backend, err)
		}
		return res
	}
	want, got := run(bench.BackendDES), run(bench.BackendNative)
	requireSameResults(t, "implicit",
		&spmd.Result{Stores: want.Stores, Env: want.Env},
		&spmd.Result{Stores: got.Stores, Env: got.Env})
}

// runSPMDRecov executes a freshly built program on the given backend with
// a fault plan installed and checkpoint/restart recovery enabled.
func runSPMDRecov(t *testing.T, prog *ir.Program, nodes int, sync cr.SyncMode, backend string, fp *realm.FaultPlan) *spmd.Result {
	t.Helper()
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	x, err := bench.NewExec(backend, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if fp != nil {
		fx, ok := x.(realm.FaultExec)
		if !ok {
			t.Fatalf("backend %s lost its FaultExec implementation", backend)
		}
		if err := fx.InjectFaults(*fp); err != nil {
			t.Fatal(err)
		}
	}
	eng := spmd.New(x, prog, ir.ExecReal, plans)
	eng.Recov = spmd.Recovery{MaxRetries: 6, Backoff: realm.Microseconds(200)}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("backend=%s: %v", backend, err)
	}
	return res
}

// TestNativeCrashRecoveryMatchesFaultFree is the keystone of native fault
// tolerance: every evaluation application, under both sync lowerings, is
// run on the native backend with a seeded crash injected, recovered
// through real-goroutine failover — and must produce Real-mode stores
// bitwise equal to the fault-free native run (which is itself pinned
// bitwise-equal to the DES by TestNativeMatchesDES).
func TestNativeCrashRecoveryMatchesFaultFree(t *testing.T) {
	const nodes = 4
	syncs := []struct {
		name string
		mode cr.SyncMode
	}{{"p2p", cr.PointToPoint}, {"barrier", cr.BarrierSync}}
	for _, app := range backendApps {
		for _, sy := range syncs {
			label := fmt.Sprintf("%s/%s", app.name, sy.name)
			t.Run(label, func(t *testing.T) {
				ref := runSPMD(t, app.build(nodes), nodes, sy.mode, false, false, bench.BackendNative)
				// Seed 4 at rate 500 (a 0.05 crash probability per launch)
				// lands at least one early crash in every app under both
				// lowerings; the per-node draw sequences are seeded, so the
				// crashes land at the same logical points on every run.
				fp := &realm.FaultPlan{Seed: 4, CrashRate: 500}
				res := runSPMDRecov(t, app.build(nodes), nodes, sy.mode, bench.BackendNative, fp)
				if res.Faults == nil || len(res.Faults.Crashes) == 0 || res.Faults.Restarts < 1 {
					t.Fatalf("%s: fault report = %+v, want at least one crash and one restart", label, res.Faults)
				}
				if res.Faults.Unrecovered {
					t.Fatalf("%s: run degraded: %+v", label, res.Faults)
				}
				for _, c := range res.Faults.Crashes {
					if c.Node == 0 {
						t.Fatalf("%s: node 0 crashed without CrashNode0", label)
					}
				}
				requireSameResults(t, label, ref, res)
			})
		}
	}
}

// runSPMDNoSched executes a freshly built program in Real mode on the
// native backend with the worker pool disabled — goroutine-per-launch
// dispatch, the scheduler's A/B baseline.
func runSPMDNoSched(t *testing.T, prog *ir.Program, nodes int, sync cr.SyncMode) *spmd.Result {
	t.Helper()
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	m, err := native.NewMachine(realm.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	m.SetScheduler(false)
	res, err := spmd.New(m, prog, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNativeSchedulerOffMatchesOn is the scheduler's determinism check:
// for every evaluation application, Real-mode stores with the worker pool
// on must be bitwise equal to the goroutine-per-launch baseline. The pool
// reorders ready items freely (LIFO slots, stealing), so equality holds
// only because every float-affecting order is fixed by the event graph —
// which is exactly what this pins.
func TestNativeSchedulerOffMatchesOn(t *testing.T) {
	const nodes = 4
	for _, app := range backendApps {
		t.Run(app.name, func(t *testing.T) {
			ref := runSPMD(t, app.build(nodes), nodes, cr.PointToPoint, false, false, bench.BackendNative)
			res := runSPMDNoSched(t, app.build(nodes), nodes, cr.PointToPoint)
			requireSameResults(t, app.name, ref, res)
			if ref.Stats.Dispatches == 0 {
				t.Error("pooled run recorded no dispatches; is the scheduler actually on?")
			}
			if res.Stats.Dispatches != 0 || res.Stats.Steals != 0 {
				t.Errorf("NoSched run recorded scheduler activity: %d dispatches, %d steals",
					res.Stats.Dispatches, res.Stats.Steals)
			}
		})
	}
}

// TestNativeLaunchCrashRecovery runs a logical-point crash schedule —
// "node 2 dies at its 5th launch" — end to end on the native backend:
// the plan installs (virtual-time schedules are still rejected), the crash
// lands exactly once, recovery restores the run, and the stores come out
// bitwise equal to the fault-free native run.
func TestNativeLaunchCrashRecovery(t *testing.T) {
	const nodes = 4
	app := backendApps[0] // stencil
	ref := runSPMD(t, app.build(nodes), nodes, cr.PointToPoint, false, false, bench.BackendNative)
	fp := &realm.FaultPlan{LaunchCrashes: []realm.LaunchCrash{{Node: 2, AtLaunch: 5}}}
	res := runSPMDRecov(t, app.build(nodes), nodes, cr.PointToPoint, bench.BackendNative, fp)
	if res.Faults == nil || len(res.Faults.Crashes) != 1 || res.Faults.Crashes[0].Node != 2 {
		t.Fatalf("fault report = %+v, want exactly the scheduled crash of node 2", res.Faults)
	}
	if res.Faults.Restarts < 1 || res.Faults.Unrecovered {
		t.Fatalf("fault report = %+v, want a clean recovery", res.Faults)
	}
	requireSameResults(t, "launch-crash", ref, res)
}

// TestMeasuredTimeCalibratesDES closes the model-reality loop: fit a
// MeasuredTime from a native stencil run, export and re-import its
// coefficients, install the policy on the DES, and check the re-modeled
// per-iteration time lands closer (in log error) to the measured wall time
// than the default Cray-XC model does. The native backend interprets its
// kernels, so the modeled constants are off by orders of magnitude — the
// fit must close most of that gap.
func TestMeasuredTimeCalibratesDES(t *testing.T) {
	// All three runs use the same program at the native benchmark size: the
	// calibration is only meaningful when the DES re-models the very
	// workload the samples came from (the harness's Measure deliberately
	// scales the grid per backend, which would compare different programs).
	const nodes = 2
	tune := bench.DefaultTuning(realm.DefaultConfig(nodes).CoresPerNode)
	run := func(opts bench.MeasureOpts) realm.Time {
		t.Helper()
		app := stencil.Build(stencil.Native(nodes))
		per, err := bench.MeasureCR(app.Prog, app.Loop, nodes, cr.PointToPoint, tune, opts)
		if err != nil {
			t.Fatal(err)
		}
		return per
	}
	fit := realm.NewMeasuredTime(realm.ModeledTime{Cfg: realm.DefaultConfig(nodes)})
	wall := run(bench.MeasureOpts{Backend: bench.BackendNative, Fit: fit})
	launches, copies := fit.Samples()
	if launches == 0 || copies == 0 {
		t.Fatalf("fit saw %d launches / %d copies, want both > 0", launches, copies)
	}
	data, err := fit.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	imported, err := realm.ImportMeasuredTime(data, realm.ModeledTime{Cfg: realm.DefaultConfig(nodes)})
	if err != nil {
		t.Fatal(err)
	}
	modeled := run(bench.MeasureOpts{})
	measured := run(bench.MeasureOpts{Policy: imported})
	logErr := func(got realm.Time) float64 {
		return math.Abs(math.Log(float64(got) / float64(wall)))
	}
	if logErr(measured) >= logErr(modeled) {
		t.Errorf("fitted policy did not move the DES toward reality: wall=%v modeled=%v measured=%v",
			wall, modeled, measured)
	}
	// Tolerance: the fitted re-run must land within a factor of 4 of the
	// measured wall time (the defaults are off by far more).
	if logErr(measured) > math.Log(4) {
		t.Errorf("fitted per-iter %v is more than 4x off the measured wall %v", measured, wall)
	}
}

// TestNativeMeasureGates pins the measurement-layer capability surface on
// native: the MPI baselines stay DES-only cost models (UnsupportedError),
// fault injection into the implicit runtime is rejected up front (it has
// no recovery — on the DES a crash is a cheap immediate DeadlockError, on
// native it would burn a watchdog window per sweep cell), and fault
// injection into regent-cr now measures successfully through recovery.
func TestNativeMeasureGates(t *testing.T) {
	_, err := stencil.Measure("mpi", 2, 0, bench.MeasureOpts{Backend: bench.BackendNative})
	var ue *realm.UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("mpi on native: err = %v, want realm.UnsupportedError", err)
	}
	_, err = stencil.Measure("regent-nocr", 2, 0, bench.MeasureOpts{
		Backend: bench.BackendNative,
		Faults:  &realm.FaultPlan{Seed: 1, CrashRate: 0.5},
	})
	if !errors.As(err, &ue) {
		t.Fatalf("implicit faults on native: err = %v, want realm.UnsupportedError", err)
	}
	per, err := stencil.Measure("regent-cr", 2, 0, bench.MeasureOpts{
		Backend: bench.BackendNative,
		Faults:  &realm.FaultPlan{Seed: 1, CrashRate: 0.5},
	})
	if err != nil {
		t.Fatalf("regent-cr faults on native must measure through recovery: %v", err)
	}
	if per <= 0 {
		t.Fatalf("regent-cr faulty native per-iter = %v, want > 0 wall time", per)
	}
}

// TestNativeSweepFiltersSystems pins the harness-side behavior: a native
// sweep measures only the Regent systems and records real wall-clock.
func TestNativeSweepFiltersSystems(t *testing.T) {
	app, err := AppByName("stencil")
	if err != nil {
		t.Fatal(err)
	}
	app.Backend = bench.BackendNative
	app.Iters = 4
	series, err := RunFigure(app, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].System != "regent-cr" || series[1].System != "regent-nocr" {
		t.Fatalf("native systems = %+v, want regent-cr, regent-nocr", series)
	}
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != "" {
				t.Fatalf("%s: %s", s.System, p.Err)
			}
			if p.PerIter <= 0 {
				t.Errorf("%s: per-iter = %v, want > 0 wall time", s.System, p.PerIter)
			}
		}
	}
}
