package harness

import (
	"strings"
	"testing"
)

func TestAppsRegistry(t *testing.T) {
	apps := Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	figures := map[int]bool{}
	for _, a := range apps {
		figures[a.Figure] = true
		if a.Measure == nil || a.BuildProgram == nil || len(a.Systems) == 0 {
			t.Errorf("app %s incomplete", a.Name)
		}
	}
	for f := 6; f <= 9; f++ {
		if !figures[f] {
			t.Errorf("missing figure %d", f)
		}
	}
	if _, err := AppByName("pennant"); err != nil {
		t.Error(err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestRunFigureSmall(t *testing.T) {
	app, err := AppByName("circuit")
	if err != nil {
		t.Fatal(err)
	}
	series, err := RunFigure(app, []int{1, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(app.Systems) {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s points = %d", s.System, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Throughput <= 0 || p.PerIter <= 0 {
				t.Errorf("%s@%d: bad point %+v", s.System, p.Nodes, p)
			}
		}
	}
	text := FormatFigure(app, series)
	if !strings.Contains(text, "Figure 9") || !strings.Contains(text, "parallel efficiency") {
		t.Errorf("figure text malformed:\n%s", text)
	}
}

func TestTable1Small(t *testing.T) {
	rows, err := Table1([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 4 apps x 2 node counts", len(rows))
	}
	for _, r := range rows {
		if r.FinalPairs <= 0 {
			t.Errorf("%s@%d: no intersection pairs", r.App, r.Nodes)
		}
		if r.FinalPairs > r.Candidates {
			t.Errorf("%s@%d: pairs %d exceed candidates %d", r.App, r.Nodes, r.FinalPairs, r.Candidates)
		}
		if r.ShallowMs < 0 || r.CompleteMs < 0 {
			t.Errorf("%s@%d: negative timings", r.App, r.Nodes)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "circuit") {
		t.Errorf("table text malformed:\n%s", text)
	}
}
