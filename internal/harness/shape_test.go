package harness

import (
	"testing"

	"repro/internal/bench"
)

// TestFigureShapesAt64Nodes locks in the qualitative claims of each figure
// at a CI-friendly scale (64 nodes): control replication stays near-flat,
// the implicit runtime has collapsed, and the system orderings match the
// paper. Absolute values are covered by EXPERIMENTS.md; these assertions
// guard the shapes against regressions.
func TestFigureShapesAt64Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression sweep is slow")
	}
	type meas map[string]map[int]float64 // system -> nodes -> throughput/node
	run := func(name string, nodes []int) meas {
		t.Helper()
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out := meas{}
		for _, sys := range app.Systems {
			out[sys] = map[int]float64{}
			for _, n := range nodes {
				per, err := app.Measure(sys, n, app.Iters, bench.MeasureOpts{})
				if err != nil {
					t.Fatalf("%s/%s@%d: %v", name, sys, n, err)
				}
				out[sys][n] = app.UnitsPerNode / per.Seconds()
			}
		}
		return out
	}
	eff := func(m meas, sys string, n int) float64 { return m[sys][n] / m[sys][1] }

	t.Run("stencil", func(t *testing.T) {
		m := run("stencil", []int{1, 64})
		if e := eff(m, "regent-cr", 64); e < 0.97 {
			t.Errorf("CR efficiency at 64 = %.2f, want near 1", e)
		}
		if e := eff(m, "regent-nocr", 64); e > 0.6 {
			t.Errorf("non-CR efficiency at 64 = %.2f, should have collapsed", e)
		}
		if e := eff(m, "mpi", 64); e < 0.95 {
			t.Errorf("MPI efficiency at 64 = %.2f", e)
		}
		// CR and MPI comparable in absolute terms (within 5%).
		if r := m["regent-cr"][64] / m["mpi"][64]; r < 0.95 || r > 1.05 {
			t.Errorf("CR/MPI throughput ratio = %.2f, want ~1", r)
		}
	})

	t.Run("miniaero", func(t *testing.T) {
		m := run("miniaero", []int{1, 64})
		// Regent above both references (§5.2).
		if m["regent-cr"][64] <= m["mpi-kokkos-core"][64] {
			t.Error("Regent CR should out-perform MPI+Kokkos rank/core")
		}
		if m["regent-cr"][64] <= m["mpi-kokkos-node"][64] {
			t.Error("Regent CR should out-perform MPI+Kokkos rank/node")
		}
		// The Figure 7 crossover: rank/node converges down toward rank/core
		// (the paper's curves meet around 64-1024 nodes).
		ratio1 := m["mpi-kokkos-node"][1] / m["mpi-kokkos-core"][1]
		ratio64 := m["mpi-kokkos-node"][64] / m["mpi-kokkos-core"][64]
		if ratio1 < 1.15 {
			t.Errorf("rank/node should start well above rank/core (ratio %.2f)", ratio1)
		}
		if ratio64 > 1.10 {
			t.Errorf("rank/node should have converged most of the way to rank/core by 64 nodes (ratio %.2f)", ratio64)
		}
		if ratio64 >= ratio1-0.08 {
			t.Errorf("rank/node advantage should shrink with scale (%.2f -> %.2f)", ratio1, ratio64)
		}
	})

	t.Run("pennant", func(t *testing.T) {
		m := run("pennant", []int{1, 64})
		// Single node: MPI fastest (dedicated analysis core penalty, §5.3).
		if m["mpi"][1] <= m["regent-cr"][1] {
			t.Error("MPI should win at a single node")
		}
		// The gap closes at scale: CR within 10% of MPI at 64 nodes.
		if r := m["regent-cr"][64] / m["mpi"][64]; r < 0.90 {
			t.Errorf("CR/MPI ratio at 64 = %.2f, gap should be closing", r)
		}
		// Ordering at scale: CR eff > MPI eff > MPI+OpenMP eff.
		ecr, empi, eomp := eff(m, "regent-cr", 64), eff(m, "mpi", 64), eff(m, "mpi-openmp", 64)
		if !(ecr > empi && empi > eomp) {
			t.Errorf("efficiency ordering violated: CR %.2f, MPI %.2f, OpenMP %.2f", ecr, empi, eomp)
		}
	})

	t.Run("circuit", func(t *testing.T) {
		m := run("circuit", []int{1, 16, 64})
		if e := eff(m, "regent-cr", 64); e < 0.97 {
			t.Errorf("CR efficiency at 64 = %.2f", e)
		}
		// Non-CR still holds most of its throughput at 16 (paper: matches
		// "up to 16 nodes") but collapses by 64.
		if e := eff(m, "regent-nocr", 16); e < 0.5 {
			t.Errorf("non-CR at 16 nodes = %.2f, should still be partly alive", e)
		}
		if e := eff(m, "regent-nocr", 64); e > 0.2 {
			t.Errorf("non-CR at 64 nodes = %.2f, should have collapsed", e)
		}
	})
}

// TestTable1Shape guards the Table 1 shape: shallow grows with node count,
// circuit is the most expensive app, and everything stays far below
// application run times.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]map[int]Table1Row{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[int]Table1Row{}
		}
		byApp[r.App][r.Nodes] = r
	}
	for app, m := range byApp {
		if m[64].FinalPairs <= m[16].FinalPairs {
			t.Errorf("%s: pairs should grow with node count (%d vs %d)", app, m[16].FinalPairs, m[64].FinalPairs)
		}
		// Pairs grow roughly linearly with nodes (O(1) per region, §3.3).
		growth := float64(m[64].FinalPairs) / float64(m[16].FinalPairs)
		if growth > 8 {
			t.Errorf("%s: pair growth %0.1fx for 4x nodes — not O(1) per region", app, growth)
		}
	}
	if byApp["circuit"][64].ShallowMs < byApp["stencil"][64].ShallowMs/4 {
		t.Error("circuit (irregular graph) should be among the most expensive shallow computations")
	}
}
