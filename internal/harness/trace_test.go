package harness

import (
	"reflect"
	"testing"
)

// TestTraceAblationSeriesIdentical is the PR 3 harness guarantee: a sweep
// with runtime trace capture/replay disabled produces exactly the traced
// sweep's series — same virtual per-iteration times, same throughputs, so
// the formatted figure is byte-identical. Tracing is a host-side
// optimization; the simulated schedule must not depend on it.
func TestTraceAblationSeriesIdentical(t *testing.T) {
	nodes := []int{1, 4, 16}
	run := func(noTrace bool) ([]Series, string) {
		app, err := AppByName("stencil")
		if err != nil {
			t.Fatal(err)
		}
		app.Iters = 8
		app.NoTrace = noTrace
		series, err := RunFigure(app, nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		stripWall(series)
		return series, FormatFigure(app, series)
	}
	traced, tracedOut := run(false)
	untraced, untracedOut := run(true)
	if !reflect.DeepEqual(traced, untraced) {
		t.Errorf("trace-off series differ from traced:\ntraced: %+v\nuntraced: %+v", traced, untraced)
	}
	if tracedOut != untracedOut {
		t.Errorf("formatted figures differ:\n--- traced ---\n%s--- untraced ---\n%s", tracedOut, untracedOut)
	}
}

// TestShareAblationSeriesIdentical is the same guarantee for cross-shard
// trace sharing: specializing one shared capture per shard instead of
// capturing per shard must leave every app's series and formatted figure
// byte-identical at every swept shard count. This is the harness-level
// golden for the -trace-share ablation, over all four applications.
func TestShareAblationSeriesIdentical(t *testing.T) {
	nodes := []int{2, 4, 8}
	if testing.Short() {
		nodes = []int{2, 4}
	}
	for _, app := range Apps() {
		t.Run(app.Name, func(t *testing.T) {
			run := func(noShare bool) ([]Series, string) {
				a := app
				a.Iters = 8
				a.NoShare = noShare
				series, err := RunFigure(a, nodes, nil)
				if err != nil {
					t.Fatal(err)
				}
				stripWall(series)
				return series, FormatFigure(a, series)
			}
			shared, sharedOut := run(false)
			perShard, perShardOut := run(true)
			if !reflect.DeepEqual(shared, perShard) {
				t.Errorf("share-off series differ from shared:\nshared: %+v\nper-shard: %+v", shared, perShard)
			}
			if sharedOut != perShardOut {
				t.Errorf("formatted figures differ:\n--- shared ---\n%s--- per-shard ---\n%s", sharedOut, perShardOut)
			}
		})
	}
}
