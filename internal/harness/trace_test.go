package harness

import (
	"reflect"
	"testing"
)

// TestTraceAblationSeriesIdentical is the PR 3 harness guarantee: a sweep
// with runtime trace capture/replay disabled produces exactly the traced
// sweep's series — same virtual per-iteration times, same throughputs, so
// the formatted figure is byte-identical. Tracing is a host-side
// optimization; the simulated schedule must not depend on it.
func TestTraceAblationSeriesIdentical(t *testing.T) {
	nodes := []int{1, 4, 16}
	run := func(noTrace bool) ([]Series, string) {
		app, err := AppByName("stencil")
		if err != nil {
			t.Fatal(err)
		}
		app.Iters = 8
		app.NoTrace = noTrace
		series, err := RunFigure(app, nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		stripWall(series)
		return series, FormatFigure(app, series)
	}
	traced, tracedOut := run(false)
	untraced, untracedOut := run(true)
	if !reflect.DeepEqual(traced, untraced) {
		t.Errorf("trace-off series differ from traced:\ntraced: %+v\nuntraced: %+v", traced, untraced)
	}
	if tracedOut != untracedOut {
		t.Errorf("formatted figures differ:\n--- traced ---\n%s--- untraced ---\n%s", tracedOut, untracedOut)
	}
}
