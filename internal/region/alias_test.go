package region

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// buildPaperTree reproduces the region tree of the paper's Figure 3:
// A with disjoint PA; B with disjoint PB and aliased QB.
func buildPaperTree(t *testing.T) (pa, pb, qb *Partition) {
	t.Helper()
	tr := NewTree()
	n := int64(16)
	a := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	b := tr.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	pa = a.Block("PA", 4)
	pb = b.Block("PB", 4)
	qb = Image(b, pb, "QB", func(p geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((p.X() + 3) % n)}
	})
	return pa, pb, qb
}

func TestMayAliasSiblingsOfDisjointPartition(t *testing.T) {
	pa, _, _ := buildPaperTree(t)
	if MayAlias(pa.Sub1(0), pa.Sub1(1)) {
		t.Error("distinct subregions of a disjoint partition must not alias")
	}
	if !MayAlias(pa.Sub1(2), pa.Sub1(2)) {
		t.Error("a region aliases itself")
	}
}

func TestMayAliasAcrossTrees(t *testing.T) {
	pa, pb, _ := buildPaperTree(t)
	if MayAlias(pa.Sub1(0), pb.Sub1(0)) {
		t.Error("regions in different trees never alias")
	}
	if PartitionsMayAlias(pa, pb) {
		t.Error("partitions in different trees never alias")
	}
}

func TestMayAliasAncestor(t *testing.T) {
	_, pb, _ := buildPaperTree(t)
	parent := pb.Parent()
	if !MayAlias(parent, pb.Sub1(0)) {
		t.Error("a region aliases its own subregions")
	}
}

func TestMayAliasAcrossPartitionsOfSameRegion(t *testing.T) {
	_, pb, qb := buildPaperTree(t)
	// PB[i] and QB[j] hang under different partitions of B whose LCA is the
	// region B itself: conservatively aliased (paper Figure 3).
	if !MayAlias(pb.Sub1(0), qb.Sub1(0)) {
		t.Error("subregions of different partitions of one region may alias")
	}
	if !PartitionsMayAlias(pb, qb) {
		t.Error("PB and QB may alias")
	}
	if !PartitionsMayAlias(qb, qb) {
		t.Error("an aliased partition aliases itself")
	}
	if PartitionsMayAlias(pb, pb) {
		t.Error("a disjoint partition does not self-alias")
	}
}

func TestPartitionsMayAliasNested(t *testing.T) {
	// A partition of a subregion aliases the partition it came from.
	tr := NewTree()
	r := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 15)))
	p := r.Block("P", 2)
	inner := p.Sub1(0).Block("inner", 2)
	if !PartitionsMayAlias(p, inner) {
		t.Error("nested partition shares elements with its ancestor partition")
	}
}

// TestHierarchicalPrivateGhost reproduces the §4.5 scenario of Figure 5:
// after introducing a disjoint private/ghost top-level partition, the
// compiler can prove the restricted PB disjoint from the restricted QB and
// SB, eliminating copies for PB.
func TestHierarchicalPrivateGhost(t *testing.T) {
	tr := NewTree()
	n := int64(64)
	b := tr.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	// Elements 48..63 are involved in communication ("all_ghost").
	top := b.BySubsets("private_v_ghost", geometry.NewIndexSpace(geometry.R1(0, 1)),
		map[geometry.Point]geometry.IndexSpace{
			geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 47)),
			geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(48, 63)),
		})
	if !top.Disjoint() {
		t.Fatal("top-level partition should be disjoint")
	}
	allPrivate, allGhost := top.Sub1(0), top.Sub1(1)

	flat := b.Block("flat", 4)
	pb := Restrict(allPrivate, flat, "PB")
	sb := Restrict(allGhost, flat, "SB")
	qb := allGhost.BySubsets("QB", geometry.NewIndexSpace(geometry.R1(0, 3)),
		map[geometry.Point]geometry.IndexSpace{
			geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(48, 55)),
			geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(52, 59)),
			geometry.Pt1(2): geometry.NewIndexSpace(geometry.R1(56, 63)),
			geometry.Pt1(3): geometry.NewIndexSpace(geometry.R1(48, 51)),
		})

	// The key §4.5 facts: PB provably disjoint from QB and SB, so PB needs
	// no copies and no intersection tests.
	if PartitionsMayAlias(pb, qb) {
		t.Error("PB (under all_private) must be provably disjoint from QB (under all_ghost)")
	}
	if PartitionsMayAlias(pb, sb) {
		t.Error("PB must be provably disjoint from SB")
	}
	// SB and QB both live under all_ghost: they may alias.
	if !PartitionsMayAlias(sb, qb) {
		t.Error("SB and QB may alias")
	}
}

// Property: MayAlias is conservative — whenever two regions actually share
// an element, MayAlias must be true.
func TestMayAliasSoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		tr := NewTree()
		n := int64(rng.Intn(40) + 10)
		root := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		// Build a random two-level tree with a mix of operators.
		var regions []*Region
		regions = append(regions, root)
		p1 := root.Block("p1", int64(rng.Intn(3)+2))
		p1.Each(func(_ geometry.Point, s *Region) bool { regions = append(regions, s); return true })
		p2 := Image(root, p1, "p2", func(p geometry.Point) []geometry.Point {
			return []geometry.Point{geometry.Pt1((p.X() + int64(rng.Intn(5))) % n)}
		})
		p2.Each(func(_ geometry.Point, s *Region) bool { regions = append(regions, s); return true })
		sub := p1.Sub1(0)
		if sub.Volume() > 1 {
			p3 := sub.Block("p3", 2)
			p3.Each(func(_ geometry.Point, s *Region) bool { regions = append(regions, s); return true })
		}
		for _, a := range regions {
			for _, b := range regions {
				actual := a.IndexSpace().Overlaps(b.IndexSpace())
				if actual && !MayAlias(a, b) {
					t.Fatalf("iter %d: %s and %s overlap but MayAlias is false", iter, a, b)
				}
				if Intersects(a, b) != actual {
					t.Fatalf("iter %d: Intersects(%s,%s) = %v, actual %v", iter, a, b, !actual, actual)
				}
			}
		}
	}
}

// Property: PartitionsMayAlias is conservative against brute force.
func TestPartitionsMayAliasSoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		tr := NewTree()
		n := int64(rng.Intn(40) + 10)
		root := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		parts := []*Partition{
			root.Block("b", int64(rng.Intn(3)+2)),
			Image(root, root.Block("b2", 3), "img", func(p geometry.Point) []geometry.Point {
				return []geometry.Point{geometry.Pt1((p.X() * 2) % n)}
			}),
		}
		for _, p := range parts {
			for _, q := range parts {
				overlap := false
				p.Each(func(cp geometry.Point, sp *Region) bool {
					q.Each(func(cq geometry.Point, sq *Region) bool {
						if p == q && cp == cq {
							return true
						}
						if sp.IndexSpace().Overlaps(sq.IndexSpace()) {
							overlap = true
							return false
						}
						return true
					})
					return !overlap
				})
				if overlap && !PartitionsMayAlias(p, q) {
					t.Fatalf("iter %d: %s/%s overlap but PartitionsMayAlias is false", iter, p, q)
				}
			}
		}
	}
}
