package region

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func TestLayoutDenseSlots(t *testing.T) {
	l := NewLayout(geometry.NewIndexSpace(geometry.R2(0, 0, 3, 3)))
	if l.Size() != 16 {
		t.Fatalf("size = %d", l.Size())
	}
	if l.Slot(geometry.Pt2(0, 0)) != 0 {
		t.Error("first point should be slot 0")
	}
	if l.Slot(geometry.Pt2(3, 3)) != 15 {
		t.Error("last point should be slot 15")
	}
}

func TestLayoutSparseBijective(t *testing.T) {
	is := geometry.FromRects(1, []geometry.Rect{geometry.R1(5, 9), geometry.R1(20, 22), geometry.R1(0, 1)})
	l := NewLayout(is)
	if l.Size() != 10 {
		t.Fatalf("size = %d", l.Size())
	}
	seen := map[int64]bool{}
	is.Each(func(p geometry.Point) bool {
		s := l.Slot(p)
		if s < 0 || s >= l.Size() || seen[s] {
			t.Fatalf("bad slot %d for %v", s, p)
		}
		seen[s] = true
		return true
	})
}

func TestLayoutEachMatchesSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		var rects []geometry.Rect
		for i := 0; i < rng.Intn(4)+1; i++ {
			lo := rng.Int63n(100)
			rects = append(rects, geometry.R1(lo, lo+rng.Int63n(10)))
		}
		is := geometry.FromRects(1, rects)
		l := NewLayout(is)
		count := int64(0)
		l.Each(func(p geometry.Point, slot int64) bool {
			if l.Slot(p) != slot {
				t.Fatalf("Each slot %d != Slot() %d at %v", slot, l.Slot(p), p)
			}
			count++
			return true
		})
		if count != l.Size() {
			t.Fatalf("Each visited %d, size %d", count, l.Size())
		}
	}
}

func TestLayoutSlotPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for point outside layout")
		}
	}()
	NewLayout(geometry.NewIndexSpace(geometry.R1(0, 4))).Slot(geometry.Pt1(5))
}

func TestStoreGetSetFill(t *testing.T) {
	fs := NewFieldSpace("u", "v")
	s := NewStore(geometry.NewIndexSpace(geometry.R1(0, 9)), fs)
	u, v := fs.Field("u"), fs.Field("v")
	s.Set(u, geometry.Pt1(3), 42)
	if got := s.Get(u, geometry.Pt1(3)); got != 42 {
		t.Errorf("get = %v", got)
	}
	if got := s.Get(v, geometry.Pt1(3)); got != 0 {
		t.Errorf("other field disturbed: %v", got)
	}
	s.Fill(v, 7)
	if got := s.Get(v, geometry.Pt1(9)); got != 7 {
		t.Errorf("fill = %v", got)
	}
}

func TestStoreCopyFieldFromIntersection(t *testing.T) {
	fs := NewFieldSpace("x")
	x := fs.Field("x")
	a := NewStore(geometry.NewIndexSpace(geometry.R1(0, 9)), fs)
	b := NewStore(geometry.NewIndexSpace(geometry.R1(5, 14)), fs)
	for i := int64(0); i < 10; i++ {
		a.Set(x, geometry.Pt1(i), float64(i))
	}
	over := a.IndexSpace().Intersect(b.IndexSpace())
	b.CopyFieldFrom(a, x, over)
	for i := int64(5); i <= 9; i++ {
		if got := b.Get(x, geometry.Pt1(i)); got != float64(i) {
			t.Errorf("b[%d] = %v", i, got)
		}
	}
	if got := b.Get(x, geometry.Pt1(14)); got != 0 {
		t.Errorf("point outside intersection modified: %v", got)
	}
}

func TestStoreReduce(t *testing.T) {
	fs := NewFieldSpace("acc")
	f := fs.Field("acc")
	s := NewStore(geometry.NewIndexSpace(geometry.R1(0, 0)), fs)
	p := geometry.Pt1(0)
	s.Reduce(f, ReduceSum, p, 3)
	s.Reduce(f, ReduceSum, p, 4)
	if got := s.Get(f, p); got != 7 {
		t.Errorf("sum = %v", got)
	}
	s.Fill(f, ReduceMin.Identity())
	s.Reduce(f, ReduceMin, p, 5)
	s.Reduce(f, ReduceMin, p, 2)
	s.Reduce(f, ReduceMin, p, 9)
	if got := s.Get(f, p); got != 2 {
		t.Errorf("min = %v", got)
	}
	s.Fill(f, ReduceMax.Identity())
	s.Reduce(f, ReduceMax, p, -5)
	if got := s.Get(f, p); got != -5 {
		t.Errorf("max = %v", got)
	}
}

func TestReduceFieldFromAppliesPartials(t *testing.T) {
	// §4.3: a reduction instance initialized to the identity, folded into
	// the destination with a reduction copy.
	fs := NewFieldSpace("q")
	f := fs.Field("q")
	is := geometry.NewIndexSpace(geometry.R1(0, 4))
	dst := NewStore(is, fs)
	tmp := NewStore(is, fs)
	dst.Fill(f, 10)
	tmp.Fill(f, ReduceSum.Identity())
	tmp.Reduce(f, ReduceSum, geometry.Pt1(2), 5)
	dst.ReduceFieldFrom(tmp, f, ReduceSum, is)
	if got := dst.Get(f, geometry.Pt1(2)); got != 15 {
		t.Errorf("reduced value = %v", got)
	}
	if got := dst.Get(f, geometry.Pt1(0)); got != 10 {
		t.Errorf("identity application changed value: %v", got)
	}
}

func TestReductionOpIdentities(t *testing.T) {
	if ReduceSum.Identity() != 0 {
		t.Error("sum identity")
	}
	if !math.IsInf(ReduceMin.Identity(), 1) {
		t.Error("min identity should be +Inf")
	}
	if !math.IsInf(ReduceMax.Identity(), -1) {
		t.Error("max identity should be -Inf")
	}
}

func TestFieldSpaceLookup(t *testing.T) {
	fs := NewFieldSpace("a", "b")
	if fs.NumFields() != 2 || fs.Name(fs.Field("b")) != "b" {
		t.Error("field lookup broken")
	}
	c := fs.Add("c")
	if fs.Field("c") != c || fs.NumFields() != 3 {
		t.Error("Add broken")
	}
	if len(fs.Fields()) != 3 {
		t.Error("Fields broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown field")
		}
	}()
	fs.Field("zzz")
}

func TestStoreEqualOn(t *testing.T) {
	fs := NewFieldSpace("x")
	f := fs.Field("x")
	is := geometry.NewIndexSpace(geometry.R1(0, 9))
	a, b := NewStore(is, fs), NewStore(is, fs)
	if !a.EqualOn(b, f, is) {
		t.Error("zeroed stores should be equal")
	}
	b.Set(f, geometry.Pt1(4), 1)
	if a.EqualOn(b, f, is) {
		t.Error("differing stores reported equal")
	}
	if !a.EqualOn(b, f, geometry.NewIndexSpace(geometry.R1(5, 9))) {
		t.Error("restriction excluding the difference should be equal")
	}
}
