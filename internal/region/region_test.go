package region

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func TestBlockPartitionBalancedDisjointComplete(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 99)))
	p := r.Block("PA", 7)
	if !p.Disjoint() || !p.Complete() {
		t.Fatal("block partition must be disjoint and complete")
	}
	var total int64
	var minV, maxV int64 = 1 << 62, -1
	p.Each(func(c geometry.Point, sub *Region) bool {
		v := sub.Volume()
		total += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		return true
	})
	if total != 100 {
		t.Errorf("total volume %d, want 100", total)
	}
	if maxV-minV > 1 {
		t.Errorf("imbalanced block partition: min %d max %d", minV, maxV)
	}
	// Subregions are contiguous, consecutive ranges.
	if p.Sub1(0).IndexSpace().Bounds() != geometry.R1(0, 14) {
		t.Errorf("first block = %v", p.Sub1(0).IndexSpace())
	}
}

func TestBlockOnSparseRegion(t *testing.T) {
	tr := NewTree()
	is := geometry.FromRects(1, []geometry.Rect{geometry.R1(0, 9), geometry.R1(100, 109)})
	r := tr.NewRegion("S", is)
	p := r.Block("PS", 4)
	if !p.Disjoint() || !p.Complete() {
		t.Fatal("block must be disjoint and complete on sparse regions")
	}
	var total int64
	p.Each(func(_ geometry.Point, sub *Region) bool { total += sub.Volume(); return true })
	if total != 20 {
		t.Errorf("total %d", total)
	}
	// Chunk spanning the gap: color 1 gets elements 5..9, color 2 gets 100..104.
	if !p.Sub1(1).IndexSpace().Contains(geometry.Pt1(9)) {
		t.Error("expected element 9 in block 1")
	}
}

func TestBlock2D(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("G", geometry.NewIndexSpace(geometry.R2(0, 0, 99, 99)))
	p := r.Block2D("PG", 4, 4)
	if !p.Disjoint() || !p.Complete() {
		t.Fatal("grid blocks must be disjoint and complete")
	}
	if len(p.Colors()) != 16 {
		t.Fatalf("colors = %d", len(p.Colors()))
	}
	var total int64
	p.Each(func(_ geometry.Point, sub *Region) bool { total += sub.Volume(); return true })
	if total != 100*100 {
		t.Errorf("total %d", total)
	}
	if got := p.Sub(geometry.Pt2(0, 0)).IndexSpace().Bounds(); got != geometry.R2(0, 0, 24, 24) {
		t.Errorf("tile(0,0) = %v", got)
	}
	if got := p.Sub(geometry.Pt2(3, 3)).IndexSpace().Bounds(); got != geometry.R2(75, 75, 99, 99) {
		t.Errorf("tile(3,3) = %v", got)
	}
}

func TestBlock3D(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("G", geometry.NewIndexSpace(geometry.R3(0, 0, 0, 7, 7, 7)))
	p := r.Block3D("PG", 2, 2, 2)
	if len(p.Colors()) != 8 || !p.Disjoint() || !p.Complete() {
		t.Fatal("bad 3-D block")
	}
	var total int64
	p.Each(func(_ geometry.Point, sub *Region) bool { total += sub.Volume(); return true })
	if total != 512 {
		t.Errorf("total %d", total)
	}
}

func TestByColor(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 19)))
	p := r.ByColor("even-odd", geometry.NewIndexSpace(geometry.R1(0, 1)), func(pt geometry.Point) geometry.Point {
		return geometry.Pt1(pt.X() % 2)
	})
	if !p.Disjoint() || !p.Complete() {
		t.Fatal("coloring must be disjoint and complete")
	}
	if p.Sub1(0).Volume() != 10 || p.Sub1(1).Volume() != 10 {
		t.Error("wrong bucket sizes")
	}
	if !p.Sub1(1).IndexSpace().Contains(geometry.Pt1(7)) {
		t.Error("7 should be odd")
	}
}

func TestBySubsetsDetectsAliasing(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 9)))
	cs := geometry.NewIndexSpace(geometry.R1(0, 1))

	dis := r.BySubsets("dis", cs, map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 4)),
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(5, 9)),
	})
	if !dis.Disjoint() || !dis.Complete() {
		t.Error("non-overlapping covering subsets should be disjoint+complete")
	}

	ali := r.BySubsets("ali", cs, map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 5)),
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(5, 9)),
	})
	if ali.Disjoint() {
		t.Error("overlapping subsets should be aliased")
	}

	partial := r.BySubsets("partial", cs, map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 3)),
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(5, 9)),
	})
	if !partial.Disjoint() || partial.Complete() {
		t.Error("partial cover should be disjoint but incomplete")
	}
}

func TestImagePartition(t *testing.T) {
	// The paper's QB = image(B, PB, h) with h(j) = j+1 mod N.
	tr := NewTree()
	n := int64(12)
	b := tr.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	pb := b.Block("PB", 3)
	qb := Image(b, pb, "QB", func(p geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((p.X() + 1) % n)}
	})
	if qb.Disjoint() {
		t.Error("image partitions are conservatively aliased")
	}
	// PB[0] = 0..3, so QB[0] = 1..4.
	if !qb.Sub1(0).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(1, 4))) {
		t.Errorf("QB[0] = %v", qb.Sub1(0).IndexSpace())
	}
	// PB[2] = 8..11, so QB[2] = {9,10,11,0}.
	want := geometry.FromRects(1, []geometry.Rect{geometry.R1(9, 11), geometry.R1(0, 0)})
	if !qb.Sub1(2).IndexSpace().Equal(want) {
		t.Errorf("QB[2] = %v", qb.Sub1(2).IndexSpace())
	}
}

func TestImageRects(t *testing.T) {
	tr := NewTree()
	g := tr.NewRegion("G", geometry.NewIndexSpace(geometry.R2(0, 0, 9, 9)))
	p := g.Block2D("P", 2, 1)
	// Halo of radius 1 around each tile.
	q := ImageRects(g, p, "Q", func(is geometry.IndexSpace) []geometry.Rect {
		b := is.Bounds()
		b.Lo = b.Lo.Add(geometry.Pt2(-1, -1))
		b.Hi = b.Hi.Add(geometry.Pt2(1, 1))
		return []geometry.Rect{b}
	})
	// Tile (0,0) is [0,0..4,9]; halo clamps to [0,0..5,9].
	if got := q.Sub(geometry.Pt2(0, 0)).IndexSpace().Bounds(); got != geometry.R2(0, 0, 5, 9) {
		t.Errorf("halo bounds = %v", got)
	}
}

func TestPreimagePartition(t *testing.T) {
	tr := NewTree()
	src := tr.NewRegion("S", geometry.NewIndexSpace(geometry.R1(0, 9)))
	dst := tr.NewRegion("D", geometry.NewIndexSpace(geometry.R1(0, 19)))
	ps := src.Block("PS", 2) // 0..4, 5..9
	// f(p) = p/2: D elements 0..9 map into PS[0], 10..19 into PS[1].
	pd := Preimage(dst, ps, "PD", func(p geometry.Point) geometry.Point {
		return geometry.Pt1(p.X() / 2)
	})
	if !pd.Disjoint() {
		t.Error("preimage of a disjoint partition under a function is disjoint")
	}
	if !pd.Sub1(0).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(0, 9))) {
		t.Errorf("PD[0] = %v", pd.Sub1(0).IndexSpace())
	}
	if !pd.Sub1(1).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(10, 19))) {
		t.Errorf("PD[1] = %v", pd.Sub1(1).IndexSpace())
	}
}

// Property: image/preimage adjunction — p lands in Preimage[c] exactly when
// f(p) is in src[c].
func TestPreimageAdjunctionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		tr := NewTree()
		n := int64(rng.Intn(30) + 10)
		src := tr.NewRegion("S", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		dst := tr.NewRegion("D", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		ps := src.Block("PS", int64(rng.Intn(4)+1))
		perm := rng.Perm(int(n))
		f := func(p geometry.Point) geometry.Point { return geometry.Pt1(int64(perm[p.X()])) }
		pd := Preimage(dst, ps, "PD", f)
		pd.Each(func(c geometry.Point, sub *Region) bool {
			srcSub := ps.Sub(c).IndexSpace()
			dst.IndexSpace().Each(func(p geometry.Point) bool {
				inPre := sub.IndexSpace().Contains(p)
				inSrc := srcSub.Contains(f(p))
				if inPre != inSrc {
					t.Fatalf("iter %d: adjunction violated at %v (pre=%v src=%v)", iter, p, inPre, inSrc)
				}
				return true
			})
			return true
		})
	}
}

func TestPartitionSetOps(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 9)))
	cs := geometry.NewIndexSpace(geometry.R1(0, 1))
	a := r.BySubsets("a", cs, map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 5)),
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(4, 9)),
	})
	b := r.BySubsets("b", cs, map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(3, 7)),
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(0, 2)),
	})
	u := PUnion("u", a, b)
	if u.Sub1(0).Volume() != 8 { // 0..7
		t.Errorf("union[0] = %v", u.Sub1(0).IndexSpace())
	}
	i := PIntersection("i", a, b)
	if !i.Sub1(0).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(3, 5))) {
		t.Errorf("intersection[0] = %v", i.Sub1(0).IndexSpace())
	}
	d := PDifference("d", a, b)
	if !d.Sub1(0).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(0, 2))) {
		t.Errorf("difference[0] = %v", d.Sub1(0).IndexSpace())
	}
	if !d.Sub1(1).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(4, 9))) {
		t.Errorf("difference[1] = %v", d.Sub1(1).IndexSpace())
	}
}

func TestRestrict(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, 9)))
	top := r.BySubsets("pvg", geometry.NewIndexSpace(geometry.R1(0, 1)), map[geometry.Point]geometry.IndexSpace{
		geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(0, 6)), // private
		geometry.Pt1(1): geometry.NewIndexSpace(geometry.R1(7, 9)), // ghost
	})
	pb := r.Block("PB", 2)
	priv := top.Sub1(0)
	restricted := Restrict(priv, pb, "PB_priv")
	if !restricted.Disjoint() {
		t.Error("restriction of a disjoint partition is disjoint")
	}
	if !restricted.Sub1(0).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(0, 4))) {
		t.Errorf("restricted[0] = %v", restricted.Sub1(0).IndexSpace())
	}
	if !restricted.Sub1(1).IndexSpace().Equal(geometry.NewIndexSpace(geometry.R1(5, 6))) {
		t.Errorf("restricted[1] = %v", restricted.Sub1(1).IndexSpace())
	}
	if restricted.Parent() != priv {
		t.Error("restricted partition should hang under the subregion")
	}
}
