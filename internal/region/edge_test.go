package region

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestPartitionSubUnknownColorPanics(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, 9)))
	p := r.Block("P", 2)
	expectPanic(t, "unknown color", func() { p.Sub1(7) })
}

func TestBlock2DRequiresDense2D(t *testing.T) {
	tr := NewTree()
	r1 := tr.NewRegion("R1", geometry.NewIndexSpace(geometry.R1(0, 9)))
	expectPanic(t, "1-D region", func() { r1.Block2D("P", 2, 2) })
	sparse := tr.NewRegion("S", geometry.FromRects(2, []geometry.Rect{
		geometry.R2(0, 0, 1, 1), geometry.R2(5, 5, 6, 6),
	}))
	expectPanic(t, "sparse region", func() { sparse.Block2D("P", 2, 2) })
}

func TestSetOpsRequireSameParent(t *testing.T) {
	tr := NewTree()
	a := tr.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, 9)))
	b := tr.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, 9)))
	pa := a.Block("PA", 2)
	pb := b.Block("PB", 2)
	expectPanic(t, "different parents", func() { PUnion("u", pa, pb) })
	pa2 := a.Block("PA2", 3)
	expectPanic(t, "different color spaces", func() { PIntersection("i", pa, pa2) })
}

func TestBySubsetsRejectsEscapingSubset(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, 9)))
	expectPanic(t, "subset outside parent", func() {
		r.BySubsets("bad", geometry.NewIndexSpace(geometry.R1(0, 0)),
			map[geometry.Point]geometry.IndexSpace{
				geometry.Pt1(0): geometry.NewIndexSpace(geometry.R1(5, 15)),
			})
	})
}

func TestByColorRejectsColorOutsideSpace(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, 9)))
	expectPanic(t, "color outside space", func() {
		r.ByColor("bad", geometry.NewIndexSpace(geometry.R1(0, 1)), func(p geometry.Point) geometry.Point {
			return geometry.Pt1(p.X()) // colors up to 9, space only has 0..1
		})
	})
}

func TestImageClipsToDestination(t *testing.T) {
	tr := NewTree()
	n := int64(10)
	r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p := r.Block("P", 2)
	// The image maps beyond the region; results must be clipped to R.
	img := Image(r, p, "IMG", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1(pt.X() + 7)}
	})
	img.Each(func(_ geometry.Point, sub *Region) bool {
		if !r.IndexSpace().ContainsAll(sub.IndexSpace()) {
			t.Errorf("image subregion %v escapes the destination", sub.IndexSpace())
		}
		return true
	})
	// P[1] = 5..9 maps to 12..16, entirely outside: empty.
	if img.Sub1(1).Volume() != 0 {
		t.Errorf("out-of-range image should be empty, got %v", img.Sub1(1).IndexSpace())
	}
}

func TestStringsAndNavigation(t *testing.T) {
	tr := NewTree()
	r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, 9)))
	p := r.Block("P", 2)
	sub := p.Sub1(0)
	if sub.Root() != r {
		t.Error("Root should walk to the tree root")
	}
	if sub.Parent() != p || sub.Color() != geometry.Pt1(0) {
		t.Error("parent/color navigation broken")
	}
	if !strings.Contains(p.String(), "disjoint") {
		t.Errorf("partition string: %s", p.String())
	}
	if !strings.Contains(sub.String(), "P[<0>]") {
		t.Errorf("subregion string: %s", sub.String())
	}
	if len(tr.Regions()) != 3 || len(tr.Partitions()) != 1 {
		t.Errorf("tree sizes: %d regions, %d partitions", len(tr.Regions()), len(tr.Partitions()))
	}
}

func TestReductionOpStrings(t *testing.T) {
	cases := map[ReductionOp]string{
		ReduceNone: "none", ReduceSum: "+", ReduceMin: "min", ReduceMax: "max",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	expectPanic(t, "identity of none", func() { ReduceNone.Identity() })
	expectPanic(t, "fold of none", func() { ReduceNone.Fold(0, 0) })
}

// Property: Fold is associative-compatible with Identity for every operator.
func TestFoldIdentityProperty(t *testing.T) {
	for _, op := range []ReductionOp{ReduceSum, ReduceMin, ReduceMax} {
		f := func(v float64) bool {
			return op.Fold(op.Identity(), v) == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

// Property: block partitions of random sizes are always balanced, disjoint
// and complete.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(rawN uint16, rawK uint8) bool {
		n := int64(rawN%500) + 1
		k := int64(rawK%16) + 1
		if k > n {
			k = n
		}
		tr := NewTree()
		r := tr.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		p := r.Block("P", k)
		if !p.Disjoint() || !p.Complete() {
			return false
		}
		var total, minV, maxV int64 = 0, 1 << 62, -1
		p.Each(func(_ geometry.Point, sub *Region) bool {
			v := sub.Volume()
			total += v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			return true
		})
		return total == n && maxV-minV <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
