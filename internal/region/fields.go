package region

import (
	"fmt"
	"math"
)

// FieldID identifies a field within a field space.
type FieldID int32

// FieldSpace names the set of fields stored for each element of a region.
// All fields hold float64 values; vector quantities use one field per
// component, and mesh topology lives in application data structures (the
// compiler analysis never inspects element values, only privileges).
type FieldSpace struct {
	names []string
}

// NewFieldSpace creates a field space with the given field names.
func NewFieldSpace(names ...string) *FieldSpace {
	fs := &FieldSpace{names: append([]string(nil), names...)}
	return fs
}

// Add appends a field and returns its ID.
func (fs *FieldSpace) Add(name string) FieldID {
	fs.names = append(fs.names, name)
	return FieldID(len(fs.names) - 1)
}

// NumFields returns the number of fields.
func (fs *FieldSpace) NumFields() int { return len(fs.names) }

// Name returns the name of field f.
func (fs *FieldSpace) Name(f FieldID) string { return fs.names[f] }

// Field returns the ID of the named field, panicking if absent.
func (fs *FieldSpace) Field(name string) FieldID {
	for i, n := range fs.names {
		if n == name {
			return FieldID(i)
		}
	}
	panic(fmt.Sprintf("region: no field named %q", name))
}

// Fields returns all field IDs in declaration order.
func (fs *FieldSpace) Fields() []FieldID {
	out := make([]FieldID, len(fs.names))
	for i := range out {
		out[i] = FieldID(i)
	}
	return out
}

// ReductionOp identifies an associative and commutative reduction operator,
// the only loop-carried dependencies control replication admits (§2.2,
// §4.3, §4.4).
type ReductionOp int8

// The supported reduction operators.
const (
	ReduceNone ReductionOp = iota
	ReduceSum
	ReduceMin
	ReduceMax
)

// Identity returns the operator's identity element (the value reduction
// instances are initialized to, §4.3).
func (op ReductionOp) Identity() float64 {
	switch op {
	case ReduceSum:
		return 0
	case ReduceMin:
		return inf
	case ReduceMax:
		return -inf
	default:
		panic("region: Identity on ReduceNone")
	}
}

// Fold combines an accumulated value with a new contribution.
func (op ReductionOp) Fold(acc, v float64) float64 {
	switch op {
	case ReduceSum:
		return acc + v
	case ReduceMin:
		if v < acc {
			return v
		}
		return acc
	case ReduceMax:
		if v > acc {
			return v
		}
		return acc
	default:
		panic("region: Fold on ReduceNone")
	}
}

// String names the operator.
func (op ReductionOp) String() string {
	switch op {
	case ReduceNone:
		return "none"
	case ReduceSum:
		return "+"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	default:
		return fmt.Sprintf("ReductionOp(%d)", int8(op))
	}
}

var inf = math.Inf(1)
