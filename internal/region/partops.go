package region

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
)

// This file implements the partitioning operators of Regent's partitioning
// sub-language (paper §2.1 and [44]): equal/block partitions, grid blocks,
// coloring functions, images, preimages, the set operators on partitions,
// and restriction (used to build the hierarchical private/ghost trees of
// §4.5). Each operator records the disjointness and completeness of the
// partition it creates; those two static bits are all the compiler analysis
// ever consults.

// colors1D returns the 1-D color space 0..n-1.
func colors1D(n int64) geometry.IndexSpace {
	return geometry.NewIndexSpace(geometry.R1(0, n-1))
}

// Block partitions the region into n roughly equal-sized subregions of
// consecutive elements (in span/row-major order), colored 0..n-1. The
// result is disjoint and complete — the direct analogue of Regent's
// block/equal partition (paper Figure 2, lines 20-21).
func (r *Region) Block(name string, n int64) *Partition {
	total := r.ispace.Volume()
	subs := make(map[geometry.Point]geometry.IndexSpace, n)
	// Walk spans in order, assigning each color a contiguous chunk of
	// ceil/floor-balanced size.
	spans := append([]geometry.Rect(nil), r.ispace.Spans()...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo.Less(spans[j].Lo) })
	si := 0
	var spanUsed int64 // points consumed from spans[si]
	for c := int64(0); c < n; c++ {
		// Chunk size balanced to within one element.
		chunk := total/n + b2i(c < total%n)
		var rects []geometry.Rect
		for chunk > 0 && si < len(spans) {
			sp := spans[si]
			remain := sp.Volume() - spanUsed
			take := min64(chunk, remain)
			rects = append(rects, sliceSpan(sp, spanUsed, take))
			spanUsed += take
			chunk -= take
			if spanUsed == sp.Volume() {
				si++
				spanUsed = 0
			}
		}
		subs[geometry.Pt1(c)] = geometry.FromRects(r.ispace.Dim(), rects)
	}
	return r.newPartition(name, colors1D(n), subs, true, true)
}

// b2i converts a bool to 0/1 for size balancing.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sliceSpan returns the sub-rectangle of sp covering row-major offsets
// [from, from+count). It requires the slice to be expressible as rectangles;
// for 1-D spans this is always a single interval, and multi-dimensional
// spans are sliced along the first axis, splitting partial rows off as
// separate rectangles.
func sliceSpan(sp geometry.Rect, from, count int64) geometry.Rect {
	if sp.Dim() == 1 {
		return geometry.R1(sp.Lo.X()+from, sp.Lo.X()+from+count-1)
	}
	// Multi-dimensional: require whole-row slices for simplicity; the Block
	// operator only produces these when the caller's span layout permits.
	rowVol := int64(1)
	for i := 1; i < int(sp.Dim()); i++ {
		rowVol *= sp.Hi.C[i] - sp.Lo.C[i] + 1
	}
	if from%rowVol != 0 || count%rowVol != 0 {
		panic("region: Block on a multi-dimensional region requires row-aligned chunk sizes; use Block2D/Block3D for grids")
	}
	out := sp
	out.Lo.C[0] = sp.Lo.C[0] + from/rowVol
	out.Hi.C[0] = out.Lo.C[0] + count/rowVol - 1
	return out
}

// Block2D partitions a dense 2-D region into an nx-by-ny grid of tiles,
// colored by <tx,ty>. Disjoint and complete.
func (r *Region) Block2D(name string, nx, ny int64) *Partition {
	if !r.ispace.Dense() || r.ispace.Dim() != 2 {
		panic("region: Block2D requires a dense 2-D region")
	}
	b := r.ispace.Bounds()
	colorRect := geometry.R2(0, 0, nx-1, ny-1)
	subs := make(map[geometry.Point]geometry.IndexSpace, nx*ny)
	colorRect.Each(func(c geometry.Point) bool {
		subs[c] = geometry.NewIndexSpace(gridTile2D(b, c.X(), c.Y(), nx, ny))
		return true
	})
	return r.newPartition(name, geometry.NewIndexSpace(colorRect), subs, true, true)
}

// gridTile2D returns tile (tx,ty) of an nx-by-ny blocking of b.
func gridTile2D(b geometry.Rect, tx, ty, nx, ny int64) geometry.Rect {
	w := b.Hi.X() - b.Lo.X() + 1
	h := b.Hi.Y() - b.Lo.Y() + 1
	x0 := b.Lo.X() + tx*w/nx
	x1 := b.Lo.X() + (tx+1)*w/nx - 1
	y0 := b.Lo.Y() + ty*h/ny
	y1 := b.Lo.Y() + (ty+1)*h/ny - 1
	return geometry.R2(x0, y0, x1, y1)
}

// Block3D partitions a dense 3-D region into an nx-by-ny-by-nz grid of
// tiles colored by <tx,ty,tz>. Disjoint and complete.
func (r *Region) Block3D(name string, nx, ny, nz int64) *Partition {
	if !r.ispace.Dense() || r.ispace.Dim() != 3 {
		panic("region: Block3D requires a dense 3-D region")
	}
	b := r.ispace.Bounds()
	colorRect := geometry.R3(0, 0, 0, nx-1, ny-1, nz-1)
	subs := make(map[geometry.Point]geometry.IndexSpace, nx*ny*nz)
	ext := func(lo, hi, t, n int64) (int64, int64) {
		w := hi - lo + 1
		return lo + t*w/n, lo + (t+1)*w/n - 1
	}
	colorRect.Each(func(c geometry.Point) bool {
		x0, x1 := ext(b.Lo.X(), b.Hi.X(), c.X(), nx)
		y0, y1 := ext(b.Lo.Y(), b.Hi.Y(), c.Y(), ny)
		z0, z1 := ext(b.Lo.Z(), b.Hi.Z(), c.Z(), nz)
		subs[c] = geometry.NewIndexSpace(geometry.R3(x0, y0, z0, x1, y1, z1))
		return true
	})
	return r.newPartition(name, geometry.NewIndexSpace(colorRect), subs, true, true)
}

// ByColor partitions the region by a coloring function mapping each element
// to a color in colorSpace. Disjoint by construction (each element has one
// color) and complete (every element is colored).
func (r *Region) ByColor(name string, colorSpace geometry.IndexSpace, color func(geometry.Point) geometry.Point) *Partition {
	buckets := make(map[geometry.Point][]geometry.Point)
	r.ispace.Each(func(p geometry.Point) bool {
		buckets[color(p)] = append(buckets[color(p)], p)
		return true
	})
	subs := make(map[geometry.Point]geometry.IndexSpace, len(buckets))
	for c, pts := range buckets {
		if !colorSpace.Contains(c) {
			panic(fmt.Sprintf("region: ByColor color %v outside color space", c))
		}
		subs[c] = geometry.FromPoints(r.ispace.Dim(), pts)
	}
	return r.newPartition(name, colorSpace, subs, true, true)
}

// BySubsets creates a partition from explicitly enumerated subsets, the
// escape hatch for application-specific partitioning algorithms (the paper
// stresses CR succeeds for arbitrary programmer partitions). Disjointness is
// established dynamically by pairwise overlap tests; completeness by
// comparing the union's volume with the parent's.
func (r *Region) BySubsets(name string, colorSpace geometry.IndexSpace, subsets map[geometry.Point]geometry.IndexSpace) *Partition {
	disjoint := true
	var totalVol int64
	all := make([]geometry.IndexSpace, 0, len(subsets))
	colorSpace.Each(func(c geometry.Point) bool {
		is, ok := subsets[c]
		if !ok {
			return true
		}
		if !r.ispace.ContainsAll(is) {
			panic(fmt.Sprintf("region: BySubsets subset %v not contained in parent %s", c, r.name))
		}
		for _, other := range all {
			if disjoint && is.Overlaps(other) {
				disjoint = false
			}
		}
		all = append(all, is)
		totalVol += is.Volume()
		return true
	})
	complete := disjoint && totalVol == r.ispace.Volume()
	return r.newPartition(name, colorSpace, subsets, disjoint, complete)
}

// BySubsetsUnchecked creates a partition from explicitly enumerated subsets
// with caller-asserted disjointness and completeness, skipping the
// quadratic pairwise verification and the containment checks. It exists
// for partitions that are disjoint by construction at scales where the
// dynamic verification would dominate setup (e.g. the per-piece
// private/shared node sets of a 1024-piece unstructured graph). An
// incorrect assertion makes the compiler's aliasing analysis unsound, so
// application tests must validate the construction at small scale (e.g.
// through the checked BySubsets).
func (r *Region) BySubsetsUnchecked(name string, colorSpace geometry.IndexSpace, subsets map[geometry.Point]geometry.IndexSpace, disjoint, complete bool) *Partition {
	return r.newPartition(name, colorSpace, subsets, disjoint, complete)
}

// Image creates a partition of dst where subregion i is the set of points
// f(p) for p in src[i], intersected with dst (paper Figure 2, line 22:
// QB = image(B, PB, h)). f may map a point to several points (a halo
// pattern, a wire's endpoints). The result is conservatively aliased and
// not complete, exactly as Regent assumes for an unconstrained h.
func Image(dst *Region, src *Partition, name string, f func(geometry.Point) []geometry.Point) *Partition {
	subs := make(map[geometry.Point]geometry.IndexSpace, len(src.colors))
	src.Each(func(c geometry.Point, sub *Region) bool {
		var pts []geometry.Point
		sub.ispace.Each(func(p geometry.Point) bool {
			pts = append(pts, f(p)...)
			return true
		})
		subs[c] = geometry.FromPoints(dst.ispace.Dim(), pts).Intersect(dst.ispace)
		return true
	})
	return dst.newPartition(name, src.colorSpace, subs, false, false)
}

// ImageRects is Image for the common structured case where the image of a
// whole subregion is directly expressible as rectangles (e.g. a stencil
// halo): g maps each source subregion's index space to the rectangles of
// its image. It avoids per-point evaluation.
func ImageRects(dst *Region, src *Partition, name string, g func(geometry.IndexSpace) []geometry.Rect) *Partition {
	subs := make(map[geometry.Point]geometry.IndexSpace, len(src.colors))
	src.Each(func(c geometry.Point, sub *Region) bool {
		subs[c] = geometry.FromRects(dst.ispace.Dim(), g(sub.ispace)).Intersect(dst.ispace)
		return true
	})
	return dst.newPartition(name, src.colorSpace, subs, false, false)
}

// Preimage creates a partition of dst where subregion i holds the points p
// of dst with f(p) in src[i]. When src is disjoint and f is single-valued,
// the preimage is disjoint.
func Preimage(dst *Region, src *Partition, name string, f func(geometry.Point) geometry.Point) *Partition {
	buckets := make(map[geometry.Point][]geometry.Point)
	dst.ispace.Each(func(p geometry.Point) bool {
		img := f(p)
		src.Each(func(c geometry.Point, sub *Region) bool {
			if sub.ispace.Contains(img) {
				buckets[c] = append(buckets[c], p)
			}
			return true
		})
		return true
	})
	subs := make(map[geometry.Point]geometry.IndexSpace, len(buckets))
	for c, pts := range buckets {
		subs[c] = geometry.FromPoints(dst.ispace.Dim(), pts)
	}
	return dst.newPartition(name, src.colorSpace, subs, src.disjoint, false)
}

// PUnion creates the color-wise union of two partitions of the same region.
// Conservatively aliased.
func PUnion(name string, a, b *Partition) *Partition {
	mustSameParent(a, b)
	subs := make(map[geometry.Point]geometry.IndexSpace, len(a.colors))
	a.Each(func(c geometry.Point, sub *Region) bool {
		subs[c] = sub.ispace.Union(b.Sub(c).ispace)
		return true
	})
	return a.parent.newPartition(name, a.colorSpace, subs, false, a.complete || b.complete)
}

// PIntersection creates the color-wise intersection of two partitions of
// the same region. Disjoint if either input is disjoint.
func PIntersection(name string, a, b *Partition) *Partition {
	mustSameParent(a, b)
	subs := make(map[geometry.Point]geometry.IndexSpace, len(a.colors))
	a.Each(func(c geometry.Point, sub *Region) bool {
		subs[c] = sub.ispace.Intersect(b.Sub(c).ispace)
		return true
	})
	return a.parent.newPartition(name, a.colorSpace, subs, a.disjoint || b.disjoint, false)
}

// PDifference creates the color-wise difference of two partitions of the
// same region. Disjoint if a is disjoint.
func PDifference(name string, a, b *Partition) *Partition {
	mustSameParent(a, b)
	subs := make(map[geometry.Point]geometry.IndexSpace, len(a.colors))
	a.Each(func(c geometry.Point, sub *Region) bool {
		subs[c] = sub.ispace.Subtract(b.Sub(c).ispace)
		return true
	})
	return a.parent.newPartition(name, a.colorSpace, subs, a.disjoint, false)
}

// Restrict creates a partition of sub whose subregions are p's subregions
// intersected with sub. This is the operator behind the hierarchical
// private/ghost region trees of §4.5: e.g. restricting the original block
// partition to the all_private subregion. Disjointness is inherited from p.
func Restrict(sub *Region, p *Partition, name string) *Partition {
	subs := make(map[geometry.Point]geometry.IndexSpace, len(p.colors))
	p.Each(func(c geometry.Point, child *Region) bool {
		subs[c] = child.ispace.Intersect(sub.ispace)
		return true
	})
	return sub.newPartition(name, p.colorSpace, subs, p.disjoint, false)
}

func mustSameParent(a, b *Partition) {
	if a.parent != b.parent {
		panic("region: partition set operators require a common parent region")
	}
	if !a.colorSpace.Equal(b.colorSpace) {
		panic("region: partition set operators require matching color spaces")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
