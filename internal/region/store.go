package region

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
)

// Layout maps the points of an index space to dense storage slots. Spans
// are sorted by lexicographic lower bound and laid out consecutively, each
// span row-major internally, so the slot order is deterministic.
type Layout struct {
	ispace geometry.IndexSpace
	spans  []geometry.Rect
	bases  []int64 // slot of spans[i].Lo
	total  int64
}

// NewLayout builds a layout for the given index space.
func NewLayout(is geometry.IndexSpace) *Layout {
	spans := append([]geometry.Rect(nil), is.Spans()...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo.Less(spans[j].Lo) })
	l := &Layout{ispace: is, spans: spans, bases: make([]int64, len(spans))}
	for i, sp := range spans {
		l.bases[i] = l.total
		l.total += sp.Volume()
	}
	return l
}

// Size returns the number of slots.
func (l *Layout) Size() int64 { return l.total }

// IndexSpace returns the index space the layout covers.
func (l *Layout) IndexSpace() geometry.IndexSpace { return l.ispace }

// Slot returns the storage slot for point p, panicking if p is outside the
// layout's index space. It is the hot path of every per-point accessor, so
// containment and row-major offset are computed in one fused pass instead
// of Contains followed by Index, and dense single-span layouts (the common
// case) skip the span search entirely.
func (l *Layout) Slot(p geometry.Point) int64 {
	spans := l.spans
	if len(spans) == 1 {
		sp := &spans[0]
		if idx, ok := spanOffset(sp, p); ok {
			return idx
		}
		panic(fmt.Sprintf("region: point %v not in layout %v", p, l.ispace))
	}
	// Binary search over span lower bounds, then scan back for containment;
	// spans are disjoint so at most a couple of candidates precede p.
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.Less(spans[mid].Lo) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for j := lo - 1; j >= 0; j-- {
		if idx, ok := spanOffset(&spans[j], p); ok {
			return l.bases[j] + idx
		}
		// A span whose Lo is on a strictly earlier row can still contain p
		// in multi-dimensional layouts, so keep scanning; in practice span
		// counts are small.
	}
	panic(fmt.Sprintf("region: point %v not in layout %v", p, l.ispace))
}

// spanOffset reports whether p lies in sp and, if so, its row-major offset
// within the span — Rect.Contains and Rect.Index fused into one pass.
func spanOffset(sp *geometry.Rect, p geometry.Point) (int64, bool) {
	if p.Dim != sp.Lo.Dim {
		panic(fmt.Sprintf("geometry: dimension mismatch %d vs %d", p.Dim, sp.Lo.Dim))
	}
	idx := int64(0)
	for i := 0; i < int(p.Dim); i++ {
		c, clo, chi := p.C[i], sp.Lo.C[i], sp.Hi.C[i]
		if c < clo || c > chi {
			return 0, false
		}
		idx = idx*(chi-clo+1) + (c - clo)
	}
	return idx, true
}

// Each calls fn with each (point, slot) pair in slot order.
func (l *Layout) Each(fn func(geometry.Point, int64) bool) {
	for i, sp := range l.spans {
		base := l.bases[i]
		off := int64(0)
		stop := false
		sp.Each(func(p geometry.Point) bool {
			if !fn(p, base+off) {
				stop = true
				return false
			}
			off++
			return true
		})
		if stop {
			return
		}
	}
}

// Store is a physical instance: field storage for one region's index space.
// In the distributed-memory execution every region and subregion has its
// own Store (paper §3: "the first stage of control replication is to
// rewrite the program so that every region and subregion has its own
// storage").
type Store struct {
	layout *Layout
	fs     *FieldSpace
	data   [][]float64 // indexed by FieldID, then slot
}

// NewStore allocates zeroed storage for all fields of fs over is.
func NewStore(is geometry.IndexSpace, fs *FieldSpace) *Store {
	l := NewLayout(is)
	data := make([][]float64, fs.NumFields())
	for i := range data {
		data[i] = make([]float64, l.Size())
	}
	return &Store{layout: l, fs: fs, data: data}
}

// Clone returns a deep copy of the store: same layout and field space
// (both immutable, so shared), private copies of all field data. It is the
// building block of the SPMD executor's checkpoints.
func (s *Store) Clone() *Store {
	data := make([][]float64, len(s.data))
	for i, d := range s.data {
		data[i] = append(make([]float64, 0, len(d)), d...)
	}
	return &Store{layout: s.layout, fs: s.fs, data: data}
}

// Layout returns the store's layout.
func (s *Store) Layout() *Layout { return s.layout }

// FieldSpace returns the store's field space.
func (s *Store) FieldSpace() *FieldSpace { return s.fs }

// IndexSpace returns the index space the store covers.
func (s *Store) IndexSpace() geometry.IndexSpace { return s.layout.ispace }

// Get returns field f at point p.
func (s *Store) Get(f FieldID, p geometry.Point) float64 {
	return s.data[f][s.layout.Slot(p)]
}

// Set assigns field f at point p.
func (s *Store) Set(f FieldID, p geometry.Point, v float64) {
	s.data[f][s.layout.Slot(p)] = v
}

// Reduce folds v into field f at point p with the given operator.
func (s *Store) Reduce(f FieldID, op ReductionOp, p geometry.Point, v float64) {
	slot := s.layout.Slot(p)
	s.data[f][slot] = op.Fold(s.data[f][slot], v)
}

// Raw returns the backing slice for field f (slot-indexed); kernels that
// iterate a dense region use it with Layout.Each for speed.
func (s *Store) Raw(f FieldID) []float64 { return s.data[f] }

// Fill sets field f to v at every point.
func (s *Store) Fill(f FieldID, v float64) {
	d := s.data[f]
	for i := range d {
		d[i] = v
	}
}

// CopyFieldFrom copies field f values from src at every point of the given
// index space, which must be contained in both stores. This is the explicit
// region-to-region assignment dst ← src of §3.1, restricted to an
// intersection. Points are visited in dst slot order, so the operation is
// deterministic.
func (s *Store) CopyFieldFrom(src *Store, f FieldID, over geometry.IndexSpace) {
	over.Each(func(p geometry.Point) bool {
		s.data[f][s.layout.Slot(p)] = src.data[f][src.layout.Slot(p)]
		return true
	})
}

// ReduceFieldFrom folds src's field values into s with op at every point of
// over — the "reduction copy" of §4.3 that applies a reduction instance's
// partial results to a destination region.
func (s *Store) ReduceFieldFrom(src *Store, f FieldID, op ReductionOp, over geometry.IndexSpace) {
	over.Each(func(p geometry.Point) bool {
		slot := s.layout.Slot(p)
		s.data[f][slot] = op.Fold(s.data[f][slot], src.data[f][src.layout.Slot(p)])
		return true
	})
}

// EqualOn reports whether two stores agree on field f at every point of
// over; it is the comparison the equivalence tests use.
func (s *Store) EqualOn(other *Store, f FieldID, over geometry.IndexSpace) bool {
	equal := true
	over.Each(func(p geometry.Point) bool {
		if s.Get(f, p) != other.Get(f, p) {
			equal = false
			return false
		}
		return true
	})
	return equal
}
