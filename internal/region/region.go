// Package region implements the logical-region data model of Legion/Regent:
// regions (named collections of elements identified by an index space),
// partitions of regions into subregions, region trees recording the
// region/partition hierarchy, the disjointness analysis over those trees
// (paper §2.3), the partitioning operators of Regent's partitioning
// sub-language (block, image, preimage, and the set operators), and typed
// field storage for physical instances.
package region

import (
	"fmt"
	"sync"

	"repro/internal/geometry"
)

// RegionID uniquely identifies a region within a Tree.
type RegionID int32

// PartitionID uniquely identifies a partition within a Tree.
type PartitionID int32

// Tree is a forest of region trees. Regions alternate with partitions:
// a region may have any number of partitions; a partition has one subregion
// per color. The tree is the structure against which all aliasing questions
// are answered.
type Tree struct {
	regions    []*Region
	partitions []*Partition
}

// NewTree returns an empty region forest.
func NewTree() *Tree { return &Tree{} }

// Region is a logical region: a named set of elements identified by the
// points of an index space. A region created by NewRegion is a root; a
// region created by a partitioning operator is a subregion of its parent.
type Region struct {
	id     RegionID
	tree   *Tree
	name   string
	ispace geometry.IndexSpace

	parent *Partition     // nil for roots
	color  geometry.Point // color within parent (zero for roots)

	partitions []*Partition
}

// Partition is an object naming a set of subregions of a common parent,
// indexed by the points of a color space. A partition is disjoint if its
// subregions are guaranteed pairwise non-overlapping, and complete if their
// union covers the parent; both are statically recorded properties
// established by the operator that created the partition.
type Partition struct {
	id         PartitionID
	tree       *Tree
	name       string
	parent     *Region
	colorSpace geometry.IndexSpace
	children   map[geometry.Point]*Region
	colors     []geometry.Point // deterministic iteration order
	disjoint   bool
	complete   bool

	unionOnce sync.Once
	unionMemo geometry.IndexSpace
}

// NewRegion creates a root region over the given index space.
func (t *Tree) NewRegion(name string, is geometry.IndexSpace) *Region {
	r := &Region{
		id:     RegionID(len(t.regions)),
		tree:   t,
		name:   name,
		ispace: is,
	}
	t.regions = append(t.regions, r)
	return r
}

// Regions returns all regions in creation order.
func (t *Tree) Regions() []*Region { return t.regions }

// Partitions returns all partitions in creation order.
func (t *Tree) Partitions() []*Partition { return t.partitions }

// ID returns the region's identifier.
func (r *Region) ID() RegionID { return r.id }

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// IndexSpace returns the region's index space.
func (r *Region) IndexSpace() geometry.IndexSpace { return r.ispace }

// Volume returns the number of elements in the region.
func (r *Region) Volume() int64 { return r.ispace.Volume() }

// Parent returns the partition this region is a subregion of, or nil for a
// root region.
func (r *Region) Parent() *Partition { return r.parent }

// Color returns this region's color within its parent partition.
func (r *Region) Color() geometry.Point { return r.color }

// Partitions returns the partitions of this region in creation order.
func (r *Region) Partitions() []*Partition { return r.partitions }

// Root returns the root region of r's tree.
func (r *Region) Root() *Region {
	for r.parent != nil {
		r = r.parent.parent
	}
	return r
}

// String formats the region for diagnostics.
func (r *Region) String() string { return fmt.Sprintf("region(%s)", r.name) }

// newPartition is the common constructor behind the partition operators.
func (r *Region) newPartition(name string, colorSpace geometry.IndexSpace, subspaces map[geometry.Point]geometry.IndexSpace, disjoint, complete bool) *Partition {
	p := &Partition{
		id:         PartitionID(len(r.tree.partitions)),
		tree:       r.tree,
		name:       name,
		parent:     r,
		colorSpace: colorSpace,
		children:   make(map[geometry.Point]*Region, len(subspaces)),
		disjoint:   disjoint,
		complete:   complete,
	}
	colorSpace.Each(func(c geometry.Point) bool {
		is, ok := subspaces[c]
		if !ok {
			is = geometry.EmptyIndexSpace(r.ispace.Dim())
		}
		sub := &Region{
			id:     RegionID(len(r.tree.regions)),
			tree:   r.tree,
			name:   fmt.Sprintf("%s[%v]", name, c),
			ispace: is,
			parent: p,
			color:  c,
		}
		r.tree.regions = append(r.tree.regions, sub)
		p.children[c] = sub
		p.colors = append(p.colors, c)
		return true
	})
	r.tree.partitions = append(r.tree.partitions, p)
	r.partitions = append(r.partitions, p)
	return p
}

// ID returns the partition's identifier.
func (p *Partition) ID() PartitionID { return p.id }

// Name returns the partition's diagnostic name.
func (p *Partition) Name() string { return p.name }

// Parent returns the region this partition divides.
func (p *Partition) Parent() *Region { return p.parent }

// ColorSpace returns the partition's color space.
func (p *Partition) ColorSpace() geometry.IndexSpace { return p.colorSpace }

// Colors returns the partition's colors in deterministic order.
func (p *Partition) Colors() []geometry.Point { return p.colors }

// Disjoint reports whether the subregions are statically known to be
// pairwise non-overlapping.
func (p *Partition) Disjoint() bool { return p.disjoint }

// Complete reports whether the subregions are statically known to cover the
// parent region.
func (p *Partition) Complete() bool { return p.complete }

// Sub returns the subregion with the given color. It panics if the color is
// not in the color space.
func (p *Partition) Sub(c geometry.Point) *Region {
	r, ok := p.children[c]
	if !ok {
		panic(fmt.Sprintf("region: partition %s has no color %v", p.name, c))
	}
	return r
}

// Sub1 returns the subregion with 1-D color i.
func (p *Partition) Sub1(i int64) *Region { return p.Sub(geometry.Pt1(i)) }

// Each calls fn for each (color, subregion) pair in deterministic order.
func (p *Partition) Each(fn func(geometry.Point, *Region) bool) {
	for _, c := range p.colors {
		if !fn(c, p.children[c]) {
			return
		}
	}
}

// Union returns the union of the partition's subregion index spaces. It
// exploits the partition's static properties: complete partitions cover the
// parent exactly, and disjoint partitions' spans concatenate with no
// quadratic de-overlapping pass — only aliased incomplete partitions pay
// for a real union. Shared by the CR compiler's finalization planning and
// the implicit runtime's domination analysis, both of which re-ask this
// question for partitions with thousands of subregions.
func (p *Partition) Union() geometry.IndexSpace {
	if p.complete {
		return p.parent.IndexSpace()
	}
	// Subregion index spaces are fixed at construction, so the union is
	// computed once per partition; both the dependence analyzers and the
	// compiler's completeness checks re-request it freely.
	p.unionOnce.Do(func() { p.unionMemo = p.computeUnion() })
	return p.unionMemo
}

func (p *Partition) computeUnion() geometry.IndexSpace {
	dim := p.parent.IndexSpace().Dim()
	if p.disjoint {
		var spans []geometry.Rect
		p.Each(func(_ geometry.Point, sub *Region) bool {
			spans = append(spans, sub.IndexSpace().Spans()...)
			return true
		})
		return geometry.FromDisjointRects(dim, spans)
	}
	var spaces []geometry.IndexSpace
	p.Each(func(_ geometry.Point, sub *Region) bool {
		spaces = append(spaces, sub.IndexSpace())
		return true
	})
	return geometry.UnionMany(dim, spaces)
}

// String formats the partition for diagnostics.
func (p *Partition) String() string {
	kind := "aliased"
	if p.disjoint {
		kind = "disjoint"
	}
	return fmt.Sprintf("partition(%s, %s)", p.name, kind)
}
