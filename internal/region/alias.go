package region

// This file implements the region-tree aliasing analysis of paper §2.3:
// to determine whether two regions may alias, find their least common
// ancestor in the region tree; if that ancestor is a disjoint partition and
// the paths to the two regions descend through distinct subregions, the
// regions are guaranteed disjoint; otherwise they may alias.
//
// The same walk answers the partition-level question (§3.1) that data
// replication needs: may any subregion of P overlap any subregion of Q?

// treeNode is either a *Region or a *Partition; the path machinery treats
// both uniformly.
type treeNode interface{ nodeParent() treeNode }

func (r *Region) nodeParent() treeNode {
	if r.parent == nil {
		return nil
	}
	return r.parent
}

func (p *Partition) nodeParent() treeNode { return p.parent }

// pathToRoot returns the chain of nodes from n up to (and including) the
// root region, n first.
func pathToRoot(n treeNode) []treeNode {
	var path []treeNode
	for cur := n; cur != nil; cur = cur.nodeParent() {
		path = append(path, cur)
	}
	return path
}

// lcaSplit finds the least common ancestor of a and b and the immediate
// children of the LCA along each path (nil if the node itself is the LCA).
func lcaSplit(a, b treeNode) (lca, childA, childB treeNode) {
	pa, pb := pathToRoot(a), pathToRoot(b)
	ia, ib := len(pa)-1, len(pb)-1
	if pa[ia] != pb[ib] {
		return nil, nil, nil // different trees
	}
	for ia > 0 && ib > 0 && pa[ia-1] == pb[ib-1] {
		ia--
		ib--
	}
	lca = pa[ia]
	if ia > 0 {
		childA = pa[ia-1]
	}
	if ib > 0 {
		childB = pb[ib-1]
	}
	return lca, childA, childB
}

// MayAlias reports whether regions a and b may share elements, using only
// the static structure of the region tree (no index-space comparisons).
// It is conservative: a false result is a guarantee of disjointness.
func MayAlias(a, b *Region) bool {
	if a == b {
		return true
	}
	lca, ca, cb := lcaSplit(a, b)
	if lca == nil {
		return false // different trees never alias
	}
	if ca == nil || cb == nil {
		return true // one is an ancestor of the other
	}
	if p, ok := lca.(*Partition); ok && p.disjoint {
		// Paths descend through distinct subregions of a disjoint partition
		// (distinct is guaranteed: if they matched, the LCA would be lower).
		return false
	}
	return true
}

// PartitionsMayAlias reports whether any subregion of p may overlap any
// subregion of q (for p == q, any two distinct subregions), using only the
// static tree structure. This is the test data replication (§3.1) uses to
// decide which partitions require copies.
func PartitionsMayAlias(p, q *Partition) bool {
	if p == q {
		return !p.disjoint
	}
	lca, ca, cb := lcaSplit(p, q)
	if lca == nil {
		return false
	}
	if ca == nil || cb == nil {
		// One partition's parent chain passes through the other: e.g. q is a
		// partition of one of p's subregions. Subregions then share elements.
		return true
	}
	if d, ok := lca.(*Partition); ok && d.disjoint {
		return false
	}
	return true
}

// Intersects reports whether a and b actually share elements, comparing
// index spaces. This is the dynamic component used by the runtime; MayAlias
// is the static approximation used by the compiler.
func Intersects(a, b *Region) bool {
	if !MayAlias(a, b) {
		return false
	}
	return a.ispace.Overlaps(b.ispace)
}
