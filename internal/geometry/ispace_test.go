package geometry

import (
	"math/rand"
	"testing"
)

func TestIndexSpaceBasics(t *testing.T) {
	s := NewIndexSpace(R1(0, 9))
	if s.Empty() || s.Volume() != 10 || !s.Dense() {
		t.Errorf("dense space: empty=%v volume=%d dense=%v", s.Empty(), s.Volume(), s.Dense())
	}
	e := EmptyIndexSpace(1)
	if !e.Empty() || e.Volume() != 0 {
		t.Error("empty space should be empty")
	}
	if !s.Contains(Pt1(5)) || s.Contains(Pt1(10)) {
		t.Error("contains wrong")
	}
}

func TestFromPointsCoalesces(t *testing.T) {
	s := FromPoints(1, []Point{Pt1(3), Pt1(1), Pt1(2), Pt1(7), Pt1(2)})
	if s.Volume() != 4 {
		t.Errorf("volume = %d, want 4 (dedup)", s.Volume())
	}
	if len(s.Spans()) != 2 {
		t.Errorf("spans = %v, want 2 coalesced runs", s.Spans())
	}
	if !s.Contains(Pt1(1)) || !s.Contains(Pt1(3)) || !s.Contains(Pt1(7)) || s.Contains(Pt1(4)) {
		t.Error("membership wrong")
	}
}

func TestFromPoints2D(t *testing.T) {
	pts := []Point{Pt2(0, 0), Pt2(0, 1), Pt2(0, 2), Pt2(1, 0)}
	s := FromPoints(2, pts)
	if s.Volume() != 4 {
		t.Errorf("volume = %d", s.Volume())
	}
	for _, p := range pts {
		if !s.Contains(p) {
			t.Errorf("missing %v", p)
		}
	}
}

func TestSubtractRect(t *testing.T) {
	// Punch a hole in the middle of a square.
	a := NewIndexSpace(R2(0, 0, 9, 9))
	b := NewIndexSpace(R2(3, 3, 6, 6))
	d := a.Subtract(b)
	if d.Volume() != 100-16 {
		t.Errorf("volume = %d, want 84", d.Volume())
	}
	if d.Contains(Pt2(4, 4)) || !d.Contains(Pt2(0, 0)) || !d.Contains(Pt2(9, 9)) {
		t.Error("membership wrong after subtract")
	}
	// Disjoint pieces of d must be pairwise disjoint.
	for i, r1 := range d.Spans() {
		for j, r2 := range d.Spans() {
			if i != j && r1.Overlaps(r2) {
				t.Errorf("spans %v and %v overlap", r1, r2)
			}
		}
	}
}

func TestUnionIntersectSubtractAlgebra(t *testing.T) {
	a := FromRects(1, []Rect{R1(0, 5), R1(10, 15)})
	b := FromRects(1, []Rect{R1(3, 12)})
	u := a.Union(b)
	if u.Volume() != 16 {
		t.Errorf("union volume = %d, want 16", u.Volume())
	}
	i := a.Intersect(b)
	if i.Volume() != 6 { // 3,4,5 and 10,11,12
		t.Errorf("intersect volume = %d, want 6", i.Volume())
	}
	// |A ∪ B| = |A| + |B| - |A ∩ B|
	if u.Volume() != a.Volume()+b.Volume()-i.Volume() {
		t.Error("inclusion-exclusion violated")
	}
	// (A - B) ∪ (A ∩ B) = A
	if !a.Subtract(b).Union(i).Equal(a) {
		t.Error("difference/intersection decomposition violated")
	}
}

func TestIndexSpaceEqualIgnoresRepresentation(t *testing.T) {
	a := FromRects(1, []Rect{R1(0, 4), R1(5, 9)})
	b := NewIndexSpace(R1(0, 9))
	if !a.Equal(b) {
		t.Error("equal point sets with different spans should be Equal")
	}
	if !a.ContainsAll(b) || !b.ContainsAll(a) {
		t.Error("ContainsAll should hold both ways")
	}
}

func TestIndexSpaceOverlaps(t *testing.T) {
	a := FromRects(1, []Rect{R1(0, 2), R1(8, 9)})
	b := NewIndexSpace(R1(3, 7))
	if a.Overlaps(b) {
		t.Error("disjoint spaces report overlap")
	}
	c := NewIndexSpace(R1(2, 3))
	if !a.Overlaps(c) {
		t.Error("overlapping spaces report disjoint")
	}
}

func TestIndexSpaceBounds(t *testing.T) {
	a := FromRects(2, []Rect{R2(0, 0, 1, 1), R2(5, 7, 6, 9)})
	if got := a.Bounds(); got != R2(0, 0, 6, 9) {
		t.Errorf("bounds = %v", got)
	}
}

func TestIndexSpaceEachVisitsAll(t *testing.T) {
	a := FromRects(1, []Rect{R1(0, 2), R1(5, 6)})
	var got []int64
	a.Each(func(p Point) bool { got = append(got, p.X()); return true })
	want := []int64{0, 1, 2, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func randSpace(rng *rand.Rand, dim int8) IndexSpace {
	n := rng.Intn(4) + 1
	rects := make([]Rect, n)
	for i := range rects {
		rects[i] = randRect(rng, dim)
	}
	return FromRects(dim, rects)
}

// Property: randomized set algebra against a brute-force point-set model.
func TestIndexSpaceSetAlgebraRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		dim := int8(1 + rng.Intn(2))
		a, b := randSpace(rng, dim), randSpace(rng, dim)

		model := func(s IndexSpace) map[Point]bool {
			m := map[Point]bool{}
			s.Each(func(p Point) bool { m[p] = true; return true })
			return m
		}
		ma, mb := model(a), model(b)

		check := func(name string, got IndexSpace, pred func(Point) bool) {
			t.Helper()
			count := int64(0)
			universe := a.Bounds().Union(b.Bounds())
			if universe.Empty() {
				return
			}
			universe.Each(func(p Point) bool {
				want := pred(p)
				if got.Contains(p) != want {
					t.Fatalf("iter %d %s: point %v membership = %v, want %v", iter, name, p, got.Contains(p), want)
				}
				if want {
					count++
				}
				return true
			})
			if got.Volume() != count {
				t.Fatalf("iter %d %s: volume %d, want %d", iter, name, got.Volume(), count)
			}
			// Spans must remain pairwise disjoint.
			for i, r1 := range got.Spans() {
				for j, r2 := range got.Spans() {
					if i != j && r1.Overlaps(r2) {
						t.Fatalf("iter %d %s: spans overlap: %v %v", iter, name, r1, r2)
					}
				}
			}
		}

		check("union", a.Union(b), func(p Point) bool { return ma[p] || mb[p] })
		check("intersect", a.Intersect(b), func(p Point) bool { return ma[p] && mb[p] })
		check("subtract", a.Subtract(b), func(p Point) bool { return ma[p] && !mb[p] })
	}
}

// Property: the 1-D sorted-sweep fast paths (triggered above the span
// threshold) agree with the generic algorithms on membership and volume.
func TestSweepFastPathsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randSparse := func(n int) IndexSpace {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt1(rng.Int63n(2000) * 2) // even points: lots of spans
		}
		return FromPoints(1, pts)
	}
	for iter := 0; iter < 10; iter++ {
		a := randSparse(300)
		b := randSparse(300)
		if len(a.Spans())+len(b.Spans()) <= sweepThreshold {
			t.Fatal("test inputs too small to trigger the sweep path")
		}
		model := func(s IndexSpace) map[int64]bool {
			m := map[int64]bool{}
			s.Each(func(p Point) bool { m[p.X()] = true; return true })
			return m
		}
		ma, mb := model(a), model(b)
		check := func(name string, got IndexSpace, pred func(int64) bool) {
			t.Helper()
			count := int64(0)
			for x := int64(0); x < 4100; x++ {
				want := pred(x)
				if got.Contains(Pt1(x)) != want {
					t.Fatalf("%s: membership of %d = %v, want %v", name, x, !want, want)
				}
				if want {
					count++
				}
			}
			if got.Volume() != count {
				t.Fatalf("%s: volume %d, want %d", name, got.Volume(), count)
			}
		}
		check("intersect", a.Intersect(b), func(x int64) bool { return ma[x] && mb[x] })
		check("subtract", a.Subtract(b), func(x int64) bool { return ma[x] && !mb[x] })
		wantOverlap := false
		for x := range ma {
			if mb[x] {
				wantOverlap = true
				break
			}
		}
		if a.Overlaps(b) != wantOverlap {
			t.Fatalf("overlaps = %v, want %v", !wantOverlap, wantOverlap)
		}
	}
}

func TestSubtract1DWideSubtrahend(t *testing.T) {
	// A subtrahend span covering several minuend spans must remove all of
	// them, exercising the j/k cursor logic.
	var aRects, bRects []Rect
	for i := int64(0); i < 100; i++ {
		aRects = append(aRects, R1(i*10, i*10+3))
	}
	bRects = append(bRects, R1(15, 555))
	a := FromDisjointRects(1, aRects)
	b := FromDisjointRects(1, bRects)
	d := a.Subtract(b)
	for i := int64(0); i < 100; i++ {
		for x := i * 10; x <= i*10+3; x++ {
			want := x < 15 || x > 555
			if d.Contains(Pt1(x)) != want {
				t.Fatalf("membership of %d = %v, want %v", x, !want, want)
			}
		}
	}
}

func TestUnionMany(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 20; iter++ {
		var spaces []IndexSpace
		model := map[int64]bool{}
		for k := 0; k < rng.Intn(6)+1; k++ {
			var pts []Point
			for i := 0; i < rng.Intn(50); i++ {
				x := rng.Int63n(300)
				pts = append(pts, Pt1(x))
				model[x] = true
			}
			spaces = append(spaces, FromPoints(1, pts))
		}
		u := UnionMany(1, spaces)
		count := int64(0)
		for x := int64(0); x < 300; x++ {
			if u.Contains(Pt1(x)) != model[x] {
				t.Fatalf("iter %d: membership of %d wrong", iter, x)
			}
			if model[x] {
				count++
			}
		}
		if u.Volume() != count {
			t.Fatalf("iter %d: volume %d want %d", iter, u.Volume(), count)
		}
		// Spans disjoint and sorted.
		for i := 1; i < len(u.Spans()); i++ {
			if u.Spans()[i].Lo.X() <= u.Spans()[i-1].Hi.X() {
				t.Fatalf("iter %d: spans not disjoint-sorted", iter)
			}
		}
	}
	if !UnionMany(1, nil).Empty() {
		t.Error("empty union should be empty")
	}
	// 2-D fallback.
	u2 := UnionMany(2, []IndexSpace{NewIndexSpace(R2(0, 0, 1, 1)), NewIndexSpace(R2(1, 1, 2, 2))})
	if u2.Volume() != 7 {
		t.Errorf("2-D union volume = %d, want 7", u2.Volume())
	}
}

// Property: FromPoints membership equals the input set, for random points
// in random dimensions.
func TestFromPointsMembershipQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		dim := int8(rng.Intn(3)) + 1
		n := rng.Intn(100)
		set := map[Point]bool{}
		pts := make([]Point, 0, n)
		for i := 0; i < n; i++ {
			var p Point
			p.Dim = dim
			for d := 0; d < int(dim); d++ {
				p.C[d] = rng.Int63n(12)
			}
			set[p] = true
			pts = append(pts, p)
		}
		s := FromPoints(dim, pts)
		if int(s.Volume()) != len(set) {
			t.Fatalf("iter %d: volume %d, want %d", iter, s.Volume(), len(set))
		}
		for p := range set {
			if !s.Contains(p) {
				t.Fatalf("iter %d: missing %v", iter, p)
			}
		}
	}
}

func TestFactor2(t *testing.T) {
	for n := int64(1); n <= 200; n++ {
		a, b := Factor2(n)
		if a*b != n || a < b {
			t.Fatalf("Factor2(%d) = %d,%d", n, a, b)
		}
		// Most-square: no factorization with a larger small side exists.
		for d := b + 1; d*d <= n; d++ {
			if n%d == 0 {
				t.Fatalf("Factor2(%d) = %d,%d misses better %d", n, a, b, d)
			}
		}
	}
}
