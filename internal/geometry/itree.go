package geometry

import "sort"

// Interval is a 1-D inclusive interval with an opaque identifier, used as
// the element of an IntervalTree.
type Interval struct {
	Lo, Hi int64
	ID     int
}

// IntervalTree is a static centered interval tree supporting overlap
// queries in O(log n + k). It is the acceleration structure the paper uses
// for the shallow-intersection phase on unstructured (1-D) regions (§3.3).
type IntervalTree struct {
	root *itNode
	size int
}

type itNode struct {
	center      int64
	left, right *itNode
	byLo        []Interval // intervals crossing center, sorted by Lo asc
	byHi        []Interval // same intervals, sorted by Hi desc
}

// NewIntervalTree builds a tree over the given intervals. Intervals with
// Hi < Lo are ignored.
func NewIntervalTree(ivs []Interval) *IntervalTree {
	valid := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Hi >= iv.Lo {
			valid = append(valid, iv)
		}
	}
	t := &IntervalTree{size: len(valid)}
	t.root = buildItNode(valid)
	return t
}

// Len returns the number of intervals in the tree.
func (t *IntervalTree) Len() int { return t.size }

func buildItNode(ivs []Interval) *itNode {
	if len(ivs) == 0 {
		return nil
	}
	// Use the median of all endpoints as the center.
	endpoints := make([]int64, 0, 2*len(ivs))
	for _, iv := range ivs {
		endpoints = append(endpoints, iv.Lo, iv.Hi)
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	center := endpoints[len(endpoints)/2]

	var left, right, cross []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < center:
			left = append(left, iv)
		case iv.Lo > center:
			right = append(right, iv)
		default:
			cross = append(cross, iv)
		}
	}
	n := &itNode{center: center}
	n.byLo = make([]Interval, len(cross))
	copy(n.byLo, cross)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].Lo < n.byLo[j].Lo })
	n.byHi = make([]Interval, len(cross))
	copy(n.byHi, cross)
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].Hi > n.byHi[j].Hi })
	// Degenerate guard: if nothing was split off, recursion would not
	// terminate; but cross absorbed everything touching center, and left and
	// right are strictly smaller by construction whenever they are non-empty.
	n.left = buildItNode(left)
	n.right = buildItNode(right)
	return n
}

// Query appends to dst the IDs of all intervals overlapping [lo, hi] and
// returns the extended slice. Results are in no particular order.
func (t *IntervalTree) Query(lo, hi int64, dst []int) []int {
	if hi < lo {
		return dst
	}
	return queryItNode(t.root, lo, hi, dst)
}

func queryItNode(n *itNode, lo, hi int64, dst []int) []int {
	if n == nil {
		return dst
	}
	switch {
	case hi < n.center:
		// Query entirely left of center: crossing intervals overlap iff
		// their Lo <= hi.
		for _, iv := range n.byLo {
			if iv.Lo > hi {
				break
			}
			dst = append(dst, iv.ID)
		}
		return queryItNode(n.left, lo, hi, dst)
	case lo > n.center:
		// Entirely right of center: crossing intervals overlap iff Hi >= lo.
		for _, iv := range n.byHi {
			if iv.Hi < lo {
				break
			}
			dst = append(dst, iv.ID)
		}
		return queryItNode(n.right, lo, hi, dst)
	default:
		// Query straddles center: every crossing interval overlaps.
		for _, iv := range n.byLo {
			dst = append(dst, iv.ID)
		}
		dst = queryItNode(n.left, lo, hi, dst)
		return queryItNode(n.right, lo, hi, dst)
	}
}
