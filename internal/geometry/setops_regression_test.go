package geometry

import (
	"math/rand"
	"testing"
)

// TestSubtractDoesNotMutateReceiver guards against the aliasing bug the
// original Subtract had: with an empty (or non-overlapping) subtrahend the
// result shared the receiver's span slice, and the in-place coalesce then
// merged and shifted entries of that shared backing array — leaving the
// receiver with a duplicated trailing span and an inflated Volume(). The
// inflated volumes leaked into modeled copy sizes (BytesSent) of every
// engine run.
func TestSubtractDoesNotMutateReceiver(t *testing.T) {
	mk := func(lo0, lo1, hi0, hi1 int64) Rect {
		return Rect{Lo: Pt2(lo0, lo1), Hi: Pt2(hi0, hi1)}
	}
	// The first two spans coalesce into one rectangle; the third is separate.
	fresh := func() IndexSpace {
		return IndexSpace{dim: 2, spans: []Rect{mk(0, 0, 0, 9), mk(1, 0, 1, 9), mk(5, 5, 6, 6)}}
	}

	s := fresh()
	if got := s.Subtract(EmptyIndexSpace(2)); got.Volume() != 24 {
		t.Errorf("Subtract(empty) volume = %d, want 24", got.Volume())
	}
	if s.Volume() != 24 {
		t.Errorf("receiver volume after Subtract(empty) = %d, want 24 (receiver was mutated)", s.Volume())
	}

	// Non-overlapping subtrahend exercises the nothing-carved path.
	s = fresh()
	far := NewIndexSpace(mk(100, 100, 101, 101))
	if got := s.Subtract(far); got.Volume() != 24 {
		t.Errorf("Subtract(disjoint) volume = %d, want 24", got.Volume())
	}
	if s.Volume() != 24 {
		t.Errorf("receiver volume after Subtract(disjoint) = %d, want 24 (receiver was mutated)", s.Volume())
	}

	// Union's first step (empty ∪ s) goes through Subtract with an empty
	// subtrahend; the argument must survive too.
	s = fresh()
	if u := EmptyIndexSpace(2).Union(s); u.Volume() != 24 {
		t.Errorf("empty.Union(s) volume = %d, want 24", u.Volume())
	}
	if s.Volume() != 24 {
		t.Errorf("union argument volume = %d, want 24 (argument was mutated)", s.Volume())
	}
}

func regRandRect(rng *rand.Rand, dim int8) Rect {
	var lo, hi Point
	lo.Dim, hi.Dim = dim, dim
	for i := 0; i < int(dim); i++ {
		a := rng.Int63n(20)
		b := a + rng.Int63n(6)
		lo.C[i], hi.C[i] = a, b
	}
	return Rect{lo, hi}
}

func regRandSpace(rng *rand.Rand, dim int8, n int) IndexSpace {
	out := EmptyIndexSpace(dim)
	for i := 0; i < n; i++ {
		out = out.Union(NewIndexSpace(regRandRect(rng, dim)))
	}
	return out
}

// TestSetOpsDifferential cross-checks the optimized Subtract, ContainsAll,
// and UnionMany against point-membership ground truth and each other on
// randomized small spaces, and verifies every result maintains the
// pairwise-disjoint span invariant (Volume, and therefore all modeled copy
// sizes, silently double-count without it).
func TestSetOpsDifferential(t *testing.T) {
	assertDisjoint := func(iter int, label string, s IndexSpace) {
		for i := 0; i < len(s.spans); i++ {
			for j := i + 1; j < len(s.spans); j++ {
				if s.spans[i].Overlaps(s.spans[j]) {
					t.Fatalf("iter %d: overlapping spans in %s result %v", iter, label, s)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		dim := int8(rng.Intn(2) + 1)
		a := regRandSpace(rng, dim, rng.Intn(5))
		b := regRandSpace(rng, dim, rng.Intn(5))

		sub := a.Subtract(b)
		assertDisjoint(iter, "Subtract", sub)
		want := int64(0)
		a.Each(func(p Point) bool {
			if !b.Contains(p) {
				want++
				if !sub.Contains(p) {
					t.Fatalf("iter %d: %v \\ %v missing point %v", iter, a, b, p)
				}
			} else if sub.Contains(p) {
				t.Fatalf("iter %d: %v \\ %v has extra point %v", iter, a, b, p)
			}
			return true
		})
		if sub.Volume() != want {
			t.Fatalf("iter %d: Subtract volume %d, want %d", iter, sub.Volume(), want)
		}

		if got, want := a.ContainsAll(b), b.Subtract(a).Empty(); got != want {
			t.Fatalf("iter %d: ContainsAll = %v, want %v (a=%v b=%v)", iter, got, want, a, b)
		}

		var sp []IndexSpace
		for k := 0; k < rng.Intn(6); k++ {
			sp = append(sp, regRandSpace(rng, dim, rng.Intn(4)))
		}
		um := UnionMany(dim, sp)
		assertDisjoint(iter, "UnionMany", um)
		naive := EmptyIndexSpace(dim)
		for _, s := range sp {
			naive = naive.Union(s)
		}
		if !um.Equal(naive) {
			t.Fatalf("iter %d: UnionMany %v != iterated union %v", iter, um, naive)
		}
	}
}
