package geometry

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}

func TestIntervalTreeSmall(t *testing.T) {
	tree := NewIntervalTree([]Interval{
		{0, 10, 1},
		{5, 15, 2},
		{20, 30, 3},
		{12, 12, 4},
	})
	if tree.Len() != 4 {
		t.Errorf("len = %d", tree.Len())
	}
	cases := []struct {
		lo, hi int64
		want   []int
	}{
		{0, 4, []int{1}},
		{5, 10, []int{1, 2}},
		{11, 19, []int{2, 4}},
		{12, 12, []int{2, 4}},
		{16, 19, nil},
		{25, 100, []int{3}},
		{-10, 100, []int{1, 2, 3, 4}},
		{10, 5, nil}, // inverted query is empty
	}
	for _, c := range cases {
		got := sortedInts(tree.Query(c.lo, c.hi, nil))
		want := sortedInts(c.want)
		if len(got) != len(want) {
			t.Errorf("query [%d,%d] = %v, want %v", c.lo, c.hi, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("query [%d,%d] = %v, want %v", c.lo, c.hi, got, want)
				break
			}
		}
	}
}

func TestIntervalTreeIgnoresInverted(t *testing.T) {
	tree := NewIntervalTree([]Interval{{5, 3, 1}, {0, 1, 2}})
	if tree.Len() != 1 {
		t.Errorf("len = %d, want 1", tree.Len())
	}
}

func TestIntervalTreeEmpty(t *testing.T) {
	tree := NewIntervalTree(nil)
	if got := tree.Query(0, 100, nil); len(got) != 0 {
		t.Errorf("query on empty tree = %v", got)
	}
}

// Property: interval tree query results match brute force on random input.
func TestIntervalTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(200) + 1
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Int63n(1000)
			ivs[i] = Interval{Lo: lo, Hi: lo + rng.Int63n(50), ID: i}
		}
		tree := NewIntervalTree(ivs)
		for q := 0; q < 20; q++ {
			lo := rng.Int63n(1000)
			hi := lo + rng.Int63n(100)
			got := sortedInts(tree.Query(lo, hi, nil))
			var want []int
			for _, iv := range ivs {
				if iv.Lo <= hi && iv.Hi >= lo {
					want = append(want, iv.ID)
				}
			}
			want = sortedInts(want)
			if len(got) != len(want) {
				t.Fatalf("iter %d query [%d,%d]: got %d results, want %d", iter, lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d query [%d,%d]: got %v, want %v", iter, lo, hi, got, want)
				}
			}
		}
	}
}

func TestBVHSmall(t *testing.T) {
	bvh := NewBVH([]BVHEntry{
		{R2(0, 0, 4, 4), 1},
		{R2(5, 5, 9, 9), 2},
		{R2(3, 3, 6, 6), 3},
	})
	if bvh.Len() != 3 {
		t.Errorf("len = %d", bvh.Len())
	}
	got := sortedInts(bvh.Query(R2(4, 4, 5, 5), nil))
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("query = %v, want %v", got, want)
	}
	if res := bvh.Query(R2(20, 20, 30, 30), nil); len(res) != 0 {
		t.Errorf("disjoint query = %v", res)
	}
	if res := bvh.Query(EmptyRect(2), nil); len(res) != 0 {
		t.Errorf("empty query = %v", res)
	}
}

func TestBVHEmptyAndSkipsEmptyRects(t *testing.T) {
	bvh := NewBVH([]BVHEntry{{EmptyRect(2), 9}})
	if bvh.Len() != 0 {
		t.Errorf("len = %d, want 0", bvh.Len())
	}
	if got := NewBVH(nil).Query(R2(0, 0, 1, 1), nil); len(got) != 0 {
		t.Errorf("query = %v", got)
	}
}

// Property: BVH query results match brute force on random rectangles in 1-3D.
func TestBVHMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		dim := int8(1 + rng.Intn(3))
		n := rng.Intn(300) + 1
		entries := make([]BVHEntry, n)
		for i := range entries {
			entries[i] = BVHEntry{Rect: randRect(rng, dim), ID: i}
		}
		bvh := NewBVH(entries)
		for q := 0; q < 20; q++ {
			query := randRect(rng, dim)
			got := sortedInts(bvh.Query(query, nil))
			var want []int
			for _, e := range entries {
				if e.Rect.Overlaps(query) {
					want = append(want, e.ID)
				}
			}
			want = sortedInts(want)
			if len(got) != len(want) {
				t.Fatalf("iter %d: got %d results, want %d", iter, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d: got %v, want %v", iter, got, want)
				}
			}
		}
	}
}

func BenchmarkIntervalTreeBuild1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ivs := make([]Interval, 1024)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = Interval{Lo: lo, Hi: lo + 1024, ID: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIntervalTree(ivs)
	}
}

func BenchmarkBVHQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]BVHEntry, 4096)
	for i := range entries {
		x, y := rng.Int63n(1<<12), rng.Int63n(1<<12)
		entries[i] = BVHEntry{Rect: R2(x, y, x+16, y+16), ID: i}
	}
	bvh := NewBVH(entries)
	b.ResetTimer()
	var dst []int
	for i := 0; i < b.N; i++ {
		dst = bvh.Query(entries[i%len(entries)].Rect, dst[:0])
	}
}
