package geometry

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// IndexSpace is a (possibly sparse) set of points, represented as a list of
// pairwise-disjoint rectangles of a common dimensionality. Dense index
// spaces are a single rectangle. The representation is not unique, but all
// operations preserve the disjointness invariant, and Equal compares the
// underlying point sets rather than the representations.
type IndexSpace struct {
	dim   int8
	spans []Rect // pairwise disjoint, none empty
}

// NewIndexSpace returns the dense index space covering r.
func NewIndexSpace(r Rect) IndexSpace {
	if r.Empty() {
		return IndexSpace{dim: r.Dim()}
	}
	return IndexSpace{dim: r.Dim(), spans: []Rect{r}}
}

// EmptyIndexSpace returns an empty index space of the given dimension.
func EmptyIndexSpace(dim int8) IndexSpace { return IndexSpace{dim: dim} }

// FromPoints builds an index space from an arbitrary set of points
// (duplicates allowed). Runs of consecutive points along the last axis are
// coalesced into rectangles.
func FromPoints(dim int8, pts []Point) IndexSpace {
	if len(pts) == 0 {
		return IndexSpace{dim: dim}
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	var spans []Rect
	run := Rect{sorted[0], sorted[0]}
	last := int(dim) - 1
	for _, p := range sorted[1:] {
		if p == run.Hi {
			continue // duplicate
		}
		ext := run.Hi
		ext.C[last]++
		if p == ext {
			run.Hi = p
			continue
		}
		spans = append(spans, run)
		run = Rect{p, p}
	}
	spans = append(spans, run)
	return IndexSpace{dim: dim, spans: spans}
}

// FromDisjointRects builds an index space from rectangles the caller
// guarantees are pairwise disjoint, skipping the quadratic union pass. It
// is the constructor large structured partitions use (e.g. the ghost bands
// of a 1024-tile grid). Empty rectangles are dropped; disjointness is the
// caller's responsibility and is verified only in tests.
func FromDisjointRects(dim int8, rects []Rect) IndexSpace {
	spans := make([]Rect, 0, len(rects))
	for _, r := range rects {
		if !r.Empty() {
			spans = append(spans, r)
		}
	}
	if dim == 1 {
		sortSpans1D(spans)
	}
	return IndexSpace{dim: dim, spans: spans}
}

// FromRects builds an index space as the union of arbitrary (possibly
// overlapping) rectangles.
func FromRects(dim int8, rects []Rect) IndexSpace {
	out := IndexSpace{dim: dim}
	for _, r := range rects {
		out = out.Union(NewIndexSpace(r))
	}
	return out
}

// Dim returns the space's dimensionality.
func (s IndexSpace) Dim() int8 { return s.dim }

// Spans returns the disjoint rectangles making up the space. The returned
// slice must not be modified.
func (s IndexSpace) Spans() []Rect { return s.spans }

// Empty reports whether the space contains no points.
func (s IndexSpace) Empty() bool { return len(s.spans) == 0 }

// Volume returns the number of points in the space.
func (s IndexSpace) Volume() int64 {
	var v int64
	for _, r := range s.spans {
		v += r.Volume()
	}
	return v
}

// Bounds returns the bounding rectangle of the space.
func (s IndexSpace) Bounds() Rect {
	out := EmptyRect(s.dim)
	for _, r := range s.spans {
		out = out.Union(r)
	}
	return out
}

// Dense reports whether the space is exactly one rectangle.
func (s IndexSpace) Dense() bool { return len(s.spans) == 1 }

// Contains reports whether p is in the space.
func (s IndexSpace) Contains(p Point) bool {
	for _, r := range s.spans {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Each calls fn for every point in the space (span by span, row-major
// within each span), stopping early if fn returns false.
func (s IndexSpace) Each(fn func(Point) bool) {
	for _, r := range s.spans {
		stopped := false
		r.Each(func(p Point) bool {
			if !fn(p) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Points materializes every point in the space. Intended for small spaces
// and tests.
func (s IndexSpace) Points() []Point {
	pts := make([]Point, 0, s.Volume())
	s.Each(func(p Point) bool { pts = append(pts, p); return true })
	return pts
}

// sweepThreshold is the size above which 1-D operations switch from the
// quadratic all-pairs algorithms to sorted sweeps.
const sweepThreshold = 64

// sortSpans1D sorts 1-D spans in place by lower bound. Every IndexSpace
// constructor and operation maintains the invariant that 1-D span lists are
// sorted, so the sweep algorithms never re-sort.
func sortSpans1D(spans []Rect) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo.X() < spans[j].Lo.X() })
}

// sorted1D returns the spans, which are sorted by construction for 1-D
// spaces.
func (s IndexSpace) sorted1D() []Rect { return s.spans }

// Intersect returns the set intersection of s and t.
func (s IndexSpace) Intersect(t IndexSpace) IndexSpace {
	s.mustMatch(t)
	if s.dim == 1 && len(s.spans)+len(t.spans) > sweepThreshold {
		return s.intersect1D(t)
	}
	var spans []Rect
	for _, a := range s.spans {
		for _, b := range t.spans {
			if c := a.Intersect(b); !c.Empty() {
				spans = append(spans, c)
			}
		}
	}
	if s.dim == 1 {
		sortSpans1D(spans)
	}
	return IndexSpace{dim: s.dim, spans: spans}
}

// intersect1D is the sorted-sweep intersection for large 1-D span lists.
func (s IndexSpace) intersect1D(t IndexSpace) IndexSpace {
	a, b := s.sorted1D(), t.sorted1D()
	var spans []Rect
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i].Lo.X(), b[j].Lo.X())
		hi := min64(a[i].Hi.X(), b[j].Hi.X())
		if lo <= hi {
			spans = append(spans, R1(lo, hi))
		}
		if a[i].Hi.X() < b[j].Hi.X() {
			i++
		} else {
			j++
		}
	}
	return IndexSpace{dim: 1, spans: spans}
}

// Overlaps reports whether s and t share at least one point; it short
// circuits and is cheaper than computing the full intersection.
func (s IndexSpace) Overlaps(t IndexSpace) bool {
	s.mustMatch(t)
	if s.dim == 1 && len(s.spans)+len(t.spans) > sweepThreshold {
		a, b := s.sorted1D(), t.sorted1D()
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].Lo.X() <= b[j].Hi.X() && b[j].Lo.X() <= a[i].Hi.X() {
				return true
			}
			if a[i].Hi.X() < b[j].Hi.X() {
				i++
			} else {
				j++
			}
		}
		return false
	}
	for _, a := range s.spans {
		for _, b := range t.spans {
			if a.Overlaps(b) {
				return true
			}
		}
	}
	return false
}

// Subtract returns the set difference s minus t.
func (s IndexSpace) Subtract(t IndexSpace) IndexSpace {
	s.mustMatch(t)
	if s.dim == 1 && len(s.spans)+len(t.spans) > sweepThreshold {
		return s.subtract1D(t)
	}
	// Carve with double buffering and a bounding-box guard: a subtrahend
	// span that overlaps nothing leaves the list untouched (no rebuild), and
	// overlap tests are four integer compares instead of constructing the
	// intersection. Span order is identical to the naive rebuild, so results
	// are representation-identical, not just set-equal.
	cur := s.spans
	owned := false // cur is a scratch buffer of ours, not s.spans
	var spare []Rect
	for _, b := range t.spans {
		touched := false
		for i := range cur {
			if cur[i].Overlaps(b) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		next := spare[:0]
		for _, a := range cur {
			if a.Overlaps(b) {
				next = appendSubtractRect(next, a, b)
			} else {
				next = append(next, a)
			}
		}
		if owned {
			spare = cur
		} else {
			spare = nil
		}
		cur, owned = next, true
	}
	if !owned {
		// Nothing was carved: the result is s itself. coalesce and the 1-D
		// sort mutate the span list, so take a copy first — but only when
		// they would actually run (coalesce skips large lists, and 1-D spans
		// are already sorted by invariant).
		if len(cur) > coalesceLimit {
			return IndexSpace{dim: s.dim, spans: cur}
		}
		cur = append([]Rect(nil), cur...)
	}
	out := IndexSpace{dim: s.dim, spans: cur}
	out.coalesce()
	if s.dim == 1 {
		sortSpans1D(out.spans)
	}
	return out
}

// subtract1D is the sorted-sweep difference for large 1-D span lists.
func (s IndexSpace) subtract1D(t IndexSpace) IndexSpace {
	a, b := s.sorted1D(), t.sorted1D()
	var spans []Rect
	j := 0
	for _, sp := range a {
		lo, hi := sp.Lo.X(), sp.Hi.X()
		// Skip subtrahend spans entirely before this span.
		for j < len(b) && b[j].Hi.X() < lo {
			j++
		}
		k := j
		cur := lo
		for k < len(b) && b[k].Lo.X() <= hi {
			if b[k].Lo.X() > cur {
				spans = append(spans, R1(cur, b[k].Lo.X()-1))
			}
			if b[k].Hi.X()+1 > cur {
				cur = b[k].Hi.X() + 1
			}
			if cur > hi {
				break
			}
			k++
		}
		if cur <= hi {
			spans = append(spans, R1(cur, hi))
		}
	}
	return IndexSpace{dim: 1, spans: spans}
}

// Union returns the set union of s and t.
func (s IndexSpace) Union(t IndexSpace) IndexSpace {
	s.mustMatch(t)
	diff := t.Subtract(s)
	spans := make([]Rect, 0, len(s.spans)+len(diff.spans))
	spans = append(spans, s.spans...)
	spans = append(spans, diff.spans...)
	out := IndexSpace{dim: s.dim, spans: spans}
	out.coalesce()
	if s.dim == 1 {
		sortSpans1D(out.spans)
	}
	return out
}

// Equal reports whether s and t contain exactly the same points.
func (s IndexSpace) Equal(t IndexSpace) bool {
	return s.Subtract(t).Empty() && t.Subtract(s).Empty()
}

// ContainsAll reports whether every point of t is in s. Each span of t is
// carved independently against only the spans of s it overlaps, with an
// early exit on the first uncovered point — for large span lists this is
// dramatically cheaper than materializing t.Subtract(s), which rebuilds the
// whole difference even when the answer is an early "no" (or a trivially
// empty "yes").
func (s IndexSpace) ContainsAll(t IndexSpace) bool {
	t.mustMatch(s)
	if s.dim == 1 && len(s.spans)+len(t.spans) > sweepThreshold {
		return t.subtract1D(s).Empty()
	}
	if s.dim != 1 && len(s.spans) > xIndexThreshold {
		var ix xspanIndex
		for i, a := range s.spans {
			ix.add(int32(i), a)
		}
		var cand []int32
		for _, b := range t.spans {
			cand = ix.candidates(cand[:0], b.Lo.C[0], b.Hi.C[0])
			if !s.coversRectAmong(b, cand) {
				return false
			}
		}
		return true
	}
	for _, b := range t.spans {
		if !s.coversRect(b) {
			return false
		}
	}
	return true
}

// coversRectAmong is coversRect restricted to the covering spans named by
// idxs (ascending); spans outside idxs are known not to overlap r.
func (s IndexSpace) coversRectAmong(r Rect, idxs []int32) bool {
	if r.Empty() {
		return true
	}
	var bufA, bufB [16]Rect
	work := append(bufA[:0], r)
	spare := bufB[:0]
	for _, ai := range idxs {
		a := s.spans[ai]
		next := spare[:0]
		for _, w := range work {
			if w.Overlaps(a) {
				next = appendSubtractRect(next, w, a)
			} else {
				next = append(next, w)
			}
		}
		work, spare = next, work
		if len(work) == 0 {
			return true
		}
	}
	return len(work) == 0
}

// coversRect reports whether r is entirely within s, by carving r with s's
// spans until nothing remains (covered) or the span list is exhausted.
func (s IndexSpace) coversRect(r Rect) bool {
	if r.Empty() {
		return true
	}
	var bufA, bufB [16]Rect
	work := append(bufA[:0], r)
	spare := bufB[:0]
	for _, a := range s.spans {
		touched := false
		for i := range work {
			if work[i].Overlaps(a) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		next := spare[:0]
		for _, w := range work {
			if w.Overlaps(a) {
				next = appendSubtractRect(next, w, a)
			} else {
				next = append(next, w)
			}
		}
		work, spare = next, work
		if len(work) == 0 {
			return true
		}
	}
	return len(work) == 0
}

// xIndexThreshold is the span count above which the multi-dimensional
// set operations build an axis-0 extent index instead of scanning every
// span per query. Below it, the plain scans win on constant factor.
const xIndexThreshold = 32

// xspanIndex buckets spans by their exact extent along axis 0. Structured
// partitions (tile grids, ghost bands) produce span lists with only
// O(sqrt(n)) distinct axis-0 extents, so an overlap query touches a few
// groups instead of every span. The index stores span indices, letting
// callers visit candidates in original list order — which keeps carve-based
// algorithms representation-identical to their unindexed forms.
type xspanIndex struct {
	keys   map[[2]int64]int32
	groups []xspanGroup
}

type xspanGroup struct {
	lo, hi int64
	idxs   []int32
}

func (ix *xspanIndex) add(i int32, r Rect) {
	k := [2]int64{r.Lo.C[0], r.Hi.C[0]}
	if ix.keys == nil {
		ix.keys = make(map[[2]int64]int32)
	}
	gi, ok := ix.keys[k]
	if !ok {
		gi = int32(len(ix.groups))
		ix.keys[k] = gi
		ix.groups = append(ix.groups, xspanGroup{lo: k[0], hi: k[1]})
	}
	ix.groups[gi].idxs = append(ix.groups[gi].idxs, i)
}

// candidates appends to buf the indices of spans whose axis-0 extent
// overlaps [lo, hi], sorted ascending (original list order).
func (ix *xspanIndex) candidates(buf []int32, lo, hi int64) []int32 {
	n := len(buf)
	for gi := range ix.groups {
		g := &ix.groups[gi]
		if g.lo <= hi && lo <= g.hi {
			buf = append(buf, g.idxs...)
		}
	}
	slices.Sort(buf[n:])
	return buf
}

// String renders the span list.
func (s IndexSpace) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, len(s.spans))
	for i, r := range s.spans {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func (s IndexSpace) mustMatch(t IndexSpace) {
	if s.dim != t.dim {
		panic(fmt.Sprintf("geometry: index space dimension mismatch %d vs %d", s.dim, t.dim))
	}
}

// appendSubtractRect appends a minus b to out as disjoint rectangles. The
// standard axis-by-axis carve: for each axis, peel off the slabs of a that
// lie strictly below and strictly above b on that axis, then narrow a to
// b's extent on that axis and continue with the next axis. Appending into a
// caller-owned buffer keeps the Subtract/ContainsAll hot loops free of the
// per-pair slice allocation a return-by-value carve forces.
func appendSubtractRect(out []Rect, a, b Rect) []Rect {
	c := a.Intersect(b)
	if c.Empty() {
		return append(out, a)
	}
	rem := a
	for i := 0; i < int(a.Dim()); i++ {
		if rem.Lo.C[i] < c.Lo.C[i] {
			lower := rem
			lower.Hi.C[i] = c.Lo.C[i] - 1
			out = append(out, lower)
			rem.Lo.C[i] = c.Lo.C[i]
		}
		if rem.Hi.C[i] > c.Hi.C[i] {
			upper := rem
			upper.Lo.C[i] = c.Hi.C[i] + 1
			out = append(out, upper)
			rem.Hi.C[i] = c.Hi.C[i]
		}
	}
	return out
}

// coalesceLimit bounds the quadratic merge heuristic: spaces with more
// spans than this skip coalescing entirely (disjointness, the invariant
// that matters, is preserved either way; coalescing is only a compaction).
const coalesceLimit = 128

// coalesce greedily merges pairs of spans that abut with identical extents
// in every other axis, shrinking the representation. It is a heuristic, not
// a canonicalization.
func (s *IndexSpace) coalesce() {
	if len(s.spans) > coalesceLimit {
		return
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(s.spans); i++ {
			for j := i + 1; j < len(s.spans); j++ {
				if m, ok := tryMerge(s.spans[i], s.spans[j]); ok {
					s.spans[i] = m
					s.spans = append(s.spans[:j], s.spans[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
}

// tryMerge merges two rectangles if their union is exactly a rectangle.
func tryMerge(a, b Rect) (Rect, bool) {
	diffAxis := -1
	for i := 0; i < int(a.Dim()); i++ {
		if a.Lo.C[i] == b.Lo.C[i] && a.Hi.C[i] == b.Hi.C[i] {
			continue
		}
		if diffAxis >= 0 {
			return Rect{}, false
		}
		diffAxis = i
	}
	if diffAxis < 0 {
		return a, true // identical
	}
	lo, hi := a, b
	if b.Lo.C[diffAxis] < a.Lo.C[diffAxis] {
		lo, hi = b, a
	}
	if lo.Hi.C[diffAxis]+1 >= hi.Lo.C[diffAxis] {
		m := lo
		m.Hi.C[diffAxis] = max64(lo.Hi.C[diffAxis], hi.Hi.C[diffAxis])
		return m, true
	}
	return Rect{}, false
}

// UnionMany returns the union of many index spaces. For 1-D inputs it is a
// single sort-and-sweep over all spans (O(n log n)), the constructor for
// unions of many sparse subregions (e.g. an aliased ghost partition's
// footprint). Other dimensions carve each incoming span against the
// accumulated union in one growing buffer — unlike the iterative
// out.Union(s) formulation, the accumulated span list is never copied, so
// a union over n mostly-disjoint spans costs O(n²) cheap bounding-box
// tests instead of O(n²) span-list rebuilds with their allocations.
func UnionMany(dim int8, spaces []IndexSpace) IndexSpace {
	if dim != 1 {
		total := 0
		for _, sp := range spaces {
			total += len(sp.spans)
		}
		useIdx := total > xIndexThreshold
		var ix xspanIndex
		var cand []int32
		var acc []Rect
		var work, spare []Rect
		for _, sp := range spaces {
			for _, r := range sp.spans {
				// Carve r down to the pieces not already covered, then keep
				// them. acc stays pairwise disjoint throughout. The index
				// narrows the carve to accumulated spans whose axis-0 extent
				// overlaps r; visiting them in list order keeps the output
				// identical to the full scan.
				work = append(work[:0], r)
				if useIdx {
					cand = ix.candidates(cand[:0], r.Lo.C[0], r.Hi.C[0])
				}
				nAcc := len(acc)
				if useIdx {
					nAcc = len(cand)
				}
				for ci := 0; ci < nAcc && len(work) > 0; ci++ {
					a := acc[ci]
					if useIdx {
						a = acc[cand[ci]]
					}
					touched := false
					for i := range work {
						if work[i].Overlaps(a) {
							touched = true
							break
						}
					}
					if !touched {
						continue
					}
					next := spare[:0]
					for _, w := range work {
						if w.Overlaps(a) {
							next = appendSubtractRect(next, w, a)
						} else {
							next = append(next, w)
						}
					}
					work, spare = next, work
				}
				for _, w := range work {
					if useIdx {
						ix.add(int32(len(acc)), w)
					}
					acc = append(acc, w)
				}
			}
		}
		out := IndexSpace{dim: dim, spans: acc}
		out.coalesce()
		return out
	}
	var all []Rect
	for _, s := range spaces {
		all = append(all, s.spans...)
	}
	if len(all) == 0 {
		return IndexSpace{dim: 1}
	}
	sortSpans1D(all)
	merged := all[:1]
	for _, r := range all[1:] {
		last := &merged[len(merged)-1]
		if r.Lo.X() <= last.Hi.X()+1 {
			if r.Hi.X() > last.Hi.X() {
				last.Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return IndexSpace{dim: 1, spans: merged}
}

// Factor2 returns the most-square factorization a*b = n with a >= b, the
// standard tile-grid shape for weak scaling over n nodes.
func Factor2(n int64) (a, b int64) {
	b = 1
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			b = d
		}
	}
	return n / b, b
}
