package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectEmptyVolume(t *testing.T) {
	if R1(0, -1).Empty() != true {
		t.Error("R1(0,-1) should be empty")
	}
	if R1(0, 0).Empty() {
		t.Error("R1(0,0) should not be empty")
	}
	if v := R1(0, 9).Volume(); v != 10 {
		t.Errorf("volume = %d, want 10", v)
	}
	if v := R2(0, 0, 3, 4).Volume(); v != 20 {
		t.Errorf("volume = %d, want 20", v)
	}
	if v := R3(1, 1, 1, 2, 2, 2).Volume(); v != 8 {
		t.Errorf("volume = %d, want 8", v)
	}
	if v := EmptyRect(2).Volume(); v != 0 {
		t.Errorf("empty volume = %d", v)
	}
}

func TestRectContains(t *testing.T) {
	r := R2(0, 0, 9, 9)
	if !r.Contains(Pt2(0, 0)) || !r.Contains(Pt2(9, 9)) || !r.Contains(Pt2(4, 7)) {
		t.Error("inclusive bounds should contain corners and interior")
	}
	if r.Contains(Pt2(10, 0)) || r.Contains(Pt2(0, -1)) {
		t.Error("should not contain exterior points")
	}
}

func TestRectIntersect(t *testing.T) {
	a, b := R2(0, 0, 5, 5), R2(3, 3, 8, 8)
	got := a.Intersect(b)
	if got != R2(3, 3, 5, 5) {
		t.Errorf("intersect = %v", got)
	}
	disjoint := R2(6, 6, 8, 8)
	if !a.Intersect(disjoint).Empty() {
		t.Error("expected empty intersection")
	}
	// Touching rectangles (inclusive bounds) intersect in a line.
	touch := R2(5, 0, 7, 5)
	if a.Intersect(touch) != R2(5, 0, 5, 5) {
		t.Errorf("touching intersect = %v", a.Intersect(touch))
	}
}

func TestRectUnionBounding(t *testing.T) {
	a, b := R1(0, 3), R1(10, 12)
	if got := a.Union(b); got != R1(0, 12) {
		t.Errorf("union = %v", got)
	}
	if got := EmptyRect(1).Union(b); got != b {
		t.Errorf("empty union = %v", got)
	}
	if got := a.Union(EmptyRect(1)); got != a {
		t.Errorf("union empty = %v", got)
	}
}

func TestRectIndexRoundTrip(t *testing.T) {
	r := R3(2, -1, 5, 4, 3, 9)
	seen := map[int64]bool{}
	r.Each(func(p Point) bool {
		idx := r.Index(p)
		if idx < 0 || idx >= r.Volume() {
			t.Fatalf("index %d out of range for %v", idx, p)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d at %v", idx, p)
		}
		seen[idx] = true
		if got := r.PointAt(idx); got != p {
			t.Fatalf("PointAt(%d) = %v, want %v", idx, got, p)
		}
		return true
	})
	if int64(len(seen)) != r.Volume() {
		t.Errorf("visited %d points, want %d", len(seen), r.Volume())
	}
}

func TestRectEachRowMajorOrder(t *testing.T) {
	r := R2(0, 0, 1, 2)
	var got []Point
	r.Each(func(p Point) bool { got = append(got, p); return true })
	want := []Point{Pt2(0, 0), Pt2(0, 1), Pt2(0, 2), Pt2(1, 0), Pt2(1, 1), Pt2(1, 2)}
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRectEachEarlyStop(t *testing.T) {
	r := R1(0, 99)
	n := 0
	r.Each(func(Point) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("visited %d points, want 5", n)
	}
}

func randRect(rng *rand.Rand, dim int8) Rect {
	var r Rect
	r.Lo.Dim, r.Hi.Dim = dim, dim
	for i := 0; i < int(dim); i++ {
		a := rng.Int63n(20) - 10
		b := rng.Int63n(20) - 10
		if a > b {
			a, b = b, a
		}
		r.Lo.C[i], r.Hi.C[i] = a, b
	}
	return r
}

// Property: intersection volume equals brute-force point count.
func TestRectIntersectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		dim := int8(1 + rng.Intn(3))
		a, b := randRect(rng, dim), randRect(rng, dim)
		c := a.Intersect(b)
		count := int64(0)
		a.Each(func(p Point) bool {
			if b.Contains(p) {
				count++
				if !c.Contains(p) {
					t.Fatalf("point %v in both %v,%v but not in intersection %v", p, a, b, c)
				}
			}
			return true
		})
		if count != c.Volume() {
			t.Fatalf("intersect volume %d, brute force %d (%v ∩ %v = %v)", c.Volume(), count, a, b, c)
		}
	}
}

// Property: Overlaps is symmetric and consistent with Intersect.
func TestRectOverlapsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := R1(int64(ax), int64(ax)+int64(ay%8+8))
		b := R1(int64(bx), int64(bx)+int64(by%8+8))
		return a.Overlaps(b) == b.Overlaps(a) &&
			a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Index/PointAt are inverse bijections over random rectangles.
func TestIndexPointAtBijectionQuick(t *testing.T) {
	f := func(dimRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := int8(dimRaw%3) + 1
		r := randRect(rng, dim)
		if r.Empty() || r.Volume() > 500 {
			return true
		}
		for idx := int64(0); idx < r.Volume(); idx++ {
			p := r.PointAt(idx)
			if !r.Contains(p) || r.Index(p) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Union bounding box contains both inputs.
func TestRectUnionContainsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := int8(rng.Intn(3)) + 1
		a, b := randRect(rng, dim), randRect(rng, dim)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
