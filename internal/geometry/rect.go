package geometry

import "fmt"

// Rect is an axis-aligned rectangle (interval, rectangle, or box depending
// on dimensionality) with inclusive bounds. A Rect with any Hi coordinate
// strictly below the corresponding Lo coordinate is empty.
type Rect struct {
	Lo, Hi Point
}

// R1 returns the 1-D rectangle [lo, hi].
func R1(lo, hi int64) Rect { return Rect{Pt1(lo), Pt1(hi)} }

// R2 returns the 2-D rectangle [lox,hix] x [loy,hiy].
func R2(lox, loy, hix, hiy int64) Rect { return Rect{Pt2(lox, loy), Pt2(hix, hiy)} }

// R3 returns the 3-D rectangle [lox,hix] x [loy,hiy] x [loz,hiz].
func R3(lox, loy, loz, hix, hiy, hiz int64) Rect {
	return Rect{Pt3(lox, loy, loz), Pt3(hix, hiy, hiz)}
}

// Dim returns the rectangle's dimensionality.
func (r Rect) Dim() int8 { return r.Lo.Dim }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool {
	for i := 0; i < int(r.Lo.Dim); i++ {
		if r.Hi.C[i] < r.Lo.C[i] {
			return true
		}
	}
	return false
}

// Volume returns the number of points contained in the rectangle.
func (r Rect) Volume() int64 {
	if r.Empty() {
		return 0
	}
	v := int64(1)
	for i := 0; i < int(r.Lo.Dim); i++ {
		v *= r.Hi.C[i] - r.Lo.C[i] + 1
	}
	return v
}

// Contains reports whether point p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	r.Lo.mustMatch(p)
	for i := 0; i < int(p.Dim); i++ {
		if p.C[i] < r.Lo.C[i] || p.C[i] > r.Hi.C[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in every rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Overlaps reports whether the two rectangles share at least one point.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Intersect(s).Empty()
}

// Intersect returns the rectangle common to r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	r.Lo.mustMatch(s.Lo)
	out := r
	for i := 0; i < int(r.Lo.Dim); i++ {
		out.Lo.C[i] = max64(r.Lo.C[i], s.Lo.C[i])
		out.Hi.C[i] = min64(r.Hi.C[i], s.Hi.C[i])
	}
	if out.Empty() {
		return EmptyRect(r.Dim())
	}
	return out
}

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	r.Lo.mustMatch(s.Lo)
	out := r
	for i := 0; i < int(r.Lo.Dim); i++ {
		out.Lo.C[i] = min64(r.Lo.C[i], s.Lo.C[i])
		out.Hi.C[i] = max64(r.Hi.C[i], s.Hi.C[i])
	}
	return out
}

// EmptyRect returns a canonical empty rectangle of the given dimension.
func EmptyRect(dim int8) Rect {
	var r Rect
	r.Lo.Dim, r.Hi.Dim = dim, dim
	for i := 0; i < int(dim); i++ {
		r.Lo.C[i], r.Hi.C[i] = 0, -1
	}
	return r
}

// Index returns the row-major linear offset of p within r. It panics if p
// is outside r; callers index physical instances with it.
func (r Rect) Index(p Point) int64 {
	if !r.Contains(p) {
		panic(fmt.Sprintf("geometry: point %v outside rect %v", p, r))
	}
	idx := int64(0)
	for i := 0; i < int(p.Dim); i++ {
		idx = idx*(r.Hi.C[i]-r.Lo.C[i]+1) + (p.C[i] - r.Lo.C[i])
	}
	return idx
}

// PointAt inverts Index: it returns the point at row-major offset idx.
func (r Rect) PointAt(idx int64) Point {
	p := r.Lo
	for i := int(p.Dim) - 1; i >= 0; i-- {
		extent := r.Hi.C[i] - r.Lo.C[i] + 1
		p.C[i] = r.Lo.C[i] + idx%extent
		idx /= extent
	}
	return p
}

// Each calls fn for every point in the rectangle in row-major order,
// stopping early if fn returns false.
func (r Rect) Each(fn func(Point) bool) {
	if r.Empty() {
		return
	}
	p := r.Lo
	for {
		if !fn(p) {
			return
		}
		// Advance row-major: increment the last coordinate, carrying.
		i := int(p.Dim) - 1
		for ; i >= 0; i-- {
			p.C[i]++
			if p.C[i] <= r.Hi.C[i] {
				break
			}
			p.C[i] = r.Lo.C[i]
		}
		if i < 0 {
			return
		}
	}
}

// String formats the rectangle as lo..hi.
func (r Rect) String() string {
	if r.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%v..%v]", r.Lo, r.Hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
