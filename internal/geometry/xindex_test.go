package geometry

import (
	"math/rand"
	"testing"
)

// xiRandSpaces builds n random 2-D spaces dense enough to push UnionMany and
// ContainsAll past xIndexThreshold, with heavy overlap between spaces.
func xiRandSpaces(rng *rand.Rand, n, rectsPer int) []IndexSpace {
	spaces := make([]IndexSpace, n)
	for i := range spaces {
		rects := make([]Rect, rectsPer)
		for j := range rects {
			lo0, lo1 := rng.Int63n(50), rng.Int63n(50)
			rects[j] = Rect{Lo: Pt2(lo0, lo1), Hi: Pt2(lo0+rng.Int63n(8), lo1+rng.Int63n(8))}
		}
		spaces[i] = FromRects(2, rects)
	}
	return spaces
}

// pointSet materializes a space as a set of points; the reference semantics
// every representation must agree with.
func pointSet(s IndexSpace) map[Point]bool {
	set := make(map[Point]bool)
	s.Each(func(p Point) bool { set[p] = true; return true })
	return set
}

// TestUnionManyIndexedMatchesPointSemantics drives the axis-0-indexed carve
// (span counts above xIndexThreshold) and checks the result against brute
// force point sets, including the pairwise-disjointness invariant.
func TestUnionManyIndexedMatchesPointSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		spaces := xiRandSpaces(rng, 12, 6) // ~72 spans, past the threshold
		got := UnionMany(2, spaces)

		want := make(map[Point]bool)
		for _, sp := range spaces {
			for p := range pointSet(sp) {
				want[p] = true
			}
		}
		gotSet := pointSet(got)
		if len(gotSet) != len(want) {
			t.Fatalf("trial %d: UnionMany has %d points, want %d", trial, len(gotSet), len(want))
		}
		for p := range want {
			if !gotSet[p] {
				t.Fatalf("trial %d: UnionMany missing point %v", trial, p)
			}
		}
		if int64(len(gotSet)) != got.Volume() {
			t.Fatalf("trial %d: spans overlap: Volume()=%d but %d distinct points", trial, got.Volume(), len(gotSet))
		}

		// The indexed path must be representation-identical to the unindexed
		// carve, which small inputs still take: re-run the union one space at
		// a time (each step under the threshold at first) and compare sets.
		acc := EmptyIndexSpace(2)
		for _, sp := range spaces {
			acc = acc.Union(sp)
		}
		if !acc.Equal(got) {
			t.Fatalf("trial %d: UnionMany disagrees with iterated Union", trial)
		}
	}
}

// TestContainsAllIndexedMatchesBruteForce checks the indexed cover test
// against point membership for covering spaces above xIndexThreshold.
func TestContainsAllIndexedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		cover := UnionMany(2, xiRandSpaces(rng, 10, 6))
		if len(cover.Spans()) <= xIndexThreshold {
			t.Fatalf("trial %d: cover has %d spans, need > %d to exercise the index",
				trial, len(cover.Spans()), xIndexThreshold)
		}
		coverSet := pointSet(cover)
		for probe := 0; probe < 8; probe++ {
			q := UnionMany(2, xiRandSpaces(rng, 2, 3))
			want := true
			for p := range pointSet(q) {
				if !coverSet[p] {
					want = false
					break
				}
			}
			if got := cover.ContainsAll(q); got != want {
				t.Fatalf("trial %d probe %d: ContainsAll=%v, brute force says %v", trial, probe, got, want)
			}
		}
		// A subset carved out of the cover itself must always be contained.
		sub := cover.Intersect(NewIndexSpace(Rect{Lo: Pt2(10, 10), Hi: Pt2(40, 40)}))
		if !cover.ContainsAll(sub) {
			t.Fatalf("trial %d: cover does not contain its own intersection", trial)
		}
	}
}
