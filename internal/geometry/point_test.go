package geometry

import "testing"

func TestPointConstructors(t *testing.T) {
	p1 := Pt1(5)
	if p1.Dim != 1 || p1.X() != 5 || p1.Y() != 0 || p1.Z() != 0 {
		t.Errorf("Pt1(5) = %+v", p1)
	}
	p2 := Pt2(3, -4)
	if p2.Dim != 2 || p2.X() != 3 || p2.Y() != -4 {
		t.Errorf("Pt2(3,-4) = %+v", p2)
	}
	p3 := Pt3(1, 2, 3)
	if p3.Dim != 3 || p3.X() != 1 || p3.Y() != 2 || p3.Z() != 3 {
		t.Errorf("Pt3(1,2,3) = %+v", p3)
	}
}

func TestPointAddSub(t *testing.T) {
	a, b := Pt2(1, 2), Pt2(10, 20)
	if got := a.Add(b); got != Pt2(11, 22) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != Pt2(9, 18) {
		t.Errorf("Sub = %v", got)
	}
	// Add must not mutate its receiver.
	if a != Pt2(1, 2) {
		t.Errorf("receiver mutated: %v", a)
	}
}

func TestPointLess(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt2(0, 0), Pt2(0, 1), true},
		{Pt2(0, 1), Pt2(0, 0), false},
		{Pt2(1, 0), Pt2(0, 9), false},
		{Pt2(0, 9), Pt2(1, 0), true},
		{Pt1(3), Pt1(3), false},
		{Pt3(1, 1, 1), Pt3(1, 1, 2), true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPointDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Pt1(0).Add(Pt2(0, 0))
}

func TestPointString(t *testing.T) {
	if s := Pt1(7).String(); s != "<7>" {
		t.Errorf("got %q", s)
	}
	if s := Pt2(7, 8).String(); s != "<7,8>" {
		t.Errorf("got %q", s)
	}
	if s := Pt3(7, 8, 9).String(); s != "<7,8,9>" {
		t.Errorf("got %q", s)
	}
}
