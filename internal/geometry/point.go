// Package geometry provides the index-space geometry underlying logical
// regions: points, rectangles, dense and sparse index spaces, and the
// acceleration structures (interval trees and bounding-volume hierarchies)
// used by the control replication compiler's shallow-intersection phase.
//
// All coordinates are int64. Points and rectangles carry an explicit
// dimensionality from 1 to 3; a rectangle's bounds are inclusive on both
// ends, matching Legion's convention.
package geometry

import "fmt"

// MaxDim is the maximum supported dimensionality of an index space.
const MaxDim = 3

// Point is a point in a 1-, 2- or 3-dimensional integer index space.
// Coordinates beyond Dim must be zero so that equality on the struct is
// equality on the point.
type Point struct {
	C   [MaxDim]int64
	Dim int8
}

// Pt1 returns a 1-D point.
func Pt1(x int64) Point { return Point{C: [MaxDim]int64{x, 0, 0}, Dim: 1} }

// Pt2 returns a 2-D point.
func Pt2(x, y int64) Point { return Point{C: [MaxDim]int64{x, y, 0}, Dim: 2} }

// Pt3 returns a 3-D point.
func Pt3(x, y, z int64) Point { return Point{C: [MaxDim]int64{x, y, z}, Dim: 3} }

// X returns the first coordinate.
func (p Point) X() int64 { return p.C[0] }

// Y returns the second coordinate (zero for 1-D points).
func (p Point) Y() int64 { return p.C[1] }

// Z returns the third coordinate (zero for 1-D and 2-D points).
func (p Point) Z() int64 { return p.C[2] }

// Add returns the coordinate-wise sum of p and q. The points must have the
// same dimensionality.
func (p Point) Add(q Point) Point {
	p.mustMatch(q)
	for i := 0; i < int(p.Dim); i++ {
		p.C[i] += q.C[i]
	}
	return p
}

// Sub returns the coordinate-wise difference of p and q.
func (p Point) Sub(q Point) Point {
	p.mustMatch(q)
	for i := 0; i < int(p.Dim); i++ {
		p.C[i] -= q.C[i]
	}
	return p
}

// Less reports whether p precedes q in lexicographic order. The points must
// have the same dimensionality.
func (p Point) Less(q Point) bool {
	p.mustMatch(q)
	for i := 0; i < int(p.Dim); i++ {
		if p.C[i] != q.C[i] {
			return p.C[i] < q.C[i]
		}
	}
	return false
}

// String formats the point as <x>, <x,y> or <x,y,z>.
func (p Point) String() string {
	switch p.Dim {
	case 1:
		return fmt.Sprintf("<%d>", p.C[0])
	case 2:
		return fmt.Sprintf("<%d,%d>", p.C[0], p.C[1])
	default:
		return fmt.Sprintf("<%d,%d,%d>", p.C[0], p.C[1], p.C[2])
	}
}

func (p Point) mustMatch(q Point) {
	if p.Dim != q.Dim {
		panic(fmt.Sprintf("geometry: dimension mismatch %d vs %d", p.Dim, q.Dim))
	}
}
