package geometry

import "sort"

// BVHEntry is a rectangle with an opaque identifier, the element of a BVH.
type BVHEntry struct {
	Rect Rect
	ID   int
}

// BVH is a static bounding-volume hierarchy over rectangles, supporting
// overlap queries. It is the acceleration structure the paper uses for the
// shallow-intersection phase on structured (multi-dimensional) regions
// (§3.3).
type BVH struct {
	root *bvhNode
	size int
}

type bvhNode struct {
	bounds      Rect
	left, right *bvhNode
	leaves      []BVHEntry // non-nil only at leaf nodes
}

// bvhLeafSize is the maximum number of entries stored in a leaf.
const bvhLeafSize = 8

// NewBVH builds a BVH over the given entries. Entries with empty
// rectangles are ignored.
func NewBVH(entries []BVHEntry) *BVH {
	valid := make([]BVHEntry, 0, len(entries))
	for _, e := range entries {
		if !e.Rect.Empty() {
			valid = append(valid, e)
		}
	}
	b := &BVH{size: len(valid)}
	if len(valid) > 0 {
		b.root = buildBVH(valid)
	}
	return b
}

// Len returns the number of entries in the hierarchy.
func (b *BVH) Len() int { return b.size }

func buildBVH(entries []BVHEntry) *bvhNode {
	n := &bvhNode{bounds: EmptyRect(entries[0].Rect.Dim())}
	for _, e := range entries {
		n.bounds = n.bounds.Union(e.Rect)
	}
	if len(entries) <= bvhLeafSize {
		n.leaves = entries
		return n
	}
	// Split on the widest axis of the bounding box at the median center.
	axis, widest := 0, int64(-1)
	for i := 0; i < int(n.bounds.Dim()); i++ {
		w := n.bounds.Hi.C[i] - n.bounds.Lo.C[i]
		if w > widest {
			widest, axis = w, i
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Lo.C[axis] + entries[i].Rect.Hi.C[axis]
		cj := entries[j].Rect.Lo.C[axis] + entries[j].Rect.Hi.C[axis]
		return ci < cj
	})
	mid := len(entries) / 2
	n.left = buildBVH(entries[:mid])
	n.right = buildBVH(entries[mid:])
	return n
}

// Query appends to dst the IDs of all entries whose rectangles overlap q
// and returns the extended slice.
func (b *BVH) Query(q Rect, dst []int) []int {
	if b.root == nil || q.Empty() {
		return dst
	}
	return queryBVH(b.root, q, dst)
}

func queryBVH(n *bvhNode, q Rect, dst []int) []int {
	if !n.bounds.Overlaps(q) {
		return dst
	}
	if n.leaves != nil {
		for _, e := range n.leaves {
			if e.Rect.Overlaps(q) {
				dst = append(dst, e.ID)
			}
		}
		return dst
	}
	dst = queryBVH(n.left, q, dst)
	return queryBVH(n.right, q, dst)
}
