package verify

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/progtest"
)

// livenessFixtures compiles the example programs the liveness suite runs
// over: the paper's Figure 2 stencil, the region-reduction program, and the
// scalar-sum program, each at a multi-shard count.
func livenessFixtures(t *testing.T, sync cr.SyncMode) map[string]*cr.Compiled {
	t.Helper()
	f2 := progtest.NewFigure2(48, 8, 3)
	rr := progtest.NewRegionReduce(24, 4, 3)
	ss := progtest.NewScalarSum(32, 4)
	return map[string]*cr.Compiled{
		"figure2":      compile(t, f2.Prog, f2.Loop, 4, sync),
		"regionreduce": compile(t, rr.Prog, rr.Loop, 3, sync),
		"scalarsum":    compile(t, ss.Prog, findLoops(ss.Prog)[0], 2, sync),
	}
}

// TestLivenessFixtures: every fixture compilation must be certified
// deadlock-free under both lowerings — zero false positives on correct
// schedules.
func TestLivenessFixtures(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range livenessFixtures(t, sync) {
			a, err := Analyze(c)
			if err != nil {
				t.Fatalf("%s %v: %v", name, sync, err)
			}
			rep := a.CheckLiveness()
			if rep.Pass != "liveness" {
				t.Errorf("%s %v: report pass %q, want liveness", name, sync, rep.Pass)
			}
			if !rep.OK() {
				for _, f := range rep.Findings {
					t.Errorf("%s %v false positive: %s", name, sync, f)
				}
			}
			if rep.Stats.Nodes == 0 {
				t.Errorf("%s %v: empty wait-for graph; the check is vacuous", name, sync)
			}
		}
	}
}

// TestLivenessMutationHarness: every sync miswiring the harness enumerates
// must be detected (100%), and every finding a mutated schedule produces
// must name the mutated copy with a kind the mutation predicts.
func TestLivenessMutationHarness(t *testing.T) {
	total := 0
	kinds := map[string]int{}
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range livenessFixtures(t, sync) {
			a, err := Analyze(c)
			if err != nil {
				t.Fatalf("%s %v: %v", name, sync, err)
			}
			for _, m := range a.LivenessMutations() {
				total++
				rep := a.CheckLivenessMutated(m)
				if rep.OK() {
					t.Errorf("%s %v: missed mutation %s", name, sync, m.Name)
					continue
				}
				for _, f := range rep.Findings {
					kinds[f.Kind]++
					if !m.Covers(f) {
						t.Errorf("%s %v: mutation %s produced unrelated finding: %s", name, sync, m.Name, f)
					}
					ok := false
					for _, k := range m.Kinds {
						if f.Kind == k {
							ok = true
						}
					}
					if !ok {
						t.Errorf("%s %v: mutation %s (kinds %v) produced kind %q: %s", name, sync, m.Name, m.Kinds, f.Kind, f)
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no liveness mutations enumerated; the harness is vacuous")
	}
	// The harness must exercise both failure modes: wait cycles (p2p
	// inversions, barrier swaps, chain inversions) and barrier phase-count
	// mismatches (skipped arrivals).
	if kinds["cycle"] == 0 || kinds["phase-mismatch"] == 0 {
		t.Errorf("mutation findings cover kinds %v; want both cycle and phase-mismatch", kinds)
	}
}

// TestLivenessCycleWitness: a detected cycle must come with a concrete
// witness — the cycle path in wait order, closed (first == last), naming
// the sync events involved.
func TestLivenessCycleWitness(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	c := compile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	var m *LivenessMutation
	for _, cand := range a.LivenessMutations() {
		if strings.HasPrefix(cand.Name, "invert-prod-sync") {
			cand := cand
			m = &cand
			break
		}
	}
	if m == nil {
		t.Fatal("no invert-prod-sync mutation on figure2 p2p")
	}
	rep := a.CheckLivenessMutated(*m)
	if rep.OK() {
		t.Fatalf("mutation %s not detected", m.Name)
	}
	found := false
	for _, fd := range rep.Findings {
		if fd.Kind != "cycle" {
			continue
		}
		found = true
		if len(fd.Cycle) < 3 {
			t.Errorf("cycle witness too short: %v", fd.Cycle)
			continue
		}
		if fd.Cycle[0] != fd.Cycle[len(fd.Cycle)-1] {
			t.Errorf("cycle witness not closed: starts %+v ends %+v", fd.Cycle[0], fd.Cycle[len(fd.Cycle)-1])
		}
		if fd.Detail == "" {
			t.Error("cycle finding has no rendered detail")
		}
	}
	if !found {
		t.Errorf("no cycle finding among %d findings", len(rep.Findings))
	}
}

// TestLivenessRandomPrograms extends the randomized suite to the liveness
// pass: every random program's compilation must be deadlock-free under both
// lowerings, and every enumerated miswiring must be detected.
func TestLivenessRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog, _, _ := progtest.RandomProgram(seed)
			for li, loop := range findLoops(prog) {
				for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
					c := compile(t, prog, loop, 3, sync)
					a, err := Analyze(c)
					if err != nil {
						t.Fatalf("loop %d %v: %v", li, sync, err)
					}
					if rep := a.CheckLiveness(); !rep.OK() {
						for _, f := range rep.Findings {
							t.Errorf("loop %d %v false positive: %s", li, sync, f)
						}
					}
					for _, m := range a.LivenessMutations() {
						if rep := a.CheckLivenessMutated(m); rep.OK() {
							t.Errorf("loop %d %v: missed mutation %s", li, sync, m.Name)
						}
					}
				}
			}
		})
	}
}
