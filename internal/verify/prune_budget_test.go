package verify

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/progtest"
	"repro/internal/spmd"
)

// TestPruneCertificationBudget pins the certification count of PlanPrune
// at a scale where acceptance is fine-grained (half of figure2's war
// slots prune at 64 shards). The analytic war proposal must keep the
// count at a handful of certifications — one per round plus the sampled
// all-reject batches — not the O(accepted-candidates) bisection cost
// (~275 certifications here) that made -prune unaffordable at the
// 1024-shard end of the weak-scaling sweep.
func TestPruneCertificationBudget(t *testing.T) {
	const n = 64
	f := progtest.NewFigure2(int64(n)*64, int64(n), 3)
	plans, err := spmd.CompileAll(f.Prog, cr.Options{NumShards: n, Sync: cr.PointToPoint})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range plans {
		certifyCalls = 0
		info, rep, err := PlanPrune(plan)
		if err != nil || !rep.OK() {
			t.Fatalf("prune failed: %v %v", err, rep)
		}
		if info.PrunedWar() == 0 {
			t.Fatalf("no wars pruned at %d shards; the budget test is vacuous", n)
		}
		if rep.Counters["sync_edges_after"] >= rep.Counters["sync_edges_before"] {
			t.Fatalf("sync edges not reduced: %d -> %d",
				rep.Counters["sync_edges_before"], rep.Counters["sync_edges_after"])
		}
		if certifyCalls > 20 {
			t.Errorf("PlanPrune used %d certifications for %d pruned wars; want <= 20 (the analytic proposal should accept the bulk in rounds)",
				certifyCalls, info.PrunedWar())
		}
	}
}
