package verify

// Aggregation certification: the license for -agg, exactly as PlanPrune is
// the license for -prune. Coalescing rewrites the exchange schedule — one
// merged message per (producing shard, destination shard) group per
// exchange phase instead of one message per pair — so the compiled
// aggregation tables (cr.SpecTable.Phases/PhaseOf) are certified two ways:
//
//  1. Structurally: CheckAggTables recomputes the phase boundaries (the
//     conflict cut) and every shard's group tables (the destination
//     binning and the fold-chain split) from the pair lists and the
//     ownership map alone, and diffs them against the compiler's. Member
//     ORDER is part of the contract — the merged body runs member writes
//     in slice order to stay bitwise-equal with the unaggregated run — so
//     any permutation, drop, duplication, or rebinding diverges.
//
//  2. Dynamically (but statically checked): AnalyzeAgg rebuilds the
//     happens-before graph of the AGGREGATED schedule — a symbolic replay
//     of spmd.doPhaseP2PAgg / doPhaseBarrierAgg, mirroring them op for op
//     the way graph.go mirrors the unaggregated executor — and the race
//     and liveness passes re-run over it. A merged message is modeled as
//     a linear cluster of per-member copy nodes m_1 -> ... -> m_n: the
//     chain encodes the merged body's in-order member writes, every
//     precondition (member wars, source validity, external fold-chain
//     links, phase barriers) enters the head, and the single completion
//     is the tail (all member done events trigger together when the
//     message completes). Per-member nodes keep conflict orientation,
//     witnesses, and mutation attribution exact, while the cluster shape
//     keeps the merged message's atomicity: nothing transfers before all
//     preconditions, everything completes together.
//
// The mutation harness corrupts both layers — group membership through the
// tables (AggTableMutations-style corruption in the tests), merged
// preconditions through labeled edge deletion (AggMutations) and wait-for
// rewiring (the shared LivenessMutations) — and demands 100% detection.

import (
	"fmt"
	"strings"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/region"
)

// AnalyzeAgg builds the conflict set and happens-before graph of the
// aggregated schedule — the schedule the executor runs under -agg.
// Aggregation does not compose with certified sync pruning (the engine
// rejects the combination), so a plan carrying prune info is refused here
// too rather than certified against the wrong schedule.
func AnalyzeAgg(c *cr.Compiled) (*Analysis, error) {
	if c == nil {
		return nil, fmt.Errorf("verify: nil compiled loop")
	}
	if c.Prune != nil {
		return nil, fmt.Errorf("verify: copy aggregation does not compose with certified sync pruning; certify one rewrite at a time")
	}
	if err := aggTablesWellFormed(c); err != nil {
		return nil, err
	}
	b := newBuilder(c)
	b.agg = true
	g, accs := b.build()
	confs, insts := enumerateConflicts(g, accs)
	return &Analysis{c: c, g: g, conflicts: confs, insts: insts, accesses: len(accs)}, nil
}

// aggTablesWellFormed bounds-checks the aggregation tables so the symbolic
// replay cannot index out of range on corrupted input. Semantic divergence
// is CheckAggTables' job; this only guards the replay itself.
func aggTablesWellFormed(c *cr.Compiled) error {
	spec := &c.Spec
	if len(spec.PhaseOf) != len(c.Body) {
		return fmt.Errorf("verify: PhaseOf has %d entries for a %d-op body", len(spec.PhaseOf), len(c.Body))
	}
	for i, pi := range spec.PhaseOf {
		if pi >= len(spec.Phases) {
			return fmt.Errorf("verify: PhaseOf[%d] = %d outside the %d phases", i, pi, len(spec.Phases))
		}
	}
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		if ph.Start < 0 || ph.End > len(c.Body) || ph.Start >= ph.End {
			return fmt.Errorf("verify: phase %d spans [%d,%d) outside the %d-op body", pi, ph.Start, ph.End, len(c.Body))
		}
		for s := range ph.ByShard {
			for gi := range ph.ByShard[s] {
				for _, mem := range ph.ByShard[s][gi].Members {
					if int(mem.Op) < 0 || int(mem.Op) >= len(c.Body) || c.Body[mem.Op].Copy == nil {
						return fmt.Errorf("verify: phase %d shard %d group %d member names body op %d, not a copy", pi, s, gi, mem.Op)
					}
					if cp := c.Body[mem.Op].Copy; int(mem.Pair) < 0 || int(mem.Pair) >= len(cp.Pairs) {
						return fmt.Errorf("verify: phase %d shard %d group %d member pair %d outside copy %d's %d pairs", pi, s, gi, mem.Pair, cp.ID, len(cp.Pairs))
					}
				}
			}
		}
	}
	return nil
}

// doPhaseP2PAgg symbolically replays spmd.(*shard).doPhaseP2PAgg: the
// consumer side of every phase op runs first, op by op in body order, with
// the unaggregated per-pair war/done structure intact (consumers are
// oblivious to producer batching); then each aggregation group issues one
// merged message — a member-node cluster gated on every member's war,
// source validity, and external fold-chain link, whose tail triggers every
// member's done.
func (b *builder) doPhaseP2PAgg(phIdx int, iter int32, seed func(*symState)) {
	g, c := b.g, b.c
	ph := &c.Spec.Phases[phIdx]

	warN := make(map[cr.AggPair]nodeID)
	doneN := make(map[cr.AggPair]nodeID)
	for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
		cp := c.Body[opIdx].Copy
		for _, gr := range groups(cp) {
			start, end := gr[0], gr[1]
			dstCol := cp.Pairs[start].Dst
			consShard := b.shardOf(dstCol)
			s := b.state(instRef{part: cp.Dst, color: dstCol})
			seed(s)
			release := append(append([]nodeID(nil), s.readers...), s.lastWrite...)
			newWrites := append([]nodeID(nil), s.lastWrite...)
			for k := start; k < end; k++ {
				w := g.add(node{kind: kWar, iter: iter, body: int32(opIdx), sub: int32(k), copyID: int32(cp.ID), color: dstCol, shard: consShard})
				for _, r := range release {
					g.ledge(r, w, EdgeID{Class: EdgeWAR, Copy: cp.ID, Pair: k})
				}
				warN[cr.AggPair{Op: int32(opIdx), Pair: int32(k)}] = w
				d := g.add(node{kind: kDone, iter: iter, body: int32(opIdx), sub: int32(k), copyID: int32(cp.ID), color: dstCol, shard: consShard})
				doneN[cr.AggPair{Op: int32(opIdx), Pair: int32(k)}] = d
				newWrites = append(newWrites, d)
				b.opsOf[consShard] = append(b.opsOf[consShard], d)
			}
			s.lastWrite = newWrites
			s.readers = s.readers[:0]
		}
	}

	for sh := range ph.ByShard {
		for gi := range ph.ByShard[sh] {
			grp := &ph.ByShard[sh][gi]
			head, tail := b.aggCluster(grp, int32(sh), iter)
			if head < 0 {
				continue
			}
			for _, mem := range grp.Members {
				cp := c.Body[mem.Op].Copy
				k := int(mem.Pair)
				if w, ok := warN[mem]; ok {
					g.edge(w, head)
				}
				b.aggSrcPre(cp, k, head, tail, seed)
				if cp.Reduce != region.ReduceNone && cr.AggChainExternal(cp, c.Spec.Ops[mem.Op].Copy, k) {
					if d, ok := doneN[cr.AggPair{Op: mem.Op, Pair: mem.Pair - 1}]; ok {
						g.ledge(d, head, EdgeID{Class: EdgeChain, Copy: cp.ID, Pair: k})
					}
				}
			}
			// Completion fan-out: the whole message completes at once, so
			// every member's done fires off the tail.
			for _, mem := range grp.Members {
				cp := c.Body[mem.Op].Copy
				if d, ok := doneN[mem]; ok {
					g.ledge(tail, d, EdgeID{Class: EdgeDone, Copy: cp.ID, Pair: int(mem.Pair)})
					b.opsOf[sh] = append(b.opsOf[sh], d)
				}
			}
		}
	}
}

// doPhaseBarrierAgg symbolically replays spmd.(*shard).doPhaseBarrierAgg:
// every phase op's first barrier collects arrivals up front (without
// threading one op's exit barrier into the next op's entry), the merged
// messages wait ALL the phase's first barriers plus source validity and
// external chains, and every op's second barrier waits the whole phase's
// merged completions — over-synchronized relative to the unaggregated
// lowering, but only ever tighter. Reduce members still trigger their
// per-pair done events, the carrier of cross-shard fold order.
func (b *builder) doPhaseBarrierAgg(phIdx int, iter int32, seed func(*symState)) {
	g, c := b.g, b.c
	ph := &c.Spec.Phases[phIdx]
	ns := c.Opts.NumShards

	b1s := make([]nodeID, 0, ph.End-ph.Start)
	for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
		cp := c.Body[opIdx].Copy
		b1 := g.add(node{kind: kBarrier, iter: iter, body: int32(opIdx), sub: 0, copyID: int32(cp.ID), shard: -1})
		g.arrivals = append(g.arrivals, barrierArrival{b: b1, copyID: int32(cp.ID), iter: iter, phase: 0, got: ns, want: ns})
		arrive1 := EdgeID{Class: EdgeBarrier, Copy: cp.ID, Pair: 0}
		for _, ops := range b.opsOf {
			for _, n := range ops {
				g.ledge(n, b1, arrive1)
			}
		}
		for _, gr := range groups(cp) {
			dstCol := cp.Pairs[gr[0]].Dst
			s := b.state(instRef{part: cp.Dst, color: dstCol})
			seed(s)
			for _, n := range s.lastWrite {
				g.ledge(n, b1, arrive1)
			}
			for _, n := range s.readers {
				g.ledge(n, b1, arrive1)
			}
		}
		b1s = append(b1s, b1)
	}

	// Per-pair done events exist for every reduce pair (the sync slots the
	// executor allocates); only members the tables name get triggers, so a
	// dropped member surfaces as a never-triggered event, not silence.
	doneN := make(map[cr.AggPair]nodeID)
	for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
		cp := c.Body[opIdx].Copy
		if cp.Reduce == region.ReduceNone {
			continue
		}
		for k, pr := range cp.Pairs {
			d := g.add(node{kind: kDone, iter: iter, body: int32(opIdx), sub: int32(k), copyID: int32(cp.ID), color: pr.Dst, shard: b.shardOf(pr.Src)})
			doneN[cr.AggPair{Op: int32(opIdx), Pair: int32(k)}] = d
		}
	}

	var copyEvs []nodeID
	for sh := range ph.ByShard {
		for gi := range ph.ByShard[sh] {
			grp := &ph.ByShard[sh][gi]
			head, tail := b.aggCluster(grp, int32(sh), iter)
			if head < 0 {
				continue
			}
			for _, b1 := range b1s {
				g.edge(b1, head)
			}
			for _, mem := range grp.Members {
				cp := c.Body[mem.Op].Copy
				k := int(mem.Pair)
				b.aggSrcPre(cp, k, head, tail, seed)
				if cp.Reduce == region.ReduceNone {
					continue
				}
				if cr.AggChainExternal(cp, c.Spec.Ops[mem.Op].Copy, k) {
					if d, ok := doneN[cr.AggPair{Op: mem.Op, Pair: mem.Pair - 1}]; ok {
						g.ledge(d, head, EdgeID{Class: EdgeChain, Copy: cp.ID, Pair: k})
					}
				}
				if d, ok := doneN[mem]; ok {
					g.ledge(tail, d, EdgeID{Class: EdgeDone, Copy: cp.ID, Pair: k})
				}
			}
			copyEvs = append(copyEvs, tail)
		}
	}

	for oi, opIdx := 0, ph.Start; opIdx < ph.End; oi, opIdx = oi+1, opIdx+1 {
		cp := c.Body[opIdx].Copy
		b2 := g.add(node{kind: kBarrier, iter: iter, body: int32(opIdx), sub: 1, copyID: int32(cp.ID), shard: -1})
		g.arrivals = append(g.arrivals, barrierArrival{b: b2, copyID: int32(cp.ID), iter: iter, phase: 1, got: ns, want: ns})
		arrive2 := EdgeID{Class: EdgeBarrier, Copy: cp.ID, Pair: 1}
		for _, ev := range copyEvs {
			g.ledge(ev, b2, arrive2)
		}
		g.ledge(b1s[oi], b2, arrive2)
		for _, gr := range groups(cp) {
			dstCol := cp.Pairs[gr[0]].Dst
			s := b.state(instRef{part: cp.Dst, color: dstCol})
			s.lastWrite = append(s.lastWrite, b2)
			s.readers = s.readers[:0]
		}
		for sh := range b.opsOf {
			b.opsOf[sh] = append(b.opsOf[sh], b2)
		}
	}
}

// aggCluster adds one merged message as a linear cluster of per-member
// copy nodes: m_1 -> ... -> m_n in capture order (the merged body's write
// order), each recording its own source read and destination write. The
// head receives the group's merged preconditions (wired by the caller per
// lowering), the tail is the message completion. Returns (-1, -1) for an
// empty group.
func (b *builder) aggCluster(grp *cr.AggGroup, prodShard, iter int32) (head, tail nodeID) {
	g, c := b.g, b.c
	head, tail = -1, -1
	for _, mem := range grp.Members {
		cp := c.Body[mem.Op].Copy
		pr := cp.Pairs[mem.Pair]
		mn := g.add(node{kind: kCopy, iter: iter, body: mem.Op, sub: mem.Pair, copyID: int32(cp.ID), color: pr.Dst, shard: prodShard})
		if tail >= 0 {
			g.edge(tail, mn)
		} else {
			head = mn
		}
		tail = mn
		if cp.Reduce == region.ReduceNone {
			b.record(mn, instRef{part: cp.Src, color: pr.Src}, cp.Fields, pr.Overlap, false)
		} else {
			b.record(mn, instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src}, cp.Fields, pr.Overlap, false)
		}
		b.record(mn, instRef{part: cp.Dst, color: pr.Dst}, cp.Fields, pr.Overlap, true)
	}
	return head, tail
}

// aggSrcPre wires one member's source-validity precondition into the
// cluster head and registers the message completion (the tail) as a reader
// of the source instance, mirroring the executor's
// `pres += srcState.lastWrite; srcState.readers += ev`.
func (b *builder) aggSrcPre(cp *cr.CopyOp, k int, head, tail nodeID, seed func(*symState)) {
	pr := cp.Pairs[k]
	var s *symState
	if cp.Reduce == region.ReduceNone {
		s = b.state(instRef{part: cp.Src, color: pr.Src})
	} else {
		s = b.state(instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src})
	}
	seed(s)
	b.edgesFrom(s.lastWrite, head)
	s.readers = append(s.readers, tail)
}

// CheckAggTables validates the compiler's aggregation tables against an
// independent recomputation from the pair lists and the ownership map
// (c.ShardOf) — deliberately NOT from the CopySpec work lists the compiler
// itself binned from, so a corruption of either layer diverges. Recomputed
// from first principles:
//
//   - phase boundaries: maximal runs of consecutive copy ops whose source
//     and destination partitions are pairwise disjoint (the conflict cut:
//     dst/dst, src-reads-earlier-dst, dst-overwrites-earlier-src all end
//     the run), with PhaseOf consistent;
//   - group binning: each shard's produced pairs walked in issue order
//     (phase ops in body order, destination runs in pair order, producer
//     pairs ascending), binned by the destination color's owning shard;
//   - the fold-chain split: a reduce member whose chain predecessor is
//     produced by another shard starts a new group, keeping every merged
//     message's chain run contiguous and the message-level wait graph
//     acyclic;
//   - member order: exactly the unaggregated issue order, the contract
//     that makes the merged body's in-order writes bitwise-equal.
func CheckAggTables(c *cr.Compiled) error {
	if c == nil {
		return fmt.Errorf("verify: nil compiled loop")
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	spec := &c.Spec
	want, wantOf := recomputeAggPhases(c)

	if len(spec.PhaseOf) != len(c.Body) {
		fail("PhaseOf has %d entries, want one per body op (%d)", len(spec.PhaseOf), len(c.Body))
	} else {
		for i := range wantOf {
			if spec.PhaseOf[i] != wantOf[i] {
				fail("PhaseOf[%d] = %d, want %d: phase assignment diverges from recomputation", i, spec.PhaseOf[i], wantOf[i])
			}
		}
	}
	if len(spec.Phases) != len(want) {
		fail("%d phases, want %d: phase boundaries diverge from recomputation", len(spec.Phases), len(want))
	} else {
		for pi := range want {
			got, wph := &spec.Phases[pi], &want[pi]
			if got.Start != wph.Start || got.End != wph.End {
				fail("phase %d spans [%d,%d), want [%d,%d): phase boundary diverges — merging across the conflict cut deadlocks the merged message against its own synchronization", pi, got.Start, got.End, wph.Start, wph.End)
				continue
			}
			if len(got.ByShard) != len(wph.ByShard) {
				fail("phase %d has group tables for %d shards, want %d", pi, len(got.ByShard), len(wph.ByShard))
				continue
			}
			for s := range wph.ByShard {
				if !aggGroupsEqual(got.ByShard[s], wph.ByShard[s]) {
					fail("phase %d shard %d group membership diverges from recomputation (destination binding, fold-chain split, or member order):\n    got  %s\n    want %s",
						pi, s, fmtAggGroups(got.ByShard[s]), fmtAggGroups(wph.ByShard[s]))
				}
			}
		}
	}

	if len(errs) > 0 {
		return fmt.Errorf("verify: aggregation tables diverge from recomputation (%d findings):\n  %s",
			len(errs), strings.Join(errs, "\n  "))
	}
	return nil
}

// recomputeAggPhases rebuilds the exchange phases and group tables from
// the pair lists and c.ShardOf alone.
func recomputeAggPhases(c *cr.Compiled) ([]cr.AggPhase, []int) {
	ns := c.Opts.NumShards
	phaseOf := make([]int, len(c.Body))
	for i := range phaseOf {
		phaseOf[i] = -1
	}
	var phases []cr.AggPhase
	i := 0
	for i < len(c.Body) {
		if c.Body[i].Copy == nil {
			i++
			continue
		}
		j := i
		var srcs, dsts []region.PartitionID
		for j < len(c.Body) && c.Body[j].Copy != nil {
			cp := c.Body[j].Copy
			s, d := cp.Src.ID(), cp.Dst.ID()
			conflict := false
			for _, pd := range dsts {
				if d == pd || s == pd {
					conflict = true
				}
			}
			for _, ps := range srcs {
				if d == ps {
					conflict = true
				}
			}
			if conflict {
				break
			}
			srcs = append(srcs, s)
			dsts = append(dsts, d)
			j++
		}
		ph := cr.AggPhase{Start: i, End: j, ByShard: make([][]cr.AggGroup, ns)}
		for s := 0; s < ns; s++ {
			touched := map[int32]int{}
			for op := i; op < j; op++ {
				cp := c.Body[op].Copy
				reduce := cp.Reduce != region.ReduceNone
				for _, gr := range groups(cp) {
					for k := gr[0]; k < gr[1]; k++ {
						if c.ShardOf[cp.Pairs[k].Src] != s {
							continue
						}
						dst := int32(c.ShardOf[cp.Pairs[k].Dst])
						chainExt := k > 0 && cp.Pairs[k-1].Dst == cp.Pairs[k].Dst &&
							c.ShardOf[cp.Pairs[k-1].Src] != c.ShardOf[cp.Pairs[k].Src]
						gi, ok := touched[dst]
						if !ok || (reduce && chainExt) {
							ph.ByShard[s] = append(ph.ByShard[s], cr.AggGroup{DstShard: dst})
							gi = len(ph.ByShard[s]) - 1
							touched[dst] = gi
						}
						g := &ph.ByShard[s][gi]
						g.Members = append(g.Members, cr.AggPair{Op: int32(op), Pair: int32(k)})
					}
				}
			}
		}
		for op := i; op < j; op++ {
			phaseOf[op] = len(phases)
		}
		phases = append(phases, ph)
		i = j
	}
	return phases, phaseOf
}

func aggGroupsEqual(a, b []cr.AggGroup) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DstShard != b[i].DstShard || len(a[i].Members) != len(b[i].Members) {
			return false
		}
		for m := range a[i].Members {
			if a[i].Members[m] != b[i].Members[m] {
				return false
			}
		}
	}
	return true
}

func fmtAggGroups(gs []cr.AggGroup) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, g := range gs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "->%d{", g.DstShard)
		for m, mem := range g.Members {
			if m > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d/%d", mem.Op, mem.Pair)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(']')
	return sb.String()
}

// CheckAgg certifies one compiled loop's aggregation: the table
// recomputation, then liveness and the race check over the rebuilt
// aggregated happens-before graph. Liveness runs first — a corrupted
// grouping can deadlock the merged schedule, and the race pass's
// reachability closure requires an acyclic graph — and the race pass is
// skipped (its absence is not a pass) when a wait cycle is found.
func CheckAgg(c *cr.Compiled) (*Report, error) {
	rep := &Report{Pass: "agg", Findings: []Finding{}}
	if err := CheckAggTables(c); err != nil {
		rep.Findings = append(rep.Findings, Finding{Kind: "agg-table", Detail: err.Error()})
	}
	a, err := AnalyzeAgg(c)
	if err != nil {
		if len(rep.Findings) > 0 {
			// Tables too malformed to replay: the structural findings stand.
			return rep, nil
		}
		return nil, err
	}
	live := a.CheckLiveness()
	rep.Findings = append(rep.Findings, live.Findings...)
	cyclic := false
	for _, f := range live.Findings {
		if f.Kind == "cycle" {
			cyclic = true
		}
	}
	if cyclic {
		rep.Stats = live.Stats
	} else {
		races := a.Check()
		rep.Stats = races.Stats
		rep.Findings = append(rep.Findings, races.Findings...)
	}
	rep.Counters = aggCounters(c)
	return rep, nil
}

// aggCounters tallies the static shape of the aggregation: phases, groups
// that actually merge (two or more members), and the per-iteration message
// reduction they license (members beyond the first of every multi-member
// group — the DES's AggSavedMessages counts only the remote subset of
// these, since local groups never crossed the wire to begin with).
func aggCounters(c *cr.Compiled) map[string]int64 {
	var grps, multi, merged int64
	for pi := range c.Spec.Phases {
		for _, gl := range c.Spec.Phases[pi].ByShard {
			for _, g := range gl {
				grps++
				if len(g.Members) > 1 {
					multi++
					merged += int64(len(g.Members) - 1)
				}
			}
		}
	}
	return map[string]int64{
		"phases":              int64(len(c.Spec.Phases)),
		"agg_groups":          grps,
		"multi_member_groups": multi,
		"merged_pairs":        merged,
	}
}

// CheckAggAll certifies every compiled loop of a plan map, merging the
// reports in program order (the VerifyAll pattern).
func CheckAggAll(prog *ir.Program, plans map[*ir.Loop]*cr.Compiled) (*Report, error) {
	merged := &Report{Pass: "agg", Findings: []Finding{}, Counters: map[string]int64{}}
	for _, s := range prog.Stmts {
		loop, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		plan, ok := plans[loop]
		if !ok {
			continue
		}
		rep, err := CheckAgg(plan)
		if err != nil {
			return nil, err
		}
		merged.Stats.Nodes += rep.Stats.Nodes
		merged.Stats.Edges += rep.Stats.Edges
		merged.Stats.Instances += rep.Stats.Instances
		merged.Stats.Accesses += rep.Stats.Accesses
		merged.Stats.Conflicts += rep.Stats.Conflicts
		merged.Stats.CrossShard += rep.Stats.CrossShard
		merged.Stats.Iters += rep.Stats.Iters
		merged.Findings = append(merged.Findings, rep.Findings...)
		for k, v := range rep.Counters {
			merged.Counters[k] += v
		}
	}
	return merged, nil
}

// AggMutation is one simulated aggregation bug in the merged
// preconditions: a set of labeled synchronization edges deleted together
// from the aggregated happens-before graph. Unlike the per-pair Mutation,
// the deletion unit is the whole group's synchronization — within a group
// the per-member sync is partially redundant BY DESIGN (the merged message
// waits the union of member preconditions, so a forgotten member war is
// genuinely covered whenever another member of the same group gates the
// same instance), and only the group-level deletion is guaranteed to strip
// every route.
type AggMutation struct {
	// Name describes the mutation, e.g. "agg-group-sync(phase 0, shard 1,
	// group 2)".
	Name string `json:"name"`
	// Copies are the member copy ops' IDs and Dsts their destination
	// partitions; a finding is attributed to the mutation when it involves
	// any of them (see Covers).
	Copies []int    `json:"copies"`
	Dsts   []string `json:"dsts"`
	// Drop is the edge set handed to Check.
	Drop []EdgeID `json:"drop"`
	// Essential mutations must be detected: the group has a consumed
	// cross-color or reduction member, so no local dependence chain can
	// stand in for the deleted synchronization.
	Essential bool `json:"essential"`
}

// Covers reports whether the finding is attributable to the mutation: a
// witness op of a member copy, or a racing instance of a member's
// destination partition (the collateral-race attribution of
// Mutation.Covers, widened to the group's member set).
func (m AggMutation) Covers(f Finding) bool {
	for _, id := range m.Copies {
		if f.InvolvesCopy(id) {
			return true
		}
	}
	for _, d := range m.Dsts {
		if strings.HasPrefix(f.Instance, d+"[") {
			return true
		}
	}
	return false
}

// AggMutations enumerates the merged-precondition deletions for the
// analyzed aggregated schedule. Under point-to-point sync each aggregation
// group contributes one whole-group sync deletion (every member's war,
// done, and chain edges together — the compiler forgot to wire the merged
// message at all); under barriers each phase op contributes the deletion
// of both its barriers (merged messages wait every phase barrier, so
// dropping one op's pair unprotects exactly that op's destinations).
// Both lowerings additionally contribute chain-only deletions for the
// EXTERNAL fold-chain links — the only chain synchronization that still
// exists under aggregation; internal links are the merged body's in-order
// writes, structure with no sync to forget.
func (a *Analysis) AggMutations() []AggMutation {
	var out []AggMutation
	c := a.c
	spec := &c.Spec
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		if c.Opts.Sync == cr.BarrierSync {
			for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
				cp := c.Body[opIdx].Copy
				for _, m := range a.barrierMutations(cp, opIdx) {
					out = append(out, AggMutation{
						Name:      "agg-" + m.Name,
						Copies:    []int{m.Copy},
						Dsts:      []string{m.Dst},
						Drop:      m.Drop,
						Essential: m.Essential,
					})
				}
			}
		} else {
			for s := range ph.ByShard {
				for gi := range ph.ByShard[s] {
					grp := &ph.ByShard[s][gi]
					var drop []EdgeID
					var copies []int
					var dsts []string
					consumed, crossOrReduce := false, false
					for _, mem := range grp.Members {
						cp := c.Body[mem.Op].Copy
						k := int(mem.Pair)
						drop = append(drop,
							EdgeID{Class: EdgeWAR, Copy: cp.ID, Pair: k},
							EdgeID{Class: EdgeDone, Copy: cp.ID, Pair: k},
							EdgeID{Class: EdgeChain, Copy: cp.ID, Pair: k})
						copies = appendUniqueInt(copies, cp.ID)
						dsts = appendUniqueStr(dsts, cp.Dst.Name())
						if a.laterConsumer(cp, int(mem.Op)) {
							consumed = true
						}
						if cp.Pairs[k].Src != cp.Pairs[k].Dst || cp.Reduce != region.ReduceNone {
							crossOrReduce = true
						}
					}
					out = append(out, AggMutation{
						Name:      fmt.Sprintf("agg-group-sync(phase %d, shard %d, group %d)", pi, s, gi),
						Copies:    copies,
						Dsts:      dsts,
						Drop:      drop,
						Essential: consumed && crossOrReduce,
					})
				}
			}
		}
		for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
			cp := c.Body[opIdx].Copy
			if cp.Reduce == region.ReduceNone {
				continue
			}
			cs := spec.Ops[opIdx].Copy
			for _, gr := range groups(cp) {
				for k := gr[0] + 1; k < gr[1]; k++ {
					if !cr.AggChainExternal(cp, cs, k) {
						continue
					}
					if !cp.Pairs[k-1].Overlap.Overlaps(cp.Pairs[k].Overlap) {
						continue
					}
					out = append(out, AggMutation{
						Name:      fmt.Sprintf("agg-chain(copy %d, pair %d)", cp.ID, k),
						Copies:    []int{cp.ID},
						Dsts:      []string{cp.Dst.Name()},
						Drop:      []EdgeID{{Class: EdgeChain, Copy: cp.ID, Pair: k}},
						Essential: true,
					})
				}
			}
		}
	}
	return out
}

func appendUniqueInt(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

func appendUniqueStr(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
