package verify

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/region"
)

// TestPlanPruneFixtures: the prune pass must certify every fixture, its
// counters must be internally consistent, and the sync-edge count must
// strictly drop exactly when edges were pruned. Figure2 under p2p pins the
// non-vacuity of both prune classes: redundant war edges and dead
// initialization populations exist and are found.
func TestPlanPruneFixtures(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range livenessFixtures(t, sync) {
			info, rep, err := PlanPrune(c)
			if err != nil {
				t.Fatalf("%s %v: %v", name, sync, err)
			}
			if !rep.OK() {
				for _, f := range rep.Findings {
					t.Errorf("%s %v: %s", name, sync, f)
				}
				t.Fatalf("%s %v: prune pass rejected a correct schedule", name, sync)
			}
			if rep.Pass != "prune" {
				t.Errorf("%s %v: report pass %q, want prune", name, sync, rep.Pass)
			}
			cnt := rep.Counters
			if got := cnt["pruned_war"] + cnt["pruned_done"] + cnt["pruned_chain"]; got != cnt["pruned_edges"] {
				t.Errorf("%s %v: pruned_edges=%d but classes sum to %d", name, sync, cnt["pruned_edges"], got)
			}
			before, after := cnt["sync_edges_before"], cnt["sync_edges_after"]
			if cnt["pruned_edges"] > 0 && after >= before {
				t.Errorf("%s %v: pruned %d edges but sync edges %d -> %d (no strict reduction)",
					name, sync, cnt["pruned_edges"], before, after)
			}
			if cnt["pruned_edges"] == 0 && cnt["pruned_init_copies"] == 0 && after != before {
				t.Errorf("%s %v: nothing pruned but sync edges %d -> %d", name, sync, before, after)
			}
			if name == "figure2" && sync == cr.PointToPoint {
				if cnt["pruned_edges"] == 0 {
					t.Error("figure2 p2p: no redundant sync found; the pass is vacuous")
				}
				if cnt["pruned_init_copies"] == 0 || info.PrunedInits() == 0 {
					t.Error("figure2 p2p: no dead init populations found; ghost instances are fully overwritten before every read")
				}
			}
		}
	}
}

// pruneCandidates re-enumerates the prune pass's candidate set for a
// compiled loop: one setter per chain link, per p2p war slot, and per done
// slot that the executor actually materializes.
type pruneCandidate struct {
	name string
	set  func(info *cr.PruneInfo, v bool)
}

func pruneCandidates(c *cr.Compiled) []pruneCandidate {
	var out []pruneCandidate
	for _, op := range c.Body {
		cp := op.Copy
		if cp == nil || len(cp.Pairs) == 0 {
			continue
		}
		n := len(cp.Pairs)
		if cp.Reduce != region.ReduceNone {
			for _, gr := range groups(cp) {
				for k := gr[0] + 1; k < gr[1]; k++ {
					k := k
					out = append(out, pruneCandidate{
						name: "chain",
						set:  func(info *cr.PruneInfo, v bool) { info.SetChain(cp.ID, k, n, v) },
					})
				}
			}
		}
		for k := 0; k < n; k++ {
			k := k
			if c.Opts.Sync == cr.PointToPoint {
				out = append(out, pruneCandidate{
					name: "war",
					set:  func(info *cr.PruneInfo, v bool) { info.SetWar(cp.ID, k, n, v) },
				})
			}
			if c.Opts.Sync == cr.PointToPoint || cp.Reduce != region.ReduceNone {
				out = append(out, pruneCandidate{
					name: "done",
					set:  func(info *cr.PruneInfo, v bool) { info.SetDone(cp.ID, k, n, v) },
				})
			}
		}
	}
	return out
}

// TestPrunedScheduleMinimal: after greedy pruning every surviving candidate
// is essential — additionally pruning any one of them must fail
// re-certification (a race or a liveness defect on the precisely rebuilt
// pruned graph). This is the "minimally sufficient schedule" obligation:
// the detector that licenses pruning also catches every over-prune.
func TestPrunedScheduleMinimal(t *testing.T) {
	checked := 0
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range livenessFixtures(t, sync) {
			info, rep, err := PlanPrune(c)
			if err != nil || !rep.OK() {
				t.Fatalf("%s %v: prune failed: %v %v", name, sync, err, rep.Findings)
			}
			if !certifies(c, info) {
				t.Fatalf("%s %v: shipped prune set does not certify", name, sync)
			}
			for _, cand := range pruneCandidates(c) {
				// Setting the candidate on the shipped info is a no-op (same
				// pruned-edge count) exactly when the greedy pass already
				// accepted it — only survivors get probed.
				beforeCnt := info.PrunedEdges()
				cand.set(info, true)
				if info.PrunedEdges() == beforeCnt {
					continue
				}
				if certifies(c, info) {
					t.Errorf("%s %v: surviving %s candidate is redundant: pruning it still certifies (greedy pass should have taken it)",
						name, sync, cand.name)
				}
				cand.set(info, false)
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no surviving candidates checked; the minimality test is vacuous")
	}
}

// mutationPruned reports whether any of the mutation's dropped edges was
// itself removed by the prune pass — such a mutation no longer models a
// bug the pruned executor could have (the sync does not exist to miswire),
// so the pruned-schedule harness skips it.
func mutationPruned(info *cr.PruneInfo, m Mutation) bool {
	for _, d := range m.Drop {
		switch d.Class {
		case EdgeWAR:
			if info.SkipWar(m.Copy, d.Pair) {
				return true
			}
		case EdgeDone:
			if info.SkipDone(m.Copy, d.Pair) {
				return true
			}
		case EdgeChain:
			if info.SkipChain(m.Copy, d.Pair) {
				return true
			}
		}
	}
	return false
}

// TestPrunedScheduleMutations re-runs both mutation harnesses on the
// *pruned* schedules: deleting any essential sync the pruner kept must
// still be detected (100%), miswiring any kept sync must still deadlock,
// and the clean pruned schedule itself must produce zero findings.
func TestPrunedScheduleMutations(t *testing.T) {
	raceMuts, liveMuts := 0, 0
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range livenessFixtures(t, sync) {
			info, rep, err := PlanPrune(c)
			if err != nil || !rep.OK() {
				t.Fatalf("%s %v: prune failed: %v %v", name, sync, err, rep.Findings)
			}
			a, err := AnalyzePruned(c, info)
			if err != nil {
				t.Fatalf("%s %v: %v", name, sync, err)
			}
			// Zero false positives on the clean pruned schedule.
			if r := a.Check(); !r.OK() {
				for _, f := range r.Findings {
					t.Errorf("%s %v pruned false positive: %s", name, sync, f)
				}
			}
			if r := a.CheckLiveness(); !r.OK() {
				for _, f := range r.Findings {
					t.Errorf("%s %v pruned liveness false positive: %s", name, sync, f)
				}
			}
			// Race harness: essential deletions untouched by pruning must
			// still be caught on the pruned graph (pruning elsewhere never
			// creates new happens-before routes).
			for _, m := range a.Mutations() {
				if !m.Essential || mutationPruned(info, m) {
					continue
				}
				raceMuts++
				r := a.Check(m.Drop...)
				if r.OK() {
					t.Errorf("%s %v pruned: missed essential mutation %s", name, sync, m.Name)
					continue
				}
				for _, f := range r.Findings {
					if !m.Covers(f) {
						t.Errorf("%s %v pruned: mutation %s produced unrelated finding: %s", name, sync, m.Name, f)
					}
				}
			}
			// Liveness harness: enumerated from the pruned graph itself, so
			// every mutation rewires sync that survived pruning.
			for _, m := range a.LivenessMutations() {
				liveMuts++
				if r := a.CheckLivenessMutated(m); r.OK() {
					t.Errorf("%s %v pruned: missed liveness mutation %s", name, sync, m.Name)
				}
			}
		}
	}
	if raceMuts == 0 || liveMuts == 0 {
		t.Fatalf("pruned mutation harness vacuous: %d race, %d liveness mutations", raceMuts, liveMuts)
	}
}
