package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cr"
	"repro/internal/progtest"
)

// TestRandomPrograms extends the randomized cross-engine equivalence suite
// (DESIGN.md §5) to the static checker: every random program's compilation
// must verify clean under both sync lowerings, and deleting one randomly
// chosen essential sync must fail verification with findings attributed to
// the mutated copy.
func TestRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog, _, _ := progtest.RandomProgram(seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			for li, loop := range findLoops(prog) {
				for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
					c := compile(t, prog, loop, 3, sync)
					a, err := Analyze(c)
					if err != nil {
						t.Fatalf("loop %d %v: %v", li, sync, err)
					}
					if rep := a.Check(); !rep.OK() {
						for _, f := range rep.Findings {
							t.Errorf("loop %d %v false positive: %s", li, sync, f)
						}
						t.Fatalf("loop %d %v: clean compilation failed verification", li, sync)
					}
					var essential []Mutation
					for _, m := range a.Mutations() {
						if m.Essential {
							essential = append(essential, m)
						}
					}
					if len(essential) == 0 {
						continue // loop without inserted cross-color sync
					}
					m := essential[rng.Intn(len(essential))]
					rep := a.Check(m.Drop...)
					if rep.OK() {
						t.Errorf("loop %d %v: deleting %s left the schedule verified", li, sync, m.Name)
					}
					for _, f := range rep.Findings {
						if !m.Covers(f) {
							t.Errorf("loop %d %v: mutation %s produced unrelated finding: %s", li, sync, m.Name, f)
						}
					}
				}
			}
		})
	}
}

// TestRandomProgramsAllEssentialMutations is the exhaustive version over a
// smaller seed range: every essential mutation of every loop must be
// detected.
func TestRandomProgramsAllEssentialMutations(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog, _, _ := progtest.RandomProgram(seed)
			for li, loop := range findLoops(prog) {
				for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
					c := compile(t, prog, loop, 3, sync)
					a, err := Analyze(c)
					if err != nil {
						t.Fatalf("loop %d %v: %v", li, sync, err)
					}
					for _, m := range a.Mutations() {
						if !m.Essential {
							continue
						}
						if rep := a.Check(m.Drop...); rep.OK() {
							t.Errorf("loop %d %v: missed essential mutation %s", li, sync, m.Name)
						}
					}
				}
			}
		})
	}
}
