package verify

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/region"
)

// aggFixtures compiles the example programs with aggregation on, at shard
// counts where the exchange phases have multi-member remote groups
// (figure2 at 8 pieces / 4 shards is overdecomposed two-to-one;
// regionreduce at 4 pieces / 3 shards has cross-shard fold chains).
func aggFixtures(t *testing.T, sync cr.SyncMode) map[string]*cr.Compiled {
	t.Helper()
	f2 := progtest.NewFigure2(48, 8, 3)
	rr := progtest.NewRegionReduce(24, 4, 3)
	ss := progtest.NewScalarSum(32, 4)
	return map[string]*cr.Compiled{
		"figure2":      aggCompile(t, f2.Prog, f2.Loop, 4, sync),
		"regionreduce": aggCompile(t, rr.Prog, rr.Loop, 3, sync),
		"scalarsum":    aggCompile(t, ss.Prog, findLoops(ss.Prog)[0], 2, sync),
	}
}

func aggCompile(t *testing.T, prog *ir.Program, loop *ir.Loop, shards int, sync cr.SyncMode) *cr.Compiled {
	t.Helper()
	c, err := cr.Compile(prog, loop, cr.Options{NumShards: shards, Sync: sync, Agg: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// TestCheckAggAccepts: every correct compilation is certified — the table
// recomputation matches and the aggregated happens-before graph passes
// both the race and the liveness pass, under both lowerings. Zero false
// positives on correct aggregation plans.
func TestCheckAggAccepts(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range aggFixtures(t, sync) {
			t.Run(fmt.Sprintf("%s/%v", name, sync), func(t *testing.T) {
				rep, err := CheckAgg(c)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Pass != "agg" {
					t.Errorf("report pass %q, want agg", rep.Pass)
				}
				if !rep.OK() {
					for _, f := range rep.Findings {
						t.Errorf("false positive: %s", f)
					}
				}
				if rep.Stats.Nodes == 0 || rep.Stats.Conflicts == 0 {
					t.Errorf("vacuous certification: %+v", rep.Stats)
				}
				if name == "scalarsum" {
					// Scalar reductions lower without region copies:
					// nothing to coalesce, and CheckAgg must certify the
					// empty aggregation rather than reject it.
					if rep.Counters["phases"] != 0 {
						t.Errorf("scalarsum grew exchange phases: %v", rep.Counters)
					}
					return
				}
				if rep.Counters["phases"] == 0 || rep.Counters["agg_groups"] == 0 {
					t.Errorf("empty aggregation counters: %v", rep.Counters)
				}
				if rep.Counters["multi_member_groups"] == 0 {
					t.Errorf("%s has no multi-member groups; the fixture does not exercise coalescing", name)
				}
			})
		}
	}
}

// TestCheckAggTablesDetectsCorruption: every structural corruption of the
// compiled aggregation tables — membership, order, destination binding,
// phase boundaries — diverges from the independent recomputation.
func TestCheckAggTablesDetectsCorruption(t *testing.T) {
	// firstMulti locates a group with at least two members.
	firstMulti := func(c *cr.Compiled) *cr.AggGroup {
		for pi := range c.Spec.Phases {
			for s := range c.Spec.Phases[pi].ByShard {
				for gi := range c.Spec.Phases[pi].ByShard[s] {
					if g := &c.Spec.Phases[pi].ByShard[s][gi]; len(g.Members) > 1 {
						return g
					}
				}
			}
		}
		return nil
	}
	firstGroup := func(c *cr.Compiled) *cr.AggGroup {
		for pi := range c.Spec.Phases {
			for s := range c.Spec.Phases[pi].ByShard {
				if len(c.Spec.Phases[pi].ByShard[s]) > 0 {
					return &c.Spec.Phases[pi].ByShard[s][0]
				}
			}
		}
		return nil
	}
	cases := []struct {
		name    string
		corrupt func(c *cr.Compiled) bool // false = fixture lacks the shape
		want    string
	}{
		{
			name: "swap-members",
			corrupt: func(c *cr.Compiled) bool {
				g := firstMulti(c)
				if g == nil {
					return false
				}
				g.Members[0], g.Members[1] = g.Members[1], g.Members[0]
				return true
			},
			want: "group membership",
		},
		{
			name: "drop-member",
			corrupt: func(c *cr.Compiled) bool {
				g := firstMulti(c)
				if g == nil {
					return false
				}
				g.Members = g.Members[:len(g.Members)-1]
				return true
			},
			want: "group membership",
		},
		{
			name: "duplicate-member",
			corrupt: func(c *cr.Compiled) bool {
				g := firstGroup(c)
				if g == nil {
					return false
				}
				g.Members = append(g.Members, g.Members[0])
				return true
			},
			want: "group membership",
		},
		{
			name: "rebind-dst-shard",
			corrupt: func(c *cr.Compiled) bool {
				g := firstGroup(c)
				if g == nil {
					return false
				}
				g.DstShard = (g.DstShard + 1) % int32(c.Opts.NumShards)
				return true
			},
			want: "group membership",
		},
		{
			name: "shift-phase-boundary",
			corrupt: func(c *cr.Compiled) bool {
				for pi := range c.Spec.Phases {
					ph := &c.Spec.Phases[pi]
					if ph.End < len(c.Body) {
						ph.End++
						return true
					}
					if ph.Start > 0 {
						ph.Start--
						return true
					}
				}
				return false
			},
			want: "phase boundary",
		},
		{
			name: "reassign-phaseof",
			corrupt: func(c *cr.Compiled) bool {
				for i, pi := range c.Spec.PhaseOf {
					if pi >= 0 {
						c.Spec.PhaseOf[i] = -1
						return true
					}
				}
				return false
			},
			want: "phase assignment",
		},
	}
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%v", tc.name, sync), func(t *testing.T) {
				applied := false
				for name, c := range aggFixtures(t, sync) {
					if !tc.corrupt(c) {
						continue
					}
					applied = true
					err := CheckAggTables(c)
					if err == nil {
						t.Errorf("%s: corruption %s not detected", name, tc.name)
						continue
					}
					if !strings.Contains(err.Error(), tc.want) {
						t.Errorf("%s: corruption %s detected with the wrong vocabulary:\n%v\nwant substring %q", name, tc.name, err, tc.want)
					}
				}
				if !applied {
					t.Fatalf("no fixture has the shape for corruption %s; the case is vacuous", tc.name)
				}
			})
		}
	}
}

// TestCheckAggDetectsDroppedMember: beyond the table diff, the DYNAMIC
// layer catches a member dropped from its group — the executor allocates
// the member's done event from the pair lists (consumers are oblivious to
// producer batching), so a message that forgets the member leaves the
// event never triggered and its waiters blocked. The replay shows exactly
// that.
func TestCheckAggDetectsDroppedMember(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	c := aggCompile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	dropped := false
	for pi := range c.Spec.Phases {
		for s := range c.Spec.Phases[pi].ByShard {
			for gi := range c.Spec.Phases[pi].ByShard[s] {
				g := &c.Spec.Phases[pi].ByShard[s][gi]
				if !dropped && len(g.Members) > 1 {
					g.Members = g.Members[1:]
					dropped = true
				}
			}
		}
	}
	if !dropped {
		t.Fatal("no multi-member group to corrupt")
	}
	rep, err := CheckAgg(c)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, f := range rep.Findings {
		kinds[f.Kind]++
	}
	if kinds["agg-table"] == 0 {
		t.Errorf("structural layer missed the dropped member: %v", kinds)
	}
	if kinds["never-triggered"] == 0 {
		t.Errorf("dynamic layer missed the dropped member (want a never-triggered done event): %v", kinds)
	}
}

// TestCheckAggDetectsMergedChainSplit: the fold-chain split exists to keep
// the message-level wait graph acyclic. Merging a chain-split group into
// the group that produces its chain predecessor builds a message that
// waits (through the external chain edge) on a done event its OWN
// completion triggers — the merged message waits for itself. CheckAgg must
// certify the deadlock with a concrete cycle witness, not hang or crash in
// the race pass.
func TestCheckAggDetectsMergedChainSplit(t *testing.T) {
	merge := func(c *cr.Compiled) bool {
		for pi := range c.Spec.Phases {
			ph := &c.Spec.Phases[pi]
			for s := range ph.ByShard {
				for gi := range ph.ByShard[s] {
					g := &ph.ByShard[s][gi]
					mem := g.Members[0]
					cp := c.Body[mem.Op].Copy
					if cp.Reduce == region.ReduceNone ||
						!cr.AggChainExternal(cp, c.Spec.Ops[mem.Op].Copy, int(mem.Pair)) {
						continue
					}
					// Find the group (on the predecessor's shard) holding
					// the chain predecessor pair and fold this group in.
					pred := cr.AggPair{Op: mem.Op, Pair: mem.Pair - 1}
					for s2 := range ph.ByShard {
						for g2 := range ph.ByShard[s2] {
							for _, m2 := range ph.ByShard[s2][g2].Members {
								if m2 != pred {
									continue
								}
								ph.ByShard[s2][g2].Members = append(ph.ByShard[s2][g2].Members, g.Members...)
								ph.ByShard[s] = append(ph.ByShard[s][:gi], ph.ByShard[s][gi+1:]...)
								return true
							}
						}
					}
				}
			}
		}
		return false
	}
	found := false
	for _, shards := range []int{2, 3, 4} {
		rr := progtest.NewRegionReduce(24, 4, 3)
		c := aggCompile(t, rr.Prog, rr.Loop, shards, cr.PointToPoint)
		if !merge(c) {
			continue
		}
		found = true
		rep, err := CheckAgg(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		cycle := false
		for _, f := range rep.Findings {
			if f.Kind == "cycle" {
				cycle = true
			}
		}
		if !cycle {
			t.Errorf("shards=%d: merged chain-split groups not certified as a wait cycle; findings: %v", shards, rep.Findings)
		}
	}
	if !found {
		t.Fatal("no shard count yields a mergeable chain-split group; the test is vacuous")
	}
}

// TestAggMutationSoundness: the aggregated checker's own soundness check —
// the unmutated aggregated schedule verifies clean, every essential
// merged-precondition deletion is detected, and every finding points at a
// member of the mutated group.
func TestAggMutationSoundness(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range aggFixtures(t, sync) {
			t.Run(fmt.Sprintf("%s/%v", name, sync), func(t *testing.T) {
				a, err := AnalyzeAgg(c)
				if err != nil {
					t.Fatal(err)
				}
				if rep := a.Check(); !rep.OK() {
					for _, f := range rep.Findings {
						t.Errorf("false positive: %s", f)
					}
					t.Fatalf("unmutated aggregated schedule failed verification (%d findings)", len(rep.Findings))
				}
				if rep := a.CheckLiveness(); !rep.OK() {
					for _, f := range rep.Findings {
						t.Errorf("liveness false positive: %s", f)
					}
				}
				muts := a.AggMutations()
				detected, essential := 0, 0
				for _, m := range muts {
					rep := a.Check(m.Drop...)
					if !rep.OK() {
						detected++
					}
					if m.Essential {
						essential++
						if rep.OK() {
							t.Errorf("missed essential mutation %s", m.Name)
						}
					}
					for _, f := range rep.Findings {
						if !m.Covers(f) {
							t.Errorf("mutation %s produced a finding not involving the mutated group: %s", m.Name, f)
						}
					}
				}
				if name != "scalarsum" && essential == 0 {
					t.Errorf("no essential aggregation mutations enumerated; the harness is vacuous")
				}
				t.Logf("%d mutations, %d essential, %d detected", len(muts), essential, detected)
			})
		}
	}
}

// TestAggLivenessMutations: the shared liveness mutation harness (sync
// inversions, chain inversions, barrier swaps, skipped arrivals) applies
// unchanged to the AGGREGATED graph — its node locator finds the member
// copy nodes and per-pair sync events inside the merged clusters — and
// every mutation is detected.
func TestAggLivenessMutations(t *testing.T) {
	total := 0
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for name, c := range aggFixtures(t, sync) {
			a, err := AnalyzeAgg(c)
			if err != nil {
				t.Fatalf("%s %v: %v", name, sync, err)
			}
			for _, m := range a.LivenessMutations() {
				total++
				rep := a.CheckLivenessMutated(m)
				if rep.OK() {
					t.Errorf("%s %v: missed liveness mutation %s on the aggregated graph", name, sync, m.Name)
					continue
				}
				for _, f := range rep.Findings {
					if !m.Covers(f) {
						t.Errorf("%s %v: mutation %s produced unrelated finding: %s", name, sync, m.Name, f)
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no liveness mutations enumerated on aggregated graphs; the harness is vacuous")
	}
}

// TestAggMutationsCoverEverySyncEdge: under p2p every labeled sync edge of
// the aggregated graph — member wars, fanned-out dones, external chains —
// appears in some AggMutation's deletion set. No merged precondition
// escapes the harness.
func TestAggMutationsCoverEverySyncEdge(t *testing.T) {
	rr := progtest.NewRegionReduce(24, 4, 3)
	c := aggCompile(t, rr.Prog, rr.Loop, 4, cr.PointToPoint)
	a, err := AnalyzeAgg(c)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[EdgeID]bool{}
	for _, m := range a.AggMutations() {
		for _, id := range m.Drop {
			covered[id] = true
		}
	}
	for _, e := range a.g.edges {
		if e.label.Class == edgeStruct {
			continue
		}
		if !covered[e.label] {
			t.Errorf("sync edge %v of the aggregated graph not covered by any mutation", e.label)
		}
	}
}

// TestAnalyzeAggRejectsPrune: one certified rewrite at a time — a plan
// carrying prune info is refused rather than certified against the wrong
// schedule.
func TestAnalyzeAggRejectsPrune(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	c := aggCompile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	c.Prune = &cr.PruneInfo{}
	if _, err := AnalyzeAgg(c); err == nil {
		t.Fatal("AnalyzeAgg accepted a plan with prune info")
	}
}
