package verify

import (
	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/region"
)

// EdgeClass names a class of deletable happens-before edges — the
// synchronization the compiler/runtime inserts, as opposed to the
// structural dependence edges of the issue loop itself.
type EdgeClass int8

const (
	edgeStruct EdgeClass = iota // local dependence / phase edges; never deleted
	// EdgeWAR is the consumer's release into a pair's war event: prior
	// readers (and the prior writer) of the destination instance must
	// finish before the copy may overwrite it (§3.4).
	EdgeWAR
	// EdgeDone is a pair's copy completion into its done event: consumers
	// of the destination instance wait on it (read-after-write), and the
	// shard's iteration-completion merge carries it to finalization.
	EdgeDone
	// EdgeChain orders a reduction application after the previous
	// application to the same destination instance (deterministic fold
	// order, §4.3).
	EdgeChain
	// EdgeBarrier is the arrivals into one of a copy's two global barriers
	// in the naive Figure 4c lowering; Pair holds the phase (0 = the
	// write-after-read barrier, 1 = the read-after-write barrier).
	EdgeBarrier
)

func (c EdgeClass) String() string {
	switch c {
	case EdgeWAR:
		return "war"
	case EdgeDone:
		return "done"
	case EdgeChain:
		return "chain"
	case EdgeBarrier:
		return "barrier"
	}
	return "struct"
}

// EdgeID identifies one deletable synchronization: the class, the copy op
// it belongs to, and the pair index (or barrier phase). The same EdgeID
// labels the edge in every unrolled iteration, so deleting it models the
// compiler never inserting that sync.
type EdgeID struct {
	Class EdgeClass `json:"class"`
	Copy  int       `json:"copy"`
	Pair  int       `json:"pair"`
}

func (e EdgeID) String() string {
	return e.Class.String() + "(" + itoa(e.Copy) + "," + itoa(e.Pair) + ")"
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

type nodeID int32

type nodeKind int8

const (
	kInit nodeKind = iota
	kInitCopy
	kLoopStart
	kTask
	kCopy
	kWar
	kDone
	kBarrier
	kLoopEnd
	kFinal
)

// node is one vertex of the happens-before DAG: a task launch instance, a
// copy pair transfer, a synchronization event, or a phase marker.
type node struct {
	kind   nodeKind
	iter   int32 // -1 for pre-loop nodes, iters for loopEnd/final
	body   int32 // body op index; -1 when not applicable
	sub    int32 // pair index within the copy op, or barrier phase
	copyID int32 // CopyOp.ID for copy/war/done/barrier nodes; -1 otherwise
	color  geometry.Point
	shard  int32 // issuing shard; -1 = control thread / none
}

type edge struct {
	from, to nodeID
	label    EdgeID
}

// barrierArrival records one global barrier's arrival count: how many
// shards arrive (got) against its participant count (want). The executor
// arrives unconditionally at both of a copy's barriers on every shard, so
// got == want by construction; the liveness mutation harness perturbs got
// to model a shard skipping its arrival (the barrier never triggers).
type barrierArrival struct {
	b      nodeID
	copyID int32
	iter   int32
	phase  int32
	got    int
	want   int
}

type graph struct {
	nodes    []node
	edges    []edge
	iters    int
	arrivals []barrierArrival
}

func (g *graph) add(n node) nodeID {
	g.nodes = append(g.nodes, n)
	return nodeID(len(g.nodes) - 1)
}

func (g *graph) edge(from, to nodeID) {
	g.edges = append(g.edges, edge{from: from, to: to})
}

func (g *graph) ledge(from, to nodeID, id EdgeID) {
	g.edges = append(g.edges, edge{from: from, to: to, label: id})
}

// adjacency materializes the forward adjacency list with the dropped edge
// labels removed.
func (g *graph) adjacency(dropped map[EdgeID]bool) [][]nodeID {
	adj := make([][]nodeID, len(g.nodes))
	for _, e := range g.edges {
		if e.label.Class != edgeStruct && dropped[e.label] {
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	return adj
}

// find locates a node by identity within one unrolled iteration; -1 when
// absent (e.g. a pruned sync event). Graphs are small, so a scan suffices.
func (g *graph) find(kind nodeKind, copyID, sub, iter int32) nodeID {
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.kind == kind && n.copyID == copyID && n.sub == sub && n.iter == iter {
			return nodeID(i)
		}
	}
	return -1
}

// seqKey is a node's position in the sequential program order: iteration,
// body index, then sub-op (copy pair) index. Initialization sorts before
// everything, finalization after.
func (g *graph) seqKey(n nodeID) (int32, int32, int32) {
	nd := &g.nodes[n]
	return nd.iter, nd.body, nd.sub
}

func seqLess(ai, ab, as, bi, bb, bs int32) bool {
	if ai != bi {
		return ai < bi
	}
	if ab != bb {
		return ab < bb
	}
	return as < bs
}

// instRef identifies one physical instance: a partition subregion (part !=
// nil) or a reduce temporary (launch+arg). Comparable, used as a map key.
type instRef struct {
	part  *region.Partition
	l     *ir.Launch
	arg   int
	color geometry.Point
}

// access is one node's touch of an instance: the fields and elements it
// reads or writes. Reduction applications are writes (read-modify-write
// whose order the sequential semantics fixes).
type access struct {
	n      nodeID
	inst   instRef
	fields []region.FieldID
	space  geometry.IndexSpace
	write  bool
}

// symState is the symbolic analogue of the executor's per-instance
// dependence state (spmd.instState): the set of nodes after which the
// instance's contents are valid, and the readers issued since.
type symState struct {
	lastWrite []nodeID
	readers   []nodeID
}

// warOb is one war event's ordering obligation: every node of the
// consumer's release set must happen-before the producer's copy node, or
// skipping the war reorders a write-after-read. Collected (under
// collectWar) for every p2p war slot, pruned (warN == -1, the obligation
// must hold through the remaining graph) or kept (warN set, so the
// proposal pass can ask whether the obligation would survive removing
// exactly this event).
type warOb struct {
	copyID  int
	k       int
	release []nodeID
	cn      nodeID
	warN    nodeID
}

type builder struct {
	c     *cr.Compiled
	g     *graph
	insts map[instRef]*symState
	accs  []access
	// collectWar records a warOb for every war event the prune info skips.
	collectWar bool
	warObs     []warOb
	// opsOf mirrors each shard's sh.ops for the current iteration: the
	// events the shard merges into its iteration-completion event. Their
	// union over all iterations feeds the loop-end phase edge (shardDone).
	opsOf  [][]nodeID
	allOps []nodeID
	// prune is consulted at exactly the points the executor consults it
	// (spmd shard.go / plan.go), so the graph is the precise happens-before
	// relation of the pruned schedule — not an approximation by edge
	// deletion, which would leave the structural done->loopEnd edges of
	// pruned sync in place. Nil builds the conservative schedule.
	prune *cr.PruneInfo
	// agg replays the aggregated executor paths (spmd doPhaseP2PAgg /
	// doPhaseBarrierAgg) instead of the per-copy ones: whole exchange
	// phases issue at their head op, producers emit one merged message per
	// aggregation group (see agg.go). Aggregation never composes with
	// pruning, so agg builders run with prune == nil.
	agg bool
}

func newBuilder(c *cr.Compiled) *builder {
	return &builder{
		c:     c,
		g:     &graph{},
		insts: make(map[instRef]*symState),
		opsOf: make([][]nodeID, c.Opts.NumShards),
		prune: c.Prune,
	}
}

func newPrunedBuilder(c *cr.Compiled, info *cr.PruneInfo) *builder {
	b := newBuilder(c)
	b.prune = info
	return b
}

func (b *builder) state(r instRef) *symState {
	s, ok := b.insts[r]
	if !ok {
		s = &symState{}
		b.insts[r] = s
	}
	return s
}

func (b *builder) record(n nodeID, inst instRef, fields []region.FieldID, space geometry.IndexSpace, write bool) {
	if len(fields) == 0 {
		return
	}
	b.accs = append(b.accs, access{n: n, inst: inst, fields: fields, space: space, write: write})
}

func (b *builder) shardOf(col geometry.Point) int32 {
	return int32(b.c.ShardOf[col])
}

// build symbolically replays the SPMD execution of the compiled loop:
// initialization, the unrolled loop body (two iterations when the trip
// allows), and finalization, mirroring spmd.(*shard) op for op.
func (b *builder) build() (*graph, []access) {
	c := b.c
	iters := 2
	if c.Loop.Trip < 2 {
		iters = 1
	}
	b.g.iters = iters

	// Initialization: every used partition's every instance is populated
	// from the parent region on the control thread; the control thread
	// waits for the whole phase before the hoisted loop-invariant copies,
	// and for each of those before spawning the shards. Model the
	// population as one node writing every instance.
	init := b.g.add(node{kind: kInit, iter: -1, body: -1, sub: -1, copyID: -1, shard: -1})
	for _, part := range c.UsedParts {
		fields := c.InstFields[part]
		for _, col := range c.Domain {
			if b.prune.SkipInit(part, c.ColorIdx[col]) {
				// Dead initialization: the instance is never populated, so
				// the init node does not write it — every read must instead
				// be covered by a later compiler-inserted overwrite (the
				// coverage analysis in prune.go licenses exactly that).
				continue
			}
			b.record(init, instRef{part: part, color: col}, fields, part.Sub(col).IndexSpace(), true)
		}
	}
	prev := []nodeID{init}
	for _, cp := range c.InitCopies {
		var pairNodes []nodeID
		for k, pr := range cp.Pairs {
			n := b.g.add(node{kind: kInitCopy, iter: -1, body: -1, sub: int32(k), copyID: int32(cp.ID), color: pr.Dst, shard: -1})
			for _, p := range prev {
				b.g.edge(p, n)
			}
			b.record(n, instRef{part: cp.Src, color: pr.Src}, cp.Fields, pr.Overlap, false)
			b.record(n, instRef{part: cp.Dst, color: pr.Dst}, cp.Fields, pr.Overlap, true)
			pairNodes = append(pairNodes, n)
		}
		if len(pairNodes) > 0 {
			prev = pairNodes
		}
	}
	loopStart := b.g.add(node{kind: kLoopStart, iter: -1, body: -1, sub: -1, copyID: -1, shard: -1})
	for _, p := range prev {
		b.g.edge(p, loopStart)
	}
	// Every instance (and temp) starts valid after the spawn point.
	seed := func(s *symState) {
		if len(s.lastWrite) == 0 && len(s.readers) == 0 {
			s.lastWrite = []nodeID{loopStart}
		}
	}

	for iter := 0; iter < iters; iter++ {
		for s := range b.opsOf {
			b.opsOf[s] = b.opsOf[s][:0]
		}
		for bi, op := range c.Body {
			switch {
			case op.Set != nil:
				// Scalar statements touch no region data.
			case op.Launch != nil:
				b.doLaunch(int32(bi), op.Launch, int32(iter), seed)
			case op.Copy != nil:
				switch {
				case b.agg:
					// Aggregated lowering: the whole exchange phase issues at
					// its head op; the remaining phase ops are skipped exactly
					// as the executor skips them. A negative PhaseOf entry
					// (corrupted tables) skips the op; CheckAggTables reports
					// the corruption.
					if phIdx := c.Spec.PhaseOf[bi]; phIdx >= 0 && c.Spec.Phases[phIdx].Start == bi {
						if c.Opts.Sync == cr.BarrierSync {
							b.doPhaseBarrierAgg(phIdx, int32(iter), seed)
						} else {
							b.doPhaseP2PAgg(phIdx, int32(iter), seed)
						}
					}
				case c.Opts.Sync == cr.BarrierSync:
					b.doCopyBarrier(int32(bi), op.Copy, int32(iter), seed)
				default:
					b.doCopyP2P(int32(bi), op.Copy, int32(iter), seed)
				}
			}
		}
		for _, ops := range b.opsOf {
			b.allOps = append(b.allOps, ops...)
		}
	}

	// Finalization: the control thread waits for every shard's completion
	// merge (which carries exactly the events the shards put in sh.ops),
	// then reads the disjoint written partitions' instances back.
	loopEnd := b.g.add(node{kind: kLoopEnd, iter: int32(iters), body: -1, sub: -1, copyID: -1, shard: -1})
	for _, n := range b.allOps {
		b.g.edge(n, loopEnd)
	}
	b.g.edge(loopStart, loopEnd)
	final := b.g.add(node{kind: kFinal, iter: int32(iters), body: 0, sub: -1, copyID: -1, shard: -1})
	b.g.edge(loopEnd, final)
	for _, part := range c.WrittenDisjoint {
		fields := c.InstFields[part]
		for _, col := range c.Domain {
			b.record(final, instRef{part: part, color: col}, fields, part.Sub(col).IndexSpace(), false)
		}
	}
	return b.g, b.accs
}

// doLaunch adds one node per task of the index launch, with the executor's
// precondition edges from the owning shard's instance table, and updates
// the table exactly as spmd.(*shard).doLaunch does.
func (b *builder) doLaunch(bi int32, l *ir.Launch, iter int32, seed func(*symState)) {
	for _, col := range b.c.Domain {
		sh := b.shardOf(col)
		t := b.g.add(node{kind: kTask, iter: iter, body: bi, sub: 0, copyID: -1, color: col, shard: sh})
		// Gather all precondition edges before applying any table update,
		// exactly like the executor: two args on the same instance (a task
		// reading one field and writing another of the same partition) must
		// not see each other's update.
		for ai, a := range l.Args {
			param := l.Task.Params[ai]
			switch param.Priv {
			case ir.PrivRead:
				s := b.state(instRef{part: a.Part, color: col})
				seed(s)
				b.edgesFrom(s.lastWrite, t)
			case ir.PrivReadWrite:
				s := b.state(instRef{part: a.Part, color: col})
				seed(s)
				b.edgesFrom(s.lastWrite, t)
				b.edgesFrom(s.readers, t)
			case ir.PrivReduce:
				s := b.state(instRef{l: l, arg: ai, color: col})
				seed(s)
				b.edgesFrom(s.lastWrite, t)
				b.edgesFrom(s.readers, t)
			}
		}
		for ai, a := range l.Args {
			param := l.Task.Params[ai]
			switch param.Priv {
			case ir.PrivRead:
				s := b.state(instRef{part: a.Part, color: col})
				s.readers = append(s.readers, t)
				b.record(t, instRef{part: a.Part, color: col}, param.Fields, a.Part.Sub(col).IndexSpace(), false)
			case ir.PrivReadWrite:
				s := b.state(instRef{part: a.Part, color: col})
				s.lastWrite = []nodeID{t}
				s.readers = s.readers[:0]
				b.record(t, instRef{part: a.Part, color: col}, param.Fields, a.Part.Sub(col).IndexSpace(), true)
			case ir.PrivReduce:
				s := b.state(instRef{l: l, arg: ai, color: col})
				s.lastWrite = []nodeID{t}
				s.readers = s.readers[:0]
				// The contribution lands in the task's private temporary
				// (re-initialized each iteration), not the instance.
				b.record(t, instRef{l: l, arg: ai, color: col}, param.Fields, a.Part.Sub(col).IndexSpace(), true)
			}
		}
		b.opsOf[sh] = append(b.opsOf[sh], t)
	}
}

func (b *builder) edgesFrom(from []nodeID, to nodeID) {
	for _, f := range from {
		b.g.edge(f, to)
	}
}

// groups returns the contiguous same-destination runs of a copy's pairs —
// the consumer groups of the executor's copy schedule.
func groups(cp *cr.CopyOp) [][2]int {
	var out [][2]int
	i := 0
	for i < len(cp.Pairs) {
		j := i
		for j < len(cp.Pairs) && cp.Pairs[j].Dst == cp.Pairs[i].Dst {
			j++
		}
		out = append(out, [2]int{i, j})
		i = j
	}
	return out
}

// doCopyP2P mirrors spmd.(*shard).doCopyP2P: per destination group, the
// consumer computes the write-after-read release and connects it to each
// pair's war event, then merges the pair done events into the instance's
// lastWrite; per pair, the producer issues the transfer gated on war and
// its source's lastWrite (plus the reduction chain), and connects it to
// done.
func (b *builder) doCopyP2P(bi int32, cp *cr.CopyOp, iter int32, seed func(*symState)) {
	g := b.g
	warN := make([]nodeID, len(cp.Pairs))
	doneN := make([]nodeID, len(cp.Pairs))
	for i := range warN {
		warN[i], doneN[i] = -1, -1
	}
	var obIdx map[int]int
	for _, gr := range groups(cp) {
		start, end := gr[0], gr[1]
		dstCol := cp.Pairs[start].Dst
		consShard := b.shardOf(dstCol)
		s := b.state(instRef{part: cp.Dst, color: dstCol})
		seed(s)
		release := append(append([]nodeID(nil), s.readers...), s.lastWrite...)
		newWrites := append([]nodeID(nil), s.lastWrite...)
		for k := start; k < end; k++ {
			if !b.prune.SkipWar(cp.ID, k) {
				warN[k] = g.add(node{kind: kWar, iter: iter, body: bi, sub: int32(k), copyID: int32(cp.ID), color: dstCol, shard: consShard})
				for _, r := range release {
					g.ledge(r, warN[k], EdgeID{Class: EdgeWAR, Copy: cp.ID, Pair: k})
				}
			}
			if b.collectWar {
				if obIdx == nil {
					obIdx = make(map[int]int)
				}
				obIdx[k] = len(b.warObs)
				b.warObs = append(b.warObs, warOb{copyID: cp.ID, k: k, release: release, cn: -1, warN: warN[k]})
			}
			if !b.prune.SkipDone(cp.ID, k) {
				doneN[k] = g.add(node{kind: kDone, iter: iter, body: bi, sub: int32(k), copyID: int32(cp.ID), color: dstCol, shard: consShard})
				newWrites = append(newWrites, doneN[k])
				b.opsOf[consShard] = append(b.opsOf[consShard], doneN[k])
			}
		}
		s.lastWrite = newWrites
		s.readers = s.readers[:0]
	}
	for _, gr := range groups(cp) {
		start, end := gr[0], gr[1]
		for k := start; k < end; k++ {
			pr := cp.Pairs[k]
			prodShard := b.shardOf(pr.Src)
			cn := g.add(node{kind: kCopy, iter: iter, body: bi, sub: int32(k), copyID: int32(cp.ID), color: pr.Dst, shard: prodShard})
			if warN[k] >= 0 {
				g.edge(warN[k], cn)
			}
			if i, ok := obIdx[k]; ok {
				b.warObs[i].cn = cn
			}
			if cp.Reduce == region.ReduceNone {
				s := b.state(instRef{part: cp.Src, color: pr.Src})
				seed(s)
				b.edgesFrom(s.lastWrite, cn)
				s.readers = append(s.readers, cn)
				b.record(cn, instRef{part: cp.Src, color: pr.Src}, cp.Fields, pr.Overlap, false)
			} else {
				ts := b.state(instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src})
				seed(ts)
				b.edgesFrom(ts.lastWrite, cn)
				if k > start && !b.prune.SkipChain(cp.ID, k) {
					if doneN[k-1] < 0 {
						// The predecessor's done sync is pruned but the chain
						// still waits on it: the event exists in the executor
						// yet nothing ever triggers it. Model the hang with an
						// orphan node for the liveness check to flag.
						doneN[k-1] = g.add(node{kind: kDone, iter: iter, body: bi, sub: int32(k - 1), copyID: int32(cp.ID), color: cp.Pairs[k-1].Dst, shard: b.shardOf(cp.Pairs[k-1].Dst)})
					}
					g.ledge(doneN[k-1], cn, EdgeID{Class: EdgeChain, Copy: cp.ID, Pair: k})
				}
				ts.readers = append(ts.readers, cn)
				b.record(cn, instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src}, cp.Fields, pr.Overlap, false)
			}
			if doneN[k] >= 0 {
				g.ledge(cn, doneN[k], EdgeID{Class: EdgeDone, Copy: cp.ID, Pair: k})
				b.opsOf[prodShard] = append(b.opsOf[prodShard], doneN[k])
			} else {
				// Done pruned: the producer merges the copy's own completion
				// into its iteration ops instead (spmd doCopyP2P does the
				// same), so loop-end quiescence still covers the transfer.
				b.opsOf[prodShard] = append(b.opsOf[prodShard], cn)
			}
			b.record(cn, instRef{part: cp.Dst, color: pr.Dst}, cp.Fields, pr.Overlap, true)
		}
	}
}

// doCopyBarrier mirrors spmd.(*shard).doCopyBarrier: every shard arrives
// at the first barrier with everything it issued so far this iteration
// (consumers additionally with their destination state), the copies run
// between the barriers, and every destination instance becomes valid after
// the second barrier. Reduction chains still use the shared per-pair done
// events for deterministic fold order.
func (b *builder) doCopyBarrier(bi int32, cp *cr.CopyOp, iter int32, seed func(*symState)) {
	g := b.g
	b1 := g.add(node{kind: kBarrier, iter: iter, body: bi, sub: 0, copyID: int32(cp.ID), shard: -1})
	b2 := g.add(node{kind: kBarrier, iter: iter, body: bi, sub: 1, copyID: int32(cp.ID), shard: -1})
	ns := b.c.Opts.NumShards
	g.arrivals = append(g.arrivals,
		barrierArrival{b: b1, copyID: int32(cp.ID), iter: iter, phase: 0, got: ns, want: ns},
		barrierArrival{b: b2, copyID: int32(cp.ID), iter: iter, phase: 1, got: ns, want: ns})
	arrive1 := EdgeID{Class: EdgeBarrier, Copy: cp.ID, Pair: 0}
	arrive2 := EdgeID{Class: EdgeBarrier, Copy: cp.ID, Pair: 1}
	for _, ops := range b.opsOf {
		for _, n := range ops {
			g.ledge(n, b1, arrive1)
		}
	}
	grs := groups(cp)
	for _, gr := range grs {
		dstCol := cp.Pairs[gr[0]].Dst
		s := b.state(instRef{part: cp.Dst, color: dstCol})
		seed(s)
		for _, n := range s.lastWrite {
			g.ledge(n, b1, arrive1)
		}
		for _, n := range s.readers {
			g.ledge(n, b1, arrive1)
		}
	}
	doneN := make([]nodeID, len(cp.Pairs))
	for i := range doneN {
		doneN[i] = -1
	}
	isReduce := cp.Reduce != region.ReduceNone
	for _, gr := range grs {
		start, end := gr[0], gr[1]
		for k := start; k < end; k++ {
			pr := cp.Pairs[k]
			prodShard := b.shardOf(pr.Src)
			cn := g.add(node{kind: kCopy, iter: iter, body: bi, sub: int32(k), copyID: int32(cp.ID), color: pr.Dst, shard: prodShard})
			g.edge(b1, cn)
			if !isReduce {
				s := b.state(instRef{part: cp.Src, color: pr.Src})
				seed(s)
				b.edgesFrom(s.lastWrite, cn)
				s.readers = append(s.readers, cn)
				b.record(cn, instRef{part: cp.Src, color: pr.Src}, cp.Fields, pr.Overlap, false)
			} else {
				ts := b.state(instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src})
				seed(ts)
				b.edgesFrom(ts.lastWrite, cn)
				if k > start && !b.prune.SkipChain(cp.ID, k) {
					if doneN[k-1] < 0 {
						// Pruned done with a live chain waiting on it: orphan
						// node, flagged as never-triggered by the liveness
						// pass (see doCopyP2P).
						doneN[k-1] = g.add(node{kind: kDone, iter: iter, body: bi, sub: int32(k - 1), copyID: int32(cp.ID), color: cp.Pairs[k-1].Dst, shard: b.shardOf(cp.Pairs[k-1].Src)})
					}
					g.ledge(doneN[k-1], cn, EdgeID{Class: EdgeChain, Copy: cp.ID, Pair: k})
				}
				if !b.prune.SkipDone(cp.ID, k) {
					doneN[k] = g.add(node{kind: kDone, iter: iter, body: bi, sub: int32(k), copyID: int32(cp.ID), color: pr.Dst, shard: prodShard})
					g.ledge(cn, doneN[k], EdgeID{Class: EdgeDone, Copy: cp.ID, Pair: k})
				}
				ts.readers = append(ts.readers, cn)
				b.record(cn, instRef{l: cp.SrcLaunch, arg: cp.SrcArg, color: pr.Src}, cp.Fields, pr.Overlap, false)
			}
			g.ledge(cn, b2, arrive2)
			b.record(cn, instRef{part: cp.Dst, color: pr.Dst}, cp.Fields, pr.Overlap, true)
		}
	}
	g.ledge(b1, b2, arrive2)
	for _, gr := range grs {
		dstCol := cp.Pairs[gr[0]].Dst
		s := b.state(instRef{part: cp.Dst, color: dstCol})
		s.lastWrite = append(s.lastWrite, b2)
		s.readers = s.readers[:0]
	}
	for sh := range b.opsOf {
		b.opsOf[sh] = append(b.opsOf[sh], b2)
	}
}
