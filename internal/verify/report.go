package verify

import (
	"fmt"

	"repro/internal/cr"
	"repro/internal/region"
)

// OpRef is one side of a finding's witness: which op touched the instance,
// where it sits in the unrolled program, and on which shard it runs.
type OpRef struct {
	// Iter is the unrolled iteration (-1 for pre-loop ops, the iteration
	// count for finalization).
	Iter int `json:"iter"`
	// Body is the index of the op in the compiled loop body (-1 for
	// initialization, 0 for finalization).
	Body int `json:"body"`
	// Pair is the copy pair index for copy ops, 0 for tasks.
	Pair int `json:"pair"`
	// Kind is "task", "copy", "init", "init-copy", or "final".
	Kind string `json:"kind"`
	// Label names the op: the launch label / task name, or the copy
	// description.
	Label string `json:"label,omitempty"`
	// Copy is the CopyOp ID for copy ops, -1 otherwise.
	Copy int `json:"copy"`
	// Shard issues the op; -1 for the control thread.
	Shard int `json:"shard"`
	// Color is the task's launch point or the copy pair's destination.
	Color string `json:"color"`
	// Write reports whether this side writes the conflicting elements.
	Write bool `json:"write"`
}

// Finding is one defect witness. Race findings ("unordered"/"misordered")
// describe a conflicting access pair the happens-before relation fails to
// cover; liveness findings ("cycle"/"never-triggered"/"phase-mismatch")
// describe a wait-for defect; certification findings ("dead-node-assignment"
// /"missing-restore"/"bad-rebuild") describe an invalid failover rebuild.
type Finding struct {
	// Kind is "unordered" (no happens-before path at all — a race),
	// "misordered" (ordered only against the sequential program order), or
	// one of the liveness/certification kinds above.
	Kind string `json:"kind"`
	// Instance names the physical instance both ops touch (race findings).
	Instance string `json:"instance"`
	// Fields are the names of the conflicting fields.
	Fields []string `json:"fields"`
	// Overlap is the conflicting element set; Elems its cardinality.
	Overlap    string `json:"overlap"`
	Elems      int64  `json:"elems"`
	CrossShard bool   `json:"cross_shard"`
	// A is the sequentially earlier op, B the later one. Liveness findings
	// reuse A/B for the blocked op and the sync it waits on.
	A OpRef `json:"a"`
	B OpRef `json:"b"`
	// Cycle is the wait-for cycle witness of a "cycle" finding: the ops on
	// the cycle, in wait order, first repeated last.
	Cycle []OpRef `json:"cycle,omitempty"`
	// Detail is a human-readable elaboration for non-race findings.
	Detail string `json:"detail,omitempty"`
}

// String renders the witness on one line.
func (f Finding) String() string {
	if f.Detail != "" {
		return fmt.Sprintf("%s: %s", f.Kind, f.Detail)
	}
	return fmt.Sprintf("%s: %s fields %v overlap %s (%d elems): %s vs %s",
		f.Kind, f.Instance, f.Fields, f.Overlap, f.Elems, f.A, f.B)
}

// String renders one side of a witness.
func (o OpRef) String() string {
	rw := "read"
	if o.Write {
		rw = "write"
	}
	return fmt.Sprintf("%s %q@%s iter=%d body=%d pair=%d shard=%d (%s)",
		o.Kind, o.Label, o.Color, o.Iter, o.Body, o.Pair, o.Shard, rw)
}

func (a *Analysis) finding(kind string, cf conflict) Finding {
	return Finding{
		Kind:       kind,
		Instance:   a.instName(cf.earlier.inst),
		Fields:     a.fieldNames(cf),
		Overlap:    cf.overlap.String(),
		Elems:      cf.overlap.Volume(),
		CrossShard: cf.crossShard,
		A:          a.opRef(cf.earlier),
		B:          a.opRef(cf.later),
	}
}

func (a *Analysis) instName(r instRef) string {
	if r.part != nil {
		return fmt.Sprintf("%s[%v]", r.part.Name(), r.color)
	}
	name := r.l.Label
	if name == "" {
		name = r.l.Task.Name
	}
	return fmt.Sprintf("reduce-temp(%s/%d)[%v]", name, r.arg, r.color)
}

func (a *Analysis) fieldNames(cf conflict) []string {
	r := cf.earlier.inst
	var root *region.Region
	if r.part != nil {
		root = r.part.Parent()
	} else {
		root = r.l.Args[r.arg].Part.Parent()
	}
	fs := a.c.Prog.FieldSpaceOf(root)
	out := make([]string, len(cf.fields))
	for i, f := range cf.fields {
		out[i] = fs.Name(f)
	}
	return out
}

func (a *Analysis) opRef(ac access) OpRef {
	nd := &a.g.nodes[ac.n]
	ref := OpRef{
		Iter:  int(nd.iter),
		Body:  int(nd.body),
		Pair:  int(nd.sub),
		Copy:  int(nd.copyID),
		Shard: int(nd.shard),
		Color: nd.color.String(),
		Write: ac.write,
	}
	switch nd.kind {
	case kInit:
		ref.Kind, ref.Label = "init", "instance initialization"
	case kInitCopy:
		ref.Kind = "init-copy"
		if cp := a.copyByID(nd.copyID); cp != nil {
			ref.Label = cp.String()
		}
	case kTask:
		ref.Kind = "task"
		if l := a.c.Body[nd.body].Launch; l != nil {
			ref.Label = l.Label
			if ref.Label == "" {
				ref.Label = l.Task.Name
			}
		}
	case kCopy:
		ref.Kind = "copy"
		if cp := a.copyByID(nd.copyID); cp != nil {
			ref.Label = cp.String()
		}
	case kFinal:
		ref.Kind, ref.Label = "final", "finalization read-back"
	case kWar:
		ref.Kind = "war"
		if cp := a.copyByID(nd.copyID); cp != nil {
			ref.Label = cp.String()
		}
	case kDone:
		ref.Kind = "done"
		if cp := a.copyByID(nd.copyID); cp != nil {
			ref.Label = cp.String()
		}
	case kBarrier:
		ref.Kind = "barrier"
		if cp := a.copyByID(nd.copyID); cp != nil {
			ref.Label = cp.String()
		}
	case kLoopStart, kLoopEnd:
		ref.Kind = "phase"
	default:
		ref.Kind = "event"
	}
	return ref
}

func (a *Analysis) copyByID(id int32) *cr.CopyOp {
	for _, op := range a.c.Body {
		if op.Copy != nil && op.Copy.ID == int(id) {
			return op.Copy
		}
	}
	for _, cp := range a.c.InitCopies {
		if cp.ID == int(id) {
			return cp
		}
	}
	return nil
}
