package verify

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
)

func compile(t *testing.T, prog *ir.Program, loop *ir.Loop, shards int, sync cr.SyncMode) *cr.Compiled {
	t.Helper()
	c, err := cr.Compile(prog, loop, cr.Options{NumShards: shards, Sync: sync})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func mustVerify(t *testing.T, c *cr.Compiled) *Report {
	t.Helper()
	rep, err := Verify(c)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.OK() {
		for _, f := range rep.Findings {
			t.Errorf("finding: %s", f)
		}
		t.Fatalf("verifier rejected a correct compilation (%d findings)", len(rep.Findings))
	}
	return rep
}

func TestVerifyFigure2(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		for _, trip := range []int{1, 3} {
			f := progtest.NewFigure2(48, 8, trip)
			c := compile(t, f.Prog, f.Loop, 4, sync)
			rep := mustVerify(t, c)
			if rep.Stats.Conflicts == 0 {
				t.Errorf("%v trip=%d: no conflicts enumerated; the checker is vacuous", sync, trip)
			}
			if rep.Stats.CrossShard == 0 {
				t.Errorf("%v trip=%d: no cross-shard conflicts; ghost exchange should cross shards", sync, trip)
			}
			wantIters := 2
			if trip < 2 {
				wantIters = 1
			}
			if rep.Stats.Iters != wantIters {
				t.Errorf("%v trip=%d: unrolled %d iters, want %d", sync, trip, rep.Stats.Iters, wantIters)
			}
		}
	}
}

func TestVerifyRegionReduce(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		f := progtest.NewRegionReduce(24, 4, 3)
		c := compile(t, f.Prog, f.Loop, 3, sync)
		rep := mustVerify(t, c)
		if rep.Stats.Conflicts == 0 {
			t.Errorf("%v: no conflicts enumerated", sync)
		}
	}
}

func TestVerifyScalarSum(t *testing.T) {
	f := progtest.NewScalarSum(32, 4)
	loop := findLoops(f.Prog)[0]
	c := compile(t, f.Prog, loop, 2, cr.PointToPoint)
	mustVerify(t, c)
}

func TestVerifySingleShard(t *testing.T) {
	// One shard still has inter-iteration and task/copy ordering to verify;
	// nothing should be cross-shard.
	f := progtest.NewFigure2(24, 4, 2)
	c := compile(t, f.Prog, f.Loop, 1, cr.PointToPoint)
	rep := mustVerify(t, c)
	if rep.Stats.CrossShard != 0 {
		t.Errorf("single shard reported %d cross-shard conflicts", rep.Stats.CrossShard)
	}
}

func TestCheckDetectsDeletedSync(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	c := compile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	muts := a.Mutations()
	if len(muts) == 0 {
		t.Fatal("no mutations enumerated for a program with inserted copies")
	}
	var essential *Mutation
	for i := range muts {
		if muts[i].Essential {
			essential = &muts[i]
			break
		}
	}
	if essential == nil {
		t.Fatal("no essential mutation: the ghost exchange has cross-color pairs")
	}
	rep := a.Check(essential.Drop...)
	if rep.OK() {
		t.Fatalf("deleting %s left the schedule verified", essential.Name)
	}
	for _, fd := range rep.Findings {
		if !essential.Covers(fd) {
			t.Errorf("finding does not involve mutated copy %d: %s", essential.Copy, fd)
		}
	}
}

func TestVerifyAll(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 3)
	plans := map[*ir.Loop]*cr.Compiled{
		f.Loop: compile(t, f.Prog, f.Loop, 4, cr.PointToPoint),
	}
	rep, err := VerifyAll(f.Prog, plans)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("VerifyAll rejected: %v", rep.Findings)
	}
	if rep.Stats.Conflicts == 0 {
		t.Error("VerifyAll merged no stats")
	}
}

func findLoops(p *ir.Program) []*ir.Loop {
	var out []*ir.Loop
	for _, s := range p.Stmts {
		if l, ok := s.(*ir.Loop); ok {
			out = append(out, l)
		}
	}
	return out
}
