package verify

// Recovery certification: the third pass of the schedule certifier. The
// recovery layer (internal/spmd/recover.go) rebuilds placement and restores
// checkpointed state after a node crash; spmd.PlanRebuild performs the same
// construction statically for any logical crash point, and CertifyRebuild
// checks the result — so the fault matrix (every app, node count, crashed
// node, crash launch index) can be certified exhaustively, where dynamic
// fault injection necessarily samples.
//
// A rebuild is certified when (1) the failover placement is valid — every
// shard lands on a live node, node 0 (the control thread) survives, and the
// assignment is the blockwise monotone remap the recovery layer installs;
// (2) the restore phase repopulates every used instance from the
// checkpoint; (3) the iteration cursor resumes inside the loop; and (4) the
// schedule the rebuilt shards then execute still passes the race check, the
// liveness check, and the specialization-table check — the compiled plan is
// placement-independent, so certifying it once per crash point re-validates
// exactly what the restarted shards will issue.

import (
	"fmt"

	"repro/internal/cr"
)

// CertifyRebuild checks one statically constructed failover rebuild
// (cr.RebuildSpec, typically from spmd.PlanRebuild) against the compiled
// loop it rebuilds. Structural defects are reported as findings of kind
// "bad-rebuild", "dead-node-assignment", or "missing-restore", each with a
// witness naming the offending shard, node, or instance; schedule defects
// are the race/liveness/spec findings of the re-run passes.
func CertifyRebuild(c *cr.Compiled, rs *cr.RebuildSpec) *Report {
	rep := &Report{Pass: "recovery-cert", Findings: []Finding{}}
	fail := func(kind, format string, args ...any) {
		rep.Findings = append(rep.Findings, Finding{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}
	if c == nil || rs == nil {
		fail("bad-rebuild", "nil compiled loop or rebuild spec")
		return rep
	}
	ns := c.Opts.NumShards

	if rs.Nodes <= 0 {
		fail("bad-rebuild", "rebuild names %d nodes", rs.Nodes)
		return rep
	}
	live := make([]bool, rs.Nodes)
	for i := range live {
		live[i] = true
	}
	for _, n := range rs.Crashed {
		switch {
		case n == 0:
			fail("bad-rebuild", "node 0 crashed: the control thread is lost, no rebuild exists")
		case n < 0 || n >= rs.Nodes:
			fail("bad-rebuild", "crashed node %d outside the %d-node cluster", n, rs.Nodes)
		default:
			live[n] = false
		}
	}

	if len(rs.Assign) != ns {
		fail("bad-rebuild", "assignment covers %d shards, want %d", len(rs.Assign), ns)
	} else {
		for s, n := range rs.Assign {
			if n < 0 || n >= rs.Nodes {
				fail("dead-node-assignment", "shard %d assigned to node %d outside the %d-node cluster", s, n, rs.Nodes)
				continue
			}
			if !live[n] {
				fail("dead-node-assignment", "shard %d assigned to crashed node %d", s, n)
			}
			if s > 0 && n < rs.Assign[s-1] {
				fail("bad-rebuild", "assignment not blockwise monotone: shard %d on node %d after shard %d on node %d", s, n, s-1, rs.Assign[s-1])
			}
		}
	}

	// Restore coverage: the checkpoint restore must repopulate every used
	// instance, or the resumed epoch reads stale (or zero) data.
	for _, part := range c.UsedParts {
		mask := rs.Restored[part]
		for _, col := range c.Domain {
			if ci := c.ColorIdx[col]; ci >= len(mask) || !mask[ci] {
				fail("missing-restore", "instance %s[%v] not restored from the checkpoint", part.Name(), col)
			}
		}
	}

	trip := c.Loop.Trip
	if rs.ResumeIter < 0 || (trip > 0 && rs.ResumeIter >= trip) {
		fail("bad-rebuild", "resume iteration %d outside the loop (trip %d)", rs.ResumeIter, trip)
	}

	// The rebuilt shards re-execute the same compiled plan from ResumeIter:
	// re-certify the schedule itself (races, liveness, spec congruence).
	a, err := Analyze(c)
	if err != nil {
		fail("bad-rebuild", "analysis failed: %v", err)
		return rep
	}
	races := a.Check()
	rep.Stats = races.Stats
	rep.Findings = append(rep.Findings, races.Findings...)
	rep.Findings = append(rep.Findings, a.CheckLiveness().Findings...)
	if err := CheckSpec(c); err != nil {
		fail("spec", "%v", err)
	}
	rep.Counters = map[string]int64{
		"nodes":       int64(rs.Nodes),
		"crashed":     int64(len(rs.Crashed)),
		"resume_iter": int64(rs.ResumeIter),
	}
	return rep
}
