package verify

import (
	"fmt"
	"strings"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/region"
)

// Mutation is one simulated compiler bug: a set of inserted
// synchronization edges deleted together (in every unrolled iteration —
// the static analogue of the compiler never emitting that sync).
//
// Essential marks mutations the verifier is guaranteed to detect: deleting
// them must break at least one conflicting pair, because the only
// happens-before route between ops of different colors is copy
// synchronization, so a fully de-synchronized cross-color pair cannot be
// covered by anything else. Non-essential mutations delete sync that MAY
// be transitively redundant (a same-color pair ordered through the source
// instance's local dependence chain, a reduction chain between
// element-disjoint applications): the verifier legitimately accepts those
// schedules, and the harness only checks that any findings it does produce
// point at the mutated copy.
type Mutation struct {
	// Name describes the mutation, e.g. "p2p-sync(copy 3, pair 7)".
	Name string `json:"name"`
	// Copy is the CopyOp whose sync is deleted; Pair the pair index (or
	// barrier copy: -1 for the whole-op barrier deletion). Dst names the
	// copy's destination partition: deleting a copy's sync can break not
	// only the copy's own ordering but collateral task-to-task orderings on
	// its destination instances (the consumer clears its readers list when
	// the sync takes over protecting them), so findings are attributed to
	// the mutation when they involve the copy or its destination.
	Copy int    `json:"copy"`
	Pair int    `json:"pair"`
	Dst  string `json:"dst"`
	// Drop is the edge set handed to Check.
	Drop []EdgeID `json:"drop"`
	// Essential mutations must be detected (see above).
	Essential bool `json:"essential"`
}

// Mutations enumerates the single-sync deletions for the analyzed loop's
// body copies, in body order. For point-to-point sync each pair
// contributes one full-sync deletion (its war, done, and chain edges
// together); for barriers each copy contributes the deletion of both its
// barrier phases; reduction copies additionally contribute chain-only
// deletions for consecutive applications.
func (a *Analysis) Mutations() []Mutation {
	var out []Mutation
	for bi, op := range a.c.Body {
		cp := op.Copy
		if cp == nil || len(cp.Pairs) == 0 {
			continue
		}
		if a.c.Opts.Sync == cr.BarrierSync {
			out = append(out, a.barrierMutations(cp, bi)...)
		} else {
			out = append(out, a.p2pMutations(cp, bi)...)
		}
		out = append(out, a.chainMutations(cp)...)
	}
	return out
}

// laterConsumer reports whether anything reads the copy's destination
// fields after the copy in the unrolled program: a finalization read-back
// (the destination is a disjoint written partition), a launch later in the
// same iteration, or — when the loop unrolls more than one iteration — any
// launch of the body (the next iteration's instance of it runs after the
// copy). A copy with no later consumer can race nobody forward: its sync
// only orders it against earlier readers, and that ordering may be
// legitimately covered by other copies' synchronization.
func (a *Analysis) laterConsumer(cp *cr.CopyOp, bi int) bool {
	for _, p := range a.c.WrittenDisjoint {
		if p == cp.Dst {
			return true
		}
	}
	for bj, op := range a.c.Body {
		l := op.Launch
		if l == nil || (bj <= bi && a.g.iters < 2) {
			continue
		}
		for ai, arg := range l.Args {
			p := l.Task.Params[ai]
			if arg.Part == cp.Dst &&
				(p.Priv == ir.PrivRead || p.Priv == ir.PrivReadWrite) &&
				len(fieldIntersection(p.Fields, cp.Fields)) > 0 {
				return true
			}
		}
	}
	return false
}

func (a *Analysis) p2pMutations(cp *cr.CopyOp, bi int) []Mutation {
	consumed := a.laterConsumer(cp, bi)
	out := make([]Mutation, 0, len(cp.Pairs))
	for k, pr := range cp.Pairs {
		out = append(out, Mutation{
			Name: fmt.Sprintf("p2p-sync(copy %d, pair %d)", cp.ID, k),
			Copy: cp.ID,
			Pair: k,
			Dst:  cp.Dst.Name(),
			Drop: []EdgeID{
				{Class: EdgeWAR, Copy: cp.ID, Pair: k},
				{Class: EdgeDone, Copy: cp.ID, Pair: k},
				{Class: EdgeChain, Copy: cp.ID, Pair: k},
			},
			// A plain same-color pair can be ordered through the source
			// instance's own dependence chain (the consumer task may also
			// write the source); a cross-color pair — or any reduction
			// application — has no route to its later consumers but this
			// sync. Without a later consumer only backward (write-after-
			// read) ordering is at stake, and that may be transitively
			// covered by other copies.
			Essential: consumed && (pr.Src != pr.Dst || cp.Reduce != region.ReduceNone),
		})
	}
	return out
}

func (a *Analysis) barrierMutations(cp *cr.CopyOp, bi int) []Mutation {
	cross := false
	for _, pr := range cp.Pairs {
		if pr.Src != pr.Dst {
			cross = true
			break
		}
	}
	return []Mutation{{
		Name: fmt.Sprintf("barrier(copy %d)", cp.ID),
		Copy: cp.ID,
		Pair: -1,
		Dst:  cp.Dst.Name(),
		Drop: []EdgeID{
			{Class: EdgeBarrier, Copy: cp.ID, Pair: 0},
			{Class: EdgeBarrier, Copy: cp.ID, Pair: 1},
		},
		Essential: a.laterConsumer(cp, bi) && (cross || cp.Reduce != region.ReduceNone),
	}}
}

// chainMutations deletes single reduction-chain edges. The chain orders
// consecutive fold applications to one destination; deleting it races two
// writers exactly when their element sets intersect, so only intersecting
// consecutive pairs yield essential mutations.
func (a *Analysis) chainMutations(cp *cr.CopyOp) []Mutation {
	if cp.Reduce == region.ReduceNone {
		return nil
	}
	var out []Mutation
	for _, gr := range groups(cp) {
		for k := gr[0] + 1; k < gr[1]; k++ {
			if !cp.Pairs[k-1].Overlap.Overlaps(cp.Pairs[k].Overlap) {
				continue
			}
			out = append(out, Mutation{
				Name:      fmt.Sprintf("chain(copy %d, pair %d)", cp.ID, k),
				Copy:      cp.ID,
				Pair:      k,
				Dst:       cp.Dst.Name(),
				Drop:      []EdgeID{{Class: EdgeChain, Copy: cp.ID, Pair: k}},
				Essential: true,
			})
		}
	}
	return out
}

// InvolvesCopy reports whether the finding's witness touches the given
// copy op — the attribution check the mutation harness runs on every
// finding a mutated program produces.
func (f Finding) InvolvesCopy(id int) bool {
	return f.A.Copy == id || f.B.Copy == id
}

// / Covers reports whether the finding is attributable to the mutation:
// either side of the witness is the mutated copy, or the racing instance
// belongs to the mutated copy's destination partition. The latter catches
// collateral races: the copy's consumer-side update clears the destination
// instance's reader list on the assumption that the deleted sync now
// orders those readers against later writers, so deleting it can expose a
// pure task-to-task race on the destination.
func (m Mutation) Covers(f Finding) bool {
	return f.InvolvesCopy(m.Copy) || strings.HasPrefix(f.Instance, m.Dst+"[")
}
