package verify

import (
	"fmt"
	"strings"

	"repro/internal/cr"
	"repro/internal/ir"
)

// CheckSpec statically validates the compiler's specialization tables
// (cr.SpecTable) against an independent recomputation from the compiled
// loop's pair lists and ownership. The tables are what makes a shard plan
// specialized from the shared capture sync-equivalent to one captured
// directly, so each ingredient of the substitution is re-derived here from
// first principles and compared:
//
//   - block congruence: OwnedBase offsets match the ownership partition,
//     and every owned color's ColorIdx equals its dense slot (so the
//     specialized plan binds the same collective indices and cost-table
//     slots as direct capture);
//   - the share marker is honest: Shareable exactly when the owned blocks
//     are uniform, with a reason recorded otherwise;
//   - launch cost volumes match the cost argument's subregion volumes;
//   - pair volumes and endpoint shards match the intersection geometry and
//     the ownership map (so specialized transfer sizes and node bindings
//     equal captured ones under any assignment);
//   - the per-shard work partition equals a from-scratch regrouping of the
//     pair list (same consumer per group, same producer pair sets, in the
//     same order) — the work lists every executor path (interpreter,
//     per-shard capture, specialization) walks.
//
// A nil return means every specialized plan is structurally identical to a
// directly captured one, and therefore issues the same synchronization.
func CheckSpec(c *cr.Compiled) error {
	if c == nil {
		return fmt.Errorf("verify: nil compiled loop")
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	spec := &c.Spec
	ns := c.Opts.NumShards

	if len(spec.OwnedBase) != ns {
		fail("OwnedBase has %d entries, want one per shard (%d)", len(spec.OwnedBase), ns)
	} else {
		base := 0
		uniform := true
		for s := 0; s < ns; s++ {
			if spec.OwnedBase[s] != base {
				fail("OwnedBase[%d] = %d, want %d (running block offset)", s, spec.OwnedBase[s], base)
			}
			for k, col := range c.Owned[s] {
				if c.ColorIdx[col] != base+k {
					fail("shard %d owned color %v has ColorIdx %d, want dense slot %d: owned blocks are not contiguous in the domain", s, col, c.ColorIdx[col], base+k)
				}
			}
			base += len(c.Owned[s])
			if len(c.Owned[s]) != len(c.Owned[0]) {
				uniform = false
			}
		}
		if spec.Share.Shareable != uniform {
			fail("Share.Shareable = %v but uniform owned blocks = %v", spec.Share.Shareable, uniform)
		}
		if !spec.Share.Shareable && spec.Share.Reason == "" {
			fail("unshareable plan records no reason")
		}
	}

	if len(spec.Ops) != len(c.Body) {
		fail("Ops has %d entries, want one per body op (%d)", len(spec.Ops), len(c.Body))
	} else {
		for i, op := range c.Body {
			so := &spec.Ops[i]
			switch {
			case op.Launch != nil:
				if so.Launch == nil {
					fail("body op %d is a launch but has no launch spec", i)
					continue
				}
				checkLaunchSpec(c, i, op.Launch, so.Launch, fail)
			case op.Copy != nil:
				if so.Copy == nil {
					fail("body op %d is a copy but has no copy spec", i)
					continue
				}
				if spec.CopyByID[op.Copy.ID] != so.Copy {
					fail("body op %d copy spec is not the CopyByID entry for id %d", i, op.Copy.ID)
				}
				checkCopySpec(c, op.Copy, so.Copy, fail)
			default:
				if so.Launch != nil || so.Copy != nil {
					fail("scalar body op %d carries a spec", i)
				}
			}
		}
	}

	if len(errs) > 0 {
		return fmt.Errorf("verify: specialization tables diverge from recomputation (%d findings):\n  %s",
			len(errs), strings.Join(errs, "\n  "))
	}
	return nil
}

func checkLaunchSpec(c *cr.Compiled, i int, l *ir.Launch, ls *cr.LaunchSpec, fail func(string, ...any)) {
	if len(ls.CostVol) != len(c.Domain) {
		fail("body op %d cost table has %d entries, want one per domain color (%d)", i, len(ls.CostVol), len(c.Domain))
		return
	}
	arg := l.Args[l.Task.CostArg]
	for ci, col := range c.Domain {
		if want := arg.At(col).Volume(); ls.CostVol[ci] != want {
			fail("body op %d color %v cost volume = %d, want %d", i, col, ls.CostVol[ci], want)
		}
	}
}

func checkCopySpec(c *cr.Compiled, cp *cr.CopyOp, cs *cr.CopySpec, fail func(string, ...any)) {
	pairs := cp.Pairs
	if len(cs.PairVols) != len(pairs) || len(cs.SrcShard) != len(pairs) || len(cs.DstShard) != len(pairs) {
		fail("copy %d pair tables sized %d/%d/%d, want %d each", cp.ID, len(cs.PairVols), len(cs.SrcShard), len(cs.DstShard), len(pairs))
		return
	}
	for k, pr := range pairs {
		if want := pr.Overlap.Volume(); cs.PairVols[k] != want {
			fail("copy %d pair %d volume = %d, want %d", cp.ID, k, cs.PairVols[k], want)
		}
		if int(cs.SrcShard[k]) != c.ShardOf[pr.Src] {
			fail("copy %d pair %d src shard = %d, want owner %d", cp.ID, k, cs.SrcShard[k], c.ShardOf[pr.Src])
		}
		if int(cs.DstShard[k]) != c.ShardOf[pr.Dst] {
			fail("copy %d pair %d dst shard = %d, want owner %d", cp.ID, k, cs.DstShard[k], c.ShardOf[pr.Dst])
		}
	}

	// Producer sync endpoints: the liveness congruence of the spec table.
	// The executor wires each pair's producer from these two slots (wait on
	// ProdWait, trigger ProdArrive); the pair is live exactly when the
	// producer waits on the consumer-triggered war slot (0) and triggers the
	// consumer-awaited done slot (1). Any other wiring deadlocks — so the
	// findings here name the deadlock shape, not merely a table mismatch.
	if len(cs.ProdWait) != len(pairs) || len(cs.ProdArrive) != len(pairs) {
		fail("copy %d producer sync endpoint tables sized %d/%d, want %d each",
			cp.ID, len(cs.ProdWait), len(cs.ProdArrive), len(pairs))
	} else {
		for k := range pairs {
			w, ar := cs.ProdWait[k], cs.ProdArrive[k]
			if w < 0 || w > 1 || ar < 0 || ar > 1 {
				fail("copy %d pair %d producer sync endpoints (%d,%d) outside the war/done slot range", cp.ID, k, w, ar)
				continue
			}
			if w == ar {
				fail("copy %d pair %d producer waits on the very slot it triggers: wait-for cycle copy -> %s -> copy — the pair deadlocks",
					cp.ID, k, slotName(ar))
				continue
			}
			if ar != 1 {
				fail("copy %d pair %d producer arrives at the war slot instead of done: the done event is never triggered and its waiters block forever",
					cp.ID, k)
			}
			if w != 0 {
				fail("copy %d pair %d producer waits on the done slot: wait-for cycle through the consumer's done merge — deadlock, not a race",
					cp.ID, k)
			}
		}
	}

	// Regroup the pair list from scratch (the same destination-run notion
	// the happens-before builder uses, see groups) and rebuild each shard's
	// work partition: one consumer per group (the destination's owner),
	// producer pair sets ascending, groups in pair order.
	want := make([][]cr.SpecWork, c.Opts.NumShards)
	for _, g := range groups(cp) {
		start, end := g[0], g[1]
		touched := map[int]int{}
		get := func(s int) *cr.SpecWork {
			w, ok := touched[s]
			if !ok {
				want[s] = append(want[s], cr.SpecWork{GroupStart: start, GroupEnd: end})
				w = len(want[s]) - 1
				touched[s] = w
			}
			return &want[s][w]
		}
		get(c.ShardOf[pairs[start].Dst]).Consumer = true
		for k := start; k < end; k++ {
			w := get(c.ShardOf[pairs[k].Src])
			w.ProdPairs = append(w.ProdPairs, k)
		}
	}
	if len(cs.PerShard) != len(want) {
		fail("copy %d PerShard has %d entries, want %d", cp.ID, len(cs.PerShard), len(want))
		return
	}
	for s := range want {
		if !workListsEqual(cs.PerShard[s], want[s]) {
			fail("copy %d shard %d work list diverges:\n    got  %+v\n    want %+v", cp.ID, s, cs.PerShard[s], want[s])
		}
	}
}

func slotName(s int8) string {
	if s == 0 {
		return "war"
	}
	return "done"
}

func workListsEqual(a, b []cr.SpecWork) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].GroupStart != b[i].GroupStart || a[i].GroupEnd != b[i].GroupEnd || a[i].Consumer != b[i].Consumer {
			return false
		}
		if len(a[i].ProdPairs) != len(b[i].ProdPairs) {
			return false
		}
		for j := range a[i].ProdPairs {
			if a[i].ProdPairs[j] != b[i].ProdPairs[j] {
				return false
			}
		}
	}
	return true
}

// CheckSpecAll runs CheckSpec on every compiled loop of a plan map, in
// program order.
func CheckSpecAll(prog *ir.Program, plans map[*ir.Loop]*cr.Compiled) error {
	for _, s := range prog.Stmts {
		loop, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		if plan, ok := plans[loop]; ok {
			if err := CheckSpec(plan); err != nil {
				return err
			}
		}
	}
	return nil
}
