// Package verify is a static race/synchronization verifier for compiled
// SPMD programs: it checks, without executing anything, that the copies and
// point-to-point synchronization (or barriers) the cr compiler inserts
// order every pair of conflicting region accesses the way the sequential
// semantics does.
//
// The paper's central correctness claim is that control replication makes
// the SPMD shards observationally equivalent to the sequential control
// thread. The executors check that dynamically (goldens, bitwise equality
// against the sequential engine); this package turns it into a statically
// checkable compiler invariant:
//
//  1. Conflict enumeration: every physical instance (partition subregion,
//     or reduce temporary) is accessed by task launches, inserted copies,
//     initialization, and finalization. Two accesses conflict when their
//     field sets intersect, their element index spaces intersect (the same
//     geometry machinery the compiler's own interference analysis uses),
//     and at least one writes. Reduction applications count as writes:
//     floating-point folds are ordered by the sequential semantics, so
//     their relative order must be fixed even though they commute
//     algebraically.
//
//  2. Happens-before construction: a symbolic replay of the SPMD
//     executor's issue loop over two unrolled loop iterations builds the
//     event DAG the shards would build — local dependence edges from the
//     per-instance lastWrite/readers tables, the per-pair war/done
//     point-to-point sync events, reduction chain edges, the two global
//     barriers per copy in the ablation lowering, and the phase edges
//     around initialization and finalization. Run-ahead window edges are
//     deliberately NOT included: the schedule must be correct under
//     unbounded deferred execution, not rescued by the window.
//
//  3. Checking: every conflicting pair must be connected by a
//     happens-before path in the direction of the sequential program
//     order. A pair with no path is reported as "unordered" (a race); a
//     pair ordered only backwards is "misordered" (sequentially
//     inequivalent). Witnesses carry the two ops, their iteration offsets,
//     shard pair, and the exact region/field intersection.
//
// Two unrolled iterations suffice in steady state: the compiled body is
// structurally identical every iteration, so any conflict at distance >= 2
// iterations is covered by a transitive chain of distance <= 1 conflicts
// through the intervening accesses of the same instance.
//
// Sync edges are labeled so the mutation harness (mutate.go) can delete
// each inserted synchronization in turn and assert the checker flags
// exactly the newly broken pairs — a soundness check on the checker.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/cr"
	"repro/internal/ir"
)

// Analysis is the reusable result of building the conflict set and the
// happens-before graph for one compiled loop. Check answers queries
// against it, optionally with sync edges deleted.
type Analysis struct {
	c         *cr.Compiled
	g         *graph
	conflicts []conflict
	insts     int
	accesses  int
}

// Stats summarizes the size of the verification problem.
type Stats struct {
	Nodes      int `json:"nodes"`
	Edges      int `json:"edges"`
	Instances  int `json:"instances"`
	Accesses   int `json:"accesses"`
	Conflicts  int `json:"conflicts"`
	CrossShard int `json:"cross_shard_conflicts"`
	Iters      int `json:"unrolled_iters"`
}

// Report is the outcome of one verification pass. Every pass of the
// certifier — race checking, liveness, pruning, spec checking, recovery
// certification — emits this one schema, and the CLIs (`crc -verify-json`,
// `weakscale -verify`) serialize it (wrapped in a Suite) instead of
// per-tool ad-hoc shapes.
type Report struct {
	// Pass names the certification pass that produced the report: "races",
	// "liveness", "prune", "spec", or "recovery-cert".
	Pass     string    `json:"pass,omitempty"`
	Findings []Finding `json:"findings"`
	Stats    Stats     `json:"stats"`
	// Counters carries pass-specific tallies (e.g. the prune pass's
	// pruned_edges / pruned_init_copies).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// OK reports whether the pass found no defects.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Suite aggregates the reports of one certification run; the CLIs emit it
// as the single JSON document and exit 2 when OK is false.
type Suite struct {
	Reports []*Report `json:"reports"`
}

// Add appends a report (nil-safe to call on reports that were not run).
func (s *Suite) Add(r *Report) {
	if r != nil {
		s.Reports = append(s.Reports, r)
	}
}

// OK reports whether every pass passed.
func (s *Suite) OK() bool {
	for _, r := range s.Reports {
		if !r.OK() {
			return false
		}
	}
	return true
}

// NumFindings totals the findings across passes.
func (s *Suite) NumFindings() int {
	n := 0
	for _, r := range s.Reports {
		n += len(r.Findings)
	}
	return n
}

// Analyze builds the conflict set and happens-before graph for a compiled
// loop. The same Analysis can serve many Check calls (the mutation harness
// re-checks with edges dropped without rebuilding).
func Analyze(c *cr.Compiled) (*Analysis, error) {
	if c == nil {
		return nil, fmt.Errorf("verify: nil compiled loop")
	}
	b := newBuilder(c)
	g, accs := b.build()
	confs, insts := enumerateConflicts(g, accs)
	return &Analysis{c: c, g: g, conflicts: confs, insts: insts, accesses: len(accs)}, nil
}

// Check verifies every conflicting pair against the happens-before
// relation, treating edges whose label is in drop as deleted (everywhere
// they occur, i.e. in every unrolled iteration — the static analogue of
// the compiler never having inserted that synchronization).
func (a *Analysis) Check(drop ...EdgeID) *Report {
	dropped := make(map[EdgeID]bool, len(drop))
	for _, d := range drop {
		dropped[d] = true
	}
	adj := a.g.adjacency(dropped)
	reach := newReachability(a.g, adj)
	rep := &Report{Pass: "races", Findings: []Finding{}, Stats: Stats{
		Nodes:     len(a.g.nodes),
		Edges:     len(a.g.edges),
		Instances: a.insts,
		Accesses:  a.accesses,
		Conflicts: len(a.conflicts),
		Iters:     a.g.iters,
	}}
	for _, cf := range a.conflicts {
		if cf.crossShard {
			rep.Stats.CrossShard++
		}
		if reach.reaches(cf.earlier.n, cf.later.n) {
			continue
		}
		kind := "unordered"
		if reach.reaches(cf.later.n, cf.earlier.n) {
			kind = "misordered"
		}
		rep.Findings = append(rep.Findings, a.finding(kind, cf))
	}
	sortFindings(rep.Findings)
	return rep
}

// Verify analyzes and checks a compiled loop in one call.
func Verify(c *cr.Compiled) (*Report, error) {
	a, err := Analyze(c)
	if err != nil {
		return nil, err
	}
	return a.Check(), nil
}

// VerifyAll verifies every compiled loop of a program (the plan map
// produced by spmd.CompileAll), returning the first failing report, or the
// merged passing stats. Loops are visited in program order.
func VerifyAll(prog *ir.Program, plans map[*ir.Loop]*cr.Compiled) (*Report, error) {
	merged := &Report{Pass: "races"}
	for _, s := range prog.Stmts {
		loop, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		plan, ok := plans[loop]
		if !ok {
			continue
		}
		rep, err := Verify(plan)
		if err != nil {
			return nil, err
		}
		merged.Stats.Nodes += rep.Stats.Nodes
		merged.Stats.Edges += rep.Stats.Edges
		merged.Stats.Instances += rep.Stats.Instances
		merged.Stats.Accesses += rep.Stats.Accesses
		merged.Stats.Conflicts += rep.Stats.Conflicts
		merged.Stats.CrossShard += rep.Stats.CrossShard
		merged.Stats.Iters += rep.Stats.Iters
		merged.Findings = append(merged.Findings, rep.Findings...)
	}
	sortFindings(merged.Findings)
	return merged, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.A.Iter != b.A.Iter {
			return a.A.Iter < b.A.Iter
		}
		if a.A.Body != b.A.Body {
			return a.A.Body < b.A.Body
		}
		if a.B.Iter != b.B.Iter {
			return a.B.Iter < b.B.Iter
		}
		return a.B.Body < b.B.Body
	})
}
