package verify

import (
	"fmt"
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
)

// TestMutationSoundness is the checker's own soundness check: for every
// test program and both sync lowerings, (1) the unmutated compilation
// verifies clean — zero false positives; (2) every essential single-sync
// deletion is detected — 100% detection; (3) every finding a mutated
// program produces points at the mutated copy — no misattribution.
func TestMutationSoundness(t *testing.T) {
	type fixture struct {
		name string
		prog *ir.Program
		loop *ir.Loop
	}
	var fixtures []fixture
	for _, trip := range []int{1, 3} {
		f := progtest.NewFigure2(48, 8, trip)
		fixtures = append(fixtures, fixture{fmt.Sprintf("figure2/trip=%d", trip), f.Prog, f.Loop})
	}
	for _, trip := range []int{1, 3} {
		f := progtest.NewRegionReduce(24, 4, trip)
		fixtures = append(fixtures, fixture{fmt.Sprintf("regionreduce/trip=%d", trip), f.Prog, f.Loop})
	}

	for _, fx := range fixtures {
		for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
			t.Run(fmt.Sprintf("%s/%v", fx.name, sync), func(t *testing.T) {
				c := compile(t, fx.prog, fx.loop, 4, sync)
				a, err := Analyze(c)
				if err != nil {
					t.Fatal(err)
				}
				checkMutations(t, a)
			})
		}
	}
}

func checkMutations(t *testing.T, a *Analysis) {
	t.Helper()
	if rep := a.Check(); !rep.OK() {
		for _, f := range rep.Findings {
			t.Errorf("false positive: %s", f)
		}
		t.Fatalf("unmutated program failed verification (%d findings)", len(rep.Findings))
	}
	muts := a.Mutations()
	detected, essential := 0, 0
	for _, m := range muts {
		rep := a.Check(m.Drop...)
		if !rep.OK() {
			detected++
		}
		if m.Essential {
			essential++
			if rep.OK() {
				t.Errorf("missed essential mutation %s", m.Name)
			}
		}
		for _, f := range rep.Findings {
			if !m.Covers(f) {
				t.Errorf("mutation %s produced a finding not involving the mutated copy: %s", m.Name, f)
			}
		}
	}
	t.Logf("%d mutations, %d essential, %d detected", len(muts), essential, detected)
}

// TestMutationsCoverEverySyncEdge asserts that under point-to-point sync
// the enumerated mutations' deletion sets cover every labeled sync edge in
// the graph: no inserted synchronization escapes the harness. (Under
// barriers the per-copy barrier deletion is the unit; the reduce-ordering
// done/chain events inside the barrier window are exercised only through
// the chain mutations.)
func TestMutationsCoverEverySyncEdge(t *testing.T) {
	f := progtest.NewRegionReduce(24, 4, 3)
	c := compile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[EdgeID]bool{}
	for _, m := range a.Mutations() {
		for _, id := range m.Drop {
			covered[id] = true
		}
	}
	for _, e := range a.g.edges {
		if e.label.Class == edgeStruct {
			continue
		}
		if !covered[e.label] {
			t.Errorf("sync edge %v not covered by any mutation", e.label)
		}
	}
}
