package verify

import (
	"repro/internal/geometry"
	"repro/internal/region"
)

// conflict is a pair of accesses to the same instance with intersecting
// fields, intersecting elements, and at least one writer, oriented by the
// sequential program order.
type conflict struct {
	earlier, later access
	fields         []region.FieldID
	overlap        geometry.IndexSpace
	crossShard     bool
}

// enumerateConflicts groups the recorded accesses by physical instance and
// emits every conflicting pair, along with the number of distinct
// instances. Instances are visited in first-access order, so the output is
// deterministic.
func enumerateConflicts(g *graph, accs []access) ([]conflict, int) {
	byInst := make(map[instRef][]int)
	var order []instRef
	for i := range accs {
		r := accs[i].inst
		if _, ok := byInst[r]; !ok {
			order = append(order, r)
		}
		byInst[r] = append(byInst[r], i)
	}
	var out []conflict
	for _, inst := range order {
		idxs := byInst[inst]
		for x := 0; x < len(idxs); x++ {
			for y := x + 1; y < len(idxs); y++ {
				a, b := &accs[idxs[x]], &accs[idxs[y]]
				if a.n == b.n {
					// One op's accesses to the same instance (a copy reads
					// and writes overlap regions of a self-fold) need no
					// ordering with themselves.
					continue
				}
				if !a.write && !b.write {
					continue
				}
				fi := fieldIntersection(a.fields, b.fields)
				if len(fi) == 0 {
					continue
				}
				ov := a.space.Intersect(b.space)
				if ov.Empty() {
					continue
				}
				e, l := a, b
				ai, ab, as := g.seqKey(a.n)
				bi, bb, bs := g.seqKey(b.n)
				if seqLess(bi, bb, bs, ai, ab, as) ||
					(!seqLess(ai, ab, as, bi, bb, bs) && b.n < a.n) {
					e, l = b, a
				}
				out = append(out, conflict{
					earlier: *e,
					later:   *l,
					fields:  fi,
					overlap: ov,
					// Cross-shard means two distinct shards; control-thread
					// ops (init, finalization) have no shard.
					crossShard: g.nodes[a.n].shard >= 0 && g.nodes[b.n].shard >= 0 &&
						g.nodes[a.n].shard != g.nodes[b.n].shard,
				})
			}
		}
	}
	return out, len(order)
}

// fieldIntersection returns the fields present in both lists, in a's
// order. Field lists are tiny (a handful per partition), so the quadratic
// scan beats building sets.
func fieldIntersection(a, b []region.FieldID) []region.FieldID {
	var out []region.FieldID
	for _, f := range a {
		for _, h := range b {
			if f == h {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// reachability answers "is there a happens-before path from a to b" for
// all node pairs at once: one reverse-topological sweep computes each
// node's full successor set as a bitset, so every query is a bit test. The
// happens-before graph is a DAG by construction (events only wait on
// previously created events), and stays one when edges are removed.
type reachability struct {
	bits  [][]uint64
	words int
}

func newReachability(g *graph, adj [][]nodeID) *reachability {
	n := len(g.nodes)
	words := (n + 63) / 64
	r := &reachability{bits: make([][]uint64, n), words: words}
	indeg := make([]int32, n)
	for _, succs := range adj {
		for _, v := range succs {
			indeg[v]++
		}
	}
	queue := make([]nodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, nodeID(i))
		}
	}
	topo := make([]nodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		topo = append(topo, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(topo) != n {
		panic("verify: happens-before graph has a cycle")
	}
	for i := n - 1; i >= 0; i-- {
		u := topo[i]
		bs := make([]uint64, words)
		for _, v := range adj[u] {
			bs[int(v)/64] |= 1 << (uint(v) % 64)
			if vb := r.bits[v]; vb != nil {
				for w := range bs {
					bs[w] |= vb[w]
				}
			}
		}
		r.bits[u] = bs
	}
	return r
}

func (r *reachability) reaches(from, to nodeID) bool {
	return r.bits[from][int(to)/64]&(1<<(uint(to)%64)) != 0
}
