package verify

import (
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/progtest"
)

// TestCheckSpecAccepts: the compiler's specialization tables pass the
// independent recomputation for the example programs, shareable and
// ragged alike.
func TestCheckSpecAccepts(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n, nt     int64
		shards    int
		shareable bool
	}{
		{"uniform", 48, 8, 4, true},
		{"ragged", 42, 7, 3, false},
	} {
		f := progtest.NewFigure2(tc.n, tc.nt, 3)
		c := compile(t, f.Prog, f.Loop, tc.shards, cr.PointToPoint)
		if c.Spec.Share.Shareable != tc.shareable {
			t.Errorf("%s: Shareable = %v, want %v", tc.name, c.Spec.Share.Shareable, tc.shareable)
		}
		if err := CheckSpec(c); err != nil {
			t.Errorf("%s: spec check rejected a correct compilation: %v", tc.name, err)
		}
	}
}

// TestCheckSpecDetectsCorruption: every ingredient of the substitution —
// base offsets, the share marker, cost volumes, pair volumes, endpoint
// shards, and the per-shard work partition — is independently recomputed,
// so corrupting any one of them must be caught.
func TestCheckSpecDetectsCorruption(t *testing.T) {
	fresh := func() *cr.Compiled {
		f := progtest.NewFigure2(48, 8, 3)
		return compile(t, f.Prog, f.Loop, 4, cr.PointToPoint)
	}
	firstCopy := func(c *cr.Compiled) *cr.CopySpec {
		for _, op := range c.Spec.Ops {
			if op.Copy != nil {
				return op.Copy
			}
		}
		t.Fatal("compiled figure2 has no copy spec")
		return nil
	}
	firstLaunch := func(c *cr.Compiled) *cr.LaunchSpec {
		for _, op := range c.Spec.Ops {
			if op.Launch != nil {
				return op.Launch
			}
		}
		t.Fatal("compiled figure2 has no launch spec")
		return nil
	}
	for _, tc := range []struct {
		name    string
		corrupt func(c *cr.Compiled)
		want    string
	}{
		{"base offset", func(c *cr.Compiled) { c.Spec.OwnedBase[1]++ }, "running block offset"},
		{"false share marker", func(c *cr.Compiled) {
			c.Spec.Share = cr.ShareMarker{Shareable: false, Reason: "bogus"}
		}, "Shareable"},
		{"cost volume", func(c *cr.Compiled) { firstLaunch(c).CostVol[0]++ }, "cost volume"},
		{"pair volume", func(c *cr.Compiled) { firstCopy(c).PairVols[0]++ }, "volume"},
		{"src shard", func(c *cr.Compiled) {
			cs := firstCopy(c)
			cs.SrcShard[0] = (cs.SrcShard[0] + 1) % 4
		}, "src shard"},
		{"work partition", func(c *cr.Compiled) {
			cs := firstCopy(c)
			for s := range cs.PerShard {
				if len(cs.PerShard[s]) > 0 {
					cs.PerShard[s][0].Consumer = !cs.PerShard[s][0].Consumer
					return
				}
			}
			t.Fatal("no shard has copy work")
		}, "work list diverges"},
		// Liveness corruptions: sync endpoint tables that deadlock rather
		// than race. Swapped wait/arrive endpoints must be rejected as a
		// wait-for cycle, not merely a divergent table.
		{"swapped sync endpoints", func(c *cr.Compiled) {
			cs := firstCopy(c)
			cs.ProdWait[0], cs.ProdArrive[0] = 1, 0
		}, "cycle"},
		// The same swap also starves the done event's waiters: the error
		// must name the never-triggered event, not just the cycle.
		{"arrive at war slot", func(c *cr.Compiled) {
			cs := firstCopy(c)
			cs.ProdWait[0], cs.ProdArrive[0] = 1, 0
		}, "never triggered"},
		{"wait on own done slot", func(c *cr.Compiled) {
			firstCopy(c).ProdWait[0] = 1
		}, "cycle"},
		{"dropped producer", func(c *cr.Compiled) {
			cs := firstCopy(c)
			for s := range cs.PerShard {
				for w := range cs.PerShard[s] {
					if len(cs.PerShard[s][w].ProdPairs) > 0 {
						cs.PerShard[s][w].ProdPairs = cs.PerShard[s][w].ProdPairs[:0]
						return
					}
				}
			}
			t.Fatal("no shard has producer pairs")
		}, "work list diverges"},
	} {
		c := fresh()
		tc.corrupt(c)
		err := CheckSpec(c)
		if err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the corruption (want %q)", tc.name, err, tc.want)
		}
	}
}
