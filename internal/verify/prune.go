package verify

// Redundant-sync analysis and pruning: the second pass of the schedule
// certifier. Control replication inserts synchronization conservatively;
// any sync edge implied by the rest of the happens-before relation is pure
// overhead (on the wire for point-to-point pairs, in trigger fan-out for
// the native backend). This pass computes which inserted edges are
// transitively redundant — the transitive-reduction question asked per
// deletable edge — plus which initialization populations are dead (every
// read of the instance is covered by later compiler-inserted overwrites),
// and emits a cr.PruneInfo licensing the executor to skip exactly those.
//
// Licensing is by re-certification, not by trust in the analysis: each
// candidate is tentatively pruned and the FULL race check and liveness
// check re-run on the precisely rebuilt pruned graph (newPrunedBuilder
// consults the PruneInfo at exactly the points the executor does). A
// candidate that breaks any conflict ordering or any liveness property is
// reverted. Deleting edges from Check's adjacency would NOT be a sound
// license: the builder's unlabeled structural edges (a done event feeding
// the loop-end quiescence merge) would survive the deletion, while the
// executor skipping the sync loses them too — hence the rebuild.

import (
	"fmt"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/region"
)

// AnalyzePruned builds the conflict set and happens-before graph of the
// schedule as the executor would run it under info: pruned sync events are
// never created (or become orphans when a kept edge still waits on them),
// pruned init populations never write, and producer completions stand in
// for pruned done events in the quiescence merges.
func AnalyzePruned(c *cr.Compiled, info *cr.PruneInfo) (*Analysis, error) {
	if c == nil {
		return nil, fmt.Errorf("verify: nil compiled loop")
	}
	b := newPrunedBuilder(c, info)
	g, accs := b.build()
	confs, insts := enumerateConflicts(g, accs)
	return &Analysis{c: c, g: g, conflicts: confs, insts: insts, accesses: len(accs)}, nil
}

// SyncEdges counts the labeled (deletable) synchronization edges of the
// analyzed graph — the quantity pruning strictly reduces.
func (a *Analysis) SyncEdges() int {
	n := 0
	for _, e := range a.g.edges {
		if e.label.Class != edgeStruct {
			n++
		}
	}
	return n
}

// certifies reports whether the pruned schedule passes both the race check
// and the liveness check.
func certifies(c *cr.Compiled, info *cr.PruneInfo) bool {
	certifyCalls++
	a, err := AnalyzePruned(c, info)
	if err != nil {
		return false
	}
	return a.Check().OK() && a.CheckLiveness().OK()
}

// pruneSampleBatch is the batch size above which a failing batch is
// probed at three sample positions before bisecting. At and below it,
// bisection is exhaustive, so every fixture-scale rejection is exact.
const pruneSampleBatch = 12

// acceptMax accepts a maximal certifying subset of the candidate batch
// into info, in order, each certification run with everything accepted so
// far in force.
//
// Acceptance is batched: every pruned graph is a subgraph of the
// certified unpruned graph, so if the whole batch certifies on top of the
// current info, each of its candidates would also have been accepted
// one at a time (un-pruning candidates only restores happens-before edges
// to an acyclic, fully-triggered graph — it cannot introduce a race, a
// cycle, or an orphaned event). Wholesale acceptance is therefore exactly
// the greedy result at one certification per batch — the difference
// between O(candidates) and O(classes) certifications when a class
// accepts or rejects homogeneously (proposeWars handles the war class,
// where acceptance is fine-grained at scale).
//
// A failing batch bisects. Above pruneSampleBatch, a failing batch is
// first probed at its first, middle, and last candidates: if all three
// fail individually, the whole batch is rejected without further
// certification. Candidate classes fail homogeneously in practice (a
// quiescence merge that needs one done event needs them all), so the
// sampling collapses the all-rejected case from O(n) to O(1)
// certifications; a heterogeneous batch that fools all three samples
// under-prunes but still ships a certified (merely non-maximal) info.
// Fixture-scale batches sit under the threshold, so the minimality
// obligation (TestPrunedScheduleMinimal) is probed against exact greedy
// output.
func acceptMax(c *cr.Compiled, info *cr.PruneInfo, batch []func(v bool)) {
	if len(batch) == 0 {
		return
	}
	for _, set := range batch {
		set(true)
	}
	if certifies(c, info) {
		return
	}
	for _, set := range batch {
		set(false)
	}
	if len(batch) == 1 {
		return
	}
	if len(batch) > pruneSampleBatch {
		allFail := true
		for _, i := range []int{0, len(batch) / 2, len(batch) - 1} {
			batch[i](true)
			ok := certifies(c, info)
			batch[i](false)
			if ok {
				allFail = false
				break
			}
		}
		if allFail {
			return
		}
	}
	mid := len(batch) / 2
	acceptMax(c, info, batch[:mid])
	acceptMax(c, info, batch[mid:])
}

// warObligationFailures builds the pruned graph under info, collecting one
// obligation per p2p war slot, and returns the slots whose obligation
// fails. A pruned slot's obligation is that every release-set node still
// reaches the producer's copy node through the remaining graph. A kept
// slot's obligation asks whether removing exactly this event would
// preserve the ordering: a war node's only successor is its copy node cn,
// so no path between two other nodes ever routes through it (it would
// have to continue through cn and return — a cycle), and the question
// reduces to "does every release node reach some other in-neighbor of
// cn". Both tests are against the precise executor-pruned graph.
func warObligationFailures(c *cr.Compiled, info *cr.PruneInfo) map[[2]int]bool {
	b := newPrunedBuilder(c, info)
	b.collectWar = true
	g, _ := b.build()
	reach := newReachability(g, g.adjacency(nil))
	cns := make(map[nodeID]bool)
	for _, ob := range b.warObs {
		if ob.warN >= 0 && ob.cn >= 0 {
			cns[ob.cn] = true
		}
	}
	inOf := make(map[nodeID][]nodeID)
	for _, e := range g.edges {
		if cns[e.to] {
			inOf[e.to] = append(inOf[e.to], e.from)
		}
	}
	bad := make(map[[2]int]bool)
	for _, ob := range b.warObs {
		key := [2]int{ob.copyID, ob.k}
		if bad[key] {
			continue
		}
		if ob.cn < 0 {
			bad[key] = true
			continue
		}
		for _, r := range ob.release {
			ok := false
			if ob.warN < 0 {
				ok = reach.reaches(r, ob.cn)
			} else {
				for _, w := range inOf[ob.cn] {
					if w != ob.warN && (w == r || reach.reaches(r, w)) {
						ok = true
						break
					}
				}
			}
			if !ok {
				bad[key] = true
				break
			}
		}
	}
	return bad
}

// proposeWars accepts the analytically redundant bulk of the p2p war
// candidates in rounds, each round one graph build plus one reachability
// closure instead of one certification per candidate. Round 1 prunes every
// candidate and keeps exactly the slots whose obligation holds in that
// graph — restoring the rejects afterwards only adds ordering, so the
// accepted set certifies jointly by construction (one belt-and-braces
// certification checks it). Later rounds catch wars redundant only
// through war nodes the first round deleted from under them: each tests
// the kept slots individually against the current graph and feeds the
// passers through acceptMax (wars whose witnesses use each other can
// invalidate joint acceptance, which the batched certification then
// resolves). Rounds repeat until a round accepts nothing. This is what
// keeps -prune off the O(accepted-candidates) certification treadmill
// when acceptance is fine-grained at scale: half of figure2's wars prune
// at 64 shards, which costs ~275 bisection certifications but 2 here.
// Slots the rounds reject are re-tried by the caller through acceptMax,
// preserving the exact greedy maximality obligation at fixture scale.
func proposeWars(c *cr.Compiled, info *cr.PruneInfo) {
	type cand struct {
		cp *cr.CopyOp
		k  int
	}
	set := func(cd cand, v bool) { info.SetWar(cd.cp.ID, cd.k, len(cd.cp.Pairs), v) }
	var all []cand
	for _, op := range c.Body {
		cp := op.Copy
		if cp == nil || len(cp.Pairs) == 0 {
			continue
		}
		for k := range cp.Pairs {
			if !info.SkipWar(cp.ID, k) {
				all = append(all, cand{cp, k})
			}
		}
	}
	if len(all) == 0 {
		return
	}

	// Round 1: joint proposal against the all-candidates-pruned graph.
	for _, cd := range all {
		set(cd, true)
	}
	bad := warObligationFailures(c, info)
	var remaining []cand
	for _, cd := range all {
		if bad[[2]int{cd.cp.ID, cd.k}] {
			set(cd, false)
			remaining = append(remaining, cd)
		}
	}
	if len(remaining) < len(all) && !certifies(c, info) {
		// The joint proposal should certify by construction; if it ever
		// does not, revert it all and let the caller's exact path decide.
		for _, cd := range all {
			set(cd, false)
		}
		return
	}

	// Later rounds: individual tests against the current graph.
	for len(remaining) > 0 {
		bad := warObligationFailures(c, info)
		var batch []func(v bool)
		var took, next []cand
		for _, cd := range remaining {
			if bad[[2]int{cd.cp.ID, cd.k}] {
				next = append(next, cd)
				continue
			}
			cd := cd
			took = append(took, cd)
			batch = append(batch, func(v bool) { set(cd, v) })
		}
		if len(batch) == 0 {
			return
		}
		before := info.PrunedWar()
		acceptMax(c, info, batch)
		if info.PrunedWar() == before {
			return
		}
		for _, cd := range took {
			if !info.SkipWar(cd.cp.ID, cd.k) {
				next = append(next, cd)
			}
		}
		remaining = next
	}
}

// PlanPrune runs the redundant-sync and dead-init analyses over a compiled
// loop and returns the licensed PruneInfo with a pass report. The caller
// attaches the info to Compiled.Prune to activate it. If the unpruned
// schedule itself fails certification, the report carries those findings
// and no pruning is attempted.
func PlanPrune(c *cr.Compiled) (*cr.PruneInfo, *Report, error) {
	a0, err := Analyze(c)
	if err != nil {
		return nil, nil, err
	}
	if base := a0.Check(); !base.OK() {
		base.Pass = "prune"
		return nil, base, nil
	}
	if live := a0.CheckLiveness(); !live.OK() {
		live.Pass = "prune"
		return nil, live, nil
	}

	info := &cr.PruneInfo{}
	// Candidate classes in a fixed, deterministic order: interior
	// reduction-chain links, then p2p war slots, then done slots, each in
	// body order (a done is only prunable once no kept chain waits on it).
	// Done candidates exist wherever the executor creates the event: every
	// p2p pair, but only reduce-chain pairs under barriers (the barrier
	// lowering has no per-pair done otherwise — pruning one would be
	// vacuously certified and dishonestly counted).
	var chains, dones []func(v bool)
	for _, op := range c.Body {
		cp := op.Copy
		if cp == nil || len(cp.Pairs) == 0 {
			continue
		}
		n := len(cp.Pairs)
		if cp.Reduce != region.ReduceNone {
			for _, gr := range groups(cp) {
				for k := gr[0] + 1; k < gr[1]; k++ {
					k := k
					chains = append(chains, func(v bool) { info.SetChain(cp.ID, k, n, v) })
				}
			}
		}
		if c.Opts.Sync == cr.PointToPoint || cp.Reduce != region.ReduceNone {
			for k := 0; k < n; k++ {
				k := k
				dones = append(dones, func(v bool) { info.SetDone(cp.ID, k, n, v) })
			}
		}
	}
	acceptMax(c, info, chains)
	if c.Opts.Sync == cr.PointToPoint {
		// Wars: the analytic proposal takes the jointly redundant bulk in
		// one certification; the rejects get the exact greedy treatment.
		proposeWars(c, info)
		var wars []func(v bool)
		for _, op := range c.Body {
			cp := op.Copy
			if cp == nil || len(cp.Pairs) == 0 {
				continue
			}
			n := len(cp.Pairs)
			for k := 0; k < n; k++ {
				if info.SkipWar(cp.ID, k) {
					continue
				}
				k := k
				wars = append(wars, func(v bool) { info.SetWar(cp.ID, k, n, v) })
			}
		}
		acceptMax(c, info, wars)
	}
	acceptMax(c, info, dones)

	// Dead initialization populations, computed against the pruned graph's
	// reachability (a kept sync edge may be exactly what covers a read).
	markDeadInits(c, info)
	if !certifies(c, info) {
		// Belt and braces: coverage is sound by construction, but never
		// ship an uncertified prune set.
		info.DeadInit = nil
	}

	af, err := AnalyzePruned(c, info)
	if err != nil {
		return nil, nil, err
	}
	rep := af.Check()
	rep.Pass = "prune"
	rep.Counters = map[string]int64{
		"pruned_war":         int64(info.PrunedWar()),
		"pruned_done":        int64(info.PrunedDone()),
		"pruned_chain":       int64(info.PrunedChain()),
		"pruned_edges":       int64(info.PrunedEdges()),
		"pruned_init_copies": int64(info.PrunedInits()),
		"sync_edges_before":  int64(a0.SyncEdges()),
		"sync_edges_after":   int64(af.SyncEdges()),
	}
	return info, rep, nil
}

// markDeadInits marks instances whose initialization population is dead:
// every read of the instance (including finalization read-backs; writes
// that may also read — task read-write updates and reduction folds — count
// as reads) is covered, element for element and field for field, by plain
// copy overwrites that happen-before it. Such an instance's contents before
// its first overwrite are unobservable, so the population — a real
// cross-node transfer in the init phase — can be skipped.
func markDeadInits(c *cr.Compiled, info *cr.PruneInfo) {
	b := newPrunedBuilder(c, info)
	g, accs := b.build()
	reach := newReachability(g, g.adjacency(nil))

	type use struct {
		n      nodeID
		fields []region.FieldID
		space  geometry.IndexSpace
	}
	reads := make(map[instRef][]use)
	covers := make(map[instRef][]use)
	for _, ac := range accs {
		if ac.inst.part == nil {
			continue // reduce temporaries are never initialized from the parent
		}
		nd := &g.nodes[ac.n]
		switch {
		case !ac.write:
			reads[ac.inst] = append(reads[ac.inst], use{ac.n, ac.fields, ac.space})
		case nd.kind == kInit:
			// The candidate for removal itself.
		case (nd.kind == kCopy || nd.kind == kInitCopy) && copyIsPlain(c, nd.copyID):
			covers[ac.inst] = append(covers[ac.inst], use{ac.n, ac.fields, ac.space})
		default:
			// A write that may read its prior contents (task read-write
			// updates, reduction folds): treat as a read, never as cover.
			reads[ac.inst] = append(reads[ac.inst], use{ac.n, ac.fields, ac.space})
		}
	}

	for _, part := range c.UsedParts {
		for _, col := range c.Domain {
			ref := instRef{part: part, color: col}
			dead := true
			for _, r := range reads[ref] {
				remaining := r.space
				for _, w := range covers[ref] {
					if remaining.Empty() {
						break
					}
					if w.n == r.n || !reach.reaches(w.n, r.n) {
						continue
					}
					if !fieldsContain(w.fields, r.fields) {
						continue
					}
					remaining = remaining.Subtract(w.space)
				}
				if !remaining.Empty() {
					dead = false
					break
				}
			}
			if dead {
				info.SetInit(part, c.ColorIdx[col], len(c.Domain), true)
			}
		}
	}
}

// copyIsPlain reports whether the copy overwrites (ReduceNone) rather than
// folds — only plain overwrites may cover a read for dead-init purposes.
func copyIsPlain(c *cr.Compiled, copyID int32) bool {
	for _, op := range c.Body {
		if op.Copy != nil && op.Copy.ID == int(copyID) {
			return op.Copy.Reduce == region.ReduceNone
		}
	}
	for _, cp := range c.InitCopies {
		if cp.ID == int(copyID) {
			return cp.Reduce == region.ReduceNone
		}
	}
	return false
}

// fieldsContain reports whether every field of sub is present in sup.
func fieldsContain(sup, sub []region.FieldID) bool {
	return len(fieldIntersection(sub, sup)) == len(sub)
}

// certifyCalls counts certification runs (instrumentation for tests).
var certifyCalls int
