package verify

// Static deadlock-freedom: the liveness pass of the schedule certifier.
//
// The happens-before graph built by graph.go doubles as the wait-for graph
// of the compiled schedule: an edge u -> v means the executor makes v wait
// on u (a task precondition, a copy's war wait, a done trigger, a barrier
// arrival, a reduction-chain link). A correct schedule can always make
// progress, which statically means three things:
//
//  1. The wait-for graph is acyclic. A cycle is a deadlock: every op on it
//     waits, transitively, on itself — the static analogue of the DES's
//     realm.DeadlockError ("simulation wedged with events outstanding")
//     and the native backend's two-quiet-window realm.HangError.
//  2. Every synchronization event with waiters has a trigger. A war/done
//     event nothing ever connects is never triggered, so its waiters block
//     forever even though no cycle exists.
//  3. Every global barrier's arrival count equals its participant count. A
//     shard that skips an arrival leaves the barrier one generation short
//     and every arriving shard blocked — a phase-count mismatch.
//
// The executor satisfies all three by construction; the point of the pass
// is to certify that compiled (and especially *pruned* and *rebuilt*)
// schedules still do, and to reject the mutation harness's miswirings with
// a concrete witness naming the blocked shard, iteration, and sync pair.

import (
	"fmt"
	"strings"
)

// CheckLiveness certifies deadlock-freedom of the analyzed schedule:
// acyclicity of the wait-for graph, no never-triggered sync events, and
// matching barrier arrival counts. The returned report carries concrete
// witnesses (the wait cycle, the orphaned event, the short barrier).
func (a *Analysis) CheckLiveness() *Report {
	return a.checkLiveness(nil, -1)
}

// checkLiveness runs the liveness checks with optional mutation state: the
// extra wait-for edges of a rewiring mutation, and the index of a barrier
// arrival to suppress (-1 for none).
func (a *Analysis) checkLiveness(extra []edge, skipArrival int) *Report {
	g := a.g
	rep := &Report{Pass: "liveness", Findings: []Finding{}, Stats: Stats{
		Nodes: len(g.nodes),
		Edges: len(g.edges) + len(extra),
		Iters: g.iters,
	}}

	adj := g.adjacency(nil)
	for _, e := range extra {
		adj[e.from] = append(adj[e.from], e.to)
	}

	// 1. Cycle detection: Kahn's algorithm. Nodes left unprocessed all lie
	// on or downstream of a cycle; a successor walk restricted to them
	// must re-visit a node, and the revisit closes a concrete cycle.
	indeg := make([]int32, len(g.nodes))
	for _, succs := range adj {
		for _, v := range succs {
			indeg[v]++
		}
	}
	queue := make([]nodeID, 0, len(g.nodes))
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, nodeID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != len(g.nodes) {
		rep.Findings = append(rep.Findings, a.cycleFinding(adj, indeg))
	}

	// 2. Never-triggered sync events: a war/done node with waiters but no
	// trigger. (Only reachable via pruning or miswiring — the conservative
	// builder always connects both sides.)
	hasPred := make([]bool, len(g.nodes))
	for _, e := range g.edges {
		hasPred[e.to] = true
	}
	for _, e := range extra {
		hasPred[e.to] = true
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		if nd.kind != kWar && nd.kind != kDone {
			continue
		}
		if hasPred[i] || len(adj[i]) == 0 {
			continue
		}
		blocked := a.opRef(access{n: adj[i][0]})
		ev := a.opRef(access{n: nodeID(i)})
		rep.Findings = append(rep.Findings, Finding{
			Kind: "never-triggered",
			A:    ev,
			B:    blocked,
			Detail: fmt.Sprintf(
				"%s event of copy %d pair %d (iter %d) has %d waiter(s) but no trigger; first blocked op: %s",
				ev.Kind, ev.Copy, ev.Pair, ev.Iter, len(adj[i]), blocked),
		})
	}

	// 3. Barrier arrival counts.
	for bi, ba := range g.arrivals {
		got := ba.got
		if bi == skipArrival {
			got--
		}
		if got == ba.want {
			continue
		}
		ref := a.opRef(access{n: ba.b})
		rep.Findings = append(rep.Findings, Finding{
			Kind: "phase-mismatch",
			A:    ref,
			B:    ref,
			Detail: fmt.Sprintf(
				"barrier phase %d of copy %d (iter %d) expects %d arrivals but gets %d: the barrier never triggers and every arrived shard blocks",
				ba.phase, ba.copyID, ba.iter, ba.want, got),
		})
	}
	return rep
}

// cycleFinding extracts one concrete wait cycle from the residue of an
// incomplete topological sort (final indeg > 0 marks exactly the
// unprocessed nodes) and renders it as a witness. Every residue node has a
// residue predecessor — its positive indegree counts exactly the
// unprocessed preds — so a backward walk must revisit a node, and the
// revisit closes a cycle; residue *successors* need not exist (a sink
// downstream of a cycle is residue too), which is why the walk goes
// backward.
func (a *Analysis) cycleFinding(adj [][]nodeID, indeg []int32) Finding {
	pred := make([]nodeID, len(indeg))
	for i := range pred {
		pred[i] = -1
	}
	for u := range adj {
		if indeg[u] <= 0 {
			continue
		}
		for _, v := range adj[u] {
			if indeg[v] > 0 && pred[v] < 0 {
				pred[v] = nodeID(u)
			}
		}
	}
	start := nodeID(-1)
	for i := range indeg {
		if indeg[i] > 0 {
			start = nodeID(i)
			break
		}
	}
	pos := map[nodeID]int{}
	var rev []nodeID
	u := start
	for {
		if at, ok := pos[u]; ok {
			rev = append(rev[at:], u) // close the cycle, first == last
			break
		}
		pos[u] = len(rev)
		rev = append(rev, u)
		u = pred[u]
	}
	// rev runs against the wait direction; reverse into wait order.
	path := make([]nodeID, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	refs := make([]OpRef, len(path))
	names := make([]string, len(path))
	for i, n := range path {
		refs[i] = a.opRef(access{n: n})
		names[i] = fmt.Sprintf("%s(copy %d, pair %d, iter %d, shard %d)",
			refs[i].Kind, refs[i].Copy, refs[i].Pair, refs[i].Iter, refs[i].Shard)
	}
	f := Finding{
		Kind:  "cycle",
		A:     refs[0],
		Cycle: refs,
		Detail: fmt.Sprintf("wait-for cycle of length %d: %s",
			len(path)-1, strings.Join(names, " -> ")),
	}
	if len(refs) > 1 {
		f.B = refs[1]
	}
	return f
}

// LivenessMutation is one simulated sync-wiring bug: wait-for edges ADDED
// to (or a barrier arrival removed from) the schedule, modeling a compiler
// or executor that misorders or inverts an inserted synchronization. Edge
// *deletions* cannot deadlock a DAG, so the harness rewires: each mutation
// either closes a structural cycle through edges the clean schedule is
// guaranteed to contain, or starves a barrier — which is why 100% detection
// is demanded, not merely hoped for.
type LivenessMutation struct {
	// Name describes the mutation, e.g. "invert-prod-sync(copy 3, pair 7)".
	Name string `json:"name"`
	// Copy/Pair locate the mutated synchronization.
	Copy int `json:"copy"`
	Pair int `json:"pair"`
	// Kinds are the finding kinds the mutation may legitimately produce.
	Kinds []string `json:"kinds"`

	extra       []edge
	skipArrival int
}

// CheckLivenessMutated re-runs the liveness checks under one mutation.
func (a *Analysis) CheckLivenessMutated(m LivenessMutation) *Report {
	return a.checkLiveness(m.extra, m.skipArrival)
}

// LivenessMutations enumerates the sync miswirings for the analyzed loop's
// body copies, all guaranteed-detectable by construction:
//
//   - invert-prod-sync: the producer waits on its own completion sync
//     (done_k -> copy_k); with the existing copy_k -> done_k trigger this
//     is a two-cycle. Models swapped wait/arrive endpoints.
//   - misorder-cons-release: the consumer connects its release after
//     merging the pair's done (done_k -> war_k); with war_k -> copy_k ->
//     done_k this closes a three-cycle.
//   - invert-chain: the fold chain runs backwards (done_k -> copy_{k-1});
//     with copy_{k-1} -> done_{k-1} -> copy_k -> done_k this closes a
//     four-cycle. Only emitted where a chain edge exists.
//   - swap-barriers: arrival at the first barrier waits on the second
//     (b2 -> b1); with b1 -> b2 this is a two-cycle.
//   - skip-arrival: one shard never arrives at the first barrier — a
//     phase-count mismatch, not a cycle.
func (a *Analysis) LivenessMutations() []LivenessMutation {
	var out []LivenessMutation
	g := a.g
	for _, op := range a.c.Body {
		cp := op.Copy
		if cp == nil || len(cp.Pairs) == 0 {
			continue
		}
		for k := range cp.Pairs {
			cn := g.find(kCopy, int32(cp.ID), int32(k), 0)
			dn := g.find(kDone, int32(cp.ID), int32(k), 0)
			wn := g.find(kWar, int32(cp.ID), int32(k), 0)
			if cn >= 0 && dn >= 0 {
				out = append(out, LivenessMutation{
					Name:        fmt.Sprintf("invert-prod-sync(copy %d, pair %d)", cp.ID, k),
					Copy:        cp.ID,
					Pair:        k,
					Kinds:       []string{"cycle"},
					extra:       []edge{{from: dn, to: cn}},
					skipArrival: -1,
				})
			}
			if cn >= 0 && dn >= 0 && wn >= 0 {
				out = append(out, LivenessMutation{
					Name:        fmt.Sprintf("misorder-cons-release(copy %d, pair %d)", cp.ID, k),
					Copy:        cp.ID,
					Pair:        k,
					Kinds:       []string{"cycle"},
					extra:       []edge{{from: dn, to: wn}},
					skipArrival: -1,
				})
			}
			if k > 0 {
				// Invert the chain only where the clean graph has one.
				prevCn := g.find(kCopy, int32(cp.ID), int32(k-1), 0)
				if dn >= 0 && prevCn >= 0 && a.hasChainEdge(cp.ID, k) {
					out = append(out, LivenessMutation{
						Name:        fmt.Sprintf("invert-chain(copy %d, pair %d)", cp.ID, k),
						Copy:        cp.ID,
						Pair:        k,
						Kinds:       []string{"cycle"},
						extra:       []edge{{from: dn, to: prevCn}},
						skipArrival: -1,
					})
				}
			}
		}
		b1 := g.find(kBarrier, int32(cp.ID), 0, 0)
		b2 := g.find(kBarrier, int32(cp.ID), 1, 0)
		if b1 >= 0 && b2 >= 0 {
			out = append(out, LivenessMutation{
				Name:        fmt.Sprintf("swap-barriers(copy %d)", cp.ID),
				Copy:        cp.ID,
				Pair:        -1,
				Kinds:       []string{"cycle"},
				extra:       []edge{{from: b2, to: b1}},
				skipArrival: -1,
			})
			for ai, ba := range g.arrivals {
				if ba.b == b1 {
					out = append(out, LivenessMutation{
						Name:        fmt.Sprintf("skip-arrival(copy %d)", cp.ID),
						Copy:        cp.ID,
						Pair:        -1,
						Kinds:       []string{"phase-mismatch"},
						skipArrival: ai,
					})
					break
				}
			}
		}
	}
	return out
}

// hasChainEdge reports whether the clean graph carries the chain edge into
// pair k of the copy in iteration 0.
func (a *Analysis) hasChainEdge(copyID, k int) bool {
	want := EdgeID{Class: EdgeChain, Copy: copyID, Pair: k}
	for _, e := range a.g.edges {
		if e.label == want && a.g.nodes[e.to].iter == 0 {
			return true
		}
	}
	return false
}

// Covers reports whether a liveness finding is attributable to the
// mutation: a cycle or orphan touching the mutated copy, or the mutated
// barrier's phase mismatch.
func (m LivenessMutation) Covers(f Finding) bool {
	if f.A.Copy == m.Copy || f.B.Copy == m.Copy {
		return true
	}
	for _, r := range f.Cycle {
		if r.Copy == m.Copy {
			return true
		}
	}
	return false
}
