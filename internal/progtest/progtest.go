// Package progtest builds small ir programs with known sequential semantics
// for use by the runtime, compiler, and executor test suites. Each builder
// returns the program plus enough handles to inspect results.
package progtest

import (
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/region"
)

// Figure2 is the paper's running example (Figure 2): regions A and B,
// disjoint block partitions PA/PB, aliased image partition QB through
// h(j) = j+Shift mod N, and the loop
//
//	for t in 0..Trip { forall i: TF(PB[i], PA[i]); forall j: TG(PA[j], QB[j]) }
//
// with F(x) = x+1 and G(y) = 2y, A initialized to the element index.
type Figure2 struct {
	Prog   *ir.Program
	A, B   *region.Region
	PA, PB *region.Partition
	QB     *region.Partition
	Val    region.FieldID
	Loop   *ir.Loop
	N      int64
	Shift  int64
}

// NewFigure2 builds the example with n elements, nt partition colors, and
// the given trip count.
func NewFigure2(n, nt int64, trip int) *Figure2 {
	f := &Figure2{N: n, Shift: 3}
	p := ir.NewProgram("figure2")
	fs := region.NewFieldSpace("val")
	f.Val = fs.Field("val")

	f.A = p.Tree.NewRegion("A", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	f.B = p.Tree.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[f.A] = fs
	p.FieldSpaces[f.B] = fs

	f.PA = f.A.Block("PA", nt)
	f.PB = f.B.Block("PB", nt)
	shift := f.Shift
	f.QB = region.Image(f.B, f.PB, "QB", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((pt.X() + shift) % n)}
	})

	val := f.Val
	tf := &ir.TaskDecl{
		Name: "TF",
		Params: []ir.Param{
			{Name: "B", Priv: ir.PrivReadWrite, Fields: []region.FieldID{val}},
			{Name: "A", Priv: ir.PrivRead, Fields: []region.FieldID{val}},
		},
		Kernel: func(tc *ir.TaskCtx) {
			bArg, aArg := &tc.Args[0], &tc.Args[1]
			bArg.Each(func(pt geometry.Point) bool {
				bArg.Set(val, pt, aArg.Get(val, pt)+1)
				return true
			})
		},
		CostPerElem: 100,
	}
	tg := &ir.TaskDecl{
		Name: "TG",
		Params: []ir.Param{
			{Name: "A", Priv: ir.PrivReadWrite, Fields: []region.FieldID{val}},
			{Name: "B", Priv: ir.PrivRead, Fields: []region.FieldID{val}},
		},
		Kernel: func(tc *ir.TaskCtx) {
			aArg, bArg := &tc.Args[0], &tc.Args[1]
			aArg.Each(func(pt geometry.Point) bool {
				h := geometry.Pt1((pt.X() + shift) % n)
				aArg.Set(val, pt, 2*bArg.Get(val, h))
				return true
			})
		},
		CostPerElem: 100,
	}

	f.Loop = &ir.Loop{Var: "t", Trip: trip, Body: []ir.Stmt{
		&ir.Launch{Task: tf, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: f.PB}, {Part: f.PA}}, Label: "loopF"},
		&ir.Launch{Task: tg, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: f.PA}, {Part: f.QB}}, Label: "loopG"},
	}}
	p.Add(
		&ir.FillFunc{Target: f.A, Field: val, Fn: func(pt geometry.Point) float64 { return float64(pt.X()) }},
		&ir.Fill{Target: f.B, Field: val, Value: 0},
		f.Loop,
	)
	f.Prog = p
	return f
}

// ScalarSum builds a program whose single launch sum-reduces element values
// 0..n-1 into scalar "total", then doubles it with a scalar statement.
type ScalarSum struct {
	Prog *ir.Program
	R    *region.Region
	X    region.FieldID
}

// NewScalarSum builds the fixture.
func NewScalarSum(n, nt int64) *ScalarSum {
	f := &ScalarSum{}
	p := ir.NewProgram("scalarsum")
	fs := region.NewFieldSpace("x")
	f.X = fs.Field("x")
	f.R = p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[f.R] = fs
	pr := f.R.Block("PR", nt)
	x := f.X
	sum := &ir.TaskDecl{
		Name:   "sum",
		Params: []ir.Param{{Name: "R", Priv: ir.PrivRead, Fields: []region.FieldID{x}}},
		Kernel: func(tc *ir.TaskCtx) {
			tc.Args[0].Each(func(pt geometry.Point) bool {
				tc.Return += tc.Args[0].Get(x, pt)
				return true
			})
		},
		CostPerElem: 50,
	}
	p.Add(
		&ir.FillFunc{Target: f.R, Field: x, Fn: func(pt geometry.Point) float64 { return float64(pt.X()) }},
		&ir.Loop{Var: "t", Trip: 2, Body: []ir.Stmt{
			&ir.Launch{Task: sum, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pr}},
				Reduce: &ir.ScalarReduce{Into: "total", Op: region.ReduceSum}},
			&ir.SetScalar{Name: "doubled", Expr: func(e ir.Env) float64 { return 2 * e.Get("total") }},
		}},
	)
	f.Prog = p
	return f
}

// RegionReduce builds a program whose tasks sum-reduce +1 contributions
// through an overlapping image partition (each task covers its block plus
// the next element, wrapping), iterated in a loop with an intervening
// reader so reduction folds and copies interleave.
type RegionReduce struct {
	Prog *ir.Program
	R    *region.Region
	Acc  region.FieldID
	Loop *ir.Loop
}

// NewRegionReduce builds the fixture with n elements (must be even), nt
// colors, and trip iterations.
func NewRegionReduce(n, nt int64, trip int) *RegionReduce {
	f := &RegionReduce{}
	p := ir.NewProgram("regionreduce")
	fs := region.NewFieldSpace("acc", "out")
	f.Acc = fs.Field("acc")
	out := fs.Field("out")
	f.R = p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[f.R] = fs
	pr := f.R.Block("PR", nt)
	img := region.Image(f.R, pr, "IMG", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{pt, geometry.Pt1((pt.X() + 1) % n)}
	})
	acc := f.Acc
	contrib := &ir.TaskDecl{
		Name:   "contrib",
		Params: []ir.Param{{Name: "IMG", Priv: ir.PrivReduce, Op: region.ReduceSum, Fields: []region.FieldID{acc}}},
		Kernel: func(tc *ir.TaskCtx) {
			tc.Args[0].Each(func(pt geometry.Point) bool {
				tc.Args[0].Reduce(acc, region.ReduceSum, pt, 1+float64(pt.X())/16)
				return true
			})
		},
		CostPerElem: 60,
	}
	reader := &ir.TaskDecl{
		Name: "reader",
		Params: []ir.Param{
			{Name: "OUT", Priv: ir.PrivReadWrite, Fields: []region.FieldID{out}},
			{Name: "ACC", Priv: ir.PrivRead, Fields: []region.FieldID{acc}},
		},
		Kernel: func(tc *ir.TaskCtx) {
			o, a := &tc.Args[0], &tc.Args[1]
			o.Each(func(pt geometry.Point) bool {
				o.Set(out, pt, o.Get(out, pt)+3*a.Get(acc, pt))
				return true
			})
		},
		CostPerElem: 60,
	}
	f.Loop = &ir.Loop{Var: "t", Trip: trip, Body: []ir.Stmt{
		&ir.Launch{Task: contrib, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: img}}, Label: "contrib"},
		&ir.Launch{Task: reader, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pr}, {Part: pr}}, Label: "reader"},
	}}
	p.Add(
		&ir.Fill{Target: f.R, Field: acc, Value: 0},
		&ir.Fill{Target: f.R, Field: out, Value: 0},
		f.Loop,
	)
	f.Prog = p
	return f
}
