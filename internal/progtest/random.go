package progtest

import (
	"fmt"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/region"
)

// RandomProgram generates a random but well-formed implicitly parallel
// program for cross-engine equivalence testing: one region with two fields,
// a disjoint block partition and two random image partitions, and a loop of
// randomly chosen launches — writers (write the block partition, read an
// image), reducers (sum-reduce into an image), and scalar folds. The
// returned program is valid for sequential, implicit, and control-
// replicated execution, and all three must produce bitwise-identical
// results.
func RandomProgram(seed int64) (*ir.Program, []*region.Region, []region.FieldID) {
	rng := rand.New(rand.NewSource(seed))
	p := ir.NewProgram(fmt.Sprintf("random-%d", seed))
	fs := region.NewFieldSpace("x", "y")
	x, y := fs.Field("x"), fs.Field("y")

	n := int64(24 + rng.Intn(4)*8)
	nt := int64(3 + rng.Intn(4)) // 3..6 colors: uneven shard ownership
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[r] = fs
	pr := r.Block("PR", nt)

	images := make([]*region.Partition, 2)
	for i := range images {
		shift := int64(rng.Intn(int(n)))
		fan := 1 + rng.Intn(2)
		images[i] = region.Image(r, pr, fmt.Sprintf("Q%d", i), func(pt geometry.Point) []geometry.Point {
			out := make([]geometry.Point, 0, fan)
			for k := 0; k < fan; k++ {
				out = append(out, geometry.Pt1((pt.X()+shift+int64(k)*3)%n))
			}
			return out
		})
	}

	fields := []region.FieldID{x, y}
	pick := func(fs []region.FieldID) region.FieldID { return fs[rng.Intn(len(fs))] }

	newWriter := func(id int) *ir.Launch {
		// Write one field while reading the other through the aliased image:
		// reading the written field through an aliased partition within one
		// launch would make the forall tasks genuinely conflict (the engines
		// reject that), so a two-field ping-pong is the well-formed shape,
		// exactly like PRK stencil's separate in/out arrays.
		wf := pick(fields)
		rf := x
		if wf == x {
			rf = y
		}
		img := images[rng.Intn(len(images))]
		c1 := 0.5 + float64(rng.Intn(3))*0.25
		c2 := 0.125 * float64(1+rng.Intn(3))
		task := &ir.TaskDecl{
			Name: fmt.Sprintf("writer%d", id),
			Params: []ir.Param{
				{Priv: ir.PrivReadWrite, Fields: []region.FieldID{wf}},
				{Priv: ir.PrivRead, Fields: []region.FieldID{rf}},
			},
			NumScalars: 1,
			Kernel: func(tc *ir.TaskCtx) {
				own, ghost := &tc.Args[0], &tc.Args[1]
				sum := 0.0
				ghost.Each(func(pt geometry.Point) bool {
					sum += ghost.Get(rf, pt)
					return true
				})
				s := tc.Scalars[0]
				own.Each(func(pt geometry.Point) bool {
					own.Set(wf, pt, own.Get(wf, pt)*c1+sum*c2*0.001+float64(pt.X())*0.25+s*0.125)
					return true
				})
			},
			CostPerElem: 50,
		}
		return &ir.Launch{
			Task: task, Domain: ir.Colors1D(nt),
			Args:       []ir.RegionArg{{Part: pr}, {Part: img}},
			ScalarArgs: []ir.ScalarExpr{ir.VarExpr("s")},
			Label:      task.Name,
		}
	}

	newReducer := func(id int) *ir.Launch {
		rf := pick(fields)
		img := images[rng.Intn(len(images))]
		task := &ir.TaskDecl{
			Name:   fmt.Sprintf("reducer%d", id),
			Params: []ir.Param{{Priv: ir.PrivReduce, Op: region.ReduceSum, Fields: []region.FieldID{rf}}},
			Kernel: func(tc *ir.TaskCtx) {
				a := &tc.Args[0]
				a.Each(func(pt geometry.Point) bool {
					a.Reduce(rf, region.ReduceSum, pt, 0.25+float64(pt.X())*0.0625)
					return true
				})
			},
			CostPerElem: 50,
		}
		return &ir.Launch{Task: task, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: img}}, Label: task.Name}
	}

	newScalarFold := func(id int) *ir.Launch {
		rf := pick(fields)
		task := &ir.TaskDecl{
			Name:   fmt.Sprintf("fold%d", id),
			Params: []ir.Param{{Priv: ir.PrivRead, Fields: []region.FieldID{rf}}},
			Kernel: func(tc *ir.TaskCtx) {
				a := &tc.Args[0]
				a.Each(func(pt geometry.Point) bool {
					tc.Return += a.Get(rf, pt) * 0.0625
					return true
				})
			},
			CostPerElem: 50,
		}
		return &ir.Launch{
			Task: task, Domain: ir.Colors1D(nt),
			Args:   []ir.RegionArg{{Part: pr}},
			Reduce: &ir.ScalarReduce{Into: "s", Op: region.ReduceSum},
			Label:  task.Name,
		}
	}

	// Body: a random mix of writers, reducers, and scalar folds; the first
	// statement is random too, so ghost instances are sometimes consumed
	// before the first in-loop write (exercising the initialization copies).
	mk := func(i int) ir.Stmt {
		switch rng.Intn(3) {
		case 0:
			return newWriter(i)
		case 1:
			return newReducer(i)
		default:
			return newScalarFold(i)
		}
	}
	// Each loop must use the disjoint partition through at least one launch
	// (a writer or a fold): reductions into aliased images need a disjoint
	// finalization home, and the compiler rejects loops without one.
	mkBody := func(base, n int) []ir.Stmt {
		var body []ir.Stmt
		if rng.Intn(2) == 0 {
			body = append(body, newWriter(base))
		} else {
			body = append(body, newScalarFold(base))
		}
		for i := 1; i < n; i++ {
			body = append(body, mk(base+i))
		}
		// Shuffle so the disjoint-using launch isn't always first.
		rng.Shuffle(len(body), func(i, j int) { body[i], body[j] = body[j], body[i] })
		return body
	}
	body := mkBody(0, 2+rng.Intn(4))

	p.Scalars["s"] = 1
	p.Add(
		&ir.FillFunc{Target: r, Field: x, Fn: func(pt geometry.Point) float64 { return float64(pt.X()) * 0.5 }},
		&ir.FillFunc{Target: r, Field: y, Fn: func(pt geometry.Point) float64 { return 2 - float64(pt.X())*0.25 }},
		&ir.Loop{Var: "t", Trip: 1 + rng.Intn(3), Body: body},
	)
	// Sometimes a second, independently replicated loop follows (§2.2: CR
	// applies to different parts of the program independently).
	if rng.Intn(2) == 0 {
		p.Add(&ir.Loop{Var: "u", Trip: 1 + rng.Intn(2), Body: mkBody(100, 1+rng.Intn(3))})
	}
	return p, []*region.Region{r}, fields
}
