// Package baseline provides the hand-written SPMD reference codes the paper
// compares against (MPI, MPI+OpenMP, MPI+Kokkos in rank-per-core and
// rank-per-node configurations). A baseline run models one rank group per
// node: each node thread computes its kernel, exchanges halos with its
// neighbors, optionally joins a per-iteration allreduce, and repeats —
// exactly the structure of Figure 1b, written directly against the
// simulated machine with none of the tasking runtime's overheads.
package baseline

import (
	"fmt"

	"repro/internal/realm"
)

// Neighbor describes one outgoing halo exchange of a node per iteration.
type Neighbor struct {
	Node  int   // destination node
	Bytes int64 // payload per iteration (total across the node's ranks)
}

// Spec describes a weak-scaling baseline run.
type Spec struct {
	Nodes int
	Iters int
	// RanksPerNode: 1 models rank-per-node (threaded kernel); >1 models
	// rank-per-core, which splits each neighbor exchange into RanksPerNode
	// messages (more messages, each smaller) and adds per-rank message
	// overhead on the host CPU.
	RanksPerNode int
	// KernelTime is the per-node compute time per iteration (already
	// accounting for intra-node parallelism).
	KernelTime realm.Time
	// SerialOverhead is extra unoverlapped per-iteration time (e.g. the
	// serialized communication/pack section of an MPI+OpenMP code).
	SerialOverhead realm.Time
	// PerMessageCPU is host CPU time consumed per message posted.
	PerMessageCPU realm.Time
	// Neighbors lists each node's outgoing exchanges.
	Neighbors func(node int) []Neighbor
	// Allreduce adds a per-iteration global scalar reduction (PENNANT dt).
	Allreduce bool
	// Noise optionally scales kernel time per (node, iteration) to model
	// load imbalance and OS noise.
	Noise realm.NoiseFn
}

// Result reports the run's per-iteration completion times.
type Result struct {
	IterTimes []realm.Time
	Elapsed   realm.Time
}

// Run executes the baseline on the given simulator. Each node is one
// simulated thread; received halos are awaited through per-(node,iteration)
// counting barriers sized by the incoming-message count, like matched
// MPI_Irecv/Waitall.
func Run(sim *realm.Sim, spec Spec) (*Result, error) {
	if spec.Nodes > sim.Nodes() {
		return nil, fmt.Errorf("baseline: spec wants %d nodes, machine has %d", spec.Nodes, sim.Nodes())
	}
	if spec.RanksPerNode < 1 {
		spec.RanksPerNode = 1
	}

	// Count incoming messages per node per iteration.
	incoming := make([]int, spec.Nodes)
	for n := 0; n < spec.Nodes; n++ {
		for _, nb := range spec.Neighbors(n) {
			if nb.Node != n {
				incoming[nb.Node] += spec.RanksPerNode
			}
		}
	}

	recvBar := make([][]*realm.Barrier, spec.Nodes)
	for n := range recvBar {
		recvBar[n] = make([]*realm.Barrier, spec.Iters)
		for t := range recvBar[n] {
			if incoming[n] > 0 {
				recvBar[n][t] = sim.NewBarrier(incoming[n])
			}
		}
	}
	colls := make([]*realm.Collective, spec.Iters)
	if spec.Allreduce {
		for t := range colls {
			colls[t] = sim.NewCollective(spec.Nodes, 0, func(a, v float64) float64 { return a + v })
		}
	}

	iterTimes := make([]realm.Time, spec.Iters)
	remaining := make([]int, spec.Iters)
	for t := range remaining {
		remaining[t] = spec.Nodes
	}

	for n := 0; n < spec.Nodes; n++ {
		n := n
		sim.Spawn(fmt.Sprintf("rank-%d", n), sim.Node(n).Proc(0), func(th *realm.Thread) {
			for t := 0; t < spec.Iters; t++ {
				kt := spec.KernelTime
				if spec.Noise != nil {
					kt = realm.Time(float64(kt) * spec.Noise(n, t))
				}
				th.Elapse(kt + spec.SerialOverhead)
				for _, nb := range spec.Neighbors(n) {
					if nb.Node == n {
						continue
					}
					per := nb.Bytes / int64(spec.RanksPerNode)
					for r := 0; r < spec.RanksPerNode; r++ {
						th.Elapse(spec.PerMessageCPU)
						ev := sim.Copy(sim.Node(n), sim.Node(nb.Node), per, realm.NoEvent, nil)
						recvBar[nb.Node][t].Arrive(ev)
					}
				}
				if recvBar[n][t] != nil {
					th.WaitEvent(recvBar[n][t].Done())
				}
				if spec.Allreduce {
					colls[t].Contribute(n, realm.NoEvent, func() float64 { return 1 })
					th.WaitEvent(colls[t].Done())
				}
				remaining[t]--
				if remaining[t] == 0 {
					iterTimes[t] = sim.Now()
				}
			}
		})
	}
	elapsed, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &Result{IterTimes: iterTimes, Elapsed: elapsed}, nil
}

// PerIteration returns the steady-state per-iteration time, skipping
// warm-up iterations. Like bench.steadyState, a warm-up leaving fewer than
// two samples is a loud error rather than a silent measurement from
// iteration 0 (which would fold startup effects into the steady rate, or
// divide by zero on a single-iteration run).
func (r *Result) PerIteration(skip int) (realm.Time, error) {
	n := len(r.IterTimes)
	if n < 2 {
		return 0, fmt.Errorf("baseline: need at least 2 iterations, got %d", n)
	}
	if n-skip < 2 {
		return 0, fmt.Errorf("baseline: warm-up of %d iterations leaves %d of %d samples for steady state (need at least 2); increase the iteration count",
			skip, n-skip, n)
	}
	return (r.IterTimes[n-1] - r.IterTimes[skip]) / realm.Time(n-1-skip), nil
}
