package baseline

import (
	"testing"

	"repro/internal/realm"
)

func ringNeighbors(nodes int, bytes int64) func(int) []Neighbor {
	return func(n int) []Neighbor {
		if nodes == 1 {
			return nil
		}
		return []Neighbor{
			{Node: (n + 1) % nodes, Bytes: bytes},
			{Node: (n - 1 + nodes) % nodes, Bytes: bytes},
		}
	}
}

func TestBaselineSingleNodeIsKernelBound(t *testing.T) {
	sim := realm.MustNewSim(realm.DefaultConfig(1))
	res, err := Run(sim, Spec{
		Nodes: 1, Iters: 5, RanksPerNode: 1,
		KernelTime: realm.Milliseconds(10),
		Neighbors:  ringNeighbors(1, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	per, err := res.PerIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	if per != realm.Milliseconds(10) {
		t.Errorf("per iteration = %v, want 10ms", per)
	}
}

func TestBaselineHaloExchangeSynchronizes(t *testing.T) {
	sim := realm.MustNewSim(realm.DefaultConfig(4))
	res, err := Run(sim, Spec{
		Nodes: 4, Iters: 6, RanksPerNode: 1,
		KernelTime: realm.Milliseconds(5),
		Neighbors:  ringNeighbors(4, 1<<16),
	})
	if err != nil {
		t.Fatal(err)
	}
	per, err := res.PerIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel plus at least one message transfer time.
	if per <= realm.Milliseconds(5) {
		t.Errorf("per iteration %v should exceed pure kernel time", per)
	}
	if per > realm.Milliseconds(6) {
		t.Errorf("per iteration %v should stay near kernel time with small halos", per)
	}
	// Iteration times strictly increase.
	for i := 1; i < len(res.IterTimes); i++ {
		if res.IterTimes[i] <= res.IterTimes[i-1] {
			t.Fatalf("iteration times not increasing: %v", res.IterTimes)
		}
	}
}

func TestBaselineRankPerCoreCostsMoreMessages(t *testing.T) {
	run := func(rpn int) realm.Time {
		sim := realm.MustNewSim(realm.DefaultConfig(4))
		res, err := Run(sim, Spec{
			Nodes: 4, Iters: 6, RanksPerNode: rpn,
			KernelTime:    realm.Milliseconds(2),
			PerMessageCPU: realm.Microseconds(5),
			Neighbors:     ringNeighbors(4, 1<<14),
		})
		if err != nil {
			t.Fatal(err)
		}
		per, err := res.PerIteration(1)
		if err != nil {
			t.Fatal(err)
		}
		return per
	}
	if run(12) <= run(1) {
		t.Error("rank-per-core should pay more per-message overhead than rank-per-node")
	}
}

func TestBaselineAllreduceAddsLatency(t *testing.T) {
	run := func(allreduce bool) realm.Time {
		sim := realm.MustNewSim(realm.DefaultConfig(8))
		res, err := Run(sim, Spec{
			Nodes: 8, Iters: 6, RanksPerNode: 1,
			KernelTime: realm.Milliseconds(1),
			Neighbors:  ringNeighbors(8, 1<<10),
			Allreduce:  allreduce,
		})
		if err != nil {
			t.Fatal(err)
		}
		per, err := res.PerIteration(1)
		if err != nil {
			t.Fatal(err)
		}
		return per
	}
	if run(true) <= run(false) {
		t.Error("allreduce should add per-iteration latency")
	}
}

func TestBaselineDeterministic(t *testing.T) {
	run := func() realm.Time {
		sim := realm.MustNewSim(realm.DefaultConfig(4))
		res, err := Run(sim, Spec{
			Nodes: 4, Iters: 5, RanksPerNode: 2,
			KernelTime: realm.Milliseconds(3),
			Neighbors:  ringNeighbors(4, 1<<12),
			Allreduce:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	first := run()
	for i := 0; i < 3; i++ {
		if run() != first {
			t.Fatal("non-deterministic baseline run")
		}
	}
}

func TestBaselineRejectsOversizedSpec(t *testing.T) {
	sim := realm.MustNewSim(realm.DefaultConfig(2))
	_, err := Run(sim, Spec{Nodes: 4, Iters: 1, Neighbors: ringNeighbors(4, 0)})
	if err == nil {
		t.Error("expected error for spec larger than machine")
	}
}
