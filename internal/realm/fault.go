package realm

import (
	"fmt"
	"math"
	"sort"
)

// This file is the deterministic fault-injection layer of the DES. All
// randomness is derived from FaultPlan.Seed through the splitmix finalizer
// and a per-sim draw counter, and every fault decision is made at a point
// that is itself deterministic (a scheduled crash time, a copy issue, a
// task start), so two runs with the same plan produce byte-identical
// schedules, stats, and traces. A fault-free run consumes no randomness and
// takes none of these code paths.

// NodeCrash is a whole-node fail-stop failure at a virtual time.
type NodeCrash struct {
	Node int
	At   Time
}

// LaunchCrash is a whole-node fail-stop failure at a logical point: the
// node dies at the issue of its AtLaunch-th launch (1-based, counted per
// target node across the whole run). Unlike NodeCrash it names no clock,
// so every backend can honor it — the DES counts launches as it issues
// them, the native machine matches its per-node atomic launch counters —
// and "node 2 dies at its 37th launch" means the same schedule point on
// both. The AtLaunch-th launch itself is lost (the crash precedes it).
type LaunchCrash struct {
	Node     int
	AtLaunch uint64
}

// FaultPlan describes the faults to inject into a simulation. The zero
// value injects nothing. Rates are probabilities per opportunity (per
// remote message for DropRate/DupRate, per work item for StragglerRate)
// except CrashRate, which is a Poisson rate in crashes per simulated
// second.
type FaultPlan struct {
	Seed uint64 // root of all fault randomness

	Crashes       []NodeCrash   // explicit fail-stop crashes at fixed virtual times (DES-only)
	LaunchCrashes []LaunchCrash // explicit fail-stop crashes at logical points (all backends)
	CrashRate     float64       // additional random crashes per simulated second
	CrashNode0    bool          // allow random crashes to hit node 0 (the head node)

	DropRate          float64 // per-message probability of a drop + retransmit
	RetransmitTimeout Time    // redelivery delay per drop (default 20x NetLatency)
	DupRate           float64 // per-message probability of a duplicate send

	StragglerRate   float64 // per-work-item probability of a slowdown
	StragglerFactor float64 // duration multiplier for straggling items (> 1)
}

// Validate checks the plan against the machine it will be injected into.
func (fp *FaultPlan) Validate(cfg Config) error {
	switch {
	case fp.CrashRate < 0:
		return fmt.Errorf("realm: negative CrashRate %v", fp.CrashRate)
	case fp.DropRate < 0 || fp.DropRate > 0.9:
		return fmt.Errorf("realm: DropRate %v outside [0, 0.9]", fp.DropRate)
	case fp.DupRate < 0 || fp.DupRate > 1:
		return fmt.Errorf("realm: DupRate %v outside [0, 1]", fp.DupRate)
	case fp.StragglerRate < 0 || fp.StragglerRate > 1:
		return fmt.Errorf("realm: StragglerRate %v outside [0, 1]", fp.StragglerRate)
	case fp.StragglerRate > 0 && fp.StragglerFactor <= 1:
		return fmt.Errorf("realm: StragglerFactor must exceed 1 (got %v)", fp.StragglerFactor)
	case fp.RetransmitTimeout < 0:
		return fmt.Errorf("realm: negative RetransmitTimeout %d", fp.RetransmitTimeout)
	}
	for _, c := range fp.Crashes {
		if c.Node < 0 || c.Node >= cfg.Nodes {
			return fmt.Errorf("realm: crash targets node %d of a %d-node machine", c.Node, cfg.Nodes)
		}
		if c.At < 0 {
			return fmt.Errorf("realm: crash of node %d at negative time %d", c.Node, c.At)
		}
	}
	for _, c := range fp.LaunchCrashes {
		if c.Node < 0 || c.Node >= cfg.Nodes {
			return fmt.Errorf("realm: launch crash targets node %d of a %d-node machine", c.Node, cfg.Nodes)
		}
		if c.AtLaunch == 0 {
			return fmt.Errorf("realm: launch crash of node %d at launch 0 (AtLaunch is 1-based)", c.Node)
		}
	}
	return nil
}

// launchCrashPoints folds the plan's LaunchCrashes into a per-node map of
// the earliest scheduled crash point (several entries for one node reduce
// to the first one that would fire). Returns nil when the plan has none,
// so the per-launch hot path stays a nil check.
func (fp *FaultPlan) launchCrashPoints() map[int]uint64 {
	if len(fp.LaunchCrashes) == 0 {
		return nil
	}
	at := make(map[int]uint64, len(fp.LaunchCrashes))
	for _, c := range fp.LaunchCrashes {
		if prev, ok := at[c.Node]; !ok || c.AtLaunch < prev {
			at[c.Node] = c.AtLaunch
		}
	}
	return at
}

// FaultStats counts the faults actually injected during a run.
type FaultStats struct {
	Crashes    int
	Drops      int64
	Dups       int64
	Stragglers int64
}

// InjectFaults installs a fault plan on the simulator. It must be called
// before Run and at most once. The plan is copied; later mutation of the
// caller's value has no effect.
func (s *Sim) InjectFaults(fp FaultPlan) error {
	if s.faults != nil {
		return fmt.Errorf("realm: a fault plan is already installed")
	}
	if err := fp.Validate(s.cfg); err != nil {
		return err
	}
	if fp.RetransmitTimeout <= 0 {
		fp.RetransmitTimeout = 20 * s.cfg.NetLatency
		if fp.RetransmitTimeout <= 0 {
			fp.RetransmitTimeout = Microseconds(30)
		}
	}
	s.faults = &fp
	if at := fp.launchCrashPoints(); at != nil {
		s.launchCrashAt = at
		s.launchSeq = make([]uint64, s.cfg.Nodes)
	}
	// Sort planned crashes by time so equal-time behavior does not depend
	// on the caller's slice order.
	crashes := append([]NodeCrash(nil), fp.Crashes...)
	sort.SliceStable(crashes, func(i, j int) bool { return crashes[i].At < crashes[j].At })
	for _, c := range crashes {
		node := c.Node
		s.atWeak(c.At, func() { s.crashNode(node) })
	}
	if fp.CrashRate > 0 {
		s.scheduleNextCrash()
	}
	return nil
}

// FaultStats returns the counters of faults injected so far.
func (s *Sim) FaultStats() FaultStats { return s.faultStats }

// Crashes returns the node crashes that actually occurred, in time order.
func (s *Sim) Crashes() []NodeCrash {
	return append([]NodeCrash(nil), s.crashLog...)
}

// Fault-draw streams for backends that cannot consult a single global draw
// counter. The native machine's fault points are concurrent, so its draws
// are keyed by logical position — (stream kind, node, per-node sequence
// number) — rather than by a global sequence.
const (
	FaultStreamCrash     uint64 = 1 // per-launch crash rolls, keyed by target node
	FaultStreamCopy      uint64 = 2 // per-copy duplicate rolls, keyed by source node
	FaultStreamStraggler uint64 = 3 // per-launch straggler rolls, keyed by target node
	FaultStreamDrop      uint64 = 4 // per-attempt drop rolls, keyed by source node
)

// FaultDraw returns a deterministic uniform [0, 1) draw for the seq-th
// fault decision of the given stream on the given node under seed: three
// chained splitmix finalizations, so nearby (stream, node, seq) triples
// decorrelate. Shared by every backend whose fault points are identified by
// logical position instead of a global counter.
func FaultDraw(seed, stream, node, seq uint64) float64 {
	x := splitmix(seed + stream*0x9e3779b97f4a7c15)
	x = splitmix(x + node*0x9e3779b97f4a7c15)
	x = splitmix(x + seq*0x9e3779b97f4a7c15)
	return float64(x>>11) / (1 << 53)
}

// faultRand draws the next 64 deterministic pseudo-random bits of the
// installed plan.
func (s *Sim) faultRand() uint64 {
	s.faultSeq++
	return splitmix(s.faults.Seed + s.faultSeq*0x9e3779b97f4a7c15)
}

// faultRoll returns true with probability p, consuming one draw iff a plan
// is installed and p > 0 (so rate-zero faults cost nothing and perturb no
// other fault's stream).
func (s *Sim) faultRoll(p float64) bool {
	if s.faults == nil || p <= 0 {
		return false
	}
	return float64(s.faultRand()>>11)/(1<<53) < p
}

// scheduleNextCrash arms the Poisson crash process: exponential
// inter-arrival gaps at CrashRate crashes per simulated second, each firing
// as a weak event (pending crashes never keep the simulation alive).
func (s *Sim) scheduleNextCrash() {
	rate := s.faults.CrashRate
	u := (float64(s.faultRand()>>11) + 1) / (1 << 53) // uniform in (0, 1]
	gap := Time(-math.Log(u)*1e9/rate) + 1
	s.atWeak(s.now+gap, func() {
		victims := s.crashableNodes()
		if len(victims) == 0 {
			return // everything that may crash already has
		}
		v := victims[int(s.faultRand()%uint64(len(victims)))]
		s.crashNode(v)
		s.scheduleNextCrash()
	})
}

// crashableNodes lists live nodes eligible for a random crash. Node 0 is
// the head node — it hosts the control thread and stable storage — and is
// spared unless the plan explicitly opts in.
func (s *Sim) crashableNodes() []int {
	var out []int
	for i, n := range s.nodes {
		if n.failed || (i == 0 && !s.faults.CrashNode0) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// crashNode fail-stops a node at the current virtual time: all threads on
// it are killed (in spawn order, for determinism), in-flight work and
// traffic touching it is lost, and its FailEvent fires. Crashing a dead
// node is a no-op.
func (s *Sim) crashNode(id int) {
	n := s.nodes[id]
	if n.failed {
		return
	}
	n.failed = true
	s.faultStats.Crashes++
	s.crashLog = append(s.crashLog, NodeCrash{Node: id, At: s.now})
	if s.tracer != nil {
		s.tracer.crash(id, s.now)
	}
	if n.failEv == NoEvent {
		n.failEv = s.NewUserEvent()
	}
	s.Trigger(n.failEv)
	var ts []*Thread
	for t := range s.liveThreads {
		if t.proc.node == n {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	for _, t := range ts {
		s.Kill(t)
	}
}
