package realm

import (
	"reflect"
	"strings"
	"testing"
)

// TestFaultPlanValidate checks the plan validator against its documented
// ranges.
func TestFaultPlanValidate(t *testing.T) {
	cfg := DefaultConfig(4)
	bad := []FaultPlan{
		{CrashRate: -1},
		{DropRate: -0.1},
		{DropRate: 0.95},
		{DupRate: 1.5},
		{StragglerRate: -0.2},
		{StragglerRate: 0.5},                       // rate without a factor > 1
		{StragglerRate: 0.5, StragglerFactor: 0.5}, // factor <= 1
		{RetransmitTimeout: -1},
		{Crashes: []NodeCrash{{Node: 4, At: 0}}},               // out of range
		{Crashes: []NodeCrash{{Node: 1, At: -5}}},              // negative time
		{LaunchCrashes: []LaunchCrash{{Node: 4, AtLaunch: 1}}}, // out of range
		{LaunchCrashes: []LaunchCrash{{Node: 1, AtLaunch: 0}}}, // AtLaunch is 1-based
	}
	for i, fp := range bad {
		if err := fp.Validate(cfg); err == nil {
			t.Errorf("plan %d (%+v): want validation error", i, fp)
		}
	}
	good := FaultPlan{Seed: 7, CrashRate: 0.5, DropRate: 0.1, DupRate: 0.1,
		StragglerRate: 0.2, StragglerFactor: 3, Crashes: []NodeCrash{{Node: 3, At: 100}},
		LaunchCrashes: []LaunchCrash{{Node: 2, AtLaunch: 37}}}
	if err := good.Validate(cfg); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestLaunchCrashAtLogicalPoint pins the DES half of the logical-point
// crash schedule: the node dies at the issue of its AtLaunch-th launch,
// the crashing launch itself is lost, and earlier launches are untouched.
// With serialized issues the executed-body count is exact — the property
// that makes "node 1 dies at its 3rd launch" mean the same schedule point
// on every backend.
func TestLaunchCrashAtLogicalPoint(t *testing.T) {
	s := MustNewSim(DefaultConfig(2))
	err := s.InjectFaults(FaultPlan{
		// Two entries for one node reduce to the earliest point.
		LaunchCrashes: []LaunchCrash{{Node: 1, AtLaunch: 4}, {Node: 1, AtLaunch: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	s.Spawn("issuer", s.Node(0).Proc(0), func(th *Thread) {
		for k := 0; k < 5; k++ {
			done := s.LaunchOn(1, NoEvent, Microseconds(5), func() { ran++ })
			if s.Node(1).Failed() {
				break // the launch was lost; its event will never fire
			}
			th.WaitEvent(done)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("%d bodies executed, want exactly 2 (the crash precedes launch 3)", ran)
	}
	if got := s.Crashes(); len(got) != 1 || got[0].Node != 1 {
		t.Errorf("crash log = %+v, want one crash of node 1", got)
	}
	if !s.Triggered(s.Node(1).FailEvent()) {
		t.Error("FailEvent of the crashed node should have fired")
	}
	if s.FaultStats().Crashes != 1 {
		t.Errorf("FaultStats.Crashes = %d, want 1", s.FaultStats().Crashes)
	}
}

// TestInjectFaultsOnce checks that a second plan is refused.
func TestInjectFaultsOnce(t *testing.T) {
	s := MustNewSim(DefaultConfig(2))
	if err := s.InjectFaults(FaultPlan{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFaults(FaultPlan{Seed: 2}); err == nil {
		t.Fatal("second InjectFaults should fail")
	}
}

// TestCrashKillsNodeWork: a planned crash kills the threads on the node,
// drops its in-flight tasks, and still lets the run finish cleanly —
// killed threads and lost work must not deadlock the simulation.
func TestCrashKillsNodeWork(t *testing.T) {
	s := MustNewSim(DefaultConfig(2))
	if err := s.InjectFaults(FaultPlan{Crashes: []NodeCrash{{Node: 1, At: Microseconds(50)}}}); err != nil {
		t.Fatal(err)
	}
	victimSteps, survivorSteps := 0, 0
	s.Spawn("victim", s.Node(1).Proc(0), func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Elapse(Microseconds(20))
			victimSteps++
		}
	})
	s.Spawn("survivor", s.Node(0).Proc(0), func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Elapse(Microseconds(20))
			survivorSteps++
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if survivorSteps != 10 {
		t.Errorf("survivor ran %d of 10 steps", survivorSteps)
	}
	if victimSteps >= 10 {
		t.Errorf("victim ran all %d steps despite crashing at t=50us", victimSteps)
	}
	if !s.Node(1).Failed() || s.Node(0).Failed() {
		t.Errorf("failed flags wrong: node0=%v node1=%v", s.Node(0).Failed(), s.Node(1).Failed())
	}
	if got := s.Crashes(); len(got) != 1 || got[0].Node != 1 {
		t.Errorf("crash log = %+v, want one crash of node 1", got)
	}
	if !s.Triggered(s.Node(1).FailEvent()) {
		t.Error("FailEvent of the crashed node should have fired")
	}
}

// TestCrashDropsTraffic: copies into and out of a dead node never deliver.
func TestCrashDropsTraffic(t *testing.T) {
	s := MustNewSim(DefaultConfig(3))
	if err := s.InjectFaults(FaultPlan{Crashes: []NodeCrash{{Node: 1, At: 0}}}); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	s.Spawn("ctl", s.Node(0).Proc(0), func(th *Thread) {
		th.Sleep(Microseconds(1)) // let the crash land first
		s.Copy(s.Node(0), s.Node(1), 1024, NoEvent, func() { delivered++ })
		s.Copy(s.Node(1), s.Node(2), 1024, NoEvent, func() { delivered++ })
		ok := s.Copy(s.Node(0), s.Node(2), 1024, NoEvent, func() { delivered++ })
		th.WaitEvent(ok)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d copies, want only the live-to-live one", delivered)
	}
}

// TestKillUnblocksWaiter: killing a thread parked on an event retires it
// without wedging the scheduler, and the event can still fire later.
func TestKillUnblocksWaiter(t *testing.T) {
	s := MustNewSim(DefaultConfig(1))
	ev := s.NewUserEvent()
	reached := false
	th := s.Spawn("waiter", s.Node(0).Proc(0), func(th *Thread) {
		th.WaitEvent(ev)
		reached = true
	})
	s.After(Microseconds(10), func() { s.Kill(th) })
	s.After(Microseconds(20), func() { s.Trigger(ev) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Error("killed thread ran past its wait")
	}
}

// faultTrafficRun drives a fixed communication pattern under a plan and
// returns (stats, faultStats, crashes).
func faultTrafficRun(t *testing.T, fp FaultPlan) (Stats, FaultStats, []NodeCrash) {
	t.Helper()
	s := MustNewSim(DefaultConfig(4))
	if err := s.InjectFaults(fp); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		n := n
		s.Spawn("rank", s.Node(n).Proc(0), func(th *Thread) {
			for i := 0; i < 20; i++ {
				th.Elapse(Microseconds(5))
				ev := s.Copy(s.Node(n), s.Node((n+1)%4), 4096, NoEvent, nil)
				th.WaitEvent(ev)
			}
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s.Stats(), s.FaultStats(), s.Crashes()
}

// TestFaultDeterminism: the same seed gives byte-identical stats, fault
// counts, and crash logs; a different seed gives a different schedule.
func TestFaultDeterminism(t *testing.T) {
	fp := FaultPlan{Seed: 99, DropRate: 0.2, DupRate: 0.1, StragglerRate: 0.3, StragglerFactor: 4}
	st1, fs1, cr1 := faultTrafficRun(t, fp)
	st2, fs2, cr2 := faultTrafficRun(t, fp)
	if st1 != st2 || fs1 != fs2 || !reflect.DeepEqual(cr1, cr2) {
		t.Errorf("same seed diverged:\n%+v %+v %+v\n%+v %+v %+v", st1, fs1, cr1, st2, fs2, cr2)
	}
	if fs1.Drops == 0 || fs1.Dups == 0 || fs1.Stragglers == 0 {
		t.Errorf("expected some of every fault kind, got %+v", fs1)
	}
	fp.Seed = 100
	st3, fs3, _ := faultTrafficRun(t, fp)
	if st1 == st3 && fs1 == fs3 {
		t.Errorf("different seeds gave identical stats %+v / %+v", st1, fs1)
	}
}

// TestDropsDelayAndRecount: every drop retransmits — the payload is
// eventually delivered but later, and the wire carries the payload again.
func TestDropsDelayAndRecount(t *testing.T) {
	clean, _, _ := faultTrafficRun(t, FaultPlan{Seed: 5})
	faulty, fs, _ := faultTrafficRun(t, FaultPlan{Seed: 5, DropRate: 0.3})
	if fs.Drops == 0 {
		t.Fatal("expected drops at rate 0.3")
	}
	if faulty.BytesSent != clean.BytesSent+4096*fs.Drops {
		t.Errorf("BytesSent = %d, want clean %d + %d retransmissions x 4096",
			faulty.BytesSent, clean.BytesSent, fs.Drops)
	}
	if faulty.Messages != clean.Messages+fs.Drops {
		t.Errorf("Messages = %d, want clean %d + %d", faulty.Messages, clean.Messages, fs.Drops)
	}
}

// TestRandomCrashesAreSeeded: Poisson crashes land at seed-determined
// times, never on node 0 without opt-in, and every node can eventually die
// without hanging the run.
func TestRandomCrashesAreSeeded(t *testing.T) {
	// Fire-and-forget workload: crashes lose work but nobody waits on the
	// dead (that coordination is the SPMD executor's job, tested there).
	run := func(fp FaultPlan) []NodeCrash {
		s := MustNewSim(DefaultConfig(4))
		if err := s.InjectFaults(fp); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 4; n++ {
			n := n
			s.Spawn("rank", s.Node(n).Proc(0), func(th *Thread) {
				for i := 0; i < 20; i++ {
					th.Elapse(Microseconds(5))
					s.Copy(s.Node(n), s.Node((n+1)%4), 4096, NoEvent, nil)
				}
			})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Crashes()
	}
	fp := FaultPlan{Seed: 13, CrashRate: 50000} // ~50 crashes/ms of virtual time
	cr1 := run(fp)
	cr2 := run(fp)
	if len(cr1) == 0 {
		t.Fatal("expected at least one random crash")
	}
	if !reflect.DeepEqual(cr1, cr2) {
		t.Errorf("crash logs diverged under one seed:\n%+v\n%+v", cr1, cr2)
	}
	for _, c := range cr1 {
		if c.Node == 0 {
			t.Errorf("random crash hit node 0 without CrashNode0: %+v", c)
		}
	}
}

// TestCrashTraceEvents: crashes are visible in the Chrome trace output.
func TestCrashTraceEvents(t *testing.T) {
	s := MustNewSim(DefaultConfig(2))
	tr := NewTracer()
	s.SetTracer(tr)
	if err := s.InjectFaults(FaultPlan{Crashes: []NodeCrash{{Node: 1, At: Microseconds(5)}}}); err != nil {
		t.Fatal(err)
	}
	s.Spawn("w", s.Node(0).Proc(0), func(th *Thread) { th.Elapse(Microseconds(10)) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Crashes() != 1 {
		t.Fatalf("tracer recorded %d crashes, want 1", tr.Crashes())
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"crash"`) {
		t.Error("Chrome trace is missing the crash instant event")
	}
}
