package realm

// Node is one simulated compute node: a set of processors sharing a memory
// and one network link (whose bandwidth serializes outgoing transfers).
type Node struct {
	sim        *Sim
	id         int
	procs      []*Proc
	linkFreeAt Time
	busy       Time // accumulated processor busy time on this node

	failed bool  // node has crashed; it runs nothing and drops all traffic
	failEv Event // lazily created, fires when the node crashes
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// FailEvent returns an event that fires when the node crashes (already
// triggered if it has). Recovery layers watch it to race completion events
// against failures.
func (n *Node) FailEvent() Event {
	if n.failEv == NoEvent {
		n.failEv = n.sim.NewUserEvent()
		if n.failed {
			n.sim.Trigger(n.failEv)
		}
	}
	return n.failEv
}

// Procs returns the node's processors.
func (n *Node) Procs() []*Proc { return n.procs }

// Proc returns processor i of the node.
func (n *Node) Proc(i int) *Proc { return n.procs[i] }

// BusyTime returns the total processor-busy virtual time accumulated on the
// node, used to compute utilization in the harness.
func (n *Node) BusyTime() Time { return n.busy }

// Proc is a single simulated processor executing work items one at a time
// in FIFO order of readiness.
type Proc struct {
	node   *Node
	id     int
	freeAt Time
}

// Node returns the processor's node.
func (p *Proc) Node() *Node { return p.node }

// ID returns the processor index within its node.
func (p *Proc) ID() int { return p.id }

// FreeAt returns the earliest virtual time at which the processor is idle.
func (p *Proc) FreeAt() Time { return p.freeAt }

// Launch schedules a work item on the processor: once pre triggers, the
// item occupies the processor for dur, then body (if non-nil) runs and the
// returned completion event fires. Items are serviced in the order their
// preconditions trigger, modeling a FIFO ready queue.
func (p *Proc) Launch(pre Event, dur Time, body func()) Event {
	s := p.node.sim
	done := s.NewUserEvent()
	if s.Triggered(pre) {
		p.execItem(dur, body, done)
	} else {
		s.OnTrigger(pre, func() { p.execItem(dur, body, done) })
	}
	return done
}

// execItem runs a work item whose precondition has triggered: occupy the
// processor for dur, then run body (if any) and fire done. Body-less items
// complete through the queue's field-encoded path instead of a closure.
func (p *Proc) execItem(dur Time, body func(), done Event) {
	s := p.node.sim
	if p.node.failed {
		return // lost work: a crashed node never starts the item
	}
	dur = s.policy.TaskDuration(dur)
	if s.faults != nil && dur > 0 && s.faultRoll(s.faults.StragglerRate) {
		dur = Time(float64(dur) * s.faults.StragglerFactor)
		s.faultStats.Stragglers++
	}
	start := p.freeAt
	if s.now > start {
		start = s.now
	}
	p.freeAt = start + dur
	p.node.busy += dur
	s.stats.TasksRun++
	if s.tracer != nil && dur > 0 {
		s.tracer.task(p.node.id, p.id, start, start+dur)
	}
	if body == nil {
		s.atDone(p.freeAt, p.node, done)
		return
	}
	s.at(p.freeAt, func() {
		if p.node.failed {
			return // node crashed mid-item; completion never fires
		}
		body()
		s.Trigger(done)
	})
}

// LaunchAuto schedules a work item on whichever of the node's processors
// becomes free earliest (ties broken by processor index), the mapping
// strategy of a default mapper distributing a shard's tasks across the
// node's cores.
func (n *Node) LaunchAuto(pre Event, dur Time, body func()) Event {
	s := n.sim
	done := s.NewUserEvent()
	if s.Triggered(pre) {
		n.execAuto(dur, body, done)
	} else {
		s.OnTrigger(pre, func() { n.execAuto(dur, body, done) })
	}
	return done
}

// execAuto picks the earliest-free processor (ties broken by index) at the
// moment the item becomes ready and runs it there.
func (n *Node) execAuto(dur Time, body func(), done Event) {
	if n.failed {
		return
	}
	best := n.procs[0]
	for _, p := range n.procs[1:] {
		if p.freeAt < best.freeAt {
			best = p
		}
	}
	best.execItem(dur, body, done)
}

// Copy models a data transfer of the given size from node src to node dst:
// after pre triggers, the transfer waits for the sender's link, pays
// latency plus size/bandwidth, then body runs at the destination and the
// returned event fires. Copies within a node pay the (cheaper) local
// latency and bandwidth and do not occupy the link.
func (s *Sim) Copy(src, dst *Node, bytes int64, pre Event, body func()) Event {
	done := s.NewUserEvent()
	if s.Triggered(pre) {
		s.execCopy(src, dst, bytes, body, done)
	} else {
		s.OnTrigger(pre, func() { s.execCopy(src, dst, bytes, body, done) })
	}
	return done
}

// ShipTrace implements FaultExec: shipping a captured execution trace to a
// restarted shard's node is an ordinary wire transfer (latency, bandwidth,
// link serialization, and fault effects all apply, via Copy), counted
// separately so the recovery protocol's trace traffic is visible in the run
// statistics.
func (s *Sim) ShipTrace(src, dst int, bytes int64, pre Event) Event {
	s.stats.TraceShips++
	s.stats.TraceShipBytes += bytes
	return s.Copy(s.Node(src), s.Node(dst), bytes, pre, nil)
}

// CopyAgg implements AggExec: a coalesced transfer is an ordinary wire
// transfer of the summed payload (one latency charge, batched bandwidth,
// one fault draw — a dropped or duplicated aggregate retransmits the whole
// group), counted at issue time so the aggregation counters match the
// native backend's for any schedule.
func (s *Sim) CopyAgg(src, dst int, bytes int64, members int, pre Event, body func()) Event {
	if members > 1 {
		s.stats.AggGroups++
		if src != dst {
			s.stats.AggSavedMessages += int64(members - 1)
		}
	}
	return s.Copy(s.Node(src), s.Node(dst), bytes, pre, body)
}

// execCopy performs a transfer whose precondition has triggered.
func (s *Sim) execCopy(src, dst *Node, bytes int64, body func(), done Event) {
	if src.failed || dst.failed {
		return // either endpoint crashed: the transfer is lost
	}
	var arrive Time
	if src == dst {
		arrive = s.now + s.policy.LocalCopy(bytes)
		s.stats.LocalCopies++
	} else {
		start := src.linkFreeAt
		if s.now > start {
			start = s.now
		}
		xfer := s.policy.RemoteTransfer(bytes)
		serialize := xfer
		var delay Time
		if s.faults != nil {
			// Faults are rolled in a fixed order (duplicate, then drops)
			// so the consumed randomness — and thus the whole schedule —
			// is a pure function of the plan seed.
			if s.faultRoll(s.faults.DupRate) {
				// The link carries the payload twice; the receiver keeps
				// the first arrival.
				serialize += xfer
				s.stats.Messages++
				s.stats.BytesSent += bytes
				s.faultStats.Dups++
			}
			for s.faultRoll(s.faults.DropRate) {
				// Reliable transport: a dropped message is retransmitted
				// after a timeout, paying the wire again each attempt.
				delay += s.faults.RetransmitTimeout + xfer
				serialize += xfer
				s.stats.Messages++
				s.stats.BytesSent += bytes
				s.faultStats.Drops++
			}
		}
		src.linkFreeAt = start + serialize
		arrive = start + xfer + s.policy.RemoteLatency() + delay
		s.stats.Messages++
		s.stats.BytesSent += bytes
		if s.tracer != nil {
			s.tracer.message(src.id, dst.id, bytes, start, arrive)
		}
	}
	if body == nil {
		s.atDone(arrive, dst, done)
		return
	}
	s.at(arrive, func() {
		if dst.failed {
			return // destination crashed in flight; delivery never happens
		}
		body()
		s.Trigger(done)
	})
}
