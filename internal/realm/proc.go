package realm

// Node is one simulated compute node: a set of processors sharing a memory
// and one network link (whose bandwidth serializes outgoing transfers).
type Node struct {
	sim        *Sim
	id         int
	procs      []*Proc
	linkFreeAt Time
	busy       Time // accumulated processor busy time on this node
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Procs returns the node's processors.
func (n *Node) Procs() []*Proc { return n.procs }

// Proc returns processor i of the node.
func (n *Node) Proc(i int) *Proc { return n.procs[i] }

// BusyTime returns the total processor-busy virtual time accumulated on the
// node, used to compute utilization in the harness.
func (n *Node) BusyTime() Time { return n.busy }

// Proc is a single simulated processor executing work items one at a time
// in FIFO order of readiness.
type Proc struct {
	node   *Node
	id     int
	freeAt Time
}

// Node returns the processor's node.
func (p *Proc) Node() *Node { return p.node }

// ID returns the processor index within its node.
func (p *Proc) ID() int { return p.id }

// FreeAt returns the earliest virtual time at which the processor is idle.
func (p *Proc) FreeAt() Time { return p.freeAt }

// Launch schedules a work item on the processor: once pre triggers, the
// item occupies the processor for dur, then body (if non-nil) runs and the
// returned completion event fires. Items are serviced in the order their
// preconditions trigger, modeling a FIFO ready queue.
func (p *Proc) Launch(pre Event, dur Time, body func()) Event {
	s := p.node.sim
	done := s.NewUserEvent()
	s.OnTrigger(pre, func() {
		start := p.freeAt
		if s.now > start {
			start = s.now
		}
		p.freeAt = start + dur
		p.node.busy += dur
		s.stats.TasksRun++
		if s.tracer != nil && dur > 0 {
			s.tracer.task(p.node.id, p.id, start, start+dur)
		}
		s.at(p.freeAt, func() {
			if body != nil {
				body()
			}
			s.Trigger(done)
		})
	})
	return done
}

// LaunchAuto schedules a work item on whichever of the node's processors
// becomes free earliest (ties broken by processor index), the mapping
// strategy of a default mapper distributing a shard's tasks across the
// node's cores.
func (n *Node) LaunchAuto(pre Event, dur Time, body func()) Event {
	s := n.sim
	done := s.NewUserEvent()
	s.OnTrigger(pre, func() {
		best := n.procs[0]
		for _, p := range n.procs[1:] {
			if p.freeAt < best.freeAt {
				best = p
			}
		}
		inner := best.Launch(NoEvent, dur, body)
		s.OnTrigger(inner, func() { s.Trigger(done) })
	})
	return done
}

// Copy models a data transfer of the given size from node src to node dst:
// after pre triggers, the transfer waits for the sender's link, pays
// latency plus size/bandwidth, then body runs at the destination and the
// returned event fires. Copies within a node pay the (cheaper) local
// latency and bandwidth and do not occupy the link.
func (s *Sim) Copy(src, dst *Node, bytes int64, pre Event, body func()) Event {
	done := s.NewUserEvent()
	s.OnTrigger(pre, func() {
		var arrive Time
		if src == dst {
			cost := s.cfg.LocalLatency + Time(float64(bytes)/s.cfg.LocalBW)
			arrive = s.now + cost
			s.stats.LocalCopies++
		} else {
			start := src.linkFreeAt
			if s.now > start {
				start = s.now
			}
			xfer := Time(float64(bytes) / s.cfg.NetBandwidth)
			src.linkFreeAt = start + xfer
			arrive = start + xfer + s.cfg.NetLatency
			s.stats.Messages++
			s.stats.BytesSent += bytes
			if s.tracer != nil {
				s.tracer.message(src.id, dst.id, bytes, start, arrive)
			}
		}
		s.at(arrive, func() {
			if body != nil {
				body()
			}
			s.Trigger(done)
		})
	})
	return done
}
