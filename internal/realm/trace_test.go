package realm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordsTasksAndMessages(t *testing.T) {
	s := MustNewSim(smallConfig(2))
	tr := NewTracer()
	s.SetTracer(tr)
	s.Node(0).Proc(0).Launch(NoEvent, Microseconds(10), nil)
	s.Copy(s.Node(0), s.Node(1), 4096, NoEvent, nil)
	s.MustRun()
	if tr.Spans() != 1 {
		t.Errorf("spans = %d, want 1", tr.Spans())
	}
	if tr.Messages() != 1 {
		t.Errorf("messages = %d, want 1", tr.Messages())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace events = %d", len(doc.TraceEvents))
	}
	if !strings.Contains(buf.String(), `"cat":"net"`) || !strings.Contains(buf.String(), `"cat":"task"`) {
		t.Error("trace missing categories")
	}
}

func TestTracerDetached(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	s.SetTracer(nil) // no-op
	s.Node(0).Proc(0).Launch(NoEvent, Microseconds(1), nil)
	s.MustRun() // must not panic
}
