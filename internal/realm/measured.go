package realm

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"sync"
)

// MeasuredTime is a TimePolicy fitted online from wall-clock samples of a
// native run, closing the model↔reality loop: run an app on the native
// backend with a recorder attached, let every launch and copy report its
// real duration, then re-run the DES sweep with the fitted policy so the
// modeled schedule is charged calibrated costs instead of the Cray-XC
// constants of ModeledTime.
//
// The fit is deliberately simple and streaming:
//
//   - Launches are grouped into kernel-cost classes by the log2 of their
//     modeled duration, and each class keeps an EWMA of the wall/modeled
//     ratio. TaskDuration(d) rescales d by its class's ratio (nearest
//     fitted class when the exact one has no samples — the ratio is
//     scale-free, so a neighbor is a fair proxy).
//   - Zero-modeled launches (pure control placeholders) keep their own
//     EWMA of absolute wall nanoseconds.
//   - Copies fit a per-byte rate (EWMA of wall/bytes) plus a base latency
//     (EWMA of the residual after the rate's share). LocalCopy charges
//     base + rate·bytes, RemoteTransfer rate·bytes, RemoteLatency base.
//
// Operations the samples cannot speak to (collectives, and anything asked
// before the first relevant sample arrives) are answered by the fallback
// policy, so a partially fitted MeasuredTime is always safe to install.
//
// The fitted state exports to JSON (ExportJSON) and re-imports
// (ImportMeasuredTime), so a calibration run on real hardware can be
// captured once and replayed across DES sweeps.
//
// All methods are safe for concurrent use: the native machine's work
// items observe from many goroutines at once.
type MeasuredTime struct {
	mu       sync.Mutex
	fallback TimePolicy
	alpha    float64

	classes  map[int]*ewma // log2(modeled ns) → EWMA of wall/modeled ratio
	taskBase ewma          // wall ns of zero-modeled launches
	copyRate ewma          // wall ns per byte
	copyBase ewma          // wall ns residual intercept per copy

	launchSamples int64
	copySamples   int64
}

var (
	_ TimePolicy   = (*MeasuredTime)(nil)
	_ TimeRecorder = (*MeasuredTime)(nil)
)

// TimeRecorder receives wall-clock samples from a backend that executes
// for real. The native machine calls it once per executed launch and copy
// body; *MeasuredTime implements it to build its fit online.
type TimeRecorder interface {
	// ObserveLaunch records one executed launch: its modeled duration and
	// the wall nanoseconds the body took.
	ObserveLaunch(modeled Time, wallNs int64)
	// ObserveCopy records one executed copy: its payload size and wall
	// nanoseconds.
	ObserveCopy(bytes int64, wallNs int64)
}

// measuredAlpha is the default EWMA gain: heavy enough smoothing to ride
// out scheduler noise, light enough that a few dozen samples converge.
const measuredAlpha = 0.25

// ewma is a streaming exponentially weighted mean seeded by its first
// sample.
type ewma struct {
	n int64
	v float64
}

func (e *ewma) observe(x, alpha float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v += alpha * (x - e.v)
	}
	e.n++
}

// NewMeasuredTime creates an unfitted policy. The fallback answers every
// query the samples cannot; it must be non-nil (pass the ModeledTime of
// the target machine).
func NewMeasuredTime(fallback TimePolicy) *MeasuredTime {
	if fallback == nil {
		panic("realm: MeasuredTime requires a fallback policy")
	}
	return &MeasuredTime{fallback: fallback, alpha: measuredAlpha, classes: map[int]*ewma{}}
}

// taskClass buckets a modeled duration into its kernel-cost class.
func taskClass(modeled Time) int { return bits.Len64(uint64(modeled)) }

// ObserveLaunch records one launch: the modeled duration the engine
// asked for and the wall nanoseconds its body actually took.
func (m *MeasuredTime) ObserveLaunch(modeled Time, wallNs int64) {
	if wallNs < 0 {
		return
	}
	m.mu.Lock()
	m.launchSamples++
	if modeled <= 0 {
		m.taskBase.observe(float64(wallNs), m.alpha)
	} else {
		k := taskClass(modeled)
		c := m.classes[k]
		if c == nil {
			c = &ewma{}
			m.classes[k] = c
		}
		c.observe(float64(wallNs)/float64(modeled), m.alpha)
	}
	m.mu.Unlock()
}

// ObserveCopy records one copy: its payload size and wall nanoseconds.
func (m *MeasuredTime) ObserveCopy(bytes int64, wallNs int64) {
	if wallNs < 0 {
		return
	}
	m.mu.Lock()
	m.copySamples++
	if bytes > 0 {
		m.copyRate.observe(float64(wallNs)/float64(bytes), m.alpha)
		resid := float64(wallNs) - m.copyRate.v*float64(bytes)
		if resid < 0 {
			resid = 0
		}
		m.copyBase.observe(resid, m.alpha)
	} else {
		m.copyBase.observe(float64(wallNs), m.alpha)
	}
	m.mu.Unlock()
}

// Samples reports how many launch and copy observations have been folded
// into the fit.
func (m *MeasuredTime) Samples() (launches, copies int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.launchSamples, m.copySamples
}

// classRatio returns the fitted wall/modeled ratio for class k, falling
// back to the nearest fitted class (the ratio is scale-free). The second
// result reports whether any class is fitted at all.
func (m *MeasuredTime) classRatio(k int) (float64, bool) {
	if c := m.classes[k]; c != nil && c.n > 0 {
		return c.v, true
	}
	best, bestDist := 0.0, -1
	for ck, c := range m.classes {
		if c.n == 0 {
			continue
		}
		d := ck - k
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist || (d == bestDist && ck < k) {
			best, bestDist = c.v, d
		}
	}
	return best, bestDist >= 0
}

// TaskDuration implements TimePolicy.
func (m *MeasuredTime) TaskDuration(modeled Time) Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if modeled <= 0 {
		if m.taskBase.n > 0 {
			return Time(m.taskBase.v)
		}
		return m.fallback.TaskDuration(modeled)
	}
	if r, ok := m.classRatio(taskClass(modeled)); ok {
		return Time(r * float64(modeled))
	}
	return m.fallback.TaskDuration(modeled)
}

// LocalCopy implements TimePolicy.
func (m *MeasuredTime) LocalCopy(bytes int64) Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.copyRate.n > 0 {
		return Time(m.copyBase.v + m.copyRate.v*float64(bytes))
	}
	return m.fallback.LocalCopy(bytes)
}

// RemoteTransfer implements TimePolicy. The native machine is shared
// memory, so its copy samples measure memory movement; the fitted rate
// stands in for the wire's serialization cost.
func (m *MeasuredTime) RemoteTransfer(bytes int64) Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.copyRate.n > 0 {
		return Time(m.copyRate.v * float64(bytes))
	}
	return m.fallback.RemoteTransfer(bytes)
}

// RemoteLatency implements TimePolicy.
func (m *MeasuredTime) RemoteLatency() Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.copyBase.n > 0 {
		return Time(m.copyBase.v)
	}
	return m.fallback.RemoteLatency()
}

// CollectiveLatency implements TimePolicy via the fallback: native
// collectives complete by counting, not by a tree of timed hops, so the
// samples carry no signal for them.
func (m *MeasuredTime) CollectiveLatency(n int) Time {
	return m.fallback.CollectiveLatency(n)
}

// measuredJSON is the exported fit: coefficients only, not sample
// histories — importing reproduces the policy's answers, not its
// adaptation state.
type measuredJSON struct {
	TaskClassRatio    map[string]float64 `json:"task_class_ratio,omitempty"`
	TaskBaseNs        *float64           `json:"task_base_ns,omitempty"`
	CopyRateNsPerByte *float64           `json:"copy_rate_ns_per_byte,omitempty"`
	CopyBaseNs        *float64           `json:"copy_base_ns,omitempty"`
	LaunchSamples     int64              `json:"launch_samples"`
	CopySamples       int64              `json:"copy_samples"`
}

// ExportJSON serializes the fitted coefficients.
func (m *MeasuredTime) ExportJSON() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := measuredJSON{LaunchSamples: m.launchSamples, CopySamples: m.copySamples}
	keys := make([]int, 0, len(m.classes))
	for k := range m.classes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		c := m.classes[k]
		if c.n == 0 {
			continue
		}
		if out.TaskClassRatio == nil {
			out.TaskClassRatio = map[string]float64{}
		}
		out.TaskClassRatio[strconv.Itoa(k)] = c.v
	}
	if m.taskBase.n > 0 {
		v := m.taskBase.v
		out.TaskBaseNs = &v
	}
	if m.copyRate.n > 0 {
		v := m.copyRate.v
		out.CopyRateNsPerByte = &v
	}
	if m.copyBase.n > 0 {
		v := m.copyBase.v
		out.CopyBaseNs = &v
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportMeasuredTime rebuilds a policy from exported coefficients. The
// fallback plays the same role as in NewMeasuredTime; further Observe
// calls keep adapting from the imported values.
func ImportMeasuredTime(data []byte, fallback TimePolicy) (*MeasuredTime, error) {
	var in measuredJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("realm: bad measured-time JSON: %w", err)
	}
	m := NewMeasuredTime(fallback)
	classKeys := make([]string, 0, len(in.TaskClassRatio))
	for ks := range in.TaskClassRatio {
		classKeys = append(classKeys, ks)
	}
	sort.Strings(classKeys)
	for _, ks := range classKeys {
		k, err := strconv.Atoi(ks)
		if err != nil || in.TaskClassRatio[ks] < 0 {
			return nil, fmt.Errorf("realm: bad measured-time class %q", ks)
		}
		m.classes[k] = &ewma{n: 1, v: in.TaskClassRatio[ks]}
	}
	if in.TaskBaseNs != nil {
		m.taskBase = ewma{n: 1, v: *in.TaskBaseNs}
	}
	if in.CopyRateNsPerByte != nil {
		m.copyRate = ewma{n: 1, v: *in.CopyRateNsPerByte}
	}
	if in.CopyBaseNs != nil {
		m.copyBase = ewma{n: 1, v: *in.CopyBaseNs}
	}
	m.launchSamples = in.LaunchSamples
	m.copySamples = in.CopySamples
	return m, nil
}
