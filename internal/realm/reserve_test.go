package realm

import "testing"

// TestReserveEvents checks the bulk-reservation contract: contiguous
// handles, all untriggered, individually triggerable, and interleaving
// cleanly with NewUserEvent.
func TestReserveEvents(t *testing.T) {
	s := MustNewSim(DefaultConfig(1))
	if got := s.ReserveEvents(0); got != NoEvent {
		t.Fatalf("ReserveEvents(0) = %d, want NoEvent", got)
	}
	before := s.NewUserEvent()
	first := s.ReserveEvents(4)
	after := s.NewUserEvent()
	if first != before+1 || after != first+4 {
		t.Fatalf("handles not contiguous: before=%d first=%d after=%d", before, first, after)
	}
	for i := Event(0); i < 4; i++ {
		if s.Triggered(first + i) {
			t.Fatalf("reserved event %d born triggered", first+i)
		}
	}
	fired := 0
	s.OnTrigger(first+2, func() { fired++ })
	s.Trigger(first + 2)
	if fired != 1 || !s.Triggered(first+2) {
		t.Fatalf("reserved event did not behave as a user event (fired=%d)", fired)
	}
	if s.Triggered(first + 1) {
		t.Fatal("triggering one reserved event leaked into its neighbor")
	}
}

// TestMergeReusesMergers checks that steady-state Merge cycles (merge,
// trigger inputs, repeat) stop allocating once the merger pool is warm.
func TestMergeReusesMergers(t *testing.T) {
	s := MustNewSim(DefaultConfig(1))
	cycle := func() {
		a, b := s.NewUserEvent(), s.NewUserEvent()
		out := s.Merge(a, b)
		s.Trigger(a)
		s.Trigger(b)
		if !s.Triggered(out) {
			t.Fatal("merge did not fire")
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm the pools
	}
	if got := testing.AllocsPerRun(100, cycle); got > 0.5 {
		t.Errorf("Merge cycle allocates %.1f objects/run at steady state, want ~0", got)
	}
}
