package realm

// Thread is a cooperatively scheduled simulated thread of control: the
// vehicle for long-running control logic (the implicit program's main task,
// a CR shard's control loop, an MPI rank). A thread runs real Go code in
// its own goroutine, but the simulator guarantees at most one thread (or
// event continuation) executes at a time, so the simulation stays
// deterministic and data-race free.
//
// A thread interacts with virtual time through Elapse (charge busy time on
// its processor) and WaitEvent (sleep until an event fires).
type Thread struct {
	sim       *Sim
	proc      *Proc
	name      string
	id        int64 // spawn order, used for deterministic iteration
	resume    chan struct{}
	killed    bool  // Kill was requested; unwind at the next scheduling point
	dead      bool  // goroutine has finished (normally or by kill)
	blockedOn Event // event a WaitEvent is parked on, for deadlock reports
	// runFn/wakeFn are bound once at spawn so the WaitEvent/wake round trip
	// — taken on every Elapse of every control thread — allocates nothing.
	runFn  func()
	wakeFn func()
}

// killPanic is the sentinel a killed thread unwinds with. It must cross any
// user-level recover blocks, so engines embedding threads re-panic it (see
// IsThreadKilled).
type killPanic struct{ name string }

// IsThreadKilled reports whether a recovered panic value is the thread-kill
// sentinel (of any backend). Code that recovers panics inside agents must
// re-panic such values so the backend can retire the agent.
func IsThreadKilled(r interface{}) bool {
	_, ok := r.(killPanic)
	return ok
}

// KillSentinel returns the panic value a killed agent unwinds with. Other
// backends (realm/native) panic with it from their own agents so the same
// IsThreadKilled check — and every engine-level recover built on it —
// recognizes kills uniformly across backends.
func KillSentinel(name string) interface{} { return killPanic{name} }

// Spawn starts fn as a simulated thread bound to proc, beginning at the
// current virtual time. Spawn may be called before Run or from any running
// thread or event continuation.
func (s *Sim) Spawn(name string, proc *Proc, fn func(*Thread)) *Thread {
	s.threadSeq++
	t := &Thread{sim: s, proc: proc, name: name, id: s.threadSeq, resume: make(chan struct{})}
	t.runFn = t.run
	t.wakeFn = t.wake
	s.liveThreads[t] = true
	//detlint:ignore threads are goroutine-backed coroutines: exactly one runs at a time, handed off through t.resume, so the scheduler fully orders them
	go func() {
		<-t.resume // wait for first scheduling
		func() {
			defer func() {
				if r := recover(); r != nil && !IsThreadKilled(r) {
					panic(r) // real bug: propagate
				}
			}()
			if !t.killed {
				fn(t)
			}
		}()
		t.dead = true
		delete(s.liveThreads, t)
		s.activeYield <- struct{}{} // final yield: thread is done
	}()
	s.at(s.now, t.runFn)
	return t
}

// Kill deterministically terminates a simulated thread at the current
// virtual time: it unwinds at its next scheduling point and never runs
// again. Killing a finished or already-killed thread is a no-op. The
// thread's in-flight work items are unaffected (their completion events may
// still fire); only the control flow stops, as when a node loses the
// processor running it.
func (s *Sim) Kill(t *Thread) {
	if t.dead || t.killed {
		return
	}
	t.killed = true
	s.at(s.now, t.runFn)
}

// run transfers control to the thread until it yields.
func (t *Thread) run() {
	if t.dead {
		return // stale wake-up of a retired thread
	}
	t.resume <- struct{}{}
	<-t.sim.activeYield
}

// yield returns control to the scheduler and blocks until resumed.
func (t *Thread) yield() {
	t.sim.activeYield <- struct{}{}
	<-t.resume
	if t.killed {
		panic(killPanic{t.name})
	}
}

// Sim returns the simulator the thread runs in.
func (t *Thread) Sim() *Sim { return t.sim }

// Proc returns the processor the thread is bound to.
func (t *Thread) Proc() *Proc { return t.proc }

// Node returns the node the thread runs on.
func (t *Thread) Node() *Node { return t.proc.node }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Now returns the current virtual time.
func (t *Thread) Now() Time { return t.sim.now }

// WaitEvent blocks the thread until e triggers.
func (t *Thread) WaitEvent(e Event) {
	if t.sim.Triggered(e) {
		return
	}
	t.blockedOn = e
	t.sim.OnTrigger(e, t.wakeFn)
	t.yield()
	t.blockedOn = NoEvent
}

// wake schedules the thread to resume at the current virtual time. Killed
// threads are not woken: the kill has already scheduled their final
// unwinding resume, and a second handshake would wedge the scheduler.
func (t *Thread) wake() {
	if t.dead || t.killed {
		return
	}
	t.sim.at(t.sim.now, t.runFn)
}

// Elapse charges d of busy time on the thread's processor and advances the
// thread past it, serializing with any other work queued on the processor.
func (t *Thread) Elapse(d Time) {
	if d == 0 {
		return
	}
	t.WaitEvent(t.proc.Launch(NoEvent, d, nil))
}

// Sleep advances the thread by d without occupying the processor.
func (t *Thread) Sleep(d Time) {
	ev := t.sim.NewUserEvent()
	t.sim.After(d, func() { t.sim.Trigger(ev) })
	t.WaitEvent(ev)
}

// Barrier is a single-use phase barrier: it fires its completion event,
// after the modeled collective latency, once the expected number of
// arrivals have been registered. The CR compiler initially synchronizes
// copies with barriers (§3.4) before lowering to point-to-point sync.
type Barrier struct {
	sim      *Sim
	expected int
	arrived  int
	done     Event
}

// NewBarrier creates a barrier expecting n arrivals.
func (s *Sim) NewBarrier(n int) *Barrier {
	return &Barrier{sim: s, expected: n, done: s.NewUserEvent()}
}

// Arrive registers an arrival once pre triggers.
func (b *Barrier) Arrive(pre Event) {
	b.sim.OnTrigger(pre, func() {
		b.arrived++
		if b.arrived == b.expected {
			lat := b.sim.CollectiveLatency(b.expected)
			b.sim.After(lat, func() { b.sim.Trigger(b.done) })
		}
	})
}

// Done returns the event that fires when the barrier completes.
func (b *Barrier) Done() Event { return b.done }

// Collective is a Legion-style dynamic collective (§4.4): participants
// contribute scalar values; once all expected contributions are in, they
// are folded in participant-index order (so the result is bitwise
// deterministic and matches a sequential fold), the modeled
// reduce+broadcast latency is charged, and the completion event fires with
// the result available to all.
type Collective struct {
	sim      *Sim
	identity float64
	fold     func(acc, v float64) float64
	values   []float64
	present  []bool
	arrived  int
	done     Event
}

// NewCollective creates a dynamic collective over n participants with the
// given fold and identity.
func (s *Sim) NewCollective(n int, identity float64, fold func(acc, v float64) float64) *Collective {
	return &Collective{
		sim:      s,
		identity: identity,
		fold:     fold,
		values:   make([]float64, n),
		present:  make([]bool, n),
		done:     s.NewUserEvent(),
	}
}

// Contribute registers participant idx's value once pre triggers; value is
// evaluated at that moment. Each participant contributes exactly once.
func (c *Collective) Contribute(idx int, pre Event, value func() float64) {
	c.sim.OnTrigger(pre, func() {
		if c.present[idx] {
			panic("realm: duplicate collective contribution")
		}
		c.present[idx] = true
		c.values[idx] = value()
		c.arrived++
		if c.arrived == len(c.values) {
			// Reduce and broadcast trees.
			lat := 2 * c.sim.CollectiveLatency(c.arrived)
			c.sim.After(lat, func() { c.sim.Trigger(c.done) })
		}
	})
}

// Done returns the completion event.
func (c *Collective) Done() Event { return c.done }

// Result returns the values folded in index order; valid once Done has
// triggered.
func (c *Collective) Result() float64 {
	acc := c.identity
	for _, v := range c.values {
		acc = c.fold(acc, v)
	}
	return acc
}
