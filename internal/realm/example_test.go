package realm_test

import (
	"fmt"

	"repro/internal/realm"
)

// Example simulates two nodes: a task on node 0, whose completion releases
// a copy to node 1, whose arrival a thread on node 1 waits for.
func Example() {
	sim := realm.MustNewSim(realm.DefaultConfig(2))
	done := sim.Node(0).Proc(0).Launch(realm.NoEvent, realm.Milliseconds(2), nil)
	arrived := sim.Copy(sim.Node(0), sim.Node(1), 1<<20, done, nil)
	sim.Spawn("consumer", sim.Node(1).Proc(0), func(th *realm.Thread) {
		th.WaitEvent(arrived)
		fmt.Printf("data arrived at %.3f ms\n", float64(th.Now())/1e6)
	})
	sim.MustRun()
	// Output:
	// data arrived at 2.106 ms
}
