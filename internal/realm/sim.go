// Package realm is a deterministic discrete-event simulation (DES) of a
// distributed-memory machine, standing in for the Realm low-level runtime
// and the Piz Daint hardware of the paper's evaluation (see DESIGN.md §1
// for the substitution argument). It provides the primitives Legion-style
// runtimes are built from: processors with FIFO work queues, Legion-style
// deferred events, a network with per-message latency and per-link
// bandwidth serialization, phase barriers, point-to-point synchronization,
// dynamic collectives (§4.4), and cooperatively scheduled simulated threads
// for long-running control code.
//
// Everything advances a single virtual clock; the simulation is
// deterministic: events at equal times are processed in creation order, and
// at most one simulated thread runs at any moment.
package realm

import (
	"fmt"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Time constructors and accessors.
func Nanoseconds(n int64) Time       { return Time(n) }
func Microseconds(f float64) Time    { return Time(f * 1e3) }
func Milliseconds(f float64) Time    { return Time(f * 1e6) }
func SecondsT(f float64) Time        { return Time(f * 1e9) }
func (t Time) Seconds() float64      { return float64(t) / 1e9 }
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Event is a handle on a one-shot condition, in the style of Realm events:
// it is either not yet triggered or triggered, and consumers register
// continuations. The zero Event (NoEvent) is permanently triggered.
type Event int32

// NoEvent is the already-triggered event used for operations with no
// preconditions.
const NoEvent Event = 0

// Config describes the simulated machine.
type Config struct {
	Nodes        int     // node count
	CoresPerNode int     // processors per node
	NetLatency   Time    // end-to-end latency per remote message
	NetBandwidth float64 // bytes per nanosecond per link
	LocalLatency Time    // latency of a node-local copy
	LocalBW      float64 // bytes per nanosecond for node-local copies
	HopLatency   Time    // per-tree-level latency of barriers/collectives
}

// Validate reports whether the configuration describes a usable machine.
// Non-positive bandwidths or negative latencies would silently produce
// absurd virtual times (divisions by zero, time running backwards), so they
// are rejected up front.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("realm: config requires at least one node (got %d)", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("realm: config requires at least one core per node (got %d)", c.CoresPerNode)
	case c.NetLatency < 0:
		return fmt.Errorf("realm: negative NetLatency %d", c.NetLatency)
	case c.LocalLatency < 0:
		return fmt.Errorf("realm: negative LocalLatency %d", c.LocalLatency)
	case c.HopLatency < 0:
		return fmt.Errorf("realm: negative HopLatency %d", c.HopLatency)
	case !(c.NetBandwidth > 0):
		return fmt.Errorf("realm: NetBandwidth must be positive (got %v)", c.NetBandwidth)
	case !(c.LocalBW > 0):
		return fmt.Errorf("realm: LocalBW must be positive (got %v)", c.LocalBW)
	}
	return nil
}

// DefaultConfig returns machine parameters loosely calibrated to a Cray
// XC-class system: ~1.5 us network latency, ~10 GB/s per-link bandwidth,
// 12 cores per node.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: 12,
		NetLatency:   Microseconds(1.5),
		NetBandwidth: 10.0, // 10 bytes/ns = 10 GB/s
		LocalLatency: Microseconds(0.1),
		LocalBW:      50.0,
		HopLatency:   Microseconds(1.0),
	}
}

// Stats accumulates machine-wide counters during a run.
type Stats struct {
	Messages    int64 // remote copies issued
	BytesSent   int64 // remote bytes moved
	LocalCopies int64
	TasksRun    int64
	Events      int64 // events processed by the scheduler

	// TraceShips/TraceShipBytes count captured traces shipped to restarted
	// shards during failover recovery (ShipTrace). The payload bytes also
	// count toward Messages/BytesSent like any other transfer.
	TraceShips     int64
	TraceShipBytes int64

	// AggGroups counts coalesced transfers issued through CopyAgg with at
	// least two member pairs; AggSavedMessages counts the remote messages
	// those groups avoided (members-1 per remote group). Both are counted
	// at issue time, identically on every backend, so the counters are
	// backend-independent for a given schedule.
	AggGroups        int64
	AggSavedMessages int64

	// WallNanos is real elapsed wall-clock time in nanoseconds, reported
	// only by backends that execute on real cores (always zero on the DES,
	// whose clock is virtual).
	WallNanos int64

	// Scheduler counters, reported only by backends with a real work
	// scheduler (always zero on the DES, which has no worker pool).
	// Dispatches counts work items executed by pool workers; Steals counts
	// the subset taken from a deque other than the one they were enqueued
	// on; InlineCompletions counts launches and copies that completed
	// inline at precondition trigger without touching a queue.
	Dispatches        int64
	Steals            int64
	InlineCompletions int64
}

// Sim is the simulator: the event heap, virtual clock, machine state, and
// statistics.
type Sim struct {
	cfg    Config
	policy TimePolicy
	now    Time
	seq    int64
	queue  eventQueue
	evs    []eventState // index = Event-1
	nodes  []*Node
	stats  Stats

	running     bool
	strong      int           // count of non-weak queued items
	activeYield chan struct{} // signaled when the active thread yields
	tracer      *Tracer
	liveThreads map[*Thread]bool
	threadSeq   int64 // spawn counter, gives threads a deterministic order

	// Fault-injection state (nil faults = fault-free run).
	faults     *FaultPlan
	faultSeq   uint64
	faultStats FaultStats
	crashLog   []NodeCrash
	// Logical-point crash schedules: per-node launch issue counters and the
	// per-node launch number at which the node fail-stops (nil unless the
	// plan carries LaunchCrashes). Counting happens in LaunchOn so the DES
	// numbers launches exactly as the native backend's atomic counters do.
	launchSeq     []uint64
	launchCrashAt map[int]uint64

	// waiterPool recycles the waiter slices of triggered events; DES runs
	// create and retire millions of events, and reusing the slices keeps the
	// schedule/trigger hot path allocation-free at steady state.
	waiterPool [][]func()

	// mergerPool recycles merger states (and their bound callbacks) once
	// they fire; every task launch merges its preconditions, so steady-state
	// loops would otherwise allocate a merger per launch per iteration.
	mergerPool []*merger
}

type eventState struct {
	triggered bool
	waiters   []func()
}

type queued struct {
	at  Time
	seq int64
	fn  func()
	// fn == nil marks a body-less work-item completion: at time at, unless
	// failNode has crashed, trigger ev. The common case by far (modeled
	// tasks, Elapse, data movement without an attached body), encoded in
	// plain fields so it costs no closure allocation.
	ev       Event
	failNode *Node
	weak     bool // weak items do not keep the simulation alive (fault generators)
}

// eventQueue is a typed 4-ary min-heap ordered by (at, seq). A hand-rolled
// heap avoids container/heap's interface{} boxing of every element on
// Push/Pop — the single hottest allocation site of the simulator — and the
// 4-ary layout halves the tree depth, trading cheap sibling comparisons for
// expensive cache-missing level hops. (at, seq) is a strict total order
// (seq increments on every insert), so pop order — and thus the entire
// simulation — is identical to the old binary heap's.
type eventQueue struct {
	items []queued
}

func (q *eventQueue) Len() int { return len(q.items) }

// less orders by time, then insertion sequence.
func (q *eventQueue) less(a, b *queued) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(it queued) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(&q.items[i], &q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) pop() queued {
	items := q.items
	top := items[0]
	n := len(items) - 1
	items[0] = items[n]
	items[n] = queued{} // release the closure
	q.items = items[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	items := q.items
	n := len(items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(&items[c], &items[min]) {
				min = c
			}
		}
		if !q.less(&items[min], &items[i]) {
			return
		}
		items[i], items[min] = items[min], items[i]
		i = min
	}
}

// NewSim builds a simulator for the given machine, rejecting configurations
// that would produce nonsensical times (see Config.Validate).
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, policy: ModeledTime{Cfg: cfg}, activeYield: make(chan struct{}), liveThreads: map[*Thread]bool{}}
	// Pre-size the event table and heap: simulations allocate events at a
	// furious rate, and starting from a real capacity avoids the first dozen
	// grow-and-copy cycles of append.
	s.evs = make([]eventState, 0, 4096)
	s.queue.items = make([]queued, 0, 1024)
	s.nodes = make([]*Node, cfg.Nodes)
	for i := range s.nodes {
		n := &Node{sim: s, id: i}
		n.procs = make([]*Proc, cfg.CoresPerNode)
		for j := range n.procs {
			n.procs[j] = &Proc{node: n, id: j}
		}
		s.nodes[i] = n
	}
	return s, nil
}

// MustNewSim is NewSim for configurations known statically valid (tests,
// examples); it panics on a bad Config.
func MustNewSim(cfg Config) *Sim {
	s, err := NewSim(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the machine configuration.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the counters accumulated so far.
func (s *Sim) Stats() Stats { return s.stats }

// Node returns node i.
func (s *Sim) Node(i int) *Node { return s.nodes[i] }

// Nodes returns the node count.
func (s *Sim) Nodes() int { return len(s.nodes) }

// at schedules fn at absolute virtual time t (>= now).
func (s *Sim) at(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.strong++
	s.queue.push(queued{at: t, seq: s.seq, fn: fn})
}

// atDone schedules the completion of a body-less work item: at time t,
// unless n (when non-nil) has failed, ev triggers. Semantically identical
// to at(t, func() { ... }) but with the closure replaced by plain queue
// fields — completions are the most common queue entry in a simulation,
// and this keeps the steady-state hot path allocation-free.
func (s *Sim) atDone(t Time, n *Node, ev Event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.strong++
	s.queue.push(queued{at: t, seq: s.seq, ev: ev, failNode: n})
}

// atWeak schedules fn at absolute time t without keeping the simulation
// alive: Run exits once only weak items remain. Fault generators are weak —
// a crash planned for a time the program never reaches must not prevent
// termination.
func (s *Sim) atWeak(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(queued{at: t, seq: s.seq, fn: fn, weak: true})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.at(s.now+d, fn) }

// NewUserEvent creates an untriggered event.
func (s *Sim) NewUserEvent() Event {
	s.evs = append(s.evs, eventState{})
	return Event(len(s.evs))
}

// ReserveEvents creates n untriggered events with contiguous handles and
// returns the first; the block is first, first+1, ..., first+n-1. This is
// the bulk event-graph injection API used by trace replay: a replayed
// iteration's whole event population is carved out of one reservation, so
// positions within the trace map to handles by plain arithmetic instead of
// per-event table appends and bookkeeping. Reserving zero events returns
// NoEvent.
func (s *Sim) ReserveEvents(n int) Event {
	if n <= 0 {
		return NoEvent
	}
	first := Event(len(s.evs) + 1)
	for i := 0; i < n; i++ {
		s.evs = append(s.evs, eventState{})
	}
	return first
}

// Trigger fires a user event; continuations run immediately (at the current
// virtual time) in registration order. Triggering twice panics: event
// handles are one-shot.
func (s *Sim) Trigger(e Event) {
	if e == NoEvent {
		panic("realm: cannot trigger NoEvent")
	}
	st := &s.evs[e-1]
	if st.triggered {
		panic(fmt.Sprintf("realm: event %d triggered twice", e))
	}
	st.triggered = true
	waiters := st.waiters
	st.waiters = nil
	for i, fn := range waiters {
		waiters[i] = nil // release the closure before recycling
		fn()
	}
	if cap(waiters) > 0 {
		s.waiterPool = append(s.waiterPool, waiters[:0])
	}
}

// Triggered reports whether e has fired.
func (s *Sim) Triggered(e Event) bool {
	return e == NoEvent || s.evs[e-1].triggered
}

// OnTrigger runs fn when e fires (immediately if it already has).
func (s *Sim) OnTrigger(e Event, fn func()) {
	if s.Triggered(e) {
		fn()
		return
	}
	st := &s.evs[e-1]
	if st.waiters == nil {
		if n := len(s.waiterPool); n > 0 {
			st.waiters = s.waiterPool[n-1]
			s.waiterPool = s.waiterPool[:n-1]
		}
	}
	st.waiters = append(st.waiters, fn)
}

// merger is the counter state of one Merge: a single arrival callback
// shared by all pending inputs, instead of one captured closure per input.
type merger struct {
	s         *Sim
	remaining int
	out       Event
	cb        func() // bound arrive, created once per merger lifetime
}

func (m *merger) arrive() {
	m.remaining--
	if m.remaining == 0 {
		out := m.out
		// Recycle before triggering: no further arrivals can reference m
		// (exactly `remaining` registrations were made), and a continuation
		// of out may well call Merge again.
		m.s.mergerPool = append(m.s.mergerPool, m)
		m.s.Trigger(out)
	}
}

// Merge returns an event that triggers once all inputs have triggered
// (Realm's event merger). The inputs slice is not retained, so callers may
// reuse scratch buffers across calls.
func (s *Sim) Merge(evs ...Event) Event {
	pending := 0
	for _, e := range evs {
		if !s.Triggered(e) {
			pending++
		}
	}
	if pending == 0 {
		return NoEvent
	}
	out := s.NewUserEvent()
	var m *merger
	if n := len(s.mergerPool); n > 0 {
		m = s.mergerPool[n-1]
		s.mergerPool = s.mergerPool[:n-1]
	} else {
		m = &merger{s: s}
		m.cb = m.arrive
	}
	m.remaining, m.out = pending, out
	for _, e := range evs {
		if !s.Triggered(e) {
			s.OnTrigger(e, m.cb)
		}
	}
	return out
}

// AfterEvent returns an event that fires d nanoseconds after e does.
func (s *Sim) AfterEvent(e Event, d Time) Event {
	if d == 0 {
		return e
	}
	out := s.NewUserEvent()
	s.OnTrigger(e, func() {
		s.After(d, func() { s.Trigger(out) })
	})
	return out
}

// BlockedThread describes one stuck thread in a DeadlockError: its
// diagnostic name and the event it is waiting on (NoEvent if it is blocked
// for another reason, e.g. mid-handshake).
type BlockedThread struct {
	Name    string
	Waiting Event
}

// DeadlockError is returned by Run when the event queue drains while
// simulated threads are still blocked: every blocked thread waits on an
// event nothing pending can ever trigger.
type DeadlockError struct {
	Now     Time
	Blocked []BlockedThread
}

func (e *DeadlockError) Error() string {
	var b []byte
	b = fmt.Appendf(b, "realm: deadlock at t=%d — no events pending but %d threads are blocked:", e.Now, len(e.Blocked))
	for _, t := range e.Blocked {
		if t.Waiting != NoEvent {
			b = fmt.Appendf(b, " %s(waiting on event %d)", t.Name, t.Waiting)
		} else {
			b = fmt.Appendf(b, " %s", t.Name)
		}
	}
	return string(b)
}

// Run processes events until no strong items remain and all threads have
// finished, returning the final virtual time. If threads are still blocked
// when the queue drains, the error is a *DeadlockError naming them and the
// events they wait on.
func (s *Sim) Run() (Time, error) {
	if s.running {
		return s.now, fmt.Errorf("realm: Run is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.strong > 0 {
		item := s.queue.pop()
		if !item.weak {
			s.strong--
		}
		s.now = item.at
		s.stats.Events++
		if item.fn != nil {
			item.fn()
		} else if item.failNode == nil || !item.failNode.failed {
			s.Trigger(item.ev)
		}
	}
	if len(s.liveThreads) > 0 {
		blocked := make([]*Thread, 0, len(s.liveThreads))
		for t := range s.liveThreads {
			blocked = append(blocked, t)
		}
		sort.Slice(blocked, func(i, j int) bool { return blocked[i].id < blocked[j].id })
		derr := &DeadlockError{Now: s.now}
		for _, t := range blocked {
			derr.Blocked = append(derr.Blocked, BlockedThread{Name: t.name, Waiting: t.blockedOn})
		}
		return s.now, derr
	}
	return s.now, nil
}

// MustRun is Run for simulations known to terminate cleanly (tests,
// examples); it panics on error.
func (s *Sim) MustRun() Time {
	t, err := s.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// CollectiveLatency returns the modeled latency of an n-participant
// tree-structured collective operation, as charged by the time policy.
func (s *Sim) CollectiveLatency(n int) Time {
	return s.policy.CollectiveLatency(n)
}
