// Package realm is a deterministic discrete-event simulation (DES) of a
// distributed-memory machine, standing in for the Realm low-level runtime
// and the Piz Daint hardware of the paper's evaluation (see DESIGN.md §1
// for the substitution argument). It provides the primitives Legion-style
// runtimes are built from: processors with FIFO work queues, Legion-style
// deferred events, a network with per-message latency and per-link
// bandwidth serialization, phase barriers, point-to-point synchronization,
// dynamic collectives (§4.4), and cooperatively scheduled simulated threads
// for long-running control code.
//
// Everything advances a single virtual clock; the simulation is
// deterministic: events at equal times are processed in creation order, and
// at most one simulated thread runs at any moment.
package realm

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Time constructors and accessors.
func Nanoseconds(n int64) Time       { return Time(n) }
func Microseconds(f float64) Time    { return Time(f * 1e3) }
func Milliseconds(f float64) Time    { return Time(f * 1e6) }
func SecondsT(f float64) Time        { return Time(f * 1e9) }
func (t Time) Seconds() float64      { return float64(t) / 1e9 }
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Event is a handle on a one-shot condition, in the style of Realm events:
// it is either not yet triggered or triggered, and consumers register
// continuations. The zero Event (NoEvent) is permanently triggered.
type Event int32

// NoEvent is the already-triggered event used for operations with no
// preconditions.
const NoEvent Event = 0

// Config describes the simulated machine.
type Config struct {
	Nodes        int     // node count
	CoresPerNode int     // processors per node
	NetLatency   Time    // end-to-end latency per remote message
	NetBandwidth float64 // bytes per nanosecond per link
	LocalLatency Time    // latency of a node-local copy
	LocalBW      float64 // bytes per nanosecond for node-local copies
	HopLatency   Time    // per-tree-level latency of barriers/collectives
}

// DefaultConfig returns machine parameters loosely calibrated to a Cray
// XC-class system: ~1.5 us network latency, ~10 GB/s per-link bandwidth,
// 12 cores per node.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: 12,
		NetLatency:   Microseconds(1.5),
		NetBandwidth: 10.0, // 10 bytes/ns = 10 GB/s
		LocalLatency: Microseconds(0.1),
		LocalBW:      50.0,
		HopLatency:   Microseconds(1.0),
	}
}

// Stats accumulates machine-wide counters during a run.
type Stats struct {
	Messages    int64 // remote copies issued
	BytesSent   int64 // remote bytes moved
	LocalCopies int64
	TasksRun    int64
	Events      int64 // events processed by the scheduler
}

// Sim is the simulator: the event heap, virtual clock, machine state, and
// statistics.
type Sim struct {
	cfg   Config
	now   Time
	seq   int64
	queue eventQueue
	evs   []eventState // index = Event-1
	nodes []*Node
	stats Stats

	running     bool
	activeYield chan struct{} // signaled when the active thread yields
	tracer      *Tracer
	liveThreads map[*Thread]bool
}

type eventState struct {
	triggered bool
	waiters   []func()
}

type queued struct {
	at  Time
	seq int64
	fn  func()
}

type eventQueue []queued

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(queued)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// NewSim builds a simulator for the given machine.
func NewSim(cfg Config) *Sim {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic("realm: config requires at least one node and one core")
	}
	s := &Sim{cfg: cfg, activeYield: make(chan struct{}), liveThreads: map[*Thread]bool{}}
	s.nodes = make([]*Node, cfg.Nodes)
	for i := range s.nodes {
		n := &Node{sim: s, id: i}
		n.procs = make([]*Proc, cfg.CoresPerNode)
		for j := range n.procs {
			n.procs[j] = &Proc{node: n, id: j}
		}
		s.nodes[i] = n
	}
	return s
}

// Config returns the machine configuration.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the counters accumulated so far.
func (s *Sim) Stats() Stats { return s.stats }

// Node returns node i.
func (s *Sim) Node(i int) *Node { return s.nodes[i] }

// Nodes returns the node count.
func (s *Sim) Nodes() int { return len(s.nodes) }

// at schedules fn at absolute virtual time t (>= now).
func (s *Sim) at(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, queued{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.at(s.now+d, fn) }

// NewUserEvent creates an untriggered event.
func (s *Sim) NewUserEvent() Event {
	s.evs = append(s.evs, eventState{})
	return Event(len(s.evs))
}

// Trigger fires a user event; continuations run immediately (at the current
// virtual time) in registration order. Triggering twice panics: event
// handles are one-shot.
func (s *Sim) Trigger(e Event) {
	if e == NoEvent {
		panic("realm: cannot trigger NoEvent")
	}
	st := &s.evs[e-1]
	if st.triggered {
		panic(fmt.Sprintf("realm: event %d triggered twice", e))
	}
	st.triggered = true
	waiters := st.waiters
	st.waiters = nil
	for _, fn := range waiters {
		fn()
	}
}

// Triggered reports whether e has fired.
func (s *Sim) Triggered(e Event) bool {
	return e == NoEvent || s.evs[e-1].triggered
}

// OnTrigger runs fn when e fires (immediately if it already has).
func (s *Sim) OnTrigger(e Event, fn func()) {
	if s.Triggered(e) {
		fn()
		return
	}
	st := &s.evs[e-1]
	st.waiters = append(st.waiters, fn)
}

// Merge returns an event that triggers once all inputs have triggered
// (Realm's event merger).
func (s *Sim) Merge(evs ...Event) Event {
	pending := 0
	for _, e := range evs {
		if !s.Triggered(e) {
			pending++
		}
	}
	if pending == 0 {
		return NoEvent
	}
	out := s.NewUserEvent()
	remaining := pending
	for _, e := range evs {
		if s.Triggered(e) {
			continue
		}
		s.OnTrigger(e, func() {
			remaining--
			if remaining == 0 {
				s.Trigger(out)
			}
		})
	}
	return out
}

// AfterEvent returns an event that fires d nanoseconds after e does.
func (s *Sim) AfterEvent(e Event, d Time) Event {
	if d == 0 {
		return e
	}
	out := s.NewUserEvent()
	s.OnTrigger(e, func() {
		s.After(d, func() { s.Trigger(out) })
	})
	return out
}

// Run processes events until the queue is empty and all threads have
// finished, returning the final virtual time.
func (s *Sim) Run() Time {
	if s.running {
		panic("realm: Run is not reentrant")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.queue.Len() > 0 {
		item := heap.Pop(&s.queue).(queued)
		s.now = item.at
		s.stats.Events++
		item.fn()
	}
	if len(s.liveThreads) > 0 {
		names := make([]string, 0, len(s.liveThreads))
		for t := range s.liveThreads {
			names = append(names, t.name)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("realm: deadlock — no events pending but %d threads are blocked: %v", len(names), names))
	}
	return s.now
}

// CollectiveLatency returns the modeled latency of an n-participant
// tree-structured collective operation.
func (s *Sim) CollectiveLatency(n int) Time {
	if n <= 1 {
		return 0
	}
	levels := int(math.Ceil(math.Log2(float64(n))))
	return Time(levels) * s.cfg.HopLatency
}
