// Package native implements the realm execution interface (realm.Exec) on
// real goroutines over shared memory: the second backend of the engine /
// time-policy split. Where the DES interprets the event graph on one
// virtual clock, the native Machine runs it — one goroutine per control
// agent (a CR shard thread), one per ready work item, real memcpy-style
// region copies in task and copy bodies, and wall-clock timing.
//
// The memory model is the event graph itself. Engines order every pair of
// conflicting accesses through events (task preconditions, p2p war/done
// pairs, barriers, collectives), and the Machine gives each trigger edge a
// happens-before edge: a continuation or a woken agent observes everything
// the triggering goroutine wrote, because registration and trigger
// synchronize through the event-table mutex. Floating-point results are
// bitwise identical to the DES not because the schedule is identical (it is
// not — real cores race) but because every order that could affect a float
// is fixed by explicit dependences: reduction copies chain in source order
// through shared done events, and collectives fold contributions in
// participant-index order regardless of arrival order.
//
// Time-model operations are deliberately inert: Agent.Elapse and
// Agent.Sleep are no-ops (the agent's real work is its cost), LaunchOn
// ignores the modeled duration, and Now/Stats report wall-clock nanoseconds
// since construction. Fault injection and checkpoint/restart recovery are
// not supported — there is no virtual machine state to fail or restore —
// and surface as realm.UnsupportedError.
package native

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/realm"
)

// Machine is a native shared-memory implementation of realm.Exec.
type Machine struct {
	cfg   realm.Config
	epoch time.Time

	mu  sync.Mutex
	evs []evState // index = Event-1
	// started flips when Drive begins; agents spawned earlier are deferred
	// so setup code can build the initial population race-free.
	started bool
	pending []func()

	// wg tracks every live goroutine that can still trigger events: agents
	// for their whole lifetime, work items from the moment their
	// precondition fires. An untriggered event that will ever trigger is
	// always owed to a goroutine counted here, so Drive's Wait cannot
	// return early.
	wg sync.WaitGroup

	// failCh closes on the first recorded error; agents blocked in
	// WaitEvent abandon their waits so the machine drains instead of
	// hanging on events a dead goroutine will never trigger.
	failMu sync.Mutex
	failCh chan struct{}
	err    error

	// Counters (atomics: work items complete concurrently).
	messages    int64
	bytesSent   int64
	localCopies int64
	tasksRun    int64
	events      int64
}

type evState struct {
	triggered bool
	waiters   []func()
}

// NewMachine builds a native machine for the given configuration. Only the
// topology fields (Nodes, CoresPerNode) govern execution; the cost-model
// fields are carried for Config() but never charged.
func NewMachine(cfg realm.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, failCh: make(chan struct{})}
	m.evs = make([]evState, 0, 4096)
	m.epoch = time.Now()
	return m, nil
}

// MustNewMachine is NewMachine for statically valid configurations.
func MustNewMachine(cfg realm.Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

var _ realm.Exec = (*Machine)(nil)

// Backend implements realm.Exec.
func (m *Machine) Backend() string { return "native" }

// Config implements realm.Exec.
func (m *Machine) Config() realm.Config { return m.cfg }

// Nodes implements realm.Exec.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Now returns wall-clock nanoseconds since the machine was created.
func (m *Machine) Now() realm.Time {
	return realm.Time(time.Since(m.epoch))
}

// Stats implements realm.Exec; WallNanos carries the elapsed wall-clock
// time that the DES's virtual counters cannot.
func (m *Machine) Stats() realm.Stats {
	return realm.Stats{
		Messages:    atomic.LoadInt64(&m.messages),
		BytesSent:   atomic.LoadInt64(&m.bytesSent),
		LocalCopies: atomic.LoadInt64(&m.localCopies),
		TasksRun:    atomic.LoadInt64(&m.tasksRun),
		Events:      atomic.LoadInt64(&m.events),
		WallNanos:   int64(m.Now()),
	}
}

// InjectFaults reports fault injection as unsupported: the native backend
// has no virtual nodes to crash or links to corrupt.
func (m *Machine) InjectFaults(realm.FaultPlan) error {
	return &realm.UnsupportedError{Backend: m.Backend(), Op: "fault injection"}
}

// NewUserEvent implements realm.Exec.
func (m *Machine) NewUserEvent() realm.Event {
	m.mu.Lock()
	m.evs = append(m.evs, evState{})
	e := realm.Event(len(m.evs))
	m.mu.Unlock()
	return e
}

// ReserveEvents implements realm.Exec: n contiguous untriggered handles.
func (m *Machine) ReserveEvents(n int) realm.Event {
	if n <= 0 {
		return realm.NoEvent
	}
	m.mu.Lock()
	first := realm.Event(len(m.evs) + 1)
	for i := 0; i < n; i++ {
		m.evs = append(m.evs, evState{})
	}
	m.mu.Unlock()
	return first
}

// Trigger implements realm.Exec. Continuations run synchronously on the
// triggering goroutine, outside the table lock, so they may re-enter the
// machine (trigger further events, register waiters, spawn work).
func (m *Machine) Trigger(e realm.Event) {
	if e == realm.NoEvent {
		panic("native: cannot trigger NoEvent")
	}
	m.mu.Lock()
	st := &m.evs[e-1]
	if st.triggered {
		m.mu.Unlock()
		panic(fmt.Sprintf("native: event %d triggered twice", e))
	}
	st.triggered = true
	waiters := st.waiters
	st.waiters = nil
	m.mu.Unlock()
	atomic.AddInt64(&m.events, 1)
	for _, fn := range waiters {
		fn()
	}
}

// Triggered implements realm.Exec.
func (m *Machine) Triggered(e realm.Event) bool {
	if e == realm.NoEvent {
		return true
	}
	m.mu.Lock()
	t := m.evs[e-1].triggered
	m.mu.Unlock()
	return t
}

// OnTrigger implements realm.Exec; fn runs inline when e already fired.
func (m *Machine) OnTrigger(e realm.Event, fn func()) {
	if e == realm.NoEvent {
		fn()
		return
	}
	m.mu.Lock()
	st := &m.evs[e-1]
	if st.triggered {
		m.mu.Unlock()
		fn()
		return
	}
	st.waiters = append(st.waiters, fn)
	m.mu.Unlock()
}

// Merge implements realm.Exec via an atomic countdown: the extra initial
// count covers registration itself, so inputs may trigger concurrently
// while the loop is still walking them.
func (m *Machine) Merge(evs ...realm.Event) realm.Event {
	if len(evs) == 0 {
		return realm.NoEvent
	}
	out := m.NewUserEvent()
	remaining := int64(len(evs)) + 1
	dec := func() {
		if atomic.AddInt64(&remaining, -1) == 0 {
			m.Trigger(out)
		}
	}
	for _, e := range evs {
		m.OnTrigger(e, dec)
	}
	dec()
	return out
}

// SpawnOn implements realm.Exec: fn runs on its own goroutine. The node
// and proc bindings are advisory on shared memory — the Go scheduler owns
// placement — but are kept for the interface's diagnostics.
func (m *Machine) SpawnOn(name string, node, proc int, fn func(realm.Agent)) realm.Agent {
	_ = proc
	a := &agent{m: m, name: name, node: node}
	m.wg.Add(1)
	run := func() {
		defer m.wg.Done()
		defer m.capturePanic("agent " + name)
		fn(a)
	}
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		go run()
	} else {
		m.pending = append(m.pending, run)
		m.mu.Unlock()
	}
	return a
}

// LaunchOn implements realm.Exec. The modeled duration is ignored — the
// body's real execution time is the cost. A body-less item (a modeled
// placeholder) completes inline at precondition trigger.
func (m *Machine) LaunchOn(node int, pre realm.Event, dur realm.Time, body func()) realm.Event {
	_, _ = node, dur
	done := m.NewUserEvent()
	m.OnTrigger(pre, func() {
		atomic.AddInt64(&m.tasksRun, 1)
		if body == nil {
			m.Trigger(done)
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.capturePanic("task")
			body()
			m.Trigger(done)
		}()
	})
	return done
}

// CopyBytes implements realm.Exec: the body performs the real data
// movement (a shared-memory store-to-store copy); the byte count only
// feeds the traffic counters.
func (m *Machine) CopyBytes(src, dst int, bytes int64, pre realm.Event, body func()) realm.Event {
	done := m.NewUserEvent()
	m.OnTrigger(pre, func() {
		if src == dst {
			atomic.AddInt64(&m.localCopies, 1)
		} else {
			atomic.AddInt64(&m.messages, 1)
			atomic.AddInt64(&m.bytesSent, bytes)
		}
		if body == nil {
			m.Trigger(done)
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.capturePanic("copy")
			body()
			m.Trigger(done)
		}()
	})
	return done
}

// Drive implements realm.Exec: release the agents spawned before the run,
// then wait for the population of agents and work items to drain. The
// counting discipline makes the Wait sound: any event that will ever
// trigger is owed to a goroutine in the group, and work items join the
// group synchronously inside their precondition's trigger (i.e. while the
// triggering goroutine is still counted), so the count never dips to zero
// with work outstanding.
func (m *Machine) Drive() (realm.Time, error) {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return m.Now(), fmt.Errorf("native: Drive is not reentrant")
	}
	m.started = true
	pend := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, run := range pend {
		go run()
	}
	m.wg.Wait()
	m.failMu.Lock()
	err := m.err
	m.failMu.Unlock()
	return m.Now(), err
}

// abortPanic unwinds an agent whose machine has failed; capturePanic
// swallows it without recording.
type abortPanic struct{}

// fail records the first error and releases every agent blocked in
// WaitEvent, so a panicking kernel drains the machine instead of wedging
// Drive on events that will never fire.
func (m *Machine) fail(err error) {
	m.failMu.Lock()
	if m.err == nil {
		m.err = err
		close(m.failCh)
	}
	m.failMu.Unlock()
}

func (m *Machine) failed() bool {
	select {
	case <-m.failCh:
		return true
	default:
		return false
	}
}

func (m *Machine) capturePanic(what string) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(abortPanic); ok {
		return
	}
	m.fail(fmt.Errorf("native: %s panicked: %v", what, r))
}

// agent is a native control agent: a real goroutine that blocks on
// channels instead of yielding to a scheduler.
type agent struct {
	m    *Machine
	name string
	node int
}

var _ realm.Agent = (*agent)(nil)

// Name implements realm.Agent.
func (a *agent) Name() string { return a.name }

// Now implements realm.Agent (wall-clock).
func (a *agent) Now() realm.Time { return a.m.Now() }

// WaitEvent implements realm.Agent: block until e fires, or unwind if the
// machine fails first.
func (a *agent) WaitEvent(e realm.Event) {
	if a.m.Triggered(e) {
		if a.m.failed() {
			panic(abortPanic{})
		}
		return
	}
	ch := make(chan struct{})
	a.m.OnTrigger(e, func() { close(ch) })
	select {
	case <-ch:
	case <-a.m.failCh:
		panic(abortPanic{})
	}
}

// Elapse implements realm.Agent as a no-op: on real cores the agent's
// actual control work is its cost; there is no modeled time to charge.
func (a *agent) Elapse(realm.Time) {}

// Sleep implements realm.Agent as a no-op: modeled backoff delays belong
// to the DES's virtual clock.
func (a *agent) Sleep(realm.Time) {}

// barrier counts arrivals with an atomic; the last arrival fires done on
// its own goroutine, which gives waiters the usual happens-before edge.
type barrier struct {
	m         *Machine
	remaining int64
	done      realm.Event
}

var _ realm.BarrierOp = (*barrier)(nil)

// Barrier implements realm.Exec.
func (m *Machine) Barrier(n int) realm.BarrierOp {
	return &barrier{m: m, remaining: int64(n), done: m.NewUserEvent()}
}

// Arrive implements realm.BarrierOp.
func (b *barrier) Arrive(pre realm.Event) {
	b.m.OnTrigger(pre, func() {
		if atomic.AddInt64(&b.remaining, -1) == 0 {
			b.m.Trigger(b.done)
		}
	})
}

// Done implements realm.BarrierOp.
func (b *barrier) Done() realm.Event { return b.done }

// collective stores contributions by participant index under a lock and
// folds them in index order, so the result is bitwise identical no matter
// which order real cores arrive in.
type collective struct {
	m        *Machine
	identity float64
	fold     func(acc, v float64) float64

	mu      sync.Mutex
	values  []float64
	present []bool
	arrived int
	done    realm.Event
}

var _ realm.CollectiveOp = (*collective)(nil)

// Collective implements realm.Exec.
func (m *Machine) Collective(n int, identity float64, fold func(acc, v float64) float64) realm.CollectiveOp {
	return &collective{
		m:        m,
		identity: identity,
		fold:     fold,
		values:   make([]float64, n),
		present:  make([]bool, n),
		done:     m.NewUserEvent(),
	}
}

// Contribute implements realm.CollectiveOp.
func (c *collective) Contribute(idx int, pre realm.Event, value func() float64) {
	c.m.OnTrigger(pre, func() {
		v := value()
		c.mu.Lock()
		if c.present[idx] {
			c.mu.Unlock()
			panic("native: duplicate collective contribution")
		}
		c.present[idx] = true
		c.values[idx] = v
		c.arrived++
		fire := c.arrived == len(c.values)
		c.mu.Unlock()
		if fire {
			c.m.Trigger(c.done)
		}
	})
}

// Done implements realm.CollectiveOp.
func (c *collective) Done() realm.Event { return c.done }

// Result implements realm.CollectiveOp: an index-order fold, identical to
// the DES's.
func (c *collective) Result() float64 {
	acc := c.identity
	for _, v := range c.values {
		acc = c.fold(acc, v)
	}
	return acc
}
