// Package native implements the realm execution interface (realm.Exec) on
// real goroutines over shared memory: the second backend of the engine /
// time-policy split. Where the DES interprets the event graph on one
// virtual clock, the native Machine runs it — one goroutine per control
// agent (a CR shard thread), a fixed pool of worker goroutines executing
// the ready work items off per-(node, proc) deques (sched.go; affinity
// placement, LIFO slots, node-local-then-remote stealing), real
// memcpy-style region copies in task and copy bodies, and wall-clock
// timing. Zero-cost completions (nil body, no injected delay) short-
// circuit inline at trigger without touching a queue, and SetScheduler
// can fall the machine back to goroutine-per-launch dispatch for A/B
// comparison.
//
// The memory model is the event graph itself. Engines order every pair of
// conflicting accesses through events (task preconditions, p2p war/done
// pairs, barriers, collectives), and the Machine gives each trigger edge a
// happens-before edge: a continuation or a woken agent observes everything
// the triggering goroutine wrote, because registration and trigger
// synchronize through the event-table mutex. Floating-point results are
// bitwise identical to the DES not because the schedule is identical (it is
// not — real cores race) but because every order that could affect a float
// is fixed by explicit dependences: reduction copies chain in source order
// through shared done events, and collectives fold contributions in
// participant-index order regardless of arrival order.
//
// Time-model operations are deliberately inert: Agent.Elapse is a no-op
// (the agent's real work is its cost), LaunchOn uses the modeled duration
// only to scale injected straggler delays, and Now/Stats report wall-clock
// nanoseconds since construction. Agent.Sleep is a real sleep — the
// recovery layer's restart backoff is wall-clock here.
//
// Fault injection (realm.FaultExec) is seeded and logical-point based:
// every fault decision is a pure function of (seed, stream, node, per-node
// operation sequence number), so the same seed kills the same shard at the
// same logical point on every run — no wall-clock timers are involved in
// deciding faults. Crashes cancel the node's agent goroutines (they unwind
// with the shared kill sentinel at their next scheduling point) and
// suppress not-yet-started work touching the node; drops pay a bounded
// exponential-backoff retransmit delay; stragglers sleep for real.
// Virtual-time crash schedules (FaultPlan.Crashes) are the one DES-only
// feature: there is no virtual clock to schedule them against, and they are
// rejected with a precise realm.UnsupportedError.
//
// A wall-clock watchdog — the analogue of the DES DeadlockError — detects
// runs that stop making progress (every live agent blocked, no work item in
// flight, no event fired for a full window) and fails the machine with a
// realm.HangError naming the blocked agents and the primitive each is
// parked on, instead of letting the caller hit a test timeout.
package native

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/realm"
)

// crashQuantumSec converts FaultPlan.CrashRate (a Poisson rate in crashes
// per simulated second) into a per-launch crash probability: each task
// launch is treated as one crash opportunity worth this many seconds of
// exposure. The quantum approximates the DES's per-launch virtual-time
// advance, so comparable rates produce comparable crash counts on both
// backends.
const crashQuantumSec = 1e-4

// maxRetransmits bounds the retransmit-with-backoff loop for dropped
// messages: after this many consecutive drops the transport delivers
// anyway (the DES's geometric drop loop is unbounded but terminates with
// probability 1; real wall-clock delays need a hard bound).
const maxRetransmits = 8

// defaultHangTimeout is the watchdog window: two consecutive windows with
// zero progress fail the machine with a realm.HangError.
const defaultHangTimeout = 10 * time.Second

// Event kinds label what primitive owns each event, so watchdog reports
// can say what a blocked agent is parked on.
const (
	evUser uint8 = iota
	evTask
	evCopy
	evBarrier
	evCollective
	evMerge
	evSync
	evFail
)

var evKindNames = [...]string{"event", "task", "copy", "barrier", "collective", "merge", "sync", "node-fail"}

// Machine is a native shared-memory implementation of realm.Exec and
// realm.FaultExec.
type Machine struct {
	cfg   realm.Config
	epoch time.Time

	mu  sync.Mutex
	evs []evState // index = Event-1
	// started flips when Drive begins; agents spawned earlier are deferred
	// so setup code can build the initial population race-free.
	started bool
	pending []func()

	// wg tracks every live goroutine that can still trigger events: agents
	// for their whole lifetime, work items from the moment their
	// precondition fires. An untriggered event that will ever trigger is
	// always owed to a goroutine counted here, so Drive's Wait cannot
	// return early.
	wg sync.WaitGroup

	// failCh closes on the first recorded error; agents blocked in
	// WaitEvent abandon their waits so the machine drains instead of
	// hanging on events a dead goroutine will never trigger.
	failMu sync.Mutex
	failCh chan struct{}
	err    error

	// waiting is the blocked-agent registry the watchdog reads: every agent
	// parked in WaitEvent, keyed to the event it waits on.
	waitMu  sync.Mutex
	waiting map[*agent]realm.Event

	// qmu/qcond guard the quiescence counters: inflight work-item
	// goroutines (from precondition trigger to completion) and zombies
	// (killed agents that have not yet unwound). Quiesce waits for both to
	// reach zero.
	qmu      sync.Mutex
	qcond    *sync.Cond
	inflight int
	zombies  int

	liveAgents  int64 // atomic: agents started and not yet finished
	hangTimeout time.Duration

	// Scheduler state (sched.go). schedp is published in Drive before the
	// agents are released and read by every dispatch; nil means
	// goroutine-per-launch (pool disabled, or work issued before Drive).
	// procs/noSched/recorder are configured before Drive only.
	schedp   atomic.Pointer[scheduler]
	procs    int // per-node worker count; 0 → defaultProcs
	noSched  bool
	recorder realm.TimeRecorder

	// Fault state. faults is written once before Drive (InjectFaults) and
	// read without locking afterwards — the goroutine-start edges of Drive
	// publish it. The per-node failure flags and draw counters are atomics:
	// fault points are concurrent.
	faults         *realm.FaultPlan
	launchCrashAt  map[int]uint64 // logical-point crash schedule, read-only after InjectFaults
	faultMu        sync.Mutex     // guards crashLog, crashCount, nodeFailEv, agentsOn
	crashLog       []realm.NodeCrash
	crashCount     int
	nodeFailEv     []realm.Event
	agentsOn       [][]*agent
	failedNodes    []int32  // atomic 0/1 per node
	launchSeq      []uint64 // atomic per-node launch issue counters
	copySeq        []uint64 // atomic per-node (source) copy issue counters
	drops          int64
	dups           int64
	stragglers     int64
	traceShips     int64
	traceShipBytes int64

	// Counters (atomics: work items complete concurrently).
	messages     int64
	bytesSent    int64
	localCopies  int64
	tasksRun     int64
	events       int64
	dispatches   int64 // items executed by pool workers
	steals       int64 // pool dispatches taken off another deque
	localSteals  int64 // steals within the enqueue node
	remoteSteals int64 // steals across nodes
	inline       int64 // launches/copies completed inline at trigger
	aggGroups    int64 // coalesced transfers issued with >= 2 members
	aggSaved     int64 // remote messages those groups avoided
}

type evState struct {
	triggered bool
	kind      uint8
	waiters   []func()
}

// NewMachine builds a native machine for the given configuration. Only the
// topology fields (Nodes, CoresPerNode) govern execution; the cost-model
// fields are carried for Config() but never charged (except
// RetransmitTimeout defaults, which scale from NetLatency).
func NewMachine(cfg realm.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:         cfg,
		failCh:      make(chan struct{}),
		waiting:     make(map[*agent]realm.Event),
		hangTimeout: defaultHangTimeout,
		nodeFailEv:  make([]realm.Event, cfg.Nodes),
		agentsOn:    make([][]*agent, cfg.Nodes),
		failedNodes: make([]int32, cfg.Nodes),
		launchSeq:   make([]uint64, cfg.Nodes),
		copySeq:     make([]uint64, cfg.Nodes),
	}
	m.qcond = sync.NewCond(&m.qmu)
	m.evs = make([]evState, 0, 4096)
	m.epoch = time.Now()
	return m, nil
}

// MustNewMachine is NewMachine for statically valid configurations.
func MustNewMachine(cfg realm.Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

var (
	_ realm.Exec      = (*Machine)(nil)
	_ realm.FaultExec = (*Machine)(nil)
	_ realm.AggExec   = (*Machine)(nil)
)

// Backend implements realm.Exec.
func (m *Machine) Backend() string { return "native" }

// Config implements realm.Exec.
func (m *Machine) Config() realm.Config { return m.cfg }

// Nodes implements realm.Exec.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Now returns wall-clock nanoseconds since the machine was created.
func (m *Machine) Now() realm.Time {
	return realm.Time(time.Since(m.epoch))
}

// Stats implements realm.Exec; WallNanos carries the elapsed wall-clock
// time that the DES's virtual counters cannot.
func (m *Machine) Stats() realm.Stats {
	return realm.Stats{
		Messages:          atomic.LoadInt64(&m.messages),
		BytesSent:         atomic.LoadInt64(&m.bytesSent),
		LocalCopies:       atomic.LoadInt64(&m.localCopies),
		TasksRun:          atomic.LoadInt64(&m.tasksRun),
		Events:            atomic.LoadInt64(&m.events),
		TraceShips:        atomic.LoadInt64(&m.traceShips),
		TraceShipBytes:    atomic.LoadInt64(&m.traceShipBytes),
		WallNanos:         int64(m.Now()),
		Dispatches:        atomic.LoadInt64(&m.dispatches),
		Steals:            atomic.LoadInt64(&m.steals),
		InlineCompletions: atomic.LoadInt64(&m.inline),
		AggGroups:         atomic.LoadInt64(&m.aggGroups),
		AggSavedMessages:  atomic.LoadInt64(&m.aggSaved),
	}
}

// SetHangTimeout configures the watchdog window (two consecutive windows
// without progress fail the machine with a realm.HangError). Must be set
// before Drive; d <= 0 disables the watchdog.
func (m *Machine) SetHangTimeout(d time.Duration) { m.hangTimeout = d }

// InjectFaults implements realm.FaultExec. Rate-based faults and
// logical-point crash schedules (FaultPlan.LaunchCrashes — "node 2 dies at
// its 37th launch", matched against the per-node atomic launch counters)
// are fully supported; only explicit virtual-time crash schedules
// (FaultPlan.Crashes) remain DES-only — the native machine has no virtual
// clock to schedule them against — and are rejected precisely. Must be
// called before Drive, at most once.
func (m *Machine) InjectFaults(fp realm.FaultPlan) error {
	if len(fp.Crashes) > 0 {
		return &realm.UnsupportedError{Backend: m.Backend(), Op: "virtual-time crash schedules (FaultPlan.Crashes)"}
	}
	if err := fp.Validate(m.cfg); err != nil {
		return err
	}
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		return fmt.Errorf("native: InjectFaults must be called before Drive")
	}
	if m.faults != nil {
		return fmt.Errorf("native: a fault plan is already installed")
	}
	if fp.RetransmitTimeout <= 0 {
		fp.RetransmitTimeout = 20 * m.cfg.NetLatency
		if fp.RetransmitTimeout <= 0 {
			fp.RetransmitTimeout = realm.Microseconds(30)
		}
	}
	m.faults = &fp
	m.launchCrashAt = launchCrashPoints(fp.LaunchCrashes)
	return nil
}

// launchCrashPoints folds a logical-point crash schedule into a per-node
// map of the earliest scheduled launch number (nil when there is none, so
// the per-launch hot path stays a nil-map lookup).
func launchCrashPoints(crashes []realm.LaunchCrash) map[int]uint64 {
	if len(crashes) == 0 {
		return nil
	}
	at := make(map[int]uint64, len(crashes))
	for _, c := range crashes {
		if prev, ok := at[c.Node]; !ok || c.AtLaunch < prev {
			at[c.Node] = c.AtLaunch
		}
	}
	return at
}

// FaultStats implements realm.FaultExec.
func (m *Machine) FaultStats() realm.FaultStats {
	m.faultMu.Lock()
	crashes := m.crashCount
	m.faultMu.Unlock()
	return realm.FaultStats{
		Crashes:    crashes,
		Drops:      atomic.LoadInt64(&m.drops),
		Dups:       atomic.LoadInt64(&m.dups),
		Stragglers: atomic.LoadInt64(&m.stragglers),
	}
}

// Crashes implements realm.FaultExec. Concurrent crashes have no total
// wall-clock order, so the log is reported sorted by node for
// reproducibility.
func (m *Machine) Crashes() []realm.NodeCrash {
	m.faultMu.Lock()
	out := append([]realm.NodeCrash(nil), m.crashLog...)
	m.faultMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// NodeFailed implements realm.FaultExec.
func (m *Machine) NodeFailed(node int) bool { return m.nodeDown(node) }

func (m *Machine) nodeDown(node int) bool {
	return node >= 0 && node < len(m.failedNodes) && atomic.LoadInt32(&m.failedNodes[node]) != 0
}

// NodeFailEvent implements realm.FaultExec: the event fires when (or fired
// because) the node crashes.
func (m *Machine) NodeFailEvent(node int) realm.Event {
	m.faultMu.Lock()
	ev := m.nodeFailEv[node]
	if ev == realm.NoEvent {
		ev = m.newEvent(evFail)
		m.nodeFailEv[node] = ev
	}
	m.faultMu.Unlock()
	return ev
}

// crashNode fail-stops a node: its failure flag suppresses every
// not-yet-started work item touching it (lost work, as on the DES), its
// fail event fires, and every agent on it is killed — each unwinds with
// the shared kill sentinel at its next scheduling point. Crashing a dead
// node is a no-op.
func (m *Machine) crashNode(id int) {
	m.faultMu.Lock()
	if atomic.LoadInt32(&m.failedNodes[id]) != 0 {
		m.faultMu.Unlock()
		return
	}
	atomic.StoreInt32(&m.failedNodes[id], 1)
	m.crashCount++
	m.crashLog = append(m.crashLog, realm.NodeCrash{Node: id, At: m.Now()})
	ev := m.nodeFailEv[id]
	if ev == realm.NoEvent {
		ev = m.newEvent(evFail)
		m.nodeFailEv[id] = ev
	}
	victims := append([]*agent(nil), m.agentsOn[id]...)
	m.faultMu.Unlock()
	m.Trigger(ev)
	for _, a := range victims {
		m.killAgent(a)
	}
}

// KillAgent implements realm.FaultExec: the agent unwinds with the kill
// sentinel at its next scheduling point (WaitEvent or Sleep). Its
// in-flight work items are unaffected; only the control flow stops.
func (m *Machine) KillAgent(a realm.Agent) {
	if ag, ok := a.(*agent); ok {
		m.killAgent(ag)
	}
}

func (m *Machine) killAgent(a *agent) {
	a.mu.Lock()
	if a.done || a.killed {
		a.mu.Unlock()
		return
	}
	a.killed = true
	m.addZombies(1)
	close(a.kill)
	a.mu.Unlock()
}

// Quiesce implements realm.FaultExec: block until every in-flight work
// item has completed and every killed agent has unwound. The recovery
// layer calls it before restoring a checkpoint so zombie work from an
// abandoned epoch cannot race the restore.
func (m *Machine) Quiesce() {
	m.qmu.Lock()
	for m.inflight > 0 || m.zombies > 0 {
		m.qcond.Wait()
	}
	m.qmu.Unlock()
}

func (m *Machine) addInflight(d int) {
	m.qmu.Lock()
	m.inflight += d
	if m.inflight == 0 && m.zombies == 0 {
		m.qcond.Broadcast()
	}
	m.qmu.Unlock()
}

func (m *Machine) addZombies(d int) {
	m.qmu.Lock()
	m.zombies += d
	if m.inflight == 0 && m.zombies == 0 {
		m.qcond.Broadcast()
	}
	m.qmu.Unlock()
}

// ShipTrace implements realm.FaultExec: a trace shipment is an ordinary
// message, counted separately so the recovery protocol's trace traffic is
// visible in the run statistics.
func (m *Machine) ShipTrace(src, dst int, bytes int64, pre realm.Event) realm.Event {
	atomic.AddInt64(&m.traceShips, 1)
	atomic.AddInt64(&m.traceShipBytes, bytes)
	return m.CopyBytes(src, dst, bytes, pre, nil)
}

// CopyAgg implements realm.AggExec: a coalesced transfer is one ordinary
// copy of the summed payload — one work item, one fault draw (so a dropped
// or duplicated aggregate retransmits the whole group) — counted at issue
// time exactly as the DES counts it, keeping the aggregation counters
// backend-independent.
func (m *Machine) CopyAgg(src, dst int, bytes int64, members int, pre realm.Event, body func()) realm.Event {
	if members > 1 {
		atomic.AddInt64(&m.aggGroups, 1)
		if src != dst {
			atomic.AddInt64(&m.aggSaved, int64(members-1))
		}
	}
	return m.CopyBytes(src, dst, bytes, pre, body)
}

func (m *Machine) newEvent(kind uint8) realm.Event {
	m.mu.Lock()
	m.evs = append(m.evs, evState{kind: kind})
	e := realm.Event(len(m.evs))
	m.mu.Unlock()
	return e
}

// NewUserEvent implements realm.Exec.
func (m *Machine) NewUserEvent() realm.Event { return m.newEvent(evUser) }

// ReserveEvents implements realm.Exec: n contiguous untriggered handles
// (the executor's dense p2p sync slots).
func (m *Machine) ReserveEvents(n int) realm.Event {
	if n <= 0 {
		return realm.NoEvent
	}
	m.mu.Lock()
	first := realm.Event(len(m.evs) + 1)
	for i := 0; i < n; i++ {
		m.evs = append(m.evs, evState{kind: evSync})
	}
	m.mu.Unlock()
	return first
}

// Trigger implements realm.Exec. Continuations run synchronously on the
// triggering goroutine, outside the table lock, so they may re-enter the
// machine (trigger further events, register waiters, spawn work).
func (m *Machine) Trigger(e realm.Event) {
	if e == realm.NoEvent {
		panic("native: cannot trigger NoEvent")
	}
	m.mu.Lock()
	st := &m.evs[e-1]
	if st.triggered {
		m.mu.Unlock()
		panic(fmt.Sprintf("native: event %d triggered twice", e))
	}
	st.triggered = true
	waiters := st.waiters
	st.waiters = nil
	m.mu.Unlock()
	atomic.AddInt64(&m.events, 1)
	for _, fn := range waiters {
		fn()
	}
}

// Triggered implements realm.Exec.
func (m *Machine) Triggered(e realm.Event) bool {
	if e == realm.NoEvent {
		return true
	}
	m.mu.Lock()
	t := m.evs[e-1].triggered
	m.mu.Unlock()
	return t
}

// OnTrigger implements realm.Exec; fn runs inline when e already fired.
func (m *Machine) OnTrigger(e realm.Event, fn func()) {
	if e == realm.NoEvent {
		fn()
		return
	}
	m.mu.Lock()
	st := &m.evs[e-1]
	if st.triggered {
		m.mu.Unlock()
		fn()
		return
	}
	st.waiters = append(st.waiters, fn)
	m.mu.Unlock()
}

func (m *Machine) eventKind(e realm.Event) string {
	if e == realm.NoEvent {
		return "event"
	}
	m.mu.Lock()
	k := m.evs[e-1].kind
	m.mu.Unlock()
	return evKindNames[k]
}

// Merge implements realm.Exec via an atomic countdown: the extra initial
// count covers registration itself, so inputs may trigger concurrently
// while the loop is still walking them.
func (m *Machine) Merge(evs ...realm.Event) realm.Event {
	if len(evs) == 0 {
		return realm.NoEvent
	}
	out := m.newEvent(evMerge)
	remaining := int64(len(evs)) + 1
	dec := func() {
		if atomic.AddInt64(&remaining, -1) == 0 {
			m.Trigger(out)
		}
	}
	for _, e := range evs {
		m.OnTrigger(e, dec)
	}
	dec()
	return out
}

// SpawnOn implements realm.Exec: fn runs on its own goroutine. The node
// binding is advisory for placement on shared memory — the Go scheduler
// owns cores — but is authoritative for fault injection: a crash of the
// node kills the agents spawned on it.
func (m *Machine) SpawnOn(name string, node, proc int, fn func(realm.Agent)) realm.Agent {
	_ = proc
	a := &agent{m: m, name: name, node: node, kill: make(chan struct{})}
	if node >= 0 && node < len(m.agentsOn) {
		m.faultMu.Lock()
		m.agentsOn[node] = append(m.agentsOn[node], a)
		m.faultMu.Unlock()
	}
	m.wg.Add(1)
	run := func() {
		atomic.AddInt64(&m.liveAgents, 1)
		defer m.wg.Done()
		defer func() {
			a.mu.Lock()
			a.done = true
			killed := a.killed
			a.mu.Unlock()
			atomic.AddInt64(&m.liveAgents, -1)
			if killed {
				m.addZombies(-1)
			}
		}()
		defer m.capturePanic("agent " + name)
		fn(a)
	}
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		go run()
	} else {
		m.pending = append(m.pending, run)
		m.mu.Unlock()
	}
	return a
}

// LaunchOn implements realm.Exec. The modeled duration is not charged —
// the body's real execution time is the cost — but it scales injected
// straggler delays. A body-less item (a modeled placeholder) completes
// inline at precondition trigger.
//
// Fault decisions are made here, at issue time, on the issuing goroutine:
// the per-node launch counter gives each launch a logical position, and
// the draw for that position decides crash and straggler injection. While
// one agent issues each node's launches (the steady state — the engine
// binds one shard per node until a failover doubles shards up), the
// sequence is deterministic, so the same seed crashes the same node at the
// same launch on every run.
func (m *Machine) LaunchOn(node int, pre realm.Event, dur realm.Time, body func()) realm.Event {
	var delay time.Duration
	if fp := m.faults; fp != nil {
		seq := atomic.AddUint64(&m.launchSeq[node], 1)
		if at, ok := m.launchCrashAt[node]; ok && seq == at {
			m.crashNode(node) // scheduled logical-point crash: this launch is lost
		}
		if fp.CrashRate > 0 && !m.nodeDown(node) && (node != 0 || fp.CrashNode0) &&
			realm.FaultDraw(fp.Seed, realm.FaultStreamCrash, uint64(node), seq) < fp.CrashRate*crashQuantumSec {
			m.crashNode(node)
		}
		if fp.StragglerRate > 0 && dur > 0 &&
			realm.FaultDraw(fp.Seed, realm.FaultStreamStraggler, uint64(node), seq) < fp.StragglerRate {
			atomic.AddInt64(&m.stragglers, 1)
			delay = time.Duration(float64(dur) * (fp.StragglerFactor - 1))
		}
	}
	done := m.newEvent(evTask)
	m.OnTrigger(pre, func() {
		if m.nodeDown(node) {
			return // the node crashed: the work is lost, done never fires
		}
		atomic.AddInt64(&m.tasksRun, 1)
		if body == nil && delay == 0 {
			atomic.AddInt64(&m.inline, 1)
			m.Trigger(done)
			return
		}
		m.dispatch(&workItem{kind: itemTask, node: node, node2: -1, dur: dur, body: body, done: done}, delay)
	})
	return done
}

// CopyBytes implements realm.Exec: the body performs the real data
// movement (a shared-memory store-to-store copy); the byte count only
// feeds the traffic counters.
//
// Like LaunchOn, fault decisions are made at issue time from the source
// node's copy counter: a duplicate pays the wire twice; each drop pays the
// wire again and delays delivery by an exponentially backed-off retransmit
// timeout (bounded at maxRetransmits attempts — reliable transport).
func (m *Machine) CopyBytes(src, dst int, bytes int64, pre realm.Event, body func()) realm.Event {
	var extraMsgs int64
	var delay time.Duration
	if fp := m.faults; fp != nil && src != dst {
		seq := atomic.AddUint64(&m.copySeq[src], 1)
		if fp.DupRate > 0 &&
			realm.FaultDraw(fp.Seed, realm.FaultStreamCopy, uint64(src), seq) < fp.DupRate {
			extraMsgs++
			atomic.AddInt64(&m.dups, 1)
		}
		if fp.DropRate > 0 {
			for k := uint64(0); k < maxRetransmits; k++ {
				if realm.FaultDraw(fp.Seed, realm.FaultStreamDrop, uint64(src), seq*maxRetransmits+k) >= fp.DropRate {
					break
				}
				extraMsgs++
				atomic.AddInt64(&m.drops, 1)
				delay += time.Duration(fp.RetransmitTimeout) << k
			}
		}
	}
	done := m.newEvent(evCopy)
	m.OnTrigger(pre, func() {
		if m.nodeDown(src) || m.nodeDown(dst) {
			return // either endpoint crashed: the transfer is lost
		}
		if src == dst {
			atomic.AddInt64(&m.localCopies, 1)
		} else {
			atomic.AddInt64(&m.messages, 1+extraMsgs)
			atomic.AddInt64(&m.bytesSent, bytes*(1+extraMsgs))
		}
		if body == nil && delay == 0 {
			atomic.AddInt64(&m.inline, 1)
			m.Trigger(done)
			return
		}
		m.dispatch(&workItem{kind: itemCopy, node: dst, node2: src, bytes: bytes, body: body, done: done}, delay)
	})
	return done
}

// Drive implements realm.Exec: start the worker pool, release the agents
// spawned before the run, then wait for the population of agents and work
// items to drain. The counting discipline makes the Wait sound: any event
// that will ever trigger is owed to an agent goroutine or a dispatched
// (queued or executing) work item in the group, and items join the group
// synchronously inside their precondition's trigger (i.e. while the
// triggering goroutine is still counted), so the count never dips to zero
// with work outstanding. The pool is stopped only after the Wait returns,
// when every deque is provably empty. The watchdog runs alongside and
// fails the machine if no progress is made for two full windows.
func (m *Machine) Drive() (realm.Time, error) {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return m.Now(), fmt.Errorf("native: Drive is not reentrant")
	}
	m.started = true
	pend := m.pending
	m.pending = nil
	m.mu.Unlock()
	if !m.noSched {
		m.schedp.Store(newScheduler(m, m.cfg.Nodes, m.Procs()))
	}
	stop := make(chan struct{})
	if m.hangTimeout > 0 {
		//detlint:ignore the watchdog goroutine only observes counters; it never produces results the run depends on
		go m.watchdog(stop)
	}
	for _, run := range pend {
		go run()
	}
	m.wg.Wait()
	close(stop)
	if s := m.schedp.Load(); s != nil {
		s.shutdown()
	}
	m.failMu.Lock()
	err := m.err
	m.failMu.Unlock()
	return m.Now(), err
}

// watchdog samples the machine every hangTimeout: if two consecutive
// samples see every live agent blocked, nothing in flight, and an
// unchanged event count, nothing can ever fire again (the only trigger
// sources are agents and in-flight work), and the machine fails with a
// HangError instead of wedging Drive.
func (m *Machine) watchdog(stop chan struct{}) {
	tick := time.NewTicker(m.hangTimeout)
	defer tick.Stop()
	lastEvents := int64(-1)
	stalled := false
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		events := atomic.LoadInt64(&m.events)
		live := atomic.LoadInt64(&m.liveAgents)
		m.qmu.Lock()
		busy := m.inflight
		m.qmu.Unlock()
		m.waitMu.Lock()
		blocked := len(m.waiting)
		m.waitMu.Unlock()
		quiet := live > 0 && int64(blocked) == live && busy == 0 && events == lastEvents
		if quiet && stalled {
			m.fail(m.hangError())
			return
		}
		stalled = quiet
		lastEvents = events
	}
}

// hangError snapshots the blocked-agent registry into a structured report,
// sorted by agent name for stable output.
func (m *Machine) hangError() *realm.HangError {
	type parked struct {
		a *agent
		e realm.Event
	}
	m.waitMu.Lock()
	snap := make([]parked, 0, len(m.waiting))
	for a, e := range m.waiting {
		snap = append(snap, parked{a, e})
	}
	m.waitMu.Unlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].a.name < snap[j].a.name })
	blocked := make([]realm.BlockedAgent, 0, len(snap))
	for _, p := range snap {
		blocked = append(blocked, realm.BlockedAgent{Name: p.a.name, Waiting: p.e, Primitive: m.eventKind(p.e)})
	}
	return &realm.HangError{Timeout: realm.Time(m.hangTimeout), Blocked: blocked}
}

// abortPanic unwinds an agent whose machine has failed; capturePanic
// swallows it without recording.
type abortPanic struct{}

// fail records the first error and releases every agent blocked in
// WaitEvent, so a panicking kernel drains the machine instead of wedging
// Drive on events that will never fire.
func (m *Machine) fail(err error) {
	m.failMu.Lock()
	if m.err == nil {
		m.err = err
		close(m.failCh)
	}
	m.failMu.Unlock()
}

func (m *Machine) failed() bool {
	select {
	case <-m.failCh:
		return true
	default:
		return false
	}
}

func (m *Machine) capturePanic(what string) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(abortPanic); ok {
		return
	}
	if realm.IsThreadKilled(r) {
		return // a killed agent retiring, not an error
	}
	m.fail(fmt.Errorf("native: %s panicked: %v", what, r))
}

// agent is a native control agent: a real goroutine that blocks on
// channels instead of yielding to a scheduler.
type agent struct {
	m    *Machine
	name string
	node int

	mu     sync.Mutex
	kill   chan struct{} // closed by killAgent; checked at scheduling points
	killed bool
	done   bool
}

var _ realm.Agent = (*agent)(nil)

// Name implements realm.Agent.
func (a *agent) Name() string { return a.name }

// Now implements realm.Agent (wall-clock).
func (a *agent) Now() realm.Time { return a.m.Now() }

// checkUnwind is the agent's scheduling-point check: a killed agent
// unwinds with the shared kill sentinel (so engine-level recovers
// recognize it exactly as they do a DES thread kill), and an agent of a
// failed machine unwinds with the abort sentinel.
func (a *agent) checkUnwind() {
	select {
	case <-a.kill:
		panic(realm.KillSentinel(a.name))
	default:
	}
	if a.m.failed() {
		panic(abortPanic{})
	}
}

// WaitEvent implements realm.Agent: block until e fires, or unwind if the
// agent is killed or the machine fails first.
func (a *agent) WaitEvent(e realm.Event) {
	a.checkUnwind()
	if a.m.Triggered(e) {
		return
	}
	ch := make(chan struct{})
	a.m.OnTrigger(e, func() { close(ch) })
	a.m.waitMu.Lock()
	a.m.waiting[a] = e
	a.m.waitMu.Unlock()
	defer func() {
		a.m.waitMu.Lock()
		delete(a.m.waiting, a)
		a.m.waitMu.Unlock()
	}()
	select {
	case <-ch:
		// A kill that raced the wake still wins: unwind before issuing
		// more work on a dead node.
		a.checkUnwind()
	case <-a.m.failCh:
		panic(abortPanic{})
	case <-a.kill:
		panic(realm.KillSentinel(a.name))
	}
}

// Elapse implements realm.Agent as a no-op: on real cores the agent's
// actual control work is its cost; there is no modeled time to charge.
func (a *agent) Elapse(realm.Time) {}

// Sleep implements realm.Agent as a real wall-clock sleep: the recovery
// layer's exponential restart backoff is genuine elapsed time here. A
// killed agent or a failed machine interrupts the sleep.
func (a *agent) Sleep(d realm.Time) {
	a.checkUnwind()
	if d <= 0 {
		return
	}
	t := time.NewTimer(time.Duration(d))
	defer t.Stop()
	select {
	case <-t.C:
	case <-a.m.failCh:
		panic(abortPanic{})
	case <-a.kill:
		panic(realm.KillSentinel(a.name))
	}
}

// barrier counts arrivals with an atomic; the last arrival fires done on
// its own goroutine, which gives waiters the usual happens-before edge.
type barrier struct {
	m         *Machine
	remaining int64
	done      realm.Event
}

var _ realm.BarrierOp = (*barrier)(nil)

// Barrier implements realm.Exec.
func (m *Machine) Barrier(n int) realm.BarrierOp {
	return &barrier{m: m, remaining: int64(n), done: m.newEvent(evBarrier)}
}

// Arrive implements realm.BarrierOp.
func (b *barrier) Arrive(pre realm.Event) {
	b.m.OnTrigger(pre, func() {
		if atomic.AddInt64(&b.remaining, -1) == 0 {
			b.m.Trigger(b.done)
		}
	})
}

// Done implements realm.BarrierOp.
func (b *barrier) Done() realm.Event { return b.done }

// collective stores contributions by participant index under a lock and
// folds them in index order, so the result is bitwise identical no matter
// which order real cores arrive in.
type collective struct {
	m        *Machine
	identity float64
	fold     func(acc, v float64) float64

	mu      sync.Mutex
	values  []float64
	present []bool
	arrived int
	done    realm.Event
}

var _ realm.CollectiveOp = (*collective)(nil)

// Collective implements realm.Exec.
func (m *Machine) Collective(n int, identity float64, fold func(acc, v float64) float64) realm.CollectiveOp {
	return &collective{
		m:        m,
		identity: identity,
		fold:     fold,
		values:   make([]float64, n),
		present:  make([]bool, n),
		done:     m.newEvent(evCollective),
	}
}

// Contribute implements realm.CollectiveOp.
func (c *collective) Contribute(idx int, pre realm.Event, value func() float64) {
	c.m.OnTrigger(pre, func() {
		v := value()
		c.mu.Lock()
		if c.present[idx] {
			c.mu.Unlock()
			panic("native: duplicate collective contribution")
		}
		c.present[idx] = true
		c.values[idx] = v
		c.arrived++
		fire := c.arrived == len(c.values)
		c.mu.Unlock()
		if fire {
			c.m.Trigger(c.done)
		}
	})
}

// Done implements realm.CollectiveOp.
func (c *collective) Done() realm.Event { return c.done }

// Result implements realm.CollectiveOp: an index-order fold, identical to
// the DES's.
func (c *collective) Result() float64 {
	acc := c.identity
	for _, v := range c.values {
		acc = c.fold(acc, v)
	}
	return acc
}
