// Work scheduler for the native machine: a fixed pool of worker
// goroutines per (node, proc) replacing goroutine-per-launch dispatch.
//
// Placement is affinity-first: LaunchOn(node)/CopyBytes(..., dst) enqueue
// onto one of the target node's per-proc deques (round-robin across the
// node's procs), so a node's launches run on that node's workers in the
// common case. Each deque is a LIFO slot plus a FIFO overflow queue
// (Tokio-style): a new item lands in the slot, displacing the previous
// occupant to the queue tail, so the most recently produced item — the
// one whose inputs are still cache-warm — runs next on the owning worker.
// An idle worker takes from its own deque first, then steals within its
// own node, and only crosses nodes when the whole node is dry; stealers
// prefer the FIFO end and leave the slot for the owner. One mutex + cond
// guards all deques: items here are kernel-sized (microseconds and up),
// so a scan under a single lock is far cheaper than the goroutine spawn
// per item it replaces, and it makes the park/wake protocol trivially
// lost-wakeup free.
//
// Lifecycle and drain: an item joins the machine's WaitGroup and inflight
// count at dispatch (inside its precondition's trigger, while the
// triggering goroutine is still counted, so Drive's Wait stays sound) and
// leaves both when a worker finishes it — queued-but-unstarted work
// therefore holds Quiesce open and keeps the watchdog's "busy" signal
// high, so an idle-but-nonempty pool can never be misread as a hang.
// Items whose node crashed while they sat queued are dropped at dequeue
// (lost work, exactly as at trigger time); injected delays (stragglers,
// retransmits) ride a timer before enqueue instead of blocking a worker.
// Drive stops the workers only after the WaitGroup drains, when every
// deque is provably empty.
package native

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/realm"
)

const (
	itemTask uint8 = iota
	itemCopy
)

var itemKindNames = [...]string{"task", "copy"}

// workItem is one launched task or copy body, queued for a worker.
type workItem struct {
	kind  uint8
	node  int        // execution node (the copy destination)
	node2 int        // copy source for crash re-checks, -1 for tasks
	dur   realm.Time // modeled duration, classes the recorder sample
	bytes int64
	body  func()
	done  realm.Event
}

// deque is one proc's queue: the LIFO slot holds the newest item, fifo
// the overflow in age order.
type deque struct {
	slot *workItem
	fifo []*workItem
}

type scheduler struct {
	m  *Machine
	mu sync.Mutex
	// cond wakes parked workers; guarded by mu along with everything below.
	cond    *sync.Cond
	qs      [][]deque // [node][proc]
	rr      []uint32  // per-node round-robin placement cursor
	queued  int       // total items across all deques
	stop    bool
	workers sync.WaitGroup
}

// defaultProcs is the per-node worker count when the caller sets none:
// an equal share of GOMAXPROCS across nodes, at least one.
func defaultProcs(nodes int) int {
	p := runtime.GOMAXPROCS(0) / nodes
	if p < 1 {
		p = 1
	}
	return p
}

// newScheduler builds the pool and starts its nodes×procs workers.
func newScheduler(m *Machine, nodes, procs int) *scheduler {
	s := &scheduler{m: m, qs: make([][]deque, nodes), rr: make([]uint32, nodes)}
	s.cond = sync.NewCond(&s.mu)
	for n := range s.qs {
		s.qs[n] = make([]deque, procs)
	}
	for n := 0; n < nodes; n++ {
		for p := 0; p < procs; p++ {
			s.workers.Add(1)
			//detlint:ignore workers drain an order-free ready set; every cross-item order that matters is fixed by the event graph
			go s.worker(n, p)
		}
	}
	return s
}

// enqueue queues an item on its target node, round-robin across the
// node's deques, and wakes one parked worker.
func (s *scheduler) enqueue(it *workItem) {
	s.mu.Lock()
	node := it.node
	d := &s.qs[node][int(s.rr[node])%len(s.qs[node])]
	s.rr[node]++
	if d.slot != nil {
		d.fifo = append(d.fifo, d.slot)
	}
	d.slot = it
	s.queued++
	s.mu.Unlock()
	s.cond.Signal()
}

// shutdown stops the workers and waits for them to exit. Drive calls it
// after the machine's WaitGroup drains, so every deque is already empty.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	s.stop = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workers.Wait()
}

// worker is one pool goroutine, bound to deque (node, proc).
func (s *scheduler) worker(node, proc int) {
	defer s.workers.Done()
	for {
		it, steal := s.take(node, proc)
		if it == nil {
			return
		}
		atomic.AddInt64(&s.m.dispatches, 1)
		switch steal {
		case stealLocal:
			atomic.AddInt64(&s.m.steals, 1)
			atomic.AddInt64(&s.m.localSteals, 1)
		case stealRemote:
			atomic.AddInt64(&s.m.steals, 1)
			atomic.AddInt64(&s.m.remoteSteals, 1)
		}
		s.m.runItem(it)
	}
}

type stealKind uint8

const (
	stealNone stealKind = iota
	stealLocal
	stealRemote
)

// take blocks until an item is available (own deque first, then the own
// node's siblings, then other nodes) or the pool stops (nil).
func (s *scheduler) take(node, proc int) (*workItem, stealKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			if it := s.takeOwn(node, proc); it != nil {
				return it, stealNone
			}
			if it := s.stealFromNode(node, proc); it != nil {
				return it, stealLocal
			}
			for off := 1; off < len(s.qs); off++ {
				if it := s.stealFromNode((node+off)%len(s.qs), -1); it != nil {
					return it, stealRemote
				}
			}
		}
		if s.stop {
			return nil, stealNone
		}
		s.cond.Wait()
	}
}

// takeOwn pops the worker's own deque: slot (newest, cache-warm) first,
// then the FIFO head.
func (s *scheduler) takeOwn(node, proc int) *workItem {
	d := &s.qs[node][proc]
	if it := d.slot; it != nil {
		d.slot = nil
		s.queued--
		return it
	}
	return s.popFIFO(d)
}

// stealFromNode scans a node's deques for work, skipping deque skip (the
// stealer's own). Stealers prefer the oldest FIFO item and take a slot
// only when no FIFO item exists anywhere on the node, leaving the
// cache-warm end to each owner.
func (s *scheduler) stealFromNode(node, skip int) *workItem {
	ds := s.qs[node]
	for p := range ds {
		if p == skip {
			continue
		}
		if it := s.popFIFO(&ds[p]); it != nil {
			return it
		}
	}
	for p := range ds {
		if p == skip {
			continue
		}
		if it := ds[p].slot; it != nil {
			ds[p].slot = nil
			s.queued--
			return it
		}
	}
	return nil
}

func (s *scheduler) popFIFO(d *deque) *workItem {
	if len(d.fifo) == 0 {
		return nil
	}
	it := d.fifo[0]
	d.fifo[0] = nil
	d.fifo = d.fifo[1:]
	if len(d.fifo) == 0 {
		d.fifo = nil // let append start a fresh backing array
	}
	s.queued--
	return it
}

// depths snapshots the per-node queued-item counts.
func (s *scheduler) depths() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.qs))
	for n, ds := range s.qs {
		for p := range ds {
			if ds[p].slot != nil {
				out[n]++
			}
			out[n] += len(ds[p].fifo)
		}
	}
	return out
}

// SchedStats is the scheduler's observability snapshot.
type SchedStats struct {
	Workers           int   // pool size (nodes × procs); 0 when the pool is off
	Dispatches        int64 // items executed by pool workers
	Steals            int64 // dispatches taken from a deque other than the enqueue target
	LocalSteals       int64 // steals within the enqueue node
	RemoteSteals      int64 // steals across nodes
	InlineCompletions int64 // launches/copies completed inline, no queue hop
	QueueDepths       []int // current queued items per node (nil when the pool is off)
}

// SchedStats returns the scheduler counters and current queue depths.
func (m *Machine) SchedStats() SchedStats {
	st := SchedStats{
		Dispatches:        atomic.LoadInt64(&m.dispatches),
		Steals:            atomic.LoadInt64(&m.steals),
		LocalSteals:       atomic.LoadInt64(&m.localSteals),
		RemoteSteals:      atomic.LoadInt64(&m.remoteSteals),
		InlineCompletions: atomic.LoadInt64(&m.inline),
	}
	if s := m.schedp.Load(); s != nil {
		st.Workers = len(s.qs) * len(s.qs[0])
		st.QueueDepths = s.depths()
	}
	return st
}

// SetProcs sets the per-node worker count (0 restores the default: an
// equal share of GOMAXPROCS). Must be called before Drive.
func (m *Machine) SetProcs(p int) {
	if p < 0 {
		p = 0
	}
	m.procs = p
}

// Procs reports the effective per-node worker count.
func (m *Machine) Procs() int {
	if m.procs > 0 {
		return m.procs
	}
	return defaultProcs(m.cfg.Nodes)
}

// SetScheduler enables or disables the worker pool (default on). With the
// pool off the machine falls back to goroutine-per-launch dispatch — the
// pre-scheduler behavior, kept for A/B benchmarking and as a determinism
// cross-check. Must be called before Drive.
func (m *Machine) SetScheduler(on bool) { m.noSched = !on }

// SetTimeRecorder attaches a recorder (realm.MeasuredTime) that observes
// the wall-clock duration of every executed launch and copy body, so a
// fitted TimePolicy can be built from this run. Must be set before Drive.
func (m *Machine) SetTimeRecorder(rec realm.TimeRecorder) { m.recorder = rec }

// dispatch routes one ready work item: onto the pool when it is running,
// otherwise (pool disabled, or work issued before Drive) onto a fresh
// goroutine. The item is counted in the machine WaitGroup and the
// inflight gauge from here until runItem finishes it. Injected delays
// ride a timer before the item becomes runnable, so they never occupy a
// worker.
func (m *Machine) dispatch(it *workItem, delay time.Duration) {
	m.wg.Add(1)
	m.addInflight(1)
	if s := m.schedp.Load(); s != nil {
		if delay > 0 {
			time.AfterFunc(delay, func() { s.enqueue(it) })
		} else {
			s.enqueue(it)
		}
		return
	}
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		m.runItem(it)
	}()
}

// runItem executes one work item and retires its accounting. An item
// whose node crashed while it was queued is dropped: lost work, the done
// event never fires — the same rule applied at trigger time.
func (m *Machine) runItem(it *workItem) {
	defer m.wg.Done()
	defer func() { m.addInflight(-1) }()
	defer m.capturePanic(itemKindNames[it.kind])
	if m.nodeDown(it.node) || (it.node2 >= 0 && m.nodeDown(it.node2)) {
		return
	}
	if it.body != nil {
		if rec := m.recorder; rec != nil {
			start := time.Now()
			it.body()
			wall := time.Since(start).Nanoseconds()
			if it.kind == itemCopy {
				rec.ObserveCopy(it.bytes, wall)
			} else {
				rec.ObserveLaunch(it.dur, wall)
			}
			m.Trigger(it.done)
			return
		}
		it.body()
	}
	m.Trigger(it.done)
}
