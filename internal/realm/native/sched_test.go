package native

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/realm"
)

// maxGoroutinesDuring floods the machine with sleeping work bodies and
// samples runtime.NumGoroutine from inside them, returning the high-water
// mark. The issuer runs as an agent so the items dispatch after Drive has
// published the pool (pre-Drive work intentionally takes the legacy
// goroutine path).
func maxGoroutinesDuring(t *testing.T, pool bool, nodes, procs, items int) int {
	t.Helper()
	m := newTest(t, nodes)
	m.SetProcs(procs)
	m.SetScheduler(pool)
	var maxG int64
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		evs := make([]realm.Event, items)
		for k := range evs {
			evs[k] = m.LaunchOn(k%nodes, realm.NoEvent, 0, func() {
				g := int64(runtime.NumGoroutine())
				for {
					cur := atomic.LoadInt64(&maxG)
					if g <= cur || atomic.CompareAndSwapInt64(&maxG, cur, g) {
						break
					}
				}
				time.Sleep(time.Millisecond)
			})
		}
		a.WaitEvent(m.Merge(evs...))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	return int(atomic.LoadInt64(&maxG))
}

// TestSchedulerBoundsGoroutines is the pool's reason to exist: with the
// scheduler on, a flood of concurrently runnable items executes on
// O(nodes x procs) goroutines, where goroutine-per-launch dispatch grows
// with the flood itself.
func TestSchedulerBoundsGoroutines(t *testing.T) {
	const nodes, procs, items = 4, 2, 300
	pooled := maxGoroutinesDuring(t, true, nodes, procs, items)
	legacy := maxGoroutinesDuring(t, false, nodes, procs, items)
	// Pool bound: nodes x procs workers plus the issuer, the driver, the
	// test runtime's own goroutines, and slack for timers.
	if bound := nodes*procs + 24; pooled > bound {
		t.Errorf("pooled high-water mark = %d goroutines, want <= %d (O(nodes x procs))", pooled, bound)
	}
	// The legacy path spawns one goroutine per ready item: with 300 items
	// sleeping 1ms each it must blow far past the pool's plateau.
	if legacy < 3*pooled {
		t.Errorf("goroutine-per-launch high-water mark = %d, want >= 3x the pooled %d", legacy, pooled)
	}
}

// TestSchedulerStealsCrossNode drives a steal storm: every item targets
// node 0's deques, so the other nodes' workers can make progress only by
// cross-node stealing. Every dispatch is counted, and the storm must
// produce remote steals.
func TestSchedulerStealsCrossNode(t *testing.T) {
	const nodes, items = 4, 200
	m := newTest(t, nodes)
	m.SetProcs(1)
	var ran int64
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		evs := make([]realm.Event, items)
		for k := range evs {
			evs[k] = m.LaunchOn(0, realm.NoEvent, 0, func() {
				atomic.AddInt64(&ran, 1)
				time.Sleep(200 * time.Microsecond)
			})
		}
		a.WaitEvent(m.Merge(evs...))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if ran != items {
		t.Fatalf("ran %d of %d bodies", ran, items)
	}
	ss := m.SchedStats()
	if ss.Workers != nodes {
		t.Errorf("Workers = %d, want %d (nodes x 1 proc)", ss.Workers, nodes)
	}
	if ss.Dispatches != items {
		t.Errorf("Dispatches = %d, want %d (every body has a queue hop)", ss.Dispatches, items)
	}
	if ss.RemoteSteals == 0 {
		t.Error("RemoteSteals = 0: a single-node storm must force cross-node stealing")
	}
	if ss.Steals != ss.LocalSteals+ss.RemoteSteals {
		t.Errorf("Steals = %d, want LocalSteals %d + RemoteSteals %d", ss.Steals, ss.LocalSteals, ss.RemoteSteals)
	}
	st := m.Stats()
	if st.Dispatches != ss.Dispatches || st.Steals != ss.Steals {
		t.Errorf("realm.Stats (%d/%d) disagrees with SchedStats (%d/%d)",
			st.Dispatches, st.Steals, ss.Dispatches, ss.Steals)
	}
	for n, d := range ss.QueueDepths {
		if d != 0 {
			t.Errorf("node %d queue depth = %d after Drive, want 0", n, d)
		}
	}
}

// TestInlineCompletionsCounted pins the inline fast path: nil-body,
// zero-delay launches and copies complete on the triggering goroutine with
// no queue hop, and are tallied as such.
func TestInlineCompletionsCounted(t *testing.T) {
	const launches, copies = 50, 50
	m := newTest(t, 2)
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		evs := make([]realm.Event, 0, launches+copies)
		for k := 0; k < launches; k++ {
			evs = append(evs, m.LaunchOn(k%2, realm.NoEvent, realm.Microseconds(5), nil))
		}
		for k := 0; k < copies; k++ {
			evs = append(evs, m.CopyBytes(k%2, (k+1)%2, 64, realm.NoEvent, nil))
		}
		a.WaitEvent(m.Merge(evs...))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	ss := m.SchedStats()
	if ss.InlineCompletions != launches+copies {
		t.Errorf("InlineCompletions = %d, want %d", ss.InlineCompletions, launches+copies)
	}
	if ss.Dispatches != 0 {
		t.Errorf("Dispatches = %d, want 0 (nothing had a body)", ss.Dispatches)
	}
	if st := m.Stats(); st.InlineCompletions != launches+copies {
		t.Errorf("realm.Stats.InlineCompletions = %d, want %d", st.InlineCompletions, launches+copies)
	}
}

// TestLaunchCrashSchedule pins the logical-point crash schedule on native:
// "node 1 dies at its 3rd launch" installs cleanly (unlike virtual-time
// schedules) and, with the issuer serializing launches, kills the node
// after exactly two executed bodies on every run.
func TestLaunchCrashSchedule(t *testing.T) {
	run := func() (ran int64, crashes []realm.NodeCrash) {
		m := newTest(t, 2)
		err := m.InjectFaults(realm.FaultPlan{
			LaunchCrashes: []realm.LaunchCrash{{Node: 1, AtLaunch: 3}},
		})
		if err != nil {
			t.Fatalf("a logical-point schedule must install on native: %v", err)
		}
		m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
			for k := 0; k < 5; k++ {
				done := m.LaunchOn(1, realm.NoEvent, 0, func() { atomic.AddInt64(&ran, 1) })
				if m.NodeFailed(1) {
					break // the launch was lost; its event will never fire
				}
				a.WaitEvent(done)
			}
			a.WaitEvent(m.NodeFailEvent(1))
		})
		if _, err := m.Drive(); err != nil {
			t.Fatal(err)
		}
		return atomic.LoadInt64(&ran), m.Crashes()
	}
	for i := 0; i < 2; i++ {
		ran, crashes := run()
		if ran != 2 {
			t.Errorf("run %d: %d bodies executed, want exactly 2 (the crash precedes launch 3)", i, ran)
		}
		if len(crashes) != 1 || crashes[0].Node != 1 {
			t.Errorf("run %d: crash log = %+v, want one crash of node 1", i, crashes)
		}
	}
	// AtLaunch is 1-based: 0 is a validation error, exactly as on the DES.
	m := newTest(t, 2)
	if err := m.InjectFaults(realm.FaultPlan{
		LaunchCrashes: []realm.LaunchCrash{{Node: 1, AtLaunch: 0}},
	}); err == nil {
		t.Error("AtLaunch 0 must be rejected")
	}
}

// TestCrashDuringStealStorm crashes a node in the middle of a steal storm
// aimed at it: items already queued for the dead node are dropped at
// dequeue, items for live nodes still run, and the machine drains cleanly.
// Under -race this exercises the crashed-node drop path concurrently with
// stealing workers.
func TestCrashDuringStealStorm(t *testing.T) {
	const nodes, storm, live = 4, 120, 40
	m := newTest(t, nodes)
	m.SetProcs(1)
	err := m.InjectFaults(realm.FaultPlan{
		LaunchCrashes: []realm.LaunchCrash{{Node: 1, AtLaunch: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var onVictim, onLive int64
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		for k := 0; k < storm; k++ {
			m.LaunchOn(1, realm.NoEvent, 0, func() {
				atomic.AddInt64(&onVictim, 1)
				time.Sleep(100 * time.Microsecond)
			})
		}
		evs := make([]realm.Event, live)
		for k := range evs {
			evs[k] = m.LaunchOn(2+k%2, realm.NoEvent, 0, func() {
				atomic.AddInt64(&onLive, 1)
				time.Sleep(100 * time.Microsecond)
			})
		}
		a.WaitEvent(m.Merge(evs...))
		a.WaitEvent(m.NodeFailEvent(1))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if got := m.Crashes(); len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("crash log = %+v, want one crash of node 1", got)
	}
	if v := atomic.LoadInt64(&onVictim); v >= storm {
		t.Errorf("all %d storm bodies ran despite the mid-storm crash", v)
	}
	if l := atomic.LoadInt64(&onLive); l != live {
		t.Errorf("live-node bodies ran %d of %d", l, live)
	}
}

// TestQuiesceDrainsLoadedDeques checks the drain protocol with a backlog:
// items still sitting in deques count as in-flight, so Quiesce must wait
// for them, and the watchdog must not misread the busy pool as a hang even
// though every agent is blocked the whole time.
func TestQuiesceDrainsLoadedDeques(t *testing.T) {
	const items = 20
	m := newTest(t, 2)
	m.SetProcs(1)
	m.SetHangTimeout(10 * time.Millisecond) // far shorter than the backlog
	var done int64
	m.SpawnOn("ctl", 0, 0, func(a realm.Agent) {
		evs := make([]realm.Event, items)
		for k := range evs {
			evs[k] = m.LaunchOn(1, realm.NoEvent, 0, func() {
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt64(&done, 1)
			})
		}
		m.Quiesce()
		if got := atomic.LoadInt64(&done); got != items {
			t.Errorf("Quiesce returned with %d of %d bodies finished", got, items)
		}
		a.WaitEvent(m.Merge(evs...))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatalf("the watchdog misfired on a loaded pool: %v", err)
	}
}

// TestProcsSizing pins the pool-shape knobs: the default per-node worker
// count is an equal share of GOMAXPROCS (at least one), and SetProcs
// overrides it, reflected in SchedStats.Workers.
func TestProcsSizing(t *testing.T) {
	m := newTest(t, 3)
	want := runtime.GOMAXPROCS(0) / 3
	if want < 1 {
		want = 1
	}
	if got := m.Procs(); got != want {
		t.Errorf("default Procs() = %d, want %d", got, want)
	}
	m.SetProcs(5)
	if got := m.Procs(); got != 5 {
		t.Errorf("Procs() after SetProcs(5) = %d, want 5", got)
	}
	m.SpawnOn("noop", 0, 0, func(realm.Agent) {})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if ss := m.SchedStats(); ss.Workers != 15 {
		t.Errorf("Workers = %d, want 15 (3 nodes x 5 procs)", ss.Workers)
	}
}

// TestTimeRecorderObservesWork checks that an attached recorder sees one
// sample per executed launch and copy body, with the modeled duration and
// byte count passed through.
func TestTimeRecorderObservesWork(t *testing.T) {
	m := newTest(t, 2)
	rec := realm.NewMeasuredTime(realm.ModeledTime{Cfg: realm.DefaultConfig(2)})
	m.SetTimeRecorder(rec)
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		for k := 0; k < 8; k++ {
			a.WaitEvent(m.LaunchOn(k%2, realm.NoEvent, realm.Microseconds(50), func() {
				time.Sleep(50 * time.Microsecond)
			}))
		}
		for k := 0; k < 4; k++ {
			a.WaitEvent(m.CopyBytes(0, 1, 4096, realm.NoEvent, func() {}))
		}
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	launches, copies := rec.Samples()
	if launches != 8 || copies != 4 {
		t.Errorf("samples = %d launches / %d copies, want 8 / 4", launches, copies)
	}
	if d := rec.TaskDuration(realm.Microseconds(50)); d <= 0 {
		t.Errorf("fitted TaskDuration = %d, want > 0", d)
	}
}
