package native

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/realm"
)

func newTest(t *testing.T, nodes int) *Machine {
	t.Helper()
	m, err := NewMachine(realm.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEventsAndMerge(t *testing.T) {
	m := newTest(t, 2)
	if !m.Triggered(realm.NoEvent) {
		t.Fatal("NoEvent must read as triggered")
	}
	a, b := m.NewUserEvent(), m.NewUserEvent()
	merged := m.Merge(a, b)
	var fired int32
	m.OnTrigger(merged, func() { atomic.AddInt32(&fired, 1) })
	m.Trigger(a)
	if m.Triggered(merged) {
		t.Fatal("merge fired after one of two inputs")
	}
	m.Trigger(b)
	if !m.Triggered(merged) || atomic.LoadInt32(&fired) != 1 {
		t.Fatal("merge did not fire after both inputs")
	}
	if m.Merge() != realm.NoEvent {
		t.Fatal("empty merge must be NoEvent")
	}
	if !m.Triggered(m.Merge(a, b)) {
		t.Fatal("merge of triggered inputs must come back triggered")
	}
}

func TestReserveEventsContiguous(t *testing.T) {
	m := newTest(t, 1)
	first := m.ReserveEvents(4)
	for i := realm.Event(0); i < 4; i++ {
		if m.Triggered(first + i) {
			t.Fatalf("reserved event %d born triggered", first+i)
		}
	}
	m.Trigger(first + 2)
	if !m.Triggered(first+2) || m.Triggered(first+3) {
		t.Fatal("reserved handles are not independent")
	}
	if m.ReserveEvents(0) != realm.NoEvent {
		t.Fatal("zero-length reservation must be NoEvent")
	}
}

func TestDriveRunsAgentsAndWork(t *testing.T) {
	m := newTest(t, 2)
	var order []string
	done := m.LaunchOn(1, realm.NoEvent, 0, func() { order = append(order, "task") })
	m.SpawnOn("ctl", 0, 0, func(a realm.Agent) {
		a.WaitEvent(done)
		a.Elapse(realm.Microseconds(5)) // no-op, must not deadlock
		order = append(order, "ctl")
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "task" || order[1] != "ctl" {
		t.Fatalf("order = %v", order)
	}
	if _, err := m.Drive(); err == nil {
		t.Fatal("Drive must reject re-entry")
	}
	st := m.Stats()
	if st.TasksRun != 1 || st.WallNanos <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicDrainsInsteadOfHanging(t *testing.T) {
	m := newTest(t, 1)
	never := m.NewUserEvent()
	m.SpawnOn("waiter", 0, 0, func(a realm.Agent) {
		a.WaitEvent(never) // only the failure path can release this
	})
	m.SpawnOn("boom", 0, 0, func(realm.Agent) {
		panic("kernel bug")
	})
	_, err := m.Drive()
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("err = %v, want the agent panic", err)
	}
}

func TestInjectFaultsUnsupported(t *testing.T) {
	m := newTest(t, 2)
	err := m.InjectFaults(realm.FaultPlan{Seed: 1, CrashRate: 1})
	var ue *realm.UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want realm.UnsupportedError", err)
	}
	if ue.Backend != "native" || !strings.Contains(err.Error(), "native") {
		t.Fatalf("err = %v, want the backend named", err)
	}
}

func TestCollectiveFoldsInIndexOrder(t *testing.T) {
	// A non-commutative fold exposes arrival-order sensitivity: the result
	// must be the index-order fold no matter which schedule the goroutines
	// get.
	m := newTest(t, 4)
	c := m.Collective(4, 0, func(acc, v float64) float64 { return acc*10 + v })
	pres := make([]realm.Event, 4)
	for i := range pres {
		pres[i] = m.NewUserEvent()
	}
	for i := 0; i < 4; i++ {
		i := i
		m.SpawnOn(fmt.Sprintf("p%d", i), 0, 0, func(a realm.Agent) {
			c.Contribute(i, pres[i], func() float64 { return float64(i + 1) })
			a.WaitEvent(c.Done())
			if got := c.Result(); got != 1234 {
				panic(fmt.Sprintf("participant %d saw %v", i, got))
			}
		})
	}
	// Release contributions in reverse order to fight the index order.
	m.SpawnOn("release", 0, 0, func(realm.Agent) {
		for i := 3; i >= 0; i-- {
			m.Trigger(pres[i])
		}
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
}

// TestStressPrimitives is the seeded concurrency stress for the native
// sync primitives: many agents churn p2p war/done pairs, barriers, and
// collectives through randomized (but seeded, hence reproducible) think
// patterns. Run under -race this exercises the happens-before edges the
// backend promises; the collective sums double-check delivery.
func TestStressPrimitives(t *testing.T) {
	const (
		agents = 8
		rounds = 40
		seed   = 20260808
	)
	m := newTest(t, agents)
	var sums [rounds]float64
	// One contiguous war/done block per round per pair of ring neighbors,
	// mirroring the executor's dense slot layout.
	base := m.ReserveEvents(2 * agents * rounds)
	slot := func(round, who int) realm.Event {
		return base + realm.Event(2*(round*agents+who))
	}
	bars := make([]realm.BarrierOp, rounds)
	colls := make([]realm.CollectiveOp, rounds)
	for r := 0; r < rounds; r++ {
		bars[r] = m.Barrier(agents)
		colls[r] = m.Collective(agents, 0, func(acc, v float64) float64 { return acc + v })
	}
	for i := 0; i < agents; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		m.SpawnOn(fmt.Sprintf("shard-%d", i), i, 0, func(a realm.Agent) {
			for r := 0; r < rounds; r++ {
				war, done := slot(r, i), slot(r, i)+1
				// Producer side: my done fires when my neighbor's war
				// (release of the previous consumer) has fired.
				m.OnTrigger(war, func() { m.Trigger(done) })
				// Randomize issue order pressure with busy work.
				for k := 0; k < rng.Intn(64); k++ {
					_ = rng.Float64()
				}
				// Consumer side: release the ring successor's pair.
				m.Trigger(slot(r, (i+1)%agents))
				colls[r].Contribute(i, done, func() float64 { return float64(r) })
				bars[r].Arrive(colls[r].Done())
				a.WaitEvent(bars[r].Done())
				if i == 0 {
					sums[r] = colls[r].Result()
				}
			}
		})
	}
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	for r, got := range sums {
		if want := float64(r * agents); got != want {
			t.Errorf("round %d: collective sum = %v, want %v", r, got, want)
		}
	}
}

// TestStressCopiesAndTasks drives a randomized producer/consumer copy
// graph: every byte moved is tallied against Stats, and every copy body
// must observe its precondition's write.
func TestStressCopiesAndTasks(t *testing.T) {
	const (
		chains = 16
		depth  = 25
		seed   = 7
	)
	m := newTest(t, 4)
	cells := make([]int64, chains)
	rng := rand.New(rand.NewSource(seed))
	var wantBytes int64
	var wantMsgs, wantLocal int64
	for c := 0; c < chains; c++ {
		c := c
		pre := realm.NoEvent
		for d := 0; d < depth; d++ {
			d := d
			bytes := int64(rng.Intn(1000) + 1)
			src, dst := rng.Intn(4), rng.Intn(4)
			if src == dst {
				wantLocal++
			} else {
				wantMsgs++
				wantBytes += bytes
			}
			pre = m.CopyBytes(src, dst, bytes, pre, func() {
				// Chained bodies run one at a time: the event edge must
				// publish the previous body's write.
				if got := atomic.LoadInt64(&cells[c]); got != int64(d) {
					panic(fmt.Sprintf("chain %d step %d saw %d", c, d, got))
				}
				atomic.StoreInt64(&cells[c], int64(d+1))
			})
		}
		fin := pre
		m.SpawnOn(fmt.Sprintf("chain-%d", c), 0, 0, func(a realm.Agent) {
			a.WaitEvent(fin)
		})
	}
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	for c := range cells {
		if cells[c] != depth {
			t.Errorf("chain %d advanced to %d, want %d", c, cells[c], depth)
		}
	}
	st := m.Stats()
	if st.BytesSent != wantBytes || st.Messages != wantMsgs || st.LocalCopies != wantLocal {
		t.Errorf("stats = %+v, want bytes=%d msgs=%d local=%d", st, wantBytes, wantMsgs, wantLocal)
	}
}
