package native

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/realm"
)

func newTest(t *testing.T, nodes int) *Machine {
	t.Helper()
	m, err := NewMachine(realm.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEventsAndMerge(t *testing.T) {
	m := newTest(t, 2)
	if !m.Triggered(realm.NoEvent) {
		t.Fatal("NoEvent must read as triggered")
	}
	a, b := m.NewUserEvent(), m.NewUserEvent()
	merged := m.Merge(a, b)
	var fired int32
	m.OnTrigger(merged, func() { atomic.AddInt32(&fired, 1) })
	m.Trigger(a)
	if m.Triggered(merged) {
		t.Fatal("merge fired after one of two inputs")
	}
	m.Trigger(b)
	if !m.Triggered(merged) || atomic.LoadInt32(&fired) != 1 {
		t.Fatal("merge did not fire after both inputs")
	}
	if m.Merge() != realm.NoEvent {
		t.Fatal("empty merge must be NoEvent")
	}
	if !m.Triggered(m.Merge(a, b)) {
		t.Fatal("merge of triggered inputs must come back triggered")
	}
}

func TestReserveEventsContiguous(t *testing.T) {
	m := newTest(t, 1)
	first := m.ReserveEvents(4)
	for i := realm.Event(0); i < 4; i++ {
		if m.Triggered(first + i) {
			t.Fatalf("reserved event %d born triggered", first+i)
		}
	}
	m.Trigger(first + 2)
	if !m.Triggered(first+2) || m.Triggered(first+3) {
		t.Fatal("reserved handles are not independent")
	}
	if m.ReserveEvents(0) != realm.NoEvent {
		t.Fatal("zero-length reservation must be NoEvent")
	}
}

func TestDriveRunsAgentsAndWork(t *testing.T) {
	m := newTest(t, 2)
	var order []string
	done := m.LaunchOn(1, realm.NoEvent, 0, func() { order = append(order, "task") })
	m.SpawnOn("ctl", 0, 0, func(a realm.Agent) {
		a.WaitEvent(done)
		a.Elapse(realm.Microseconds(5)) // no-op, must not deadlock
		order = append(order, "ctl")
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "task" || order[1] != "ctl" {
		t.Fatalf("order = %v", order)
	}
	if _, err := m.Drive(); err == nil {
		t.Fatal("Drive must reject re-entry")
	}
	st := m.Stats()
	if st.TasksRun != 1 || st.WallNanos <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicDrainsInsteadOfHanging(t *testing.T) {
	m := newTest(t, 1)
	never := m.NewUserEvent()
	m.SpawnOn("waiter", 0, 0, func(a realm.Agent) {
		a.WaitEvent(never) // only the failure path can release this
	})
	m.SpawnOn("boom", 0, 0, func(realm.Agent) {
		panic("kernel bug")
	})
	_, err := m.Drive()
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("err = %v, want the agent panic", err)
	}
}

// TestInjectFaultsPartialSupport pins the native fault-capability surface:
// rate-based plans install cleanly, while the one DES-only feature — a
// virtual-time crash schedule — is rejected with a precise UnsupportedError
// naming exactly the unsupported field, not a blanket "no faults" error.
func TestInjectFaultsPartialSupport(t *testing.T) {
	m := newTest(t, 2)
	err := m.InjectFaults(realm.FaultPlan{
		Seed:    1,
		Crashes: []realm.NodeCrash{{Node: 1, At: realm.Microseconds(10)}},
	})
	var ue *realm.UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want realm.UnsupportedError", err)
	}
	if ue.Backend != "native" || !strings.Contains(ue.Op, "FaultPlan.Crashes") {
		t.Fatalf("err = %v, want the backend and FaultPlan.Crashes named", err)
	}
	// A rate-only plan — the supported remainder — installs fine...
	if err := m.InjectFaults(realm.FaultPlan{Seed: 1, CrashRate: 1}); err != nil {
		t.Fatalf("rate-based plan rejected: %v", err)
	}
	// ...exactly once.
	if err := m.InjectFaults(realm.FaultPlan{Seed: 2, CrashRate: 1}); err == nil {
		t.Fatal("double install must be rejected")
	}
	m.SpawnOn("noop", 0, 0, func(realm.Agent) {})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	m2 := newTest(t, 2)
	m2.SpawnOn("noop", 0, 0, func(realm.Agent) {})
	if _, err := m2.Drive(); err != nil {
		t.Fatal(err)
	}
	if err := m2.InjectFaults(realm.FaultPlan{Seed: 1, CrashRate: 1}); err == nil {
		t.Fatal("post-Drive install must be rejected")
	}
}

// crashWorkload runs one launching agent per node and returns the crashed
// node set and fault stats: the determinism fixture for seeded crashes.
func crashWorkload(t *testing.T, seed uint64, nodes, launches int) ([]int, realm.FaultStats) {
	t.Helper()
	m := newTest(t, nodes)
	if err := m.InjectFaults(realm.FaultPlan{Seed: seed, CrashRate: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		i := i
		m.SpawnOn(fmt.Sprintf("issuer-%d", i), i, 0, func(a realm.Agent) {
			for k := 0; k < launches; k++ {
				a.WaitEvent(m.LaunchOn(i, realm.NoEvent, 0, nil))
			}
		})
	}
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	var crashed []int
	for _, c := range m.Crashes() {
		crashed = append(crashed, c.Node)
		if !m.NodeFailed(c.Node) {
			t.Errorf("node %d crashed but NodeFailed is false", c.Node)
		}
		if !m.Triggered(m.NodeFailEvent(c.Node)) {
			t.Errorf("node %d crashed but its fail event has not fired", c.Node)
		}
	}
	return crashed, m.FaultStats()
}

// TestCrashDeterminism checks that seeded crashes hit the same logical
// points on every run: while one agent issues each node's launches, the
// per-node draw sequence is a pure function of the seed, so two runs
// produce identical crash sets (wall-clock crash times differ; nodes and
// counts may not). Node 0 is the head node and must be spared.
func TestCrashDeterminism(t *testing.T) {
	crashed1, stats1 := crashWorkload(t, 42, 4, 200)
	crashed2, stats2 := crashWorkload(t, 42, 4, 200)
	if len(crashed1) == 0 {
		t.Fatal("seed 42 injected no crashes; pick a seed that does")
	}
	if fmt.Sprint(crashed1) != fmt.Sprint(crashed2) {
		t.Fatalf("crash sets differ across identical runs: %v vs %v", crashed1, crashed2)
	}
	if stats1 != stats2 {
		t.Fatalf("fault stats differ across identical runs: %+v vs %+v", stats1, stats2)
	}
	for _, n := range crashed1 {
		if n == 0 {
			t.Fatal("node 0 crashed without CrashNode0")
		}
	}
	crashed3, _ := crashWorkload(t, 43, 4, 200)
	if fmt.Sprint(crashed1) == fmt.Sprint(crashed3) && len(crashed1) == len(crashed3) {
		// Different seeds usually differ; equal sets are possible but the
		// draws must not be seed-independent. Distinguish via stats-bearing
		// reruns only if the sets matched by chance.
		t.Logf("seeds 42 and 43 crashed the same nodes %v (possible, but verify FaultDraw seeding on changes)", crashed1)
	}
}

// TestCopyFaultCounters checks seeded drops and duplicates: counters are
// identical across identical runs, and every extra wire transit is charged
// to Messages and BytesSent exactly as on the DES.
func TestCopyFaultCounters(t *testing.T) {
	const copies, bytes = 400, 100
	run := func() (realm.FaultStats, realm.Stats) {
		m := newTest(t, 2)
		err := m.InjectFaults(realm.FaultPlan{
			Seed: 7, DropRate: 0.1, DupRate: 0.05,
			RetransmitTimeout: realm.Microseconds(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
			for k := 0; k < copies; k++ {
				a.WaitEvent(m.CopyBytes(0, 1, bytes, realm.NoEvent, nil))
			}
		})
		if _, err := m.Drive(); err != nil {
			t.Fatal(err)
		}
		return m.FaultStats(), m.Stats()
	}
	fs1, st1 := run()
	fs2, st2 := run()
	if fs1 != fs2 {
		t.Fatalf("fault stats differ across identical runs: %+v vs %+v", fs1, fs2)
	}
	if fs1.Drops == 0 || fs1.Dups == 0 {
		t.Fatalf("seed 7 injected no message faults: %+v", fs1)
	}
	extra := fs1.Drops + fs1.Dups
	if st1.Messages != copies+extra {
		t.Errorf("Messages = %d, want %d copies + %d retransmits/dups", st1.Messages, copies, extra)
	}
	if st1.BytesSent != bytes*(copies+extra) {
		t.Errorf("BytesSent = %d, want %d", st1.BytesSent, bytes*(copies+extra))
	}
	if st1.Messages != st2.Messages || st1.BytesSent != st2.BytesSent {
		t.Errorf("traffic differs across identical runs: %+v vs %+v", st1, st2)
	}
}

// TestStragglerDelaysAreReal checks that straggler injection on native is
// an actual delay — the modeled duration scales a real sleep — and that
// every delayed item is counted.
func TestStragglerDelaysAreReal(t *testing.T) {
	m := newTest(t, 2)
	err := m.InjectFaults(realm.FaultPlan{
		Seed: 3, StragglerRate: 1, StragglerFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const items = 4
	dur := realm.Milliseconds(5)
	start := time.Now()
	m.SpawnOn("issuer", 0, 0, func(a realm.Agent) {
		evs := make([]realm.Event, items)
		for k := range evs {
			evs[k] = m.LaunchOn(1, realm.NoEvent, dur, func() {})
		}
		a.WaitEvent(m.Merge(evs...))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	if got := m.FaultStats().Stragglers; got != items {
		t.Errorf("Stragglers = %d, want %d (rate 1 delays every item)", got, items)
	}
	// Factor 2 on a 5ms task adds a 5ms real delay; the items run
	// concurrently, so elapsed is ~one delay, not items delays.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("elapsed %v, want at least the 5ms injected delay", elapsed)
	}
}

// TestWatchdogReportsHang checks the native analogue of the DES
// DeadlockError: a run that can never progress (a barrier expecting an
// arrival that never comes) is failed by the watchdog with a structured
// HangError naming the blocked agents and the primitive they are parked
// on, instead of wedging Drive until the test timeout.
func TestWatchdogReportsHang(t *testing.T) {
	m := newTest(t, 2)
	m.SetHangTimeout(25 * time.Millisecond)
	b := m.Barrier(3) // three expected, only two will ever arrive
	for i := 0; i < 2; i++ {
		i := i
		m.SpawnOn(fmt.Sprintf("stuck-%d", i), i, 0, func(a realm.Agent) {
			b.Arrive(realm.NoEvent)
			a.WaitEvent(b.Done())
		})
	}
	_, err := m.Drive()
	var he *realm.HangError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want realm.HangError", err)
	}
	if len(he.Blocked) != 2 {
		t.Fatalf("blocked = %+v, want both stuck agents", he.Blocked)
	}
	for i, blk := range he.Blocked {
		if want := fmt.Sprintf("stuck-%d", i); blk.Name != want {
			t.Errorf("blocked[%d].Name = %q, want %q (sorted)", i, blk.Name, want)
		}
		if blk.Primitive != "barrier" {
			t.Errorf("blocked[%d].Primitive = %q, want barrier", i, blk.Primitive)
		}
	}
	if !strings.Contains(err.Error(), "stuck-0(barrier)") {
		t.Errorf("err = %v, want agents named with their primitive", err)
	}
}

// TestKillAgentAndQuiesce checks the failover building blocks: a killed
// agent unwinds with the shared kill sentinel (not an error), its node's
// suppressed work never fires its events, and Quiesce really waits out
// in-flight work bodies before returning.
func TestKillAgentAndQuiesce(t *testing.T) {
	m := newTest(t, 2)
	var bodyDone, sawQuiesce int32
	never := m.NewUserEvent()
	victim := m.SpawnOn("victim", 1, 0, func(a realm.Agent) {
		a.WaitEvent(never)
		t.Error("victim survived its kill")
	})
	m.SpawnOn("ctl", 0, 0, func(a realm.Agent) {
		// A slow work body is in flight while we kill and quiesce.
		done := m.LaunchOn(0, realm.NoEvent, 0, func() {
			time.Sleep(10 * time.Millisecond)
			atomic.StoreInt32(&bodyDone, 1)
		})
		m.KillAgent(victim)
		m.KillAgent(victim) // killing twice is a no-op
		m.Quiesce()
		if atomic.LoadInt32(&bodyDone) != 1 {
			t.Error("Quiesce returned with a work body still running")
		}
		atomic.StoreInt32(&sawQuiesce, 1)
		a.WaitEvent(done)
	})
	if _, err := m.Drive(); err != nil {
		t.Fatalf("a killed agent must not fail the machine: %v", err)
	}
	if atomic.LoadInt32(&sawQuiesce) != 1 {
		t.Fatal("control agent never reached Quiesce")
	}
}

// TestShipTraceCounted checks that trace shipments move through the normal
// copy path but are tallied separately, as the recovery protocol's
// observable trace traffic.
func TestShipTraceCounted(t *testing.T) {
	m := newTest(t, 2)
	m.SpawnOn("ctl", 0, 0, func(a realm.Agent) {
		a.WaitEvent(m.ShipTrace(0, 1, 1234, realm.NoEvent))
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TraceShips != 1 || st.TraceShipBytes != 1234 {
		t.Errorf("trace counters = ships %d bytes %d, want 1/1234", st.TraceShips, st.TraceShipBytes)
	}
	if st.Messages != 1 || st.BytesSent != 1234 {
		t.Errorf("shipments must ride the message path: %+v", st)
	}
}

func TestCollectiveFoldsInIndexOrder(t *testing.T) {
	// A non-commutative fold exposes arrival-order sensitivity: the result
	// must be the index-order fold no matter which schedule the goroutines
	// get.
	m := newTest(t, 4)
	c := m.Collective(4, 0, func(acc, v float64) float64 { return acc*10 + v })
	pres := make([]realm.Event, 4)
	for i := range pres {
		pres[i] = m.NewUserEvent()
	}
	for i := 0; i < 4; i++ {
		i := i
		m.SpawnOn(fmt.Sprintf("p%d", i), 0, 0, func(a realm.Agent) {
			c.Contribute(i, pres[i], func() float64 { return float64(i + 1) })
			a.WaitEvent(c.Done())
			if got := c.Result(); got != 1234 {
				panic(fmt.Sprintf("participant %d saw %v", i, got))
			}
		})
	}
	// Release contributions in reverse order to fight the index order.
	m.SpawnOn("release", 0, 0, func(realm.Agent) {
		for i := 3; i >= 0; i-- {
			m.Trigger(pres[i])
		}
	})
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
}

// TestStressPrimitives is the seeded concurrency stress for the native
// sync primitives: many agents churn p2p war/done pairs, barriers, and
// collectives through randomized (but seeded, hence reproducible) think
// patterns. Run under -race this exercises the happens-before edges the
// backend promises; the collective sums double-check delivery.
func TestStressPrimitives(t *testing.T) {
	const (
		agents = 8
		rounds = 40
		seed   = 20260808
	)
	m := newTest(t, agents)
	var sums [rounds]float64
	// One contiguous war/done block per round per pair of ring neighbors,
	// mirroring the executor's dense slot layout.
	base := m.ReserveEvents(2 * agents * rounds)
	slot := func(round, who int) realm.Event {
		return base + realm.Event(2*(round*agents+who))
	}
	bars := make([]realm.BarrierOp, rounds)
	colls := make([]realm.CollectiveOp, rounds)
	for r := 0; r < rounds; r++ {
		bars[r] = m.Barrier(agents)
		colls[r] = m.Collective(agents, 0, func(acc, v float64) float64 { return acc + v })
	}
	for i := 0; i < agents; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		m.SpawnOn(fmt.Sprintf("shard-%d", i), i, 0, func(a realm.Agent) {
			for r := 0; r < rounds; r++ {
				war, done := slot(r, i), slot(r, i)+1
				// Producer side: my done fires when my neighbor's war
				// (release of the previous consumer) has fired.
				m.OnTrigger(war, func() { m.Trigger(done) })
				// Randomize issue order pressure with busy work.
				for k := 0; k < rng.Intn(64); k++ {
					_ = rng.Float64()
				}
				// Consumer side: release the ring successor's pair.
				m.Trigger(slot(r, (i+1)%agents))
				colls[r].Contribute(i, done, func() float64 { return float64(r) })
				bars[r].Arrive(colls[r].Done())
				a.WaitEvent(bars[r].Done())
				if i == 0 {
					sums[r] = colls[r].Result()
				}
			}
		})
	}
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	for r, got := range sums {
		if want := float64(r * agents); got != want {
			t.Errorf("round %d: collective sum = %v, want %v", r, got, want)
		}
	}
}

// TestStressCopiesAndTasks drives a randomized producer/consumer copy
// graph: every byte moved is tallied against Stats, and every copy body
// must observe its precondition's write.
func TestStressCopiesAndTasks(t *testing.T) {
	const (
		chains = 16
		depth  = 25
		seed   = 7
	)
	m := newTest(t, 4)
	cells := make([]int64, chains)
	rng := rand.New(rand.NewSource(seed))
	var wantBytes int64
	var wantMsgs, wantLocal int64
	for c := 0; c < chains; c++ {
		c := c
		pre := realm.NoEvent
		for d := 0; d < depth; d++ {
			d := d
			bytes := int64(rng.Intn(1000) + 1)
			src, dst := rng.Intn(4), rng.Intn(4)
			if src == dst {
				wantLocal++
			} else {
				wantMsgs++
				wantBytes += bytes
			}
			pre = m.CopyBytes(src, dst, bytes, pre, func() {
				// Chained bodies run one at a time: the event edge must
				// publish the previous body's write.
				if got := atomic.LoadInt64(&cells[c]); got != int64(d) {
					panic(fmt.Sprintf("chain %d step %d saw %d", c, d, got))
				}
				atomic.StoreInt64(&cells[c], int64(d+1))
			})
		}
		fin := pre
		m.SpawnOn(fmt.Sprintf("chain-%d", c), 0, 0, func(a realm.Agent) {
			a.WaitEvent(fin)
		})
	}
	if _, err := m.Drive(); err != nil {
		t.Fatal(err)
	}
	for c := range cells {
		if cells[c] != depth {
			t.Errorf("chain %d advanced to %d, want %d", c, cells[c], depth)
		}
	}
	st := m.Stats()
	if st.BytesSent != wantBytes || st.Messages != wantMsgs || st.LocalCopies != wantLocal {
		t.Errorf("stats = %+v, want bytes=%d msgs=%d local=%d", st, wantBytes, wantMsgs, wantLocal)
	}
}
