package realm

import (
	"encoding/json"
	"fmt"
	"io"
)

// Tracer records the simulation's execution timeline — task spans per
// processor and message transfers — for visualization in Chrome's
// about:tracing or Perfetto. Attach with Sim.SetTracer before Run.
type Tracer struct {
	spans   []traceSpan
	flows   []traceFlow
	crashes []NodeCrash
}

type traceSpan struct {
	name       string
	node, proc int
	start, end Time
}

type traceFlow struct {
	src, dst   int
	bytes      int64
	start, end Time
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetTracer attaches a tracer to the simulation (nil detaches).
func (s *Sim) SetTracer(t *Tracer) { s.tracer = t }

func (t *Tracer) task(node, proc int, start, end Time) {
	t.spans = append(t.spans, traceSpan{name: "task", node: node, proc: proc, start: start, end: end})
}

func (t *Tracer) message(src, dst int, bytes int64, start, end Time) {
	t.flows = append(t.flows, traceFlow{src: src, dst: dst, bytes: bytes, start: start, end: end})
}

func (t *Tracer) crash(node int, at Time) {
	t.crashes = append(t.crashes, NodeCrash{Node: node, At: at})
}

// Spans returns the number of recorded task spans.
func (t *Tracer) Spans() int { return len(t.spans) }

// Crashes returns the number of recorded node crashes.
func (t *Tracer) Crashes() int { return len(t.crashes) }

// Messages returns the number of recorded transfers.
func (t *Tracer) Messages() int { return len(t.flows) }

// chromeEvent is the Trace Event Format record.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the timeline in Chrome Trace Event Format:
// one "pid" per node, one "tid" per processor, complete ("X") events for
// task spans and for transfers (on a synthetic network lane, tid -1).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.spans)+len(t.flows))
	for _, sp := range t.spans {
		events = append(events, chromeEvent{
			Name: sp.name, Cat: "task", Ph: "X",
			Ts: sp.start.Microseconds(), Dur: sp.end.Microseconds() - sp.start.Microseconds(),
			Pid: sp.node, Tid: sp.proc,
		})
	}
	for _, fl := range t.flows {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("msg->%d", fl.dst), Cat: "net", Ph: "X",
			Ts: fl.start.Microseconds(), Dur: fl.end.Microseconds() - fl.start.Microseconds(),
			Pid: fl.src, Tid: -1,
			Args: map[string]string{"bytes": fmt.Sprint(fl.bytes), "dst": fmt.Sprint(fl.dst)},
		})
	}
	for _, cr := range t.crashes {
		events = append(events, chromeEvent{
			Name: "crash", Cat: "fault", Ph: "i",
			Ts:  cr.At.Microseconds(),
			Pid: cr.Node, Tid: -1,
			Args: map[string]string{"s": "p"},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": events})
}
