package realm

import (
	"math"
	"testing"
)

// fitPolicy returns a MeasuredTime fed a steady stream of samples: every
// launch runs 3x its modeled duration, copies move a byte in 2ns plus a
// 100ns base.
func fitPolicy() *MeasuredTime {
	m := NewMeasuredTime(ModeledTime{Cfg: DefaultConfig(2)})
	for i := 0; i < 50; i++ {
		m.ObserveLaunch(Microseconds(10), 3*int64(Microseconds(10)))
		m.ObserveLaunch(0, 500) // control placeholders: absolute wall ns
		m.ObserveCopy(1000, 2*1000+100)
	}
	return m
}

func TestMeasuredTimeFitsRatios(t *testing.T) {
	m := fitPolicy()
	if l, c := m.Samples(); l != 100 || c != 50 {
		t.Fatalf("samples = %d/%d, want 100/50", l, c)
	}
	// A consistent 3x stream converges to a 3x rescale of its own class.
	if got, want := m.TaskDuration(Microseconds(10)), 3*Microseconds(10); !within(got, want, 0.05) {
		t.Errorf("TaskDuration(10us) = %d, want ~%d", got, want)
	}
	// Other classes reuse the nearest fitted ratio: still 3x.
	if got, want := m.TaskDuration(Microseconds(640)), 3*Microseconds(640); !within(got, want, 0.05) {
		t.Errorf("TaskDuration(640us) = %d, want ~%d (nearest-class ratio)", got, want)
	}
	if got := m.TaskDuration(0); !within(got, 500, 0.05) {
		t.Errorf("TaskDuration(0) = %d, want ~500ns (taskBase)", got)
	}
	if got := m.RemoteTransfer(2000); !within(got, 4000, 0.2) {
		t.Errorf("RemoteTransfer(2000) = %d, want ~4000ns (fitted 2ns/byte)", got)
	}
	// A single-size stream folds the whole cost into the rate (residual 0),
	// so the base adds nothing here — but it must never be negative.
	if lc, rt := m.LocalCopy(1000), m.RemoteTransfer(1000); lc < rt {
		t.Errorf("LocalCopy %d must be at least RemoteTransfer %d", lc, rt)
	}
}

func TestMeasuredTimeFallsBack(t *testing.T) {
	cfg := DefaultConfig(2)
	fb := ModeledTime{Cfg: cfg}
	m := NewMeasuredTime(fb)
	// Unfitted: every answer is the fallback's.
	if got := m.TaskDuration(Microseconds(7)); got != Microseconds(7) {
		t.Errorf("unfitted TaskDuration = %d, want identity", got)
	}
	if got := m.RemoteLatency(); got != fb.RemoteLatency() {
		t.Errorf("unfitted RemoteLatency = %d, want fallback %d", got, fb.RemoteLatency())
	}
	if got := m.CollectiveLatency(8); got != fb.CollectiveLatency(8) {
		t.Errorf("CollectiveLatency = %d, want fallback %d (always)", got, fb.CollectiveLatency(8))
	}
	// Collectives stay on the fallback even when fully fitted: the samples
	// carry no signal for them.
	f := fitPolicy()
	if got := f.CollectiveLatency(8); got != fb.CollectiveLatency(8) {
		t.Errorf("fitted CollectiveLatency = %d, want fallback %d", got, fb.CollectiveLatency(8))
	}
}

func TestMeasuredTimeRoundTripsJSON(t *testing.T) {
	m := fitPolicy()
	data, err := m.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportMeasuredTime(data, ModeledTime{Cfg: DefaultConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	// The import must reproduce the policy's answers exactly.
	for _, d := range []Time{0, Microseconds(1), Microseconds(10), Microseconds(640)} {
		if got, want := back.TaskDuration(d), m.TaskDuration(d); got != want {
			t.Errorf("TaskDuration(%d) round-tripped to %d, want %d", d, got, want)
		}
	}
	for _, b := range []int64{0, 100, 4096} {
		if got, want := back.LocalCopy(b), m.LocalCopy(b); got != want {
			t.Errorf("LocalCopy(%d) round-tripped to %d, want %d", b, got, want)
		}
		if got, want := back.RemoteTransfer(b), m.RemoteTransfer(b); got != want {
			t.Errorf("RemoteTransfer(%d) round-tripped to %d, want %d", b, got, want)
		}
	}
	if got, want := back.RemoteLatency(), m.RemoteLatency(); got != want {
		t.Errorf("RemoteLatency round-tripped to %d, want %d", got, want)
	}
	l1, c1 := m.Samples()
	l2, c2 := back.Samples()
	if l1 != l2 || c1 != c2 {
		t.Errorf("sample counts round-tripped to %d/%d, want %d/%d", l2, c2, l1, c1)
	}
	if _, err := ImportMeasuredTime([]byte("not json"), ModeledTime{}); err == nil {
		t.Error("garbage JSON must be rejected")
	}
	if _, err := ImportMeasuredTime([]byte(`{"task_class_ratio":{"x":1}}`), ModeledTime{}); err == nil {
		t.Error("a non-numeric class key must be rejected")
	}
}

// TestMeasuredTimeDrivesSim installs a fitted policy on a Sim and checks
// the virtual clock charges rescaled durations: the end-to-end seam the
// calibration loop relies on.
func TestMeasuredTimeDrivesSim(t *testing.T) {
	run := func(p TimePolicy) Time {
		s := MustNewSim(DefaultConfig(1))
		if p != nil {
			s.SetTimePolicy(p)
		}
		s.Spawn("w", s.Node(0).Proc(0), func(th *Thread) {
			for i := 0; i < 4; i++ {
				th.WaitEvent(s.LaunchOn(0, NoEvent, Microseconds(10), nil))
			}
		})
		end, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	base := run(nil)
	fitted := run(fitPolicy())
	if !within(fitted, 3*base, 0.1) {
		t.Errorf("fitted run ended at %d, want ~3x the modeled %d", fitted, base)
	}
}

func within(got, want Time, tol float64) bool {
	return math.Abs(float64(got)-float64(want)) <= tol*float64(want)
}
