package realm

import "testing"

// TestScheduleTriggerAllocs pins the allocation behavior of the DES hot
// path: once the waiter pool and the pre-sized event table are warm,
// creating a user event, registering a continuation, scheduling a timer,
// and triggering must not allocate. This is the path every simulated task
// launch and copy goes through millions of times per weak-scaling sweep; a
// regression here (e.g. reintroducing per-waiter slice allocations or
// interface boxing in the event queue) shows up as a nonzero average.
func TestScheduleTriggerAllocs(t *testing.T) {
	s := MustNewSim(DefaultConfig(1))
	sink := 0
	fn := func() { sink++ }

	// Warm the waiter pool with one trip through the path.
	e0 := s.NewUserEvent()
	s.OnTrigger(e0, fn)
	s.Trigger(e0)

	avg := testing.AllocsPerRun(200, func() {
		e := s.NewUserEvent()
		s.OnTrigger(e, fn)
		s.After(5, fn)
		s.Trigger(e)
	})
	if avg > 0 {
		t.Errorf("schedule/trigger path allocates %.2f objects per op, want 0", avg)
	}
	if sink == 0 {
		t.Fatal("continuations never ran")
	}
}

// BenchmarkSimEventThroughput measures raw DES event throughput on the
// pattern the runtime engines generate: user events merged pairwise, timer
// callbacks triggering them, and a continuation chaining the next round.
// Run with -benchmem to watch the per-event allocation count.
func BenchmarkSimEventThroughput(b *testing.B) {
	b.ReportAllocs()
	const chunk = 1 << 16 // bound the event table: one Sim per chunk
	done := 0
	for done < b.N {
		n := b.N - done
		if n > chunk {
			n = chunk
		}
		done += n
		s := MustNewSim(DefaultConfig(1))
		left := n
		var step func()
		step = func() {
			if left == 0 {
				return
			}
			left--
			a := s.NewUserEvent()
			c := s.NewUserEvent()
			s.OnTrigger(s.Merge(a, c), step)
			s.After(3, func() { s.Trigger(a) })
			s.After(7, func() { s.Trigger(c) })
		}
		step()
		s.MustRun()
	}
}
