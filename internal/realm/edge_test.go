package realm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeHelpers(t *testing.T) {
	if Nanoseconds(5) != Time(5) {
		t.Error("Nanoseconds")
	}
	if Microseconds(2.5) != Time(2500) {
		t.Error("Microseconds")
	}
	if Milliseconds(1.5) != Time(1500000) {
		t.Error("Milliseconds")
	}
	if SecondsT(0.25) != Time(250000000) {
		t.Error("SecondsT")
	}
	if SecondsT(2).Seconds() != 2 {
		t.Error("Seconds roundtrip")
	}
	if Microseconds(7).Microseconds() != 7 {
		t.Error("Microseconds roundtrip")
	}
}

func TestBadConfigErrors(t *testing.T) {
	bad := []Config{
		{Nodes: 0, CoresPerNode: 1, NetBandwidth: 1, LocalBW: 1},
		{Nodes: 1, CoresPerNode: 0, NetBandwidth: 1, LocalBW: 1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 0, LocalBW: 1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: -2, LocalBW: 1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 1, LocalBW: 0},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 1, LocalBW: 1, NetLatency: -1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 1, LocalBW: 1, LocalLatency: -1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 1, LocalBW: 1, HopLatency: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSim(cfg); err == nil {
			t.Errorf("config %d (%+v): want error, got nil", i, cfg)
		}
	}
	if _, err := NewSim(smallConfig(1)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewSimPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-node config")
		}
	}()
	MustNewSim(Config{Nodes: 0, CoresPerNode: 1})
}

func TestCopyZeroBytes(t *testing.T) {
	cfg := smallConfig(2)
	cfg.NetLatency = Microseconds(3)
	s := MustNewSim(cfg)
	var at Time
	s.Copy(s.Node(0), s.Node(1), 0, NoEvent, func() { at = s.Now() })
	s.MustRun()
	if at != Microseconds(3) {
		t.Errorf("zero-byte copy should cost pure latency, got %v", at)
	}
}

func TestSpawnFromWithinThread(t *testing.T) {
	s := MustNewSim(smallConfig(2))
	var order []string
	s.Spawn("outer", s.Node(0).Proc(0), func(th *Thread) {
		th.Elapse(Microseconds(5))
		order = append(order, "outer-mid")
		s.Spawn("inner", s.Node(1).Proc(0), func(in *Thread) {
			in.Elapse(Microseconds(5))
			order = append(order, "inner-done")
		})
		th.Elapse(Microseconds(10))
		order = append(order, "outer-done")
	})
	s.MustRun()
	want := []string{"outer-mid", "inner-done", "outer-done"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMergeNoInputs(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	if s.Merge() != NoEvent {
		t.Error("empty merge should be NoEvent")
	}
}

func TestThreadSleepDoesNotOccupyProc(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	p := s.Node(0).Proc(0)
	var taskAt Time
	s.Spawn("sleeper", p, func(th *Thread) {
		// While the thread sleeps, a task on the same proc should run.
		p.Launch(NoEvent, Microseconds(10), func() { taskAt = s.Now() })
		th.Sleep(Microseconds(100))
	})
	s.MustRun()
	if taskAt != Microseconds(10) {
		t.Errorf("task ran at %v; sleeping thread must not hold the processor", taskAt)
	}
}

func TestCollectiveDuplicateContributionPanics(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	c := s.NewCollective(2, 0, func(a, v float64) float64 { return a + v })
	c.Contribute(0, NoEvent, func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate contribution")
		}
	}()
	c.Contribute(0, NoEvent, func() float64 { return 2 })
}

func TestSpikeNoise(t *testing.T) {
	n := SpikeNoise(0.5, 0.3, 1)
	spikes := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		f := n(i%64, i/64)
		switch f {
		case 1.3:
			spikes++
		case 1.0:
		default:
			t.Fatalf("unexpected factor %v", f)
		}
	}
	frac := float64(spikes) / trials
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("spike fraction %.3f, want ~0.5", frac)
	}
	// Deterministic.
	if n(3, 7) != SpikeNoise(0.5, 0.3, 1)(3, 7) {
		t.Error("noise not deterministic")
	}
	// Different salts decorrelate.
	n2 := SpikeNoise(0.5, 0.3, 2)
	same := 0
	for i := 0; i < 200; i++ {
		if n(i, 0) == n2(i, 0) {
			same++
		}
	}
	if same == 200 {
		t.Error("different salts produced identical spike placement")
	}
	if SpikeNoise(0, 0.3, 1) != nil || SpikeNoise(0.1, 0, 1) != nil {
		t.Error("degenerate noise should be nil")
	}
}

// Property: collective result equals a sequential fold of the contributed
// values in index order.
func TestCollectiveFoldProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 32 {
			return true
		}
		s := MustNewSim(smallConfig(1))
		c := s.NewCollective(len(vals), 0, func(a, v float64) float64 { return a + v })
		// Contribute in reverse order; fold must still be index order.
		for i := len(vals) - 1; i >= 0; i-- {
			i := i
			c.Contribute(i, NoEvent, func() float64 { return vals[i] })
		}
		s.MustRun()
		want := 0.0
		for _, v := range vals {
			want += v
		}
		return c.Result() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	never := s.NewUserEvent()
	s.Spawn("stuck", s.Node(0).Proc(0), func(th *Thread) {
		th.WaitEvent(never) // never triggered
	})
	_, err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if len(derr.Blocked) != 1 || derr.Blocked[0].Name != "stuck" {
		t.Errorf("blocked threads = %+v, want the thread named \"stuck\"", derr.Blocked)
	}
	if derr.Blocked[0].Waiting != never {
		t.Errorf("blocked on event %d, want %d", derr.Blocked[0].Waiting, never)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock message should name the blocked thread: %v", err)
	}
}
