package realm

import "math"

// TimePolicy is the pluggable time-charging half of the DES split: it maps
// machine operations to virtual durations, while the Sim proper only
// sequences events. Every formula lives here, so a policy swap changes what
// operations cost without touching how they are ordered. The native backend
// needs no policy at all — its time is wall-clock — which is exactly why
// the split exists.
type TimePolicy interface {
	// TaskDuration maps a work item's modeled duration to the duration
	// actually charged on its processor. The modeled default is the
	// identity; a fitted policy (MeasuredTime) rescales each kernel-cost
	// class toward measured wall-clock reality.
	TaskDuration(modeled Time) Time
	// LocalCopy returns the cost of a node-local transfer of the given
	// size.
	LocalCopy(bytes int64) Time
	// RemoteTransfer returns the wire occupancy of one payload of the given
	// size (the per-attempt link serialization; charged again per
	// retransmission).
	RemoteTransfer(bytes int64) Time
	// RemoteLatency returns the end-to-end latency added to every remote
	// message on top of its wire time.
	RemoteLatency() Time
	// CollectiveLatency returns the latency of an n-participant
	// tree-structured collective.
	CollectiveLatency(n int) Time
}

// ModeledTime is the default policy: the Cray-XC-style cost model the DES
// has always charged, parameterized by the machine Config.
type ModeledTime struct {
	Cfg Config
}

// TaskDuration implements TimePolicy: the modeled duration is charged
// as-is.
func (p ModeledTime) TaskDuration(modeled Time) Time { return modeled }

// LocalCopy implements TimePolicy.
func (p ModeledTime) LocalCopy(bytes int64) Time {
	return p.Cfg.LocalLatency + Time(float64(bytes)/p.Cfg.LocalBW)
}

// RemoteTransfer implements TimePolicy.
func (p ModeledTime) RemoteTransfer(bytes int64) Time {
	return Time(float64(bytes) / p.Cfg.NetBandwidth)
}

// RemoteLatency implements TimePolicy.
func (p ModeledTime) RemoteLatency() Time { return p.Cfg.NetLatency }

// CollectiveLatency implements TimePolicy.
func (p ModeledTime) CollectiveLatency(n int) Time {
	if n <= 1 {
		return 0
	}
	levels := int(math.Ceil(math.Log2(float64(n))))
	return Time(levels) * p.Cfg.HopLatency
}

// SetTimePolicy replaces the simulator's time-charging policy (nil restores
// the modeled default). Must be called before Run; swapping mid-simulation
// would make the clock incoherent.
func (s *Sim) SetTimePolicy(p TimePolicy) {
	if p == nil {
		p = ModeledTime{Cfg: s.cfg}
	}
	s.policy = p
}
