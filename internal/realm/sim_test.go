package realm

import "testing"

func smallConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.CoresPerNode = 2
	return cfg
}

func TestEventBasics(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	e := s.NewUserEvent()
	if s.Triggered(e) {
		t.Fatal("fresh event should be untriggered")
	}
	fired := false
	s.OnTrigger(e, func() { fired = true })
	s.Trigger(e)
	if !fired || !s.Triggered(e) {
		t.Fatal("trigger should run continuations")
	}
	// Registering on a triggered event fires immediately.
	again := false
	s.OnTrigger(e, func() { again = true })
	if !again {
		t.Fatal("OnTrigger on fired event should run immediately")
	}
	if !s.Triggered(NoEvent) {
		t.Fatal("NoEvent is always triggered")
	}
}

func TestTriggerTwicePanics(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	e := s.NewUserEvent()
	s.Trigger(e)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Trigger(e)
}

func TestMerge(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	a, b := s.NewUserEvent(), s.NewUserEvent()
	m := s.Merge(a, b, NoEvent)
	if s.Triggered(m) {
		t.Fatal("merge should wait for all inputs")
	}
	s.Trigger(a)
	if s.Triggered(m) {
		t.Fatal("merge fired early")
	}
	s.Trigger(b)
	if !s.Triggered(m) {
		t.Fatal("merge should fire after all inputs")
	}
	if s.Merge(NoEvent, NoEvent) != NoEvent {
		t.Fatal("merge of triggered events is NoEvent")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	var tAt Time
	s.After(Microseconds(10), func() { tAt = s.Now() })
	end := s.MustRun()
	if tAt != Microseconds(10) {
		t.Errorf("callback at %v, want 10us", tAt)
	}
	if end != Microseconds(10) {
		t.Errorf("end time %v", end)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(Microseconds(5), func() { order = append(order, i) })
	}
	s.MustRun()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time ran out of order: %v", order)
		}
	}
}

func TestProcFIFOSerialization(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	p := s.Node(0).Proc(0)
	var times []Time
	e1 := p.Launch(NoEvent, Microseconds(10), func() { times = append(times, s.Now()) })
	p.Launch(NoEvent, Microseconds(5), func() { times = append(times, s.Now()) })
	_ = e1
	s.MustRun()
	if len(times) != 2 || times[0] != Microseconds(10) || times[1] != Microseconds(15) {
		t.Errorf("times = %v, want [10us 15us]", times)
	}
}

func TestLaunchWaitsForPrecondition(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	p := s.Node(0).Proc(0)
	gate := s.NewUserEvent()
	var ran Time = -1
	p.Launch(gate, Microseconds(1), func() { ran = s.Now() })
	s.After(Microseconds(100), func() { s.Trigger(gate) })
	s.MustRun()
	if ran != Microseconds(101) {
		t.Errorf("task ran at %v, want 101us", ran)
	}
}

func TestLaunchAutoBalances(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	n := s.Node(0)
	// 4 equal tasks on 2 cores should finish in 2 task-times, not 4.
	var done []Time
	for i := 0; i < 4; i++ {
		n.LaunchAuto(NoEvent, Microseconds(10), func() { done = append(done, s.Now()) })
	}
	end := s.MustRun()
	if end != Microseconds(20) {
		t.Errorf("end = %v, want 20us on 2 cores", end)
	}
	if len(done) != 4 {
		t.Errorf("ran %d tasks", len(done))
	}
}

func TestCopyRemoteChargesLatencyAndBandwidth(t *testing.T) {
	cfg := smallConfig(2)
	cfg.NetLatency = Microseconds(2)
	cfg.NetBandwidth = 1 // 1 byte/ns
	s := MustNewSim(cfg)
	var arrive Time
	s.Copy(s.Node(0), s.Node(1), 1000, NoEvent, func() { arrive = s.Now() })
	s.MustRun()
	want := Microseconds(2) + Time(1000)
	if arrive != want {
		t.Errorf("arrival %v, want %v", arrive, want)
	}
	st := s.Stats()
	if st.Messages != 1 || st.BytesSent != 1000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCopyLinkSerialization(t *testing.T) {
	cfg := smallConfig(3)
	cfg.NetLatency = 0
	cfg.NetBandwidth = 1
	s := MustNewSim(cfg)
	var t1, t2 Time
	// Two copies out of node 0 serialize on its link.
	s.Copy(s.Node(0), s.Node(1), 1000, NoEvent, func() { t1 = s.Now() })
	s.Copy(s.Node(0), s.Node(2), 1000, NoEvent, func() { t2 = s.Now() })
	s.MustRun()
	if t1 != Time(1000) || t2 != Time(2000) {
		t.Errorf("arrivals %v %v, want 1000ns 2000ns", t1, t2)
	}
}

func TestCopyLocalCheap(t *testing.T) {
	cfg := smallConfig(1)
	cfg.LocalLatency = Microseconds(0.1)
	cfg.LocalBW = 100
	s := MustNewSim(cfg)
	var at Time
	s.Copy(s.Node(0), s.Node(0), 10000, NoEvent, func() { at = s.Now() })
	s.MustRun()
	want := Microseconds(0.1) + Time(100)
	if at != want {
		t.Errorf("local copy at %v, want %v", at, want)
	}
	if s.Stats().Messages != 0 || s.Stats().LocalCopies != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestThreadElapseAndWait(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	var checkpoints []Time
	s.Spawn("main", s.Node(0).Proc(0), func(th *Thread) {
		checkpoints = append(checkpoints, th.Now())
		th.Elapse(Microseconds(10))
		checkpoints = append(checkpoints, th.Now())
		done := th.Node().LaunchAuto(NoEvent, Microseconds(5), nil)
		th.WaitEvent(done)
		checkpoints = append(checkpoints, th.Now())
		th.Sleep(Microseconds(100))
		checkpoints = append(checkpoints, th.Now())
	})
	s.MustRun()
	want := []Time{0, Microseconds(10), Microseconds(15), Microseconds(115)}
	if len(checkpoints) != len(want) {
		t.Fatalf("checkpoints = %v", checkpoints)
	}
	for i := range want {
		if checkpoints[i] != want[i] {
			t.Errorf("checkpoint %d = %v, want %v", i, checkpoints[i], want[i])
		}
	}
}

func TestTwoThreadsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := MustNewSim(smallConfig(2))
		var log []string
		for i := 0; i < 2; i++ {
			i := i
			name := []string{"a", "b"}[i]
			s.Spawn(name, s.Node(i).Proc(0), func(th *Thread) {
				for step := 0; step < 3; step++ {
					th.Elapse(Microseconds(float64(1 + i)))
					log = append(log, name)
				}
			})
		}
		s.MustRun()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("non-deterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("non-deterministic interleaving: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestThreadMessagePingPong(t *testing.T) {
	s := MustNewSim(smallConfig(2))
	ready := s.NewUserEvent()
	reply := s.NewUserEvent()
	var order []string
	s.Spawn("sender", s.Node(0).Proc(0), func(th *Thread) {
		ev := s.Copy(s.Node(0), s.Node(1), 8, NoEvent, func() { order = append(order, "deliver") })
		s.OnTrigger(ev, func() { s.Trigger(ready) })
		th.WaitEvent(reply)
		order = append(order, "got-reply")
	})
	s.Spawn("receiver", s.Node(1).Proc(0), func(th *Thread) {
		th.WaitEvent(ready)
		order = append(order, "received")
		ev := s.Copy(s.Node(1), s.Node(0), 8, NoEvent, nil)
		s.OnTrigger(ev, func() { s.Trigger(reply) })
	})
	s.MustRun()
	want := []string{"deliver", "received", "got-reply"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBarrier(t *testing.T) {
	s := MustNewSim(smallConfig(4))
	b := s.NewBarrier(4)
	count := 0
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("t", s.Node(i).Proc(0), func(th *Thread) {
			th.Elapse(Microseconds(float64(i * 10)))
			b.Arrive(NoEvent)
			th.WaitEvent(b.Done())
			count++
			if th.Now() < Microseconds(30) {
				t.Errorf("thread released before last arrival: %v", th.Now())
			}
		})
	}
	s.MustRun()
	if count != 4 {
		t.Errorf("released %d threads", count)
	}
}

func TestCollectiveDeterministicFold(t *testing.T) {
	s := MustNewSim(smallConfig(3))
	c := s.NewCollective(3, 0, func(a, v float64) float64 { return a + v })
	// Contribute out of order in time; result must fold in index order.
	vals := []float64{1, 2, 4}
	delays := []Time{Microseconds(30), Microseconds(10), Microseconds(20)}
	for i := 0; i < 3; i++ {
		i := i
		gate := s.NewUserEvent()
		s.After(delays[i], func() { s.Trigger(gate) })
		c.Contribute(i, gate, func() float64 { return vals[i] })
	}
	var got float64
	s.OnTrigger(c.Done(), func() { got = c.Result() })
	s.MustRun()
	if got != 7 {
		t.Errorf("result = %v", got)
	}
}

func TestCollectiveMin(t *testing.T) {
	s := MustNewSim(smallConfig(2))
	c := s.NewCollective(2, 1e300, func(a, v float64) float64 {
		if v < a {
			return v
		}
		return a
	})
	c.Contribute(0, NoEvent, func() float64 { return 5 })
	c.Contribute(1, NoEvent, func() float64 { return 3 })
	s.MustRun()
	if !s.Triggered(c.Done()) || c.Result() != 3 {
		t.Errorf("min = %v", c.Result())
	}
}

func TestCollectiveLatencyModel(t *testing.T) {
	cfg := smallConfig(8)
	cfg.HopLatency = Microseconds(1)
	s := MustNewSim(cfg)
	if got := s.CollectiveLatency(1); got != 0 {
		t.Errorf("1-node collective latency = %v", got)
	}
	if got := s.CollectiveLatency(8); got != Microseconds(3) {
		t.Errorf("8-node collective latency = %v, want 3us", got)
	}
	if got := s.CollectiveLatency(1024); got != Microseconds(10) {
		t.Errorf("1024-node collective latency = %v, want 10us", got)
	}
}

func TestAfterEvent(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	e := s.NewUserEvent()
	d := s.AfterEvent(e, Microseconds(7))
	var at Time = -1
	s.OnTrigger(d, func() { at = s.Now() })
	s.After(Microseconds(3), func() { s.Trigger(e) })
	s.MustRun()
	if at != Microseconds(10) {
		t.Errorf("delayed event at %v", at)
	}
	if s.AfterEvent(e, 0) != e {
		t.Error("zero delay should return the same event")
	}
}

func TestNodeBusyAccounting(t *testing.T) {
	s := MustNewSim(smallConfig(1))
	n := s.Node(0)
	n.Proc(0).Launch(NoEvent, Microseconds(10), nil)
	n.Proc(1).Launch(NoEvent, Microseconds(5), nil)
	s.MustRun()
	if n.BusyTime() != Microseconds(15) {
		t.Errorf("busy = %v", n.BusyTime())
	}
}
