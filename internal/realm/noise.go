package realm

// NoiseFn scales a task's duration for a given (node, iteration) pair,
// modeling OS noise and load imbalance — the phenomenon that makes bulk-
// synchronous codes lose efficiency at scale (every iteration waits for the
// slowest node). Implementations must be deterministic.
type NoiseFn func(node, iter int) float64

// SpikeNoise returns a NoiseFn where a deterministic pseudo-random prob
// fraction of (node, iteration) pairs run ampl slower (factor 1+ampl), the
// heavy-tail noise profile of real clusters. salt decorrelates different
// runs' spike placement.
func SpikeNoise(prob, ampl float64, salt uint64) NoiseFn {
	if prob <= 0 || ampl <= 0 {
		return nil
	}
	threshold := uint64(prob * (1 << 32))
	return func(node, iter int) float64 {
		h := splitmix(uint64(node)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xbf58476d1ce4e5b9 ^ salt)
		if h&0xffffffff < threshold {
			return 1 + ampl
		}
		return 1
	}
}

// splitmix is the splitmix64 finalizer, a fast deterministic hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
