package realm

import (
	"strings"
	"testing"
)

// TestExecAdaptersOnSim drives the Sim exclusively through the
// backend-neutral Exec interface: the node-ID-based adapters must behave
// exactly like the Node/Proc methods they wrap.
func TestExecAdaptersOnSim(t *testing.T) {
	var x Exec = MustNewSim(DefaultConfig(2))
	if x.Backend() != "des" {
		t.Fatalf("Backend = %q", x.Backend())
	}
	if x.Nodes() != 2 {
		t.Fatalf("Nodes = %d", x.Nodes())
	}
	kernel := false
	done := x.LaunchOn(1, NoEvent, Microseconds(3), func() { kernel = true })
	moved := x.CopyBytes(0, 1, 1<<20, done, nil)
	var ctlSaw Time
	x.SpawnOn("ctl", 0, 0, func(a Agent) {
		a.WaitEvent(moved)
		ctlSaw = a.Now()
	})
	elapsed, err := x.Drive()
	if err != nil {
		t.Fatal(err)
	}
	if !kernel {
		t.Fatal("kernel did not run")
	}
	if ctlSaw == 0 || elapsed < ctlSaw {
		t.Fatalf("ctlSaw=%v elapsed=%v", ctlSaw, elapsed)
	}
	if st := x.Stats(); st.WallNanos != 0 {
		t.Fatalf("DES WallNanos = %d, want 0 (virtual clock)", st.WallNanos)
	}
}

// TestSetTimePolicy pins the engine/time-policy split: swapping the policy
// reshapes virtual copy times without touching the engine, and restoring
// the default reproduces the modeled formulas exactly.
func TestSetTimePolicy(t *testing.T) {
	const bytes = 1 << 20
	run := func(policy TimePolicy) Time {
		s := MustNewSim(DefaultConfig(2))
		s.SetTimePolicy(policy)
		var arrive Time
		ev := s.CopyBytes(0, 1, bytes, NoEvent, nil)
		s.OnTrigger(ev, func() { arrive = s.Now() })
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arrive
	}
	modeled := run(nil) // nil restores the default ModeledTime
	fixed := run(flatPolicy{})
	if modeled == fixed {
		t.Fatalf("policy swap had no effect (both %v)", modeled)
	}
	if want := Microseconds(7); fixed != want {
		t.Fatalf("flat policy arrival = %v, want %v", fixed, want)
	}
	cfg := DefaultConfig(2)
	mt := ModeledTime{Cfg: cfg}
	if want := mt.RemoteTransfer(bytes) + mt.RemoteLatency(); modeled != want {
		t.Fatalf("modeled arrival = %v, want %v", modeled, want)
	}
}

// flatPolicy charges a constant for everything — the simplest possible
// alternative policy.
type flatPolicy struct{}

func (flatPolicy) TaskDuration(d Time) Time  { return d }
func (flatPolicy) LocalCopy(int64) Time      { return Microseconds(7) }
func (flatPolicy) RemoteTransfer(int64) Time { return Microseconds(5) }
func (flatPolicy) RemoteLatency() Time       { return Microseconds(2) }
func (flatPolicy) CollectiveLatency(int) Time {
	return Microseconds(1)
}

// TestUnsupportedError pins the structured error's text: callers match on
// the type, humans read the message.
func TestUnsupportedError(t *testing.T) {
	err := &UnsupportedError{Backend: "native", Op: "fault injection"}
	if !strings.Contains(err.Error(), "fault injection") || !strings.Contains(err.Error(), "native") {
		t.Fatalf("Error() = %q", err.Error())
	}
}
