package realm

import "fmt"

// This file defines the backend-neutral execution interface: the subset of
// machine operations the engines (internal/spmd, internal/rt) and the
// benchmark harness are written against. The DES (*Sim) and the native
// goroutine backend (internal/realm/native.Machine) both implement Exec, so
// an engine runs identically on a simulated machine or on real cores — the
// event graph it builds is the same; only what "time" means differs.
//
// The interface is deliberately node-ID based (LaunchOn, CopyBytes) rather
// than object based (Node.LaunchAuto, Copy(*Node, *Node)): handles that are
// plain integers serialize into traces, survive failover remapping, and
// leave each backend free to represent a node however it likes.

// Exec is a machine that can run an engine: spawn control agents, launch
// work items, move bytes between nodes, and order everything through
// one-shot events. Exactly the event semantics of the DES apply: events
// trigger once, continuations run synchronously at trigger, NoEvent is
// permanently triggered.
//
// *Sim implements Exec with virtual time charged by its TimePolicy;
// native.Machine implements it on real goroutines with wall-clock time.
type Exec interface {
	// Backend names the implementation ("des", "native") for diagnostics
	// and capability errors.
	Backend() string
	// Config returns the machine description the backend was built from.
	Config() Config
	// Nodes returns the node count.
	Nodes() int
	// Now returns the backend's notion of current time: virtual nanoseconds
	// on the DES, wall-clock nanoseconds since construction on native.
	Now() Time
	// Stats returns a snapshot of the machine-wide counters.
	Stats() Stats

	// NewUserEvent creates an untriggered event.
	NewUserEvent() Event
	// ReserveEvents creates n untriggered events with contiguous handles
	// and returns the first (NoEvent when n <= 0).
	ReserveEvents(n int) Event
	// Trigger fires a user event; continuations run immediately in
	// registration order. Triggering twice panics.
	Trigger(e Event)
	// Triggered reports whether e has fired.
	Triggered(e Event) bool
	// OnTrigger runs fn when e fires (immediately if it already has).
	OnTrigger(e Event, fn func())
	// Merge returns an event that triggers once all inputs have triggered.
	// The inputs slice is not retained.
	Merge(evs ...Event) Event

	// SpawnOn starts fn as a long-running control agent bound to the given
	// node and processor.
	SpawnOn(name string, node, proc int, fn func(Agent)) Agent
	// LaunchOn schedules a work item on node: once pre triggers, the item
	// runs for dur (a modeled duration; native backends execute body's real
	// work instead), then body (if non-nil) runs and the returned event
	// fires.
	LaunchOn(node int, pre Event, dur Time, body func()) Event
	// CopyBytes moves bytes from node src to node dst: after pre triggers
	// the transfer is performed (modeled wire cost on the DES, a real
	// shared-memory copy by body on native), body runs at the destination,
	// and the returned event fires.
	CopyBytes(src, dst int, bytes int64, pre Event, body func()) Event

	// Barrier creates a single-use phase barrier expecting n arrivals.
	Barrier(n int) BarrierOp
	// Collective creates a dynamic collective over n participants folding
	// contributed values in participant-index order.
	Collective(n int, identity float64, fold func(acc, v float64) float64) CollectiveOp

	// Drive runs the machine to completion — until every agent has finished
	// and no work items remain — and returns the final time.
	Drive() (Time, error)
}

// Agent is a long-running thread of control executing on a backend: the
// implicit program's main task, a CR shard's control loop. On the DES it is
// a cooperatively scheduled *Thread; on the native backend it is a real
// goroutine.
type Agent interface {
	// Name returns the agent's diagnostic name.
	Name() string
	// Now returns the backend's current time.
	Now() Time
	// WaitEvent blocks the agent until e triggers.
	WaitEvent(e Event)
	// Elapse charges d of busy time on the agent's processor (a no-op on
	// backends where time is real: the agent's actual work is its cost).
	Elapse(d Time)
	// Sleep advances the agent by d without occupying the processor (a
	// no-op on wall-clock backends).
	Sleep(d Time)
}

// BarrierOp is a single-use phase barrier: once the expected number of
// arrivals have registered, its completion event fires.
type BarrierOp interface {
	// Arrive registers an arrival once pre triggers.
	Arrive(pre Event)
	// Done returns the event that fires when the barrier completes.
	Done() Event
}

// CollectiveOp is a dynamic collective (§4.4): participants contribute
// scalar values, and once all are in they are folded in participant-index
// order — so the floating-point result is bitwise deterministic on every
// backend.
type CollectiveOp interface {
	// Contribute registers participant idx's value once pre triggers; value
	// is evaluated at that moment. Each participant contributes once.
	Contribute(idx int, pre Event, value func() float64)
	// Done returns the completion event.
	Done() Event
	// Result returns the values folded in index order; valid once Done has
	// triggered.
	Result() float64
}

// FaultExec is the fault-tolerance extension of Exec: the operations the
// recovery layer (internal/spmd's checkpoint/restart) needs beyond plain
// execution. Both backends implement it — the DES with virtual-time fault
// schedules, the native machine with seeded logical-point injection over
// real goroutines — so the same failover protocol runs over modeled and
// real execution alike. Engines reach it through a type assertion on their
// Exec; a backend that does not implement it gets a structured
// UnsupportedError instead of a mid-run panic.
type FaultExec interface {
	Exec

	// InjectFaults installs a fault plan before Drive (at most once). A
	// backend that supports only part of the plan's feature set rejects the
	// unsupported remainder with a precise *UnsupportedError.
	InjectFaults(fp FaultPlan) error
	// FaultStats returns the counters of faults injected so far.
	FaultStats() FaultStats
	// Crashes returns the node crashes that actually occurred. The DES
	// reports them in virtual-time order; the native backend sorts by node
	// (concurrent crashes have no total wall-clock order).
	Crashes() []NodeCrash

	// NodeFailed reports whether the node has fail-stopped.
	NodeFailed(node int) bool
	// NodeFailEvent returns the event that fires when (or fired because) the
	// node crashes. Safe to call from any agent.
	NodeFailEvent(node int) Event
	// KillAgent terminates a control agent at its next scheduling point, as
	// when the processor running it is lost. The agent unwinds with the
	// thread-kill sentinel (IsThreadKilled); its in-flight work items may
	// still complete. Killing a finished or already-killed agent is a no-op.
	KillAgent(a Agent)
	// Quiesce blocks the calling agent until every in-flight work item has
	// completed and every killed agent has finished unwinding. The recovery
	// layer calls it before restoring state so that zombie work from an
	// abandoned epoch cannot race the restore. A no-op on the DES, whose
	// scheduler never runs two things at once.
	Quiesce()
	// ShipTrace transfers a captured execution trace from node src to node
	// dst as an ordinary costed message, counted separately in Stats so the
	// recovery protocol's trace traffic stays visible.
	ShipTrace(src, dst int, bytes int64, pre Event) Event
}

// AggExec is the copy-aggregation extension of Exec: a backend that can
// account a coalesced transfer — several copy pairs toward one destination
// merged into a single message — as one unit. CopyAgg behaves exactly like
// CopyBytes for the summed payload (one latency charge, one fault draw, one
// dispatch) and additionally maintains the aggregation counters in Stats.
// Engines reach it through a type assertion and fall back to plain
// CopyBytes on backends that do not implement it, so aggregation degrades
// to correct-but-uncounted rather than failing.
type AggExec interface {
	Exec

	// CopyAgg moves the merged payload of a members-pair aggregation group
	// from node src to node dst once pre triggers; body performs the member
	// writes in capture order on backends that execute for real. Groups
	// with at least two members count toward Stats.AggGroups, and remote
	// ones credit members-1 avoided messages to Stats.AggSavedMessages.
	CopyAgg(src, dst int, bytes int64, members int, pre Event, body func()) Event
}

// BlockedAgent describes one stalled agent in a HangError: its name, the
// event it is parked on, and the primitive that owns that event.
type BlockedAgent struct {
	Name      string
	Waiting   Event
	Primitive string // "barrier", "collective", "copy", "task", "sync", "merge", "event"
}

// HangError is the native backend's analogue of the DES DeadlockError: the
// wall-clock watchdog observed no progress — every live agent blocked, no
// work item or sleeper in flight, no event triggered — for a full timeout
// window. It names the blocked agents and what they are parked on, turning
// a would-be test timeout into a structured error.
type HangError struct {
	Timeout Time // the watchdog window that elapsed with no progress
	Blocked []BlockedAgent
}

func (e *HangError) Error() string {
	s := fmt.Sprintf("realm: native execution stalled (no progress for %.3fs); blocked agents:", e.Timeout.Seconds())
	for _, b := range e.Blocked {
		s += " " + b.Name + "(" + b.Primitive + ")"
	}
	return s
}

// UnsupportedError reports an operation the selected backend does not
// implement (e.g. a virtual-time crash schedule on the native backend,
// which has no virtual clock to schedule against).
type UnsupportedError struct {
	Backend string // backend name, as reported by Exec.Backend
	Op      string // the unsupported operation
}

func (e *UnsupportedError) Error() string {
	return "realm: " + e.Op + " is not supported on the " + e.Backend + " backend"
}

// Interface conformance: the DES is an Exec, its threads are Agents, and
// its synchronization primitives implement the backend-neutral op types.
var (
	_ Exec         = (*Sim)(nil)
	_ FaultExec    = (*Sim)(nil)
	_ AggExec      = (*Sim)(nil)
	_ Agent        = (*Thread)(nil)
	_ BarrierOp    = (*Barrier)(nil)
	_ CollectiveOp = (*Collective)(nil)
)

// Backend implements Exec.
func (s *Sim) Backend() string { return "des" }

// SpawnOn implements Exec by binding the agent to the node's proc-th
// processor.
func (s *Sim) SpawnOn(name string, node, proc int, fn func(Agent)) Agent {
	return s.Spawn(name, s.Node(node).Proc(proc), func(t *Thread) { fn(t) })
}

// LaunchOn implements Exec via the node's earliest-free-processor mapping
// (Node.LaunchAuto). When the installed fault plan carries logical-point
// crash schedules, the issue is also a crash opportunity: the per-node
// launch counter advances, and if this is the scheduled launch the node
// fail-stops here — before the launch lands, so the launch itself is lost
// (LaunchAuto sees a failed node), exactly as on the native backend.
func (s *Sim) LaunchOn(node int, pre Event, dur Time, body func()) Event {
	if s.launchCrashAt != nil && !s.Node(node).failed {
		s.launchSeq[node]++
		if at, ok := s.launchCrashAt[node]; ok && s.launchSeq[node] == at {
			s.crashNode(node)
		}
	}
	return s.Node(node).LaunchAuto(pre, dur, body)
}

// CopyBytes implements Exec.
func (s *Sim) CopyBytes(src, dst int, bytes int64, pre Event, body func()) Event {
	return s.Copy(s.Node(src), s.Node(dst), bytes, pre, body)
}

// Barrier implements Exec.
func (s *Sim) Barrier(n int) BarrierOp { return s.NewBarrier(n) }

// Collective implements Exec.
func (s *Sim) Collective(n int, identity float64, fold func(acc, v float64) float64) CollectiveOp {
	return s.NewCollective(n, identity, fold)
}

// Drive implements Exec by running the event loop to completion.
func (s *Sim) Drive() (Time, error) { return s.Run() }

// NodeFailed implements FaultExec.
func (s *Sim) NodeFailed(node int) bool { return s.Node(node).Failed() }

// NodeFailEvent implements FaultExec.
func (s *Sim) NodeFailEvent(node int) Event { return s.Node(node).FailEvent() }

// KillAgent implements FaultExec on the DES's simulated threads.
func (s *Sim) KillAgent(a Agent) {
	if t, ok := a.(*Thread); ok {
		s.Kill(t)
	}
}

// Quiesce implements FaultExec as a no-op: the DES never runs two things at
// once, so an abandoned epoch's work cannot race a restore.
func (s *Sim) Quiesce() {}
