package realm

// This file defines the backend-neutral execution interface: the subset of
// machine operations the engines (internal/spmd, internal/rt) and the
// benchmark harness are written against. The DES (*Sim) and the native
// goroutine backend (internal/realm/native.Machine) both implement Exec, so
// an engine runs identically on a simulated machine or on real cores — the
// event graph it builds is the same; only what "time" means differs.
//
// The interface is deliberately node-ID based (LaunchOn, CopyBytes) rather
// than object based (Node.LaunchAuto, Copy(*Node, *Node)): handles that are
// plain integers serialize into traces, survive failover remapping, and
// leave each backend free to represent a node however it likes.

// Exec is a machine that can run an engine: spawn control agents, launch
// work items, move bytes between nodes, and order everything through
// one-shot events. Exactly the event semantics of the DES apply: events
// trigger once, continuations run synchronously at trigger, NoEvent is
// permanently triggered.
//
// *Sim implements Exec with virtual time charged by its TimePolicy;
// native.Machine implements it on real goroutines with wall-clock time.
type Exec interface {
	// Backend names the implementation ("des", "native") for diagnostics
	// and capability errors.
	Backend() string
	// Config returns the machine description the backend was built from.
	Config() Config
	// Nodes returns the node count.
	Nodes() int
	// Now returns the backend's notion of current time: virtual nanoseconds
	// on the DES, wall-clock nanoseconds since construction on native.
	Now() Time
	// Stats returns a snapshot of the machine-wide counters.
	Stats() Stats

	// NewUserEvent creates an untriggered event.
	NewUserEvent() Event
	// ReserveEvents creates n untriggered events with contiguous handles
	// and returns the first (NoEvent when n <= 0).
	ReserveEvents(n int) Event
	// Trigger fires a user event; continuations run immediately in
	// registration order. Triggering twice panics.
	Trigger(e Event)
	// Triggered reports whether e has fired.
	Triggered(e Event) bool
	// OnTrigger runs fn when e fires (immediately if it already has).
	OnTrigger(e Event, fn func())
	// Merge returns an event that triggers once all inputs have triggered.
	// The inputs slice is not retained.
	Merge(evs ...Event) Event

	// SpawnOn starts fn as a long-running control agent bound to the given
	// node and processor.
	SpawnOn(name string, node, proc int, fn func(Agent)) Agent
	// LaunchOn schedules a work item on node: once pre triggers, the item
	// runs for dur (a modeled duration; native backends execute body's real
	// work instead), then body (if non-nil) runs and the returned event
	// fires.
	LaunchOn(node int, pre Event, dur Time, body func()) Event
	// CopyBytes moves bytes from node src to node dst: after pre triggers
	// the transfer is performed (modeled wire cost on the DES, a real
	// shared-memory copy by body on native), body runs at the destination,
	// and the returned event fires.
	CopyBytes(src, dst int, bytes int64, pre Event, body func()) Event

	// Barrier creates a single-use phase barrier expecting n arrivals.
	Barrier(n int) BarrierOp
	// Collective creates a dynamic collective over n participants folding
	// contributed values in participant-index order.
	Collective(n int, identity float64, fold func(acc, v float64) float64) CollectiveOp

	// Drive runs the machine to completion — until every agent has finished
	// and no work items remain — and returns the final time.
	Drive() (Time, error)
}

// Agent is a long-running thread of control executing on a backend: the
// implicit program's main task, a CR shard's control loop. On the DES it is
// a cooperatively scheduled *Thread; on the native backend it is a real
// goroutine.
type Agent interface {
	// Name returns the agent's diagnostic name.
	Name() string
	// Now returns the backend's current time.
	Now() Time
	// WaitEvent blocks the agent until e triggers.
	WaitEvent(e Event)
	// Elapse charges d of busy time on the agent's processor (a no-op on
	// backends where time is real: the agent's actual work is its cost).
	Elapse(d Time)
	// Sleep advances the agent by d without occupying the processor (a
	// no-op on wall-clock backends).
	Sleep(d Time)
}

// BarrierOp is a single-use phase barrier: once the expected number of
// arrivals have registered, its completion event fires.
type BarrierOp interface {
	// Arrive registers an arrival once pre triggers.
	Arrive(pre Event)
	// Done returns the event that fires when the barrier completes.
	Done() Event
}

// CollectiveOp is a dynamic collective (§4.4): participants contribute
// scalar values, and once all are in they are folded in participant-index
// order — so the floating-point result is bitwise deterministic on every
// backend.
type CollectiveOp interface {
	// Contribute registers participant idx's value once pre triggers; value
	// is evaluated at that moment. Each participant contributes once.
	Contribute(idx int, pre Event, value func() float64)
	// Done returns the completion event.
	Done() Event
	// Result returns the values folded in index order; valid once Done has
	// triggered.
	Result() float64
}

// UnsupportedError reports an operation the selected backend does not
// implement (e.g. fault injection or checkpoint/restart recovery on the
// native backend, which has no virtual machine state to fail or restore).
type UnsupportedError struct {
	Backend string // backend name, as reported by Exec.Backend
	Op      string // the unsupported operation
}

func (e *UnsupportedError) Error() string {
	return "realm: " + e.Op + " is not supported on the " + e.Backend + " backend"
}

// Interface conformance: the DES is an Exec, its threads are Agents, and
// its synchronization primitives implement the backend-neutral op types.
var (
	_ Exec         = (*Sim)(nil)
	_ Agent        = (*Thread)(nil)
	_ BarrierOp    = (*Barrier)(nil)
	_ CollectiveOp = (*Collective)(nil)
)

// Backend implements Exec.
func (s *Sim) Backend() string { return "des" }

// SpawnOn implements Exec by binding the agent to the node's proc-th
// processor.
func (s *Sim) SpawnOn(name string, node, proc int, fn func(Agent)) Agent {
	return s.Spawn(name, s.Node(node).Proc(proc), func(t *Thread) { fn(t) })
}

// LaunchOn implements Exec via the node's earliest-free-processor mapping
// (Node.LaunchAuto).
func (s *Sim) LaunchOn(node int, pre Event, dur Time, body func()) Event {
	return s.Node(node).LaunchAuto(pre, dur, body)
}

// CopyBytes implements Exec.
func (s *Sim) CopyBytes(src, dst int, bytes int64, pre Event, body func()) Event {
	return s.Copy(s.Node(src), s.Node(dst), bytes, pre, body)
}

// Barrier implements Exec.
func (s *Sim) Barrier(n int) BarrierOp { return s.NewBarrier(n) }

// Collective implements Exec.
func (s *Sim) Collective(n int, identity float64, fold func(acc, v float64) float64) CollectiveOp {
	return s.NewCollective(n, identity, fold)
}

// Drive implements Exec by running the event loop to completion.
func (s *Sim) Drive() (Time, error) { return s.Run() }
