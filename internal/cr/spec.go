package cr

// Specialization tables: the compile-time half of cross-shard trace
// sharing. Every shard of a compiled loop executes the same body over a
// different color block, so everything the SPMD executor's per-shard plan
// capture used to resolve at run time that does NOT depend on the shard or
// on the node assignment — copy pair grouping and per-shard work lists,
// pair volumes, pair endpoint shards, kernel cost volumes, owned-block
// offsets — is a pure function of the compiled plan. The compiler emits it
// once, here, and the executor instantiates each shard's concrete plan by
// table substitution (internal/spmd/plan.go) instead of re-deriving it
// per shard per run state.
//
// The tables are also what the executor's *interpreter* walks (the work
// lists replace the per-runState copy schedules the executor used to
// build), so interpretation, per-shard capture, and specialization all read
// the same precomputed partition of the copy work — one source of truth,
// statically checked by internal/verify.CheckSpec against a direct
// recomputation from the pair lists.

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/region"
)

// SpecWork is the slice of one copy op one shard executes within one
// destination group: the group's absolute pair range, whether this shard
// owns the destination (consumer), and the pairs it produces.
type SpecWork struct {
	// GroupStart/GroupEnd delimit a maximal run of pairs sharing one
	// destination color within CopyOp.Pairs.
	GroupStart, GroupEnd int
	// ProdPairs are the absolute pair indices this shard owns as producer,
	// ascending.
	ProdPairs []int
	// Consumer marks the shard owning the group's destination color.
	Consumer bool
}

// AggPair names one member of an aggregation group: pair Pair of the copy
// op at body index Op.
type AggPair struct {
	// Op is the member's copy op's index in Compiled.Body.
	Op int32
	// Pair is the member's absolute index in that op's CopyOp.Pairs.
	Pair int32
}

// AggGroup is one coalesced transfer of an exchange phase: every pair one
// shard produces toward one destination shard across the phase's copy
// ops, in phase-op-then-ascending-pair order — the exact order the
// unaggregated executor issues them, so a merged body that runs the
// member writes in slice order reproduces the unaggregated stores
// bitwise. The grouping key (producing shard, destination shard) is
// placement-independent: shards, not nodes, so the tables survive
// failover rebinding and cross-shard trace sharing unchanged.
type AggGroup struct {
	// DstShard is the shard owning every member pair's destination color.
	DstShard int32
	// Members lists the group's pairs in issue order.
	Members []AggPair
}

// AggPhase is one exchange phase: a maximal run of consecutive copy ops
// in Compiled.Body that touch pairwise-disjoint instance sets. Any launch
// or scalar statement breaks the run — a task between two copies may
// consume the first copy's data, so merging across it could deadlock the
// merged message against the task. So does a copy op whose source or
// destination partition aliases an earlier phase op's destination (or
// whose destination aliases an earlier source): the later op's
// synchronization then waits on the earlier op's completions, and folding
// both into one message would make the message wait on itself. The phase
// is the sync epoch of the aggregation grouping key: pairs of different
// phases never share a group, because a later phase's sources may depend
// on an earlier phase's arrivals.
type AggPhase struct {
	// Start and End delimit the phase's body indices: Body[Start:End] are
	// all copy ops.
	Start, End int
	// ByShard[s] lists shard s's coalesced transfers: its produced pairs
	// across the phase's ops binned by destination shard, groups in
	// first-touch order, members in issue order. Built unconditionally (a
	// pure function of the pair lists), consulted only when Options.Agg.
	ByShard [][]AggGroup
}

// CopySpec is the shard-indexed schedule of one copy op.
type CopySpec struct {
	// PerShard[s] lists shard s's work, in group order.
	PerShard [][]SpecWork
	// PairVols[k] is Pairs[k].Overlap.Volume(); the executor scales it by
	// element size and field count.
	PairVols []int64
	// SrcShard/DstShard[k] are the shards owning Pairs[k]'s source and
	// destination colors.
	SrcShard, DstShard []int32
	// ProdWait/ProdArrive[k] are the producer's sync endpoints within
	// Pairs[k]'s two-slot block: the slot it waits on before transferring
	// (0, the war slot — the consumer's write-after-read release) and the
	// slot it arrives at on completion (1, the done slot consumers and the
	// fold chain wait on). The liveness certifier replays the wait-for
	// graph from these endpoints, so a table corrupted to swap them is
	// rejected as a deadlock, not merely a race.
	ProdWait, ProdArrive []int8
}

// LaunchSpec is the shard-independent cost table of one launch op.
type LaunchSpec struct {
	// CostVol[i] is the cost-argument subregion volume of Domain[i] (dense
	// by ColorIdx); the executor turns it into a kernel duration.
	CostVol []int64
}

// OpSpec pairs a body op with its specialization table; exactly one field
// is set, mirroring BodyOp.
type OpSpec struct {
	Launch *LaunchSpec
	Copy   *CopySpec
}

// ShareMarker is the compiler's verdict on cross-shard plan sharing: a
// shared capture can be specialized to shard s only when the owned color
// blocks are positionally congruent (every shard owns the same number of
// consecutive colors, so owned index k maps to global color OwnedBase[s]+k
// uniformly). A ragged block partition breaks that, and the executor falls
// back to per-shard capture with Reason as the logged explanation.
type ShareMarker struct {
	Shareable bool
	Reason    string // set when Shareable is false
}

// SpecTable is the full specialization metadata of one compiled loop.
type SpecTable struct {
	Share ShareMarker
	// OwnedBase[s] is the ColorIdx of shard s's first owned color (the lo
	// bound of its block); owned color k of shard s is Domain[OwnedBase[s]+k].
	OwnedBase []int
	// Ops is parallel to Compiled.Body.
	Ops []OpSpec
	// CopyByID indexes the copy specs by CopyOp.ID for the executor's
	// keyed access.
	CopyByID map[int]*CopySpec
	// Phases are the body's exchange phases with their aggregation tables.
	Phases []AggPhase
	// PhaseOf is parallel to Compiled.Body: the index into Phases of the
	// phase containing the op, -1 for non-copy ops. A copy op at index i
	// heads its phase iff Phases[PhaseOf[i]].Start == i; the aggregated
	// executor runs the whole phase at its head and skips the rest.
	PhaseOf []int
}

// buildSpec emits the specialization tables. Called by Compile after
// createShards (ownership fixed) and computeIntersections (pairs fixed).
func (c *Compiled) buildSpec() {
	ns := c.Opts.NumShards
	spec := SpecTable{
		OwnedBase: make([]int, ns),
		Ops:       make([]OpSpec, len(c.Body)),
		CopyByID:  make(map[int]*CopySpec),
	}
	base := 0
	uniform := true
	for s := 0; s < ns; s++ {
		spec.OwnedBase[s] = base
		base += len(c.Owned[s])
		if len(c.Owned[s]) != len(c.Owned[0]) {
			uniform = false
		}
	}
	if uniform {
		spec.Share = ShareMarker{Shareable: true}
	} else {
		spec.Share = ShareMarker{Reason: fmt.Sprintf(
			"ragged shard partition: %d colors over %d shards leaves unequal blocks", len(c.Domain), ns)}
	}
	for i, op := range c.Body {
		switch {
		case op.Launch != nil:
			spec.Ops[i].Launch = c.buildLaunchSpec(op.Launch)
		case op.Copy != nil:
			cs, ok := spec.CopyByID[op.Copy.ID]
			if !ok {
				cs = c.buildCopySpec(op.Copy)
				spec.CopyByID[op.Copy.ID] = cs
			}
			spec.Ops[i].Copy = cs
		}
	}
	c.Spec = spec
	c.buildAggPhases()
}

// AggChainExternal reports whether pair k's fold-chain predecessor is
// produced by another shard — the only chain links an aggregated producer
// still waits on (through the shared per-pair done events). A same-shard
// predecessor is a member of the same aggregation group, ordered by the
// merged body's in-order member writes instead.
func AggChainExternal(cp *CopyOp, cs *CopySpec, k int) bool {
	return k > 0 && cp.Pairs[k-1].Dst == cp.Pairs[k].Dst && cs.SrcShard[k-1] != cs.SrcShard[k]
}

// buildAggPhases scans the body for exchange phases (maximal runs of
// consecutive copy ops) and bins each shard's produced pairs by
// destination shard within each phase. Walking the phase's ops in body
// order and each op's work lists in group order keeps the groups in
// first-touch order and the members in exactly the order the unaggregated
// executor issues them, so a merged body's write order reproduces the
// unaggregated stores bitwise.
//
// A reduction member whose fold-chain predecessor belongs to another shard
// starts a NEW group toward its destination instead of joining the open
// one. Without the split, interleaved chains deadlock the merged schedule
// (message A carries a pair before AND a pair after one of message B's
// pairs in the same fold chain, so each waits the other's completion) and
// reorder the fold (the merged body would apply the later pair before the
// other shard's intervening one). With it, every message holds at most one
// contiguous chain run per destination group, and each message's external
// chain waits point at strictly lower source shards — pairs are sorted by
// source color within a destination group and shard blocks are contiguous,
// so cross-shard chain edges always go low shard to high shard — which
// keeps the message-level wait graph acyclic and the per-destination fold
// order exactly the unaggregated one.
func (c *Compiled) buildAggPhases() {
	ns := c.Opts.NumShards
	spec := &c.Spec
	spec.PhaseOf = make([]int, len(c.Body))
	for i := range spec.PhaseOf {
		spec.PhaseOf[i] = -1
	}
	i := 0
	for i < len(c.Body) {
		if c.Body[i].Copy == nil {
			i++
			continue
		}
		// Extend the phase while the next copy op's partitions stay disjoint
		// from the run's: a destination aliasing an earlier destination (the
		// later op's wars wait the earlier op's dones), a source aliasing an
		// earlier destination (read-after-write), or a destination aliasing
		// an earlier source (write-after-read) all order the ops, and a
		// merged message spanning ordered ops waits on its own completion.
		// Partition identity is a conservative alias test.
		j := i
		var srcs, dsts []region.PartitionID
		for j < len(c.Body) && c.Body[j].Copy != nil {
			cp := c.Body[j].Copy
			s, d := cp.Src.ID(), cp.Dst.ID()
			conflict := false
			for _, pd := range dsts {
				if d == pd || s == pd {
					conflict = true
				}
			}
			for _, ps := range srcs {
				if d == ps {
					conflict = true
				}
			}
			if conflict {
				break
			}
			srcs = append(srcs, s)
			dsts = append(dsts, d)
			j++
		}
		ph := AggPhase{Start: i, End: j, ByShard: make([][]AggGroup, ns)}
		for s := 0; s < ns; s++ {
			touched := map[int32]int{}
			for op := i; op < j; op++ {
				cp := c.Body[op].Copy
				cs := spec.Ops[op].Copy
				reduce := cp.Reduce != region.ReduceNone
				for _, w := range cs.PerShard[s] {
					for _, k := range w.ProdPairs {
						dst := cs.DstShard[k]
						gi, ok := touched[dst]
						if !ok || (reduce && AggChainExternal(cp, cs, k)) {
							ph.ByShard[s] = append(ph.ByShard[s], AggGroup{DstShard: dst})
							gi = len(ph.ByShard[s]) - 1
							touched[dst] = gi
						}
						g := &ph.ByShard[s][gi]
						g.Members = append(g.Members, AggPair{Op: int32(op), Pair: int32(k)})
					}
				}
			}
		}
		for op := i; op < j; op++ {
			spec.PhaseOf[op] = len(spec.Phases)
		}
		spec.Phases = append(spec.Phases, ph)
		i = j
	}
}

func (c *Compiled) buildLaunchSpec(l *ir.Launch) *LaunchSpec {
	ls := &LaunchSpec{CostVol: make([]int64, len(c.Domain))}
	arg := l.Args[l.Task.CostArg]
	for i, col := range c.Domain {
		ls.CostVol[i] = arg.At(col).Volume()
	}
	return ls
}

// buildCopySpec partitions the copy's pair list by shard: pairs are sorted
// by destination color, so each maximal same-destination run is one group;
// the destination's shard consumes the group and each source's shard
// produces its pairs. This is the schedule the executor previously rebuilt
// per run state; hoisted here it is computed once per compilation.
func (c *Compiled) buildCopySpec(cp *CopyOp) *CopySpec {
	ns := c.Opts.NumShards
	pairs := cp.Pairs
	cs := &CopySpec{
		PerShard:   make([][]SpecWork, ns),
		PairVols:   make([]int64, len(pairs)),
		SrcShard:   make([]int32, len(pairs)),
		DstShard:   make([]int32, len(pairs)),
		ProdWait:   make([]int8, len(pairs)),
		ProdArrive: make([]int8, len(pairs)),
	}
	for k, pr := range pairs {
		cs.PairVols[k] = pr.Overlap.Volume()
		cs.SrcShard[k] = int32(c.ShardOf[pr.Src])
		cs.DstShard[k] = int32(c.ShardOf[pr.Dst])
		cs.ProdWait[k] = 0
		cs.ProdArrive[k] = 1
	}
	i := 0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].Dst == pairs[i].Dst {
			j++
		}
		dstShard := int(cs.DstShard[i])
		// touched maps shard -> index into PerShard[shard] for this group,
		// so a shard producing several of the group's pairs appends to one
		// work entry. Keyed lookups only; iteration order never observed.
		touched := map[int]int{}
		get := func(s int) *SpecWork {
			w, ok := touched[s]
			if !ok {
				cs.PerShard[s] = append(cs.PerShard[s], SpecWork{GroupStart: i, GroupEnd: j})
				w = len(cs.PerShard[s]) - 1
				touched[s] = w
			}
			return &cs.PerShard[s][w]
		}
		get(dstShard).Consumer = true
		for k := i; k < j; k++ {
			w := get(int(cs.SrcShard[k]))
			w.ProdPairs = append(w.ProdPairs, k)
		}
		i = j
	}
	return cs
}
