package cr

// Specialization tables: the compile-time half of cross-shard trace
// sharing. Every shard of a compiled loop executes the same body over a
// different color block, so everything the SPMD executor's per-shard plan
// capture used to resolve at run time that does NOT depend on the shard or
// on the node assignment — copy pair grouping and per-shard work lists,
// pair volumes, pair endpoint shards, kernel cost volumes, owned-block
// offsets — is a pure function of the compiled plan. The compiler emits it
// once, here, and the executor instantiates each shard's concrete plan by
// table substitution (internal/spmd/plan.go) instead of re-deriving it
// per shard per run state.
//
// The tables are also what the executor's *interpreter* walks (the work
// lists replace the per-runState copy schedules the executor used to
// build), so interpretation, per-shard capture, and specialization all read
// the same precomputed partition of the copy work — one source of truth,
// statically checked by internal/verify.CheckSpec against a direct
// recomputation from the pair lists.

import (
	"fmt"

	"repro/internal/ir"
)

// SpecWork is the slice of one copy op one shard executes within one
// destination group: the group's absolute pair range, whether this shard
// owns the destination (consumer), and the pairs it produces.
type SpecWork struct {
	// GroupStart/GroupEnd delimit a maximal run of pairs sharing one
	// destination color within CopyOp.Pairs.
	GroupStart, GroupEnd int
	// ProdPairs are the absolute pair indices this shard owns as producer,
	// ascending.
	ProdPairs []int
	// Consumer marks the shard owning the group's destination color.
	Consumer bool
}

// CopySpec is the shard-indexed schedule of one copy op.
type CopySpec struct {
	// PerShard[s] lists shard s's work, in group order.
	PerShard [][]SpecWork
	// PairVols[k] is Pairs[k].Overlap.Volume(); the executor scales it by
	// element size and field count.
	PairVols []int64
	// SrcShard/DstShard[k] are the shards owning Pairs[k]'s source and
	// destination colors.
	SrcShard, DstShard []int32
	// ProdWait/ProdArrive[k] are the producer's sync endpoints within
	// Pairs[k]'s two-slot block: the slot it waits on before transferring
	// (0, the war slot — the consumer's write-after-read release) and the
	// slot it arrives at on completion (1, the done slot consumers and the
	// fold chain wait on). The liveness certifier replays the wait-for
	// graph from these endpoints, so a table corrupted to swap them is
	// rejected as a deadlock, not merely a race.
	ProdWait, ProdArrive []int8
}

// LaunchSpec is the shard-independent cost table of one launch op.
type LaunchSpec struct {
	// CostVol[i] is the cost-argument subregion volume of Domain[i] (dense
	// by ColorIdx); the executor turns it into a kernel duration.
	CostVol []int64
}

// OpSpec pairs a body op with its specialization table; exactly one field
// is set, mirroring BodyOp.
type OpSpec struct {
	Launch *LaunchSpec
	Copy   *CopySpec
}

// ShareMarker is the compiler's verdict on cross-shard plan sharing: a
// shared capture can be specialized to shard s only when the owned color
// blocks are positionally congruent (every shard owns the same number of
// consecutive colors, so owned index k maps to global color OwnedBase[s]+k
// uniformly). A ragged block partition breaks that, and the executor falls
// back to per-shard capture with Reason as the logged explanation.
type ShareMarker struct {
	Shareable bool
	Reason    string // set when Shareable is false
}

// SpecTable is the full specialization metadata of one compiled loop.
type SpecTable struct {
	Share ShareMarker
	// OwnedBase[s] is the ColorIdx of shard s's first owned color (the lo
	// bound of its block); owned color k of shard s is Domain[OwnedBase[s]+k].
	OwnedBase []int
	// Ops is parallel to Compiled.Body.
	Ops []OpSpec
	// CopyByID indexes the copy specs by CopyOp.ID for the executor's
	// keyed access.
	CopyByID map[int]*CopySpec
}

// buildSpec emits the specialization tables. Called by Compile after
// createShards (ownership fixed) and computeIntersections (pairs fixed).
func (c *Compiled) buildSpec() {
	ns := c.Opts.NumShards
	spec := SpecTable{
		OwnedBase: make([]int, ns),
		Ops:       make([]OpSpec, len(c.Body)),
		CopyByID:  make(map[int]*CopySpec),
	}
	base := 0
	uniform := true
	for s := 0; s < ns; s++ {
		spec.OwnedBase[s] = base
		base += len(c.Owned[s])
		if len(c.Owned[s]) != len(c.Owned[0]) {
			uniform = false
		}
	}
	if uniform {
		spec.Share = ShareMarker{Shareable: true}
	} else {
		spec.Share = ShareMarker{Reason: fmt.Sprintf(
			"ragged shard partition: %d colors over %d shards leaves unequal blocks", len(c.Domain), ns)}
	}
	for i, op := range c.Body {
		switch {
		case op.Launch != nil:
			spec.Ops[i].Launch = c.buildLaunchSpec(op.Launch)
		case op.Copy != nil:
			cs, ok := spec.CopyByID[op.Copy.ID]
			if !ok {
				cs = c.buildCopySpec(op.Copy)
				spec.CopyByID[op.Copy.ID] = cs
			}
			spec.Ops[i].Copy = cs
		}
	}
	c.Spec = spec
}

func (c *Compiled) buildLaunchSpec(l *ir.Launch) *LaunchSpec {
	ls := &LaunchSpec{CostVol: make([]int64, len(c.Domain))}
	arg := l.Args[l.Task.CostArg]
	for i, col := range c.Domain {
		ls.CostVol[i] = arg.At(col).Volume()
	}
	return ls
}

// buildCopySpec partitions the copy's pair list by shard: pairs are sorted
// by destination color, so each maximal same-destination run is one group;
// the destination's shard consumes the group and each source's shard
// produces its pairs. This is the schedule the executor previously rebuilt
// per run state; hoisted here it is computed once per compilation.
func (c *Compiled) buildCopySpec(cp *CopyOp) *CopySpec {
	ns := c.Opts.NumShards
	pairs := cp.Pairs
	cs := &CopySpec{
		PerShard:   make([][]SpecWork, ns),
		PairVols:   make([]int64, len(pairs)),
		SrcShard:   make([]int32, len(pairs)),
		DstShard:   make([]int32, len(pairs)),
		ProdWait:   make([]int8, len(pairs)),
		ProdArrive: make([]int8, len(pairs)),
	}
	for k, pr := range pairs {
		cs.PairVols[k] = pr.Overlap.Volume()
		cs.SrcShard[k] = int32(c.ShardOf[pr.Src])
		cs.DstShard[k] = int32(c.ShardOf[pr.Dst])
		cs.ProdWait[k] = 0
		cs.ProdArrive[k] = 1
	}
	i := 0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].Dst == pairs[i].Dst {
			j++
		}
		dstShard := int(cs.DstShard[i])
		// touched maps shard -> index into PerShard[shard] for this group,
		// so a shard producing several of the group's pairs appends to one
		// work entry. Keyed lookups only; iteration order never observed.
		touched := map[int]int{}
		get := func(s int) *SpecWork {
			w, ok := touched[s]
			if !ok {
				cs.PerShard[s] = append(cs.PerShard[s], SpecWork{GroupStart: i, GroupEnd: j})
				w = len(cs.PerShard[s]) - 1
				touched[s] = w
			}
			return &cs.PerShard[s][w]
		}
		get(dstShard).Consumer = true
		for k := i; k < j; k++ {
			w := get(int(cs.SrcShard[k]))
			w.ProdPairs = append(w.ProdPairs, k)
		}
		i = j
	}
	return cs
}
