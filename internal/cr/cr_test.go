package cr

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/region"
)

func compileFigure2(t *testing.T, nShards int) (*progtest.Figure2, *Compiled) {
	t.Helper()
	f := progtest.NewFigure2(48, 8, 3)
	c, err := Compile(f.Prog, f.Loop, Options{NumShards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

func TestCompileFigure2Shape(t *testing.T) {
	f, c := compileFigure2(t, 4)
	// The transformed body must be exactly Figure 4b: TF, copy PB->QB, TG.
	if len(c.Body) != 3 {
		t.Fatalf("body has %d ops: %v", len(c.Body), kinds(c))
	}
	if c.Body[0].Launch == nil || c.Body[0].Launch.Task.Name != "TF" {
		t.Error("op 0 should be the TF launch")
	}
	cp := c.Body[1].Copy
	if cp == nil || cp.Src != f.PB || cp.Dst != f.QB || cp.Reduce != region.ReduceNone {
		t.Fatalf("op 1 should be the PB->QB copy, got %v", c.Body[1].Kind())
	}
	if c.Body[2].Launch == nil || c.Body[2].Launch.Task.Name != "TG" {
		t.Error("op 2 should be the TG launch")
	}
	// PA is disjoint from everything else used: no copies for PA (§3.1).
	for _, op := range c.Body {
		if op.Copy != nil && (op.Copy.Src == f.PA || op.Copy.Dst == f.PA) {
			t.Error("no copies should involve PA")
		}
	}
	// Each QB[j] (shifted block) overlaps its own block and the next:
	// 2 pairs per destination color.
	if len(cp.Pairs) != 16 {
		t.Errorf("PB->QB pairs = %d, want 16", len(cp.Pairs))
	}
	// Pairs must be grouped by destination with ascending sources.
	for i := 1; i < len(cp.Pairs); i++ {
		a, b := cp.Pairs[i-1], cp.Pairs[i]
		if b.Dst.Less(a.Dst) || (a.Dst == b.Dst && b.Src.Less(a.Src)) {
			t.Fatalf("pairs not sorted by (dst, src): %v then %v", a, b)
		}
	}
	// Finalization reads back the disjoint written partitions PA and PB.
	if len(c.WrittenDisjoint) != 2 {
		t.Errorf("WrittenDisjoint = %v", names(c.WrittenDisjoint))
	}
}

func kinds(c *Compiled) []string {
	var out []string
	for _, op := range c.Body {
		out = append(out, op.Kind())
	}
	return out
}

func names(ps []*region.Partition) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Name())
	}
	return out
}

func TestCompileShardOwnership(t *testing.T) {
	_, c := compileFigure2(t, 3)
	if len(c.Owned) != 3 {
		t.Fatalf("shards = %d", len(c.Owned))
	}
	total := 0
	seen := map[geometry.Point]bool{}
	for s, block := range c.Owned {
		total += len(block)
		for _, col := range block {
			if seen[col] {
				t.Errorf("color %v owned twice", col)
			}
			seen[col] = true
			if c.ShardOf[col] != s {
				t.Errorf("ShardOf[%v] = %d, want %d", col, c.ShardOf[col], s)
			}
		}
	}
	if total != len(c.Domain) {
		t.Errorf("shards own %d of %d colors", total, len(c.Domain))
	}
	// Blocks must be contiguous and balanced within one.
	if len(c.Owned[0]) < 2 || len(c.Owned[0]) > 3 {
		t.Errorf("unbalanced first shard: %d colors", len(c.Owned[0]))
	}
}

func TestCompileClampsShards(t *testing.T) {
	_, c := compileFigure2(t, 100)
	if c.Opts.NumShards != 8 {
		t.Errorf("shards = %d, want clamped to 8 colors", c.Opts.NumShards)
	}
}

func TestCompileRegionReduceInsertsReductionCopies(t *testing.T) {
	f := progtest.NewRegionReduce(32, 4, 2)
	c, err := Compile(f.Prog, f.Loop, Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reduceCopies, plainCopies []*CopyOp
	for _, op := range c.Body {
		if op.Copy == nil {
			continue
		}
		if op.Copy.Reduce != region.ReduceNone {
			reduceCopies = append(reduceCopies, op.Copy)
		} else {
			plainCopies = append(plainCopies, op.Copy)
		}
	}
	// The fold into PR (read later, disjoint, finalized) must survive; the
	// fold into IMG's own instances is dead (IMG is never read) and must be
	// removed by DCE.
	if len(reduceCopies) != 1 {
		t.Fatalf("reduce copies = %d, want 1 (IMG->PR)", len(reduceCopies))
	}
	if reduceCopies[0].Dst.Name() != "PR" {
		t.Errorf("reduce copy dst = %s", reduceCopies[0].Dst.Name())
	}
	if reduceCopies[0].SrcLaunch == nil {
		t.Error("reduction copy must reference its source launch's temp")
	}
	if c.Report.DeadRemoved < 1 {
		t.Errorf("expected the IMG->IMG fold to be dead-copy eliminated: %+v", c.Report)
	}
	if len(plainCopies) != 0 {
		t.Errorf("unexpected plain copies: %d", len(plainCopies))
	}
}

func TestCompileRedundantCopyElimination(t *testing.T) {
	// Two consecutive launches write PB with no intervening reader of QB:
	// only the second copy PB->QB must survive.
	f := progtest.NewFigure2(48, 8, 2)
	tf := f.Loop.Body[0].(*ir.Launch)
	dup := &ir.Launch{Task: tf.Task, Domain: tf.Domain, Args: tf.Args, Label: "loopF2"}
	f.Loop.Body = []ir.Stmt{f.Loop.Body[0], dup, f.Loop.Body[1]}
	c, err := Compile(f.Prog, f.Loop, Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	for _, op := range c.Body {
		if op.Copy != nil {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("copies = %d, want 1 after redundancy elimination", copies)
	}
	if c.Report.RedundantRemoved != 1 {
		t.Errorf("report = %+v", c.Report)
	}
}

func TestCompileRejectsDifferentDomains(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 1)
	tg := f.Loop.Body[1].(*ir.Launch)
	tg.Domain = ir.Colors1D(4) // mismatched
	_, err := Compile(f.Prog, f.Loop, Options{NumShards: 2})
	if err == nil || !strings.Contains(err.Error(), "different domain") {
		t.Errorf("expected domain error, got %v", err)
	}
}

func TestCompileRejectsNonReplicableBody(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 1)
	f.Loop.Body = append(f.Loop.Body, &ir.Fill{Target: f.A, Field: f.Val, Value: 0})
	_, err := Compile(f.Prog, f.Loop, Options{NumShards: 2})
	if err == nil {
		t.Error("expected error for fill in replicated loop")
	}
}

func TestCompileRejectsAliasedWrite(t *testing.T) {
	p := ir.NewProgram("aliasedwrite")
	fs := region.NewFieldSpace("x")
	x := fs.Field("x")
	n := int64(16)
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[r] = fs
	pr := r.Block("PR", 4)
	img := region.Image(r, pr, "IMG", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1((pt.X() + 1) % n)}
	})
	w := &ir.TaskDecl{Name: "w", Params: []ir.Param{{Priv: ir.PrivReadWrite, Fields: []region.FieldID{x}}}}
	loop := &ir.Loop{Var: "t", Trip: 1, Body: []ir.Stmt{
		&ir.Launch{Task: w, Domain: ir.Colors1D(4), Args: []ir.RegionArg{{Part: img}}},
	}}
	p.Add(loop)
	_, err := Compile(p, loop, Options{NumShards: 2})
	if err == nil || !strings.Contains(err.Error(), "aliased partition") {
		t.Errorf("expected aliased-write rejection, got %v", err)
	}
}

func TestCompileRejectsUncoveredFinalization(t *testing.T) {
	// Reduce into an aliased partition with no disjoint partition used
	// anywhere: finalization cannot recover the region.
	p := ir.NewProgram("uncovered")
	fs := region.NewFieldSpace("x")
	x := fs.Field("x")
	n := int64(16)
	r := p.Tree.NewRegion("R", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[r] = fs
	pr := r.Block("PR", 4)
	img := region.Image(r, pr, "IMG", func(pt geometry.Point) []geometry.Point {
		return []geometry.Point{pt, geometry.Pt1((pt.X() + 1) % n)}
	})
	red := &ir.TaskDecl{Name: "red", Params: []ir.Param{{Priv: ir.PrivReduce, Op: region.ReduceSum, Fields: []region.FieldID{x}}}}
	reader := &ir.TaskDecl{Name: "rd", Params: []ir.Param{{Priv: ir.PrivRead, Fields: []region.FieldID{x}}}}
	loop := &ir.Loop{Var: "t", Trip: 1, Body: []ir.Stmt{
		&ir.Launch{Task: red, Domain: ir.Colors1D(4), Args: []ir.RegionArg{{Part: img}}},
		&ir.Launch{Task: reader, Domain: ir.Colors1D(4), Args: []ir.RegionArg{{Part: img}}},
	}}
	p.Add(loop)
	_, err := Compile(p, loop, Options{NumShards: 2})
	if err == nil || !strings.Contains(err.Error(), "finalization") {
		t.Errorf("expected finalization coverage error, got %v", err)
	}
}

// TestHierarchicalPartitioningReducesCommunication reproduces the effect of
// §4.5: splitting the region into private and ghost subtrees lets the
// compiler prove the private partition needs no copies, shrinking both the
// copy set and the intersection work.
func TestHierarchicalPartitioningReducesCommunication(t *testing.T) {
	build := func(hierarchical bool) (*ir.Program, *ir.Loop) {
		p := ir.NewProgram("stencil1d")
		fs := region.NewFieldSpace("u")
		u := fs.Field("u")
		n, nt := int64(64), int64(8)
		in := p.Tree.NewRegion("IN", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		out := p.Tree.NewRegion("OUT", geometry.NewIndexSpace(geometry.R1(0, n-1)))
		p.FieldSpaces[in] = fs
		p.FieldSpaces[out] = fs
		flat := in.Block("PIN", nt)
		pout := out.Block("POUT", nt)
		halo := func(is geometry.IndexSpace) []geometry.Rect {
			bb := is.Bounds()
			return []geometry.Rect{geometry.R1(bb.Lo.X()-1, bb.Lo.X()-1), geometry.R1(bb.Hi.X()+1, bb.Hi.X()+1)}
		}
		// The stencil's read footprint is the whole block plus the halo.
		footprint := func(is geometry.IndexSpace) []geometry.Rect {
			bb := is.Bounds()
			return []geometry.Rect{geometry.R1(bb.Lo.X()-1, bb.Hi.X()+1)}
		}
		var inWriteArgs []ir.RegionArg
		var qin *region.Partition
		if !hierarchical {
			// Flat: the whole footprint (own data included) flows through
			// the aliased image partition, so private data gets copied too.
			qin = region.ImageRects(in, flat, "QIN", footprint)
			inWriteArgs = []ir.RegionArg{{Part: flat}}
		} else {
			// Ghost elements: each block's endpoints plus its one-element
			// halos — everything that ever crosses a block boundary.
			ghost := geometry.EmptyIndexSpace(1)
			flat.Each(func(_ geometry.Point, sub *region.Region) bool {
				bb := sub.IndexSpace().Bounds()
				ghost = ghost.Union(geometry.FromRects(1, halo(sub.IndexSpace())))
				ghost = ghost.Union(geometry.FromRects(1, []geometry.Rect{
					{Lo: bb.Lo, Hi: bb.Lo}, {Lo: bb.Hi, Hi: bb.Hi},
				}))
				return true
			})
			ghost = ghost.Intersect(in.IndexSpace())
			private := in.IndexSpace().Subtract(ghost)
			top := in.BySubsets("private_v_ghost", geometry.NewIndexSpace(geometry.R1(0, 1)),
				map[geometry.Point]geometry.IndexSpace{geometry.Pt1(0): private, geometry.Pt1(1): ghost})
			allPrivate, allGhost := top.Sub1(0), top.Sub1(1)
			pb := region.Restrict(allPrivate, flat, "PINpriv")
			sb := region.Restrict(allGhost, flat, "SIN")
			qin = region.Restrict(allGhost, region.ImageRects(in, flat, "QINflat", halo), "QIN")
			inWriteArgs = []ir.RegionArg{{Part: pb}, {Part: sb}}
		}
		// Launch 1: OUT[i] <- stencil over IN's blocks + halos.
		stParams := []ir.Param{
			{Priv: ir.PrivReadWrite, Fields: []region.FieldID{u}},
			{Priv: ir.PrivRead, Fields: []region.FieldID{u}},
		}
		stTask := &ir.TaskDecl{Name: "st", Params: stParams, Kernel: func(tc *ir.TaskCtx) {}}
		// Launch 2: advance IN in place (writing its disjoint partitions).
		advParams := make([]ir.Param, len(inWriteArgs))
		for i := range advParams {
			advParams[i] = ir.Param{Priv: ir.PrivReadWrite, Fields: []region.FieldID{u}}
		}
		advTask := &ir.TaskDecl{Name: "adv", Params: advParams, Kernel: func(tc *ir.TaskCtx) {}}
		loop := &ir.Loop{Var: "t", Trip: 1, Body: []ir.Stmt{
			&ir.Launch{Task: stTask, Domain: ir.Colors1D(nt), Args: []ir.RegionArg{{Part: pout}, {Part: qin}}},
			&ir.Launch{Task: advTask, Domain: ir.Colors1D(nt), Args: inWriteArgs},
		}}
		p.Add(loop)
		return p, loop
	}

	progFlat, loopFlat := build(false)
	cFlat, err := Compile(progFlat, loopFlat, Options{NumShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	progH, loopH := build(true)
	cH, err := Compile(progH, loopH, Options{NumShards: 8})
	if err != nil {
		t.Fatal(err)
	}

	volume := func(c *Compiled) int64 {
		var v int64
		for _, op := range c.Body {
			if op.Copy != nil {
				for _, pr := range op.Copy.Pairs {
					v += pr.Overlap.Volume()
				}
			}
		}
		return v
	}
	vf, vh := volume(cFlat), volume(cH)
	if vh >= vf {
		t.Errorf("hierarchical copy volume %d should be below flat %d", vh, vf)
	}
	// The private partition must not appear in any copy.
	for _, op := range cH.Body {
		if op.Copy != nil && strings.Contains(op.Copy.Src.Name(), "priv") {
			t.Errorf("private partition involved in copy %v", op.Copy)
		}
	}
	// The hierarchical version also does less intersection work.
	if cH.Timings.Candidates >= cFlat.Timings.Candidates {
		t.Errorf("hierarchical candidates %d should be below flat %d", cH.Timings.Candidates, cFlat.Timings.Candidates)
	}
}

func TestHoistInvariantSynthetic(t *testing.T) {
	// hoistInvariant triggers only when neither source nor destination is
	// written in the loop; build such a body directly (the insertion pass
	// never produces one, since it inserts copies only after writers).
	f := progtest.NewFigure2(48, 8, 1)
	c := &Compiled{Domain: f.Prog.Stmts[2].(*ir.Loop).Body[0].(*ir.Launch).Domain}
	reader := &ir.TaskDecl{
		Name:   "r",
		Params: []ir.Param{{Priv: ir.PrivRead, Fields: []region.FieldID{f.Val}}},
	}
	c.Body = []BodyOp{
		{Copy: &CopyOp{Src: f.PB, Dst: f.QB, Fields: []region.FieldID{f.Val}, SrcLaunch: nil, SrcArg: -1}},
		{Launch: &ir.Launch{Task: reader, Domain: c.Domain, Args: []ir.RegionArg{{Part: f.QB}}}},
	}
	n := hoistInvariant(c)
	if n != 1 || len(c.InitCopies) != 1 || len(c.Body) != 1 {
		t.Errorf("hoisted=%d init=%d body=%d", n, len(c.InitCopies), len(c.Body))
	}
}

func TestCompileReportsTimings(t *testing.T) {
	_, c := compileFigure2(t, 4)
	if c.Timings.Pairs == 0 || c.Timings.Candidates == 0 {
		t.Errorf("timings not populated: %+v", c.Timings)
	}
	if c.Timings.Pairs > c.Timings.Candidates {
		t.Errorf("complete pairs %d exceed shallow candidates %d", c.Timings.Pairs, c.Timings.Candidates)
	}
}
