package cr

import (
	"repro/internal/ir"
	"repro/internal/region"
)

// This file implements the copy-placement optimization (§3.2): variants of
// partial redundancy elimination, dead-code elimination, and loop-invariant
// code motion, operating on statements whose read/write sets are whole
// partitions. The paper notes the textbook algorithms apply with minimal
// modification precisely because data replication removed aliasing between
// partitions and statements summarize element accesses at partition
// granularity.
//
// Soundness notes: a task's write privilege does not promise it writes
// every element, so writes never "kill" earlier values; liveness is
// therefore judged cyclically over the whole loop (a read anywhere keeps a
// copy live), and instances of disjoint partitions are additionally
// live-out because finalization reads them.

// access is a partition-granularity read or write.
type access struct {
	part   *region.Partition
	fields []region.FieldID
}

// opReads returns the partitions an op reads. A reduction copy reads its
// destination (read-modify-write); reduce-privilege launch arguments read
// nothing (contributions go to a private temporary).
func opReads(op BodyOp) []access {
	switch {
	case op.Launch != nil:
		var out []access
		for ai, a := range op.Launch.Args {
			param := op.Launch.Task.Params[ai]
			if param.Priv == ir.PrivRead || param.Priv == ir.PrivReadWrite {
				out = append(out, access{a.Part, param.Fields})
			}
		}
		return out
	case op.Copy != nil:
		if op.Copy.Reduce != region.ReduceNone {
			return []access{{op.Copy.Dst, op.Copy.Fields}}
		}
		return []access{{op.Copy.Src, op.Copy.Fields}}
	default:
		return nil
	}
}

// opWrites returns the partitions an op writes.
func opWrites(op BodyOp) []access {
	switch {
	case op.Launch != nil:
		var out []access
		for ai, a := range op.Launch.Args {
			param := op.Launch.Task.Params[ai]
			if param.Priv == ir.PrivReadWrite {
				out = append(out, access{a.Part, param.Fields})
			}
		}
		return out
	case op.Copy != nil:
		return []access{{op.Copy.Dst, op.Copy.Fields}}
	default:
		return nil
	}
}

func accessesTouch(as []access, p *region.Partition, fields []region.FieldID) bool {
	for _, a := range as {
		if a.part != p {
			continue
		}
		for _, f := range a.fields {
			for _, g := range fields {
				if f == g {
					return true
				}
			}
		}
	}
	return false
}

func fieldsSubset(a, b []region.FieldID) bool {
	for _, f := range a {
		found := false
		for _, g := range b {
			if f == g {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// placeCopies runs the placement passes over the compiled body, updating
// the report.
func placeCopies(c *Compiled, info *loopInfo) {
	c.Report.RedundantRemoved = removeRedundant(c)
	c.Report.DeadRemoved = removeDead(c)
	c.Report.Hoisted = hoistInvariant(c)
}

// removeRedundant deletes a plain copy when an identical later copy
// overwrites the same overlap before anyone observes the first: same
// source and destination partitions (hence the same pairs and overlap
// elements), fields covered, and no read of the destination in between.
// Writes to the source in between are irrelevant — the surviving copy
// delivers the fresher data.
func removeRedundant(c *Compiled) int {
	removed := 0
	for i := 0; i < len(c.Body); i++ {
		c1 := c.Body[i].Copy
		if c1 == nil || c1.Reduce != region.ReduceNone {
			continue
		}
		for j := i + 1; j < len(c.Body); j++ {
			c2 := c.Body[j].Copy
			if c2 == nil || c2.Reduce != region.ReduceNone || c2.Src != c1.Src || c2.Dst != c1.Dst {
				continue
			}
			if !fieldsSubset(c1.Fields, c2.Fields) {
				continue
			}
			clean := true
			for k := i + 1; k < j; k++ {
				if accessesTouch(opReads(c.Body[k]), c1.Dst, c1.Fields) {
					clean = false
					break
				}
			}
			if clean {
				c.Body = append(c.Body[:i], c.Body[i+1:]...)
				removed++
				i--
				break
			}
		}
	}
	return removed
}

// removeDead deletes copies (per field) whose delivered data is never
// observed: not read by any task anywhere in the loop (liveness is cyclic:
// a read earlier in the body observes the copy on the next iteration), not
// live-out through finalization (instances of disjoint partitions carry
// final data back to the parent), and not forwarded by a live plain copy.
// Liveness is a backward fixpoint through copy chains, which also kills
// mutually-recursive read-modify-write reduction copies into instances
// nobody consumes (e.g. charge folds into ghost instances whose charge
// field is never read).
func removeDead(c *Compiled) int {
	type key struct {
		cp    *CopyOp
		field region.FieldID
	}
	launchReads := func(p *region.Partition, f region.FieldID) bool {
		for _, op := range c.Body {
			if op.Launch == nil {
				continue
			}
			if accessesTouch(opReads(op), p, []region.FieldID{f}) {
				return true
			}
		}
		return false
	}
	live := map[key]bool{}
	changed := true
	for changed {
		changed = false
		for _, op := range c.Body {
			cp := op.Copy
			if cp == nil {
				continue
			}
			for _, f := range cp.Fields {
				k := key{cp, f}
				if live[k] {
					continue
				}
				ok := cp.Dst.Disjoint() || launchReads(cp.Dst, f)
				if !ok {
					// Forwarded by a live plain copy reading this partition?
					for _, op2 := range c.Body {
						c2 := op2.Copy
						if c2 == nil || c2.Reduce != region.ReduceNone || c2.Src != cp.Dst {
							continue
						}
						for _, f2 := range c2.Fields {
							if f2 == f && live[key{c2, f}] {
								ok = true
								break
							}
						}
						if ok {
							break
						}
					}
				}
				if ok {
					live[k] = true
					changed = true
				}
			}
		}
	}
	removed := 0
	for i := 0; i < len(c.Body); i++ {
		cp := c.Body[i].Copy
		if cp == nil {
			continue
		}
		kept := cp.Fields[:0]
		for _, f := range cp.Fields {
			if live[key{cp, f}] {
				kept = append(kept, f)
			}
		}
		cp.Fields = kept
		if len(cp.Fields) == 0 {
			c.Body = append(c.Body[:i], c.Body[i+1:]...)
			removed++
			i--
		}
	}
	return removed
}

// hoistInvariant moves loop-invariant plain copies to the loop preheader:
// the source is never written in the loop and the destination is written
// only by this copy, so one copy before the loop delivers the same data as
// one per iteration (§3.2 loop-invariant code motion; the paper's shallow
// intersections are hoisted the same way).
func hoistInvariant(c *Compiled) int {
	hoisted := 0
	for i := 0; i < len(c.Body); i++ {
		cp := c.Body[i].Copy
		if cp == nil || cp.Reduce != region.ReduceNone {
			continue
		}
		invariant := true
		for k := range c.Body {
			if k == i {
				continue
			}
			if accessesTouch(opWrites(c.Body[k]), cp.Src, cp.Fields) ||
				accessesTouch(opWrites(c.Body[k]), cp.Dst, cp.Fields) {
				invariant = false
				break
			}
		}
		if invariant {
			c.InitCopies = append(c.InitCopies, cp)
			c.Body = append(c.Body[:i], c.Body[i+1:]...)
			hoisted++
			i--
		}
	}
	return hoisted
}
