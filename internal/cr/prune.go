package cr

// Prune markers and rebuild specifications: compiler-side data structures
// written by the schedule certifier (internal/verify) and consumed by the
// SPMD executor (internal/spmd). They live here because verify analyzes
// Compiled plans (verify imports cr) while spmd executes them (spmd imports
// cr), and neither may import the other.

import "repro/internal/region"

// PruneInfo records the synchronization and initialization work the
// certifier has licensed the executor to skip. It is attached to
// Compiled.Prune by verify.PlanPrune after the pruned schedule re-passes
// the full race and liveness checks; a nil PruneInfo (the default) means
// the executor runs the conservative schedule unchanged.
//
// Three classes of point-to-point sync edges can be elided per (copy, pair):
//
//   - War: the consumer's write-after-read release into the pair's war
//     event, and symmetrically the producer's wait on it. Redundant when
//     every prior reader of the destination already happens-before the copy
//     along another path (typically through the copy's source dependence).
//   - Done: the producer's completion trigger into the pair's done event,
//     the consumer's merge of it into the destination's lastWrite, and its
//     contribution to the shard's iteration-completion merge (the copy's
//     own completion event takes its place there).
//   - Chain: the fold-order edge from the previous reduction application to
//     this one. Redundant when the consecutive applications touch disjoint
//     elements, so their order cannot affect the fold result.
//
// DeadInit marks instances whose initialization copy from the parent region
// is dead: every read of the instance is covered by compiler-inserted plain
// overwrites that happen-before it, so the population (a real cross-node
// transfer) can be skipped entirely. In Real mode the store is still
// created — it stays zero until the first overwrite lands.
type PruneInfo struct {
	// War/Done/Chain map CopyOp.ID to a per-pair skip mask. A missing entry
	// or short mask means "keep".
	War   map[int][]bool
	Done  map[int][]bool
	Chain map[int][]bool
	// DeadInit maps a used partition to a per-color skip mask, dense by
	// ColorIdx over the compiled domain.
	DeadInit map[*region.Partition][]bool
}

func skip(m map[int][]bool, copyID, pair int) bool {
	if m == nil {
		return false
	}
	mask := m[copyID]
	return pair < len(mask) && mask[pair]
}

// SkipWar reports whether the pair's war sync is pruned. Nil-safe: the
// executor consults it on every pair of every iteration.
func (p *PruneInfo) SkipWar(copyID, pair int) bool {
	return p != nil && skip(p.War, copyID, pair)
}

// SkipDone reports whether the pair's done sync is pruned.
func (p *PruneInfo) SkipDone(copyID, pair int) bool {
	return p != nil && skip(p.Done, copyID, pair)
}

// SkipChain reports whether the pair's reduction-chain edge is pruned.
func (p *PruneInfo) SkipChain(copyID, pair int) bool {
	return p != nil && skip(p.Chain, copyID, pair)
}

// SkipInit reports whether the instance (part, colorIdx)'s initialization
// population is pruned.
func (p *PruneInfo) SkipInit(part *region.Partition, colorIdx int) bool {
	if p == nil || p.DeadInit == nil {
		return false
	}
	mask := p.DeadInit[part]
	return colorIdx < len(mask) && mask[colorIdx]
}

func (p *PruneInfo) set(m *map[int][]bool, copyID, pair, n int, v bool) {
	if *m == nil {
		*m = make(map[int][]bool)
	}
	mask := (*m)[copyID]
	if mask == nil {
		mask = make([]bool, n)
		(*m)[copyID] = mask
	}
	mask[pair] = v
}

// SetWar, SetDone, SetChain, and SetInit flip individual skip bits; n sizes
// a freshly created mask (the copy's pair count / the domain size).
func (p *PruneInfo) SetWar(copyID, pair, n int, v bool)   { p.set(&p.War, copyID, pair, n, v) }
func (p *PruneInfo) SetDone(copyID, pair, n int, v bool)  { p.set(&p.Done, copyID, pair, n, v) }
func (p *PruneInfo) SetChain(copyID, pair, n int, v bool) { p.set(&p.Chain, copyID, pair, n, v) }

// SetInit flips one instance's dead-init bit.
func (p *PruneInfo) SetInit(part *region.Partition, colorIdx, n int, v bool) {
	if p.DeadInit == nil {
		p.DeadInit = make(map[*region.Partition][]bool)
	}
	mask := p.DeadInit[part]
	if mask == nil {
		mask = make([]bool, n)
		p.DeadInit[part] = mask
	}
	mask[colorIdx] = v
}

func countMask(m map[int][]bool) int {
	n := 0
	for _, mask := range m {
		for _, v := range mask {
			if v {
				n++
			}
		}
	}
	return n
}

// PrunedWar, PrunedDone, and PrunedChain count the pruned sync edges per
// class; PrunedEdges is their sum. All counts are static edge identities —
// one per (copy, pair), independent of the trip count.
func (p *PruneInfo) PrunedWar() int   { return countMask(p.War) }
func (p *PruneInfo) PrunedDone() int  { return countMask(p.Done) }
func (p *PruneInfo) PrunedChain() int { return countMask(p.Chain) }
func (p *PruneInfo) PrunedEdges() int {
	if p == nil {
		return 0
	}
	return p.PrunedWar() + p.PrunedDone() + p.PrunedChain()
}

// PrunedInits counts the dead initialization populations.
func (p *PruneInfo) PrunedInits() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, mask := range p.DeadInit {
		for _, v := range mask {
			if v {
				n++
			}
		}
	}
	return n
}

// RebuildSpec describes one failover-rebuilt schedule: the placement and
// restore state the recovery layer (spmd/recover.go) would construct after
// a given crash. spmd.PlanRebuild constructs it statically — without
// running anything — and verify.CertifyRebuild checks it, so every logical
// crash point can be certified exhaustively instead of sampled dynamically.
type RebuildSpec struct {
	// Nodes is the cluster size; Live[i] reports whether node i survives.
	// Node 0 hosts the control thread and is always live.
	Nodes int
	// Crashed lists the crashed nodes.
	Crashed []int
	// Assign maps each shard to the live node hosting it after failover
	// (the blockwise remap of spmd.RebuildAssignment).
	Assign []int
	// Restored[part][colorIdx] reports whether the instance is repopulated
	// from the checkpoint during the rebuild's restore phase. The recovery
	// layer checkpoints and restores every used instance.
	Restored map[*region.Partition][]bool
	// ResumeIter is the iteration the rebuilt schedule resumes from: the
	// last committed checkpoint boundary before the crash (0 when the crash
	// precedes the first checkpoint).
	ResumeIter int
}
