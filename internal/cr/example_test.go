package cr_test

import (
	"fmt"

	"repro/internal/cr"
	"repro/internal/progtest"
)

// ExampleCompile control-replicates the paper's Figure 2 program and prints
// the transformed loop body — which matches Figure 4b: the copy from the
// written block partition PB to the aliased image partition QB, and nothing
// for the provably disjoint PA.
func ExampleCompile() {
	f := progtest.NewFigure2(48, 8, 3)
	plan, err := cr.Compile(f.Prog, f.Loop, cr.Options{NumShards: 4})
	if err != nil {
		panic(err)
	}
	for _, op := range plan.Body {
		switch {
		case op.Launch != nil:
			fmt.Printf("launch %s\n", op.Launch.Task.Name)
		case op.Copy != nil:
			fmt.Println(op.Copy)
		}
	}
	fmt.Printf("shards: %d\n", plan.Opts.NumShards)
	// Output:
	// launch TF
	// copy PB -> QB (16 pairs)
	// launch TG
	// shards: 4
}
