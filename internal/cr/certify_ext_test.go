package cr_test

// Schedule-certifier coverage over the four evaluation applications: the
// liveness pass must prove deadlock-freedom for every compiled schedule,
// the prune pass must certify (and on the p2p apps with cross-shard
// reductions, strictly shrink) every schedule, and recovery certification
// must pass for every enumerated crash point — with seeded corruptions
// rejected by a named witness. Lives in cr_test because internal/verify
// imports cr and the app builders live behind internal/harness.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/harness"
	"repro/internal/spmd"
	"repro/internal/verify"
)

func appNodeCounts(t *testing.T) []int {
	if testing.Short() {
		return []int{2}
	}
	return []int{2, 4}
}

// TestLivenessApps: every application schedule — both lowerings, placement
// optimizer on and off, 2 and 4 nodes — certifies deadlock-free.
func TestLivenessApps(t *testing.T) {
	for _, app := range harness.Apps() {
		for _, nodes := range appNodeCounts(t) {
			prog, _ := app.BuildProgram(nodes)
			for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
				for _, noOpt := range []bool{false, true} {
					name := fmt.Sprintf("%s/%d/%v/noopt=%v", app.Name, nodes, sync, noOpt)
					t.Run(name, func(t *testing.T) {
						plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync, NoPlacementOpt: noOpt})
						if err != nil {
							t.Fatalf("compile: %v", err)
						}
						for _, plan := range plans {
							a, err := verify.Analyze(plan)
							if err != nil {
								t.Fatal(err)
							}
							rep := a.CheckLiveness()
							for _, f := range rep.Findings {
								t.Errorf("liveness: %s", f)
							}
							if rep.Stats.Nodes == 0 {
								t.Error("empty wait-for graph; the check is vacuous")
							}
						}
					})
				}
			}
		}
	}
}

// TestPruneApps: the prune pass certifies every application schedule, and
// on PENNANT and Circuit under p2p — the apps with redundant per-pair war
// sync and dead ghost initializations — it strictly reduces the sync-edge
// count. This is the static half of the -prune acceptance bar.
func TestPruneApps(t *testing.T) {
	for _, app := range harness.Apps() {
		for _, nodes := range appNodeCounts(t) {
			prog, loop := app.BuildProgram(nodes)
			for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
				name := fmt.Sprintf("%s/%d/%v", app.Name, nodes, sync)
				t.Run(name, func(t *testing.T) {
					plan, err := cr.Compile(prog, loop, cr.Options{NumShards: nodes, Sync: sync})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					info, rep, err := verify.PlanPrune(plan)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.OK() {
						for _, f := range rep.Findings {
							t.Errorf("prune: %s", f)
						}
						t.Fatal("prune pass rejected a correct schedule")
					}
					before, after := rep.Counters["sync_edges_before"], rep.Counters["sync_edges_after"]
					if after > before {
						t.Errorf("pruning grew the sync-edge count: %d -> %d", before, after)
					}
					strict := app.Name == "pennant" || app.Name == "circuit"
					if strict && sync == cr.PointToPoint {
						if rep.Counters["pruned_edges"] < 1 || after >= before {
							t.Errorf("%s p2p: want strict sync-edge reduction, got pruned_edges=%d edges %d -> %d",
								app.Name, rep.Counters["pruned_edges"], before, after)
						}
					}
					// The attached schedule must re-certify end to end.
					plan.Prune = info
					a, err := verify.Analyze(plan)
					if err != nil {
						t.Fatal(err)
					}
					if r := a.Check(); !r.OK() {
						t.Errorf("pruned schedule fails race check: %v", r.Findings)
					}
					if r := a.CheckLiveness(); !r.OK() {
						t.Errorf("pruned schedule fails liveness: %v", r.Findings)
					}
				})
			}
		}
	}
}

// TestRecoveryCertApps enumerates logical crash points — every app, node
// count, crashed node, and a spread of crash launch indices — constructs
// the failover rebuild statically, and demands full certification (valid
// placement and restore, then races + liveness + spec on the rebuilt
// schedule). The dynamic fault suite samples this space; here it is
// covered exhaustively over the enumeration.
func TestRecoveryCertApps(t *testing.T) {
	for _, app := range harness.Apps() {
		for _, nodes := range appNodeCounts(t) {
			prog, loop := app.BuildProgram(nodes)
			for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
				plan, err := cr.Compile(prog, loop, cr.Options{NumShards: nodes, Sync: sync})
				if err != nil {
					t.Fatalf("%s/%d/%v: compile: %v", app.Name, nodes, sync, err)
				}
				for crashed := 1; crashed < nodes; crashed++ {
					for _, atLaunch := range []uint64{1, 3, 9, 40} {
						name := fmt.Sprintf("%s/%d/%v/crash=%d@%d", app.Name, nodes, sync, crashed, atLaunch)
						t.Run(name, func(t *testing.T) {
							rs := spmd.PlanRebuild(plan, nodes, []int{crashed}, atLaunch, 2)
							if rs == nil {
								t.Fatal("PlanRebuild rejected a valid crash point")
							}
							rep := verify.CertifyRebuild(plan, rs)
							if rep.Pass != "recovery-cert" {
								t.Errorf("report pass %q, want recovery-cert", rep.Pass)
							}
							for _, f := range rep.Findings {
								t.Errorf("recovery-cert: %s", f)
							}
						})
					}
				}
			}
		}
	}
}

// TestRecoveryCertRejectsCorruptRebuilds seeds defects into an otherwise
// valid rebuild and demands rejection with a witness naming the offending
// shard, node, or instance.
func TestRecoveryCertRejectsCorruptRebuilds(t *testing.T) {
	app, err := harness.AppByName("pennant")
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 4
	prog, loop := app.BuildProgram(nodes)
	plan, err := cr.Compile(prog, loop, cr.Options{NumShards: nodes, Sync: cr.PointToPoint})
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *cr.RebuildSpec {
		rs := spmd.PlanRebuild(plan, nodes, []int{2}, 5, 2)
		if rs == nil {
			t.Fatal("PlanRebuild rejected the base crash point")
		}
		return rs
	}
	if rep := verify.CertifyRebuild(plan, fresh()); !rep.OK() {
		t.Fatalf("base rebuild must certify, got %v", rep.Findings)
	}

	for _, tc := range []struct {
		name    string
		corrupt func(rs *cr.RebuildSpec)
		kind    string
		witness string
	}{
		{"shard assigned to crashed node", func(rs *cr.RebuildSpec) {
			rs.Assign[len(rs.Assign)-1] = 2
		}, "dead-node-assignment", "assigned to crashed node 2"},
		{"missing restore", func(rs *cr.RebuildSpec) {
			for part := range rs.Restored {
				delete(rs.Restored, part)
				break
			}
		}, "missing-restore", "not restored from the checkpoint"},
		{"control node crashed", func(rs *cr.RebuildSpec) {
			rs.Crashed = append(rs.Crashed, 0)
		}, "bad-rebuild", "node 0 crashed"},
		{"resume outside loop", func(rs *cr.RebuildSpec) {
			rs.ResumeIter = plan.Loop.Trip + 7
		}, "bad-rebuild", "outside the loop"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rs := fresh()
			tc.corrupt(rs)
			rep := verify.CertifyRebuild(plan, rs)
			if rep.OK() {
				t.Fatal("corrupted rebuild certified")
			}
			found := false
			for _, f := range rep.Findings {
				if f.Kind == tc.kind && strings.Contains(f.Detail, tc.witness) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s finding naming %q; got %v", tc.kind, tc.witness, rep.Findings)
			}
		})
	}

	// PlanRebuild itself must refuse the unplannable: the control node
	// crashing, out-of-range nodes, and a crash before any launch.
	for _, tc := range []struct {
		name    string
		crashed []int
		at      uint64
	}{
		{"node 0", []int{0}, 5},
		{"out of range", []int{nodes + 3}, 5},
		{"before any launch", []int{2}, 0},
	} {
		if rs := spmd.PlanRebuild(plan, nodes, tc.crashed, tc.at, 2); rs != nil {
			t.Errorf("PlanRebuild(%s) built a spec for an unplannable crash", tc.name)
		}
	}
}
