package cr

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/region"
)

// loopInfo is the result of target-program analysis (§2.2): the launches
// and scalar statements of the loop body, the partitions each touches with
// what privilege and fields, and the common launch domain.
type loopInfo struct {
	domain    []geometry.Point
	stmts     []ir.Stmt
	usedParts []*region.Partition
	// partFields accumulates every field used with a partition.
	partFields map[*region.Partition]map[region.FieldID]bool
	// written marks partitions written (read-write or reduce) by any launch.
	written map[*region.Partition]bool
	// reduced maps partitions to the reduce ops applied (at most one op per
	// partition is supported).
	reduced map[*region.Partition]region.ReductionOp
}

// partFieldList converts the accumulated field sets to sorted slices.
func (info *loopInfo) partFieldList() map[*region.Partition][]region.FieldID {
	out := make(map[*region.Partition][]region.FieldID, len(info.partFields))
	for p, set := range info.partFields {
		out[p] = sortedFields(set)
	}
	return out
}

func sortedFields(set map[region.FieldID]bool) []region.FieldID {
	fs := make([]region.FieldID, 0, len(set))
	for f := range set {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// analyzeLoop checks that the loop is a control-replication target and
// gathers its partition-level use information. All analysis is at the
// granularity of tasks, privileges, partitions, and disjointness — never
// task bodies (§2.2).
func analyzeLoop(prog *ir.Program, loop *ir.Loop) (*loopInfo, error) {
	if !ir.ReplicableLoopBody(loop.Body) {
		return nil, fmt.Errorf("cr: loop %q body contains statements control replication cannot transform", loop.Var)
	}
	info := &loopInfo{
		partFields: make(map[*region.Partition]map[region.FieldID]bool),
		written:    make(map[*region.Partition]bool),
		reduced:    make(map[*region.Partition]region.ReductionOp),
	}
	for _, s := range loop.Body {
		switch s := s.(type) {
		case *ir.SetScalar:
			info.stmts = append(info.stmts, s)
		case *ir.Launch:
			if err := info.addLaunch(s); err != nil {
				return nil, err
			}
		case *ir.Loop:
			return nil, fmt.Errorf("cr: nested loops are transformed independently; flatten or compile the inner loop")
		default:
			return nil, fmt.Errorf("cr: unsupported statement %T in replicated loop", s)
		}
	}
	if len(info.domain) == 0 {
		return nil, fmt.Errorf("cr: loop %q contains no index launches", loop.Var)
	}
	return info, nil
}

func (info *loopInfo) addLaunch(l *ir.Launch) error {
	if len(info.domain) == 0 {
		info.domain = l.Domain
	} else if !sameDomain(info.domain, l.Domain) {
		return fmt.Errorf("cr: launch %s uses a different domain than earlier launches; control replication shards one common iteration space", l.Task.Name)
	}
	for ai, a := range l.Args {
		if !a.Identity() {
			return fmt.Errorf("cr: launch %s arg %d still has a non-identity projection after normalization", l.Task.Name, ai)
		}
		param := l.Task.Params[ai]
		if _, ok := info.partFields[a.Part]; !ok {
			info.usedParts = append(info.usedParts, a.Part)
			info.partFields[a.Part] = make(map[region.FieldID]bool)
		}
		for _, f := range param.Fields {
			info.partFields[a.Part][f] = true
		}
		switch param.Priv {
		case ir.PrivReadWrite:
			if !a.Part.Disjoint() {
				return fmt.Errorf("cr: launch %s writes aliased partition %s; forall tasks writing overlapping data are not parallel (reductions are the only supported aliased writes)", l.Task.Name, a.Part.Name())
			}
			info.written[a.Part] = true
		case ir.PrivReduce:
			info.written[a.Part] = true
			if prev, ok := info.reduced[a.Part]; ok && prev != param.Op {
				return fmt.Errorf("cr: partition %s reduced with both %v and %v", a.Part.Name(), prev, param.Op)
			}
			info.reduced[a.Part] = param.Op
		}
	}
	// Intra-launch conflicts make the forall loop not actually parallel.
	for i := range l.Args {
		for j := i + 1; j < len(l.Args); j++ {
			pi, pj := l.Task.Params[i], l.Task.Params[j]
			if !ir.Conflicts(pi.Priv, pi.Op, pj.Priv, pj.Op) {
				continue
			}
			if !fieldsIntersect(pi.Fields, pj.Fields) {
				continue
			}
			ai, aj := l.Args[i], l.Args[j]
			if ai.Part == aj.Part && ai.Part.Disjoint() {
				continue // same subregion per task; internally sequential
			}
			if !region.PartitionsMayAlias(ai.Part, aj.Part) {
				continue
			}
			return fmt.Errorf("cr: launch %s has conflicting aliased arguments %d and %d", l.Task.Name, i, j)
		}
	}
	info.stmts = append(info.stmts, l)
	return nil
}

func sameDomain(a, b []geometry.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fieldsIntersect(a, b []region.FieldID) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
