// Package cr implements control replication (the paper's contribution,
// §3-§4): the compiler transformation that turns an implicitly parallel
// loop of index launches into SPMD shards with explicit copies and
// synchronization.
//
// Compile runs the phases of §3 in order:
//
//  1. target detection — the loop body must be forall launches of tasks
//     over a common domain plus restricted scalar statements (§2.2);
//  2. data replication — every partition gets its own storage; copies are
//     inserted after writes to partitions that alias other used partitions,
//     plus initialization and finalization copies (§3.1);
//  3. copy placement — redundant-copy elimination, dead-copy elimination
//     and loop-invariant code motion at partition granularity (§3.2);
//  4. copy intersection — shallow (interval tree / BVH) then complete
//     intersections compute the exact communication pairs, replacing the
//     O(N^2) all-pairs copy loop with the non-empty pairs (§3.3);
//  5. synchronization — each copy pair carries producer/consumer sync,
//     lowered either to barriers (the naive Figure 4c form) or to
//     point-to-point synchronization between exactly the tasks with
//     non-empty intersections (§3.4), selected by Options.Sync;
//  6. shard creation — the launch domain is block-partitioned over shards,
//     each of which replicates the loop's control flow over its block
//     (§3.5).
//
// Region reductions go through temporary reduction instances applied with
// reduction copies (§4.3); scalar reductions become dynamic collectives
// (§4.4). The executor for compiled programs is package spmd.
package cr

import (
	"fmt"
	"time"

	"repro/internal/geometry"
	"repro/internal/intersect"
	"repro/internal/ir"
	"repro/internal/region"
)

// SyncMode selects how copies synchronize with consumers.
type SyncMode int8

// Synchronization lowering choices (§3.4): point-to-point synchronization
// scoped to the non-empty intersection pairs, or the naive global barriers
// of Figure 4c (kept as an ablation baseline).
const (
	PointToPoint SyncMode = iota
	BarrierSync
)

// String names the mode.
func (m SyncMode) String() string {
	if m == BarrierSync {
		return "barrier"
	}
	return "p2p"
}

// Options configures compilation.
type Options struct {
	// NumShards is the number of long-running shard tasks to create.
	NumShards int
	// Sync selects the synchronization lowering.
	Sync SyncMode
	// NoPlacementOpt disables the §3.2 copy-placement passes (redundancy,
	// dead-copy elimination, hoisting), leaving the naive Figure 4a
	// placement. Exposed for the placement ablation.
	NoPlacementOpt bool
	// Agg coalesces each exchange phase's copy pairs into one transfer per
	// (producing shard, destination shard) group: the executor issues a
	// single merged CopyBytes per AggGroup with summed bytes and the union
	// of the members' preconditions, running member writes in capture
	// order. Default off; an aggregated schedule is licensed by
	// verify.CheckAgg the way pruning is licensed by verify.PlanPrune.
	Agg bool
}

// BodyOp is one operation of the transformed loop body: exactly one of the
// fields is set.
type BodyOp struct {
	Launch *ir.Launch
	Set    *ir.SetScalar
	Copy   *CopyOp
}

// Kind describes the op for diagnostics.
func (op BodyOp) Kind() string {
	switch {
	case op.Launch != nil:
		return "launch"
	case op.Set != nil:
		return "scalar"
	default:
		return "copy"
	}
}

// CopyOp is a compiler-inserted region-to-region copy between partition
// instances. A plain copy (Reduce == ReduceNone) overwrites the overlap
// Dst[j] <- Src[i] for each pair; a reduction copy folds the reduce-temp of
// its source launch into the destination instances (§4.3).
type CopyOp struct {
	ID     int
	Src    *region.Partition
	Dst    *region.Partition
	Fields []region.FieldID
	Reduce region.ReductionOp
	// SrcLaunch/SrcArg locate the reduce temp for reduction copies: the
	// launch whose temporary holds the contributions and its argument slot.
	// Nil for plain copies.
	SrcLaunch *ir.Launch
	SrcArg    int
	// Pairs are the non-empty (source color, destination color) overlaps,
	// sorted by destination then source color; the executor chains
	// reduction applications to a destination in this order so results are
	// deterministic.
	Pairs []intersect.Pair
}

// String summarizes the copy.
func (c *CopyOp) String() string {
	kind := "copy"
	if c.Reduce != region.ReduceNone {
		kind = fmt.Sprintf("reduce(%v)", c.Reduce)
	}
	return fmt.Sprintf("%s %s -> %s (%d pairs)", kind, c.Src.Name(), c.Dst.Name(), len(c.Pairs))
}

// IntersectTimings records the wall-clock cost of the dynamic intersection
// phases — the quantities Table 1 of the paper reports.
type IntersectTimings struct {
	Shallow    time.Duration
	Complete   time.Duration
	Candidates int
	Pairs      int
}

// Report counts what each compilation phase did, for tests and the crc
// driver.
type Report struct {
	CopiesInserted   int
	RedundantRemoved int
	DeadRemoved      int
	Hoisted          int
	FinalCopies      int
}

// Compiled is a control-replicated loop ready for SPMD execution.
type Compiled struct {
	Prog   *ir.Program
	Loop   *ir.Loop
	Opts   Options
	Domain []geometry.Point

	// Shard ownership: block partition of the domain (§3.5). ColorIdx gives
	// each color's position in Domain (used e.g. to index collectives).
	Owned    [][]geometry.Point
	ShardOf  map[geometry.Point]int
	ColorIdx map[geometry.Point]int

	// Body is the transformed loop body; InitCopies are loop-invariant
	// copies hoisted to run once before the loop.
	Body       []BodyOp
	InitCopies []*CopyOp

	// UsedParts are all partitions referenced in the loop, in first-use
	// order; PartFields gives the fields touched per partition directly by
	// its tasks. InstFields additionally includes fields an instance
	// receives through copies (e.g. reduction folds routed to a disjoint
	// finalization home); instances carry, and initialization and
	// finalization move, InstFields. WrittenDisjoint are the disjoint
	// written partitions finalization copies back to the parent regions.
	UsedParts       []*region.Partition
	PartFields      map[*region.Partition][]region.FieldID
	InstFields      map[*region.Partition][]region.FieldID
	WrittenDisjoint []*region.Partition

	Timings IntersectTimings
	Report  Report

	// Spec is the specialization metadata for cross-shard plan sharing:
	// the copy work lists each shard executes, pair volumes and endpoint
	// shards, kernel cost volumes, and the owned-block offsets — everything
	// shard- and placement-independent that the executor would otherwise
	// re-derive per shard per run state (see spec.go).
	Spec SpecTable

	// Trace is the loop-boundary trace marker: whether the compiled body is
	// a replayable per-iteration plan (every op, copy pair, and sync slot is
	// identical across iterations, so an executor may memoize its resolution
	// after the first iteration) and, when it is not, why. Scalar statements
	// stay live under replay — only structural resolution is memoized — so
	// data-dependent scalar values never affect traceability.
	Trace TraceMarker

	// Prune is the certifier-licensed redundant-sync and dead-init skip set
	// (verify.PlanPrune); nil — the default — leaves the conservative
	// schedule exactly as compiled.
	Prune *PruneInfo

	domainSet map[geometry.Point]bool
}

// TraceMarker is the compiler's verdict on trace replay for one loop; the
// SPMD executor consults it before memoizing per-shard iteration plans.
type TraceMarker struct {
	Traceable bool
	Reason    string // set when Traceable is false
}

// Compile control-replicates one loop of the program.
func Compile(prog *ir.Program, loop *ir.Loop, opts Options) (*Compiled, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	ir.NormalizeProjections(prog)
	if opts.NumShards <= 0 {
		return nil, fmt.Errorf("cr: NumShards must be positive")
	}

	info, err := analyzeLoop(prog, loop)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Prog:       prog,
		Loop:       loop,
		Opts:       opts,
		Domain:     info.domain,
		UsedParts:  info.usedParts,
		PartFields: info.partFieldList(),
	}

	c.Body, c.Report.CopiesInserted = insertCopies(info)
	if !opts.NoPlacementOpt {
		placeCopies(c, info)
	}
	if err := c.computeIntersections(); err != nil {
		return nil, err
	}
	if err := c.planFinalization(info); err != nil {
		return nil, err
	}
	c.createShards()
	c.buildSpec()
	c.computeInstFields()
	for _, op := range c.Body {
		if op.Copy != nil {
			c.Report.FinalCopies++
		}
	}
	c.markTrace()
	return c, nil
}

// markTrace emits the loop-boundary trace marker. The compiled body is
// structurally identical in every iteration by construction — the body op
// list, copy pair lists, and shard ownership are all fixed at compile time
// — so a loop is traceable whenever a trace can pay for itself: the body
// must run more than once.
func (c *Compiled) markTrace() {
	if c.Loop.Trip < 2 {
		c.Trace = TraceMarker{Reason: fmt.Sprintf("loop trip %d is too short to amortize a trace", c.Loop.Trip)}
		return
	}
	c.Trace = TraceMarker{Traceable: true}
}

// computeInstFields extends each partition's instance fields with whatever
// its instances receive through copies, so initialization seeds and
// finalization recovers them.
func (c *Compiled) computeInstFields() {
	c.InstFields = make(map[*region.Partition][]region.FieldID, len(c.PartFields))
	// seen mirrors each partition's InstFields as a set so dedup is O(1) per
	// field instead of a rescan of the accumulated list; append order (and
	// therefore the emitted field order) is unchanged.
	seen := make(map[*region.Partition]map[region.FieldID]bool, len(c.PartFields))
	for p, fs := range c.PartFields {
		c.InstFields[p] = append([]region.FieldID(nil), fs...)
		set := make(map[region.FieldID]bool, len(fs))
		for _, f := range fs {
			set[f] = true
		}
		seen[p] = set
	}
	add := func(p *region.Partition, fs []region.FieldID) {
		set := seen[p]
		if set == nil {
			set = make(map[region.FieldID]bool)
			seen[p] = set
		}
		for _, f := range fs {
			if !set[f] {
				set[f] = true
				c.InstFields[p] = append(c.InstFields[p], f)
			}
		}
	}
	for _, op := range c.Body {
		if op.Copy != nil {
			add(op.Copy.Dst, op.Copy.Fields)
		}
	}
	for _, cp := range c.InitCopies {
		add(cp.Dst, cp.Fields)
	}
}

// createShards block-partitions the launch domain over the shards (§3.5).
func (c *Compiled) createShards() {
	ns := c.Opts.NumShards
	if ns > len(c.Domain) {
		ns = len(c.Domain)
		c.Opts.NumShards = ns
	}
	c.Owned = make([][]geometry.Point, ns)
	c.ShardOf = make(map[geometry.Point]int, len(c.Domain))
	c.ColorIdx = make(map[geometry.Point]int, len(c.Domain))
	for i, col := range c.Domain {
		c.ColorIdx[col] = i
	}
	n := len(c.Domain)
	for s := 0; s < ns; s++ {
		lo, hi := s*n/ns, (s+1)*n/ns
		c.Owned[s] = c.Domain[lo:hi]
		for _, col := range c.Owned[s] {
			c.ShardOf[col] = s
		}
	}
}

// computeIntersections runs the two-phase intersection computation for
// every copy (§3.3), recording wall-clock timings for the Table 1 harness.
func (c *Compiled) computeIntersections() error {
	for _, op := range c.Body {
		if op.Copy == nil {
			continue
		}
		if err := c.intersectCopy(op.Copy); err != nil {
			return err
		}
	}
	for _, cp := range c.InitCopies {
		if err := c.intersectCopy(cp); err != nil {
			return err
		}
	}
	return nil
}

func (c *Compiled) intersectCopy(cp *CopyOp) error {
	if cp.Reduce == region.ReduceNone && cp.Src == cp.Dst {
		// A plain copy between distinct partitions keeps all pairs; Src ==
		// Dst never occurs for plain copies (instances do not copy to
		// themselves).
		return fmt.Errorf("cr: plain self copy on %s", cp.Src.Name())
	}
	t0 := time.Now()
	cands := intersect.Shallow(cp.Src, cp.Dst)
	t1 := time.Now()
	pairs := intersect.Complete(cp.Src, cp.Dst, cands)
	t2 := time.Now()
	// Restrict to the launch domain: partitions may carry colors the loop
	// never launches, and those have no instances. Order stays (dst, src),
	// which the executor relies on to chain reduction applications
	// deterministically.
	if c.domainSet == nil {
		c.domainSet = make(map[geometry.Point]bool, len(c.Domain))
		for _, col := range c.Domain {
			c.domainSet[col] = true
		}
	}
	kept := pairs[:0]
	for _, p := range pairs {
		if c.domainSet[p.Src] && c.domainSet[p.Dst] {
			kept = append(kept, p)
		}
	}
	cp.Pairs = kept
	c.Timings.Shallow += t1.Sub(t0)
	c.Timings.Complete += t2.Sub(t1)
	c.Timings.Candidates += len(cands)
	c.Timings.Pairs += len(kept)
	return nil
}

// planFinalization determines which partitions carry final data back to the
// parent regions and checks coverage: every element written anywhere in the
// loop must be covered by a disjoint partition whose instances receive the
// data (directly or through the inserted copies), or the final state of the
// region would be unrecoverable from the distributed instances. A loop that
// touches a region *only* through aliased partitions (e.g. reductions into
// an image with no disjoint partition used at all) is rejected — final
// state needs a disjoint home, which every practical Regent program (and
// all four evaluation apps) provides.
func (c *Compiled) planFinalization(info *loopInfo) error {
	covered := make(map[*region.Region]geometry.IndexSpace)
	var writtenAll []*region.Partition
	for _, p := range c.UsedParts {
		if info.written[p] {
			writtenAll = append(writtenAll, p)
		}
	}
	// A partition's instances hold final data if it is disjoint and either
	// written directly or the destination of copies; aliased partitions are
	// excluded (their instances may hold duplicated stale overlaps).
	seen := map[*region.Partition]bool{}
	addFinal := func(p *region.Partition) {
		if seen[p] || !p.Disjoint() {
			return
		}
		seen[p] = true
		c.WrittenDisjoint = append(c.WrittenDisjoint, p)
		root := p.Parent().Root()
		u := unionOf(p)
		if cur, ok := covered[root]; ok {
			covered[root] = cur.Union(u)
		} else {
			covered[root] = u
		}
	}
	for _, p := range writtenAll {
		addFinal(p)
	}
	for _, op := range c.Body {
		if op.Copy != nil {
			addFinal(op.Copy.Dst)
		}
	}
	for _, p := range writtenAll {
		root := p.Parent().Root()
		u := unionOf(p)
		got, ok := covered[root]
		if !ok || !got.ContainsAll(u) {
			return fmt.Errorf("cr: writes to aliased partition %s are not covered by any disjoint written partition; finalization cannot recover the region state", p.Name())
		}
	}
	return nil
}

func unionOf(p *region.Partition) geometry.IndexSpace {
	return p.Union()
}
