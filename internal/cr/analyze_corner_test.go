package cr

// Corner cases of the target-program analysis (analyze.go): conflicts
// require a writer, aliasing, AND intersecting fields — dropping any one
// of the three must keep the loop replicable.

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/region"
)

// cornerFixture is a region with two structurally identical disjoint
// block partitions (distinct partition objects over the same index space,
// so they alias each other but not themselves) and two fields.
type cornerFixture struct {
	prog   *ir.Program
	b      *region.Region
	p1, p2 *region.Partition
	x, y   region.FieldID
	nt     int64
}

func newCornerFixture() *cornerFixture {
	const n, nt = 24, 4
	p := ir.NewProgram("corner")
	fs := region.NewFieldSpace("x", "y")
	x, y := fs.Field("x"), fs.Field("y")
	b := p.Tree.NewRegion("B", geometry.NewIndexSpace(geometry.R1(0, n-1)))
	p.FieldSpaces[b] = fs
	return &cornerFixture{
		prog: p, b: b,
		p1: b.Block("P1", nt), p2: b.Block("P2", nt),
		x: x, y: y, nt: nt,
	}
}

func (f *cornerFixture) task(name string, params ...ir.Param) *ir.TaskDecl {
	return &ir.TaskDecl{Name: name, Params: params, CostPerElem: 1}
}

func (f *cornerFixture) loop(launches ...ir.Stmt) *ir.Loop {
	l := &ir.Loop{Var: "t", Trip: 2, Body: launches}
	f.prog.Add(l)
	return l
}

// TestAnalyzeReadOnlyAliasedPair: two launches (and one launch with two
// arguments) reading the same data through aliased partitions conflict
// with nobody — read-read pairs need no ordering, so the loop compiles
// and no copies are inserted between the aliased readers.
func TestAnalyzeReadOnlyAliasedPair(t *testing.T) {
	f := newCornerFixture()
	r2 := f.task("R2",
		ir.Param{Name: "a", Priv: ir.PrivRead, Fields: []region.FieldID{f.x}},
		ir.Param{Name: "b", Priv: ir.PrivRead, Fields: []region.FieldID{f.x}},
	)
	r1 := f.task("R1", ir.Param{Name: "a", Priv: ir.PrivRead, Fields: []region.FieldID{f.x}})
	loop := f.loop(
		&ir.Launch{Task: r2, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p1}, {Part: f.p2}}},
		&ir.Launch{Task: r1, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p2}}},
	)
	c, err := Compile(f.prog, loop, Options{NumShards: 2})
	if err != nil {
		t.Fatalf("read-only aliased arguments must be replicable: %v", err)
	}
	for _, op := range c.Body {
		if op.Copy != nil {
			t.Errorf("no writer in the loop, but a copy was inserted: %v", op.Copy)
		}
	}
}

// TestAnalyzeAliasedPartitionsSameIndexSpace: a writer through one block
// partition and a reader through a distinct but structurally identical
// one. The partitions alias (same subregions of the same region), so the
// compiler must treat the reader as consuming the writer's data and
// insert a copy between them.
func TestAnalyzeAliasedPartitionsSameIndexSpace(t *testing.T) {
	f := newCornerFixture()
	w := f.task("W", ir.Param{Name: "a", Priv: ir.PrivReadWrite, Fields: []region.FieldID{f.x}})
	r := f.task("R", ir.Param{Name: "a", Priv: ir.PrivRead, Fields: []region.FieldID{f.x}})
	loop := f.loop(
		&ir.Launch{Task: w, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p1}}},
		&ir.Launch{Task: r, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p2}}},
	)
	c, err := Compile(f.prog, loop, Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var cp *CopyOp
	for _, op := range c.Body {
		if op.Copy != nil {
			cp = op.Copy
		}
	}
	if cp == nil || cp.Src != f.p1 || cp.Dst != f.p2 {
		t.Fatalf("expected a P1 -> P2 copy between the aliased partitions, body: %v", kinds(c))
	}
	// Identical blockings: each destination color overlaps exactly its own
	// source color, nothing else.
	if int64(len(cp.Pairs)) != f.nt {
		t.Errorf("copy has %d pairs, want %d (one per color)", len(cp.Pairs), f.nt)
	}
	for _, pr := range cp.Pairs {
		if pr.Src != pr.Dst {
			t.Errorf("identically-blocked partitions should only overlap same-color: %v", pr)
		}
	}
}

// TestAnalyzeIntraLaunchAliasedConflict: the same aliased write/read pair
// inside ONE launch is rejected — point tasks of a forall may run in any
// order, so a conflict between two arguments of the same launch makes the
// loop not actually parallel.
func TestAnalyzeIntraLaunchAliasedConflict(t *testing.T) {
	f := newCornerFixture()
	wr := f.task("WR",
		ir.Param{Name: "a", Priv: ir.PrivReadWrite, Fields: []region.FieldID{f.x}},
		ir.Param{Name: "b", Priv: ir.PrivRead, Fields: []region.FieldID{f.x}},
	)
	loop := f.loop(
		&ir.Launch{Task: wr, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p1}, {Part: f.p2}}},
	)
	_, err := Compile(f.prog, loop, Options{NumShards: 2})
	if err == nil || !strings.Contains(err.Error(), "conflicting aliased arguments") {
		t.Fatalf("conflicting aliased arguments in one launch must be rejected, got err=%v", err)
	}
}

// TestAnalyzeEmptyFieldIntersection: the same aliased write/read pair is
// fine — even inside one launch — when the two arguments touch disjoint
// field sets, and no copy is inserted for the untouched field.
func TestAnalyzeEmptyFieldIntersection(t *testing.T) {
	f := newCornerFixture()
	wr := f.task("WR",
		ir.Param{Name: "a", Priv: ir.PrivReadWrite, Fields: []region.FieldID{f.x}},
		ir.Param{Name: "b", Priv: ir.PrivRead, Fields: []region.FieldID{f.y}},
	)
	loop := f.loop(
		&ir.Launch{Task: wr, Domain: ir.Colors1D(f.nt), Args: []ir.RegionArg{{Part: f.p1}, {Part: f.p2}}},
	)
	c, err := Compile(f.prog, loop, Options{NumShards: 2})
	if err != nil {
		t.Fatalf("disjoint field sets cannot conflict: %v", err)
	}
	for _, op := range c.Body {
		if op.Copy == nil {
			continue
		}
		for _, fd := range op.Copy.Fields {
			if fd == f.y {
				t.Errorf("field y is never written; copy %v should not move it", op.Copy)
			}
		}
	}
}
