package cr

import (
	"repro/internal/ir"
	"repro/internal/region"
)

// insertCopies performs the data-replication transformation (§3.1): with
// every partition now owning its storage, a write to a partition must be
// followed by copies to every aliased partition that is also used in the
// loop (Figure 4a, line 9). Reductions instead produce reduction copies
// that fold the launch's temporary reduction instances into every aliased
// used partition and into the reduced partition's own instances (§4.3).
//
// Copies are placed immediately after the writing statement; placeCopies
// then improves the placement (§3.2). The aliasing decisions use only the
// static region-tree test (region.PartitionsMayAlias); the dynamic
// intersections refine each surviving copy to its non-empty pairs later.
func insertCopies(info *loopInfo) ([]BodyOp, int) {
	var body []BodyOp
	nextID := 0
	inserted := 0

	emitCopy := func(cp *CopyOp) {
		cp.ID = nextID
		nextID++
		inserted++
		body = append(body, BodyOp{Copy: cp})
	}

	for _, s := range info.stmts {
		switch s := s.(type) {
		case *ir.SetScalar:
			body = append(body, BodyOp{Set: s})
		case *ir.Launch:
			body = append(body, BodyOp{Launch: s})
			for ai, a := range s.Args {
				param := s.Task.Params[ai]
				switch param.Priv {
				case ir.PrivReadWrite:
					for _, q := range info.usedParts {
						if q == a.Part || !region.PartitionsMayAlias(a.Part, q) {
							continue
						}
						fields := fieldIntersection(param.Fields, info.partFields[q])
						if len(fields) == 0 {
							continue
						}
						emitCopy(&CopyOp{
							Src: a.Part, Dst: q, Fields: fields,
							Reduce:    region.ReduceNone,
							SrcLaunch: nil, SrcArg: -1,
						})
					}
				case ir.PrivReduce:
					// The temporary reduction instance must be folded into
					// the reduced partition's own instances and into every
					// aliased used partition. Disjoint destinations receive
					// every reduced field, not just the fields their own
					// tasks touch: they are the finalization sources, and a
					// reduction into an aliased partition would otherwise
					// have no disjoint home and be lost at loop exit.
					emitCopy(&CopyOp{
						Src: a.Part, Dst: a.Part, Fields: append([]region.FieldID(nil), param.Fields...),
						Reduce:    param.Op,
						SrcLaunch: s, SrcArg: ai,
					})
					for _, q := range info.usedParts {
						if q == a.Part || !region.PartitionsMayAlias(a.Part, q) {
							continue
						}
						fields := fieldIntersection(param.Fields, info.partFields[q])
						if q.Disjoint() {
							fields = append([]region.FieldID(nil), param.Fields...)
						}
						if len(fields) == 0 {
							continue
						}
						emitCopy(&CopyOp{
							Src: a.Part, Dst: q, Fields: fields,
							Reduce:    param.Op,
							SrcLaunch: s, SrcArg: ai,
						})
					}
				}
			}
		}
	}
	return body, inserted
}

func fieldIntersection(fs []region.FieldID, set map[region.FieldID]bool) []region.FieldID {
	var out []region.FieldID
	for _, f := range fs {
		if set[f] {
			out = append(out, f)
		}
	}
	return out
}
