package cr_test

// The static verifier (internal/verify) closes the loop on the compiler:
// every compilation the cr tests exercise — the paper's example programs
// and all four evaluation applications — must produce a schedule whose
// cross-shard conflicts are fully ordered by the inserted copies and
// sync. This lives in an external test package because internal/verify
// imports cr.

import (
	"fmt"
	"testing"

	"repro/internal/cr"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/spmd"
	"repro/internal/verify"
)

func verifyProgram(t *testing.T, prog *ir.Program, opts cr.Options) {
	t.Helper()
	plans, err := spmd.CompileAll(prog, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := verify.VerifyAll(prog, plans)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.OK() {
		for _, f := range rep.Findings {
			t.Errorf("finding: %s", f)
		}
		t.Fatalf("verifier rejected the compilation (%d findings)", len(rep.Findings))
	}
	if len(plans) > 0 && rep.Stats.Nodes == 0 {
		t.Fatal("verifier built an empty happens-before graph; the check is vacuous")
	}
	// The specialization tables must match an independent recomputation:
	// this is what licenses the executor to instantiate shard plans from
	// the shared capture instead of capturing per shard.
	if err := verify.CheckSpecAll(prog, plans); err != nil {
		t.Fatalf("spec check: %v", err)
	}
}

// TestVerifyTestPrograms runs the verifier over every example program the
// compiler tests use, under both sync lowerings and with the placement
// optimizer both on and off.
func TestVerifyTestPrograms(t *testing.T) {
	progs := []struct {
		name string
		prog *ir.Program
	}{
		{"figure2", progtest.NewFigure2(48, 8, 3).Prog},
		{"scalarsum", progtest.NewScalarSum(48, 8).Prog},
		{"regionreduce", progtest.NewRegionReduce(24, 4, 3).Prog},
	}
	for _, tc := range progs {
		for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
			for _, noOpt := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/noopt=%v", tc.name, sync, noOpt)
				t.Run(name, func(t *testing.T) {
					verifyProgram(t, tc.prog, cr.Options{NumShards: 4, Sync: sync, NoPlacementOpt: noOpt})
				})
			}
		}
	}
}

// TestVerifyApps verifies the compiled schedules of the four evaluation
// applications (stencil, miniaero, pennant, circuit) at small node
// counts: the acceptance bar for the whole verifier.
func TestVerifyApps(t *testing.T) {
	nodes := []int{2, 4}
	if testing.Short() {
		nodes = []int{2}
	}
	for _, app := range harness.Apps() {
		for _, n := range nodes {
			t.Run(fmt.Sprintf("%s/nodes=%d", app.Name, n), func(t *testing.T) {
				prog, _ := app.BuildProgram(n)
				for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
					verifyProgram(t, prog, cr.Options{NumShards: n, Sync: sync})
				}
			})
		}
	}
}
