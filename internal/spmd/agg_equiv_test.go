// Dynamic validation of coalesced exchange plans: for every evaluation
// app, both lowerings, and both execution backends, a run with copy
// aggregation on must produce bitwise-identical final stores to the
// unaggregated run — coalescing merges transfers, it never changes a
// value or a fold order. On top of equivalence, aggregation must strictly
// reduce the DES message count on every app's exchange phase, and the two
// backends must agree exactly on the aggregation counters.
//
// Lives in an external test package so it can import the app builders
// without adding them to spmd's own dependencies.
package spmd_test

import (
	"fmt"
	"testing"

	"repro/internal/apps/pennant"
	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/realm/native"
	"repro/internal/region"
	"repro/internal/spmd"
)

// runAgg compiles with aggregation on or off and executes one freshly
// built program on the chosen backend. The compile/execute skeleton is
// runPruned's; only the compiler option differs.
func runAgg(t *testing.T, prog *ir.Program, nodes int, sync cr.SyncMode, backend string, agg bool) (map[*region.Region]*region.Store, realm.Stats) {
	t.Helper()
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync, Agg: agg})
	if err != nil {
		t.Fatal(err)
	}
	var sim realm.Exec
	switch backend {
	case "des":
		cfg := realm.DefaultConfig(nodes)
		cfg.CoresPerNode = 4
		sim = realm.MustNewSim(cfg)
	case "native":
		m, err := native.NewMachine(realm.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		sim = m
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	res, err := spmd.New(sim, prog, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Stores, sim.Stats()
}

// TestAggEquivalence: coalescing is invisible to the computed values —
// bitwise — for every app, both lowerings, both backends (the
// equivalence-matrix aggregation axis).
func TestAggEquivalence(t *testing.T) {
	const nodes = 2
	backends := []string{"des", "native"}
	if testing.Short() {
		backends = []string{"des"}
	}
	// over = pieces per shard: 1 is the standard one-piece-per-shard
	// configuration; 2 overdecomposes so every shard produces several pairs
	// toward each neighbor and the phase groups have multiple remote
	// members (the interesting coalescing case).
	for _, app := range pruneApps {
		for _, over := range []int{1, 2} {
			for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
				for _, backend := range backends {
					name := fmt.Sprintf("%s/x%d/%v/%s", app.name, over, sync, backend)
					t.Run(name, func(t *testing.T) {
						base, _ := runAgg(t, app.build(over*nodes), nodes, sync, backend, false)
						agged, _ := runAgg(t, app.build(over*nodes), nodes, sync, backend, true)
						assertStoresBitwiseEqual(t, base, agged)
					})
				}
			}
		}
	}
}

// aggMessagePins holds the regression-pinned DES message counts at 4 nodes
// with 8 pieces (two per shard — each shard then produces several pairs
// toward each neighbor within an exchange phase, so coalescing has remote
// multi-member groups to merge on every app) under p2p: aggregation must
// land exactly these, and strictly below the unaggregated count.
// Deliberately exact (like TestPruneReducesMessages's strict inequality,
// but pinned) so an accidental change to the grouping key or the group
// tables shows up as a diff, not a silent drift.
var aggMessagePins = map[string]struct{ off, on int64 }{
	"stencil":  {78, 60},
	"miniaero": {170, 106},
	"pennant":  {96, 60},
	"circuit":  {186, 105},
}

// TestAggReducesMessages: with -agg on, the DES message count strictly
// drops on every app's exchange phase, pinned per app against silent
// regression of the grouping.
func TestAggReducesMessages(t *testing.T) {
	const nodes = 4
	for _, app := range pruneApps {
		t.Run(app.name, func(t *testing.T) {
			_, off := runAgg(t, app.build(2*nodes), nodes, cr.PointToPoint, "des", false)
			_, on := runAgg(t, app.build(2*nodes), nodes, cr.PointToPoint, "des", true)
			if on.Messages >= off.Messages {
				t.Errorf("aggregation did not reduce messages: %d -> %d", off.Messages, on.Messages)
			}
			if on.BytesSent != off.BytesSent {
				t.Errorf("aggregation changed bytes sent: %d -> %d (coalescing merges messages, not payloads)", off.BytesSent, on.BytesSent)
			}
			if on.AggGroups == 0 || on.AggSavedMessages == 0 {
				t.Errorf("aggregation counters empty with -agg on: groups=%d saved=%d", on.AggGroups, on.AggSavedMessages)
			}
			if off.AggGroups != 0 || off.AggSavedMessages != 0 {
				t.Errorf("aggregation counters nonzero with -agg off: groups=%d saved=%d", off.AggGroups, off.AggSavedMessages)
			}
			if off.Messages-on.Messages != on.AggSavedMessages {
				t.Errorf("message drop %d does not match AggSavedMessages %d", off.Messages-on.Messages, on.AggSavedMessages)
			}
			if pin, ok := aggMessagePins[app.name]; ok {
				if off.Messages != pin.off || on.Messages != pin.on {
					t.Errorf("message counts drifted from pins: off %d (want %d), on %d (want %d)",
						off.Messages, pin.off, on.Messages, pin.on)
				}
			}
		})
	}
}

// TestAggCountersCrossBackend: with -agg on, the DES and the native
// backend report identical Messages, BytesSent, AggGroups, and
// AggSavedMessages for every app — the counters are defined at issue
// time over the same group tables, so any divergence is a backend bug.
func TestAggCountersCrossBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("native backend runs are not short")
	}
	const nodes = 2
	for _, app := range pruneApps {
		t.Run(app.name, func(t *testing.T) {
			_, des := runAgg(t, app.build(2*nodes), nodes, cr.PointToPoint, "des", true)
			_, nat := runAgg(t, app.build(2*nodes), nodes, cr.PointToPoint, "native", true)
			if des.Messages != nat.Messages {
				t.Errorf("Messages diverge: des %d, native %d", des.Messages, nat.Messages)
			}
			if des.BytesSent != nat.BytesSent {
				t.Errorf("BytesSent diverge: des %d, native %d", des.BytesSent, nat.BytesSent)
			}
			if des.AggGroups != nat.AggGroups {
				t.Errorf("AggGroups diverge: des %d, native %d", des.AggGroups, nat.AggGroups)
			}
			if des.AggSavedMessages != nat.AggSavedMessages {
				t.Errorf("AggSavedMessages diverge: des %d, native %d", des.AggSavedMessages, nat.AggSavedMessages)
			}
		})
	}
}

// TestAggFailoverRecovers: coalescing composes with fault tolerance — a
// run with aggregation on and injected node crashes must recover through
// checkpoint/restart to stores bitwise-identical to the fault-free
// aggregated run, with ZERO re-capture: the shared trace capture (which
// records the merged per-group issue plan) survives failover and is
// re-specialized, never re-executed.
func TestAggFailoverRecovers(t *testing.T) {
	const nodes = 4
	run := func(fp *realm.FaultPlan) (*spmd.Result, spmd.TraceStats, *ir.Program) {
		prog := pennant.Build(pennant.Small(2 * nodes)).Prog
		plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: cr.PointToPoint, Agg: true})
		if err != nil {
			t.Fatal(err)
		}
		sim := realm.MustNewSim(realm.DefaultConfig(nodes))
		if fp != nil {
			if err := sim.InjectFaults(*fp); err != nil {
				t.Fatal(err)
			}
		}
		eng := spmd.New(sim, prog, ir.ExecReal, plans)
		eng.Recov = spmd.Recovery{MaxRetries: 6, Backoff: realm.Microseconds(200)}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.TraceStats(), prog
	}
	golden, _, _ := run(nil)
	res, stats, _ := run(&realm.FaultPlan{Seed: 4, CrashRate: 500})
	if res.Faults == nil || len(res.Faults.Crashes) == 0 {
		t.Skip("fault plan produced no crashes at this seed; nothing recovered")
	}
	if res.Faults.Unrecovered {
		t.Fatalf("aggregated run degraded: %+v", res.Faults)
	}
	if stats.Captures != 1 || stats.PerShardCaptures != 0 {
		t.Fatalf("aggregated failover re-captured: %+v", stats)
	}
	assertStoresBitwiseEqual(t, golden.Stores, res.Stores)
}

// TestAggRejectsPrune: the aggregated schedule is certified by CheckAgg
// and the pruned one by PlanPrune; neither pass models the other's
// rewrite, so the engine must refuse to run the combination.
func TestAggRejectsPrune(t *testing.T) {
	const nodes = 2
	prog := pennant.Build(pennant.Small(nodes)).Prog
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: cr.PointToPoint, Agg: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range plans {
		plan.Prune = &cr.PruneInfo{}
	}
	cfg := realm.DefaultConfig(nodes)
	sim := realm.MustNewSim(cfg)
	if _, err := spmd.New(sim, prog, ir.ExecReal, plans).Run(); err == nil {
		t.Fatal("engine accepted aggregation combined with pruning")
	}
}
