package spmd

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/realm"
)

// shardEnv is a shard's replicated scalar environment. Control replication
// replicates scalar state across shards (§4.4): every shard executes the
// same scalar statements on the same values, so the bindings stay
// identical. Scalar-reduction results are future-valued; reading one makes
// the shard thread wait for the collective (its value is then identical on
// every shard because the collective folds in participant order).
type shardEnv struct {
	th   realm.Agent
	vals map[string]float64
	futs map[string]futVal
}

type futVal struct {
	ev  realm.Event
	val func() float64
}

func newShardEnv(th realm.Agent, base ir.MapEnv) *shardEnv {
	vals := make(map[string]float64, len(base))
	for k, v := range base {
		vals[k] = v
	}
	return &shardEnv{th: th, vals: vals, futs: make(map[string]futVal)}
}

// Get implements ir.Env, forcing futures.
func (e *shardEnv) Get(name string) float64 {
	if f, ok := e.futs[name]; ok {
		e.th.WaitEvent(f.ev)
		e.vals[name] = f.val()
		delete(e.futs, name)
	}
	v, ok := e.vals[name]
	if !ok {
		panic(fmt.Sprintf("spmd: unbound scalar %q", name))
	}
	return v
}

func (e *shardEnv) set(name string, v float64) {
	delete(e.futs, name)
	e.vals[name] = v
}

func (e *shardEnv) setFuture(name string, ev realm.Event, val func() float64) {
	e.futs[name] = futVal{ev: ev, val: val}
}

// snapshot forces all pending futures (in sorted name order, keeping the
// simulation schedule deterministic) and returns the concrete bindings.
func (e *shardEnv) snapshot() ir.MapEnv {
	names := make([]string, 0, len(e.futs))
	for name := range e.futs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.Get(name)
	}
	out := make(ir.MapEnv, len(e.vals))
	for k, v := range e.vals {
		out[k] = v
	}
	return out
}
