package spmd

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
)

// runCRTrace runs the program under SPMD with tracing on or off and
// returns the result plus the trace counters.
func runCRTrace(t *testing.T, prog *ir.Program, nodes, shards int, sync cr.SyncMode, mode ir.ExecMode, noTrace bool) (*Result, TraceStats) {
	t.Helper()
	plans, err := CompileAll(prog, cr.Options{NumShards: shards, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, prog, mode, plans)
	eng.NoTrace = noTrace
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.TraceStats()
}

// TestPlanReplayMatchesInterpreted is the SPMD half of the tentpole
// guarantee: shard-plan replay must engage (one plan per shard, every
// iteration replayed) and leave the schedule — virtual time, DES stats, and
// Real-mode region contents — bitwise identical to the interpreted run.
// Covers halo exchange (Figure2), region reduction with fold chains, and
// scalar reduction with future-valued scalars.
func TestPlanReplayMatchesInterpreted(t *testing.T) {
	const shards, nodes = 4, 4
	for _, tc := range []struct {
		name  string
		build func() *ir.Program
		trip  int
	}{
		{"figure2", func() *ir.Program { return progtest.NewFigure2(48, 8, 6).Prog }, 6},
		{"regionReduce", func() *ir.Program { return progtest.NewRegionReduce(32, 4, 3).Prog }, 3},
		{"scalarSum", func() *ir.Program { return progtest.NewScalarSum(40, 8).Prog }, 2},
	} {
		for _, mode := range []ir.ExecMode{ir.ExecReal, ir.ExecModeled} {
			ref, offStats := runCRTrace(t, tc.build(), nodes, shards, cr.PointToPoint, mode, true)
			got, stats := runCRTrace(t, tc.build(), nodes, shards, cr.PointToPoint, mode, false)

			if offStats != (TraceStats{}) {
				t.Fatalf("%s: NoTrace engine built plans: %+v", tc.name, offStats)
			}
			if stats.Captures != 1 || stats.Specializations != shards || stats.PerShardCaptures != 0 {
				t.Errorf("%s mode %v: capture counters %+v, want one shared capture specialized to %d shards", tc.name, mode, stats, shards)
			}
			if want := shards * tc.trip; tc.trip > 0 && stats.ReplayedIters != want {
				t.Errorf("%s mode %v: replayed %d shard-iterations, want %d", tc.name, mode, stats.ReplayedIters, want)
			}
			if got.Elapsed != ref.Elapsed {
				t.Errorf("%s mode %v: Elapsed %d traced, %d untraced", tc.name, mode, got.Elapsed, ref.Elapsed)
			}
			if got.Stats != ref.Stats {
				t.Errorf("%s mode %v: Stats %+v traced, %+v untraced", tc.name, mode, got.Stats, ref.Stats)
			}
			if mode == ir.ExecReal {
				for k, v := range ref.Env {
					if got.Env[k] != v {
						t.Errorf("%s: scalar %q = %v traced, %v untraced", tc.name, k, got.Env[k], v)
					}
				}
			}
		}
	}

	// Real-mode store contents, checked against sequential semantics and the
	// untraced run on the same program objects.
	f := progtest.NewFigure2(48, 8, 6)
	seq := ir.ExecSequential(f.Prog)
	got, _ := runCRTrace(t, f.Prog, nodes, shards, cr.PointToPoint, ir.ExecReal, false)
	assertEqualStores(t, seq.Stores[f.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[f.B], got.Stores[f.B], f.B, f.Val)
}

// TestPlanBarrierAblationStaysInterpreted: the barrier lowering is the
// naive ablation baseline and must keep running the interpreted code path.
func TestPlanBarrierAblationStaysInterpreted(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 4)
	_, stats := runCRTrace(t, f.Prog, 4, 4, cr.BarrierSync, ir.ExecModeled, false)
	if stats != (TraceStats{}) {
		t.Fatalf("barrier-sync run should not trace: %+v", stats)
	}
}

// TestPlanShortLoopNotTraced: the compiler's loop-boundary marker withholds
// tracing from loops too short to amortize a plan, and the engine obeys it.
func TestPlanShortLoopNotTraced(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 1)
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Trace.Traceable || p.Trace.Reason == "" {
			t.Fatalf("trip-1 loop marker = %+v, want untraceable with a reason", p.Trace)
		}
	}
	sim := realm.MustNewSim(testConfig(2))
	eng := New(sim, f.Prog, ir.ExecModeled, plans)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st := eng.TraceStats(); st != (TraceStats{}) {
		t.Fatalf("trip-1 loop was traced: %+v", st)
	}

	f2 := progtest.NewFigure2(24, 4, 4)
	plans2, err := CompileAll(f2.Prog, cr.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans2 {
		if !p.Trace.Traceable {
			t.Fatalf("trip-4 loop marker = %+v, want traceable", p.Trace)
		}
	}
}

// TestPlanFailoverInvalidates is the SPMD half of the PR 3 invalidation
// satellite: a crash recovered by shard failover rebuilds the run state,
// which must discard the captured plans (the placement changed), re-capture
// under the new placement, and still produce results bitwise identical to
// the untraced faulty run. Runs with cross-shard sharing disabled so the
// per-shard capture path is what failover re-exercises; the sharing path
// (shared capture survives the rebuild and is shipped to the restarted
// shard) is covered by share_test.go.
func TestPlanFailoverInvalidates(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 3, Backoff: realm.Microseconds(50)}
	run := func(fp *realm.FaultPlan, noTrace bool) (*Result, TraceStats, *progtest.Figure2) {
		f := progtest.NewFigure2(48, 8, 8)
		plans, err := CompileAll(f.Prog, cr.Options{NumShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sim := realm.MustNewSim(testConfig(nodes))
		if fp != nil {
			if err := sim.InjectFaults(*fp); err != nil {
				t.Fatal(err)
			}
		}
		eng := New(sim, f.Prog, ir.ExecReal, plans)
		eng.Recov = rec
		eng.NoTrace = noTrace
		eng.NoShare = true
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.TraceStats(), f
	}

	// Fault-free first, to time the crash mid-run and to pin the baseline:
	// plans persist across checkpointed epochs of one run state.
	res0, stats0, _ := run(nil, false)
	if stats0.PerShardCaptures != shards || stats0.Captures != 0 {
		t.Fatalf("fault-free NoShare recovery run captured %+v, want %d per-shard plans across all epochs and no shared capture", stats0, shards)
	}

	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: res0.Elapsed / 2}}}
	ref, refStats, fRef := run(fp, true)
	got, stats, f := run(fp, false)

	if ref.Faults == nil || len(ref.Faults.Crashes) != 1 || ref.Faults.Restarts < 1 {
		t.Fatalf("fault report = %+v, want 1 crash and at least 1 restart", ref.Faults)
	}
	if refStats != (TraceStats{}) {
		t.Fatalf("NoTrace faulty run built plans: %+v", refStats)
	}
	// The failover rebuilt the run state, so every surviving shard
	// re-captured under the new placement, and the discarded plans were
	// counted as invalidations.
	if stats.PerShardCaptures <= shards {
		t.Errorf("failover did not invalidate plans: %d built, want > %d", stats.PerShardCaptures, shards)
	}
	if stats.Invalidations == 0 {
		t.Errorf("failover rebuild discarded no plans: %+v", stats)
	}
	if stats.Ships != 0 || stats.ShippedBytes != 0 {
		t.Errorf("NoShare run shipped traces: %+v", stats)
	}
	if got.Elapsed != ref.Elapsed || got.Stats != ref.Stats {
		t.Errorf("traced faulty run diverged: %v/%+v vs %v/%+v", got.Elapsed, got.Stats, ref.Elapsed, ref.Stats)
	}
	assertEqualStores(t, ref.Stores[fRef.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, ref.Stores[fRef.B], got.Stores[f.B], f.B, f.Val)

	// And the recovered contents still match sequential semantics.
	refSeq := progtest.NewFigure2(48, 8, 8)
	seq := ir.ExecSequential(refSeq.Prog)
	assertEqualStores(t, seq.Stores[refSeq.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[refSeq.B], got.Stores[f.B], f.B, f.Val)
}

// TestPlanReplayDeterministic: two traced runs are byte-identical.
func TestPlanReplayDeterministic(t *testing.T) {
	run := func() (realm.Time, realm.Stats) {
		f := progtest.NewFigure2(48, 8, 6)
		res, _ := runCRTrace(t, f.Prog, 4, 4, cr.PointToPoint, ir.ExecModeled, false)
		return res.Elapsed, res.Stats
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("traced SPMD run not deterministic: %v/%+v vs %v/%+v", e1, s1, e2, s2)
	}
}
