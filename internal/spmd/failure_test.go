package spmd

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
)

// TestKernelPanicSurfacesAsError: a faulty task kernel (out-of-privilege
// access, bad index, application bug) must surface as an error from Run,
// not crash the process.
func TestKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 1)
	// Sabotage TF's kernel to violate its privileges.
	tf := f.Loop.Body[0].(*ir.Launch)
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		// Write through the read-only argument: strict privileges panic.
		tc.Args[1].Set(f.Val, tc.Args[1].Region.IndexSpace().Bounds().Lo, 1)
	}
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(2))
	_, err = New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected kernel panic to surface as error, got %v", err)
	}
}

// TestMidLoopKernelPanicSurfacesAsError: a kernel that only blows up part
// way through the replicated loop (a data-dependent bug) still comes back
// as an error with the earlier iterations' work already issued.
func TestMidLoopKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 4)
	tf := f.Loop.Body[0].(*ir.Launch)
	good := tf.Task.Kernel
	calls := 0
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		calls++
		if calls > 6 { // 4 colors per iteration: fail during iteration 1
			panic("mid-loop kernel bug")
		}
		good(tc)
	}
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(2))
	_, err = New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected mid-loop kernel panic to surface as error, got %v", err)
	}
	if calls <= 6 {
		t.Fatalf("kernel ran %d times; the panic never fired", calls)
	}
}

// TestReductionKernelPanicSurfacesAsError: a panic in a kernel feeding
// region-reduction folds (temporaries, reduction copies, fold chains in
// flight) must also surface as an error, not wedge or crash the process.
func TestReductionKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewRegionReduce(32, 4, 3)
	contrib := f.Loop.Body[0].(*ir.Launch)
	good := contrib.Task.Kernel
	calls := 0
	contrib.Task.Kernel = func(tc *ir.TaskCtx) {
		calls++
		if calls > 5 { // fail during the second iteration's folds
			panic("reduction kernel bug")
		}
		good(tc)
	}
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(4))
	_, err = New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected reduction kernel panic to surface as error, got %v", err)
	}
}

// runCRFaulty compiles and runs Figure2 under SPMD with a fault plan and
// recovery settings installed.
func runCRFaulty(t *testing.T, f *progtest.Figure2, nodes, shards int, fp *realm.FaultPlan, rec Recovery, tr *realm.Tracer) (*Result, error) {
	t.Helper()
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(nodes))
	if tr != nil {
		sim.SetTracer(tr)
	}
	if fp != nil {
		if err := sim.InjectFaults(*fp); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(sim, f.Prog, ir.ExecReal, plans)
	eng.Recov = rec
	return eng.Run()
}

// TestCrashRecoveryMatchesFaultFree is the acceptance test of the recovery
// layer: a run with an injected node crash, recovered through
// checkpoint/restart and shard failover, must produce region contents
// identical to the fault-free run (and to sequential semantics).
func TestCrashRecoveryMatchesFaultFree(t *testing.T) {
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 3, Backoff: realm.Microseconds(50)}

	golden := build()
	res0, err := runCRFaulty(t, golden, 4, 4, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Faults == nil || len(res0.Faults.Crashes) != 0 || res0.Faults.Restarts != 0 || res0.Faults.Checkpoints == 0 {
		t.Fatalf("fault-free run with recovery should checkpoint and nothing else, got %+v", res0.Faults)
	}

	f := build()
	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: res0.Elapsed / 2}}}
	res, err := runCRFaulty(t, f, 4, 4, fp, rec, nil)
	if err != nil {
		t.Fatalf("crash was not recovered: %v", err)
	}
	if res.Faults == nil || len(res.Faults.Crashes) != 1 || res.Faults.Restarts < 1 {
		t.Fatalf("fault report = %+v, want 1 crash and at least 1 restart", res.Faults)
	}
	if res.Faults.Unrecovered {
		t.Fatalf("run degraded unexpectedly: %+v", res.Faults)
	}
	if res.Elapsed <= res0.Elapsed {
		t.Errorf("recovered run (%v) should cost more virtual time than fault-free (%v)", res.Elapsed, res0.Elapsed)
	}
	assertEqualStores(t, res0.Stores[golden.A], res.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, res0.Stores[golden.B], res.Stores[f.B], f.B, f.Val)

	ref := build()
	seq := ir.ExecSequential(ref.Prog)
	assertEqualStores(t, seq.Stores[ref.A], res.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[ref.B], res.Stores[f.B], f.B, f.Val)
}

// TestFaultSeedDeterminism: two runs under the same fault seed produce
// byte-identical stats, fault reports, and execution traces.
func TestFaultSeedDeterminism(t *testing.T) {
	fp := &realm.FaultPlan{
		Seed:            42,
		CrashRate:       3000, // expect a crash or two within the run
		DropRate:        0.1,
		DupRate:         0.05,
		StragglerRate:   0.2,
		StragglerFactor: 3,
	}
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 5, Backoff: realm.Microseconds(50)}
	run := func() (*Result, string) {
		f := progtest.NewFigure2(48, 8, 8)
		tr := realm.NewTracer()
		res, err := runCRFaulty(t, f, 4, 4, fp, rec, tr)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tr.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1.Elapsed != r2.Elapsed || r1.Stats != r2.Stats {
		t.Errorf("same fault seed diverged: %v/%+v vs %v/%+v", r1.Elapsed, r1.Stats, r2.Elapsed, r2.Stats)
	}
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Errorf("fault reports diverged:\n%+v\n%+v", r1.Faults, r2.Faults)
	}
	if t1 != t2 {
		t.Error("execution traces are not byte-identical under one fault seed")
	}
	for r, s1 := range r1.Stores {
		var s2 *region.Store
		for r2r, v := range r2.Stores {
			if r2r.Name() == r.Name() {
				s2 = v
			}
		}
		if s2 == nil || !s1.EqualOn(s2, 0, r.IndexSpace()) {
			t.Errorf("store %s differs between same-seed runs", r.Name())
		}
	}
}

// TestCrashDuringCheckpointCapture times a crash to land inside the
// checkpoint-capture window itself — after the epoch's shards have
// completed but before the capture copies to node 0's stable storage have
// drained. The half-taken checkpoint must be discarded (a nil from
// takeCheckpoint, one restart), the epoch re-runs, and the final stores
// stay bitwise correct.
func TestCrashDuringCheckpointCapture(t *testing.T) {
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 3, Backoff: realm.Microseconds(50)}
	golden := build()
	res0, err := runCRFaulty(t, golden, 4, 4, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The first checkpoint's capture copies start the instant iteration 2
	// (index 1) completes; one nanosecond later is inside the window, since
	// the copies pay at least the wire latency.
	at := res0.IterTimes[golden.Loop][1] + 1
	f := build()
	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: at}}}
	res, err := runCRFaulty(t, f, 4, 4, fp, rec, nil)
	if err != nil {
		t.Fatalf("crash during checkpoint capture was not recovered: %v", err)
	}
	rep := res.Faults
	if rep == nil || len(rep.Crashes) != 1 || rep.Restarts < 1 || rep.Unrecovered {
		t.Fatalf("fault report = %+v, want 1 crash, >= 1 restart, recovered", rep)
	}
	// The interrupted attempt still counts, so the faulty run takes more
	// checkpoint attempts than the fault-free one.
	if rep.Checkpoints <= res0.Faults.Checkpoints {
		t.Errorf("checkpoints = %d, want more than the fault-free %d (the interrupted capture counts)",
			rep.Checkpoints, res0.Faults.Checkpoints)
	}
	assertEqualStores(t, res0.Stores[golden.A], res.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, res0.Stores[golden.B], res.Stores[f.B], f.B, f.Val)
}

// TestDoubleFailover lands a second crash inside the first crash's
// recovery window (after the backoff, during the guarded restore/re-run),
// so the restart path itself fails over again. With a budget of two
// retries both are consumed back-to-back, both failovers complete, and the
// stores still come out bitwise correct.
func TestDoubleFailover(t *testing.T) {
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 4, Backoff: realm.Microseconds(50)}
	golden := build()
	res0, err := runCRFaulty(t, golden, 4, 4, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := res0.Elapsed / 2
	f := build()
	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{
		{Node: 2, At: mid},
		{Node: 3, At: mid + realm.Microseconds(60)}, // inside the first recovery (post-backoff)
	}}
	res, err := runCRFaulty(t, f, 4, 4, fp, rec, nil)
	if err != nil {
		t.Fatalf("double failover was not recovered: %v", err)
	}
	rep := res.Faults
	if rep == nil || len(rep.Crashes) != 2 || rep.Restarts < 2 || rep.Unrecovered {
		t.Fatalf("fault report = %+v, want 2 crashes, >= 2 restarts, recovered", rep)
	}
	assertEqualStores(t, res0.Stores[golden.A], res.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, res0.Stores[golden.B], res.Stores[f.B], f.B, f.Val)
}

// TestCrashDuringTraceShipping kills a shipment destination while the
// restarted placement's shared-capture shipments are still in flight: the
// mid-shipment failure must recurse into another restart (extra ships, no
// re-capture) and still recover to correct stores. The exact window is
// probed over a spread of virtual-time offsets — the DES is deterministic,
// so whichever offsets land mid-shipment do so on every run.
func TestCrashDuringTraceShipping(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 4, Backoff: realm.Microseconds(50)}
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }

	golden := build()
	res0, err := runCRFaulty(t, golden, nodes, shards, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := res0.Elapsed / 2

	// Reference single-crash run: how many ships does one clean failover do?
	refF := build()
	refPlans, err := CompileAll(refF.Prog, cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	refSim := realm.MustNewSim(testConfig(nodes))
	if err := refSim.InjectFaults(realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: mid}}}); err != nil {
		t.Fatal(err)
	}
	refEng := New(refSim, refF.Prog, ir.ExecReal, refPlans)
	refEng.Recov = rec
	if _, err := refEng.Run(); err != nil {
		t.Fatal(err)
	}
	baseShips := refEng.TraceStats().Ships
	if baseShips == 0 {
		t.Fatal("single failover shipped nothing; the probe has no baseline")
	}

	// Probe second-crash offsets across the recovery window until one lands
	// while shipments are in flight: the recursion then re-restarts, so the
	// run ships more than a single failover and restarts at least twice.
	found := false
	for off := realm.Time(55); off < 300 && !found; off += 5 {
		f := build()
		plans, err := CompileAll(f.Prog, cr.Options{NumShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sim := realm.MustNewSim(testConfig(nodes))
		fp := realm.FaultPlan{Crashes: []realm.NodeCrash{
			{Node: 2, At: mid},
			{Node: 3, At: mid + realm.Microseconds(float64(off))},
		}}
		if err := sim.InjectFaults(fp); err != nil {
			t.Fatal(err)
		}
		eng := New(sim, f.Prog, ir.ExecReal, plans)
		eng.Recov = rec
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("offset %dus: %v", off, err)
		}
		rep := res.Faults
		if rep == nil || rep.Unrecovered {
			t.Fatalf("offset %dus: run degraded: %+v", off, rep)
		}
		stats := eng.TraceStats()
		if stats.Captures != 1 || stats.PerShardCaptures != 0 {
			t.Fatalf("offset %dus: failover re-captured: %+v", off, stats)
		}
		if len(rep.Crashes) == 2 && rep.Restarts >= 2 && stats.Ships > baseShips {
			found = true
			assertEqualStores(t, res0.Stores[golden.A], res.Stores[f.A], f.A, f.Val)
			assertEqualStores(t, res0.Stores[golden.B], res.Stores[f.B], f.B, f.Val)
		}
	}
	if !found {
		t.Fatalf("no probed offset interrupted trace shipping (baseline ships = %d); widen the probe window", baseShips)
	}
}

// TestUnrecoverableDegradesToPartialResults: when crashes outpace the
// retry budget, Run returns the last checkpoint's partial results plus a
// structured report — not an error, and not a hang.
func TestUnrecoverableDegradesToPartialResults(t *testing.T) {
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }
	res0, err := runCRFaulty(t, build(), 4, 4, nil, Recovery{CheckpointEvery: 2, MaxRetries: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := res0.Elapsed / 2

	f := build()
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 2, Backoff: realm.Microseconds(5)}
	// The second and third crashes are timed to land inside the recovery
	// attempts that follow the first (after each backoff, during the guarded
	// restore/re-run), so no epoch ever completes between failures and the
	// retry budget of 2 exhausts. Fault injection is deterministic, so this
	// timing holds on every run.
	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{
		{Node: 1, At: mid},
		{Node: 2, At: mid + realm.Microseconds(10)},
		{Node: 3, At: mid + realm.Microseconds(35)},
	}}
	res, err := runCRFaulty(t, f, 4, 4, fp, rec, nil)
	if err != nil {
		t.Fatalf("degraded run should not error: %v", err)
	}
	rep := res.Faults
	if rep == nil || !rep.Unrecovered {
		t.Fatalf("fault report = %+v, want Unrecovered", rep)
	}
	if rep.Reason == "" || rep.TotalIters != 8 || rep.CompletedIters >= 8 {
		t.Errorf("report fields wrong: %+v", rep)
	}
	if rep.CompletedIters > 0 {
		// Partial results: region A holds the checkpoint's contents, which
		// must equal the sequential execution truncated to that iteration.
		ref := progtest.NewFigure2(48, 8, rep.CompletedIters)
		seq := ir.ExecSequential(ref.Prog)
		assertEqualStores(t, seq.Stores[ref.A], res.Stores[f.A], f.A, f.Val)
	}
	if len(res.IterTimes[f.Loop]) != rep.CompletedIters {
		t.Errorf("iter times has %d entries, want the %d completed iterations",
			len(res.IterTimes[f.Loop]), rep.CompletedIters)
	}
}
