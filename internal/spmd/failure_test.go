package spmd

import (
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
)

// TestKernelPanicSurfacesAsError: a faulty task kernel (out-of-privilege
// access, bad index, application bug) must surface as an error from Run,
// not crash the process.
func TestKernelPanicSurfacesAsError(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 1)
	// Sabotage TF's kernel to violate its privileges.
	tf := f.Loop.Body[0].(*ir.Launch)
	tf.Task.Kernel = func(tc *ir.TaskCtx) {
		// Write through the read-only argument: strict privileges panic.
		tc.Args[1].Set(f.Val, tc.Args[1].Region.IndexSpace().Bounds().Lo, 1)
	}
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.NewSim(testConfig(2))
	_, err = New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected kernel panic to surface as error, got %v", err)
	}
}
