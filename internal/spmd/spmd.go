// Package spmd executes control-replicated programs: the runtime support
// of §4.1 for the code the cr compiler emits. Each shard is a long-running
// thread replicating the loop's control flow over its block of the launch
// domain (§3.5). Every partition subregion has its own physical instance on
// its owner's node (the distributed-memory implementation of region
// semantics, §3); compiler-inserted copies move exactly the non-empty
// intersections between instances; synchronization is point-to-point
// between the producers and consumers of each pair (§3.4) — or global
// barriers in the naive lowering of Figure 4c — and never blocks the shard
// thread, preserving deferred execution. Region reductions fold temporary
// reduction instances into destinations with reduction copies chained in
// deterministic order (§4.3); scalar reductions use dynamic collectives
// whose results are future-valued scalars (§4.4).
package spmd

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// Overheads are the shard-side control costs. Shard-local task issue is
// dramatically cheaper than the implicit runtime's central analysis — that
// asymmetry is the entire point of control replication.
type Overheads struct {
	// ShardLaunchBase is the shard-thread cost to issue one local task.
	ShardLaunchBase realm.Time
	// CopySetup is the shard-thread cost to issue one copy pair.
	CopySetup realm.Time
	// Window is the scheduling window in iterations for shard run-ahead.
	Window int
	// KernelCores divides kernel durations (node-granular tasks).
	KernelCores int
	// EltBytes is the storage size of one field of one element.
	EltBytes int64
	// Noise optionally scales task durations per (node, iteration) to model
	// load imbalance and OS noise (nil = none).
	Noise realm.NoiseFn
}

// DefaultOverheads returns shard overheads for the given cores per node.
func DefaultOverheads(cores int) Overheads {
	return Overheads{
		ShardLaunchBase: realm.Microseconds(float64(cores) * 2),
		CopySetup:       realm.Microseconds(1),
		Window:          2,
		KernelCores:     cores,
		EltBytes:        8,
	}
}

// Result is the outcome of an SPMD run. Faults is nil on a fault-free run
// with recovery disabled; otherwise it reports what was injected and what
// the recovery layer did about it (including graceful degradation: a run
// that exhausted its restart budget returns the last checkpoint's partial
// results with Faults.Unrecovered set, not an error).
type Result struct {
	Stores    map[*region.Region]*region.Store
	Env       ir.MapEnv
	IterTimes map[*ir.Loop][]realm.Time
	Elapsed   realm.Time
	Stats     realm.Stats
	Faults    *FaultReport
}

// Engine executes a program whose loops have been control-replicated. It
// is written against the backend-neutral realm.Exec interface: the same
// engine drives the DES (*realm.Sim) and the native goroutine backend
// (realm/native.Machine). DES-only capabilities — fault injection,
// checkpoint/restart recovery, trace shipping — are reached through a type
// assertion and report realm.UnsupportedError elsewhere.
type Engine struct {
	Sim   realm.Exec
	Prog  *ir.Program
	Mode  ir.ExecMode
	Over  Overheads
	Plans map[*ir.Loop]*cr.Compiled

	// Recov configures checkpoint/restart; the zero value disables recovery
	// and executes exactly the plain SPMD schedule.
	Recov Recovery

	// NoTrace disables shard-plan capture/replay (see plan.go), forcing
	// every iteration through the interpreter. The schedule is identical
	// either way; the flag exists for the trace ablation and regression
	// tests.
	NoTrace bool

	// NoShare disables cross-shard trace sharing: every shard captures its
	// own plan directly (the PR 3 behavior, O(shards) capture work per run
	// state) instead of specializing the engine's one shared capture. The
	// schedule is identical either way; the flag exists for the -trace-share
	// ablation and regression tests.
	NoShare bool

	// ShareLog, when set, receives one diagnostic line per loop that has
	// sharing enabled but falls back to per-shard capture (e.g. a ragged
	// shard partition the compiler marked unshareable).
	ShareLog func(string)

	traceStats TraceStats

	// planMu guards the capture/specialization state (traceStats, shared,
	// shareLogged, runState.plans): on the native backend shard agents
	// resolve their plans concurrently. Uncontended on the DES.
	planMu sync.Mutex

	// shared caches the per-loop shared captures (see plan.go); shareLogged
	// dedups the fallback diagnostics. Both reset per Run.
	shared      map[*cr.Compiled]*sharedTrace
	shareLogged map[*cr.Compiled]bool

	global    map[*region.Region]*region.Store
	env       ir.MapEnv
	iterTimes map[*ir.Loop][]realm.Time
	report    *FaultReport
	degraded  bool // an unrecoverable loop ended the run early
}

// New creates an engine executing prog with the given compiled plans on
// any realm backend.
func New(sim realm.Exec, prog *ir.Program, mode ir.ExecMode, plans map[*ir.Loop]*cr.Compiled) *Engine {
	return &Engine{
		Sim:   sim,
		Prog:  prog,
		Mode:  mode,
		Over:  DefaultOverheads(sim.Config().CoresPerNode),
		Plans: plans,
	}
}

// CompileAll compiles every loop of the program that is a control
// replication target, returning the plan map for New.
func CompileAll(prog *ir.Program, opts cr.Options) (map[*ir.Loop]*cr.Compiled, error) {
	plans := make(map[*ir.Loop]*cr.Compiled)
	for _, s := range prog.Stmts {
		loop, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		plan, err := cr.Compile(prog, loop, opts)
		if err != nil {
			return nil, err
		}
		plans[loop] = plan
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("spmd: program has no top-level loops to replicate")
	}
	return plans, nil
}

// Run executes the program: setup statements run sequentially on the
// control thread; each planned loop runs as SPMD shards.
func (e *Engine) Run() (*Result, error) {
	if err := e.Prog.Validate(); err != nil {
		return nil, err
	}
	// Checkpoint/restart recovery needs the fault-tolerance extension of
	// the backend (node failure events, agent kill, trace shipping); reject
	// it up front on a backend without one instead of panicking mid-run.
	if e.Recov.MaxRetries > 0 && e.fx() == nil {
		return nil, &realm.UnsupportedError{Backend: e.Sim.Backend(), Op: "checkpoint/restart recovery"}
	}
	// Copy aggregation and certified sync pruning each rewrite the exchange
	// schedule under their own certification pass (verify.CheckAgg,
	// verify.PlanPrune); neither pass models the other's rewrite, so the
	// combination executes a schedule nothing has certified. Reject it up
	// front.
	for _, plan := range e.Plans {
		if plan.Opts.Agg && plan.Prune != nil {
			return nil, fmt.Errorf("spmd: copy aggregation does not compose with certified sync pruning; enable -agg or -prune, not both")
		}
	}
	e.global = make(map[*region.Region]*region.Store)
	if e.Mode == ir.ExecReal {
		roots := make([]*region.Region, 0, len(e.Prog.FieldSpaces))
		for root := range e.Prog.FieldSpaces {
			roots = append(roots, root)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].ID() < roots[j].ID() })
		for _, root := range roots {
			e.global[root] = region.NewStore(root.IndexSpace(), e.Prog.FieldSpaces[root])
		}
	}
	e.env = ir.MapEnv{}
	for k, v := range e.Prog.Scalars {
		e.env[k] = v
	}
	e.iterTimes = make(map[*ir.Loop][]realm.Time)
	e.report = nil
	e.degraded = false
	e.traceStats = TraceStats{}
	e.shared = nil
	e.shareLogged = nil

	var runErr error
	ctlDone := false
	e.Sim.SpawnOn("spmd-control", 0, 0, func(t realm.Agent) {
		defer func() {
			if r := recover(); r != nil {
				if realm.IsThreadKilled(r) {
					panic(r) // node 0 crashed: let the scheduler retire us
				}
				runErr = fmt.Errorf("spmd: %v", r)
			}
		}()
		e.execStmts(t, e.Prog.Stmts)
		ctlDone = true
	})
	elapsed, err := runSim(e.Sim)
	if fx := e.fx(); fx != nil {
		if crashes := fx.Crashes(); len(crashes) > 0 {
			e.rep().Crashes = crashes
		}
	}
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if !ctlDone {
		return nil, fmt.Errorf("spmd: control thread was killed (node 0 crashed) before the program completed")
	}
	return &Result{
		Stores:    e.global,
		Env:       e.env,
		IterTimes: e.iterTimes,
		Elapsed:   elapsed,
		Stats:     e.Sim.Stats(),
		Faults:    e.report,
	}, nil
}

// TraceStats reports the shard-plan capture/replay counters of the last
// Run.
func (e *Engine) TraceStats() TraceStats { return e.traceStats }

// fx returns the backend's fault-tolerance extension when it has one, nil
// otherwise. The recovery paths (failure events, agent kill, quiesce,
// trace shipping) gate on it; both the DES and the native machine
// implement it.
func (e *Engine) fx() realm.FaultExec {
	f, _ := e.Sim.(realm.FaultExec)
	return f
}

// copyAgg issues one coalesced transfer through the backend's aggregation
// extension, which counts the group and charges one latency for the summed
// payload. A backend without the extension gets a plain CopyBytes of the
// same payload: still correct (the merged body carries every member write),
// just uncounted.
func (e *Engine) copyAgg(src, dst int, bytes int64, members int, pre realm.Event, body func()) realm.Event {
	if ax, ok := e.Sim.(realm.AggExec); ok {
		return ax.CopyAgg(src, dst, bytes, members, pre, body)
	}
	return e.Sim.CopyBytes(src, dst, bytes, pre, body)
}

// runSim drives the backend, converting panics from task kernels (which
// the DES executes inside the event loop) into errors so a faulty
// application cannot crash the host process. A deadlock (e.g. an injected
// crash with recovery disabled) comes back as a *realm.DeadlockError on
// the DES, or as a *realm.HangError from the native watchdog.
func runSim(x realm.Exec) (elapsed realm.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("spmd: task execution panicked: %v", r)
		}
	}()
	return x.Drive()
}

func (e *Engine) execStmts(ctl realm.Agent, stmts []ir.Stmt) {
	for _, s := range stmts {
		if e.degraded {
			return // an unrecoverable loop degraded: stop at its checkpoint
		}
		switch s := s.(type) {
		case *ir.Fill:
			if st := e.global[s.Target.Root()]; st != nil {
				s.Target.IndexSpace().Each(func(p geometry.Point) bool {
					st.Set(s.Field, p, s.Value)
					return true
				})
			}
		case *ir.FillFunc:
			if st := e.global[s.Target.Root()]; st != nil {
				s.Target.IndexSpace().Each(func(p geometry.Point) bool {
					st.Set(s.Field, p, s.Fn(p))
					return true
				})
			}
		case *ir.SetScalar:
			e.env[s.Name] = s.Expr(e.env)
		case *ir.Launch:
			// Setup launches outside replicated loops run with sequential
			// semantics on the control thread (untimed: benchmarks measure
			// the replicated loops).
			if e.Mode == ir.ExecReal {
				ir.ExecLaunchSeq(e.global, e.env, s)
			}
		case *ir.Loop:
			if plan, ok := e.Plans[s]; ok {
				e.runReplicated(ctl, plan)
			} else if e.Mode == ir.ExecReal {
				// Unplanned loops also run sequentially.
				for t := 0; t < s.Trip; t++ {
					e.env[s.Var] = float64(t)
					e.execStmts(ctl, s.Body)
				}
			}
		default:
			panic(fmt.Sprintf("spmd: unknown statement %T", s))
		}
	}
}
