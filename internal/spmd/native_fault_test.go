package spmd

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/realm/native"
)

// runCRNative runs the Figure 2 program on the native backend with an
// optional seeded fault plan and recovery settings, returning the result
// and trace counters. The watchdog window is shortened so an accidental
// recovery deadlock fails the test in milliseconds, not minutes.
func runCRNative(t *testing.T, f *progtest.Figure2, nodes, shards int, fp *realm.FaultPlan, rec Recovery) (*Result, TraceStats) {
	t.Helper()
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	m := native.MustNewMachine(testConfig(nodes))
	m.SetHangTimeout(2 * time.Second)
	if fp != nil {
		if err := m.InjectFaults(*fp); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(m, f.Prog, ir.ExecReal, plans)
	eng.Recov = rec
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.TraceStats()
}

// TestNativeCrashFailoverShipsTrace is the native half of the trace-ship
// guarantee: a crash recovered by shard failover on real goroutines must
// not re-capture — the shared capture survives, ships to the rebuilt
// placement as real messages, and every restarted shard re-specializes.
// Stores stay bitwise equal to the fault-free run and to sequential
// semantics.
func TestNativeCrashFailoverShipsTrace(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 6, Backoff: realm.Microseconds(200)}

	golden := progtest.NewFigure2(48, 8, 8)
	res0, stats0 := runCRNative(t, golden, nodes, shards, nil, rec)
	if stats0.Captures != 1 || stats0.PerShardCaptures != 0 {
		t.Fatalf("fault-free counters %+v, want exactly one shared capture", stats0)
	}
	if res0.Stats.TraceShips != 0 {
		t.Fatalf("fault-free run shipped traces: %+v", res0.Stats)
	}
	if res0.Faults == nil || res0.Faults.Checkpoints == 0 || res0.Faults.Restarts != 0 {
		t.Fatalf("fault-free recovery run should checkpoint and nothing else: %+v", res0.Faults)
	}

	// CrashRate 100 is a 0.01 crash probability per launch; under seed 29
	// the draws kill exactly node 1, early enough to land mid-loop and late
	// enough that nodes 2 and 3 survive to receive trace shipments
	// (pre-failover, each node's launches are issued by its one shard
	// agent, so the per-node draw sequence is reproducible).
	f := progtest.NewFigure2(48, 8, 8)
	fp := &realm.FaultPlan{Seed: 29, CrashRate: 100}
	got, stats := runCRNative(t, f, nodes, shards, fp, rec)

	if got.Faults == nil || len(got.Faults.Crashes) == 0 || got.Faults.Restarts < 1 {
		t.Fatalf("fault report = %+v, want at least 1 crash and 1 restart", got.Faults)
	}
	if got.Faults.Unrecovered {
		t.Fatalf("run degraded unexpectedly: %+v", got.Faults)
	}
	for _, c := range got.Faults.Crashes {
		if c.Node == 0 {
			t.Fatalf("node 0 crashed without CrashNode0: %+v", got.Faults.Crashes)
		}
	}
	// Zero re-capture across the whole faulty run: failover re-specializes
	// the shipped shared capture instead.
	if stats.Captures != stats0.Captures || stats.PerShardCaptures != 0 {
		t.Errorf("failover re-captured: %+v, want the single pre-crash capture only (fault-free: %+v)", stats, stats0)
	}
	if stats.Ships == 0 || stats.ShippedBytes == 0 {
		t.Errorf("failover shipped nothing: %+v", stats)
	}
	if got.Stats.TraceShips != int64(stats.Ships) || got.Stats.TraceShipBytes != stats.ShippedBytes {
		t.Errorf("machine ship stats %d/%d don't match engine counters %+v",
			got.Stats.TraceShips, got.Stats.TraceShipBytes, stats)
	}
	if stats.Invalidations == 0 {
		t.Errorf("failover rebuild discarded no plans: %+v", stats)
	}

	// The keystone: recovered native stores are bitwise equal to the
	// fault-free native run and to sequential semantics.
	assertEqualStores(t, res0.Stores[golden.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, res0.Stores[golden.B], got.Stores[f.B], f.B, f.Val)
	refSeq := progtest.NewFigure2(48, 8, 8)
	seq := ir.ExecSequential(refSeq.Prog)
	assertEqualStores(t, seq.Stores[refSeq.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[refSeq.B], got.Stores[f.B], f.B, f.Val)
}

// TestNativeCrashSetDeterminism pins the native determinism scope: with
// one shard agent issuing each node's launches, the per-node crash draws
// are a pure function of the seed, so identical runs crash the same node
// set and identical stores come out. (Post-failover draw interleaving can
// permute which agent consumes which draw, but not which draws exist, so
// a crash whose winning draw sits well inside the node's launch stream
// lands on every run.)
func TestNativeCrashSetDeterminism(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 6, Backoff: realm.Microseconds(200)}
	run := func() ([]realm.NodeCrash, *Result, *progtest.Figure2) {
		f := progtest.NewFigure2(48, 8, 8)
		fp := &realm.FaultPlan{Seed: 29, CrashRate: 100}
		res, _ := runCRNative(t, f, nodes, shards, fp, rec)
		if res.Faults == nil || res.Faults.Unrecovered {
			t.Fatalf("run did not recover: %+v", res.Faults)
		}
		return res.Faults.Crashes, res, f
	}
	c1, r1, f1 := run()
	c2, r2, f2 := run()
	nodesOf := func(cs []realm.NodeCrash) string {
		s := ""
		for _, c := range cs {
			s += fmt.Sprintf("%d,", c.Node) // Crashes() is node-sorted on native
		}
		return s
	}
	if nodesOf(c1) != nodesOf(c2) {
		t.Errorf("same seed crashed different node sets: %v vs %v", c1, c2)
	}
	assertEqualStores(t, r1.Stores[f1.A], r2.Stores[f2.A], f2.A, f2.Val)
	assertEqualStores(t, r1.Stores[f1.B], r2.Stores[f2.B], f2.B, f2.Val)
}

// TestNativeDoubleFailover drives two successive crashes on the native
// backend: the second failover restarts shards that are already doubled up
// on survivors, and the run must still recover to bitwise-correct stores.
// Seed 41's draws kill node 2 first and node 1 later (after the first
// failover has remapped shards), exercising restart-upon-restarted-state.
func TestNativeDoubleFailover(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 6, Backoff: realm.Microseconds(200)}
	f := progtest.NewFigure2(48, 8, 8)
	fp := &realm.FaultPlan{Seed: 41, CrashRate: 100}
	got, stats := runCRNative(t, f, nodes, shards, fp, rec)
	if got.Faults == nil || len(got.Faults.Crashes) < 2 || got.Faults.Restarts < 2 {
		t.Fatalf("fault report = %+v, want two crashes and two restarts", got.Faults)
	}
	if got.Faults.Unrecovered {
		t.Fatalf("run degraded unexpectedly: %+v", got.Faults)
	}
	if stats.Captures != 1 || stats.PerShardCaptures != 0 {
		t.Errorf("double failover re-captured: %+v", stats)
	}
	refSeq := progtest.NewFigure2(48, 8, 8)
	seq := ir.ExecSequential(refSeq.Prog)
	assertEqualStores(t, seq.Stores[refSeq.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[refSeq.B], got.Stores[f.B], f.B, f.Val)
}

// TestNativeHangWithoutRecovery pins the watchdog's integration with the
// executor: an injected crash with recovery disabled can never finish (the
// crashed shard's completion event is lost), and the run must come back as
// a structured error from the native watchdog naming the stuck agents —
// the analogue of the DES DeadlockError — rather than wedging the test.
func TestNativeHangWithoutRecovery(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 8)
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := native.MustNewMachine(testConfig(4))
	m.SetHangTimeout(50 * time.Millisecond)
	if err := m.InjectFaults(realm.FaultPlan{Seed: 11, CrashRate: 2000}); err != nil {
		t.Fatal(err)
	}
	eng := New(m, f.Prog, ir.ExecReal, plans)
	_, err = eng.Run()
	if err == nil {
		t.Fatal("crash without recovery completed; the lost shard should hang the run")
	}
	var he *realm.HangError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want a realm.HangError from the watchdog", err)
	}
	if len(he.Blocked) == 0 {
		t.Fatalf("hang reported no blocked agents: %v", err)
	}
}
