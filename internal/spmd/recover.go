package spmd

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// This file is the recovery layer of the SPMD executor: periodic
// barrier-consistent checkpoints of the distributed instance stores plus
// the replicated scalar environment, shard relaunch on surviving nodes
// after a node crash, bounded retry with exponential backoff (virtual time
// on the DES, wall-clock on the native backend), and graceful degradation
// to the last checkpoint when the budget runs out. It is written against
// realm.FaultExec, so the same protocol runs over modeled and real
// execution.
//
// Correctness rests on two properties of the execution model. First, every
// epoch boundary is quiescent: the control thread has seen every shard's
// completion event, which a shard only triggers after all of its
// iterations' operations (tasks, copies, collectives) have finished, so
// cloning the instance stores there captures a consistent cut. Second,
// results are placement-independent: scalar collectives fold in
// participant-index order and reduction copies chain in source order, both
// fixed by the compiled plan rather than by node assignment, so re-running
// an epoch on a different set of nodes reproduces bitwise-identical values.

// Recovery configures checkpoint/restart for replicated loops. The zero
// value disables recovery entirely (the executor takes the exact fault-free
// schedule, with zero extra events or copies).
type Recovery struct {
	// CheckpointEvery is the number of iterations per epoch; a checkpoint is
	// taken at every epoch boundary except the last. 0 means trip/4 (at
	// least 1).
	CheckpointEvery int
	// MaxRetries bounds consecutive restarts without forward progress; the
	// counter resets every time an epoch completes. 0 disables recovery.
	MaxRetries int
	// Backoff is the delay before the first restart — virtual time on the
	// DES, real wall-clock time on the native backend — doubling on each
	// consecutive retry. 0 means 1ms.
	Backoff realm.Time
}

// DefaultRecovery returns the recovery settings used when fault injection
// is enabled without explicit tuning.
func DefaultRecovery() Recovery { return Recovery{MaxRetries: 3} }

func (r Recovery) normalized(trip int) Recovery {
	if r.MaxRetries <= 0 {
		return Recovery{}
	}
	if r.CheckpointEvery <= 0 {
		r.CheckpointEvery = trip / 4
	}
	if r.CheckpointEvery < 1 {
		r.CheckpointEvery = 1
	}
	if r.Backoff <= 0 {
		r.Backoff = realm.Milliseconds(1)
	}
	return r
}

// FaultReport summarizes the faults a run observed and the recovery
// actions taken. CompletedIters/TotalIters describe the loop that degraded
// when Unrecovered is set.
type FaultReport struct {
	Crashes        []realm.NodeCrash
	Checkpoints    int
	Restarts       int
	Unrecovered    bool
	Reason         string
	CompletedIters int
	TotalIters     int
}

func (e *Engine) rep() *FaultReport {
	if e.report == nil {
		e.report = &FaultReport{}
	}
	return e.report
}

// checkpoint is one barrier-consistent cut of a replicated loop: the
// iteration count reached, clones of every instance store (Real mode), and
// the replicated scalar environment. It models durable state on node 0's
// stable storage.
type checkpoint struct {
	iter   int
	stores map[instKey]*region.Store
	env    ir.MapEnv
}

func copyEnv(src ir.MapEnv) ir.MapEnv {
	out := make(ir.MapEnv, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// waitOrFail blocks the control thread until ev fires or any node hosting
// the run state fails, whichever comes first; it reports whether ev won.
// Without this race, a crash that swallows a completion event would leave
// the control thread blocked forever (the deadlock the fault tests pin).
// nodeFailed reports whether node i has crashed; a backend without fault
// support cannot crash nodes, so it answers false.
func (e *Engine) nodeFailed(i int) bool {
	if fx := e.fx(); fx != nil {
		return fx.NodeFailed(i)
	}
	return false
}

func (e *Engine) waitOrFail(ctl realm.Agent, st *runState, ev realm.Event) bool {
	fx := e.fx() // guarded waits only run under recovery, which requires FaultExec
	if fx.Triggered(ev) {
		return true
	}
	out := fx.NewUserEvent()
	// The completion and failure continuations race on the native backend
	// (real goroutines trigger concurrently); first to settle wins, and the
	// loser's trigger must not fire `out` twice.
	var settled, failed int32
	settle := func(f bool) func() {
		return func() {
			if !atomic.CompareAndSwapInt32(&settled, 0, 1) {
				return
			}
			if f {
				atomic.StoreInt32(&failed, 1)
			}
			fx.Trigger(out)
		}
	}
	fx.OnTrigger(ev, settle(false))
	for _, n := range st.watch {
		fx.OnTrigger(fx.NodeFailEvent(n), settle(true))
	}
	ctl.WaitEvent(out)
	return atomic.LoadInt32(&failed) == 0
}

// phaseWait is waitOrFail when guarded, a plain wait otherwise — the plain
// branch is the fault-free hot path and must stay event-identical to the
// seed executor.
func (e *Engine) phaseWait(ctl realm.Agent, st *runState, ev realm.Event, guarded bool) bool {
	if !guarded {
		ctl.WaitEvent(ev)
		return true
	}
	return e.waitOrFail(ctl, st, ev)
}

// takeCheckpoint models moving every instance's bytes to node 0's stable
// storage and (Real mode) clones the stores. Returns nil if a node failed
// mid-checkpoint.
func (e *Engine) takeCheckpoint(ctl realm.Agent, st *runState, iter int) *checkpoint {
	plan := st.plan
	e.rep().Checkpoints++
	var evs []realm.Event
	for _, part := range plan.UsedParts {
		fields := plan.InstFields[part]
		for _, col := range plan.Domain {
			sub := part.Sub(col)
			bytes := sub.Volume() * e.Over.EltBytes * int64(len(fields))
			evs = append(evs, e.Sim.CopyBytes(st.ownerNode(col), 0, bytes, realm.NoEvent, nil))
		}
	}
	if !e.waitOrFail(ctl, st, e.Sim.Merge(evs...)) {
		return nil
	}
	cp := &checkpoint{iter: iter, env: copyEnv(st.curEnv)}
	if e.Mode == ir.ExecReal {
		cp.stores = make(map[instKey]*region.Store)
		for _, part := range plan.UsedParts {
			for _, col := range plan.Domain {
				key := instKey{part.ID(), col}
				cp.stores[key] = st.inst[key].Clone()
			}
		}
	}
	return cp
}

// restorePhase builds a fresh run state on the surviving nodes, repopulates
// every instance from the checkpoint (modeled as copies from node 0's
// stable storage), and resets the scalar environment. ok is false if yet
// another node failed during the restore.
func (e *Engine) restorePhase(ctl realm.Agent, plan *cr.Compiled, trip int, cp *checkpoint) (*runState, bool) {
	st := newRunState(e, plan, trip, e.liveAssign(plan.Opts.NumShards))
	st.curEnv = copyEnv(cp.env)
	var evs []realm.Event
	for _, part := range plan.UsedParts {
		fields := plan.InstFields[part]
		for _, col := range plan.Domain {
			sub := part.Sub(col)
			key := instKey{part.ID(), col}
			if e.Mode == ir.ExecReal {
				st.inst[key] = cp.stores[key].Clone()
			}
			bytes := sub.Volume() * e.Over.EltBytes * int64(len(fields))
			evs = append(evs, e.Sim.CopyBytes(0, st.ownerNode(col), bytes, realm.NoEvent, nil))
		}
	}
	return st, e.waitOrFail(ctl, st, e.Sim.Merge(evs...))
}

// degrade gives up on the loop: the last checkpoint (if any) becomes the
// result — written back to the parent regions directly, since the
// checkpoint lives on node 0 beside them — and the report records the
// partial progress. Subsequent statements of the program do not run.
func (e *Engine) degrade(plan *cr.Compiled, trip, retries int, cp *checkpoint, times []realm.Time) {
	rep := e.rep()
	rep.Unrecovered = true
	rep.TotalIters = trip
	done := 0
	if cp != nil {
		done = cp.iter
		if e.Mode == ir.ExecReal {
			for _, part := range plan.WrittenDisjoint {
				fields := plan.InstFields[part]
				for _, col := range plan.Domain {
					sub := part.Sub(col)
					dst := e.global[sub.Root()]
					src := cp.stores[instKey{part.ID(), col}]
					for _, f := range fields {
						dst.CopyFieldFrom(src, f, sub.IndexSpace())
					}
				}
			}
		}
		for k, v := range cp.env {
			e.env[k] = v
		}
	}
	rep.CompletedIters = done
	rep.Reason = fmt.Sprintf("spmd: recovery budget exhausted after %d restarts with %d node crashes; degraded to the checkpoint at iteration %d of %d",
		retries, len(e.fx().Crashes()), done, trip)
	e.iterTimes[plan.Loop] = times[:done]
	e.degraded = true
}

// shipTraces sends the loop's surviving shared capture from node 0's
// stable storage to every other node of a freshly rebuilt placement, as
// real messages (FaultExec.ShipTrace: modeled wire cost on the DES, real
// messages subject to drop/dup injection on native), so the restarted
// shards specialize the shipped trace and resume in replay mode instead of
// re-capturing. No-op when the loop has no shared capture (sharing
// disabled, tracing off, or an unshareable loop). Reports false if a node
// failed mid-shipment.
func (e *Engine) shipTraces(ctl realm.Agent, st *runState) bool {
	shr, ok := e.shared[st.plan]
	if !ok {
		return true
	}
	fx := e.fx() // trace shipping only happens under recovery, which requires FaultExec
	var evs []realm.Event
	for _, n := range st.watch { // sorted: the shipment order is deterministic
		if n == 0 {
			continue
		}
		evs = append(evs, fx.ShipTrace(0, n, shr.bytes, realm.NoEvent))
		e.traceStats.Ships++
		e.traceStats.ShippedBytes += shr.bytes
	}
	if len(evs) == 0 {
		return true
	}
	return e.waitOrFail(ctl, st, e.Sim.Merge(evs...))
}

// runRecoverable executes one replicated loop in checkpointed epochs:
//
//	init -> [epoch -> checkpoint]* -> epoch -> finalize
//
// Every phase races against node failures (waitOrFail); a failure kills
// the surviving shard threads, backs off exponentially in virtual time,
// remaps shards onto the live nodes, restores the last checkpoint, and
// retries. MaxRetries consecutive failures degrade to the checkpoint.
func (e *Engine) runRecoverable(ctl realm.Agent, plan *cr.Compiled, rec Recovery) {
	trip := plan.Loop.Trip
	ns := plan.Opts.NumShards
	times := make([]realm.Time, trip)
	st := newRunState(e, plan, trip, e.liveAssign(ns))
	var cp *checkpoint
	retries := 0
	needInit := true
	done := 0

	// restart consumes one retry, backs off (virtual time on the DES, real
	// wall-clock exponential backoff on native), and rebuilds state from the
	// last checkpoint (or from scratch when none exists yet). The rebuild
	// discards the old run state's shard plans (trace invalidation: the
	// placement changed) and then ships the surviving shared capture to the
	// new placement so the restarted shards resume in replay mode. It
	// recurses — within the same budget — if another node fails mid-restore
	// or mid-shipment.
	var restart func() bool
	restart = func() bool {
		// Drain the abandoned epoch first: on the native backend the killed
		// shard agents and their in-flight work items are real goroutines
		// that may still be writing the old run state's instances; the
		// restore (and degrade's write-back) must not race them. No-op on
		// the DES.
		e.fx().Quiesce()
		if retries >= rec.MaxRetries {
			return false
		}
		retries++
		e.rep().Restarts++
		e.traceStats.Invalidations += st.dropPlans()
		ctl.Sleep(rec.Backoff << (retries - 1))
		if cp == nil {
			// From scratch: the failure may have landed after an epoch
			// completed but before its first checkpoint committed (mid-capture),
			// so roll the iteration cursor all the way back too.
			st = newRunState(e, plan, trip, e.liveAssign(ns))
			needInit = true
			done = 0
		} else {
			nst, ok := e.restorePhase(ctl, plan, trip, cp)
			if !ok {
				return restart()
			}
			st = nst
			needInit = false
			done = cp.iter
		}
		if !e.shipTraces(ctl, st) {
			return restart()
		}
		return true
	}

	for {
		switch {
		case needInit:
			if !e.initPhase(ctl, st, true) {
				if !restart() {
					e.degrade(plan, trip, retries, cp, times)
					return
				}
				continue
			}
			needInit = false

		case done < trip:
			hi := done + rec.CheckpointEvery
			if hi > trip {
				hi = trip
			}
			if !e.runEpoch(ctl, st, done, hi, true) {
				if !restart() {
					e.degrade(plan, trip, retries, cp, times)
					return
				}
				continue
			}
			// The last iteration's recordIter continuation may still be
			// running on the goroutine that triggered it: the shard's
			// WaitEvent fast-path orders the shard only with the trigger
			// itself, not with sibling continuations of the same event. The
			// stamps live under st.mu for exactly this reason — take it for
			// the read. (A stamp that loses the race stays zero; the wall
			// stamps are diagnostic on the native backend and the DES is
			// sequential, so no modeled result depends on it.)
			st.mu.Lock()
			copy(times[done:hi], st.iterTimes[done:hi])
			st.mu.Unlock()
			done = hi
			retries = 0
			if done < trip {
				ncp := e.takeCheckpoint(ctl, st, done)
				if ncp == nil {
					if !restart() {
						e.degrade(plan, trip, retries, cp, times)
						return
					}
					continue
				}
				cp = ncp
			}

		default:
			if !e.finalizePhase(ctl, st, true) {
				if !restart() {
					e.degrade(plan, trip, retries, cp, times)
					return
				}
				continue
			}
			e.iterTimes[plan.Loop] = times
			e.mergeEnv(st)
			return
		}
	}
}
