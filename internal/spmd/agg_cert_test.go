// Static certification of the evaluation apps' coalesced exchange plans:
// verify.CheckAgg — the table recomputation plus race and liveness passes
// over the rebuilt AGGREGATED happens-before graph — must certify all four
// applications under both sync lowerings, at both the standard and the
// overdecomposed scale. This is the license the bench layer demands before
// running any -agg cell; certifying it here over the real apps (not just
// the verify package's small fixtures) closes the loop between the
// certifier and the schedules the sweep actually runs.
package spmd_test

import (
	"fmt"
	"testing"

	"repro/internal/cr"
	"repro/internal/spmd"
	"repro/internal/verify"
)

func TestCheckAggCertifiesApps(t *testing.T) {
	const nodes = 4
	for _, app := range pruneApps {
		for _, over := range []int{1, 2} {
			for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
				t.Run(fmt.Sprintf("%s/x%d/%v", app.name, over, sync), func(t *testing.T) {
					prog := app.build(over * nodes)
					plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync, Agg: true})
					if err != nil {
						t.Fatal(err)
					}
					rep, err := verify.CheckAggAll(prog, plans)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.OK() {
						for _, f := range rep.Findings {
							t.Errorf("finding: %s", f)
						}
						t.Fatalf("CheckAgg rejected %s's aggregation (%d findings)", app.name, len(rep.Findings))
					}
					if rep.Stats.Nodes == 0 || rep.Stats.Conflicts == 0 {
						t.Errorf("vacuous certification: %+v", rep.Stats)
					}
					if rep.Counters["agg_groups"] == 0 {
						t.Errorf("no aggregation groups certified: %v", rep.Counters)
					}
					// Overdecomposition is what gives the groups multiple
					// members; the certifier must see the merges the
					// executor performs.
					if over == 2 && rep.Counters["multi_member_groups"] == 0 {
						t.Errorf("no multi-member groups at 2x overdecomposition: %v", rep.Counters)
					}
				})
			}
		}
	}
}
