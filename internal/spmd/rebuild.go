package spmd

// Static construction of failover-rebuilt schedules. The recovery layer
// (recover.go) rebuilds placement and state dynamically when a node
// crashes; this file performs the same construction without running
// anything, so the schedule certifier (internal/verify.CertifyRebuild) can
// check every logical crash point of a fault plan exhaustively instead of
// sampling a few crashes dynamically. The two constructions must agree:
// liveAssign and RebuildAssignment share one body, and PlanRebuild's
// restore set mirrors restorePhase's loop over UsedParts x Domain.

import (
	"repro/internal/cr"
	"repro/internal/region"
)

// RebuildAssignment maps ns shards blockwise onto the live node list
// (ascending node ids); with every node alive it reproduces the static
// placement of §4.2 (shard s on node s*Nodes/NumShards). This is the exact
// assignment the recovery layer installs after failover.
func RebuildAssignment(ns int, live []int) []int {
	assign := make([]int, ns)
	for s := range assign {
		assign[s] = live[s*len(live)/ns]
	}
	return assign
}

// liveAssign maps shards blockwise onto the live nodes; node 0 always
// counts as live — it hosts the control thread, so its loss ends the run
// regardless.
func (e *Engine) liveAssign(ns int) []int {
	var live []int
	for i := 0; i < e.Sim.Nodes(); i++ {
		if i == 0 || !e.nodeFailed(i) {
			live = append(live, i)
		}
	}
	return RebuildAssignment(ns, live)
}

// PlanRebuild statically constructs the rebuilt schedule the recovery layer
// would produce for a crash of the given nodes at the atLaunch-th launch
// (1-based, counted per node — the same logical crash points
// realm.FaultPlan.LaunchCrashes injects). checkpointEvery follows
// Recovery.CheckpointEvery's convention (<= 0 means trip/4, at least 1).
//
// Returns nil when the crash is unrecoverable by construction: node 0 (the
// control thread) crashing, a node id out of range, or atLaunch == 0 (the
// 1-based convention realm.FaultPlan validation enforces).
func PlanRebuild(c *cr.Compiled, nodes int, crashed []int, atLaunch uint64, checkpointEvery int) *cr.RebuildSpec {
	if c == nil || nodes <= 0 || atLaunch == 0 {
		return nil
	}
	trip := c.Loop.Trip
	if checkpointEvery <= 0 {
		checkpointEvery = trip / 4
	}
	if checkpointEvery < 1 {
		checkpointEvery = 1
	}
	ns := c.Opts.NumShards
	dead := make(map[int]bool, len(crashed))
	for _, n := range crashed {
		if n <= 0 || n >= nodes {
			return nil
		}
		dead[n] = true
	}

	var live []int
	for i := 0; i < nodes; i++ {
		if i == 0 || !dead[i] {
			live = append(live, i)
		}
	}

	// The crash iteration: the crashed node dies at the issue of its
	// atLaunch-th task launch. Under the pre-crash placement (shard s on
	// node s*nodes/ns) the node issues one task per launch op per color it
	// owns each iteration, so atLaunch-1 completed launches put the crash
	// in iteration (atLaunch-1)/perIter. The resumable state is the last
	// committed checkpoint boundary at or before it.
	launchOps := 0
	for _, op := range c.Body {
		if op.Launch != nil {
			launchOps++
		}
	}
	resume := trip // min over crashed nodes below
	for _, n := range crashed {
		cols := 0
		for _, col := range c.Domain {
			if c.ShardOf[col]*nodes/ns == n {
				cols++
			}
		}
		perIter := launchOps * cols
		crashIter := 0
		if perIter > 0 {
			crashIter = int((atLaunch - 1)) / perIter
		}
		if crashIter > trip {
			crashIter = trip
		}
		if r := (crashIter / checkpointEvery) * checkpointEvery; r < resume {
			resume = r
		}
	}
	if resume >= trip && trip > 0 {
		// Checkpoints are only taken strictly before the final epoch; a
		// crash in the last epoch resumes from the boundary before it.
		resume = ((trip - 1) / checkpointEvery) * checkpointEvery
	}

	// restorePhase repopulates every used instance from the checkpoint.
	rs := &cr.RebuildSpec{
		Nodes:      nodes,
		Crashed:    append([]int(nil), crashed...),
		Assign:     RebuildAssignment(ns, live),
		ResumeIter: resume,
	}
	rs.Restored = make(map[*region.Partition][]bool, len(c.UsedParts))
	for _, part := range c.UsedParts {
		mask := make([]bool, len(c.Domain))
		for i := range mask {
			mask[i] = true
		}
		rs.Restored[part] = mask
	}
	return rs
}
