package spmd

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
	"repro/internal/rt"
)

func testConfig(nodes int) realm.Config {
	cfg := realm.DefaultConfig(nodes)
	cfg.CoresPerNode = 4
	return cfg
}

// runCR compiles every loop and executes the program under SPMD.
func runCR(t *testing.T, prog *ir.Program, nodes, shards int, sync cr.SyncMode, mode ir.ExecMode) *Result {
	t.Helper()
	plans, err := CompileAll(prog, cr.Options{NumShards: shards, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, prog, mode, plans)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertEqualStores(t *testing.T, want *region.Store, got *region.Store, r *region.Region, f region.FieldID) {
	t.Helper()
	if !got.EqualOn(want, f, r.IndexSpace()) {
		bad := 0
		r.IndexSpace().Each(func(p geometry.Point) bool {
			if got.Get(f, p) != want.Get(f, p) {
				if bad < 5 {
					t.Errorf("%s[%v] field %d = %v, want %v", r.Name(), p, f, got.Get(f, p), want.Get(f, p))
				}
				bad++
			}
			return true
		})
		t.Fatalf("store mismatch on %s field %d (%d points differ)", r.Name(), f, bad)
	}
}

func TestCRMatchesSequentialFigure2(t *testing.T) {
	for _, tc := range []struct {
		n, nt  int64
		trip   int
		nodes  int
		shards int
		sync   cr.SyncMode
	}{
		{24, 4, 1, 1, 1, cr.PointToPoint},
		{24, 4, 3, 2, 2, cr.PointToPoint},
		{48, 8, 4, 4, 4, cr.PointToPoint},
		{48, 8, 4, 4, 4, cr.BarrierSync},
		{30, 5, 2, 3, 3, cr.PointToPoint}, // colors not divisible
		{48, 8, 3, 2, 4, cr.PointToPoint}, // more shards than nodes
		{48, 8, 3, 8, 4, cr.PointToPoint}, // shards = colors
	} {
		f := progtest.NewFigure2(tc.n, tc.nt, tc.trip)
		seq := ir.ExecSequential(f.Prog)
		res := runCR(t, f.Prog, tc.nodes, tc.shards, tc.sync, ir.ExecReal)
		assertEqualStores(t, seq.Stores[f.A], res.Stores[f.A], f.A, f.Val)
		assertEqualStores(t, seq.Stores[f.B], res.Stores[f.B], f.B, f.Val)
	}
}

func TestCRScalarReduction(t *testing.T) {
	f := progtest.NewScalarSum(40, 8)
	seq := ir.ExecSequential(f.Prog)
	res := runCR(t, f.Prog, 4, 4, cr.PointToPoint, ir.ExecReal)
	if res.Env["total"] != seq.Env["total"] {
		t.Errorf("total = %v, want %v", res.Env["total"], seq.Env["total"])
	}
	if res.Env["doubled"] != seq.Env["doubled"] {
		t.Errorf("doubled = %v, want %v", res.Env["doubled"], seq.Env["doubled"])
	}
}

func TestCRRegionReduction(t *testing.T) {
	for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
		f := progtest.NewRegionReduce(32, 4, 3)
		seq := ir.ExecSequential(f.Prog)
		res := runCR(t, f.Prog, 4, 4, sync, ir.ExecReal)
		out := f.Prog.FieldSpaces[f.R].Field("out")
		assertEqualStores(t, seq.Stores[f.R], res.Stores[f.R], f.R, f.Acc)
		assertEqualStores(t, seq.Stores[f.R], res.Stores[f.R], f.R, out)
	}
}

func TestCRDeterministic(t *testing.T) {
	run := func() (realm.Time, realm.Stats) {
		f := progtest.NewFigure2(48, 8, 3)
		res := runCR(t, f.Prog, 4, 4, cr.PointToPoint, ir.ExecReal)
		return res.Elapsed, res.Stats
	}
	e1, s1 := run()
	for i := 0; i < 3; i++ {
		e2, s2 := run()
		if e1 != e2 || s1 != s2 {
			t.Fatalf("non-deterministic: %v/%+v vs %v/%+v", e1, s1, e2, s2)
		}
	}
}

func TestCRModeledMatchesRealTiming(t *testing.T) {
	f1 := progtest.NewFigure2(64, 8, 3)
	r1 := runCR(t, f1.Prog, 4, 4, cr.PointToPoint, ir.ExecReal)
	f2 := progtest.NewFigure2(64, 8, 3)
	r2 := runCR(t, f2.Prog, 4, 4, cr.PointToPoint, ir.ExecModeled)
	if r1.Elapsed != r2.Elapsed {
		t.Errorf("Real %v != Modeled %v", r1.Elapsed, r2.Elapsed)
	}
	if len(r2.Stores) != 0 {
		t.Error("modeled mode should not allocate stores")
	}
}

func TestCRIterTimesRecorded(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 5)
	res := runCR(t, f.Prog, 4, 4, cr.PointToPoint, ir.ExecModeled)
	times := res.IterTimes[f.Loop]
	if len(times) != 5 {
		t.Fatalf("iteration times = %v", times)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Errorf("iteration completions not increasing: %v", times)
		}
	}
}

// TestCRBeatsImplicitAtScale is the headline property (Figures 6-9): with
// many nodes and short tasks, the implicit runtime's serial control thread
// dominates, while control replication's per-shard control cost stays flat.
func TestCRBeatsImplicitAtScale(t *testing.T) {
	nodes := 32
	build := func() *progtest.Figure2 {
		f := progtest.NewFigure2(int64(nodes)*64, int64(nodes), 6)
		return f
	}

	fImp := build()
	simImp := realm.MustNewSim(testConfig(nodes))
	impl := rt.New(simImp, fImp.Prog, rt.Modeled)
	resImp, err := impl.Run()
	if err != nil {
		t.Fatal(err)
	}
	timesImp := resImp.IterTimes[fImp.Loop]
	perIterImp := (timesImp[5] - timesImp[1]) / 4

	fCR := build()
	resCR := runCR(t, fCR.Prog, nodes, nodes, cr.PointToPoint, ir.ExecModeled)
	timesCR := resCR.IterTimes[fCR.Loop]
	perIterCR := (timesCR[5] - timesCR[1]) / 4

	if perIterCR*4 > perIterImp {
		t.Errorf("CR per-iteration %v should be well below implicit %v at %d nodes", perIterCR, perIterImp, nodes)
	}
}

// TestP2PBeatsBarriers checks the §3.4 optimization: point-to-point sync
// scales better than the naive global barriers when only neighbors
// communicate.
func TestP2PBeatsBarriers(t *testing.T) {
	nodes := 16
	run := func(sync cr.SyncMode) realm.Time {
		f := progtest.NewFigure2(int64(nodes)*16, int64(nodes), 8)
		res := runCR(t, f.Prog, nodes, nodes, sync, ir.ExecModeled)
		times := res.IterTimes[f.Loop]
		return (times[7] - times[1]) / 6
	}
	p2p := run(cr.PointToPoint)
	bar := run(cr.BarrierSync)
	if p2p > bar {
		t.Errorf("p2p per-iteration %v should not exceed barrier %v", p2p, bar)
	}
}

func TestCRDataMovementScopedToHalo(t *testing.T) {
	// The bytes moved per iteration under CR must be the halo volume, far
	// below the full region size.
	nodes := 8
	f := progtest.NewFigure2(int64(nodes)*100, int64(nodes), 4)
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: nodes})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, f.Prog, ir.ExecModeled, plans)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	// Shift-by-3 halos: 3 elements per cross-block pair, 8 bytes each.
	// Init/final copies also cross nodes; the loop's copy traffic per
	// iteration is bounded by pairs * 3 elements * 8 bytes.
	if st.BytesSent == 0 {
		t.Fatal("expected cross-node traffic")
	}
	var plan *cr.Compiled
	for _, p := range plans {
		plan = p
	}
	var copyVolume int64
	for _, op := range plan.Body {
		if op.Copy != nil {
			for _, pr := range op.Copy.Pairs {
				copyVolume += pr.Overlap.Volume()
			}
		}
	}
	// QB[j] = PB[j] shifted by 3: overlaps own block (97 elements) and next
	// block (3 elements); only the cross-shard portion travels.
	if copyVolume == 0 {
		t.Fatal("no copy volume computed")
	}
}

// TestRandomizedEquivalence cross-checks sequential, implicit, and
// control-replicated executions on randomized programs: random partitions
// (blocks and images), random launch sequences with read/write/reduce
// privileges, random loop lengths. All three must agree bitwise.
func TestRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog, regions, fields := progtest.RandomProgram(seed)
		seq := ir.ExecSequential(prog)

		simImp := realm.MustNewSim(testConfig(3))
		resImp, err := rt.New(simImp, prog, rt.Real).Run()
		if err != nil {
			t.Fatalf("seed %d: implicit: %v", seed, err)
		}
		for _, r := range regions {
			for _, f := range fields {
				if !resImp.Stores[r].EqualOn(seq.Stores[r], f, r.IndexSpace()) {
					t.Fatalf("seed %d: implicit mismatch on %s field %d", seed, r.Name(), f)
				}
			}
		}

		for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
			plans, err := CompileAll(prog, cr.Options{NumShards: 3, Sync: sync})
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			sim := realm.MustNewSim(testConfig(3))
			res, err := New(sim, prog, ir.ExecReal, plans).Run()
			if err != nil {
				t.Fatalf("seed %d: spmd: %v", seed, err)
			}
			for _, r := range regions {
				for _, f := range fields {
					if !res.Stores[r].EqualOn(seq.Stores[r], f, r.IndexSpace()) {
						t.Fatalf("seed %d (%v): spmd mismatch on %s field %d", seed, sync, r.Name(), f)
					}
				}
			}
			for k, v := range seq.Env {
				if res.Env[k] != v {
					t.Fatalf("seed %d (%v): scalar %q = %v, want %v", seed, sync, k, res.Env[k], v)
				}
			}
		}
	}
}
