package spmd

import (
	"sort"
	"sync"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// instKey identifies a partition subregion instance.
type instKey struct {
	part  region.PartitionID
	color geometry.Point
}

// tempKey identifies a reduce-temporary instance: the reducing launch, the
// argument slot, and the task color. (Keyed by launch identity, not body
// position: the placement passes reorder the body.)
type tempKey struct {
	launch *ir.Launch
	arg    int
	color  geometry.Point
}

// instState is the shard-local dependence state of one instance: the event
// after which its contents are valid, and the readers issued since.
type instState struct {
	lastWrite realm.Event
	readers   []realm.Event
}

// shardTable is one shard's instance-state table. Only the owning shard's
// thread touches it (consumer-side copy processing happens on the shard
// owning the destination), so no synchronization is needed beyond the
// simulator's single-threaded execution.
type shardTable struct {
	inst map[instKey]*instState
	temp map[tempKey]*instState
}

func newShardTable() *shardTable {
	return &shardTable{inst: make(map[instKey]*instState), temp: make(map[tempKey]*instState)}
}

func (t *shardTable) get(k instKey) *instState {
	s, ok := t.inst[k]
	if !ok {
		s = &instState{lastWrite: realm.NoEvent}
		t.inst[k] = s
	}
	return s
}

func (t *shardTable) getTemp(k tempKey) *instState {
	s, ok := t.temp[k]
	if !ok {
		s = &instState{lastWrite: realm.NoEvent}
		t.temp[k] = s
	}
	return s
}

// pairSync is the point-to-point synchronization pair of §3.4: war is the
// consumer's release (write-after-read: prior consumers of the destination
// have finished), done is the producer's completion (read-after-write: the
// copy has landed). Both are plain events attached as task pre/post
// conditions, so neither side's control thread ever blocks on them.
type pairSync struct {
	war, done realm.Event
}

// runState is the state shared by the shards of one replicated loop
// execution. On the DES all access happens under the simulator's
// deterministic single-threaded schedule; on the native backend shard
// agents run concurrently, so the lazily-populated shared tables (sync
// blocks, barriers, collectives, reduce temporaries, iteration counters)
// are guarded by mu. Everything else is either written only before the
// shards start (inst, tables, assign) or written by exactly one agent
// (curEnv by shard 0, per-index slice slots by their owners).
type runState struct {
	e    *Engine
	plan *cr.Compiled

	// mu guards the lazily-created shared state below: syncBase, colls,
	// bars, temps, and the iteration counters. Uncontended on the DES.
	mu sync.Mutex

	inst   map[instKey]*region.Store // Real mode instances
	temps  map[tempKey]*region.Store // Real mode reduce temporaries
	tables []*shardTable

	// Dense per-iteration synchronization tables. The compiled plan fixes
	// every copy pair and scalar reduction of an iteration, so instead of a
	// lazily populated map keyed by (copy, pair, iteration), each iteration's
	// sync events are one contiguous block reserved in bulk from the
	// simulator (realm.ReserveEvents): slot arithmetic replaces hashing and
	// per-pair allocations. pairOff maps CopyOp.ID to its first pair slot;
	// iteration t's pair k of copy c lives at syncBase[t] + 2*(pairOff[c]+k)
	// (war, then done). Collectives and ablation barriers are likewise
	// indexed by (iteration, position).
	pairOff   map[int]int
	pairTotal int
	syncBase  []realm.Event // per iteration; NoEvent until first touch

	redIdx map[*ir.Launch]int
	numRed int
	colls  []realm.CollectiveOp // [iter*numRed + redIdx], lazily created

	barIdx    map[int]int
	numBarOps int
	bars      []realm.BarrierOp // [(iter*numBarOps + barIdx)*2 + which], lazy

	// plans are the per-shard memoized iteration plans (see plan.go); nil
	// until a shard first runs, or always nil when tracing is off. Rebuilt
	// runStates (shard failover, PR 2 recovery) start empty, which is the
	// trace invalidation: the new placement re-resolves from scratch.
	plans []*shardPlan

	iterCount []int
	iterTimes []realm.Time
	shardDone []realm.Event // created per epoch by runEpoch

	// assign maps shard index to node; watch is the sorted set of assigned
	// nodes, the ones whose failure aborts a guarded phase.
	assign []int
	watch  []int

	// curEnv is the replicated scalar environment at the run state's
	// current epoch boundary: the loop entry bindings before the first
	// epoch, shard 0's snapshot after each one. Scalars are replicated, so
	// any shard's bindings are the program's.
	curEnv ir.MapEnv
}

func newRunState(e *Engine, plan *cr.Compiled, trip int, assign []int) *runState {
	ns := plan.Opts.NumShards
	st := &runState{
		e:         e,
		plan:      plan,
		inst:      make(map[instKey]*region.Store),
		temps:     make(map[tempKey]*region.Store),
		tables:    make([]*shardTable, ns),
		iterCount: make([]int, trip),
		iterTimes: make([]realm.Time, trip),
		assign:    assign,
		curEnv:    copyEnv(e.env),
		plans:     make([]*shardPlan, ns),
	}
	for s := range st.tables {
		st.tables[s] = newShardTable()
	}
	st.indexSyncSlots(trip)
	seen := make(map[int]bool, len(assign))
	for _, n := range assign {
		if !seen[n] {
			seen[n] = true
			st.watch = append(st.watch, n)
		}
	}
	sort.Ints(st.watch)
	return st
}

// copyWork returns the precomputed work list of one copy op for one shard
// — the compiler-emitted schedule (cr.SpecTable), shared by interpretation,
// per-shard capture, and specialization.
func (st *runState) copyWork(copyID, shard int) []cr.SpecWork {
	return st.plan.Spec.CopyByID[copyID].PerShard[shard]
}

// indexSyncSlots assigns every copy op's pairs, every scalar reduction, and
// every ablation barrier a dense position, sizing the per-iteration tables.
func (st *runState) indexSyncSlots(trip int) {
	st.pairOff = make(map[int]int)
	st.redIdx = make(map[*ir.Launch]int)
	st.barIdx = make(map[int]int)
	for _, op := range st.plan.Body {
		switch {
		case op.Copy != nil:
			if _, ok := st.pairOff[op.Copy.ID]; !ok {
				st.pairOff[op.Copy.ID] = st.pairTotal
				st.pairTotal += len(op.Copy.Pairs)
				st.barIdx[op.Copy.ID] = st.numBarOps
				st.numBarOps++
			}
		case op.Launch != nil && op.Launch.Reduce != nil:
			if _, ok := st.redIdx[op.Launch]; !ok {
				st.redIdx[op.Launch] = st.numRed
				st.numRed++
			}
		}
	}
	st.syncBase = make([]realm.Event, trip)
	for i := range st.syncBase {
		st.syncBase[i] = realm.NoEvent
	}
	st.colls = make([]realm.CollectiveOp, trip*st.numRed)
	if st.plan.Opts.Sync == cr.BarrierSync {
		st.bars = make([]realm.BarrierOp, trip*st.numBarOps*2)
	}
}

// pairSyncFor returns the sync pair for (copy, pair, iteration); producer
// and consumer may ask in either order. The first touch of an iteration
// reserves its whole sync block in bulk.
func (st *runState) pairSyncFor(copyID, pairIdx, iter int) pairSync {
	st.mu.Lock()
	base := st.syncBase[iter]
	if base == realm.NoEvent {
		base = st.e.Sim.ReserveEvents(2 * st.pairTotal)
		st.syncBase[iter] = base
	}
	st.mu.Unlock()
	war := base + realm.Event(2*(st.pairOff[copyID]+pairIdx))
	return pairSync{war: war, done: war + 1}
}

// barrierFor lazily creates one of a copy op's two global barriers.
func (st *runState) barrierFor(copyID, iter, which int) realm.BarrierOp {
	i := (iter*st.numBarOps+st.barIdx[copyID])*2 + which
	st.mu.Lock()
	b := st.bars[i]
	if b == nil {
		b = st.e.Sim.Barrier(st.plan.Opts.NumShards)
		st.bars[i] = b
	}
	st.mu.Unlock()
	return b
}

// collFor lazily creates the dynamic collective for a scalar reduction.
func (st *runState) collFor(l *ir.Launch, iter int, op region.ReductionOp) realm.CollectiveOp {
	i := iter*st.numRed + st.redIdx[l]
	st.mu.Lock()
	c := st.colls[i]
	if c == nil {
		c = st.e.Sim.Collective(len(st.plan.Domain), op.Identity(), op.Fold)
		st.colls[i] = c
	}
	st.mu.Unlock()
	return c
}

// connect triggers dst when src fires.
func (st *runState) connect(src, dst realm.Event) {
	sim := st.e.Sim
	sim.OnTrigger(src, func() { sim.Trigger(dst) })
}

// recordIter counts shard completions of iteration t and stamps the time
// when the last one lands. The callback may run on any goroutine on the
// native backend, so the counters live under mu.
func (st *runState) recordIter(t int, ev realm.Event) {
	sim := st.e.Sim
	sim.OnTrigger(ev, func() {
		st.mu.Lock()
		st.iterCount[t]++
		if st.iterCount[t] == st.plan.Opts.NumShards {
			st.iterTimes[t] = sim.Now()
		}
		st.mu.Unlock()
	})
}

// nodeOfShard maps shard s to its node. The assignment is blockwise over
// the live nodes (one shard per node in the typical configuration, §4.2)
// and is recomputed by the recovery layer when shards relaunch after a
// crash.
func (st *runState) nodeOfShard(s int) int {
	return st.assign[s]
}

// ownerNode returns the node owning a domain color's instances.
func (st *runState) ownerNode(c geometry.Point) int {
	return st.nodeOfShard(st.plan.ShardOf[c])
}
