package spmd

import (
	"testing"

	"repro/internal/progtest"
	"repro/internal/realm"
)

// Review repro: scan crash times; whenever recovery claims success,
// stores must match the fault-free run.
func TestReviewScanCrashTimes(t *testing.T) {
	build := func() *progtest.Figure2 { return progtest.NewFigure2(48, 8, 8) }
	rec := Recovery{CheckpointEvery: 100, MaxRetries: 3, Backoff: realm.Microseconds(50)} // single epoch: no checkpoint ever taken
	golden := build()
	res0, err := runCRFaulty(t, golden, 4, 4, nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for frac := 50; frac <= 99; frac++ {
		at := res0.Elapsed * realm.Time(frac) / 100
		f := build()
		fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: at}}}
		res, err := runCRFaulty(t, f, 4, 4, fp, rec, nil)
		if err != nil || (res.Faults != nil && res.Faults.Unrecovered) {
			continue // degraded or failed runs are allowed to be partial
		}
		if !res.Stores[f.A].EqualOn(res0.Stores[golden.A], 0, f.A.IndexSpace()) ||
			!res.Stores[f.B].EqualOn(res0.Stores[golden.B], 0, f.B.IndexSpace()) {
			bad++
			t.Logf("crash at %d%% (t=%d): recovery reported success but stores are WRONG (restarts=%d)", frac, at, res.Faults.Restarts)
		}
	}
	if bad > 0 {
		t.Fatalf("%d crash times produced silently wrong results", bad)
	}
}
