// Dynamic validation of certified sync pruning: for every evaluation app,
// both lowerings, and both execution backends, a run with the certified
// prune attached must produce bitwise-identical final stores to the
// unpruned run — pruning may only remove redundant sync and dead
// initialization copies, never change a value. On top of equivalence,
// pruning must strictly reduce the DES message count where dead
// cross-node init copies exist (PENNANT under p2p).
//
// Lives in an external test package so it can import the app builders
// without adding them to spmd's own dependencies.
package spmd_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/apps/circuit"
	"repro/internal/apps/miniaero"
	"repro/internal/apps/pennant"
	"repro/internal/apps/stencil"
	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/realm/native"
	"repro/internal/region"
	"repro/internal/spmd"
	"repro/internal/verify"
)

// pruneApps builds each evaluation application at the correctness-testing
// size. Programs are rebuilt per run (region identities are per-instance).
var pruneApps = []struct {
	name  string
	build func(nodes int) *ir.Program
}{
	{"stencil", func(n int) *ir.Program { return stencil.Build(stencil.Small(n)).Prog }},
	{"miniaero", func(n int) *ir.Program { return miniaero.Build(miniaero.Small(n)).Prog }},
	{"pennant", func(n int) *ir.Program { return pennant.Build(pennant.Small(n)).Prog }},
	{"circuit", func(n int) *ir.Program { return circuit.Build(circuit.Small(n)).Prog }},
}

// runPruned compiles, optionally prunes (with certification), and executes
// one freshly built program on the chosen backend, returning the final
// stores and the machine counters.
func runPruned(t *testing.T, prog *ir.Program, nodes int, sync cr.SyncMode, backend string, prune bool) (map[*region.Region]*region.Store, realm.Stats) {
	t.Helper()
	plans, err := spmd.CompileAll(prog, cr.Options{NumShards: nodes, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	if prune {
		for _, plan := range plans {
			info, rep, err := verify.PlanPrune(plan)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("prune pass rejected the schedule: %v", rep.Findings)
			}
			plan.Prune = info
		}
	}
	var sim realm.Exec
	switch backend {
	case "des":
		cfg := realm.DefaultConfig(nodes)
		cfg.CoresPerNode = 4
		sim = realm.MustNewSim(cfg)
	case "native":
		m, err := native.NewMachine(realm.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		sim = m
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	res, err := spmd.New(sim, prog, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Stores, sim.Stats()
}

// assertStoresBitwiseEqual matches regions across two independent builds by
// name and demands bit-for-bit identical contents on every field.
func assertStoresBitwiseEqual(t *testing.T, base, pruned map[*region.Region]*region.Store) {
	t.Helper()
	byName := map[string]*region.Store{}
	for r, s := range base {
		byName[r.Name()] = s
	}
	matched := 0
	for r, ps := range pruned {
		bs, ok := byName[r.Name()]
		if !ok {
			t.Errorf("pruned run produced region %s absent from the base run", r.Name())
			continue
		}
		matched++
		for _, f := range ps.FieldSpace().Fields() {
			braw, praw := bs.Raw(f), ps.Raw(f)
			if len(braw) != len(praw) {
				t.Fatalf("%s field %d: layout diverged (%d vs %d slots)", r.Name(), f, len(braw), len(praw))
			}
			diffs := 0
			for i := range braw {
				if math.Float64bits(braw[i]) != math.Float64bits(praw[i]) {
					if diffs < 3 {
						t.Errorf("%s field %d slot %d: %v (pruned) != %v (base)", r.Name(), f, i, praw[i], braw[i])
					}
					diffs++
				}
			}
			if diffs > 0 {
				t.Errorf("%s field %d: %d slots differ bitwise", r.Name(), f, diffs)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no regions matched between the runs; the comparison is vacuous")
	}
	if len(base) != len(pruned) {
		t.Errorf("run produced %d regions unpruned vs %d pruned", len(base), len(pruned))
	}
}

// TestPruneEquivalence: certified pruning is invisible to the computed
// values — bitwise — for every app, both lowerings, both backends.
func TestPruneEquivalence(t *testing.T) {
	const nodes = 2
	backends := []string{"des", "native"}
	if testing.Short() {
		backends = []string{"des"}
	}
	for _, app := range pruneApps {
		for _, sync := range []cr.SyncMode{cr.PointToPoint, cr.BarrierSync} {
			for _, backend := range backends {
				name := fmt.Sprintf("%s/%v/%s", app.name, sync, backend)
				t.Run(name, func(t *testing.T) {
					base, _ := runPruned(t, app.build(nodes), nodes, sync, backend, false)
					pruned, _ := runPruned(t, app.build(nodes), nodes, sync, backend, true)
					assertStoresBitwiseEqual(t, base, pruned)
				})
			}
		}
	}
}

// TestPruneReducesMessages: the dead-initialization prune class eliminates
// real cross-node copies, so the DES message counter must strictly drop on
// PENNANT under p2p — the acceptance bar for -prune reducing measured
// communication, not just graph edges.
func TestPruneReducesMessages(t *testing.T) {
	const nodes = 4
	build := func() *ir.Program { return pennant.Build(pennant.Small(nodes)).Prog }
	_, baseStats := runPruned(t, build(), nodes, cr.PointToPoint, "des", false)
	_, prunedStats := runPruned(t, build(), nodes, cr.PointToPoint, "des", true)
	if prunedStats.Messages >= baseStats.Messages {
		t.Errorf("pruning did not reduce messages: %d -> %d", baseStats.Messages, prunedStats.Messages)
	}
	if prunedStats.BytesSent > baseStats.BytesSent {
		t.Errorf("pruning grew bytes sent: %d -> %d", baseStats.BytesSent, prunedStats.BytesSent)
	}
}
