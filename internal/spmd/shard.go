package spmd

import (
	"fmt"

	"repro/internal/cr"
	"repro/internal/geometry"
	"repro/internal/intersect"
	"repro/internal/ir"
	"repro/internal/realm"
	"repro/internal/region"
)

// runReplicated executes one compiled loop: initialization copies (Figure
// 4b lines 2-4), hoisted loop-invariant copies, the shard tasks themselves,
// and finalization copies back to the parent regions (lines 14-15). With
// recovery disabled (the default) the loop runs as one unguarded epoch —
// the exact fault-free schedule; with recovery enabled it runs in
// checkpointed epochs under runRecoverable.
func (e *Engine) runReplicated(ctl realm.Agent, plan *cr.Compiled) {
	rec := e.Recov.normalized(plan.Loop.Trip)
	if rec.MaxRetries > 0 {
		e.runRecoverable(ctl, plan, rec)
		return
	}
	trip := plan.Loop.Trip
	st := newRunState(e, plan, trip, e.liveAssign(plan.Opts.NumShards))
	e.initPhase(ctl, st, false)
	e.runEpoch(ctl, st, 0, trip, false)
	e.finalizePhase(ctl, st, false)
	e.iterTimes[plan.Loop] = st.iterTimes
	e.mergeEnv(st)
}

// initPhase populates every used partition's every subregion instance from
// the parent region's data on its owner node, then runs the hoisted
// loop-invariant copies. Under recovery it reports false as soon as a
// watched node fails (the phase is idempotent and simply reruns).
func (e *Engine) initPhase(ctl realm.Agent, st *runState, guarded bool) bool {
	plan := st.plan
	var initEvs []realm.Event
	for _, part := range plan.UsedParts {
		fields := plan.InstFields[part]
		for _, col := range plan.Domain {
			sub := part.Sub(col)
			key := instKey{part.ID(), col}
			owner := st.ownerNode(col)
			// A certifier-licensed dead init (every read of the instance is
			// covered by later overwrites) skips the population transfer; the
			// store is still created so the instance exists — it stays zero
			// until the first compiler-inserted copy lands.
			dead := plan.Prune.SkipInit(part, plan.ColorIdx[col])
			if e.Mode == ir.ExecReal {
				store := region.NewStore(sub.IndexSpace(), e.Prog.FieldSpaceOf(sub))
				if !dead {
					for _, f := range fields {
						store.CopyFieldFrom(e.global[sub.Root()], f, sub.IndexSpace())
					}
				}
				st.inst[key] = store
			}
			if dead {
				continue
			}
			bytes := sub.Volume() * e.Over.EltBytes * int64(len(fields))
			initEvs = append(initEvs, e.Sim.CopyBytes(0, owner, bytes, realm.NoEvent, nil))
		}
	}
	if !e.phaseWait(ctl, st, e.Sim.Merge(initEvs...), guarded) {
		return false
	}

	// Hoisted loop-invariant copies run once before the shards start.
	for _, cp := range plan.InitCopies {
		var evs []realm.Event
		for _, pr := range cp.Pairs {
			bytes := pr.Overlap.Volume() * e.Over.EltBytes * int64(len(cp.Fields))
			var body func()
			if e.Mode == ir.ExecReal {
				src := st.inst[instKey{cp.Src.ID(), pr.Src}]
				dst := st.inst[instKey{cp.Dst.ID(), pr.Dst}]
				fields, overlap := cp.Fields, pr.Overlap
				body = func() {
					for _, f := range fields {
						dst.CopyFieldFrom(src, f, overlap)
					}
				}
			}
			evs = append(evs, e.Sim.CopyBytes(
				st.ownerNode(pr.Src), st.ownerNode(pr.Dst),
				bytes, realm.NoEvent, body))
		}
		if !e.phaseWait(ctl, st, e.Sim.Merge(evs...), guarded) {
			return false
		}
	}
	return true
}

// runEpoch launches the shard threads over iterations [lo, hi) and waits
// for them (§3.5). Under recovery a node failure aborts the wait and kills
// the surviving shard threads so the epoch can be retried from the last
// checkpoint.
func (e *Engine) runEpoch(ctl realm.Agent, st *runState, lo, hi int, guarded bool) bool {
	plan := st.plan
	ns := plan.Opts.NumShards
	st.shardDone = make([]realm.Event, ns)
	for s := range st.shardDone {
		st.shardDone[s] = e.Sim.NewUserEvent()
	}
	// Capture the entry environment on the control thread: shard 0 writes
	// st.curEnv back when its range ends, which may overlap another shard's
	// startup on the native backend.
	baseEnv := st.curEnv
	threads := make([]realm.Agent, ns)
	for s := 0; s < ns; s++ {
		s := s
		threads[s] = e.Sim.SpawnOn(fmt.Sprintf("shard-%d", s), st.nodeOfShard(s), 0, func(th realm.Agent) {
			sh := &shard{st: st, me: s, th: th, table: st.tables[s], baseEnv: baseEnv}
			sh.runRange(lo, hi)
			e.Sim.Trigger(st.shardDone[s])
		})
	}
	if e.phaseWait(ctl, st, e.Sim.Merge(st.shardDone...), guarded) {
		return true
	}
	// Only the guarded (recovery) path reaches here, and recovery is gated
	// to backends with the fault-tolerance extension (killable agents).
	fx := e.fx()
	for _, th := range threads {
		fx.KillAgent(th)
	}
	return false
}

// finalizePhase copies the disjoint written partitions' instances back to
// the parent regions on node 0. The copies overwrite whole subregions, so
// a half-finished finalization is safely redone after recovery.
func (e *Engine) finalizePhase(ctl realm.Agent, st *runState, guarded bool) bool {
	plan := st.plan
	var finEvs []realm.Event
	for _, part := range plan.WrittenDisjoint {
		fields := plan.InstFields[part]
		for _, col := range plan.Domain {
			sub := part.Sub(col)
			var body func()
			if e.Mode == ir.ExecReal {
				src := st.inst[instKey{part.ID(), col}]
				dst := e.global[sub.Root()]
				ispace := sub.IndexSpace()
				fs := fields
				body = func() {
					for _, f := range fs {
						dst.CopyFieldFrom(src, f, ispace)
					}
				}
			}
			bytes := sub.Volume() * e.Over.EltBytes * int64(len(fields))
			finEvs = append(finEvs, e.Sim.CopyBytes(st.ownerNode(col), 0, bytes, realm.NoEvent, body))
		}
	}
	return e.phaseWait(ctl, st, e.Sim.Merge(finEvs...), guarded)
}

// mergeEnv folds the replicated scalar state back into the control
// environment; scalars converge across shards, so shard 0's bindings are
// the program's.
func (e *Engine) mergeEnv(st *runState) {
	if st.plan.Opts.NumShards > 0 {
		for k, v := range st.curEnv {
			e.env[k] = v
		}
	}
}

// shard is the per-shard execution state: the thread, the shard's block of
// the domain, its instance table, and its replicated scalar environment.
type shard struct {
	st    *runState
	me    int
	th    realm.Agent
	table *shardTable
	// baseEnv is the replicated scalar environment at epoch entry, captured
	// by the control thread before the shard agents start.
	baseEnv ir.MapEnv
	env     *shardEnv
	// ops collects the events of the current iteration.
	ops []realm.Event
	// Scratch buffers recycled across the shard's issue loops. Merge does
	// not retain its inputs, so a buffer can be reused as soon as the Merge
	// consuming it returns.
	presBuf []realm.Event
	evBuf   []realm.Event
	wrBuf   []realm.Event
	doneBuf []realm.Event
	ctxBuf  []*ir.TaskCtx
}

// runRange replicates the loop's control flow over the shard's owned
// colors for iterations [lo, hi) — the whole trip when recovery is off,
// one epoch of it otherwise. The scalar environment starts from the run
// state's current bindings (the loop entry environment, or the restored
// checkpoint's) and shard 0 publishes them back at the end of the range.
func (sh *shard) runRange(lo, hi int) {
	st := sh.st
	plan := st.plan
	e := st.e
	sh.env = newShardEnv(sh.th, sh.baseEnv)

	window := e.Over.Window
	if window < 1 {
		window = 1
	}
	// With tracing on, the compiled body is resolved once into a per-shard
	// plan and every iteration replays it; otherwise each iteration is
	// interpreted against the shard table. Both paths issue the identical
	// Sim call sequence (see plan.go).
	sp := st.planFor(sh)
	n := hi - lo
	iterDone := make([]realm.Event, n)
	for i := 0; i < n; i++ {
		t := lo + i
		if i >= window {
			sh.th.WaitEvent(iterDone[i-window])
		}
		sh.env.set(plan.Loop.Var, float64(t))
		sh.ops = sh.ops[:0]
		if sp != nil {
			sh.replayIter(sp, t)
		} else {
			for bi, op := range plan.Body {
				switch {
				case op.Set != nil:
					sh.env.set(op.Set.Name, op.Set.Expr(sh.env))
				case op.Launch != nil:
					sh.doLaunch(op.Launch, t)
				case op.Copy != nil:
					switch {
					case plan.Opts.Agg:
						// Aggregation runs the whole exchange phase at its
						// head op; the phase's remaining copies were already
						// issued there.
						if phIdx := plan.Spec.PhaseOf[bi]; plan.Spec.Phases[phIdx].Start == bi {
							if plan.Opts.Sync == cr.BarrierSync {
								sh.doPhaseBarrierAgg(phIdx, t)
							} else {
								sh.doPhaseP2PAgg(phIdx, t)
							}
						}
					case plan.Opts.Sync == cr.BarrierSync:
						sh.doCopyBarrier(op.Copy, t)
					default:
						sh.doCopyP2P(op.Copy, t)
					}
				}
			}
		}
		iterDone[i] = e.Sim.Merge(sh.ops...)
		st.recordIter(t, iterDone[i])
	}
	for i := maxInt(0, n-window); i < n; i++ {
		sh.th.WaitEvent(iterDone[i])
	}
	if sh.me == 0 {
		st.curEnv = sh.env.snapshot()
	}
}

// doLaunch issues the shard's owned tasks of one index launch. Shard-local
// issue cost replaces the central control thread's — the core of the
// optimization.
func (sh *shard) doLaunch(l *ir.Launch, iter int) {
	st := sh.st
	e := st.e
	owned := st.plan.Owned[sh.me]
	nodeID := st.nodeOfShard(sh.me)

	scalars := make([]float64, len(l.ScalarArgs))
	for i, ex := range l.ScalarArgs {
		scalars[i] = ex(sh.env) // forces future-valued scalars on this shard
	}

	// localDone/ctxs feed only the launch-level scalar reduction; skip the
	// bookkeeping entirely for launches without one.
	reduce := l.Reduce != nil
	localDone := sh.doneBuf[:0]
	ctxs := sh.ctxBuf[:0]
	for _, col := range owned {
		sh.th.Elapse(e.Over.ShardLaunchBase)
		pres := sh.presBuf[:0]
		for ai, a := range l.Args {
			param := l.Task.Params[ai]
			switch param.Priv {
			case ir.PrivRead:
				pres = append(pres, sh.table.get(instKey{a.Part.ID(), col}).lastWrite)
			case ir.PrivReadWrite:
				s := sh.table.get(instKey{a.Part.ID(), col})
				pres = append(pres, s.lastWrite)
				pres = append(pres, s.readers...)
			case ir.PrivReduce:
				s := sh.table.getTemp(tempKey{l, ai, col})
				pres = append(pres, s.lastWrite)
				pres = append(pres, s.readers...)
			}
		}
		vol := l.Args[l.Task.CostArg].At(col).Volume()
		dur := realm.Time(l.Task.Cost(vol) / float64(e.Over.KernelCores))
		if e.Over.Noise != nil {
			dur = realm.Time(float64(dur) * e.Over.Noise(st.nodeOfShard(sh.me), iter))
		}

		var body func()
		var ctx *ir.TaskCtx
		if e.Mode == ir.ExecReal {
			ctx = sh.buildCtx(l, col, scalars)
			kernel := l.Task.Kernel
			reinits := sh.tempReinits(l, col)
			body = func() {
				for _, re := range reinits {
					re()
				}
				if kernel != nil {
					kernel(ctx)
				}
			}
		}
		done := e.Sim.LaunchOn(nodeID, e.Sim.Merge(pres...), dur, body)
		sh.presBuf = pres[:0]

		for ai, a := range l.Args {
			param := l.Task.Params[ai]
			switch param.Priv {
			case ir.PrivRead:
				s := sh.table.get(instKey{a.Part.ID(), col})
				s.readers = append(s.readers, done)
			case ir.PrivReadWrite:
				s := sh.table.get(instKey{a.Part.ID(), col})
				s.lastWrite = done
				s.readers = s.readers[:0]
			case ir.PrivReduce:
				s := sh.table.getTemp(tempKey{l, ai, col})
				s.lastWrite = done
				s.readers = s.readers[:0]
			}
		}
		if reduce {
			localDone = append(localDone, done)
			ctxs = append(ctxs, ctx)
		}
		sh.ops = append(sh.ops, done)
	}
	sh.doneBuf, sh.ctxBuf = localDone[:0], ctxs[:0]

	if l.Reduce != nil {
		// One contribution per task color (not per shard): the collective
		// folds values in participant-index order, so indexing by global
		// color keeps the fold order — and hence the floating-point result —
		// bitwise identical to the sequential semantics.
		coll := st.collFor(l, iter, l.Reduce.Op)
		op := l.Reduce.Op
		for k, col := range owned {
			ctx := ctxs[k]
			coll.Contribute(st.plan.ColorIdx[col], localDone[k], func() float64 {
				if ctx == nil {
					return op.Identity()
				}
				return ctx.Return
			})
		}
		sh.env.setFuture(l.Reduce.Into, coll.Done(), coll.Result)
		sh.ops = append(sh.ops, coll.Done())
	}
}

// buildCtx assembles the Real-mode task context over instance stores;
// reduce arguments get persistent per-(op,arg,color) temporaries that the
// task body re-initializes to the identity each iteration.
func (sh *shard) buildCtx(l *ir.Launch, col geometry.Point, scalars []float64) *ir.TaskCtx {
	st := sh.st
	ctx := &ir.TaskCtx{Color: col, Scalars: scalars}
	for ai, a := range l.Args {
		param := l.Task.Params[ai]
		sub := a.Part.Sub(col)
		if param.Priv == ir.PrivReduce {
			buf := st.tempStore(tempKey{l, ai, col}, sub)
			ctx.Args = append(ctx.Args, ir.NewPhysArg(sub, buf, param))
		} else {
			ctx.Args = append(ctx.Args, ir.NewPhysArg(sub, st.inst[instKey{a.Part.ID(), col}], param))
		}
	}
	return ctx
}

// tempReinits returns closures re-initializing the launch's reduce
// temporaries to the identity (run at task start, §4.3).
func (sh *shard) tempReinits(l *ir.Launch, col geometry.Point) []func() {
	var out []func()
	for ai, a := range l.Args {
		param := l.Task.Params[ai]
		if param.Priv != ir.PrivReduce {
			continue
		}
		// Resolve the store now (buildCtx has already created it) rather
		// than at body-run time: kernel bodies run concurrently on the
		// native backend and must not touch the shared temps map.
		buf := sh.st.tempStore(tempKey{l, ai, col}, a.Part.Sub(col))
		fields, op := param.Fields, param.Op
		out = append(out, func() {
			for _, f := range fields {
				buf.Fill(f, op.Identity())
			}
		})
	}
	return out
}

// doCopyP2P executes one copy op under point-to-point synchronization
// (§3.4). The shard acts as consumer for pair groups whose destination it
// owns (computing the write-after-read release and registering arrivals)
// and as producer for pairs whose source it owns (issuing the actual
// transfers). Reduction applications to one destination chain in source
// order for deterministic folding. Each shard walks only its precomputed
// slice of the pair list.
func (sh *shard) doCopyP2P(cp *cr.CopyOp, iter int) {
	st := sh.st
	e := st.e
	pairs := cp.Pairs
	prune := st.plan.Prune
	for _, work := range st.copyWork(cp.ID, sh.me) {
		if work.Consumer {
			dstCol := pairs[work.GroupStart].Dst
			s := sh.table.get(instKey{cp.Dst.ID(), dstCol})
			rel := append(sh.evBuf[:0], s.readers...)
			rel = append(rel, s.lastWrite)
			release := e.Sim.Merge(rel...)
			newWrites := append(sh.wrBuf[:0], s.lastWrite)
			for k := work.GroupStart; k < work.GroupEnd; k++ {
				ps := st.pairSyncFor(cp.ID, k, iter)
				if !prune.SkipWar(cp.ID, k) {
					st.connect(release, ps.war)
				}
				if !prune.SkipDone(cp.ID, k) {
					newWrites = append(newWrites, ps.done)
					sh.ops = append(sh.ops, ps.done)
				}
			}
			s.lastWrite = e.Sim.Merge(newWrites...)
			s.readers = s.readers[:0]
			sh.evBuf, sh.wrBuf = rel[:0], newWrites[:0]
		}
		for _, k := range work.ProdPairs {
			pr := pairs[k]
			ps := st.pairSyncFor(cp.ID, k, iter)
			sh.th.Elapse(e.Over.CopySetup)
			pres := sh.presBuf[:0]
			if !prune.SkipWar(cp.ID, k) {
				pres = append(pres, ps.war)
			}
			var body func()
			var ev realm.Event
			if cp.Reduce == region.ReduceNone {
				s := sh.table.get(instKey{cp.Src.ID(), pr.Src})
				pres = append(pres, s.lastWrite)
				if e.Mode == ir.ExecReal {
					src := st.inst[instKey{cp.Src.ID(), pr.Src}]
					dst := st.inst[instKey{cp.Dst.ID(), pr.Dst}]
					fields, overlap := cp.Fields, pr.Overlap
					body = func() {
						for _, f := range fields {
							dst.CopyFieldFrom(src, f, overlap)
						}
					}
				}
				ev = sh.issueCopy(pr, cp, pres, body)
				s.readers = append(s.readers, ev)
			} else {
				ts := sh.table.getTemp(tempKey{cp.SrcLaunch, cp.SrcArg, pr.Src})
				pres = append(pres, ts.lastWrite)
				if k > work.GroupStart && !prune.SkipChain(cp.ID, k) {
					// Chain folds into this destination in source order;
					// the predecessor may belong to another shard — the
					// done event is shared state.
					pres = append(pres, st.pairSyncFor(cp.ID, k-1, iter).done)
				}
				if e.Mode == ir.ExecReal {
					buf := st.tempStore(tempKey{cp.SrcLaunch, cp.SrcArg, pr.Src}, cp.Src.Sub(pr.Src))
					dst := st.inst[instKey{cp.Dst.ID(), pr.Dst}]
					fields, op, overlap := cp.Fields, cp.Reduce, pr.Overlap
					body = func() {
						for _, f := range fields {
							dst.ReduceFieldFrom(buf, f, op, overlap)
						}
					}
				}
				ev = sh.issueCopy(pr, cp, pres, body)
				ts.readers = append(ts.readers, ev)
			}
			sh.presBuf = pres[:0]
			if prune.SkipDone(cp.ID, k) {
				// Done pruned: the copy's own completion joins the producer's
				// iteration merge so loop-end quiescence still covers the
				// transfer; nothing triggers or waits on ps.done.
				sh.ops = append(sh.ops, ev)
			} else {
				st.connect(ev, ps.done)
				sh.ops = append(sh.ops, ps.done)
			}
		}
	}
}

// issueCopy models and (in Real mode) performs one pair's data movement.
func (sh *shard) issueCopy(pr intersect.Pair, cp *cr.CopyOp, pres []realm.Event, body func()) realm.Event {
	st := sh.st
	e := st.e
	bytes := pr.Overlap.Volume() * e.Over.EltBytes * int64(len(cp.Fields))
	return e.Sim.CopyBytes(
		st.ownerNode(pr.Src), st.ownerNode(pr.Dst),
		bytes, e.Sim.Merge(pres...), body)
}

// doPhaseP2PAgg executes one exchange phase under point-to-point
// synchronization with per-destination aggregation (cr.Options.Agg). The
// consumer side is the unaggregated lowering verbatim, op by op in body
// order — the per-pair war/done events survive coalescing, so consumers
// release and observe exactly the same sync structure and are oblivious to
// how producers batch. The producer side then issues ONE merged transfer
// per (this shard, destination shard) group over the whole phase:
// preconditions are the union of the members' wars, source validity, and
// cross-shard fold-chain links (a same-shard chain predecessor is a member
// of the same group, ordered by the merged body's in-order member writes
// instead), the payload is the summed member bytes, and the single
// completion event fans out to every member's done. Pruning never composes
// with aggregation (Engine.Run rejects the combination), so this path has
// no Skip checks.
func (sh *shard) doPhaseP2PAgg(phIdx, iter int) {
	st := sh.st
	e := st.e
	ph := &st.plan.Spec.Phases[phIdx]
	for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
		cp := st.plan.Body[opIdx].Copy
		pairs := cp.Pairs
		for _, work := range st.copyWork(cp.ID, sh.me) {
			if !work.Consumer {
				continue
			}
			dstCol := pairs[work.GroupStart].Dst
			s := sh.table.get(instKey{cp.Dst.ID(), dstCol})
			rel := append(sh.evBuf[:0], s.readers...)
			rel = append(rel, s.lastWrite)
			release := e.Sim.Merge(rel...)
			newWrites := append(sh.wrBuf[:0], s.lastWrite)
			for k := work.GroupStart; k < work.GroupEnd; k++ {
				ps := st.pairSyncFor(cp.ID, k, iter)
				st.connect(release, ps.war)
				newWrites = append(newWrites, ps.done)
				sh.ops = append(sh.ops, ps.done)
			}
			s.lastWrite = e.Sim.Merge(newWrites...)
			s.readers = s.readers[:0]
			sh.evBuf, sh.wrBuf = rel[:0], newWrites[:0]
		}
	}
	aggs := st.resolvePhaseAggs(sh, ph, st.interpAggBytes)
	sh.issueAggGroups(aggs, iter)
}

// issueAggGroups issues the shard's coalesced transfers of one exchange
// phase under the p2p lowering: one copyAgg per group, then the done
// fan-out. Members carry their own op's copy ID — phase groups span copy
// ops, and the per-pair sync slots stay keyed by the owning op. Shared by
// interpretation (which resolves the groups fresh each iteration) and
// replay (which resolves them once at capture); both issue the identical
// Sim call sequence.
func (sh *shard) issueAggGroups(aggs []copyAggPlan, iter int) {
	st := sh.st
	e := st.e
	for ai := range aggs {
		ap := &aggs[ai]
		// One setup charge per group, not per member: batching the issue
		// overhead is half the point of coalescing.
		sh.th.Elapse(e.Over.CopySetup)
		pres := sh.presBuf[:0]
		for mi := range ap.members {
			m := &ap.members[mi]
			pres = append(pres, st.pairSyncFor(m.copyID, m.pairIdx, iter).war)
			pres = append(pres, m.srcState.lastWrite)
			if m.chain {
				pres = append(pres, st.pairSyncFor(m.copyID, m.pairIdx-1, iter).done)
			}
		}
		ev := e.copyAgg(ap.srcNode, ap.dstNode, ap.bytes, len(ap.members), e.Sim.Merge(pres...), ap.body)
		sh.presBuf = pres[:0]
		for mi := range ap.members {
			m := &ap.members[mi]
			m.srcState.readers = append(m.srcState.readers, ev)
			ps := st.pairSyncFor(m.copyID, m.pairIdx, iter)
			st.connect(ev, ps.done)
			sh.ops = append(sh.ops, ps.done)
		}
	}
}

// doCopyBarrier executes one copy op under the naive barrier lowering of
// Figure 4c: a global barrier protects write-after-read, the copies run,
// and a second barrier protects read-after-write. Kept as the ablation
// baseline for the point-to-point optimization.
func (sh *shard) doCopyBarrier(cp *cr.CopyOp, iter int) {
	st := sh.st
	e := st.e
	b1 := st.barrierFor(cp.ID, iter, 0)
	b2 := st.barrierFor(cp.ID, iter, 1)
	pairs := cp.Pairs
	work := st.copyWork(cp.ID, sh.me)

	// Arrive at the first barrier once everything this shard has issued so
	// far in the iteration has completed, plus all outstanding consumers of
	// our destination instances (deferred execution means prior-iteration
	// readers may still be in flight).
	arr := append(sh.evBuf[:0], sh.ops...)
	for _, w := range work {
		if !w.Consumer {
			continue
		}
		s := sh.table.get(instKey{cp.Dst.ID(), pairs[w.GroupStart].Dst})
		arr = append(arr, s.lastWrite)
		arr = append(arr, s.readers...)
	}
	b1.Arrive(e.Sim.Merge(arr...))
	sh.evBuf = arr[:0]

	var copyEvs []realm.Event
	isReduce := cp.Reduce != region.ReduceNone
	for _, w := range work {
		for _, k := range w.ProdPairs {
			pr := pairs[k]
			sh.th.Elapse(e.Over.CopySetup)
			pres := []realm.Event{b1.Done()}
			var body func()
			if !isReduce {
				s := sh.table.get(instKey{cp.Src.ID(), pr.Src})
				pres = append(pres, s.lastWrite)
				if e.Mode == ir.ExecReal {
					src := st.inst[instKey{cp.Src.ID(), pr.Src}]
					dst := st.inst[instKey{cp.Dst.ID(), pr.Dst}]
					fields, overlap := cp.Fields, pr.Overlap
					body = func() {
						for _, f := range fields {
							dst.CopyFieldFrom(src, f, overlap)
						}
					}
				}
				ev := sh.issueCopy(pr, cp, pres, body)
				s.readers = append(s.readers, ev)
				copyEvs = append(copyEvs, ev)
			} else {
				ts := sh.table.getTemp(tempKey{cp.SrcLaunch, cp.SrcArg, pr.Src})
				pres = append(pres, ts.lastWrite)
				// Chain folds into one destination in source order across
				// all producing shards via the shared per-pair done events,
				// so the fold order is deterministic even under barriers.
				if k > w.GroupStart && !st.plan.Prune.SkipChain(cp.ID, k) {
					pres = append(pres, st.pairSyncFor(cp.ID, k-1, iter).done)
				}
				if e.Mode == ir.ExecReal {
					buf := st.tempStore(tempKey{cp.SrcLaunch, cp.SrcArg, pr.Src}, cp.Src.Sub(pr.Src))
					dst := st.inst[instKey{cp.Dst.ID(), pr.Dst}]
					fields, op, overlap := cp.Fields, cp.Reduce, pr.Overlap
					body = func() {
						for _, f := range fields {
							dst.ReduceFieldFrom(buf, f, op, overlap)
						}
					}
				}
				ev := sh.issueCopy(pr, cp, pres, body)
				if !st.plan.Prune.SkipDone(cp.ID, k) {
					st.connect(ev, st.pairSyncFor(cp.ID, k, iter).done)
				}
				ts.readers = append(ts.readers, ev)
				copyEvs = append(copyEvs, ev)
			}
		}
	}

	b2.Arrive(e.Sim.Merge(append(copyEvs, b1.Done())...))
	// All our destination instances become valid after the second barrier.
	for _, w := range work {
		if !w.Consumer {
			continue
		}
		s := sh.table.get(instKey{cp.Dst.ID(), pairs[w.GroupStart].Dst})
		s.lastWrite = e.Sim.Merge(s.lastWrite, b2.Done())
		s.readers = s.readers[:0]
	}
	sh.ops = append(sh.ops, b2.Done())
}

// doPhaseBarrierAgg executes one exchange phase under the barrier lowering
// with per-destination aggregation. A merged message spans the phase's
// copy ops, so its precondition spans their release barriers: the shard
// arrives at EVERY phase op's first barrier up front — without threading
// one op's exit barrier into the next op's entry arrival, which would
// cycle the merged copies against the barriers — then issues the merged
// transfers (waiting all the phase's first barriers, source validity, and
// cross-shard fold-chain links), then arrives at every op's second barrier
// with the phase's merged completions. Each op's second barrier thus waits
// the whole phase's copies, not only its own members': over-synchronized
// relative to the unaggregated lowering, but only ever tighter, never a
// reordering. Reduce members still trigger their per-pair done events,
// which carry the cross-shard fold order.
func (sh *shard) doPhaseBarrierAgg(phIdx, iter int) {
	st := sh.st
	e := st.e
	ph := &st.plan.Spec.Phases[phIdx]
	n := ph.End - ph.Start

	b1done := make([]realm.Event, 0, n)
	for opIdx := ph.Start; opIdx < ph.End; opIdx++ {
		cp := st.plan.Body[opIdx].Copy
		b1 := st.barrierFor(cp.ID, iter, 0)
		arr := append(sh.evBuf[:0], sh.ops...)
		for _, w := range st.copyWork(cp.ID, sh.me) {
			if !w.Consumer {
				continue
			}
			s := sh.table.get(instKey{cp.Dst.ID(), cp.Pairs[w.GroupStart].Dst})
			arr = append(arr, s.lastWrite)
			arr = append(arr, s.readers...)
		}
		b1.Arrive(e.Sim.Merge(arr...))
		sh.evBuf = arr[:0]
		b1done = append(b1done, b1.Done())
	}

	aggs := st.resolvePhaseAggs(sh, ph, st.interpAggBytes)
	copyEvs := make([]realm.Event, 0, len(aggs))
	for ai := range aggs {
		ap := &aggs[ai]
		sh.th.Elapse(e.Over.CopySetup)
		pres := append(sh.presBuf[:0], b1done...)
		for mi := range ap.members {
			m := &ap.members[mi]
			pres = append(pres, m.srcState.lastWrite)
			if m.chain {
				pres = append(pres, st.pairSyncFor(m.copyID, m.pairIdx-1, iter).done)
			}
		}
		ev := e.copyAgg(ap.srcNode, ap.dstNode, ap.bytes, len(ap.members), e.Sim.Merge(pres...), ap.body)
		sh.presBuf = pres[:0]
		for mi := range ap.members {
			m := &ap.members[mi]
			m.srcState.readers = append(m.srcState.readers, ev)
			if m.reduce {
				st.connect(ev, st.pairSyncFor(m.copyID, m.pairIdx, iter).done)
			}
		}
		copyEvs = append(copyEvs, ev)
	}

	for oi, opIdx := 0, ph.Start; opIdx < ph.End; oi, opIdx = oi+1, opIdx+1 {
		cp := st.plan.Body[opIdx].Copy
		b2 := st.barrierFor(cp.ID, iter, 1)
		arr := append(sh.evBuf[:0], copyEvs...)
		arr = append(arr, b1done[oi])
		b2.Arrive(e.Sim.Merge(arr...))
		sh.evBuf = arr[:0]
		for _, w := range st.copyWork(cp.ID, sh.me) {
			if !w.Consumer {
				continue
			}
			s := sh.table.get(instKey{cp.Dst.ID(), cp.Pairs[w.GroupStart].Dst})
			s.lastWrite = e.Sim.Merge(s.lastWrite, b2.Done())
			s.readers = s.readers[:0]
		}
		sh.ops = append(sh.ops, b2.Done())
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
