package spmd

import (
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
	"repro/internal/region"
)

// TestTwoReplicatedLoops checks that control replication composes across
// program structure (§2.2: "it need not be applied only at the top level,
// and can in fact be applied independently to different parts of a
// program"): two separate main loops in one program, each compiled and
// executed as its own set of shards, with sequential setup in between.
func TestTwoReplicatedLoops(t *testing.T) {
	build := func() (*ir.Program, *region.Region, region.FieldID) {
		f := progtest.NewFigure2(48, 6, 2)
		// Append a second, independently replicated main loop over the same
		// regions and tasks, separated by a scalar statement.
		tf := f.Loop.Body[0].(*ir.Launch)
		tg := f.Loop.Body[1].(*ir.Launch)
		second := &ir.Loop{Var: "u", Trip: 3, Body: []ir.Stmt{
			&ir.Launch{Task: tf.Task, Domain: tf.Domain, Args: tf.Args, Label: "loopF2"},
			&ir.Launch{Task: tg.Task, Domain: tg.Domain, Args: tg.Args, Label: "loopG2"},
		}}
		f.Prog.Add(&ir.SetScalar{Name: "mid", Expr: ir.ConstExpr(1)}, second)
		return f.Prog, f.A, f.Val
	}

	pSeq, rSeq, x := build()
	seq := ir.ExecSequential(pSeq)

	pCR, rCR, _ := build()
	plans, err := CompileAll(pCR, cr.Options{NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2 (one per loop)", len(plans))
	}
	sim := realm.MustNewSim(testConfig(3))
	res, err := New(sim, pCR, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stores[rCR].EqualOn(seq.Stores[rSeq], x, rSeq.IndexSpace()) {
		t.Fatal("two-loop program diverged from sequential semantics")
	}
	if len(res.IterTimes) != 2 {
		t.Errorf("iteration times recorded for %d loops, want 2", len(res.IterTimes))
	}
}

// TestInitCopiesExecute exercises the hoisted loop-invariant copy path of
// the executor: a copy moved to the preheader must still deliver data
// before the shards start.
func TestInitCopiesExecute(t *testing.T) {
	f := progtest.NewFigure2(48, 8, 2)
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan := plans[f.Loop]
	// Manually hoist a duplicate of the loop's PB->QB copy to the preheader
	// (semantically redundant: it copies the same data the initialization
	// already placed, exactly what a genuinely invariant copy would do).
	var cp *cr.CopyOp
	for _, op := range plan.Body {
		if op.Copy != nil {
			dup := *op.Copy
			dup.ID = 999
			cp = &dup
		}
	}
	if cp == nil {
		t.Fatal("no copy in plan")
	}
	plan.InitCopies = append(plan.InitCopies, cp)

	seqF := progtest.NewFigure2(48, 8, 2)
	seq := ir.ExecSequential(seqF.Prog)

	sim := realm.MustNewSim(testConfig(4))
	res, err := New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stores[f.A].EqualOn(seq.Stores[seqF.A], f.Val, f.A.IndexSpace()) {
		t.Fatal("run with init copy diverged")
	}
}

// TestShardsSpreadWhenFewerThanNodes checks shard-to-node placement when
// the domain (and hence shard count) is smaller than the machine.
func TestShardsSpreadWhenFewerThanNodes(t *testing.T) {
	f := progtest.NewFigure2(24, 4, 2)
	plans, err := CompileAll(f.Prog, cr.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(8)) // 8 nodes, 4 shards
	res, err := New(sim, f.Prog, ir.ExecReal, plans).Run()
	if err != nil {
		t.Fatal(err)
	}
	seqF := progtest.NewFigure2(24, 4, 2)
	seq := ir.ExecSequential(seqF.Prog)
	if !res.Stores[f.A].EqualOn(seq.Stores[seqF.A], f.Val, f.A.IndexSpace()) {
		t.Fatal("spread-shard run diverged")
	}
	// Shards must land on distinct nodes (0,2,4,6 under block spreading).
	busy := 0
	for i := 0; i < 8; i++ {
		if sim.Node(i).BusyTime() > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Errorf("only %d nodes did work, want >= 4", busy)
	}
}

// TestNoiseDeterminism: noise-perturbed runs are still exactly
// reproducible.
func TestNoiseDeterminism(t *testing.T) {
	run := func() realm.Time {
		f := progtest.NewFigure2(48, 8, 5)
		plans, err := CompileAll(f.Prog, cr.Options{NumShards: 4})
		if err != nil {
			t.Fatal(err)
		}
		sim := realm.MustNewSim(testConfig(4))
		eng := New(sim, f.Prog, ir.ExecModeled, plans)
		eng.Over.Noise = realm.SpikeNoise(0.9, 1.0, 7)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	clean := func() realm.Time {
		f := progtest.NewFigure2(48, 8, 5)
		plans, _ := CompileAll(f.Prog, cr.Options{NumShards: 4})
		sim := realm.MustNewSim(testConfig(4))
		res, err := New(sim, f.Prog, ir.ExecModeled, plans).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("noisy runs diverged: %v vs %v", a, b)
	}
	if a <= clean() {
		t.Error("noise should slow the run down")
	}
}
