package spmd

import (
	"strings"
	"testing"

	"repro/internal/cr"
	"repro/internal/ir"
	"repro/internal/progtest"
	"repro/internal/realm"
)

// runCRShare runs the program under SPMD with cross-shard sharing on or
// off (tracing always on) and returns the result plus the trace counters.
func runCRShare(t *testing.T, prog *ir.Program, nodes, shards int, mode ir.ExecMode, noShare bool) (*Result, TraceStats) {
	t.Helper()
	plans, err := CompileAll(prog, cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	sim := realm.MustNewSim(testConfig(nodes))
	eng := New(sim, prog, mode, plans)
	eng.NoShare = noShare
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.TraceStats()
}

// TestShareSingleCapture is the tentpole counter guarantee: with sharing
// on, plan capture is O(1) per run state — exactly one shared capture,
// specialized to every shard — for any shard count, and the schedule is
// bitwise identical to both the per-shard-capture run and the untraced
// run.
func TestShareSingleCapture(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		build := func() *ir.Program { return progtest.NewFigure2(48, 8, 6).Prog }
		for _, mode := range []ir.ExecMode{ir.ExecModeled, ir.ExecReal} {
			shared, stats := runCRShare(t, build(), shards, shards, mode, false)
			perShard, offStats := runCRShare(t, build(), shards, shards, mode, true)
			untraced, _ := runCRTrace(t, build(), shards, shards, cr.PointToPoint, mode, true)

			if stats.Captures != 1 || stats.Specializations != shards || stats.PerShardCaptures != 0 {
				t.Errorf("shards=%d mode %v: counters %+v, want exactly 1 capture and %d specializations", shards, mode, stats, shards)
			}
			if offStats.PerShardCaptures != shards || offStats.Captures != 0 {
				t.Errorf("shards=%d mode %v: NoShare counters %+v, want %d per-shard captures", shards, mode, offStats, shards)
			}
			if stats.Ships != 0 || stats.ShippedBytes != 0 {
				t.Errorf("shards=%d mode %v: fault-free run shipped traces: %+v", shards, mode, stats)
			}
			for _, ref := range []*Result{perShard, untraced} {
				if shared.Elapsed != ref.Elapsed || shared.Stats != ref.Stats {
					t.Errorf("shards=%d mode %v: shared schedule diverged: %v/%+v vs %v/%+v",
						shards, mode, shared.Elapsed, shared.Stats, ref.Elapsed, ref.Stats)
				}
			}
		}

		// Real-mode store contents against sequential semantics.
		f := progtest.NewFigure2(48, 8, 6)
		seq := ir.ExecSequential(f.Prog)
		got, _ := runCRShare(t, f.Prog, shards, shards, ir.ExecReal, false)
		assertEqualStores(t, seq.Stores[f.A], got.Stores[f.A], f.A, f.Val)
		assertEqualStores(t, seq.Stores[f.B], got.Stores[f.B], f.B, f.Val)
	}
}

// TestShareRaggedFallsBack is the corner case: a partition whose owned
// blocks are unequal (7 colors over 3 shards) is not shareable, so the
// engine must fall back to per-shard capture, log the compiler's reason
// exactly once, and still match the untraced schedule.
func TestShareRaggedFallsBack(t *testing.T) {
	const shards, nodes = 3, 3
	build := func() *ir.Program { return progtest.NewFigure2(42, 7, 6).Prog }

	plans, err := CompileAll(build(), cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Spec.Share.Shareable || p.Spec.Share.Reason == "" {
			t.Fatalf("ragged partition marked %+v, want unshareable with a reason", p.Spec.Share)
		}
	}

	var logged []string
	sim := realm.MustNewSim(testConfig(nodes))
	prog := build()
	plans, err = CompileAll(prog, cr.Options{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sim, prog, ir.ExecModeled, plans)
	eng.ShareLog = func(msg string) { logged = append(logged, msg) }
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.TraceStats()
	if stats.Captures != 0 || stats.Specializations != 0 || stats.PerShardCaptures != shards {
		t.Errorf("ragged counters %+v, want %d per-shard captures and no shared capture", stats, shards)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "ragged") {
		t.Errorf("fallback log = %q, want exactly one message naming the ragged partition", logged)
	}

	ref, _ := runCRTrace(t, build(), nodes, shards, cr.PointToPoint, ir.ExecModeled, true)
	if res.Elapsed != ref.Elapsed || res.Stats != ref.Stats {
		t.Errorf("ragged fallback schedule diverged: %v/%+v vs %v/%+v", res.Elapsed, res.Stats, ref.Elapsed, ref.Stats)
	}
}

// TestShareFailoverShipsTrace: a crash recovered by shard failover must
// not re-capture when sharing is on — the shared capture survives the run
// state rebuild, the restarted shards receive it as a real DES message
// (with latency and bandwidth cost), and every shard re-specializes. The
// recovered store contents stay bitwise equal to sequential semantics.
func TestShareFailoverShipsTrace(t *testing.T) {
	const nodes, shards = 4, 4
	rec := Recovery{CheckpointEvery: 2, MaxRetries: 3, Backoff: realm.Microseconds(50)}
	run := func(fp *realm.FaultPlan) (*Result, TraceStats, *progtest.Figure2) {
		f := progtest.NewFigure2(48, 8, 8)
		plans, err := CompileAll(f.Prog, cr.Options{NumShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sim := realm.MustNewSim(testConfig(nodes))
		if fp != nil {
			if err := sim.InjectFaults(*fp); err != nil {
				t.Fatal(err)
			}
		}
		eng := New(sim, f.Prog, ir.ExecReal, plans)
		eng.Recov = rec
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.TraceStats(), f
	}

	res0, stats0, _ := run(nil)
	if stats0.Captures != 1 || stats0.PerShardCaptures != 0 {
		t.Fatalf("fault-free counters %+v, want exactly one shared capture", stats0)
	}
	if res0.Stats.TraceShips != 0 {
		t.Fatalf("fault-free run shipped traces: %+v", res0.Stats)
	}

	fp := &realm.FaultPlan{Crashes: []realm.NodeCrash{{Node: 2, At: res0.Elapsed / 2}}}
	got, stats, f := run(fp)

	if got.Faults == nil || len(got.Faults.Crashes) != 1 || got.Faults.Restarts < 1 {
		t.Fatalf("fault report = %+v, want 1 crash and at least 1 restart", got.Faults)
	}
	// Zero re-capture across the whole faulty run: the shared capture is
	// keyed on the engine, not the run state, so failover re-specializes.
	if stats.Captures != 1 || stats.PerShardCaptures != 0 {
		t.Errorf("failover re-captured: %+v, want the single pre-crash capture only", stats)
	}
	if stats.Specializations <= shards {
		t.Errorf("failover specialized %d plans, want > %d (rebuild re-specializes every shard)", stats.Specializations, shards)
	}
	if stats.Invalidations == 0 {
		t.Errorf("failover rebuild discarded no plans: %+v", stats)
	}
	if stats.Ships == 0 || stats.ShippedBytes == 0 {
		t.Errorf("failover shipped nothing: %+v", stats)
	}
	if got.Stats.TraceShips != int64(stats.Ships) || got.Stats.TraceShipBytes != stats.ShippedBytes {
		t.Errorf("DES ship stats %d/%d don't match engine counters %+v", got.Stats.TraceShips, got.Stats.TraceShipBytes, stats)
	}
	// Shipping is a real message: it costs virtual time over the fault-free
	// run (on top of the restart itself).
	if got.Elapsed <= res0.Elapsed {
		t.Errorf("faulty run Elapsed %v <= fault-free %v; recovery and shipping should cost time", got.Elapsed, res0.Elapsed)
	}

	// Recovered contents match sequential semantics bitwise.
	refSeq := progtest.NewFigure2(48, 8, 8)
	seq := ir.ExecSequential(refSeq.Prog)
	assertEqualStores(t, seq.Stores[refSeq.A], got.Stores[f.A], f.A, f.Val)
	assertEqualStores(t, seq.Stores[refSeq.B], got.Stores[f.B], f.B, f.Val)
}
